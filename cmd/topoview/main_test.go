package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run([]string{"-sweep", "-rows", "6", "-cols", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEdges(t *testing.T) {
	if err := run([]string{"-rows", "3", "-cols", "3", "-degree", "4", "-edges"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadDegree(t *testing.T) {
	if err := run([]string{"-degree", "99"}); err == nil {
		t.Error("degree 99 accepted")
	}
}

func TestAvgPathLength(t *testing.T) {
	if err := run([]string{"-rows", "2", "-cols", "2", "-degree", "3"}); err != nil {
		// A 2×2 lattice cannot realize degree 3 everywhere but must not
		// crash; an error is acceptable, a panic is not.
		t.Logf("run returned %v", err)
	}
}
