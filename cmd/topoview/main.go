// Command topoview inspects the Baran-style regular mesh topologies of the
// study: node/edge counts, degree histogram, diameter, and an adjacency
// dump — the data behind the paper's Figure 2.
//
// Usage:
//
//	topoview [-rows 7] [-cols 7] [-degree 4] [-edges] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"routeconv/internal/core"
	"routeconv/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topoview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topoview", flag.ContinueOnError)
	mf := core.DefaultMeshFlags()
	mf.Register(fs)
	var (
		showEdges = fs.Bool("edges", false, "dump the edge list")
		sweep     = fs.Bool("sweep", false, "print one summary line per degree 3-16")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sweep {
		fmt.Printf("%6s  %6s  %6s  %9s  %8s\n", "degree", "nodes", "edges", "diameter", "avgpath")
		for d := 3; d <= topology.MaxMeshDegree && d <= 16; d++ {
			m, err := topology.NewMesh(mf.Rows, mf.Cols, d)
			if err != nil {
				return err
			}
			fmt.Printf("%6d  %6d  %6d  %9d  %8.2f\n", d, m.Len(), m.NumEdges(), m.Diameter(), avgPathLength(m.Graph))
		}
		return nil
	}

	m, err := topology.NewMesh(mf.Rows, mf.Cols, mf.Degree)
	if err != nil {
		return err
	}
	fmt.Printf("mesh %dx%d, target degree %d\n", mf.Rows, mf.Cols, mf.Degree)
	fmt.Printf("nodes: %d  edges: %d  connected: %v  diameter: %d  avg shortest path: %.2f\n",
		m.Len(), m.NumEdges(), m.Connected(), m.Diameter(), avgPathLength(m.Graph))

	hist := m.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Println("degree histogram (border nodes have fewer links):")
	for _, d := range degrees {
		fmt.Printf("  degree %2d: %d nodes\n", d, hist[d])
	}

	if *showEdges {
		fmt.Println("edges:")
		for _, e := range m.Edges() {
			ra, ca := m.Pos(e.A)
			rb, cb := m.Pos(e.B)
			fmt.Printf("  %d (%d,%d) - %d (%d,%d)\n", e.A, ra, ca, e.B, rb, cb)
		}
	}
	return nil
}

// avgPathLength returns the mean shortest-path length over all node pairs.
func avgPathLength(g *topology.Graph) float64 {
	total, pairs := 0, 0
	for i := 0; i < g.Len(); i++ {
		for _, d := range g.BFS(topology.NodeID(i)) {
			if d > 0 {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}
