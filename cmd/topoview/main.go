// Command topoview inspects topologies: the Baran-style regular meshes of
// the study (node/edge counts, degree histogram, diameter, adjacency — the
// data behind the paper's Figure 2) and, via -topo, any generated or
// imported graph (power-law AS graphs, fat-tree/Clos fabrics, edge-list
// files). Large graphs get sampled diameter and path-length estimates so a
// 100k-node AS graph summarizes in milliseconds.
//
// Usage:
//
//	topoview [-rows 7] [-cols 7] [-degree 4] [-edges] [-sweep]
//	topoview -topo ba:n=100000,m=2 [-samples 16] [-export as.edges]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"routeconv/internal/core"
	"routeconv/internal/topology"
	"routeconv/internal/topology/topoio"
)

// exactThreshold is the node count above which diameter and average path
// length switch from exact all-pairs BFS to sampled estimates.
const exactThreshold = 2000

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topoview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topoview", flag.ContinueOnError)
	mf := core.DefaultMeshFlags()
	mf.Register(fs)
	var (
		showEdges  = fs.Bool("edges", false, "dump the edge list")
		sweepFlag  = fs.Bool("sweep", false, "print one summary line per degree 3-16")
		samples    = fs.Int("samples", 8, "BFS sources for sampled diameter/path estimates on large graphs")
		exportPath = fs.String("export", "", "write the graph as an edge-list file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if mf.Topo != "" {
		return showTopo(mf.Topo, *samples, *showEdges, *exportPath)
	}
	if *sweepFlag {
		fmt.Printf("%6s  %6s  %6s  %9s  %8s\n", "degree", "nodes", "edges", "diameter", "avgpath")
		for d := 3; d <= topology.MaxMeshDegree && d <= 16; d++ {
			m, err := topology.NewMesh(mf.Rows, mf.Cols, d)
			if err != nil {
				return err
			}
			fmt.Printf("%6d  %6d  %6d  %9d  %8.2f\n", d, m.Len(), m.NumEdges(), m.Diameter(), avgPathLength(m.Graph))
		}
		return nil
	}

	m, err := topology.NewMesh(mf.Rows, mf.Cols, mf.Degree)
	if err != nil {
		return err
	}
	if *exportPath != "" {
		if err := topoio.WriteFile(*exportPath, m.Graph); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *exportPath)
	}
	fmt.Printf("mesh %dx%d, target degree %d\n", mf.Rows, mf.Cols, mf.Degree)
	fmt.Printf("nodes: %d  edges: %d  connected: %v  diameter: %d  avg shortest path: %.2f\n",
		m.Len(), m.NumEdges(), m.Connected(), m.Diameter(), avgPathLength(m.Graph))

	printHistogram(m.Graph)

	if *showEdges {
		fmt.Println("edges:")
		for _, e := range m.Edges() {
			ra, ca := m.Pos(e.A)
			rb, cb := m.Pos(e.B)
			fmt.Printf("  %d (%d,%d) - %d (%d,%d)\n", e.A, ra, ca, e.B, rb, cb)
		}
	}
	return nil
}

// showTopo summarizes a -topo spec graph: counts, connectivity, diameter
// and path length (exact below exactThreshold nodes, sampled above),
// degree distribution, and the default sender/receiver attach points.
func showTopo(spec string, samples int, showEdges bool, exportPath string) error {
	sp, err := topoio.ParseSpec(spec)
	if err != nil {
		return err
	}
	built, err := sp.Build()
	if err != nil {
		return err
	}
	g := built.Graph
	if exportPath != "" {
		if err := topoio.WriteFile(exportPath, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", exportPath)
	}
	csr := topology.NewCSR(g)
	fmt.Printf("topo %s\n", spec)
	if g.Len() <= exactThreshold {
		fmt.Printf("nodes: %d  edges: %d  connected: %v  diameter: %d  avg shortest path: %.2f\n",
			g.Len(), g.NumEdges(), csr.Connected(), g.Diameter(), avgPathLength(g))
	} else {
		fmt.Printf("nodes: %d  edges: %d  connected: %v  diameter: >=%d (double-sweep, %d samples)  avg shortest path: ~%.2f (sampled)\n",
			g.Len(), g.NumEdges(), csr.Connected(),
			csr.EstimateDiameter(samples, 1), samples,
			csr.AvgPathLengthSampled(samples, 1))
	}
	printHistogram(g)
	fmt.Printf("default attach: %d min-degree nodes (senders=receivers), e.g. %v\n",
		len(built.Senders), head(built.Senders, 8))

	if showEdges {
		fmt.Println("edges:")
		for _, e := range g.Edges() {
			fmt.Printf("  %d - %d\n", e.A, e.B)
		}
	}
	return nil
}

// printHistogram prints the degree distribution: the exact histogram when
// there are few distinct degrees (meshes, fabrics), or summary statistics
// plus the extreme rows for heavy-tailed graphs.
func printHistogram(g *topology.Graph) {
	hist := g.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	if len(degrees) <= 12 {
		fmt.Println("degree histogram:")
		for _, d := range degrees {
			fmt.Printf("  degree %2d: %d nodes\n", d, hist[d])
		}
		return
	}
	// Heavy-tailed: quantiles plus the head and tail of the distribution.
	counts := g.DegreeCounts(nil)
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	total := 0
	for _, d := range sorted {
		total += d
	}
	n := len(sorted)
	fmt.Printf("degree distribution (%d distinct degrees): min %d  p50 %d  mean %.2f  p90 %d  p99 %d  max %d\n",
		len(degrees), sorted[0], sorted[n/2], float64(total)/float64(n),
		sorted[n*9/10], sorted[n*99/100], sorted[n-1])
	for _, d := range degrees[:3] {
		fmt.Printf("  degree %6d: %d nodes\n", d, hist[d])
	}
	fmt.Printf("  ...\n")
	for _, d := range degrees[len(degrees)-3:] {
		fmt.Printf("  degree %6d: %d nodes\n", d, hist[d])
	}
}

// head returns up to k elements of s for display.
func head(s []topology.NodeID, k int) []topology.NodeID {
	if len(s) > k {
		return s[:k]
	}
	return s
}

// avgPathLength returns the mean shortest-path length over all node pairs.
func avgPathLength(g *topology.Graph) float64 {
	total, pairs := 0, 0
	for i := 0; i < g.Len(); i++ {
		for _, d := range g.BFS(topology.NodeID(i)) {
			if d > 0 {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}
