package main

import "testing"

func TestRunMinimal(t *testing.T) {
	err := run([]string{"-protocol", "dbf", "-trials", "1", "-detail"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLinkState(t *testing.T) {
	if err := run([]string{"-protocol", "ls", "-trials", "1", "-rate", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "ospf"}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunRejectsBadDegree(t *testing.T) {
	if err := run([]string{"-degree", "2"}); err == nil {
		t.Error("degree 2 accepted")
	}
}

func TestRunMultiFlow(t *testing.T) {
	if err := run([]string{"-protocol", "dbf", "-trials", "1", "-flows", "2"}); err != nil {
		t.Fatal(err)
	}
}
