// Command convsim runs a single convergence experiment and prints its
// measurements: drops by cause, convergence times, and the per-second
// throughput/delay series around the failure.
//
// Usage:
//
//	convsim [-protocol dbf] [-degree 4] [-rows 7] [-cols 7] [-trials 10]
//	        [-topo ba:n=10000,m=2] [-senderstart 390s] [-failat 400s]
//	        [-end 800s] [-seed 1] [-flows 1] [-rate 20] [-shards 8]
//	        [-scenario "fail link 3-7 @400s; loss link 1-2 p=0.01 @410s"]
//	        [-timeline out.ndjson] [-cpuprofile FILE] [-memprofile FILE]
//
// With -scenario, the default single-link failure schedule is replaced by
// the given disturbance script (grammar and semantics: SCENARIOS.md).
// With -timeline, trial 0 is replayed with the convergence timeline
// attached and the records are written as NDJSON (schema: OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"routeconv"
	"routeconv/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "convsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("convsim", flag.ContinueOnError)
	ef := core.ExperimentFlags{MeshFlags: core.DefaultMeshFlags(), Protocol: "dbf", Seed: 1}
	ef.Register(fs)
	var (
		trials      = fs.Int("trials", 10, "independent trials")
		flows       = fs.Int("flows", 1, "concurrent sender/receiver pairs")
		rate        = fs.Int("rate", 20, "packets per second per flow")
		senderStart = fs.Duration("senderstart", 0, "override when the probe flow starts (default: paper's 390s)")
		failAt      = fs.Duration("failat", 0, "override the failure time (default: paper's 400s)")
		end         = fs.Duration("end", 0, "override the simulation horizon (default: paper's 800s)")
		ecmp        = fs.Bool("ecmp", false, "install equal-cost multipath sets (dbf and ls)")
		detail      = fs.Bool("detail", false, "print per-trial detail")
		timeline    = fs.String("timeline", "", "write trial 0's convergence timeline to this NDJSON file")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "convsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "convsim: memprofile:", err)
			}
		}()
	}
	cfg, err := ef.Config()
	if err != nil {
		return err
	}
	cfg.Trials = *trials
	cfg.Flows = *flows
	cfg.PacketInterval = time.Second / time.Duration(*rate)
	if *senderStart > 0 {
		cfg.SenderStart = *senderStart
	}
	if *failAt > 0 {
		cfg.FailAt = *failAt
	}
	if *end > 0 {
		cfg.End = *end
	}
	if *ecmp {
		cfg.Vector.ECMP = true
		cfg.LS.ECMP = true
	}

	res, err := routeconv.Run(cfg)
	if err != nil {
		return err
	}

	if cfg.Topo != "" {
		fmt.Printf("protocol=%s topo=%s trials=%d flows=%d rate=%d pps\n",
			cfg.Protocol, cfg.Topo, *trials, *flows, *rate)
	} else {
		fmt.Printf("protocol=%s degree=%d mesh=%dx%d trials=%d flows=%d rate=%d pps\n",
			cfg.Protocol, ef.Degree, ef.Rows, ef.Cols, *trials, *flows, *rate)
	}
	fmt.Printf("failure at %v on the flow's forwarding path; run ends at %v\n\n", cfg.FailAt, cfg.End)
	fmt.Printf("warmed-up trials:            %d/%d\n", res.WarmedUpTrials, *trials)
	fmt.Printf("mean drops (no route):       %.1f\n", res.MeanNoRouteDrops)
	fmt.Printf("mean drops (TTL expired):    %.1f\n", res.MeanTTLDrops)
	fmt.Printf("mean drops (onto dead link): %.1f\n", res.MeanLinkDrops)
	fmt.Printf("mean drops (queue overflow): %.1f\n", res.MeanQueueDrops)
	if res.MeanRandomLoss > 0 {
		fmt.Printf("mean drops (random loss):    %.1f\n", res.MeanRandomLoss)
	}
	fmt.Printf("forwarding convergence:      %.2f s\n", res.MeanFwdConv)
	fmt.Printf("routing convergence:         %.2f s\n", res.MeanRoutingConv)
	fmt.Printf("transient forwarding paths:  %.1f\n", res.MeanTransientPath)
	fmt.Printf("delivery ratio:              %.4f\n", res.DeliveryRatio)

	if *detail {
		fmt.Println()
		for i, tr := range res.Trials {
			fmt.Printf("trial %2d: sender@%d receiver@%d failed=%d-%d warmed=%v drops(noroute=%d ttl=%d link=%d queue=%d) fwd=%.2fs routing=%.2fs\n",
				i, tr.SenderRouter, tr.ReceiverRouter, tr.FailedLink.A, tr.FailedLink.B, tr.WarmedUp,
				tr.NoRouteDrops, tr.TTLDrops, tr.LinkFailureDrops, tr.QueueDrops,
				tr.ForwardingConvergence.Seconds(), tr.RoutingConvergence.Seconds())
		}
	}

	// Print the throughput/delay window around the failure.
	failBin := int((cfg.FailAt - cfg.SenderStart) / time.Second)
	lo, hi := failBin-5, failBin+45
	if lo < 0 {
		lo = 0
	}
	if hi > len(res.MeanThroughput) {
		hi = len(res.MeanThroughput)
	}
	fmt.Printf("\ninstantaneous throughput and delay (t in seconds since sender start; failure at t=%d):\n", failBin)
	fmt.Printf("%6s  %12s  %10s\n", "t_s", "pps", "delay_s")
	for bin := lo; bin < hi; bin++ {
		delay := "-"
		if d := res.MeanDelay[bin]; d == d { // not NaN
			delay = fmt.Sprintf("%.4f", d)
		}
		fmt.Printf("%6d  %12.1f  %10s\n", bin, res.MeanThroughput[bin], delay)
	}

	if *timeline != "" {
		if err := writeTimeline(cfg, *timeline); err != nil {
			return err
		}
		fmt.Printf("\nwrote trial 0 convergence timeline to %s\n", *timeline)
	}
	return nil
}

// writeTimeline replays trial 0 with the convergence timeline attached and
// writes the records as NDJSON.
func writeTimeline(cfg routeconv.Config, path string) error {
	tl := routeconv.NewTimeline()
	if _, err := routeconv.TraceTimeline(cfg, 0, tl); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
