package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDegrees(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"3-6", []int{3, 4, 5, 6}, false},
		{"4", []int{4}, false},
		{"3,5,8", []int{3, 5, 8}, false},
		{"3-5,8", []int{3, 4, 5, 8}, false},
		{" 3 , 4 ", []int{3, 4}, false},
		{"", nil, true},
		{"6-3", nil, true},
		{"abc", nil, true},
		{"3-x", nil, true},
	}
	for _, c := range cases {
		got, err := parseDegrees(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseDegrees(%q) succeeded with %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDegrees(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseDegrees(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseDegrees(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestContainsInt(t *testing.T) {
	if !containsInt([]int{1, 2, 3}, 2) || containsInt([]int{1, 3}, 2) {
		t.Error("containsInt wrong")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	err := run(context.Background(), []string{
		"-trials", "1",
		"-degrees", "4",
		"-protocols", "dbf",
		"-series-degrees", "4",
		"-out", dir,
		"-q",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig3_drops_no_route.txt", "fig3_drops_no_route.csv",
		"fig4_ttl_expirations.txt",
		"fig5_throughput_deg4.csv",
		"fig6a_forwarding_convergence.txt",
		"fig6b_routing_convergence.txt",
		"fig7_delay_deg4.csv",
		"summary.txt",
	} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing output %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("output %s is empty", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3_drops_no_route.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "degree,dbf_drops") {
		t.Errorf("fig3 CSV header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunWritesReport(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.md")
	err := run(context.Background(), []string{
		"-trials", "1", "-degrees", "4", "-protocols", "dbf",
		"-series-degrees", "4", "-out", dir, "-report", report, "-q",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"# Reproduction report", "Figure 3", "Figure 6(b)", "Figures 5 and 7 — degree 4", "Per-cell summary"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-degrees", "junk"},
		{"-protocols", "nonesuch"},
		{"-series-degrees", "x"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
