// Command figures regenerates every table and figure of the paper's
// evaluation (Figures 3–7 of Pei et al., DSN 2003) and writes them as
// aligned text and CSV files.
//
// Usage:
//
//	figures [-trials N] [-degrees 3-16] [-protocols rip,dbf,bgp,bgp3]
//	        [-series-degrees 3,4,5,6] [-seed S] [-out DIR] [-cache DIR]
//
// A full paper-scale run is `figures -trials 100`; the defaults trade
// trial count for wall-clock time while preserving every qualitative
// result.
//
// Figure regeneration is incremental: the sweep behind the figures runs on
// the internal/sweep orchestrator, whose content-addressed cache (under
// -cache, default OUT/.sweep/cache) serves every cell whose configuration
// is unchanged since the last run. Re-running with one new degree only
// simulates that degree's cells; an interrupted run resumes from its
// journal. All outputs are written atomically (temp file + rename), so an
// interrupted run never leaves truncated files in -out.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"routeconv"
	"routeconv/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		trials        = fs.Int("trials", 20, "trials per (protocol, degree) cell (paper: 100)")
		degreesFlag   = fs.String("degrees", "3-10", "node degrees to sweep, e.g. 3-16 or 3,4,5,6")
		protocolsFlag = fs.String("protocols", "rip,dbf,bgp,bgp3", "comma-separated protocols")
		seriesFlag    = fs.String("series-degrees", "3,4,5,6", "degrees for the Figure 5/7 time series")
		seed          = fs.Int64("seed", 1, "base random seed")
		outDir        = fs.String("out", "results", "output directory")
		cacheDir      = fs.String("cache", "", "sweep cache directory (default OUT/.sweep/cache; \"off\" disables caching)")
		report        = fs.String("report", "", "also write a self-contained markdown report to this path")
		quiet         = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	degrees, err := parseDegrees(*degreesFlag)
	if err != nil {
		return err
	}
	seriesDegrees, err := parseDegrees(*seriesFlag)
	if err != nil {
		return err
	}
	var protocols []string
	for _, name := range strings.Split(*protocolsFlag, ",") {
		name = strings.TrimSpace(name)
		if _, err := routeconv.ParseProtocol(name); err != nil {
			return err
		}
		protocols = append(protocols, name)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	spec := sweep.Spec{
		Name:      "figures",
		Protocols: protocols,
		Degrees:   degrees,
		Trials:    *trials,
		Seed:      *seed,
	}
	stateDir := filepath.Join(*outDir, ".sweep")
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return err
	}
	cd := *cacheDir
	switch cd {
	case "":
		cd = filepath.Join(stateDir, "cache")
	case "off":
		cd = ""
	}
	opts := sweep.Options{
		CacheDir:     cd,
		JournalPath:  filepath.Join(stateDir, "journal.jsonl"),
		ManifestPath: filepath.Join(stateDir, "manifest.json"),
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	out, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		return err
	}
	sr := out.SweepResult()

	outputs := []struct {
		name  string
		table *routeconv.Table
	}{
		{"fig3_drops_no_route", sr.Figure3Table()},
		{"fig4_ttl_expirations", sr.Figure4Table()},
		{"fig6a_forwarding_convergence", sr.Figure6aTable()},
		{"fig6b_routing_convergence", sr.Figure6bTable()},
		{"summary", sr.SummaryTable()},
	}
	for _, d := range seriesDegrees {
		if !containsInt(degrees, d) {
			continue
		}
		outputs = append(outputs,
			struct {
				name  string
				table *routeconv.Table
			}{fmt.Sprintf("fig5_throughput_deg%d", d), sr.Figure5Table(d)},
			struct {
				name  string
				table *routeconv.Table
			}{fmt.Sprintf("fig7_delay_deg%d", d), sr.Figure7Table(d)},
		)
	}
	for _, o := range outputs {
		if err := writeTable(o.table, filepath.Join(*outDir, o.name)); err != nil {
			return err
		}
		fmt.Printf("wrote %s.{txt,csv}\n", filepath.Join(*outDir, o.name))
	}
	for _, d := range seriesDegrees {
		if !containsInt(degrees, d) {
			continue
		}
		path := filepath.Join(*outDir, fmt.Sprintf("fig5_fig7_deg%d.plot.txt", d))
		var buf bytes.Buffer
		if err := sr.Figure5Plot(d).Write(&buf); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(&buf); err != nil {
			return err
		}
		if err := sr.Figure7Plot(d).Write(&buf); err != nil {
			return err
		}
		if err := sweep.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *report != "" {
		var buf bytes.Buffer
		if err := sr.WriteReport(&buf); err != nil {
			return err
		}
		if err := sweep.WriteFileAtomic(*report, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *report)
	}
	return nil
}

// parseDegrees accepts "3-8" or "3,4,5" (or a mix like "3-5,8").
func parseDegrees(s string) ([]int, error) { return sweep.ParseDegrees(s) }

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// writeTable renders a table and writes the .txt and .csv files atomically,
// so an interrupted run never leaves a truncated output.
func writeTable(t *routeconv.Table, base string) error {
	var txt bytes.Buffer
	if err := t.WriteText(&txt); err != nil {
		return err
	}
	if err := sweep.WriteFileAtomic(base+".txt", txt.Bytes(), 0o644); err != nil {
		return err
	}
	var csv bytes.Buffer
	if err := t.WriteCSV(&csv); err != nil {
		return err
	}
	return sweep.WriteFileAtomic(base+".csv", csv.Bytes(), 0o644)
}
