// Command figures regenerates every table and figure of the paper's
// evaluation (Figures 3–7 of Pei et al., DSN 2003) and writes them as
// aligned text and CSV files.
//
// Usage:
//
//	figures [-trials N] [-degrees 3-16] [-protocols rip,dbf,bgp,bgp3]
//	        [-series-degrees 3,4,5,6] [-seed S] [-out DIR]
//
// A full paper-scale run is `figures -trials 100`; the defaults trade
// trial count for wall-clock time while preserving every qualitative
// result.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"routeconv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		trials        = fs.Int("trials", 20, "trials per (protocol, degree) cell (paper: 100)")
		degreesFlag   = fs.String("degrees", "3-10", "node degrees to sweep, e.g. 3-16 or 3,4,5,6")
		protocolsFlag = fs.String("protocols", "rip,dbf,bgp,bgp3", "comma-separated protocols")
		seriesFlag    = fs.String("series-degrees", "3,4,5,6", "degrees for the Figure 5/7 time series")
		seed          = fs.Int64("seed", 1, "base random seed")
		outDir        = fs.String("out", "results", "output directory")
		report        = fs.String("report", "", "also write a self-contained markdown report to this path")
		quiet         = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	degrees, err := parseDegrees(*degreesFlag)
	if err != nil {
		return err
	}
	seriesDegrees, err := parseDegrees(*seriesFlag)
	if err != nil {
		return err
	}
	var protocols []routeconv.ProtocolKind
	for _, name := range strings.Split(*protocolsFlag, ",") {
		p, err := routeconv.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		protocols = append(protocols, p)
	}

	sc := routeconv.DefaultSweep(*trials)
	sc.Base.Seed = *seed
	sc.Degrees = degrees
	sc.Protocols = protocols

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}
	sr, err := routeconv.RunSweep(sc, progress)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	outputs := []struct {
		name  string
		table *routeconv.Table
	}{
		{"fig3_drops_no_route", sr.Figure3Table()},
		{"fig4_ttl_expirations", sr.Figure4Table()},
		{"fig6a_forwarding_convergence", sr.Figure6aTable()},
		{"fig6b_routing_convergence", sr.Figure6bTable()},
		{"summary", sr.SummaryTable()},
	}
	for _, d := range seriesDegrees {
		if !containsInt(degrees, d) {
			continue
		}
		outputs = append(outputs,
			struct {
				name  string
				table *routeconv.Table
			}{fmt.Sprintf("fig5_throughput_deg%d", d), sr.Figure5Table(d)},
			struct {
				name  string
				table *routeconv.Table
			}{fmt.Sprintf("fig7_delay_deg%d", d), sr.Figure7Table(d)},
		)
	}
	for _, o := range outputs {
		if err := writeTable(o.table, filepath.Join(*outDir, o.name)); err != nil {
			return err
		}
		fmt.Printf("wrote %s.{txt,csv}\n", filepath.Join(*outDir, o.name))
	}
	for _, d := range seriesDegrees {
		if !containsInt(degrees, d) {
			continue
		}
		path := filepath.Join(*outDir, fmt.Sprintf("fig5_fig7_deg%d.plot.txt", d))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := sr.Figure5Plot(d).Write(f); err != nil {
			f.Close()
			return err
		}
		if _, err := fmt.Fprintln(f); err != nil {
			f.Close()
			return err
		}
		if err := sr.Figure7Plot(d).Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		if err := sr.WriteReport(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *report)
	}
	return nil
}

// parseDegrees accepts "3-8" or "3,4,5" (or a mix like "3-5,8").
func parseDegrees(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad degree range %q", part)
			}
			for d := a; d <= b; d++ {
				out = append(out, d)
			}
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad degree %q", part)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no degrees in %q", s)
	}
	return out, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func writeTable(t *routeconv.Table, base string) error {
	txt, err := os.Create(base + ".txt")
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.WriteText(txt); err != nil {
		return err
	}
	csv, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer csv.Close()
	return t.WriteCSV(csv)
}
