package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastSpec is a sweep spec small enough for unit tests: a short horizon
// and one protocol at two degrees.
const fastSpec = `{
	"name": "unit",
	"protocols": ["dbf"],
	"degrees": [3, 4],
	"trials": 1,
	"seed": 1,
	"end": "450s"
}`

func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(fastSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out")
	spec := writeSpec(t)
	if err := run(context.Background(), []string{"-spec", spec, "-out", out, "-q"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"summary.txt", "summary.csv", "manifest.json", "journal.jsonl"} {
		data, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Errorf("missing %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	var m struct {
		TotalCells int `json:"total_cells"`
		Executed   int `json:"executed"`
		CacheHits  int `json:"cache_hits"`
	}
	read := func() {
		data, err := os.ReadFile(filepath.Join(out, "manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
	}
	read()
	if m.TotalCells != 2 || m.Executed != 2 || m.CacheHits != 0 {
		t.Fatalf("first run manifest: %+v", m)
	}
	// Second invocation: everything from cache.
	if err := run(context.Background(), []string{"-spec", spec, "-out", out, "-q"}); err != nil {
		t.Fatal(err)
	}
	read()
	if m.CacheHits != 2 || m.Executed != 0 {
		t.Fatalf("second run manifest not fully cached: %+v", m)
	}
}

func TestRunPlanMode(t *testing.T) {
	spec := writeSpec(t)
	// -plan only expands; it must not create any output directory.
	out := filepath.Join(t.TempDir(), "nonexistent")
	if err := run(context.Background(), []string{"-spec", spec, "-out", out, "-plan"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Errorf("plan mode touched the output directory")
	}
}

func TestRunGridFlags(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out")
	err := run(context.Background(), []string{
		"-protocols", "dbf", "-degrees", "3", "-trials", "1", "-out", out, "-q",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "protocol,degree,") {
		t.Errorf("summary header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-degrees", "junk"},
		{"-protocols", "nonesuch", "-degrees", "3"},
		{"-spec", "/nonexistent/spec.json"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
