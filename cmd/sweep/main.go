// Command sweep orchestrates experiment grids: it expands a declarative
// sweep specification (protocols × node degrees × failure models) into
// independent cells and executes them on a worker pool with a
// content-addressed result cache and a checkpoint journal. Re-running the
// same sweep serves unchanged cells from the cache; an interrupted sweep
// (Ctrl-C, crash) resumes from its journal and re-executes only the
// unfinished cells.
//
// Usage:
//
//	sweep [-spec spec.json] [-protocols rip,dbf,bgp,bgp3] [-degrees 3-10]
//	      [-topos "ba:n=10000,m=2;fattree:k=8"] [-trials N] [-seed S]
//	      [-scenarios "fail link 3-7 @400s|churn links rate=0.1/s @450s..600s"]
//	      [-shards K] [-metrics] [-out DIR] [-cache DIR] [-workers N]
//	      [-force] [-plan] [-q] [-cpuprofile FILE] [-memprofile FILE]
//
// Outputs, written atomically under -out: summary.{txt,csv} (the per-cell
// headline metrics) and manifest.json (spec, module version, per-cell keys,
// seeds, wall times and cache provenance).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"routeconv/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath      = fs.String("spec", "", "JSON sweep specification (overrides the grid flags)")
		protocolsFlag = fs.String("protocols", "rip,dbf,bgp,bgp3", "comma-separated protocols")
		degreesFlag   = fs.String("degrees", "3-10", "node degrees, e.g. 3-16 or 3,4,5,6 (\"\" with -topos for a topo-only sweep)")
		toposFlag     = fs.String("topos", "", "semicolon-separated topology specs, e.g. ba:n=10000,m=2;fattree:k=8")
		scenariosFlag = fs.String("scenarios", "", "|-separated scenario scripts swept as failure modes (scripts use ';' internally; see SCENARIOS.md)")
		trials        = fs.Int("trials", 20, "trials per cell (paper: 100)")
		seed          = fs.Int64("seed", 1, "base random seed")
		flowsFlag     = fs.String("flows", "", "flow counts as an extra axis, e.g. 1,100,10000 (default: the base config's single flow)")
		mode          = fs.String("mode", "", "background-flow traffic engine for every cell: packet, fluid, hybrid")
		shards        = fs.Int("shards", 0, "split every cell's trials over this many parallel shard simulators (0/1 = sequential)")
		outDir        = fs.String("out", filepath.Join("results", "sweep"), "output directory (summary, manifest, journal)")
		cacheDir      = fs.String("cache", "", "result cache directory (default OUT/cache; \"off\" disables)")
		workers       = fs.Int("workers", 0, "concurrent cells (default GOMAXPROCS)")
		force         = fs.Bool("force", false, "re-execute every cell, ignoring cache and journal")
		metrics       = fs.Bool("metrics", false, "record obs counters per cell into manifest.json (changes cache keys)")
		plan          = fs.Bool("plan", false, "print the expanded cell plan and exit without running")
		quiet         = fs.Bool("q", false, "suppress progress output")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile    = fs.String("memprofile", "", "write a heap profile to this file after the sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", err)
			}
		}()
	}

	var spec sweep.Spec
	if *specPath != "" {
		s, err := sweep.LoadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = s
	} else {
		var degrees []int
		if *degreesFlag != "" {
			d, err := sweep.ParseDegrees(*degreesFlag)
			if err != nil {
				return err
			}
			degrees = d
		}
		var topos []string
		if *toposFlag != "" {
			for _, t := range strings.Split(*toposFlag, ";") {
				if t = strings.TrimSpace(t); t != "" {
					topos = append(topos, t)
				}
			}
		}
		spec = sweep.Spec{
			Protocols: strings.Split(*protocolsFlag, ","),
			Degrees:   degrees,
			Topos:     topos,
			Trials:    *trials,
			Seed:      *seed,
		}
	}
	if *scenariosFlag != "" {
		for _, sc := range strings.Split(*scenariosFlag, "|") {
			if sc = strings.TrimSpace(sc); sc != "" {
				spec.Scenarios = append(spec.Scenarios, sc)
			}
		}
	}
	if *flowsFlag != "" {
		// Flow counts share the degree-list grammar (lists and ranges).
		flows, err := sweep.ParseDegrees(*flowsFlag)
		if err != nil {
			return fmt.Errorf("bad -flows: %w", err)
		}
		spec.Flows = flows
	}
	if *mode != "" {
		spec.Mode = *mode
	}
	if *shards > 0 {
		spec.Shards = *shards
	}
	if *metrics {
		spec.Metrics = true
	}

	if *plan {
		cells, err := spec.Expand()
		if err != nil {
			return err
		}
		for _, c := range cells {
			fmt.Printf("%-18s trials=%-4d seed=%-4d key=%s\n", c.ID(), c.Config.Trials, c.Config.Seed, c.Key[:16])
		}
		fmt.Printf("%d cells\n", len(cells))
		return nil
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	cd := *cacheDir
	switch cd {
	case "":
		cd = filepath.Join(*outDir, "cache")
	case "off":
		cd = ""
	}
	opts := sweep.Options{
		CacheDir:     cd,
		JournalPath:  filepath.Join(*outDir, "journal.jsonl"),
		ManifestPath: filepath.Join(*outDir, "manifest.json"),
		Workers:      *workers,
		Force:        *force,
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	out, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted — completed cells are journaled; re-run to resume: %w", err)
		}
		return err
	}

	sr := out.SweepResult()
	table := sr.SummaryTable()
	var txt, csv bytes.Buffer
	if err := table.WriteText(&txt); err != nil {
		return err
	}
	if err := table.WriteCSV(&csv); err != nil {
		return err
	}
	if err := sweep.WriteFileAtomic(filepath.Join(*outDir, "summary.txt"), txt.Bytes(), 0o644); err != nil {
		return err
	}
	if err := sweep.WriteFileAtomic(filepath.Join(*outDir, "summary.csv"), csv.Bytes(), 0o644); err != nil {
		return err
	}
	if _, err := os.Stdout.Write(txt.Bytes()); err != nil {
		return err
	}
	fmt.Printf("\n%d cells (%d simulated, %d cached) in %v\nwrote %s and summary.{txt,csv}\n",
		len(out.Cells), out.Executed, out.CacheHits, out.Wall.Round(1e6),
		filepath.Join(*outDir, "manifest.json"))
	return nil
}
