// Command tracer replays one trial of an experiment and prints its routing
// and forwarding timeline around the failure — the kind of trace-file
// analysis the paper used to explain transient loops (§5.2).
//
// Usage:
//
//	tracer [-protocol bgp] [-degree 5] [-trial 0] [-seed 1] [-window 60s]
//	       [-timeline out.ndjson]
//
// With -timeline, the replayed trial's convergence timeline (link, FIB,
// withdrawal and flap-damping events) is written as NDJSON (schema:
// OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"routeconv/internal/core"
	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracer", flag.ContinueOnError)
	ef := core.ExperimentFlags{MeshFlags: core.DefaultMeshFlags(), Protocol: "bgp", Seed: 1}
	ef.Degree = 5
	ef.Register(fs)
	var (
		trial    = fs.Int("trial", 0, "which trial of the experiment to replay")
		window   = fs.Duration("window", 60*time.Second, "how long after the failure to print events")
		allDsts  = fs.Bool("all-destinations", false, "print route changes for every destination, not just the flow's")
		timeline = fs.String("timeline", "", "write the trial's convergence timeline to this NDJSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := ef.Config()
	if err != nil {
		return err
	}
	cfg.Trials = *trial + 1
	cfg.Net.RecordHops = true

	var tl *obs.Timeline
	if *timeline != "" {
		tl = obs.NewTimeline()
	}
	tr, col, err := core.TraceObserved(cfg, *trial, tl)
	if err != nil {
		return err
	}
	if tl != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		if err := tl.WriteNDJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote convergence timeline (%d records) to %s\n", tl.Len(), *timeline)
	}

	rel := func(at time.Duration) string {
		return fmt.Sprintf("%+9.3fs", (at - cfg.FailAt).Seconds())
	}

	fmt.Printf("trial %d of %s at degree %d (seed %d)\n", *trial, cfg.Protocol, ef.Degree, tr.Seed)
	fmt.Printf("flow: host→router %d ... router %d→host; failed link %d-%d at t=%v\n",
		tr.SenderRouter, tr.ReceiverRouter, tr.FailedLink.A, tr.FailedLink.B, cfg.FailAt)
	fmt.Printf("outcome: delivered %d/%d, drops noroute=%d ttl=%d linkfail=%d queue=%d, loop escapes=%d\n",
		tr.Delivered, tr.Sent, tr.NoRouteDrops, tr.TTLDrops, tr.LinkFailureDrops, tr.QueueDrops, tr.LoopEscapes)
	fmt.Printf("convergence: forwarding %.3fs, routing %.3fs, %d transient paths\n\n",
		tr.ForwardingConvergence.Seconds(), tr.RoutingConvergence.Seconds(), tr.TransientPaths)

	from, to := cfg.FailAt-5*time.Second, cfg.FailAt+*window

	fmt.Println("forwarding path timeline (times relative to the failure):")
	for _, ps := range col.PathHistory {
		if ps.At < from || ps.At > to {
			continue
		}
		state := "BROKEN"
		if ps.OK {
			state = fmt.Sprintf("ok, %d hops", len(ps.Path)-1)
		}
		fmt.Printf("  %s  %-12s %s\n", rel(ps.At), state, pathString(ps.Path))
	}

	_, dst := col.Flow()
	fmt.Println("\nroute changes (node → destination):")
	count := 0
	for _, rc := range col.RouteChanges {
		if rc.At < from || rc.At > to {
			continue
		}
		if !*allDsts && rc.Dst != dst {
			continue
		}
		count++
		if count > 200 {
			fmt.Println("  ... (truncated at 200 events)")
			break
		}
		if rc.Removed {
			fmt.Printf("  %s  node %-3d lost route to %d\n", rel(rc.At), rc.Node, rc.Dst)
		} else {
			fmt.Printf("  %s  node %-3d routes %d via %d\n", rel(rc.At), rc.Node, rc.Dst, rc.NextHop)
		}
	}

	fmt.Println("\ndrop timeline (packets per second after the failure, by cause):")
	printDropBins(col.Drops, cfg.FailAt, to)
	return nil
}

// printDropBins renders per-second drop counts by cause over [failAt, to].
func printDropBins(drops []trace.Drop, failAt, to time.Duration) {
	type binKey struct {
		bin    int
		reason netsim.DropReason
	}
	bins := make(map[binKey]int)
	maxBin := 0
	for _, d := range drops {
		if d.Control || d.At < failAt || d.At > to {
			continue
		}
		bin := int((d.At - failAt) / time.Second)
		bins[binKey{bin, d.Reason}]++
		if bin > maxBin {
			maxBin = bin
		}
	}
	if len(bins) == 0 {
		fmt.Println("  (no data drops in the window)")
		return
	}
	reasons := []netsim.DropReason{netsim.DropNoRoute, netsim.DropTTLExpired, netsim.DropQueueOverflow, netsim.DropLinkFailure}
	for bin := 0; bin <= maxBin; bin++ {
		var parts []string
		for _, r := range reasons {
			if n := bins[binKey{bin, r}]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s×%d", r, n))
			}
		}
		if len(parts) > 0 {
			fmt.Printf("  +%3ds  %s\n", bin, strings.Join(parts, "  "))
		}
	}
}

func pathString(path []netsim.NodeID) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, "→")
}
