package main

import "testing"

func TestRunReplay(t *testing.T) {
	if err := run([]string{"-protocol", "dbf", "-degree", "4", "-window", "30s"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllDestinations(t *testing.T) {
	if err := run([]string{"-protocol", "ls", "-degree", "6", "-all-destinations"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "nonesuch"}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunRejectsBadTrial(t *testing.T) {
	if err := run([]string{"-trial", "-1"}); err == nil {
		t.Error("negative trial accepted")
	}
}
