module routeconv

go 1.22
