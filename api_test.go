package routeconv

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fastConfig compresses the schedule: fine for every protocol except
// slow-MRAI BGP.
func fastConfig(p ProtocolKind) Config {
	cfg := DefaultConfig()
	cfg.Protocol = p
	cfg.SenderStart = 190 * time.Second
	cfg.FailAt = 200 * time.Second
	cfg.End = 350 * time.Second
	cfg.Trials = 2
	return cfg
}

func TestPublicRun(t *testing.T) {
	res, err := Run(fastConfig(ProtoDBF))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio <= 0 || res.DeliveryRatio > 1 {
		t.Errorf("DeliveryRatio = %v", res.DeliveryRatio)
	}
	if len(res.Trials) != 2 {
		t.Errorf("trials = %d, want 2", len(res.Trials))
	}
}

func TestPublicRunContext(t *testing.T) {
	res, err := RunContext(context.Background(), fastConfig(ProtoDBF))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 2 {
		t.Errorf("trials = %d, want 2", len(res.Trials))
	}
	// A cancelled context aborts the experiment instead of finishing the
	// trial batch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := fastConfig(ProtoDBF)
	cfg.Trials = 50
	if _, err := RunContext(ctx, cfg); err != context.Canceled {
		t.Errorf("cancelled RunContext returned %v, want context.Canceled", err)
	}
}

func TestPublicDefaultsMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Rows != 7 || cfg.Cols != 7 {
		t.Errorf("mesh = %dx%d, want 7x7", cfg.Rows, cfg.Cols)
	}
	if cfg.SenderStart != 390*time.Second || cfg.FailAt != 400*time.Second || cfg.End != 800*time.Second {
		t.Errorf("schedule = %v/%v/%v, want 390s/400s/800s", cfg.SenderStart, cfg.FailAt, cfg.End)
	}
	if cfg.PacketInterval != 50*time.Millisecond {
		t.Errorf("PacketInterval = %v, want 50ms (20 pps)", cfg.PacketInterval)
	}
	if cfg.TTL != 127 {
		t.Errorf("TTL = %d, want 127", cfg.TTL)
	}
	if cfg.Net.QueueLimit != 20 {
		t.Errorf("QueueLimit = %d, want 20", cfg.Net.QueueLimit)
	}
	if cfg.Net.LinkDelay != time.Millisecond {
		t.Errorf("LinkDelay = %v, want 1ms", cfg.Net.LinkDelay)
	}
	if v := DefaultVectorConfig(); v.PeriodicInterval != 30*time.Second || v.Infinity != 16 {
		t.Errorf("vector defaults = %+v", v)
	}
	if bc := DefaultBGPConfig(); bc.MRAI != 30*time.Second {
		t.Errorf("BGP MRAI = %v, want 30s", bc.MRAI)
	}
	if bc := BGP3Config(); bc.MRAI != 3*time.Second {
		t.Errorf("BGP3 MRAI = %v, want 3s", bc.MRAI)
	}
}

func TestPublicSweep(t *testing.T) {
	sc := DefaultSweep(1)
	if len(sc.Degrees) != 14 || sc.Degrees[0] != 3 || sc.Degrees[13] != 16 {
		t.Errorf("DefaultSweep degrees = %v, want 3..16", sc.Degrees)
	}
	if len(sc.Protocols) != 4 {
		t.Errorf("DefaultSweep protocols = %v", sc.Protocols)
	}

	sc.Base = fastConfig(ProtoDBF)
	sc.Base.Trials = 1
	sc.Degrees = []int{4}
	sc.Protocols = []ProtocolKind{ProtoDBF}
	sr, err := RunSweep(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sr.Figure3Table().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "degree,dbf_drops") {
		t.Errorf("figure 3 CSV header = %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
}

func TestPublicProtocolsAndDamping(t *testing.T) {
	if got := Protocols(); len(got) != 4 || got[0] != ProtoRIP || got[3] != ProtoBGP3 {
		t.Errorf("Protocols() = %v", got)
	}
	d := DefaultDampingConfig()
	if d.SuppressThreshold != 2000 || d.ReuseThreshold != 750 || d.HalfLife != 15*time.Minute {
		t.Errorf("DefaultDampingConfig = %+v", d)
	}
}

func TestPublicParseProtocol(t *testing.T) {
	for _, name := range []string{"rip", "dbf", "bgp", "bgp3", "ls"} {
		if _, err := ParseProtocol(name); err != nil {
			t.Errorf("ParseProtocol(%q): %v", name, err)
		}
	}
}

// TestObservation1 verifies the paper's Observation 1 end to end through
// the public API: drops decrease with node degree and virtually disappear
// at degree 6 for the alternate-path protocols, while RIP barely improves.
func TestObservation1(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell experiment")
	}
	run := func(p ProtocolKind, degree int) float64 {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.Degree = degree
		cfg.Trials = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanNoRouteDrops
	}
	dbf3, dbf6 := run(ProtoDBF, 3), run(ProtoDBF, 6)
	if dbf6 > 2 {
		t.Errorf("DBF drops at degree 6 = %.1f, want ≈ 0", dbf6)
	}
	if dbf3 <= dbf6 {
		t.Errorf("DBF drops should fall with degree: %.1f (deg 3) vs %.1f (deg 6)", dbf3, dbf6)
	}
	rip6 := run(ProtoRIP, 6)
	if rip6 < 50 {
		t.Errorf("RIP drops at degree 6 = %.1f, want still large (no alternate paths)", rip6)
	}
}
