package routeconv

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"routeconv/internal/sweep"
	"routeconv/internal/topology"
)

// benchConfig returns the paper's experiment shortened to a 100 s
// post-failure window: every protocol's convergence dynamics complete well
// inside it, and the benches stay fast.
func benchConfig(proto ProtocolKind, degree int) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Degree = degree
	cfg.Trials = 1
	cfg.End = cfg.FailAt + 100*time.Second
	return cfg
}

// runTrialBench runs one-trial experiments with varying seeds and returns
// the per-trial Result each iteration to the metric function.
func runTrialBench(b *testing.B, cfg Config, metrics func(*Result) map[string]float64) {
	b.Helper()
	totals := make(map[string]float64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for k, v := range metrics(res) {
			totals[k] += v
		}
	}
	for k, v := range totals {
		b.ReportMetric(v/float64(b.N), k)
	}
}

// BenchmarkFigure3 regenerates Figure 3's quantity — mean packet drops due
// to no route — for each protocol and node degree. The paper's shape: RIP
// stays high at every degree; DBF/BGP/BGP3 fall to ≈0 by degree 6.
func BenchmarkFigure3(b *testing.B) {
	for _, proto := range Protocols() {
		for _, degree := range []int{3, 4, 5, 6, 8} {
			b.Run(fmt.Sprintf("%s/degree%d", proto, degree), func(b *testing.B) {
				runTrialBench(b, benchConfig(proto, degree), func(r *Result) map[string]float64 {
					return map[string]float64{"drops-noroute": r.MeanNoRouteDrops}
				})
			})
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4's quantity — TTL expirations from
// transient loops. The paper's shape: RIP none; BGP ≈ 10× BGP3; worst at
// degree 5; none at degree ≥ 6.
func BenchmarkFigure4(b *testing.B) {
	for _, proto := range Protocols() {
		for _, degree := range []int{4, 5, 6} {
			b.Run(fmt.Sprintf("%s/degree%d", proto, degree), func(b *testing.B) {
				runTrialBench(b, benchConfig(proto, degree), func(r *Result) map[string]float64 {
					return map[string]float64{"ttl-expirations": r.MeanTTLDrops}
				})
			})
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5's quantity — instantaneous
// throughput around the failure — summarized as the seconds until the flow
// is back above 90% of its 20 pps rate. The paper's shape: RIP ≈ the 30 s
// periodic interval; BGP ≈ the 30 s MRAI; DBF/BGP3 within the ≤5 s damping.
func BenchmarkFigure5(b *testing.B) {
	for _, proto := range Protocols() {
		for _, degree := range []int{3, 4, 6} {
			b.Run(fmt.Sprintf("%s/degree%d", proto, degree), func(b *testing.B) {
				cfg := benchConfig(proto, degree)
				failBin := int((cfg.FailAt - cfg.SenderStart) / time.Second)
				runTrialBench(b, cfg, func(r *Result) map[string]float64 {
					recovery := float64(len(r.MeanThroughput) - failBin)
					for t := failBin + 1; t < len(r.MeanThroughput); t++ {
						if r.MeanThroughput[t] >= 18 {
							recovery = float64(t - failBin)
							break
						}
					}
					return map[string]float64{"recovery-s": recovery}
				})
			})
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6 — forwarding path convergence time
// (a) and network routing convergence time (b). The paper's Observation 4:
// BGP3's are far shorter than BGP's even where their drop counts match.
func BenchmarkFigure6(b *testing.B) {
	for _, proto := range Protocols() {
		for _, degree := range []int{4, 6, 8} {
			b.Run(fmt.Sprintf("%s/degree%d", proto, degree), func(b *testing.B) {
				runTrialBench(b, benchConfig(proto, degree), func(r *Result) map[string]float64 {
					return map[string]float64{
						"fwd-conv-s":     r.MeanFwdConv,
						"routing-conv-s": r.MeanRoutingConv,
					}
				})
			})
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7's quantity — instantaneous packet
// delay — summarized as the worst per-second mean delay after the failure
// relative to steady state. The paper's Observation 5: extra delay during
// convergence, worst where packets escape loops (degree 5).
func BenchmarkFigure7(b *testing.B) {
	for _, proto := range Protocols() {
		for _, degree := range []int{4, 5, 6} {
			b.Run(fmt.Sprintf("%s/degree%d", proto, degree), func(b *testing.B) {
				cfg := benchConfig(proto, degree)
				failBin := int((cfg.FailAt - cfg.SenderStart) / time.Second)
				runTrialBench(b, cfg, func(r *Result) map[string]float64 {
					steady, worst := 0.0, 0.0
					n := 0
					for t := 0; t < failBin && t < len(r.MeanDelay); t++ {
						if d := r.MeanDelay[t]; d == d {
							steady += d
							n++
						}
					}
					if n > 0 {
						steady /= float64(n)
					}
					for t := failBin; t < len(r.MeanDelay); t++ {
						if d := r.MeanDelay[t]; d == d && d > worst {
							worst = d
						}
					}
					return map[string]float64{
						"worst-delay-ms":  worst * 1000,
						"steady-delay-ms": steady * 1000,
					}
				})
			})
		}
	}
}

// BenchmarkAblationMRAIGranularity tests the paper's §5.2 conjecture: with
// the MRAI timer per (neighbor, destination) instead of per neighbor, the
// transient-loop results "could have been different".
func BenchmarkAblationMRAIGranularity(b *testing.B) {
	for _, perDest := range []bool{false, true} {
		name := "per-neighbor"
		if perDest {
			name = "per-destination"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(ProtoBGP, 5)
			cfg.BGP.PerDestMRAI = perDest
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"ttl-expirations": r.MeanTTLDrops,
					"fwd-conv-s":      r.MeanFwdConv,
				}
			})
		})
	}
}

// BenchmarkAblationMRAISweep varies the MRAI value (Griffin & Premore's
// experiment, cited as [7]): convergence time tracks the MRAI.
func BenchmarkAblationMRAISweep(b *testing.B) {
	for _, mrai := range []time.Duration{time.Second, 3 * time.Second, 10 * time.Second, 30 * time.Second} {
		b.Run(mrai.String(), func(b *testing.B) {
			cfg := benchConfig(ProtoBGP, 5)
			cfg.BGP.MRAI = mrai
			cfg.BGP.MRAIJitter = mrai / 4
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"fwd-conv-s":      r.MeanFwdConv,
					"ttl-expirations": r.MeanTTLDrops,
				}
			})
		})
	}
}

// BenchmarkAblationPoisonReverse removes split horizon with poisoned
// reverse from DBF (§4.2): two-hop loops become possible.
func BenchmarkAblationPoisonReverse(b *testing.B) {
	for _, poison := range []bool{true, false} {
		name := "with-poison"
		if !poison {
			name = "without-poison"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(ProtoDBF, 4)
			cfg.Vector.PoisonReverse = poison
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"ttl-expirations": r.MeanTTLDrops,
					"drops-noroute":   r.MeanNoRouteDrops,
				}
			})
		})
	}
}

// BenchmarkAblationTriggered removes triggered updates from RIP (§4.3):
// recovery must wait for the full periodic cycle everywhere.
func BenchmarkAblationTriggered(b *testing.B) {
	for _, triggered := range []bool{true, false} {
		name := "with-triggered"
		if !triggered {
			name = "periodic-only"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(ProtoRIP, 4)
			cfg.Vector.TriggeredUpdates = triggered
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"drops-noroute": r.MeanNoRouteDrops,
					"fwd-conv-s":    r.MeanFwdConv,
				}
			})
		})
	}
}

// BenchmarkAblationDetectionDelay varies the failure detection time (§5's
// fixed 50 ms): the blackhole before the protocol reacts scales with it.
func BenchmarkAblationDetectionDelay(b *testing.B) {
	for _, detect := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second} {
		b.Run(detect.String(), func(b *testing.B) {
			cfg := benchConfig(ProtoDBF, 6)
			cfg.Net.DetectDelay = detect
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"drops-linkfail": r.MeanLinkDrops,
					"drops-noroute":  r.MeanNoRouteDrops,
				}
			})
		})
	}
}

// BenchmarkExtensionLinkState compares the link-state protocol (the
// paper's §6 future work) against the vector family at two degrees.
func BenchmarkExtensionLinkState(b *testing.B) {
	for _, proto := range []ProtocolKind{ProtoLS, ProtoDBF} {
		for _, degree := range []int{4, 6} {
			b.Run(fmt.Sprintf("%s/degree%d", proto, degree), func(b *testing.B) {
				runTrialBench(b, benchConfig(proto, degree), func(r *Result) map[string]float64 {
					return map[string]float64{
						"drops-noroute": r.MeanNoRouteDrops,
						"fwd-conv-s":    r.MeanFwdConv,
					}
				})
			})
		}
	}
}

// BenchmarkExtensionMultiFlow runs three concurrent flows (§6 future
// work).
func BenchmarkExtensionMultiFlow(b *testing.B) {
	cfg := benchConfig(ProtoDBF, 4)
	cfg.Flows = 3
	runTrialBench(b, cfg, func(r *Result) map[string]float64 {
		return map[string]float64{"delivery-ratio": r.DeliveryRatio}
	})
}

// BenchmarkExtensionMultiFailure overlays two extra random link failures
// on the primary one (§6 future work).
func BenchmarkExtensionMultiFailure(b *testing.B) {
	cfg := benchConfig(ProtoDBF, 6)
	cfg.ExtraFailAts = []time.Duration{cfg.FailAt + 5*time.Second, cfg.FailAt + 15*time.Second}
	runTrialBench(b, cfg, func(r *Result) map[string]float64 {
		return map[string]float64{
			"delivery-ratio": r.DeliveryRatio,
			"drops-noroute":  r.MeanNoRouteDrops,
		}
	})
}

// BenchmarkExtensionFlapDamping compares BGP3 with and without RFC 2439
// route flap damping on a 5-flap link — the Mao et al. [15] effect from
// the paper's introduction: damping suppresses the flapping route and
// hurts delivery even after the link stabilizes.
func BenchmarkExtensionFlapDamping(b *testing.B) {
	for _, withDamping := range []bool{false, true} {
		name := "plain"
		if withDamping {
			name = "damped"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(ProtoBGP3, 4)
			cfg.RestoreAfter = 3 * time.Second
			cfg.Flaps = 5
			if withDamping {
				dcfg := DefaultDampingConfig()
				dcfg.HalfLife = 60 * time.Second
				cfg.BGP3.Damping = &dcfg
			}
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"delivery-ratio": r.DeliveryRatio,
					"drops-noroute":  r.MeanNoRouteDrops,
				}
			})
		})
	}
}

// BenchmarkExtensionFastReroute compares protocols with and without
// precomputed loop-free-alternate protection (the paper's related work
// [1], [27]): the data plane deflects before the control plane reacts, so
// even RIP's long blackhole disappears.
func BenchmarkExtensionFastReroute(b *testing.B) {
	for _, proto := range []ProtocolKind{ProtoRIP, ProtoDBF} {
		for _, frr := range []bool{false, true} {
			name := proto.String()
			if frr {
				name += "+frr"
			}
			b.Run(name, func(b *testing.B) {
				cfg := benchConfig(proto, 6)
				cfg.FastReroute = frr
				runTrialBench(b, cfg, func(r *Result) map[string]float64 {
					return map[string]float64{
						"drops-noroute":  r.MeanNoRouteDrops,
						"delivery-ratio": r.DeliveryRatio,
					}
				})
			})
		}
	}
}

// BenchmarkExtensionECMP compares link-state routing with and without
// equal-cost multipath under four concurrent flows: with ECMP, a failure
// only disturbs the flows hashed onto the broken path.
func BenchmarkExtensionECMP(b *testing.B) {
	for _, ecmp := range []bool{false, true} {
		name := "single-path"
		if ecmp {
			name = "ecmp"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig(ProtoLS, 6)
			cfg.Flows = 4
			cfg.LS.ECMP = ecmp
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{"delivery-ratio": r.DeliveryRatio}
			})
		})
	}
}

// BenchmarkExtensionWorkloads compares the flow's arrival process: the
// paper's CBR against Poisson and bursty on/off traffic.
func BenchmarkExtensionWorkloads(b *testing.B) {
	for _, pattern := range []TrafficPattern{TrafficCBR, TrafficPoisson, TrafficOnOff} {
		b.Run(pattern.String(), func(b *testing.B) {
			cfg := benchConfig(ProtoDBF, 4)
			cfg.Traffic = pattern
			runTrialBench(b, cfg, func(r *Result) map[string]float64 {
				return map[string]float64{
					"delivery-ratio": r.DeliveryRatio,
					"drops-noroute":  r.MeanNoRouteDrops,
				}
			})
		})
	}
}

// BenchmarkExtensionLargerNetwork scales the mesh to 10×10 (§6 future
// work: "larger network sizes").
func BenchmarkExtensionLargerNetwork(b *testing.B) {
	cfg := benchConfig(ProtoDBF, 4)
	cfg.Rows, cfg.Cols = 10, 10
	runTrialBench(b, cfg, func(r *Result) map[string]float64 {
		return map[string]float64{
			"drops-noroute": r.MeanNoRouteDrops,
			"fwd-conv-s":    r.MeanFwdConv,
		}
	})
}

// benchSweepSpec is the grid used by the sweep-orchestrator benches: four
// cells of the shortened paper experiment.
func benchSweepSpec() sweep.Spec {
	base := benchConfig(ProtoDBF, 4)
	return sweep.Spec{
		Name:      "bench",
		Protocols: []string{"dbf", "rip"},
		Degrees:   []int{3, 4},
		Trials:    1,
		Seed:      1,
		Base:      &base,
	}
}

// BenchmarkSweepCold measures the orchestrator with an empty result cache:
// every cell simulates. Together with BenchmarkSweepCached it tracks the
// cache's speedup in the perf trajectory.
func BenchmarkSweepCold(b *testing.B) {
	spec := benchSweepSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := sweep.Options{CacheDir: filepath.Join(b.TempDir(), fmt.Sprintf("cache%d", i))}
		out, err := sweep.Run(context.Background(), spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out.Executed != len(out.Cells) {
			b.Fatalf("cold run hit the cache: %d executed of %d", out.Executed, len(out.Cells))
		}
	}
}

// BenchmarkSweepCached measures the orchestrator with a fully warm cache:
// every cell is served from disk and rehydrated.
func BenchmarkSweepCached(b *testing.B) {
	spec := benchSweepSpec()
	opts := sweep.Options{CacheDir: filepath.Join(b.TempDir(), "cache")}
	if _, err := sweep.Run(context.Background(), spec, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sweep.Run(context.Background(), spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out.CacheHits != len(out.Cells) {
			b.Fatalf("cached run simulated: %d hits of %d", out.CacheHits, len(out.Cells))
		}
	}
}

// BenchmarkTopology measures mesh construction across the degree range
// (the generator behind Figure 2).
func BenchmarkTopology(b *testing.B) {
	for _, degree := range []int{3, 4, 8, 16} {
		b.Run(fmt.Sprintf("degree%d", degree), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topology.NewMesh(7, 7, degree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConvergence measures one full trial of the paper's experiment
// on the degree-4 mesh — topology build, protocol warm-up, failure,
// convergence, measurement — per protocol. It is the headline number for
// the hot-path perf trajectory (BENCH_pr3.json, BENCH_pr4.json). Beyond
// the paper's four protocols it covers the two previously unmeasured
// configurations: BGP3 with RFC 2439 flap damping on a flapping link, and
// the link-state extension.
func BenchmarkConvergence(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"rip", benchConfig(ProtoRIP, 4)},
		{"dbf", benchConfig(ProtoDBF, 4)},
		{"bgp", benchConfig(ProtoBGP, 4)},
		{"bgp3", benchConfig(ProtoBGP3, 4)},
		{"bgp-damping", benchDampingConfig()},
		{"ls", benchConfig(ProtoLS, 4)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := c.cfg
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchDampingConfig is the flap-damping convergence case: BGP3 with
// RFC 2439 damping on a link that flaps five times (the Mao et al. [15]
// setup of BenchmarkExtensionFlapDamping, shortened).
func benchDampingConfig() Config {
	cfg := benchConfig(ProtoBGP3, 4)
	cfg.RestoreAfter = 3 * time.Second
	cfg.Flaps = 5
	dcfg := DefaultDampingConfig()
	dcfg.HalfLife = 60 * time.Second
	cfg.BGP3.Damping = &dcfg
	return cfg
}

// BenchmarkSimulatorEvents measures the raw event-loop throughput
// underlying every experiment.
func BenchmarkSimulatorEvents(b *testing.B) {
	cfg := benchConfig(ProtoDBF, 4)
	cfg.End = cfg.FailAt + 20*time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
