// Package routeconv studies packet delivery performance during routing
// convergence, reproducing Pei, Wang, Massey, Wu & Zhang, "A Study of
// Packet Delivery Performance during Routing Convergence" (DSN 2003).
//
// The library bundles a deterministic discrete-event packet-level network
// simulator, four routing protocols from the paper (RIP, Distributed
// Bellman-Ford, BGP and the fast-MRAI BGP3) plus a link-state extension,
// the Baran-style regular mesh topology family plus internet-scale
// generators (power-law AS graphs, fat-tree/Clos fabrics, edge-list
// import), and an experiment harness that reproduces every figure of the
// paper's evaluation.
//
// The minimal use is three lines:
//
//	cfg := routeconv.DefaultConfig()
//	cfg.Protocol = routeconv.ProtoDBF
//	result, err := routeconv.Run(cfg)
//
// Run builds a Rows×Cols mesh of the requested node degree, attaches stub
// sender/receiver routers to random first/last-row nodes, warms the routing
// protocol up, starts a 20 packets-per-second flow, fails one link on the
// flow's forwarding path, and measures drops (by cause), convergence times,
// and instantaneous throughput and delay — over cfg.Trials independent
// trials.
//
// RunSweep repeats that across protocols and node degrees and renders the
// paper's Figures 3–7 as tables. See cmd/figures for the full
// reproduction driver and the examples directory for runnable scenarios.
package routeconv

import (
	"context"

	"routeconv/internal/core"
	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/routing/bgp"
	"routeconv/internal/routing/ls"
	"routeconv/internal/scenario"
	"routeconv/internal/stats"
	"routeconv/internal/topology"
)

// ProtocolKind selects the routing protocol under study.
type ProtocolKind = core.ProtocolKind

// The protocols of the paper's §3, plus the link-state extension.
const (
	// ProtoRIP is RIP (RFC 2453-style distance vector): periodic 30 s
	// full-table updates, no alternate-path state.
	ProtoRIP = core.ProtoRIP
	// ProtoDBF is Distributed Bellman-Ford: RIP plus a cache of each
	// neighbor's latest vector, giving instant path switch-over.
	ProtoDBF = core.ProtoDBF
	// ProtoBGP is path-vector BGP with the standard 30 s per-neighbor MRAI.
	ProtoBGP = core.ProtoBGP
	// ProtoBGP3 is the paper's specially parameterized BGP with a 3 s MRAI.
	ProtoBGP3 = core.ProtoBGP3
	// ProtoLS is the link-state (SPF) extension from the paper's future
	// work.
	ProtoLS = core.ProtoLS
)

// Protocols returns the paper's four protocols in presentation order.
func Protocols() []ProtocolKind { return core.Protocols() }

// TrafficPattern selects the flow's packet arrival process.
type TrafficPattern = core.TrafficPattern

// Traffic patterns: the paper's constant-rate workload plus two
// workload-sensitivity extensions.
const (
	// TrafficCBR is the paper's constant-bit-rate flow (the default).
	TrafficCBR = core.TrafficCBR
	// TrafficPoisson draws exponential inter-arrival times.
	TrafficPoisson = core.TrafficPoisson
	// TrafficOnOff alternates exponential bursts and silences.
	TrafficOnOff = core.TrafficOnOff
)

// ParseProtocol converts a name ("rip", "dbf", "bgp", "bgp3", "ls") to its
// kind.
func ParseProtocol(s string) (ProtocolKind, error) { return core.ParseProtocol(s) }

// TrafficMode selects the engine simulating background flows (every flow
// after the measured probe).
type TrafficMode = core.TrafficMode

// Traffic engine modes: per-packet simulation for every flow (the paper's
// setup), pure fluid accounting, or the hybrid that demotes flows to
// packets around forwarding changes.
const (
	ModePacket = core.ModePacket
	ModeFluid  = core.ModeFluid
	ModeHybrid = core.ModeHybrid
)

// ParseTrafficMode converts a name ("packet", "fluid", "hybrid") to its
// mode.
func ParseTrafficMode(s string) (TrafficMode, error) { return core.ParseTrafficMode(s) }

// Config describes one experiment; see DefaultConfig for the paper's
// parameters.
type Config = core.Config

// NetConfig holds the physical link parameters (rate, delay, detection
// time, queue length).
type NetConfig = netsim.Config

// VectorConfig parameterizes the distance-vector protocols (RIP, DBF).
type VectorConfig = routing.VectorConfig

// BGPConfig parameterizes the path-vector protocol (MRAI value and
// granularity).
type BGPConfig = bgp.Config

// LSConfig parameterizes the link-state extension.
type LSConfig = ls.Config

// DampingConfig parameterizes RFC 2439 route flap damping (set it on a
// BGPConfig's Damping field).
type DampingConfig = bgp.DampingConfig

// TrialResult holds the measurements of one simulation run.
type TrialResult = core.TrialResult

// Result aggregates an experiment's trials; see its Mean* fields for the
// figures' quantities.
type Result = core.Result

// SweepConfig describes the full evaluation grid (protocols × degrees).
type SweepConfig = core.SweepConfig

// SweepResult holds one Result per grid cell and renders the paper's
// figures as tables.
type SweepResult = core.SweepResult

// Table is a rendered result table; use WriteText or WriteCSV.
type Table = stats.Table

// NodeID identifies a node (router or stub host) in a simulated network.
type NodeID = netsim.NodeID

// Edge is an undirected link between two nodes.
type Edge = topology.Edge

// Graph is an undirected router topology; set it on Config.Topology (with
// SenderRouters/ReceiverRouters) to run the experiment on something other
// than the paper's mesh.
type Graph = topology.Graph

// Torus returns a rows×cols wrap-around lattice (uniform degree 4).
func Torus(rows, cols int) *Graph { return topology.Torus(rows, cols) }

// Hypercube returns the dim-dimensional hypercube (2^dim nodes of degree
// dim).
func Hypercube(dim int) *Graph { return topology.Hypercube(dim) }

// SmallWorld returns a Watts–Strogatz small-world graph: ring lattice with
// k neighbors per side, each chord rewired with probability beta.
func SmallWorld(n, k int, beta float64, seed int64) *Graph {
	return topology.SmallWorld(n, k, beta, seed)
}

// RandomTopology returns a connected random graph with roughly the given
// average degree.
func RandomTopology(n, avgDegree int, seed int64) *Graph {
	return topology.Random(n, avgDegree, seed)
}

// BarabasiAlbert returns an n-node preferential-attachment power-law graph
// with m links per new node — the classic scale-free AS-graph model.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	return topology.BarabasiAlbert(n, m, seed)
}

// GLP returns an n-node generalized-linear-preference power-law graph
// (Bu–Towsley), which matches measured AS-graph degree exponents more
// closely than plain preferential attachment. Use topology.GLPDefaultP and
// topology.GLPDefaultBeta for the published parameter fit.
func GLP(n, m int, p, beta float64, seed int64) *Graph {
	return topology.GLP(n, m, p, beta, seed)
}

// FatTree is a k-ary fat-tree data-center fabric with layer membership
// exposed; its Graph field plugs into Config.Topology.
type FatTree = topology.FatTree

// NewFatTree builds the k-ary fat-tree (k even): (k/2)² cores, k pods of
// k/2 aggregation and k/2 edge switches, (k/2)² equal-cost paths between
// edge switches in different pods.
func NewFatTree(k int) (*FatTree, error) { return topology.NewFatTree(k) }

// LeafSpine returns a two-tier leaf-spine fabric: every leaf connects to
// every spine.
func LeafSpine(spines, leaves int) *Graph { return topology.LeafSpine(spines, leaves) }

// DefaultConfig returns the paper's §5 experiment parameters: a 7×7 mesh,
// 10 Mbps / 1 ms links with 20-packet queues and 50 ms failure detection, a
// 20 packets-per-second flow starting at 390 s, a single on-path link
// failure at 400 s, and an 800 s horizon.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultVectorConfig returns the RFC 2453 distance-vector parameters used
// by the paper (30 s periodic updates, 1–5 s triggered-update damping,
// split horizon with poisoned reverse, infinity 16).
func DefaultVectorConfig() VectorConfig { return routing.DefaultVectorConfig() }

// DefaultBGPConfig returns the paper's standard BGP parameters (30 s
// per-neighbor MRAI).
func DefaultBGPConfig() BGPConfig { return bgp.DefaultConfig() }

// BGP3Config returns the paper's fast-MRAI variant (3 s).
func BGP3Config() BGPConfig { return bgp.BGP3Config() }

// DefaultDampingConfig returns the RFC 2439 suggested flap-damping
// parameters (1000 per withdrawal, suppress at 2000, reuse at 750, 15 min
// half-life).
func DefaultDampingConfig() DampingConfig { return bgp.DefaultDampingConfig() }

// Run executes one experiment: cfg.Trials independent simulations,
// aggregated.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// RunContext is Run with cancellation: workers check ctx between trials,
// so a cancelled experiment stops promptly. It returns ctx.Err() when
// cancelled.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return core.RunContext(ctx, cfg)
}

// RunSweep executes a protocol × degree grid; progress (optional) receives
// one line per completed cell.
func RunSweep(sc SweepConfig, progress func(string)) (*SweepResult, error) {
	return core.RunSweep(sc, progress)
}

// DefaultSweep returns the paper's full evaluation grid (all four
// protocols, degrees 3–16) at the given trial count per cell.
func DefaultSweep(trials int) SweepConfig { return core.DefaultSweep(trials) }

// ScenarioScript is a parsed disturbance script: a time-ordered list of
// failure, repair, flap, loss, cost-out and churn events replacing the
// default single-link failure schedule. Set it on Config.Script, or set the
// text form on Config.Scenario. Grammar and exact per-event semantics:
// SCENARIOS.md.
type ScenarioScript = scenario.Script

// ScenarioBuilder composes a ScenarioScript programmatically; see
// NewScenario.
type ScenarioBuilder = scenario.Builder

// ScenarioEvent is one timed disturbance in a ScenarioScript.
type ScenarioEvent = scenario.Event

// NewScenario returns an empty scenario builder. Chain event methods and
// call Script() to get the time-sorted script:
//
//	s := routeconv.NewScenario().
//		FailLink(400*time.Second, routeconv.Edge{A: 3, B: 7}).
//		Loss(410*time.Second, routeconv.Edge{A: 1, B: 2}, 0.01).
//		Script()
func NewScenario() *ScenarioBuilder { return scenario.NewBuilder() }

// ParseScenario parses the compact text grammar, e.g.
// "fail link 3-7 @400s; loss link 1-2 p=0.01 @410s". See SCENARIOS.md.
func ParseScenario(text string) (*ScenarioScript, error) { return scenario.Parse(text) }

// MetricsSnapshot is a flat metric-name → value map of the observability
// counters one trial accumulated (set Config.Metrics to collect it; see
// TrialResult.Metrics and Result.Metrics). Every name is documented in
// OBSERVABILITY.md.
type MetricsSnapshot = obs.Snapshot

// Timeline records one trial's convergence timeline — link failures, FIB
// changes, withdrawals, flap-damping transitions, and derived per-node
// first/last-change summaries — for NDJSON export. The record schema is
// documented in OBSERVABILITY.md.
type Timeline = obs.Timeline

// NewTimeline returns an empty convergence timeline ready to pass to
// TraceTimeline.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// TraceTimeline re-runs one trial of the experiment with the timeline
// attached (when tl is non-nil). Recording is passive: the trial result is
// bit-for-bit the one Run computed for the same configuration and trial
// index.
func TraceTimeline(cfg Config, trial int, tl *Timeline) (TrialResult, error) {
	tr, _, err := core.TraceObserved(cfg, trial, tl)
	return tr, err
}
