package routeconv_test

import (
	"fmt"
	"log"
	"time"

	"routeconv"
)

// The basic experiment: DBF on a degree-6 mesh loses almost nothing when a
// link on the flow's path fails, because every router holds a cached
// alternate (the paper's Observation 1).
func ExampleRun() {
	cfg := routeconv.DefaultConfig()
	cfg.Protocol = routeconv.ProtoDBF
	cfg.Degree = 6
	cfg.Trials = 2
	// Compress the paper's 800 s schedule for this example.
	cfg.SenderStart = 190 * time.Second
	cfg.FailAt = 200 * time.Second
	cfg.End = 350 * time.Second

	res, err := routeconv.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("warmed up:", res.WarmedUpTrials == cfg.Trials)
	fmt.Println("near-lossless:", res.DeliveryRatio > 0.995)
	fmt.Println("no TTL expirations:", res.MeanTTLDrops == 0)
	// Output:
	// warmed up: true
	// near-lossless: true
	// no TTL expirations: true
}

// Sweeping protocols and degrees renders the paper's figures as tables.
func ExampleRunSweep() {
	sc := routeconv.DefaultSweep(1)
	sc.Base.SenderStart = 190 * time.Second
	sc.Base.FailAt = 200 * time.Second
	sc.Base.End = 300 * time.Second
	sc.Degrees = []int{6}
	sc.Protocols = []routeconv.ProtocolKind{routeconv.ProtoDBF}

	sr, err := routeconv.RunSweep(sc, nil)
	if err != nil {
		log.Fatal(err)
	}
	table := sr.Figure3Table() // drops due to no route vs degree
	_ = table                  // render with table.WriteText(os.Stdout)
	fmt.Println("cells:", len(sr.Cells[routeconv.ProtoDBF]))
	// Output:
	// cells: 1
}

// Protocol kinds parse from their command-line names.
func ExampleParseProtocol() {
	kind, err := routeconv.ParseProtocol("bgp3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(kind)
	// Output:
	// bgp3
}
