// Command benchgate compares Go benchmark output against a committed
// ns/op baseline and fails when any gated case regresses beyond the
// threshold. It exists so the bench-smoke CI job catches performance
// regressions in the convergence hot paths, not just crashes.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkConvergence -benchtime 1x ./... | tee bench.txt
//	go run ./tools/benchgate -bench bench.txt                  # gate
//	go run ./tools/benchgate -bench bench.txt -update          # refresh baseline
//
// Benchmark names are keyed as "pkg:Name" with the trailing -GOMAXPROCS
// suffix stripped, so runs from hosts with different core counts compare.
// Single-iteration ns/op on shared runners is noisy; the threshold is
// deliberately loose (default 1.25) and the baseline should be refreshed
// (with -update, on the machine of record) whenever an intentional
// performance change lands.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Note      string             `json:"note"`
	Prefix    string             `json:"prefix"`
	Threshold float64            `json:"threshold"`
	Machine   map[string]string  `json:"machine"`
	Cases     map[string]float64 `json:"cases"` // key -> ns/op
}

func main() {
	var (
		benchPath = flag.String("bench", "", "benchmark output file (go test -bench ... output); required")
		basePath  = flag.String("baseline", "bench_baseline.json", "baseline JSON file")
		prefix    = flag.String("prefix", "BenchmarkConvergence", "gate benchmarks whose name starts with this")
		threshold = flag.Float64("threshold", 0, "fail when current/baseline exceeds this (0: use the baseline file's)")
		update    = flag.Bool("update", false, "rewrite the baseline from the bench output instead of gating")
	)
	flag.Parse()
	if *benchPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -bench is required")
		os.Exit(2)
	}
	cases, err := parseBench(*benchPath, *prefix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(cases) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no %s cases in %s\n", *prefix, *benchPath)
		os.Exit(2)
	}

	if *update {
		th := *threshold
		if th == 0 {
			th = 1.25
		}
		b := baseline{
			Note:      "ns/op floor for the bench-smoke regression gate; refresh with: go test -run '^$' -bench " + *prefix + " -benchtime 1x ./... > bench.txt && go run ./tools/benchgate -bench bench.txt -update",
			Prefix:    *prefix,
			Threshold: th,
			Machine:   machineInfo(),
			Cases:     cases,
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*basePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d cases to %s\n", len(cases), *basePath)
		return
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	th := *threshold
	if th == 0 {
		th = base.Threshold
	}
	if th == 0 {
		th = 1.25
	}

	keys := make([]string, 0, len(cases))
	for k := range cases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	for _, k := range keys {
		cur := cases[k]
		want, ok := base.Cases[k]
		if !ok {
			fmt.Printf("NEW   %-60s %14.0f ns/op (not in baseline; add with -update)\n", k, cur)
			continue
		}
		ratio := cur / want
		status := "ok   "
		if ratio > th {
			status = "FAIL "
			failed++
		}
		fmt.Printf("%s %-60s %14.0f ns/op  baseline %14.0f  ratio %.2f\n", status, k, cur, want, ratio)
	}
	for k := range base.Cases {
		if _, ok := cases[k]; !ok {
			fmt.Printf("GONE  %-60s (in baseline but not in this run)\n", k)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d case(s) regressed beyond %.2fx the baseline in %s\n", failed, th, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d case(s) within %.2fx of baseline\n", len(cases), th)
}

// procsSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so keys match across hosts with different core counts.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts "pkg:Name" -> ns/op from go test -bench output,
// keeping only names that start with prefix. Repeated cases (|-count or
// multiple files concatenated) keep their minimum — the least-noisy view
// of a 1x run.
func parseBench(path, prefix string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	pkg := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		// Name  iterations  value ns/op  [more pairs...]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		key := pkg + ":" + procsSuffix.ReplaceAllString(fields[0], "")
		if old, ok := out[key]; !ok || ns < old {
			out[key] = ns
		}
	}
	return out, sc.Err()
}

// machineInfo records where the baseline was measured — ratios against it
// only mean much on comparable hardware.
func machineInfo() map[string]string {
	info := map[string]string{
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"numcpu":     strconv.Itoa(runtime.NumCPU()),
	}
	if cpu, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(cpu), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				info["cpu"] = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	return info
}
