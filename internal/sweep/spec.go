// Package sweep is the experiment-orchestration subsystem: it expands a
// declarative sweep specification — protocols × node degrees × failure
// models, at a given trial count — into a plan of independent cells and
// executes them on a bounded worker pool with a content-addressed on-disk
// result cache, a checkpoint journal for resume-after-interrupt, context
// cancellation, live progress reporting, and a machine-readable manifest.
//
// The design follows the scenario-level decomposition argued for by the
// distributed-BGP-simulation feasibility literature: each (protocol,
// degree, failure) cell is an embarrassingly parallel unit whose result is
// a pure function of its fully-resolved core.Config, so cells are cached by
// a canonical hash of that config and never recomputed until the config —
// or the module version — changes.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"routeconv/internal/core"
)

// Duration is a time.Duration that marshals to and from JSON as a Go
// duration string ("3s", "1m30s"), so specs stay human-editable.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler; it accepts a duration string
// or a bare number of nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sweep: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("sweep: bad duration %s", data)
	}
	*d = Duration(n)
	return nil
}

// FailureMode names one failure schedule of the grid: the paper's single
// permanent on-path failure by default, or repair/flap/multi-failure
// variants (the §6 extensions).
type FailureMode struct {
	// Name labels the mode in cell IDs, journals and manifests.
	Name string `json:"name"`
	// RestoreAfter repairs the failed link this long after each failure.
	RestoreAfter Duration `json:"restore_after,omitempty"`
	// Flaps is how many times the primary link fails (needs RestoreAfter).
	Flaps int `json:"flaps,omitempty"`
	// ExtraFailAts schedules additional random live-link failures.
	ExtraFailAts []Duration `json:"extra_fail_ats,omitempty"`
	// FastReroute precomputes loop-free-alternate protection.
	FastReroute bool `json:"fast_reroute,omitempty"`
	// Scenario, when non-empty, is a scenario script in the text grammar
	// (SCENARIOS.md) replacing the default failure schedule. Mutually
	// exclusive with the legacy RestoreAfter/Flaps/ExtraFailAts knobs
	// (cell validation rejects the combination).
	Scenario string `json:"scenario,omitempty"`
}

// SingleFailure is the paper's failure model: one permanent on-path link
// failure. It is the default when a spec lists no failure modes.
func SingleFailure() FailureMode { return FailureMode{Name: "single"} }

// apply overlays the failure mode on a config.
func (f FailureMode) apply(cfg *core.Config) {
	cfg.RestoreAfter = time.Duration(f.RestoreAfter)
	cfg.Flaps = f.Flaps
	cfg.FastReroute = f.FastReroute
	cfg.ExtraFailAts = nil
	for _, at := range f.ExtraFailAts {
		cfg.ExtraFailAts = append(cfg.ExtraFailAts, time.Duration(at))
	}
	cfg.Scenario = f.Scenario
	cfg.Script = nil
}

// Spec declares a sweep: the full grid is Protocols × (Degrees ∪ Topos) ×
// Failures, each cell running Trials independent trials. The zero values of the
// optional fields inherit the paper's §5 parameters (core.DefaultConfig).
type Spec struct {
	// Name labels the sweep in manifests and progress output.
	Name string `json:"name,omitempty"`
	// Protocols lists protocol names ("rip", "dbf", "bgp", "bgp3", "ls").
	Protocols []string `json:"protocols"`
	// Degrees lists the mesh node degrees to sweep.
	Degrees []int `json:"degrees"`
	// Topos lists topology specs (topoio mini-language, e.g. "ba:n=10000,m=2"
	// or "file:as.edges") swept alongside — or instead of — Degrees. Each
	// spec becomes one cell per protocol and failure mode.
	Topos []string `json:"topos,omitempty"`
	// Trials is the per-cell trial count (paper: 100).
	Trials int `json:"trials"`
	// Seed is the base random seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Flows sweeps the number of concurrent sender/receiver pairs as an
	// extra grid axis; empty inherits the base config's flow count (the
	// paper's single flow).
	Flows []int `json:"flows,omitempty"`
	// Mode selects the background-flow traffic engine for every cell:
	// "packet" (default), "fluid", or "hybrid". Flow counts beyond a few
	// thousand need "fluid" or "hybrid" to stay tractable.
	Mode string `json:"mode,omitempty"`
	// Shards splits every cell's trials over this many parallel shard
	// simulators (1 or 0 = sequential). Results are identical either way;
	// the runner divides its default worker count by the largest shard
	// count so a sweep never oversubscribes the machine.
	Shards int `json:"shards,omitempty"`
	// Failures lists the failure models; empty means the paper's single
	// permanent failure.
	Failures []FailureMode `json:"failures,omitempty"`
	// Scenarios lists scenario scripts (text grammar, SCENARIOS.md) swept
	// as additional failure modes alongside Failures: script i becomes a
	// mode named "scn<i>". Scenario becomes a grid axis next to protocol
	// and degree, as ROADMAP item 5 asks.
	Scenarios []string `json:"scenarios,omitempty"`
	// End shortens or extends the simulation horizon (default: the
	// paper's 800 s).
	End Duration `json:"end,omitempty"`
	// Metrics enables the obs counter layer per cell: every trial carries
	// an obs snapshot, the summed counters land in each manifest cell, and
	// cache keys change (metered and unmetered results are distinct).
	Metrics bool `json:"metrics,omitempty"`
	// Base, when non-nil, replaces core.DefaultConfig() as the per-cell
	// template (Go callers only; its Protocol, Degree, Trials, Seed and
	// failure fields are overwritten by the grid).
	Base *core.Config `json:"-"`
}

// Cell is one unit of the work plan: a fully-resolved experiment plus its
// content-addressed key.
type Cell struct {
	// Protocol and Degree locate the cell in the grid.
	Protocol core.ProtocolKind
	Degree   int
	// Topo is the cell's topology spec when it came from the Topos axis;
	// empty for degree-swept mesh cells.
	Topo string
	// Failure is the cell's failure model.
	Failure FailureMode
	// Flows is the cell's flow count when it came from the Flows axis;
	// 0 for cells inheriting the base config's count.
	Flows int
	// Config is the fully-resolved experiment configuration.
	Config core.Config
	// Key is the cell's content-addressed cache key: a hash of the
	// canonical Config and the module version.
	Key string
}

// ID returns the cell's human-readable identifier, e.g. "dbf/d4/single"
// for a mesh-degree cell or "rip/ba:n=10000,m=2/single" for a topo cell,
// with a "/fN" suffix for cells from the Flows axis.
func (c *Cell) ID() string {
	id := fmt.Sprintf("%s/d%d/%s", c.Protocol, c.Degree, c.Failure.Name)
	if c.Topo != "" {
		id = fmt.Sprintf("%s/%s/%s", c.Protocol, c.Topo, c.Failure.Name)
	}
	if c.Flows > 0 {
		id += fmt.Sprintf("/f%d", c.Flows)
	}
	return id
}

// LoadSpec reads a JSON sweep specification from a file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return ParseSpec(data)
}

// ParseSpec decodes a JSON sweep specification, rejecting unknown fields.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: parse spec: %w", err)
	}
	return s, nil
}

// base resolves the per-cell configuration template.
func (s *Spec) base() core.Config {
	cfg := core.DefaultConfig()
	if s.Base != nil {
		cfg = *s.Base
	}
	if s.Trials > 0 {
		cfg.Trials = s.Trials
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.End > 0 {
		cfg.End = time.Duration(s.End)
	}
	if s.Metrics {
		cfg.Metrics = true
	}
	if s.Shards > 0 {
		cfg.Shards = s.Shards
	}
	return cfg
}

// Expand resolves the spec into its work plan: one Cell per point of the
// Protocols × (Degrees ∪ Topos) × Failures grid, each validated and keyed.
// The plan order is deterministic (protocol-major, then degrees before
// topos, then failure).
func (s *Spec) Expand() ([]Cell, error) {
	if len(s.Protocols) == 0 {
		return nil, fmt.Errorf("sweep: spec lists no protocols")
	}
	if len(s.Degrees) == 0 && len(s.Topos) == 0 {
		return nil, fmt.Errorf("sweep: spec lists no degrees and no topos")
	}
	failures := s.Failures
	for i, script := range s.Scenarios {
		failures = append(failures, FailureMode{Name: fmt.Sprintf("scn%d", i), Scenario: script})
	}
	if len(failures) == 0 {
		failures = []FailureMode{SingleFailure()}
	}
	for i, f := range failures {
		if f.Name == "" {
			return nil, fmt.Errorf("sweep: failure mode %d has no name", i)
		}
	}
	base := s.base()
	if s.Mode != "" {
		mode, err := core.ParseTrafficMode(s.Mode)
		if err != nil {
			return nil, err
		}
		base.Mode = mode
	}
	flowsAxis := s.Flows
	if len(flowsAxis) == 0 {
		flowsAxis = []int{0} // inherit the base config's flow count
	}
	var cells []Cell
	finish := func(c Cell) error {
		if c.Flows > 0 {
			c.Config.Flows = c.Flows
		}
		if err := c.Config.Validate(); err != nil {
			return fmt.Errorf("sweep: cell %s: %w", c.ID(), err)
		}
		key, err := CellKey(&c.Config)
		if err != nil {
			return fmt.Errorf("sweep: cell %s: %w", c.ID(), err)
		}
		c.Key = key
		cells = append(cells, c)
		return nil
	}
	for _, name := range s.Protocols {
		proto, err := core.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		for _, d := range s.Degrees {
			for _, f := range failures {
				for _, fl := range flowsAxis {
					cfg := base
					cfg.Protocol = proto
					cfg.Degree = d
					f.apply(&cfg)
					if err := finish(Cell{Protocol: proto, Degree: d, Failure: f, Flows: fl, Config: cfg}); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, topo := range s.Topos {
			for _, f := range failures {
				for _, fl := range flowsAxis {
					cfg := base
					cfg.Protocol = proto
					cfg.Topo = topo
					f.apply(&cfg)
					if err := finish(Cell{Protocol: proto, Topo: topo, Failure: f, Flows: fl, Config: cfg}); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return cells, nil
}

// ParseDegrees accepts "3-8", "3,4,5", or a mix like "3-5,8" and returns
// the listed node degrees in order.
func ParseDegrees(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("sweep: bad degree range %q", part)
			}
			for d := a; d <= b; d++ {
				out = append(out, d)
			}
			continue
		}
		d, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad degree %q", part)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: no degrees in %q", s)
	}
	return out, nil
}
