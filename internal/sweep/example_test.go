package sweep_test

import (
	"fmt"

	"routeconv/internal/sweep"
)

// ExampleSpec_Expand shows how a declarative spec expands into its work
// plan: one cell per point of the Protocols × Degrees × Failures grid, in
// deterministic protocol-major order.
func ExampleSpec_Expand() {
	spec := sweep.Spec{
		Protocols: []string{"dbf", "bgp3"},
		Degrees:   []int{4, 5},
		Trials:    2,
	}
	cells, err := spec.Expand()
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range cells {
		fmt.Println(c.ID())
	}
	// Output:
	// dbf/d4/single
	// dbf/d5/single
	// bgp3/d4/single
	// bgp3/d5/single
}

// ExampleParseDegrees shows the accepted degree-list syntax: ranges,
// single values, and mixes of both.
func ExampleParseDegrees() {
	degrees, err := sweep.ParseDegrees("3-5,8")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(degrees)
	// Output:
	// [3 4 5 8]
}
