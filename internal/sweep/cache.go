package sweep

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"routeconv/internal/core"
)

// Cache is the content-addressed on-disk result store: one gob file per
// cell, named by the cell key. Because the key hashes the fully-resolved
// config and the module version, a lookup can never return a result
// computed under different parameters or a different simulator build.
//
// Only the per-trial measurements are stored; the aggregate fields are
// recomputed on load (they are pure functions of the trials), and the
// config is supplied by the caller — it is already encoded in the key.
type Cache struct {
	dir string
}

// cachePayload is the persisted form of a cell result. gob is used rather
// than JSON because trial series legitimately contain NaN (delay bins with
// no arrivals), which JSON cannot represent.
type cachePayload struct {
	Trials []core.TrialResult
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".gob")
}

// Get loads the cached result for key, rehydrating it with cfg, or reports
// a miss. Unreadable or corrupt entries (e.g. a partial write from a
// killed process, though Put's atomic rename makes that unlikely) are
// treated as misses.
func (c *Cache) Get(key string, cfg core.Config) (*core.Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var p cachePayload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, false
	}
	if len(p.Trials) == 0 {
		return nil, false
	}
	return core.NewResult(cfg, p.Trials), true
}

// Put stores a cell result under key, atomically.
func (c *Cache) Put(key string, res *core.Result) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cachePayload{Trials: res.Trials}); err != nil {
		return fmt.Errorf("sweep: encode cache entry: %w", err)
	}
	if err := WriteFileAtomic(c.path(key), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("sweep: write cache entry: %w", err)
	}
	return nil
}

// Len counts the cache's entries.
func (c *Cache) Len() int {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.gob"))
	if err != nil {
		return 0
	}
	return len(matches)
}
