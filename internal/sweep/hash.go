package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime/debug"
	"sync"

	"routeconv/internal/core"
)

// moduleVersion resolves, once, the version tag mixed into every cell key:
// the main module's version plus the VCS revision when the binary was
// stamped with one. Rebuilding at a new revision therefore invalidates the
// whole cache — simulation results are only comparable within one version
// of the simulator.
var moduleVersion = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := info.Main.Version
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			v += "+" + s.Value
		}
	}
	if v == "" {
		v = "unknown"
	}
	return v
})

// Version reports the module version string mixed into cell keys (and
// recorded in sweep manifests).
func Version() string { return moduleVersion() }

// CellKey returns the cell's content-addressed cache key: a SHA-256 over
// the config's canonical rendering and the module version, in hex. Configs
// with a Factory override are uncacheable and return an error.
func CellKey(cfg *core.Config) (string, error) {
	return CellKeyAt(cfg, Version())
}

// CellKeyAt is CellKey at an explicit version string; tests use it to pin
// golden keys independent of the build.
func CellKeyAt(cfg *core.Config, version string) (string, error) {
	canon, err := cfg.CanonicalString()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(canon))
	h.Write([]byte{0})
	h.Write([]byte(version))
	return hex.EncodeToString(h.Sum(nil)), nil
}
