package sweep

import (
	"encoding/json"
	"runtime"
	"time"

	"routeconv/internal/obs"
)

// Manifest is the machine-readable record of one sweep run: what was asked
// for (the spec), what produced it (module version, Go version), and what
// happened per cell (key, seed, wall time, cache provenance). It is
// written atomically as manifest.json next to the sweep's outputs.
type Manifest struct {
	Name          string         `json:"name,omitempty"`
	CreatedAt     time.Time      `json:"created_at"`
	GoVersion     string         `json:"go_version"`
	ModuleVersion string         `json:"module_version"`
	Spec          Spec           `json:"spec"`
	TotalCells    int            `json:"total_cells"`
	Executed      int            `json:"executed"`
	CacheHits     int            `json:"cache_hits"`
	WallMS        int64          `json:"wall_ms"`
	Cells         []ManifestCell `json:"cells"`
}

// ManifestCell records one cell's identity and provenance.
type ManifestCell struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Protocol string `json:"protocol"`
	Degree   int    `json:"degree"`
	Topo     string `json:"topo,omitempty"`
	Failure  string `json:"failure"`
	Seed     int64  `json:"seed"`
	Trials   int    `json:"trials"`
	WallMS   int64  `json:"wall_ms"`
	Cached   bool   `json:"cached"`
	// Metrics holds the cell's obs counters summed over its trials;
	// present only when the spec enables metrics. Every name is documented
	// in OBSERVABILITY.md.
	Metrics obs.Snapshot `json:"metrics,omitempty"`
}

// buildManifest assembles the manifest for a finished sweep.
func buildManifest(spec Spec, out *Outcome) *Manifest {
	m := &Manifest{
		Name:          spec.Name,
		CreatedAt:     time.Now().UTC(),
		GoVersion:     runtime.Version(),
		ModuleVersion: Version(),
		Spec:          spec,
		TotalCells:    len(out.Cells),
		Executed:      out.Executed,
		CacheHits:     out.CacheHits,
		WallMS:        out.Wall.Milliseconds(),
	}
	for i := range out.Cells {
		c := &out.Cells[i]
		var met obs.Snapshot
		if c.Result != nil {
			met = c.Result.Metrics
		}
		m.Cells = append(m.Cells, ManifestCell{
			ID:       c.Cell.ID(),
			Key:      c.Cell.Key,
			Protocol: c.Cell.Protocol.String(),
			Degree:   c.Cell.Degree,
			Topo:     c.Cell.Topo,
			Failure:  c.Cell.Failure.Name,
			Seed:     c.Cell.Config.Seed,
			Trials:   c.Cell.Config.Trials,
			WallMS:   c.Wall.Milliseconds(),
			Cached:   c.Cached,
			Metrics:  met,
		})
	}
	return m
}

// Write renders the manifest as indented JSON and writes it atomically.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'), 0o644)
}
