package sweep

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a temporary file in the same
// directory plus a rename, so readers never observe a truncated file and an
// interrupted writer never corrupts an existing one.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
