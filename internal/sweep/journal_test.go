package sweep

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 || j.Done("k1") {
		t.Fatal("fresh journal not empty")
	}
	if err := j.RecordAt("k1", "dbf/d3/single", 120*time.Millisecond, false); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordAt("k2", "rip/d3/single", time.Millisecond, true); err != nil {
		t.Fatal(err)
	}
	if !j.Done("k1") || !j.Done("k2") || j.Done("k3") {
		t.Error("Done wrong before reopen")
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 || !j2.Done("k1") || !j2.Done("k2") {
		t.Errorf("reopened journal lost entries: len %d", j2.Len())
	}
}

// TestJournalTornLine simulates a crash mid-append: the torn final line is
// ignored and its cell simply counts as unfinished.
func TestJournalTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordAt("k1", "a", time.Second, false); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"k2","id":"b","wall_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Done("k1") {
		t.Error("intact entry lost")
	}
	if j2.Done("k2") {
		t.Error("torn entry counted as done")
	}
	// The journal stays appendable after a torn line...
	if err := j2.RecordAt("k3", "c", time.Second, false); err != nil {
		t.Fatal(err)
	}
	// ...and the new entry survives a reopen (the torn line is bounded by
	// its newline-framed successor).
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if !j3.Done("k3") || !j3.Done("k1") {
		t.Errorf("entries after torn line lost: len %d", j3.Len())
	}
}
