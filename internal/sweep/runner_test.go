package sweep

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"routeconv/internal/core"
)

// testSpec returns a fast sweep: a short warm-up and horizon cut each
// cell to tens of milliseconds while leaving the full pipeline intact.
func testSpec(protocols []string, degrees []int, trials int) Spec {
	base := core.DefaultConfig()
	base.SenderStart = 30 * time.Second
	base.FailAt = 40 * time.Second
	base.End = 70 * time.Second
	return Spec{
		Name:      "test",
		Protocols: protocols,
		Degrees:   degrees,
		Trials:    trials,
		Seed:      1,
		Base:      &base,
	}
}

func TestRunColdThenCached(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec([]string{"dbf", "rip"}, []int{3, 4}, 2)
	opts := Options{CacheDir: filepath.Join(dir, "cache")}

	cold, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Executed != 4 || cold.CacheHits != 0 {
		t.Fatalf("cold run: executed %d, hits %d; want 4, 0", cold.Executed, cold.CacheHits)
	}

	warm, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Executed != 0 || warm.CacheHits != 4 {
		t.Fatalf("warm run: executed %d, hits %d; want 0, 4", warm.Executed, warm.CacheHits)
	}

	// Cached results are bit-identical in every aggregate to the fresh
	// ones (NaN-aware: delay bins with no arrivals are NaN).
	for i := range cold.Cells {
		a, b := cold.Cells[i].Result, warm.Cells[i].Result
		if len(a.Trials) != len(b.Trials) {
			t.Fatalf("cell %s: trials %d vs %d", cold.Cells[i].Cell.ID(), len(a.Trials), len(b.Trials))
		}
		for _, pair := range [][2]float64{
			{a.MeanNoRouteDrops, b.MeanNoRouteDrops},
			{a.MeanTTLDrops, b.MeanTTLDrops},
			{a.MeanFwdConv, b.MeanFwdConv},
			{a.MeanRoutingConv, b.MeanRoutingConv},
			{a.DeliveryRatio, b.DeliveryRatio},
			{a.MeanDelayP95, b.MeanDelayP95},
		} {
			if pair[0] != pair[1] && !(math.IsNaN(pair[0]) && math.IsNaN(pair[1])) {
				t.Errorf("cell %s: cached aggregate %v != fresh %v", cold.Cells[i].Cell.ID(), pair[1], pair[0])
			}
		}
	}
}

// TestRunCachedSpeedup is the acceptance check: running the same sweep
// twice back-to-back, the second run is served entirely from the cache and
// takes at least 10× less wall time.
func TestRunCachedSpeedup(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec([]string{"dbf", "rip", "bgp3"}, []int{3, 4}, 3)
	opts := Options{CacheDir: filepath.Join(dir, "cache")}

	cold, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(warm.Cells) || warm.Executed != 0 {
		t.Fatalf("second run not 100%% cached: executed %d, hits %d of %d", warm.Executed, warm.CacheHits, len(warm.Cells))
	}
	if warm.Wall*10 > cold.Wall {
		t.Errorf("cached run not ≥10× faster: cold %v, cached %v", cold.Wall, warm.Wall)
	}
}

func TestRunCacheMissOnChangedConfig(t *testing.T) {
	dir := t.TempDir()
	opts := Options{CacheDir: filepath.Join(dir, "cache")}
	spec := testSpec([]string{"dbf"}, []int{3}, 2)
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatal(err)
	}
	// A different seed is a different experiment: every cell must miss.
	spec.Seed = 2
	out, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 0 || out.Executed != 1 {
		t.Fatalf("changed config hit the cache: executed %d, hits %d", out.Executed, out.CacheHits)
	}
}

func TestRunCorruptCacheEntryReExecutes(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	opts := Options{CacheDir: cacheDir}
	spec := testSpec([]string{"dbf"}, []int{3}, 2)
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.gob"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries: %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("truncated garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 1 || out.CacheHits != 0 {
		t.Fatalf("corrupt entry served: executed %d, hits %d", out.Executed, out.CacheHits)
	}
}

func TestRunForceIgnoresCache(t *testing.T) {
	dir := t.TempDir()
	opts := Options{CacheDir: filepath.Join(dir, "cache")}
	spec := testSpec([]string{"dbf"}, []int{3}, 2)
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatal(err)
	}
	opts.Force = true
	out, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 1 || out.CacheHits != 0 {
		t.Fatalf("force run used cache: executed %d, hits %d", out.Executed, out.CacheHits)
	}
}

// TestRunResume journals N of M cells (by sweeping a sub-grid first, into
// the same cache and journal) and verifies the full sweep re-executes only
// the M−N unfinished cells.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		CacheDir:    filepath.Join(dir, "cache"),
		JournalPath: filepath.Join(dir, "journal.jsonl"),
	}
	// N = 2 cells finish before the "interrupt"...
	partial := testSpec([]string{"dbf"}, []int{3, 4}, 2)
	if _, err := Run(context.Background(), partial, opts); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(opts.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	n := j.Len()
	j.Close()
	if n != 2 {
		t.Fatalf("journaled %d cells, want 2", n)
	}
	// ... then the full M = 6-cell sweep resumes: only M−N = 4 execute.
	full := testSpec([]string{"dbf", "rip", "bgp3"}, []int{3, 4}, 2)
	out, err := Run(context.Background(), full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 4 || out.CacheHits != 2 {
		t.Fatalf("resume executed %d (hits %d), want 4 (hits 2)", out.Executed, out.CacheHits)
	}
	j, err = OpenJournal(opts.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 6 {
		t.Errorf("journal has %d cells after resume, want 6", j.Len())
	}
}

// TestRunInterruptedMidSweep cancels the context as soon as the first cell
// completes, then resumes: the journaled cells must not re-execute.
func TestRunInterruptedMidSweep(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec([]string{"dbf", "rip"}, []int{3, 4}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := Options{
		CacheDir:    filepath.Join(dir, "cache"),
		JournalPath: filepath.Join(dir, "journal.jsonl"),
		Workers:     1,
		Progress: func(line string) {
			if strings.Contains(line, "ms") { // a completed-cell line
				once.Do(cancel)
			}
		},
	}
	if _, err := Run(ctx, spec, opts); err != context.Canceled {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	j, err := OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	n := j.Len()
	j.Close()
	if n == 0 || n >= 4 {
		t.Fatalf("journaled %d of 4 cells across the interrupt, want 1..3", n)
	}
	out, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 4-n || out.CacheHits != n {
		t.Fatalf("resume executed %d (hits %d), want %d (hits %d)", out.Executed, out.CacheHits, 4-n, n)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := testSpec([]string{"dbf"}, []int{3}, 1)
	if _, err := Run(ctx, spec, Options{}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunWritesManifest(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec([]string{"dbf", "rip"}, []int{3}, 2)
	path := filepath.Join(dir, "manifest.json")
	opts := Options{CacheDir: filepath.Join(dir, "cache"), ManifestPath: path}
	out, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.TotalCells != 2 || m.Executed != 2 || len(m.Cells) != 2 {
		t.Fatalf("manifest totals wrong: %+v", m)
	}
	if m.ModuleVersion != Version() || m.GoVersion == "" {
		t.Errorf("manifest provenance wrong: %+v", m)
	}
	for i, c := range m.Cells {
		if c.Key != out.Cells[i].Cell.Key {
			t.Errorf("manifest cell %d key mismatch", i)
		}
		if c.Seed != 1 || c.Trials != 2 {
			t.Errorf("manifest cell %d seed/trials: %+v", i, c)
		}
	}
	if len(m.Spec.Protocols) != 2 {
		t.Errorf("manifest spec not recorded: %+v", m.Spec)
	}
}

func TestRunProgressReporting(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec([]string{"dbf"}, []int{3, 4}, 2)
	var mu sync.Mutex
	var lines []string
	opts := Options{
		CacheDir:      filepath.Join(dir, "cache"),
		Progress:      func(l string) { mu.Lock(); lines = append(lines, l); mu.Unlock() },
		ProgressEvery: time.Millisecond,
	}
	if _, err := Run(context.Background(), spec, opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawCell, sawSummary, sawDone bool
	for _, l := range lines {
		if strings.Contains(l, "dbf/d3/single") {
			sawCell = true
		}
		if strings.Contains(l, "cells/s") && strings.Contains(l, "ETA") {
			sawSummary = true
		}
		if strings.Contains(l, "sweep done") {
			sawDone = true
		}
	}
	if !sawCell || !sawSummary || !sawDone {
		t.Errorf("progress lines missing (cell=%v summary=%v done=%v):\n%s", sawCell, sawSummary, sawDone, strings.Join(lines, "\n"))
	}
}

func TestOutcomeSweepResult(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec([]string{"dbf", "rip"}, []int{3, 4}, 2)
	out, err := Run(context.Background(), spec, Options{CacheDir: filepath.Join(dir, "cache")})
	if err != nil {
		t.Fatal(err)
	}
	sr := out.SweepResult()
	if len(sr.Protocols) != 2 || len(sr.Degrees) != 2 {
		t.Fatalf("sweep result shape: %v × %v", sr.Protocols, sr.Degrees)
	}
	for _, p := range sr.Protocols {
		for _, d := range sr.Degrees {
			if sr.Cells[p][d] == nil {
				t.Errorf("missing cell %v/%d", p, d)
			}
		}
	}
	// The figure tables render from it.
	if got := sr.Figure3Table(); got == nil {
		t.Error("Figure3Table nil")
	}
}
