package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// JournalEntry records one completed cell: its key, how it was satisfied,
// and its wall time. Entries are appended as single JSON lines.
type JournalEntry struct {
	Key    string `json:"key"`
	ID     string `json:"id"`
	Cached bool   `json:"cached,omitempty"`
	WallMS int64  `json:"wall_ms"`
}

// Journal is the sweep's checkpoint log: an append-only file with one line
// per completed cell. An interrupted sweep reopens its journal on restart
// and skips every journaled cell (re-reading the results from the cache),
// so only unfinished work re-executes.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]JournalEntry
}

// OpenJournal opens (creating if needed) the journal at path and loads its
// completed-cell set. A torn final line — the process died mid-append — is
// ignored (that cell simply re-executes) and newline-terminated so the
// next entry cannot merge into it.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: read journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: repair journal: %w", err)
		}
	}
	j := &Journal{f: f, done: make(map[string]JournalEntry)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue // torn or foreign line
		}
		j.done[e.Key] = e
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: scan journal: %w", err)
	}
	return j, nil
}

// Done reports whether key's cell completed in this or a previous run.
func (j *Journal) Done(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.done[key]
	return ok
}

// Len counts the journaled cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends a completed cell and syncs, so a crash immediately after
// a cell finishes still finds it journaled on restart.
func (j *Journal) Record(e JournalEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweep: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync journal: %w", err)
	}
	j.done[e.Key] = e
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// RecordAt is a convenience for tests: journal a cell with the given wall
// time.
func (j *Journal) RecordAt(key, id string, wall time.Duration, cached bool) error {
	return j.Record(JournalEntry{Key: key, ID: id, WallMS: wall.Milliseconds(), Cached: cached})
}
