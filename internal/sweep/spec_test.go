package sweep

import (
	"reflect"
	"testing"
	"time"

	"routeconv/internal/core"
)

func TestParseSpecJSON(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "grid",
		"protocols": ["rip", "dbf"],
		"degrees": [3, 4],
		"trials": 5,
		"seed": 7,
		"end": "500s",
		"failures": [
			{"name": "single"},
			{"name": "flap", "restore_after": "3s", "flaps": 5},
			{"name": "multi", "extra_fail_ats": ["405s", 410000000000]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "grid" || spec.Trials != 5 || spec.Seed != 7 {
		t.Errorf("spec scalars wrong: %+v", spec)
	}
	if time.Duration(spec.End) != 500*time.Second {
		t.Errorf("End = %v", time.Duration(spec.End))
	}
	if len(spec.Failures) != 3 {
		t.Fatalf("failures = %d", len(spec.Failures))
	}
	if d := time.Duration(spec.Failures[1].RestoreAfter); d != 3*time.Second {
		t.Errorf("restore_after = %v", d)
	}
	if d := time.Duration(spec.Failures[2].ExtraFailAts[1]); d != 410*time.Second {
		t.Errorf("numeric extra_fail_at = %v", d)
	}

	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*3 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	// The grid overrides land in each resolved config.
	c := cells[0]
	if c.Config.Trials != 5 || c.Config.Seed != 7 || c.Config.End != 500*time.Second {
		t.Errorf("cell config not resolved: %+v", c.Config)
	}
	if c.ID() != "rip/d3/single" {
		t.Errorf("cell ID = %s", c.ID())
	}
}

func TestExpandToposAxis(t *testing.T) {
	spec := Spec{
		Protocols: []string{"rip", "ls"},
		Degrees:   []int{4},
		Topos:     []string{"ba:n=64,m=2,seed=1", "fattree:k=4"},
		Trials:    2,
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Per protocol: one degree cell then two topo cells.
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	if cells[0].ID() != "rip/d4/single" {
		t.Errorf("cell 0 ID = %s", cells[0].ID())
	}
	if cells[1].ID() != "rip/ba:n=64,m=2,seed=1/single" {
		t.Errorf("cell 1 ID = %s", cells[1].ID())
	}
	if cells[2].Topo != "fattree:k=4" || cells[2].Config.Topo != "fattree:k=4" {
		t.Errorf("cell 2 topo not threaded: %+v", cells[2])
	}
	// Keys are distinct across the whole plan.
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c.Key] {
			t.Errorf("duplicate key for %s", c.ID())
		}
		seen[c.Key] = true
	}
	// Topo-only specs are valid.
	only := Spec{Protocols: []string{"ls"}, Topos: []string{"ring:n=16"}, Trials: 1}
	cells, err = only.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Degree != 0 {
		t.Fatalf("topo-only expansion: %+v", cells)
	}
	// A bad spec fails expansion with a located error.
	bad := Spec{Protocols: []string{"ls"}, Topos: []string{"nonesuch:n=4"}, Trials: 1}
	if _, err := bad.Expand(); err == nil {
		t.Error("bad topo spec expanded")
	}
}

func TestExpandFlowsAxis(t *testing.T) {
	spec := Spec{
		Protocols: []string{"rip"},
		Degrees:   []int{4},
		Flows:     []int{1, 1000},
		Mode:      "hybrid",
		Trials:    1,
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	if cells[0].ID() != "rip/d4/single/f1" || cells[1].ID() != "rip/d4/single/f1000" {
		t.Errorf("cell IDs = %s, %s", cells[0].ID(), cells[1].ID())
	}
	if cells[1].Config.Flows != 1000 || cells[1].Config.Mode != core.ModeHybrid {
		t.Errorf("flows/mode not threaded into the config: %+v", cells[1].Config)
	}
	if cells[0].Key == cells[1].Key {
		t.Error("flow counts did not change the cache key")
	}
	// Mode alone (no Flows axis) also reaches the config and the key.
	packet := Spec{Protocols: []string{"rip"}, Degrees: []int{4}, Trials: 1}
	pc, err := packet.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if pc[0].ID() != "rip/d4/single" {
		t.Errorf("inherited-flows cell ID = %s, want no /fN suffix", pc[0].ID())
	}
	if pc[0].Key == cells[0].Key {
		t.Error("mode did not change the cache key")
	}
	// A bad mode fails expansion.
	bad := Spec{Protocols: []string{"rip"}, Degrees: []int{4}, Trials: 1, Mode: "nonesuch"}
	if _, err := bad.Expand(); err == nil {
		t.Error("bad mode expanded")
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"protocols":["rip"],"degrees":[3],"trials":1,"bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestExpandValidates(t *testing.T) {
	for _, spec := range []Spec{
		{Degrees: []int{3}, Trials: 1},                                                                             // no protocols
		{Protocols: []string{"rip"}, Trials: 1},                                                                    // no degrees
		{Protocols: []string{"nonesuch"}, Degrees: []int{3}, Trials: 1},                                            // bad protocol
		{Protocols: []string{"rip"}, Degrees: []int{3}, Trials: 1, Failures: []FailureMode{{}}},                    // unnamed failure
		{Protocols: []string{"rip"}, Degrees: []int{3}, Trials: 1, Failures: []FailureMode{{Name: "f", Flaps: 3}}}, // flaps without restore
	} {
		if _, err := spec.Expand(); err == nil {
			t.Errorf("Expand(%+v) succeeded, want error", spec)
		}
	}
}

// TestCellKeysGolden pins the content-addressed keys: the same spec must
// produce the same cell keys across runs and across processes. If this
// test fails because core.Config gained a field or the canonical encoding
// changed, bump the expectation — that key change is exactly what
// invalidates stale caches.
func TestCellKeysGolden(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Protocol = core.ProtoDBF
	cfg.Degree = 4
	cfg.Trials = 2
	key, err := CellKeyAt(&cfg, "golden-v1")
	if err != nil {
		t.Fatal(err)
	}
	// Updated when core.Config gained the Topo spec field (PR 6), the
	// Mode/GuardWindow fields (PR 7), and the Scenario/Script fields
	// (PR 10).
	const want = "bb38c8ede01cf6df55d6e699e6b3b971ddf291b269ed16aa3adc0ad7db294ec4"
	if key != want {
		t.Errorf("golden dbf key changed:\n got %s\nwant %s\n(an intentional Config or encoding change must update this golden)", key, want)
	}
	cfg.Protocol = core.ProtoRIP
	key2, err := CellKeyAt(&cfg, "golden-v1")
	if err != nil {
		t.Fatal(err)
	}
	const wantRIP = "0a23475eb6f2f997ba87242e1c0661517aa50ba2d8661f75fe21a6c0cd693975"
	if key2 != wantRIP {
		t.Errorf("golden rip key changed:\n got %s\nwant %s", key2, wantRIP)
	}
	// Version participates in the key: a new module version invalidates.
	key3, err := CellKeyAt(&cfg, "golden-v2")
	if err != nil {
		t.Fatal(err)
	}
	if key3 == key2 {
		t.Error("version change did not change the key")
	}
}

func TestExpandKeysDeterministic(t *testing.T) {
	spec := Spec{Protocols: []string{"rip", "dbf", "bgp3"}, Degrees: []int{3, 4, 5}, Trials: 3}
	a, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 9 {
		t.Fatalf("plan sizes %d, %d", len(a), len(b))
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Errorf("cell %s key differs across expansions", a[i].ID())
		}
		if seen[a[i].Key] {
			t.Errorf("duplicate key for %s", a[i].ID())
		}
		seen[a[i].Key] = true
	}
}

func TestParseDegrees(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"3-6", []int{3, 4, 5, 6}, false},
		{"4", []int{4}, false},
		{"3,5,8", []int{3, 5, 8}, false},
		{"3-5,8", []int{3, 4, 5, 8}, false},
		{" 3 , 4 ", []int{3, 4}, false},
		{"", nil, true},
		{"6-3", nil, true},
		{"abc", nil, true},
		{"3-x", nil, true},
	}
	for _, c := range cases {
		got, err := ParseDegrees(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseDegrees(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDegrees(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseDegrees(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
