package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"routeconv/internal/core"
)

// Options tunes a sweep run. The zero value runs every cell in-process
// with GOMAXPROCS workers, no cache, no journal, and no progress output.
type Options struct {
	// CacheDir, when non-empty, enables the content-addressed result
	// cache rooted there. Cells whose key is present are served from disk
	// without simulating.
	CacheDir string
	// JournalPath, when non-empty, enables checkpoint/resume: completed
	// cells are appended there, and a restarted sweep skips them.
	JournalPath string
	// ManifestPath, when non-empty, is where the run's manifest.json is
	// written (atomically) on completion.
	ManifestPath string
	// Workers bounds the number of cells executing concurrently
	// (default: GOMAXPROCS). Each cell additionally parallelizes its own
	// trials, so 1–2 workers already saturate small machines; more mainly
	// helps when cells are tiny or trial counts are low.
	Workers int
	// Force re-executes every cell, ignoring cache and journal (results
	// are still written back to both).
	Force bool
	// Progress, when non-nil, receives human-readable status lines: one
	// per completed cell and a periodic summary with throughput, ETA and
	// cache hit-rate.
	Progress func(string)
	// ProgressEvery sets the periodic summary interval (default 5 s).
	ProgressEvery time.Duration
}

// CellOutcome is one cell's result and provenance.
type CellOutcome struct {
	Cell   Cell
	Result *core.Result
	// Cached reports that the result came from the cache (or journal)
	// rather than a fresh simulation.
	Cached bool
	// Wall is the time spent obtaining the result in this run.
	Wall time.Duration
}

// Outcome is a completed sweep: every cell's result in plan order, plus
// run-level accounting.
type Outcome struct {
	Spec  Spec
	Cells []CellOutcome
	// Executed counts cells that were freshly simulated; CacheHits counts
	// cells served from the cache, including journal-resumed ones.
	Executed  int
	CacheHits int
	Wall      time.Duration
}

// Run expands the spec and executes its plan: journaled cells are skipped
// (their results re-read from the cache), cached cells are served from
// disk, and the rest are simulated on a bounded worker pool. Cancelling
// ctx stops the sweep promptly — in-flight cells abort between trials —
// and leaves the journal and cache consistent, so the next Run resumes
// where this one stopped.
func Run(ctx context.Context, spec Spec, opts Options) (*Outcome, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}

	var cache *Cache
	if opts.CacheDir != "" {
		if cache, err = OpenCache(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	var journal *Journal
	if opts.JournalPath != "" {
		if journal, err = OpenJournal(opts.JournalPath); err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		// Sharded cells keep Config.Shards goroutines busy per trial (and
		// core.Run further parallelizes trials); shrink the cell pool so
		// the default does not oversubscribe the machine.
		maxShards := 1
		for i := range cells {
			if s := cells[i].Config.Shards; s > maxShards {
				maxShards = s
			}
		}
		if maxShards > 1 {
			if workers = workers / maxShards; workers < 1 {
				workers = 1
			}
		}
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	out := &Outcome{Spec: spec, Cells: make([]CellOutcome, len(cells))}
	start := time.Now()

	// Live observability: a counter the workers bump and a reporter
	// goroutine that turns it into cells/sec, ETA and hit-rate lines.
	var completed, hits atomic.Int64
	stopReport := make(chan struct{})
	var reportWG sync.WaitGroup
	if opts.Progress != nil {
		interval := opts.ProgressEvery
		if interval <= 0 {
			interval = 5 * time.Second
		}
		reportWG.Add(1)
		go func() {
			defer reportWG.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stopReport:
					return
				case <-tick.C:
					opts.Progress(progressLine(int(completed.Load()), len(cells), int(hits.Load()), time.Since(start)))
				}
			}
		}()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain; reported once below
				}
				co, err := runCell(ctx, &cells[i], cache, journal, opts.Force)
				if err != nil {
					if ctx.Err() != nil {
						continue
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: cell %s: %w", cells[i].ID(), err)
					}
					mu.Unlock()
					continue
				}
				out.Cells[i] = co
				completed.Add(1)
				if co.Cached {
					hits.Add(1)
				}
				if opts.Progress != nil {
					src := "ran"
					if co.Cached {
						src = "cache"
					}
					opts.Progress(fmt.Sprintf("%-18s %-5s %8.0fms  no-route %.1f  ttl %.1f  fwd-conv %.1fs",
						co.Cell.ID(), src, float64(co.Wall.Milliseconds()),
						co.Result.MeanNoRouteDrops, co.Result.MeanTTLDrops, co.Result.MeanFwdConv))
				}
			}
		}()
	}
dispatch:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	close(stopReport)
	reportWG.Wait()

	out.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range out.Cells {
		if out.Cells[i].Cached {
			out.CacheHits++
		} else {
			out.Executed++
		}
	}
	if opts.Progress != nil {
		opts.Progress(fmt.Sprintf("sweep done: %d cells in %v (%d simulated, %d from cache)",
			len(cells), out.Wall.Round(time.Millisecond), out.Executed, out.CacheHits))
	}
	if opts.ManifestPath != "" {
		if err := buildManifest(spec, out).Write(opts.ManifestPath); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runCell obtains one cell's result: journal skip, then cache lookup, then
// a fresh simulation (written back to cache and journal).
func runCell(ctx context.Context, cell *Cell, cache *Cache, journal *Journal, force bool) (CellOutcome, error) {
	start := time.Now()
	if !force && cache != nil {
		// A journaled or previously-cached cell is served from disk. The
		// journal alone is not trusted without a readable cache entry —
		// results must come from somewhere — so a journaled cell whose
		// cache entry is missing or corrupt re-executes.
		if res, ok := cache.Get(cell.Key, cell.Config); ok {
			wall := time.Since(start)
			if journal != nil && !journal.Done(cell.Key) {
				if err := journal.Record(JournalEntry{Key: cell.Key, ID: cell.ID(), Cached: true, WallMS: wall.Milliseconds()}); err != nil {
					return CellOutcome{}, err
				}
			}
			return CellOutcome{Cell: *cell, Result: res, Cached: true, Wall: wall}, nil
		}
	}
	res, err := core.RunContext(ctx, cell.Config)
	if err != nil {
		return CellOutcome{}, err
	}
	wall := time.Since(start)
	if cache != nil {
		if err := cache.Put(cell.Key, res); err != nil {
			return CellOutcome{}, err
		}
	}
	if journal != nil {
		if err := journal.Record(JournalEntry{Key: cell.Key, ID: cell.ID(), WallMS: wall.Milliseconds()}); err != nil {
			return CellOutcome{}, err
		}
	}
	return CellOutcome{Cell: *cell, Result: res, Wall: wall}, nil
}

// progressLine renders the periodic status summary.
func progressLine(done, total, hits int, elapsed time.Duration) string {
	rate := float64(done) / elapsed.Seconds()
	eta := "-"
	if done > 0 && done < total {
		remaining := time.Duration(float64(total-done) / rate * float64(time.Second))
		eta = remaining.Round(time.Second).String()
	}
	hitRate := 0.0
	if done > 0 {
		hitRate = 100 * float64(hits) / float64(done)
	}
	return fmt.Sprintf("sweep: %d/%d cells (%.0f%%)  %.2f cells/s  ETA %s  cache hit %.0f%%",
		done, total, 100*float64(done)/float64(total), rate, eta, hitRate)
}

// SweepResult assembles the outcome's single-failure cells into the figure
// renderer's shape (core.SweepResult), so figure generation runs on top of
// the orchestrator. Cells of failure modes other than the first are
// ignored — the paper's figures describe one failure model at a time —
// and so are topo-spec cells, which have no degree axis to plot along.
func (o *Outcome) SweepResult() *core.SweepResult {
	var protocols []core.ProtocolKind
	var degrees []int
	seenProto := map[core.ProtocolKind]bool{}
	seenDeg := map[int]bool{}
	failure := ""
	cells := make(map[core.ProtocolKind]map[int]*core.Result)
	base := o.Spec.base()
	for i := range o.Cells {
		c := &o.Cells[i]
		if c.Result == nil || c.Cell.Topo != "" {
			continue
		}
		if failure == "" {
			failure = c.Cell.Failure.Name
		}
		if c.Cell.Failure.Name != failure {
			continue
		}
		if !seenProto[c.Cell.Protocol] {
			seenProto[c.Cell.Protocol] = true
			protocols = append(protocols, c.Cell.Protocol)
		}
		if !seenDeg[c.Cell.Degree] {
			seenDeg[c.Cell.Degree] = true
			degrees = append(degrees, c.Cell.Degree)
		}
		if cells[c.Cell.Protocol] == nil {
			cells[c.Cell.Protocol] = make(map[int]*core.Result)
		}
		cells[c.Cell.Protocol][c.Cell.Degree] = c.Result
	}
	return &core.SweepResult{
		Config:    core.SweepConfig{Base: base, Degrees: degrees, Protocols: protocols},
		Degrees:   degrees,
		Protocols: protocols,
		Cells:     cells,
	}
}
