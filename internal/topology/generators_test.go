package topology

import (
	"testing"
	"testing/quick"
)

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.Len() != 20 {
		t.Fatalf("Len = %d, want 20", g.Len())
	}
	if g.NumEdges() != 40 {
		t.Errorf("edges = %d, want 2·rows·cols = 40", g.NumEdges())
	}
	for i := 0; i < g.Len(); i++ {
		if d := g.Degree(NodeID(i)); d != 4 {
			t.Errorf("node %d degree = %d, want 4 (no borders on a torus)", i, d)
		}
	}
	if !g.Connected() {
		t.Error("torus disconnected")
	}
	// Wrap-around edges exist.
	if !g.HasEdge(0, 4) { // row 0: col 0 ↔ col 4
		t.Error("missing horizontal wrap edge")
	}
	if !g.HasEdge(0, 15) { // col 0: row 0 ↔ row 3
		t.Error("missing vertical wrap edge")
	}
}

func TestTorusSmall(t *testing.T) {
	// 3×3 torus still has uniform degree 4.
	g := Torus(3, 3)
	for i := 0; i < g.Len(); i++ {
		if d := g.Degree(NodeID(i)); d != 4 {
			t.Errorf("node %d degree = %d, want 4", i, d)
		}
	}
}

func TestHypercube(t *testing.T) {
	for dim := 1; dim <= 6; dim++ {
		g := Hypercube(dim)
		if g.Len() != 1<<dim {
			t.Fatalf("dim %d: Len = %d, want %d", dim, g.Len(), 1<<dim)
		}
		for v := 0; v < g.Len(); v++ {
			if d := g.Degree(NodeID(v)); d != dim {
				t.Errorf("dim %d: node %d degree = %d, want %d", dim, v, d, dim)
			}
		}
		if !g.Connected() {
			t.Errorf("dim %d: disconnected", dim)
		}
		if got := g.Diameter(); got != dim {
			t.Errorf("dim %d: diameter = %d, want %d", dim, got, dim)
		}
	}
}

func TestSmallWorld(t *testing.T) {
	g := SmallWorld(30, 3, 0.2, 1)
	if g.Len() != 30 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Connected() {
		t.Error("small world disconnected")
	}
	// With beta > 0, the diameter should be well under the pure ring's.
	ring := Ring(30)
	if g.Diameter() >= ring.Diameter() {
		t.Errorf("small-world diameter %d not below ring diameter %d", g.Diameter(), ring.Diameter())
	}
}

func TestSmallWorldZeroBetaIsLattice(t *testing.T) {
	g := SmallWorld(20, 2, 0, 1)
	for i := 0; i < 20; i++ {
		for _, dist := range []int{1, 2} {
			if !g.HasEdge(NodeID(i), NodeID((i+dist)%20)) {
				t.Errorf("missing lattice chord %d→+%d", i, dist)
			}
		}
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a := SmallWorld(25, 3, 0.5, 9)
	b := SmallWorld(25, 3, 0.5, 9)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("not deterministic")
		}
	}
}

// Property: small-world graphs stay connected for any parameters.
func TestPropertySmallWorldConnected(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8, betaRaw uint8) bool {
		n := 5 + int(nRaw)%40
		k := 1 + int(kRaw)%4
		beta := float64(betaRaw) / 255
		return SmallWorld(n, k, beta, seed).Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: torus diameter equals floor(rows/2) + floor(cols/2).
func TestPropertyTorusDiameter(t *testing.T) {
	f := func(rRaw, cRaw uint8) bool {
		rows := 3 + int(rRaw)%6
		cols := 3 + int(cRaw)%6
		g := Torus(rows, cols)
		return g.Diameter() == rows/2+cols/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
