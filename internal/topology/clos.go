package topology

import "fmt"

// FatTree is a canonical k-ary fat-tree datacenter fabric (Al-Fares et al.,
// SIGCOMM 2008): (k/2)² core switches and k pods of k/2 aggregation plus
// k/2 edge switches each. Every aggregation switch connects to k/2 cores
// and to every edge switch in its pod, giving (k/2)² equal-cost shortest
// paths between edge switches in different pods — the structured ECMP
// stress case for the simulator's multipath forwarding.
//
// Node numbering: cores first (0 … (k/2)²−1), then pod by pod, aggregation
// switches before edge switches.
type FatTree struct {
	*Graph
	K int
	// Core, Agg and Edge list the node IDs of each layer in ascending order.
	Core, Agg, Edge []NodeID
}

// NewFatTree builds the k-ary fat-tree. k must be even and ≥ 2.
func NewFatTree(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree needs even k ≥ 2, got %d", k)
	}
	h := k / 2
	nCore := h * h
	ft := &FatTree{Graph: NewGraph(nCore + k*k), K: k}
	for q := 0; q < nCore; q++ {
		ft.Core = append(ft.Core, NodeID(q))
	}
	for p := 0; p < k; p++ {
		podBase := nCore + p*k
		for j := 0; j < h; j++ {
			agg := NodeID(podBase + j)
			ft.Agg = append(ft.Agg, agg)
			// Aggregation switch j of every pod uplinks to core group j.
			for q := 0; q < h; q++ {
				ft.AddEdgeUnique(agg, NodeID(j*h+q))
			}
			for i := 0; i < h; i++ {
				ft.AddEdgeUnique(agg, NodeID(podBase+h+i))
			}
		}
		for i := 0; i < h; i++ {
			ft.Edge = append(ft.Edge, NodeID(podBase+h+i))
		}
	}
	return ft, nil
}

// Pod returns the pod index of an aggregation or edge switch, or -1 for a
// core switch.
func (ft *FatTree) Pod(id NodeID) int {
	h := ft.K / 2
	if int(id) < h*h {
		return -1
	}
	return (int(id) - h*h) / ft.K
}

// LeafSpine returns a two-level Clos fabric: every one of the leaves leaf
// switches connects to every one of the spines spine switches (complete
// bipartite), giving spines equal-cost two-hop paths between any leaf pair.
// Spines are numbered 0 … spines−1, then leaves. Panics unless both counts
// are ≥ 1.
func LeafSpine(spines, leaves int) *Graph {
	if spines < 1 || leaves < 1 {
		panic(fmt.Sprintf("topology: leaf-spine needs spines, leaves ≥ 1, got %d, %d", spines, leaves))
	}
	g := NewGraph(spines + leaves)
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.AddEdgeUnique(NodeID(spines+l), NodeID(s))
		}
	}
	return g
}
