package topology

import (
	"math/rand"
	"sort"
)

// CSR is a compressed-sparse-row snapshot of a Graph: the neighbor lists of
// all nodes concatenated into one dense column array, indexed by a row
// pointer array. Neighbors of node u occupy col[rowPtr[u]:rowPtr[u+1]],
// sorted ascending. The layout is immutable, cache-friendly, and free of
// per-node slice headers and map overhead, so BFS-style analysis of a
// 100k-node graph runs on two flat arrays.
type CSR struct {
	rowPtr []int32
	col    []NodeID
}

// NewCSR builds the CSR form of g. The graph is not retained.
func NewCSR(g *Graph) *CSR {
	n := g.Len()
	c := &CSR{
		rowPtr: make([]int32, n+1),
		col:    make([]NodeID, 0, 2*g.NumEdges()),
	}
	for u := 0; u < n; u++ {
		start := len(c.col)
		c.col = append(c.col, g.Neighbors(NodeID(u))...)
		row := c.col[start:]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		c.rowPtr[u+1] = int32(len(c.col))
	}
	return c
}

// Len returns the number of nodes.
func (c *CSR) Len() int { return len(c.rowPtr) - 1 }

// NumEdges returns the number of undirected edges.
func (c *CSR) NumEdges() int { return len(c.col) / 2 }

// Degree returns the number of neighbors of u.
func (c *CSR) Degree(u NodeID) int { return int(c.rowPtr[u+1] - c.rowPtr[u]) }

// Neighbors returns u's neighbors in ascending order. The slice aliases the
// CSR's storage and must not be modified.
func (c *CSR) Neighbors(u NodeID) []NodeID { return c.col[c.rowPtr[u]:c.rowPtr[u+1]] }

// HasEdge reports whether the undirected edge {a, b} exists, by binary
// search over the smaller endpoint row.
func (c *CSR) HasEdge(a, b NodeID) bool {
	if a < 0 || b < 0 || int(a) >= c.Len() || int(b) >= c.Len() {
		return false
	}
	if c.Degree(b) < c.Degree(a) {
		a, b = b, a
	}
	row := c.Neighbors(a)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= b })
	return i < len(row) && row[i] == b
}

// Edges returns all edges sorted by (A, B).
func (c *CSR) Edges() []Edge {
	out := make([]Edge, 0, c.NumEdges())
	for u := 0; u < c.Len(); u++ {
		for _, v := range c.Neighbors(NodeID(u)) {
			if v > NodeID(u) {
				out = append(out, Edge{A: NodeID(u), B: v})
			}
		}
	}
	return out
}

// BFSScratch holds reusable breadth-first-search state so repeated
// traversals of the same-size graph allocate nothing.
type BFSScratch struct {
	dist  []int32
	queue []NodeID
}

// BFS computes hop distances from src; unreachable nodes get -1. The
// returned slice is owned by the scratch and overwritten by the next call.
func (c *CSR) BFS(src NodeID, s *BFSScratch) []int32 {
	n := c.Len()
	if cap(s.dist) < n {
		s.dist = make([]int32, n)
		s.queue = make([]NodeID, 0, n)
	}
	s.dist = s.dist[:n]
	for i := range s.dist {
		s.dist[i] = -1
	}
	s.dist[src] = 0
	s.queue = append(s.queue[:0], src)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		for _, v := range c.Neighbors(u) {
			if s.dist[v] < 0 {
				s.dist[v] = du + 1
				s.queue = append(s.queue, v)
			}
		}
	}
	return s.dist
}

// Connected reports whether every node is reachable from node 0. The empty
// graph is considered connected.
func (c *CSR) Connected() bool {
	if c.Len() == 0 {
		return true
	}
	var s BFSScratch
	for _, d := range c.BFS(0, &s) {
		if d < 0 {
			return false
		}
	}
	return true
}

// EstimateDiameter lower-bounds the diameter with the double-sweep
// heuristic: BFS from each of samples random start nodes, then BFS again
// from the farthest node found, keeping the largest eccentricity seen. For
// the small-diameter graphs of the study the bound is usually exact, at
// 2·samples BFS traversals instead of the n of Diameter. Disconnected
// graphs return -1; deterministic in seed.
func (c *CSR) EstimateDiameter(samples int, seed int64) int {
	n := c.Len()
	if n == 0 {
		return -1
	}
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var s BFSScratch
	best := 0
	for i := 0; i < samples; i++ {
		far, ecc, ok := c.farthest(NodeID(rng.Intn(n)), &s)
		if !ok {
			return -1
		}
		if ecc > best {
			best = ecc
		}
		if _, ecc, ok = c.farthest(far, &s); !ok {
			return -1
		}
		if ecc > best {
			best = ecc
		}
	}
	return best
}

// farthest returns the highest-distance node from src (lowest ID on ties)
// and its distance; ok is false if the graph is disconnected.
func (c *CSR) farthest(src NodeID, s *BFSScratch) (far NodeID, ecc int, ok bool) {
	dist := c.BFS(src, s)
	far, best := src, int32(0)
	for v, d := range dist {
		if d < 0 {
			return 0, 0, false
		}
		if d > best {
			far, best = NodeID(v), d
		}
	}
	return far, int(best), true
}

// AvgPathLengthSampled estimates the mean shortest-path length over all
// ordered pairs by BFS from samples random sources (exact when samples ≥
// n). It returns -1 for a disconnected or trivial graph; deterministic in
// seed.
func (c *CSR) AvgPathLengthSampled(samples int, seed int64) float64 {
	n := c.Len()
	if n < 2 {
		return -1
	}
	var srcs []NodeID
	if samples >= n {
		srcs = make([]NodeID, n)
		for i := range srcs {
			srcs[i] = NodeID(i)
		}
	} else {
		if samples < 1 {
			samples = 1
		}
		rng := rand.New(rand.NewSource(seed))
		srcs = make([]NodeID, samples)
		for i := range srcs {
			srcs[i] = NodeID(rng.Intn(n))
		}
	}
	var s BFSScratch
	var sum, pairs float64
	for _, src := range srcs {
		for v, d := range c.BFS(src, &s) {
			if d < 0 {
				return -1
			}
			if NodeID(v) != src {
				sum += float64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return -1
	}
	return sum / pairs
}
