package topology

import "testing"

// TestEdgesAllocFree pins the memoization contract: after the first call,
// repeated Edges() calls on an unmodified graph allocate nothing, and
// DegreeCounts with a recycled buffer allocates nothing. Large-graph
// analysis loops depend on both.
func TestEdgesAllocFree(t *testing.T) {
	g := BarabasiAlbert(2000, 2, 1)
	g.Edges() // populate the cache
	if allocs := testing.AllocsPerRun(20, func() { g.Edges() }); allocs != 0 {
		t.Errorf("cached Edges() allocates %v times per run", allocs)
	}
	buf := g.DegreeCounts(nil)
	if allocs := testing.AllocsPerRun(20, func() { buf = g.DegreeCounts(buf) }); allocs != 0 {
		t.Errorf("DegreeCounts with recycled buffer allocates %v times per run", allocs)
	}
}

func BenchmarkBarabasiAlbert10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(10_000, 2, 1)
	}
}

func BenchmarkBarabasiAlbert100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(100_000, 2, 1)
	}
}

func BenchmarkGLP10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GLP(10_000, 2, GLPDefaultP, GLPDefaultBeta, 1)
	}
}

func BenchmarkNewCSR(b *testing.B) {
	g := BarabasiAlbert(100_000, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSR(g)
	}
}

func BenchmarkCSRBFS100k(b *testing.B) {
	c := NewCSR(BarabasiAlbert(100_000, 2, 1))
	var s BFSScratch
	c.BFS(0, &s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BFS(NodeID(i%c.Len()), &s)
	}
}

func BenchmarkEdges100k(b *testing.B) {
	g := BarabasiAlbert(100_000, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.edgeCache = nil // measure the rebuild, not the memoized lookup
		if len(g.Edges()) != g.NumEdges() {
			b.Fatal("edge count mismatch")
		}
	}
}
