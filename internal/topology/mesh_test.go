package topology

import (
	"testing"
	"testing/quick"
)

func TestMeshInteriorDegree(t *testing.T) {
	for degree := 3; degree <= 16; degree++ {
		m, err := NewMesh(9, 9, degree)
		if err != nil {
			t.Fatalf("NewMesh(9,9,%d): %v", degree, err)
		}
		for id := NodeID(0); int(id) < m.Len(); id++ {
			if !m.Interior(id) {
				continue
			}
			if got := m.Degree(id); got != degree {
				r, c := m.Pos(id)
				t.Errorf("degree %d: interior node (%d,%d) has degree %d", degree, r, c, got)
			}
		}
	}
}

func TestMeshConnected(t *testing.T) {
	for degree := 3; degree <= 16; degree++ {
		m, err := NewMesh(7, 7, degree)
		if degree > 8 {
			// 7×7 supports all degrees; only tiny lattices are rejected.
			if err != nil {
				t.Fatalf("NewMesh(7,7,%d): %v", degree, err)
			}
		}
		if err != nil {
			t.Fatalf("NewMesh(7,7,%d): %v", degree, err)
		}
		if !m.Connected() {
			t.Errorf("degree-%d mesh is disconnected", degree)
		}
	}
}

func TestMeshDegree4IsLattice(t *testing.T) {
	m, err := NewMesh(5, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A 5×5 lattice has 2*5*4 = 40 edges.
	if m.NumEdges() != 40 {
		t.Errorf("degree-4 5×5 mesh has %d edges, want 40", m.NumEdges())
	}
	if m.HasEdge(m.ID(0, 0), m.ID(1, 1)) {
		t.Error("degree-4 mesh has a diagonal edge")
	}
	if !m.HasEdge(m.ID(2, 2), m.ID(2, 3)) || !m.HasEdge(m.ID(2, 2), m.ID(3, 2)) {
		t.Error("degree-4 mesh is missing lattice edges")
	}
}

func TestMeshDegree6HasDiagonals(t *testing.T) {
	m, err := NewMesh(5, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasEdge(m.ID(1, 1), m.ID(2, 2)) {
		t.Error("degree-6 mesh is missing the ↘ diagonal")
	}
	if m.HasEdge(m.ID(1, 1), m.ID(2, 0)) {
		t.Error("degree-6 mesh unexpectedly has the ↙ diagonal")
	}
}

func TestMeshDegree8IsKingMoves(t *testing.T) {
	m, err := NewMesh(5, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	center := m.ID(2, 2)
	if m.Degree(center) != 8 {
		t.Fatalf("center degree = %d, want 8", m.Degree(center))
	}
	for _, n := range []NodeID{m.ID(1, 1), m.ID(1, 2), m.ID(1, 3), m.ID(2, 1), m.ID(2, 3), m.ID(3, 1), m.ID(3, 2), m.ID(3, 3)} {
		if !m.HasEdge(center, n) {
			t.Errorf("degree-8 mesh missing king move %d→%d", center, n)
		}
	}
}

func TestMeshErrors(t *testing.T) {
	cases := []struct {
		rows, cols, degree int
	}{
		{1, 5, 4},                 // too few rows
		{5, 1, 4},                 // too few cols
		{5, 5, 2},                 // degree too small
		{5, 5, MaxMeshDegree + 1}, // degree too large
		{4, 4, 10},                // high degree on a tiny lattice
	}
	for _, c := range cases {
		if _, err := NewMesh(c.rows, c.cols, c.degree); err == nil {
			t.Errorf("NewMesh(%d,%d,%d) succeeded, want error", c.rows, c.cols, c.degree)
		}
	}
}

func TestMeshIDPosRoundTrip(t *testing.T) {
	m, err := NewMesh(4, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for id := NodeID(0); int(id) < m.Len(); id++ {
		r, c := m.Pos(id)
		if m.ID(r, c) != id {
			t.Fatalf("Pos/ID round trip failed for %d", id)
		}
	}
}

func TestMeshRows(t *testing.T) {
	m, err := NewMesh(4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	first, last := m.FirstRow(), m.LastRow()
	if len(first) != 3 || len(last) != 3 {
		t.Fatalf("row lengths %d, %d; want 3, 3", len(first), len(last))
	}
	if first[0] != 0 || first[2] != 2 {
		t.Errorf("FirstRow = %v", first)
	}
	if last[0] != m.ID(3, 0) || last[2] != m.ID(3, 2) {
		t.Errorf("LastRow = %v", last)
	}
}

func TestMeshDeterministic(t *testing.T) {
	a, err := NewMesh(7, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMesh(7, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("mesh construction not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("mesh construction not deterministic")
		}
	}
}

// Property: for every supported degree on lattices of varied size, interior
// degree is exact, no node exceeds the target, and the mesh is connected.
func TestPropertyMeshInvariants(t *testing.T) {
	f := func(rows, cols, deg uint8) bool {
		r := 5 + int(rows)%6 // 5..10
		c := 5 + int(cols)%6 // 5..10
		d := 3 + int(deg)%14 // 3..16
		m, err := NewMesh(r, c, d)
		if err != nil {
			return false
		}
		if !m.Connected() {
			return false
		}
		for id := NodeID(0); int(id) < m.Len(); id++ {
			got := m.Degree(id)
			if got > d {
				return false
			}
			if m.Interior(id) && got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Every mesh node has degree ≥ 2, so no single link failure can strand a
// router (the corner fix for odd-degree brick walls).
func TestMeshMinimumDegreeTwo(t *testing.T) {
	for degree := 3; degree <= 16; degree++ {
		for _, dims := range [][2]int{{7, 7}, {5, 9}, {6, 6}} {
			m, err := NewMesh(dims[0], dims[1], degree)
			if err != nil {
				t.Fatal(err)
			}
			for id := NodeID(0); int(id) < m.Len(); id++ {
				if m.Degree(id) < 2 {
					r, c := m.Pos(id)
					t.Errorf("degree %d mesh %v: node (%d,%d) has degree %d", degree, dims, r, c, m.Degree(id))
				}
			}
		}
	}
}

// Property: mesh diameter shrinks (weakly) as degree grows, for a fixed
// lattice — the paper's richer-connectivity premise (§4.4).
func TestMeshDiameterShrinksWithDegree(t *testing.T) {
	prev := 1 << 30
	for degree := 3; degree <= 12; degree++ {
		m, err := NewMesh(7, 7, degree)
		if err != nil {
			t.Fatal(err)
		}
		d := m.Diameter()
		if d > prev {
			t.Errorf("diameter grew from %d to %d at degree %d", prev, d, degree)
		}
		prev = d
	}
}
