package topology

import "testing"

func TestNewFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7, -2} {
		if _, err := NewFatTree(k); err == nil {
			t.Errorf("NewFatTree(%d) succeeded, want error", k)
		}
	}
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		h := k / 2
		if got, want := ft.Len(), h*h+k*k; got != want {
			t.Errorf("k=%d: nodes = %d, want %d", k, got, want)
		}
		// Core-agg links: k pods × h agg × h uplinks; agg-edge links:
		// k pods × h agg × h edges. Total k³/2.
		if got, want := ft.NumEdges(), k*k*k/2; got != want {
			t.Errorf("k=%d: edges = %d, want %d", k, got, want)
		}
		if len(ft.Core) != h*h || len(ft.Agg) != k*h || len(ft.Edge) != k*h {
			t.Errorf("k=%d: layer sizes %d/%d/%d", k, len(ft.Core), len(ft.Agg), len(ft.Edge))
		}
		if !ft.Connected() {
			t.Errorf("k=%d: disconnected", k)
		}
		for _, c := range ft.Core {
			if d := ft.Degree(c); d != k {
				t.Errorf("k=%d: core %d degree %d, want %d", k, c, d, k)
			}
			if ft.Pod(c) != -1 {
				t.Errorf("k=%d: core %d in pod %d", k, c, ft.Pod(c))
			}
		}
		for _, a := range ft.Agg {
			if d := ft.Degree(a); d != k {
				t.Errorf("k=%d: agg %d degree %d, want %d", k, a, d, k)
			}
		}
		for _, e := range ft.Edge {
			if d := ft.Degree(e); d != h {
				t.Errorf("k=%d: edge %d degree %d, want %d", k, e, d, h)
			}
		}
	}
}

func TestFatTreePodMembership(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Every agg/edge switch lands in a pod 0..k-1, k/2+k/2 switches per pod.
	perPod := make(map[int]int)
	for _, id := range append(append([]NodeID{}, ft.Agg...), ft.Edge...) {
		p := ft.Pod(id)
		if p < 0 || p >= ft.K {
			t.Fatalf("Pod(%d) = %d out of range", id, p)
		}
		perPod[p]++
	}
	for p := 0; p < ft.K; p++ {
		if perPod[p] != ft.K {
			t.Errorf("pod %d has %d switches, want %d", p, perPod[p], ft.K)
		}
	}
	// Agg and edge switches in the same pod are adjacent; edge switches in
	// different pods are not.
	if !ft.HasEdge(ft.Agg[0], ft.Edge[0]) {
		t.Error("pod-0 agg not connected to pod-0 edge")
	}
	if ft.HasEdge(ft.Edge[0], ft.Edge[len(ft.Edge)-1]) {
		t.Error("edge switches directly connected across pods")
	}
}

// TestFatTreeECMPMultiplicity checks the fabric's defining property: between
// edge switches in different pods there are exactly (k/2)² shortest paths of
// length 4, counted by dynamic programming over the BFS distance layers.
func TestFatTreeECMPMultiplicity(t *testing.T) {
	for _, k := range []int{4, 8} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		h := k / 2
		src, dst := ft.Edge[0], ft.Edge[len(ft.Edge)-1]
		if ft.Pod(src) == ft.Pod(dst) {
			t.Fatal("test wants cross-pod endpoints")
		}
		dist := ft.BFS(src)
		if dist[dst] != 4 {
			t.Fatalf("k=%d: cross-pod distance %d, want 4", k, dist[dst])
		}
		// paths[v] = number of shortest src→v paths, filled in BFS order.
		paths := make([]int, ft.Len())
		paths[src] = 1
		order := make([]NodeID, 0, ft.Len())
		for v := 0; v < ft.Len(); v++ {
			order = append(order, NodeID(v))
		}
		for d := 1; d <= 4; d++ {
			for _, v := range order {
				if dist[v] != d {
					continue
				}
				for _, u := range ft.Neighbors(v) {
					if dist[u] == d-1 {
						paths[v] += paths[u]
					}
				}
			}
		}
		if paths[dst] != h*h {
			t.Errorf("k=%d: %d equal-cost shortest paths, want %d", k, paths[dst], h*h)
		}
		// Same-pod edge switches are 2 apart through any of the pod's h aggs.
		sameDist := ft.BFS(ft.Edge[0])
		if sameDist[ft.Edge[1]] != 2 {
			t.Errorf("k=%d: same-pod distance %d, want 2", k, sameDist[ft.Edge[1]])
		}
	}
}

func TestLeafSpine(t *testing.T) {
	g := LeafSpine(4, 8)
	if g.Len() != 12 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.NumEdges() != 32 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	for s := 0; s < 4; s++ {
		if d := g.Degree(NodeID(s)); d != 8 {
			t.Errorf("spine %d degree %d, want 8", s, d)
		}
	}
	for l := 4; l < 12; l++ {
		if d := g.Degree(NodeID(l)); d != 4 {
			t.Errorf("leaf %d degree %d, want 4", l, d)
		}
	}
	if !g.Connected() {
		t.Error("disconnected")
	}
}
