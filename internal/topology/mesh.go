package topology

import (
	"fmt"
	"math/rand"
)

// Mesh holds a Baran-style regular mesh: a rows×cols lattice augmented with
// deterministic chord-edge families so that every node away from the border
// has the same degree. This is the topology family of the paper's §5
// ("a deterministic method similar to the one used by Baran").
type Mesh struct {
	*Graph
	Rows, Cols int
	TargetDeg  int
}

// offset is one family of parallel edges: every node (r, c) is linked to
// (r+dr, c+dc) when both ends are in the lattice. A full family adds 2 to
// every interior node's degree; a "half" family adds the edges of a perfect
// matching instead, adding exactly 1.
type offset struct{ dr, dc int }

// families lists chord-edge families in the order they are layered onto the
// lattice as the target degree grows: lattice edges first, then the two
// diagonals, then distance-2 chords. Twelve families support interior
// degrees up to 24.
var families = []offset{
	{0, 1},  // horizontal lattice
	{1, 0},  // vertical lattice
	{1, 1},  // diagonal ↘
	{1, -1}, // diagonal ↙
	{0, 2},  // horizontal skip
	{2, 0},  // vertical skip
	{2, 2},  // long diagonal ↘
	{2, -2}, // long diagonal ↙
	{1, 2},  // knight-like chords
	{2, 1},
	{1, -2},
	{2, -1},
}

// MaxMeshDegree is the largest target degree NewMesh supports: two per
// chord-edge family.
const MaxMeshDegree = 24

// NewMesh builds a rows×cols mesh whose interior nodes all have degree
// degree. Nodes are numbered row-major: id = r*cols + c. It returns an
// error when the requested degree cannot be realized.
func NewMesh(rows, cols, degree int) (*Mesh, error) {
	switch {
	case rows < 2 || cols < 2:
		return nil, fmt.Errorf("topology: mesh needs at least 2×2, got %d×%d", rows, cols)
	case degree < 3:
		return nil, fmt.Errorf("topology: mesh degree must be ≥ 3, got %d", degree)
	case degree > MaxMeshDegree:
		return nil, fmt.Errorf("topology: mesh degree must be ≤ %d, got %d", MaxMeshDegree, degree)
	case degree > 8 && (rows < 5 || cols < 5):
		return nil, fmt.Errorf("topology: degree %d needs at least a 5×5 lattice", degree)
	}
	m := &Mesh{Graph: NewGraph(rows * cols), Rows: rows, Cols: cols, TargetDeg: degree}
	full := degree / 2
	if full > len(families) {
		full = len(families)
	}
	for i := 0; i < full; i++ {
		m.addFamily(families[i], false)
	}
	if degree%2 == 1 {
		m.addFamily(families[full], true)
	}
	m.fixCorners()
	return m, nil
}

// fixCorners raises any degree-≤1 node (brick-wall corners at odd target
// degrees) to degree ≥ 2 by adding its missing lattice edge, so that no
// single link failure can strand a router — the paper's failures are
// always recoverable.
func (m *Mesh) fixCorners() {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			id := m.ID(r, c)
			if m.Degree(id) >= 2 {
				continue
			}
			for _, o := range []offset{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				r2, c2 := r+o.dr, c+o.dc
				if r2 < 0 || r2 >= m.Rows || c2 < 0 || c2 >= m.Cols {
					continue
				}
				if !m.HasEdge(id, m.ID(r2, c2)) {
					m.AddEdge(id, m.ID(r2, c2))
					break
				}
			}
		}
	}
}

// addFamily layers one edge family onto the mesh. When half is true only a
// perfect matching of the family is added, so each interior node gains
// exactly one edge.
func (m *Mesh) addFamily(o offset, half bool) {
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			r2, c2 := r+o.dr, c+o.dc
			if r2 < 0 || r2 >= m.Rows || c2 < 0 || c2 >= m.Cols {
				continue
			}
			if half && !matchingEdge(o, r, c) {
				continue
			}
			m.AddEdge(m.ID(r, c), m.ID(r2, c2))
		}
	}
}

// matchingEdge selects alternate edges along each chain of the family so
// that the selected edges form a matching. The vertical lattice family uses
// checkerboard parity so that a degree-3 mesh (the only case where a half
// family must carry inter-row connectivity) stays connected — this yields
// the classic "brick wall".
func matchingEdge(o offset, r, c int) bool {
	if o.dr == 1 && o.dc == 0 {
		return (r+c)%2 == 0
	}
	if o.dr > 0 {
		return (r/o.dr)%2 == 0
	}
	return (c/o.dc)%2 == 0
}

// ID returns the node at lattice position (r, c).
func (m *Mesh) ID(r, c int) NodeID { return NodeID(r*m.Cols + c) }

// Pos returns the lattice position of a node.
func (m *Mesh) Pos(id NodeID) (r, c int) { return int(id) / m.Cols, int(id) % m.Cols }

// Interior reports whether the node is far enough from the border to have
// the full target degree.
func (m *Mesh) Interior(id NodeID) bool {
	margin := 1
	if m.TargetDeg > 8 {
		margin = 2
	}
	r, c := m.Pos(id)
	return r >= margin && r < m.Rows-margin && c >= margin && c < m.Cols-margin
}

// FirstRow returns the node IDs of lattice row 0 (where the paper attaches
// the sender).
func (m *Mesh) FirstRow() []NodeID { return m.row(0) }

// LastRow returns the node IDs of the last lattice row (where the paper
// attaches the receiver).
func (m *Mesh) LastRow() []NodeID { return m.row(m.Rows - 1) }

func (m *Mesh) row(r int) []NodeID {
	out := make([]NodeID, m.Cols)
	for c := 0; c < m.Cols; c++ {
		out[c] = m.ID(r, c)
	}
	return out
}

// Line returns a path graph on n nodes: 0-1-2-…-(n-1).
func Line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

// Ring returns a cycle on n nodes.
func Ring(n int) *Graph {
	g := Line(n)
	if n > 2 {
		g.AddEdge(0, NodeID(n-1))
	}
	return g
}

// Full returns the complete graph on n nodes.
func Full(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return g
}

// Random returns a connected random graph on n nodes with approximately
// avgDegree average degree, built from a random spanning tree plus random
// chords, deterministically from seed.
func Random(n, avgDegree int, seed int64) *Graph {
	if n < 2 {
		return NewGraph(n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach each node to a random earlier node: a random spanning tree.
		g.AddEdge(NodeID(perm[i]), NodeID(perm[rng.Intn(i)]))
	}
	wantEdges := n * avgDegree / 2
	for g.NumEdges() < wantEdges {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			g.AddEdge(a, b)
		}
	}
	return g
}
