package topology

import (
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(3)
	if g.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", g.Len())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1) // duplicate in reverse order
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges() = %d, want 2 (duplicate ignored)", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Error("HasEdge should be order-insensitive")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true, want false")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Fatalf("AddNode IDs = %d, %d; want 0, 1", a, b)
	}
	g.AddEdge(a, b)
	if !g.HasEdge(a, b) {
		t.Error("edge missing after AddNode + AddEdge")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge(1,1) did not panic")
		}
	}()
	NewGraph(3).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	NewGraph(3).AddEdge(0, 5)
}

func TestBFS(t *testing.T) {
	g := Line(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Errorf("dist[2] = %d, want -1", dist[2])
	}
	if g.Connected() {
		t.Error("Connected() = true for disconnected graph")
	}
}

func TestShortestPath(t *testing.T) {
	g := Ring(6)
	path, ok := g.ShortestPath(0, 3)
	if !ok {
		t.Fatal("ShortestPath reported unreachable")
	}
	if len(path) != 4 {
		t.Fatalf("path %v has %d nodes, want 4", path, len(path))
	}
	if path[0] != 0 || path[len(path)-1] != 3 {
		t.Errorf("path %v does not run 0 → 3", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Errorf("path step %d→%d is not an edge", path[i], path[i+1])
		}
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := Line(3)
	path, ok := g.ShortestPath(1, 1)
	if !ok || len(path) != 1 || path[0] != 1 {
		t.Errorf("ShortestPath(1,1) = %v, %v", path, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(2)
	if _, ok := g.ShortestPath(0, 1); ok {
		t.Error("ShortestPath on disconnected pair reported reachable")
	}
}

func TestDiameter(t *testing.T) {
	if d := Line(5).Diameter(); d != 4 {
		t.Errorf("Line(5) diameter = %d, want 4", d)
	}
	if d := Ring(6).Diameter(); d != 3 {
		t.Errorf("Ring(6) diameter = %d, want 3", d)
	}
	if d := Full(7).Diameter(); d != 1 {
		t.Errorf("Full(7) diameter = %d, want 1", d)
	}
	g := NewGraph(2)
	if d := g.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(3, 2)
	g.AddEdge(1, 0)
	g.AddEdge(2, 0)
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}

func TestClone(t *testing.T) {
	g := Ring(5)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("mutating clone affected original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Error("clone edge count wrong")
	}
}

func TestNewEdgeCanonical(t *testing.T) {
	if NewEdge(5, 2) != (Edge{2, 5}) {
		t.Error("NewEdge did not canonicalize order")
	}
}

func TestFullDegrees(t *testing.T) {
	g := Full(8)
	for i := 0; i < 8; i++ {
		if g.Degree(NodeID(i)) != 7 {
			t.Errorf("Full(8) degree(%d) = %d, want 7", i, g.Degree(NodeID(i)))
		}
	}
}

func TestRandomConnectedAndDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		g := Random(30, 4, seed)
		if !g.Connected() {
			t.Errorf("Random(seed=%d) is disconnected", seed)
		}
		h := Random(30, 4, seed)
		if g.NumEdges() != h.NumEdges() {
			t.Errorf("Random(seed=%d) not deterministic", seed)
		}
	}
}

// Property: BFS distances satisfy the triangle inequality along edges:
// |dist(u) - dist(v)| ≤ 1 for every edge {u, v}.
func TestPropertyBFSLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(25, 4, seed)
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			d := dist[e.A] - dist[e.B]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a shortest path's length equals the BFS distance.
func TestPropertyShortestPathLength(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := Random(20, 3, seed)
		src, dst := NodeID(int(a)%20), NodeID(int(b)%20)
		path, ok := g.ShortestPath(src, dst)
		if !ok {
			return false // Random graphs are connected.
		}
		return len(path)-1 == g.BFS(src)[dst]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
