package topology

import (
	"testing"
)

func TestCSRMatchesGraph(t *testing.T) {
	g := BarabasiAlbert(300, 2, 5)
	c := NewCSR(g)
	if c.Len() != g.Len() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", c.Len(), c.NumEdges(), g.Len(), g.NumEdges())
	}
	for u := 0; u < g.Len(); u++ {
		if c.Degree(NodeID(u)) != g.Degree(NodeID(u)) {
			t.Fatalf("degree mismatch at %d", u)
		}
		row := c.Neighbors(NodeID(u))
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly ascending", u)
			}
		}
		for _, v := range row {
			if !g.HasEdge(NodeID(u), v) {
				t.Fatalf("CSR edge {%d,%d} missing from graph", u, v)
			}
		}
	}
	ge, ce := g.Edges(), c.Edges()
	if len(ge) != len(ce) {
		t.Fatalf("edge counts differ")
	}
	for i := range ge {
		if ge[i] != ce[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ge[i], ce[i])
		}
	}
}

func TestCSRBFSMatchesGraphBFS(t *testing.T) {
	g := GLP(400, 2, GLPDefaultP, GLPDefaultBeta, 11)
	c := NewCSR(g)
	var s BFSScratch
	for _, src := range []NodeID{0, 17, 399} {
		want := g.BFS(src)
		got := c.BFS(src, &s)
		for v := range want {
			if int(got[v]) != want[v] {
				t.Fatalf("BFS from %d: dist[%d] = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
}

func TestCSRHasEdge(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := NewCSR(g)
	cases := []struct {
		a, b NodeID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false},
		{3, 0, false}, {-1, 0, false}, {0, 4, false},
	}
	for _, tc := range cases {
		if got := c.HasEdge(tc.a, tc.b); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCSRConnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	if NewCSR(g).Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(1, 2)
	if !NewCSR(g).Connected() {
		t.Error("connected graph reported disconnected")
	}
	if !NewCSR(&Graph{}).Connected() {
		t.Error("empty graph should count as connected")
	}
}

func TestEstimateDiameter(t *testing.T) {
	// A line graph's diameter is exact under double-sweep from any start.
	g := Line(50)
	c := NewCSR(g)
	if d := c.EstimateDiameter(1, 1); d != 49 {
		t.Errorf("line diameter estimate = %d, want 49", d)
	}
	// Ring of 10: diameter 5.
	r := NewCSR(Ring(10))
	if d := r.EstimateDiameter(4, 1); d != 5 {
		t.Errorf("ring diameter estimate = %d, want 5", d)
	}
	// Estimates never exceed the true diameter.
	ba := BarabasiAlbert(500, 2, 3)
	exact := ba.Diameter()
	if est := NewCSR(ba).EstimateDiameter(8, 1); est > exact || est < 1 {
		t.Errorf("BA diameter estimate %d outside (0, %d]", est, exact)
	}
	// Disconnected graphs report -1.
	d2 := NewGraph(2)
	if NewCSR(d2).EstimateDiameter(2, 1) != -1 {
		t.Error("disconnected estimate != -1")
	}
}

func TestAvgPathLengthSampled(t *testing.T) {
	g := Ring(8) // every node's distances: 1,1,2,2,3,3,4 → mean 16/7
	c := NewCSR(g)
	want := 16.0 / 7.0
	got := c.AvgPathLengthSampled(8, 1) // samples ≥ n → exact
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("exact avg path = %v, want %v", got, want)
	}
	// Sampling a vertex-transitive graph is exact too.
	if got := c.AvgPathLengthSampled(2, 7); got != want {
		t.Errorf("sampled avg path = %v, want %v", got, want)
	}
	d2 := NewGraph(2)
	if NewCSR(d2).AvgPathLengthSampled(2, 1) != -1 {
		t.Error("disconnected sampled avg != -1")
	}
}

func TestCSRBFSScratchReuseAllocFree(t *testing.T) {
	c := NewCSR(BarabasiAlbert(1000, 2, 1))
	var s BFSScratch
	c.BFS(0, &s) // warm the scratch
	allocs := testing.AllocsPerRun(20, func() { c.BFS(3, &s) })
	if allocs != 0 {
		t.Errorf("CSR BFS with warm scratch allocates %v times per run", allocs)
	}
}
