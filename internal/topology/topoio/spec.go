package topoio

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"routeconv/internal/topology"
)

// maxSpecNodes bounds generated graph sizes so a typo in a spec fails fast
// instead of exhausting memory.
const maxSpecNodes = 1 << 22

// Spec is a parsed topology specification of the form
// "family:key=val,key=val" (or "file:path" / "filemap:path"). Families:
//
//	mesh:rows=7,cols=7,degree=4   Baran-style regular mesh (the paper's §5)
//	torus:rows=8,cols=8           wrap-around lattice, uniform degree 4
//	hypercube:dim=6               2^dim nodes of degree dim
//	line:n=16  ring:n=16  full:n=8
//	random:n=64,deg=4,seed=1      spanning tree plus random chords
//	sw:n=64,k=2,beta=0.1,seed=1   Watts–Strogatz small world
//	ba:n=1024,m=2,seed=1          Barabási–Albert preferential attachment
//	glp:n=1024,m=2,p=0.4695,beta=0.6447,seed=1   Bu–Towsley GLP power law
//	fattree:k=4                   k-ary fat-tree datacenter fabric
//	clos:spines=4,leaves=8        two-level leaf-spine Clos
//	file:as.edges                 edge-list import, IDs verbatim
//	filemap:as.edges              edge-list import, IDs densely remapped
//
// Every key shown is optional with the default shown. Hosts attach to the
// first/last lattice row on a mesh (as in the paper) and to the
// minimum-degree nodes of every other family — the stub leaves of a
// power-law graph, the edge switches of a fat-tree.
type Spec struct {
	raw    string
	family string
	path   string // file families
	ints   map[string]int
	p      float64 // glp / sw rewiring probability
	beta   float64
	seed   int64
}

// Built is a resolved topology: the graph plus the spec's default
// sender- and receiver-attachment sets.
type Built struct {
	Graph              *topology.Graph
	Senders, Receivers []topology.NodeID
}

// specFamilies maps each generator family to its accepted integer keys and
// defaults. Float keys (p, beta) and seed are handled separately.
var specFamilies = map[string]map[string]int{
	"mesh":      {"rows": 7, "cols": 7, "degree": 4},
	"torus":     {"rows": 8, "cols": 8},
	"hypercube": {"dim": 6},
	"line":      {"n": 16},
	"ring":      {"n": 16},
	"full":      {"n": 8},
	"random":    {"n": 64, "deg": 4},
	"sw":        {"n": 64, "k": 2},
	"ba":        {"n": 1024, "m": 2},
	"glp":       {"n": 1024, "m": 2},
	"fattree":   {"k": 4},
	"clos":      {"spines": 4, "leaves": 8},
}

// specFloats maps families to their float keys and defaults.
var specFloats = map[string]map[string]float64{
	"sw":  {"beta": 0.1},
	"glp": {"p": topology.GLPDefaultP, "beta": topology.GLPDefaultBeta},
}

// seededFamilies lists the families that accept a seed key.
var seededFamilies = map[string]bool{"random": true, "sw": true, "ba": true, "glp": true}

// ParseSpec parses and validates a topology spec string. The graph itself
// is not built (and a file: path not read) until Build.
func ParseSpec(s string) (*Spec, error) {
	raw := strings.TrimSpace(s)
	if raw == "" {
		return nil, fmt.Errorf("topoio: empty topology spec")
	}
	family, rest := raw, ""
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		family, rest = raw[:i], raw[i+1:]
	}
	sp := &Spec{raw: raw, family: family, seed: 1}
	if family == "file" || family == "filemap" {
		if rest == "" {
			return nil, fmt.Errorf("topoio: %s spec needs a path, e.g. %s:as.edges", family, family)
		}
		sp.path = rest
		return sp, nil
	}
	intKeys, ok := specFamilies[family]
	if !ok {
		return nil, fmt.Errorf("topoio: unknown topology family %q in %q", family, raw)
	}
	sp.ints = make(map[string]int, len(intKeys))
	for k, v := range intKeys {
		sp.ints[k] = v
	}
	floats := specFloats[family]
	for k, v := range floats {
		switch k {
		case "p":
			sp.p = v
		case "beta":
			sp.beta = v
		}
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, fmt.Errorf("topoio: %q: want key=value, got %q", raw, kv)
			}
			key, val := strings.TrimSpace(kv[:eq]), strings.TrimSpace(kv[eq+1:])
			switch {
			case hasKey(intKeys, key):
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("topoio: %q: bad integer %s=%q", raw, key, val)
				}
				sp.ints[key] = n
			case key == "seed" && seededFamilies[family]:
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("topoio: %q: bad seed %q", raw, val)
				}
				sp.seed = n
			case hasFloatKey(floats, key):
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("topoio: %q: bad value %s=%q", raw, key, val)
				}
				if key == "p" {
					sp.p = f
				} else {
					sp.beta = f
				}
			default:
				return nil, fmt.Errorf("topoio: %q: unknown key %q for family %s", raw, key, family)
			}
		}
	}
	if err := sp.checkRanges(); err != nil {
		return nil, err
	}
	return sp, nil
}

func hasKey(m map[string]int, k string) bool { _, ok := m[k]; return ok }

func hasFloatKey(m map[string]float64, k string) bool { _, ok := m[k]; return ok }

// checkRanges validates parameter ranges up front so Build (and the
// generators, which panic on model bugs) cannot fail on a user typo.
func (sp *Spec) checkRanges() error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("topoio: %q: %s", sp.raw, fmt.Sprintf(format, args...))
	}
	g := sp.ints
	switch sp.family {
	case "mesh":
		// NewMesh re-validates; catch sizes here.
		if g["rows"] < 2 || g["cols"] < 2 || g["rows"]*g["cols"] > maxSpecNodes {
			return bad("mesh needs 2 ≤ rows, cols with rows·cols ≤ %d", maxSpecNodes)
		}
	case "torus":
		if g["rows"] < 2 || g["cols"] < 2 || g["rows"]*g["cols"] > maxSpecNodes {
			return bad("torus needs 2 ≤ rows, cols with rows·cols ≤ %d", maxSpecNodes)
		}
	case "hypercube":
		if g["dim"] < 1 || g["dim"] > 22 {
			return bad("hypercube needs 1 ≤ dim ≤ 22")
		}
	case "line", "ring", "full":
		if g["n"] < 2 || g["n"] > maxSpecNodes {
			return bad("%s needs 2 ≤ n ≤ %d", sp.family, maxSpecNodes)
		}
		if sp.family == "full" && g["n"] > 4096 {
			return bad("full needs n ≤ 4096 (n² edges)")
		}
	case "random":
		if g["n"] < 2 || g["n"] > maxSpecNodes || g["deg"] < 1 || g["deg"] >= g["n"] {
			return bad("random needs 2 ≤ n ≤ %d and 1 ≤ deg < n", maxSpecNodes)
		}
	case "sw":
		if g["n"] < 3 || g["n"] > maxSpecNodes || g["k"] < 1 || 2*g["k"]+1 > g["n"] {
			return bad("sw needs 3 ≤ n ≤ %d and 1 ≤ k with 2k+1 ≤ n", maxSpecNodes)
		}
	case "ba":
		if g["m"] < 1 || g["n"] < g["m"]+1 || g["n"] > maxSpecNodes {
			return bad("ba needs m ≥ 1 and m+1 ≤ n ≤ %d", maxSpecNodes)
		}
	case "glp":
		if g["m"] < 1 || g["n"] < g["m"]+1 || g["n"] > maxSpecNodes {
			return bad("glp needs m ≥ 1 and m+1 ≤ n ≤ %d", maxSpecNodes)
		}
		if sp.p < 0 || sp.p >= 1 {
			return bad("glp needs 0 ≤ p < 1")
		}
		if sp.beta >= 1 {
			return bad("glp needs beta < 1")
		}
	case "fattree":
		if g["k"] < 2 || g["k"]%2 != 0 || g["k"] > 64 {
			return bad("fattree needs even 2 ≤ k ≤ 64")
		}
	case "clos":
		if g["spines"] < 1 || g["leaves"] < 1 || g["spines"]+g["leaves"] > maxSpecNodes {
			return bad("clos needs spines, leaves ≥ 1")
		}
	}
	return nil
}

// String returns the original spec text.
func (sp *Spec) String() string { return sp.raw }

// Family returns the spec's family name ("ba", "file", ...).
func (sp *Spec) Family() string { return sp.family }

// Build constructs the topology and its default host-attachment sets.
// Only file specs can fail (I/O or parse errors).
func (sp *Spec) Build() (*Built, error) {
	g := sp.ints
	var graph *topology.Graph
	switch sp.family {
	case "mesh":
		m, err := topology.NewMesh(g["rows"], g["cols"], g["degree"])
		if err != nil {
			return nil, fmt.Errorf("topoio: %q: %w", sp.raw, err)
		}
		return &Built{Graph: m.Graph, Senders: m.FirstRow(), Receivers: m.LastRow()}, nil
	case "torus":
		graph = topology.Torus(g["rows"], g["cols"])
	case "hypercube":
		graph = topology.Hypercube(g["dim"])
	case "line":
		graph = topology.Line(g["n"])
	case "ring":
		graph = topology.Ring(g["n"])
	case "full":
		graph = topology.Full(g["n"])
	case "random":
		graph = topology.Random(g["n"], g["deg"], sp.seed)
	case "sw":
		graph = topology.SmallWorld(g["n"], g["k"], sp.beta, sp.seed)
	case "ba":
		graph = topology.BarabasiAlbert(g["n"], g["m"], sp.seed)
	case "glp":
		graph = topology.GLP(g["n"], g["m"], sp.p, sp.beta, sp.seed)
	case "fattree":
		ft, err := topology.NewFatTree(g["k"])
		if err != nil {
			return nil, fmt.Errorf("topoio: %q: %w", sp.raw, err)
		}
		graph = ft.Graph
	case "clos":
		graph = topology.LeafSpine(g["spines"], g["leaves"])
	case "file", "filemap":
		var err error
		graph, err = ReadFile(sp.path, sp.family == "filemap")
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("topoio: unknown topology family %q", sp.family)
	}
	attach := graph.MinDegreeNodes()
	return &Built{Graph: graph, Senders: attach, Receivers: attach}, nil
}

// Families returns the known generator family names, sorted, for help
// text.
func Families() []string {
	out := make([]string, 0, len(specFamilies)+2)
	for f := range specFamilies {
		out = append(out, f)
	}
	out = append(out, "file", "filemap")
	sort.Strings(out)
	return out
}
