package topoio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"routeconv/internal/topology"
)

func TestReadBasic(t *testing.T) {
	g, err := Read(strings.NewReader("# a comment\n0 1\n1 2 10.5\n\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes / %d edges", g.Len(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("edges missing")
	}
}

func TestReadDuplicatesIgnored(t *testing.T) {
	g, err := Read(strings.NewReader("0 1\n1 0\n0 1 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestReadNodesDirective(t *testing.T) {
	// The header pins trailing isolated nodes.
	g, err := Read(strings.NewReader("# nodes 5\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"self-loop":    "0 0\n",
		"one field":    "7\n",
		"four fields":  "0 1 2 3\n",
		"bad id":       "0 x\n",
		"negative id":  "0 -1\n",
		"bad cost":     "0 1 cheap\n",
		"empty input":  "",
		"only comment": "# nothing\n",
		"huge id":      "0 16777216\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read(%q) succeeded, want error", name, in)
		}
	}
}

// TestReadMalformedDiagnostics pins the parser's rejection messages for
// malformed edge lists: each must carry the 1-based line number of the
// offending line and name the bad token, so a multi-gigabyte snapshot
// import fails with an actionable error. Both importers share the parser,
// so the remapped path must reject identically.
func TestReadMalformedDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings the error must contain
	}{
		{
			name: "bad cost",
			in:   "0 1\n1 2 fast\n",
			want: []string{"line 2", `bad cost "fast"`},
		},
		{
			name: "self-loop",
			in:   "0 1\n1 2\n3 3\n",
			want: []string{"line 3", "self-loop at node 3"},
		},
		{
			name: "truncated line",
			in:   "0 1\n1\n",
			want: []string{"line 2", `want "a b [cost]"`},
		},
		{
			name: "truncated final line without newline",
			in:   "0 1\n2",
			want: []string{"line 2", `want "a b [cost]"`},
		},
		{
			name: "non-numeric id",
			in:   "0 one\n",
			want: []string{"line 1", `bad node ID "one"`},
		},
		{
			name: "negative id",
			in:   "0 1\n-2 3\n",
			want: []string{"line 2", "negative node ID -2"},
		},
		{
			name: "blank and comment lines do not shift numbering",
			in:   "# header\n\n0 1\n\n1 1\n",
			want: []string{"line 5", "self-loop"},
		},
	}
	readers := map[string]func(*strings.Reader) error{
		"Read":         func(r *strings.Reader) error { _, err := Read(r); return err },
		"ReadRemapped": func(r *strings.Reader) error { _, err := ReadRemapped(r); return err },
	}
	for _, tc := range cases {
		for rname, read := range readers {
			err := read(strings.NewReader(tc.in))
			if err == nil {
				t.Errorf("%s/%s: parsed %q, want error", tc.name, rname, tc.in)
				continue
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("%s/%s: error %q does not mention %q", tc.name, rname, err, w)
				}
			}
		}
	}
}

func TestReadRemapped(t *testing.T) {
	// Sparse AS-number-style labels densify in first-appearance order.
	g, err := ReadRemapped(strings.NewReader("7018 3356\n3356 701\n7018 701\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes / %d edges", g.Len(), g.NumEdges())
	}
	// 7018→0, 3356→1, 701→2.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("remapped edges wrong")
	}
	// Huge labels are fine when remapping.
	g2, err := ReadRemapped(strings.NewReader("4200000000 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 2 {
		t.Fatalf("Len = %d", g2.Len())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"mesh:rows=4,cols=4,degree=4",
		"ba:n=300,m=2,seed=9",
		"glp:n=200,m=2,seed=5",
		"fattree:k=4",
		"clos:spines=3,leaves=5",
		"sw:n=40,k=2,seed=2",
	} {
		sp, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		built, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := built.Graph
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(buf.String(), "# nodes ") {
			t.Fatalf("%s: writer did not emit the nodes header", spec)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if back.Len() != g.Len() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: round trip %d/%d → %d/%d", spec, g.Len(), g.NumEdges(), back.Len(), back.NumEdges())
		}
		ge, be := g.Edges(), back.Edges()
		for i := range ge {
			if ge[i] != be[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", spec, i, ge[i], be[i])
			}
		}
	}
}

func TestRoundTripIsolatedNode(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	// Node 3 is isolated; the nodes header must preserve it.
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 4 {
		t.Fatalf("Len = %d, want 4", back.Len())
	}
}

func TestReadWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	g := topology.Ring(6)
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 6 || back.NumEdges() != 6 {
		t.Fatalf("round trip via file: %d/%d", back.Len(), back.NumEdges())
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.edges"), false); err == nil {
		t.Error("missing file read succeeded")
	}
}
