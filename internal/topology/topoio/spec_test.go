package topoio

import (
	"path/filepath"
	"testing"

	"routeconv/internal/topology"
)

func TestParseSpecDefaults(t *testing.T) {
	sp, err := ParseSpec("ba")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Family() != "ba" || sp.String() != "ba" {
		t.Errorf("family %q raw %q", sp.Family(), sp.String())
	}
	built, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Graph.Len() != 1024 {
		t.Errorf("default ba size = %d, want 1024", built.Graph.Len())
	}
}

func TestParseSpecOverrides(t *testing.T) {
	sp, err := ParseSpec("ba:n=100,m=3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	built, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Graph.Len() != 100 {
		t.Errorf("n = %d", built.Graph.Len())
	}
	for i := 0; i < built.Graph.Len(); i++ {
		if built.Graph.Degree(topology.NodeID(i)) < 3 {
			t.Fatalf("node %d degree < m", i)
		}
	}
	// Same spec builds the identical graph.
	again, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := built.Graph.Edges(), again.Graph.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("spec Build not deterministic")
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"nonesuch",
		"nonesuch:n=4",
		"ba:n=100,m=3,bogus=1",
		"ba:n=abc",
		"ba:n",
		"ba:m=0",
		"ba:n=3,m=5",          // n < m+1
		"ba:n=99999999",       // over maxSpecNodes
		"mesh:rows=1",         // rows < 2
		"mesh:seed=4",         // mesh takes no seed
		"hypercube:dim=40",    // over the dim cap
		"full:n=100000",       // n² edges
		"sw:n=5,k=4",          // 2k+1 > n
		"glp:p=1.5",           // p out of range
		"glp:beta=2",          // beta out of range
		"fattree:k=5",         // odd k
		"fattree:k=128",       // over the k cap
		"clos:spines=0",       // empty layer
		"random:n=10,deg=10",  // deg ≥ n
		"file:",               // no path
		"ba:n=100,m=3,seed=x", // bad seed
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", s)
		}
	}
}

func TestSpecAllFamiliesBuild(t *testing.T) {
	// Every non-file family builds a connected graph from its defaults.
	for _, fam := range Families() {
		if fam == "file" || fam == "filemap" {
			continue
		}
		sp, err := ParseSpec(fam)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		built, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if built.Graph.Len() < 2 {
			t.Errorf("%s: trivial graph", fam)
		}
		if !built.Graph.Connected() {
			t.Errorf("%s: disconnected", fam)
		}
		if len(built.Senders) == 0 || len(built.Receivers) == 0 {
			t.Errorf("%s: empty attach sets", fam)
		}
		for _, id := range built.Senders {
			if int(id) >= built.Graph.Len() {
				t.Errorf("%s: attach node %d out of range", fam, id)
			}
		}
	}
}

func TestSpecMeshAttach(t *testing.T) {
	sp, err := ParseSpec("mesh:rows=3,cols=4")
	if err != nil {
		t.Fatal(err)
	}
	built, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Senders) != 4 || len(built.Receivers) != 4 {
		t.Fatalf("mesh attach sizes %d/%d, want 4/4", len(built.Senders), len(built.Receivers))
	}
	if built.Senders[0] != 0 || built.Receivers[0] != 8 {
		t.Errorf("mesh attach rows wrong: %v / %v", built.Senders, built.Receivers)
	}
}

func TestSpecFatTreeAttachIsEdgeLayer(t *testing.T) {
	sp, err := ParseSpec("fattree:k=4")
	if err != nil {
		t.Fatal(err)
	}
	built, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	ft, err := topology.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Edge switches have the unique minimum degree k/2, so they are the
	// default attach layer.
	if len(built.Senders) != len(ft.Edge) {
		t.Fatalf("attach size %d, want %d", len(built.Senders), len(ft.Edge))
	}
	for i, id := range built.Senders {
		if id != ft.Edge[i] {
			t.Fatalf("attach[%d] = %d, want edge switch %d", i, id, ft.Edge[i])
		}
	}
}

func TestSpecFileBuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := WriteFile(path, topology.Ring(8)); err != nil {
		t.Fatal(err)
	}
	sp, err := ParseSpec("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	built, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Graph.Len() != 8 || built.Graph.NumEdges() != 8 {
		t.Fatalf("file build: %d/%d", built.Graph.Len(), built.Graph.NumEdges())
	}
	// A ring is degree-uniform: every node is an attach candidate.
	if len(built.Senders) != 8 {
		t.Errorf("attach size %d", len(built.Senders))
	}
	// Missing file fails at Build, not Parse.
	sp2, err := ParseSpec("file:" + filepath.Join(t.TempDir(), "absent.edges"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp2.Build(); err == nil {
		t.Error("absent file built")
	}
}
