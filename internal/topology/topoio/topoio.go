// Package topoio imports and exports topologies and parses the -topo
// specification mini-language that selects a generator family or an
// edge-list file from the command line and from sweep specs.
//
// The interchange format is a plain edge-list text file: one undirected
// edge per line as "a b" (an optional third cost column is accepted and
// ignored — the simulator's protocols are hop-count based), with "#"
// comments and blank lines skipped. A "# nodes N" comment, which the
// writer always emits, pins the node count so trailing isolated nodes
// survive a round-trip; without it the count is max node ID + 1. This is
// the common denominator of published AS/ISP topology datasets, so
// measured graphs can be replayed directly.
package topoio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"routeconv/internal/topology"
)

// maxVerbatimID caps node IDs when reading without remapping: the graph is
// dense in IDs, so a stray huge label (an AS number, say) would allocate
// gigabytes. Larger labels need ReadRemapped.
const maxVerbatimID = 1 << 24

// Read parses an edge-list stream, keeping node IDs verbatim. IDs must be
// non-negative and below 1<<24 (use ReadRemapped for arbitrary labels,
// e.g. raw AS numbers). Duplicate edges are ignored; self-loops are an
// error.
func Read(r io.Reader) (*topology.Graph, error) { return read(r, false) }

// ReadRemapped parses an edge-list stream, relabeling nodes densely in
// order of first appearance. Use it for files whose labels are sparse or
// arbitrary; the "# nodes N" header is ignored since original IDs are not
// preserved.
func ReadRemapped(r io.Reader) (*topology.Graph, error) { return read(r, true) }

// ReadFile reads an edge-list file; see Read and ReadRemapped.
func ReadFile(path string, remap bool) (*topology.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := read(f, remap)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

func read(r io.Reader, remap bool) (*topology.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	g := topology.NewGraph(0)
	var remapIDs map[int64]topology.NodeID
	if remap {
		remapIDs = make(map[int64]topology.NodeID)
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if !remap {
				if n, ok := nodesDirective(line); ok {
					for g.Len() < n {
						g.AddNode()
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("topoio: line %d: want \"a b [cost]\", got %q", lineNo, line)
		}
		a, err := parseLabel(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topoio: line %d: %w", lineNo, err)
		}
		b, err := parseLabel(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topoio: line %d: %w", lineNo, err)
		}
		if len(fields) == 3 {
			if _, err := strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("topoio: line %d: bad cost %q", lineNo, fields[2])
			}
		}
		if a == b {
			return nil, fmt.Errorf("topoio: line %d: self-loop at node %d", lineNo, a)
		}
		var na, nb topology.NodeID
		if remap {
			na, nb = remapID(g, remapIDs, a), remapID(g, remapIDs, b)
		} else {
			if a >= maxVerbatimID || b >= maxVerbatimID {
				return nil, fmt.Errorf("topoio: line %d: node ID ≥ %d; use remapped import", lineNo, maxVerbatimID)
			}
			grow := a
			if b > grow {
				grow = b
			}
			for int64(g.Len()) <= grow {
				g.AddNode()
			}
			na, nb = topology.NodeID(a), topology.NodeID(b)
		}
		g.AddEdge(na, nb)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topoio: %w", err)
	}
	if g.Len() == 0 {
		return nil, errors.New("topoio: empty edge list")
	}
	return g, nil
}

func parseLabel(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node ID %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative node ID %d", v)
	}
	return v, nil
}

func remapID(g *topology.Graph, ids map[int64]topology.NodeID, label int64) topology.NodeID {
	if id, ok := ids[label]; ok {
		return id
	}
	id := g.AddNode()
	ids[label] = id
	return id
}

// nodesDirective recognizes the "# nodes N" header comment.
func nodesDirective(line string) (int, bool) {
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	if len(fields) != 2 || fields[0] != "nodes" {
		return 0, false
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Write streams g as an edge list: a "# nodes N" header followed by every
// edge in sorted order, one "a b" line each.
func Write(w io.Writer, g *topology.Graph) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 32)
	buf = append(buf, "# nodes "...)
	buf = strconv.AppendInt(buf, int64(g.Len()), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(e.A), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.B), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes g as an edge-list file; see Write.
func WriteFile(path string, g *topology.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
