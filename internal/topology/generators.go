package topology

import "math/rand"

// Torus returns a rows×cols lattice with wrap-around edges in both
// dimensions: every node has degree exactly 4 with no border effects.
func Torus(rows, cols int) *Graph {
	g := NewGraph(rows * cols)
	id := func(r, c int) NodeID {
		return NodeID(((r+rows)%rows)*cols + (c+cols)%cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, c+1))
			g.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube: 2^dim nodes, each of
// degree dim, diameter dim.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if u > v {
				g.AddEdge(NodeID(v), NodeID(u))
			}
		}
	}
	return g
}

// SmallWorld returns a Watts–Strogatz small-world graph: a ring lattice
// where every node connects to its k nearest neighbors on each side, with
// each edge rewired to a random endpoint with probability beta. The result
// is kept connected by never removing the immediate ring edges.
func SmallWorld(n, k int, beta float64, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	// Immediate ring: guarantees connectivity.
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	// Longer lattice chords, each rewired with probability beta.
	for dist := 2; dist <= k; dist++ {
		for i := 0; i < n; i++ {
			j := (i + dist) % n
			if rng.Float64() < beta {
				// Rewire: pick a random non-self, non-duplicate target.
				for tries := 0; tries < 8; tries++ {
					cand := NodeID(rng.Intn(n))
					if int(cand) != i && !g.HasEdge(NodeID(i), cand) {
						j = int(cand)
						break
					}
				}
			}
			if i != j && !g.HasEdge(NodeID(i), NodeID(j)) {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}
