package topology

import (
	"fmt"
	"math/rand"
)

// BarabasiAlbert returns a Barabási–Albert preferential-attachment graph on
// n nodes: growth starts from an (m+1)-clique and every subsequent node
// attaches to m distinct existing nodes chosen with probability
// proportional to their degree. The result is connected with a power-law
// degree distribution (exponent ≈ 3), deterministic in seed. Panics when
// n < m+1 or m < 1.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("topology: BarabasiAlbert needs n ≥ m+1 ≥ 2, got n=%d m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	// endpoints lists every edge endpoint once; drawing uniformly from it is
	// exactly degree-proportional sampling.
	endpoints := make([]NodeID, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdgeUnique(NodeID(i), NodeID(j))
			endpoints = append(endpoints, NodeID(i), NodeID(j))
		}
	}
	targets := make([]NodeID, 0, m)
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if !containsNode(targets, t) {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			g.AddEdgeUnique(NodeID(v), t)
			endpoints = append(endpoints, NodeID(v), t)
		}
	}
	return g
}

// GLPDefaultP and GLPDefaultBeta are the parameters fitted to measured AS
// graphs by Bu & Towsley, "On Distinguishing between Internet Power Law
// Topology Generators" (INFOCOM 2002).
const (
	GLPDefaultP    = 0.4695
	GLPDefaultBeta = 0.6447
)

// GLP returns a Generalized Linear Preference power-law graph on n nodes
// (Bu–Towsley). Growth starts from an (m+1)-clique; each step either adds m
// new links between existing nodes (probability p) or adds a new node with
// m links. Endpoints are chosen with probability proportional to d − beta,
// where beta < 1 tilts preference toward high-degree nodes and yields the
// heavier-tailed degree distributions (exponent ≈ 2.2) of measured AS
// graphs. Connected and deterministic in seed. Panics when n < m+1, m < 1,
// p outside [0, 1), or beta ≥ 1.
func GLP(n, m int, p, beta float64, seed int64) *Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("topology: GLP needs n ≥ m+1 ≥ 2, got n=%d m=%d", n, m))
	}
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("topology: GLP needs 0 ≤ p < 1, got p=%g", p))
	}
	if beta >= 1 {
		panic(fmt.Sprintf("topology: GLP needs beta < 1, got beta=%g", beta))
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{}
	for i := 0; i <= m; i++ {
		g.AddNode()
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdgeUnique(NodeID(i), NodeID(j))
		}
	}
	for g.Len() < n {
		if rng.Float64() < p {
			// Add m links between existing nodes. On a small dense graph a
			// free pair may not exist; give up after a bounded number of
			// draws rather than spinning.
			for i := 0; i < m; i++ {
				for try := 0; try < 64; try++ {
					a := glpPick(g, rng, beta)
					b := glpPick(g, rng, beta)
					if a != b && !g.HasEdge(a, b) {
						g.AddEdgeUnique(a, b)
						break
					}
				}
			}
		} else {
			v := g.AddNode()
			for i := 0; i < m; i++ {
				for try := 0; try < 64; try++ {
					t := glpPick(g, rng, beta)
					if t != v && !g.HasEdge(v, t) {
						g.AddEdgeUnique(v, t)
						break
					}
				}
			}
		}
	}
	return g
}

// glpPick samples a node with probability proportional to degree − beta,
// by uniform candidate draw plus rejection. Degree-0 candidates (a new node
// before its first link) are skipped, so d − beta > 0 always holds.
func glpPick(g *Graph, rng *rand.Rand, beta float64) NodeID {
	// Acceptance is (d − beta) / (d · boost); boost ≥ 1 keeps it ≤ 1 for
	// negative beta, where d − beta > d.
	boost := 1.0
	if beta < 0 {
		boost = 1 - beta
	}
	for {
		v := NodeID(rng.Intn(g.Len()))
		d := float64(g.Degree(v))
		if d == 0 {
			continue
		}
		if rng.Float64()*d*boost < d-beta {
			return v
		}
	}
}

func containsNode(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
