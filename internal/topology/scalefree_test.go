package topology

import (
	"math"
	"sort"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.Len() != b.Len() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(500, 2, 42)
	b := BarabasiAlbert(500, 2, 42)
	if !graphsEqual(a, b) {
		t.Fatal("same seed produced different graphs")
	}
	c := BarabasiAlbert(500, 2, 43)
	if graphsEqual(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertStructure(t *testing.T) {
	const n, m = 2000, 2
	g := BarabasiAlbert(n, m, 1)
	if g.Len() != n {
		t.Fatalf("Len = %d, want %d", g.Len(), n)
	}
	// (m+1)-clique seed contributes m(m+1)/2 edges; every later node adds
	// up to m (fewer only if rejection sampling exhausts, which must not
	// happen at this size).
	want := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	for i := 0; i < g.Len(); i++ {
		if g.Degree(NodeID(i)) < m {
			t.Fatalf("node %d has degree %d < m", i, g.Degree(NodeID(i)))
		}
	}
}

// TestBarabasiAlbertPowerLaw checks the degree distribution is heavy-tailed
// with an exponent in the scale-free range. The estimator is the standard
// continuous MLE alpha = 1 + n/sum(ln(d/dmin)); BA's theoretical exponent
// is 3, and finite-size runs land well inside (2, 4).
func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g := BarabasiAlbert(20000, 2, 7)
	counts := g.DegreeCounts(nil)
	dmin := 2.0
	sum, n := 0.0, 0
	maxDeg := 0
	for _, d := range counts {
		if d > maxDeg {
			maxDeg = d
		}
		if float64(d) >= dmin {
			sum += math.Log(float64(d) / dmin)
			n++
		}
	}
	alpha := 1 + float64(n)/sum
	if alpha < 2 || alpha > 4 {
		t.Errorf("degree exponent alpha = %.2f, want in (2, 4)", alpha)
	}
	// The tail must actually be heavy: the hub degree dwarfs the mean.
	if maxDeg < 100 {
		t.Errorf("max degree = %d, expected a hub >= 100 on 20k nodes", maxDeg)
	}
}

func TestGLPDeterministicAndConnected(t *testing.T) {
	a := GLP(1000, 2, GLPDefaultP, GLPDefaultBeta, 9)
	b := GLP(1000, 2, GLPDefaultP, GLPDefaultBeta, 9)
	if !graphsEqual(a, b) {
		t.Fatal("same seed produced different GLP graphs")
	}
	if !a.Connected() {
		t.Fatal("GLP graph disconnected")
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d", a.Len())
	}
	// The p-probability internal-link step makes GLP denser than pure
	// node-addition at the same m.
	if a.NumEdges() <= 999 {
		t.Fatalf("NumEdges = %d, want > tree density", a.NumEdges())
	}
}

func TestGLPHeavyTail(t *testing.T) {
	g := GLP(10000, 2, GLPDefaultP, GLPDefaultBeta, 3)
	maxDeg := 0
	for _, d := range g.DegreeCounts(nil) {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 50 {
		t.Errorf("max degree = %d, expected a hub >= 50 on 10k nodes", maxDeg)
	}
}

func TestMinDegreeNodes(t *testing.T) {
	g := BarabasiAlbert(200, 2, 1)
	mins := g.MinDegreeNodes()
	if len(mins) == 0 {
		t.Fatal("no min-degree nodes")
	}
	minDeg := g.Degree(mins[0])
	for i := 0; i < g.Len(); i++ {
		if g.Degree(NodeID(i)) < minDeg {
			t.Fatalf("node %d degree %d below reported min %d", i, g.Degree(NodeID(i)), minDeg)
		}
	}
	if !sort.SliceIsSorted(mins, func(i, j int) bool { return mins[i] < mins[j] }) {
		t.Error("MinDegreeNodes not ascending")
	}
	for _, id := range mins {
		if g.Degree(id) != minDeg {
			t.Errorf("node %d degree %d != min %d", id, g.Degree(id), minDeg)
		}
	}
}
