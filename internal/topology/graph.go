// Package topology builds and analyzes the network topologies used in the
// study: the Baran-style regular meshes of uniform interior node degree
// from the paper's §5, reference generators (line, ring, full mesh,
// random, torus, hypercube, small-world), internet-scale families
// (Barabási–Albert and GLP power-law graphs, fat-tree and leaf-spine
// datacenter fabrics), and a compressed-sparse-row snapshot for
// allocation-free analysis of large graphs.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a topology. IDs are dense, starting at 0,
// and 32 bits wide so the dense per-destination tables of the routing
// protocols stay compact on internet-scale graphs.
type NodeID int32

// Edge is an undirected link between two nodes, stored with A < B.
type Edge struct {
	A, B NodeID
}

// NewEdge returns the canonical (ordered) form of the edge {a, b}.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Graph is an undirected graph with dense node IDs, stored as adjacency
// lists only — no per-edge map, so a 100k-node power-law graph carries no
// hashing overhead. Duplicate detection scans the lower-degree endpoint's
// adjacency list, which is O(min degree) — constant for the sparse graphs
// of the study. The zero value is an empty graph; grow it with
// AddNode/AddEdge.
type Graph struct {
	n   int
	adj [][]NodeID
	m   int
	// edgeCache memoizes the sorted edge list built by Edges. AddEdge
	// invalidates it by replacing it with nil — never by mutating it — so
	// slices returned by earlier Edges calls stay valid snapshots.
	edgeCache []Edge
}

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]NodeID, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// AddNode adds an isolated node and returns its ID.
func (g *Graph) AddNode() NodeID {
	id := NodeID(g.n)
	g.n++
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge adds the undirected edge {a, b}. Self-loops and out-of-range
// nodes panic (model bugs); duplicate edges are ignored.
func (g *Graph) AddEdge(a, b NodeID) {
	if a == b {
		panic(fmt.Sprintf("topology: self-loop at node %d", a))
	}
	if !g.valid(a) || !g.valid(b) {
		panic(fmt.Sprintf("topology: edge {%d,%d} out of range (n=%d)", a, b, g.n))
	}
	if g.scanEdge(a, b) {
		return
	}
	g.addEdgeUnchecked(a, b)
}

// AddEdgeUnique is AddEdge without the duplicate scan, for generators that
// construct each edge exactly once. Adding a duplicate through it corrupts
// the edge count; self-loops and out-of-range nodes still panic.
func (g *Graph) AddEdgeUnique(a, b NodeID) {
	if a == b {
		panic(fmt.Sprintf("topology: self-loop at node %d", a))
	}
	if !g.valid(a) || !g.valid(b) {
		panic(fmt.Sprintf("topology: edge {%d,%d} out of range (n=%d)", a, b, g.n))
	}
	g.addEdgeUnchecked(a, b)
}

func (g *Graph) addEdgeUnchecked(a, b NodeID) {
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.m++
	g.edgeCache = nil
}

// scanEdge reports whether {a, b} exists by scanning the lower-degree
// endpoint's adjacency list.
func (g *Graph) scanEdge(a, b NodeID) bool {
	list, want := g.adj[a], b
	if len(g.adj[b]) < len(list) {
		list, want = g.adj[b], a
	}
	for _, v := range list {
		if v == want {
			return true
		}
	}
	return false
}

// HasEdge reports whether the undirected edge {a, b} exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if !g.valid(a) || !g.valid(b) {
		return false
	}
	return g.scanEdge(a, b)
}

// Neighbors returns the neighbors of id in insertion order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []NodeID { return g.adj[id] }

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Edges returns all edges sorted by (A, B). The slice is memoized — repeat
// calls on an unchanged graph are allocation-free — and is invalidated, not
// mutated, when the graph grows, so callers may keep it as a snapshot but
// must not modify it.
func (g *Graph) Edges() []Edge {
	if g.edgeCache == nil {
		out := make([]Edge, 0, g.m)
		for u := 0; u < g.n; u++ {
			for _, v := range g.adj[u] {
				if v > NodeID(u) {
					out = append(out, Edge{A: NodeID(u), B: v})
				}
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].A != out[j].A {
				return out[i].A < out[j].A
			}
			return out[i].B < out[j].B
		})
		g.edgeCache = out
	}
	return g.edgeCache
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < g.n }

// Connected reports whether every node is reachable from node 0.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// BFS returns hop distances from src to every node; unreachable nodes get
// -1.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 1, g.n)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive of
// both), preferring lower node IDs at each step, and whether dst is
// reachable.
func (g *Graph) ShortestPath(src, dst NodeID) ([]NodeID, bool) {
	distToDst := g.BFS(dst)
	if distToDst[src] < 0 {
		return nil, false
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		next := NodeID(-1)
		for _, v := range g.adj[cur] {
			if distToDst[v] == distToDst[cur]-1 && (next < 0 || v < next) {
				next = v
			}
		}
		cur = next
		path = append(path, cur)
	}
	return path, true
}

// Diameter returns the longest shortest-path distance over all node pairs.
// It returns -1 for a disconnected or empty graph. All-pairs BFS: use
// CSR.EstimateDiameter for large graphs.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	max := 0
	for src := 0; src < g.n; src++ {
		for _, d := range g.BFS(NodeID(src)) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := 0; i < g.n; i++ {
		h[len(g.adj[i])]++
	}
	return h
}

// DegreeCounts appends every node's degree, in node-ID order, to buf
// (reset to length zero first) and returns it. Passing the previous result
// back in makes repeat calls allocation-free.
func (g *Graph) DegreeCounts(buf []int) []int {
	buf = buf[:0]
	if cap(buf) < g.n {
		buf = make([]int, 0, g.n)
	}
	for i := 0; i < g.n; i++ {
		buf = append(buf, len(g.adj[i]))
	}
	return buf
}

// MinDegreeNodes returns every node of minimum degree, in ascending ID
// order. Topology specs use it as the default host-attachment set: in a
// power-law graph these are the stub leaves, in a fat-tree the edge
// switches.
func (g *Graph) MinDegreeNodes() []NodeID {
	if g.n == 0 {
		return nil
	}
	min := len(g.adj[0])
	for i := 1; i < g.n; i++ {
		if d := len(g.adj[i]); d < min {
			min = d
		}
	}
	var out []NodeID
	for i := 0; i < g.n; i++ {
		if len(g.adj[i]) == min {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, m: g.m, adj: make([][]NodeID, len(g.adj)), edgeCache: g.edgeCache}
	for i, row := range g.adj {
		if len(row) > 0 {
			c.adj[i] = append(make([]NodeID, 0, len(row)), row...)
		}
	}
	return c
}
