// Package topology builds and analyzes the network topologies used in the
// study: the Baran-style regular meshes of uniform interior node degree
// from the paper's §5, plus reference generators (line, ring, full mesh,
// random) used by tests and extensions.
package topology

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a topology. IDs are dense, starting at 0.
type NodeID int

// Edge is an undirected link between two nodes, stored with A < B.
type Edge struct {
	A, B NodeID
}

// NewEdge returns the canonical (ordered) form of the edge {a, b}.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Graph is an undirected graph with dense node IDs. The zero value is an
// empty graph; grow it with AddNode/AddEdge.
type Graph struct {
	n     int
	adj   [][]NodeID
	edges map[Edge]bool
}

// NewGraph returns a graph with n isolated nodes.
func NewGraph(n int) *Graph {
	g := &Graph{edges: make(map[Edge]bool)}
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode adds an isolated node and returns its ID.
func (g *Graph) AddNode() NodeID {
	id := NodeID(g.n)
	g.n++
	g.adj = append(g.adj, nil)
	if g.edges == nil {
		g.edges = make(map[Edge]bool)
	}
	return id
}

// AddEdge adds the undirected edge {a, b}. Self-loops and out-of-range
// nodes panic (model bugs); duplicate edges are ignored.
func (g *Graph) AddEdge(a, b NodeID) {
	if a == b {
		panic(fmt.Sprintf("topology: self-loop at node %d", a))
	}
	if !g.valid(a) || !g.valid(b) {
		panic(fmt.Sprintf("topology: edge {%d,%d} out of range (n=%d)", a, b, g.n))
	}
	e := NewEdge(a, b)
	if g.edges[e] {
		return
	}
	g.edges[e] = true
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// HasEdge reports whether the undirected edge {a, b} exists.
func (g *Graph) HasEdge(a, b NodeID) bool { return g.edges[NewEdge(a, b)] }

// Neighbors returns the neighbors of id in insertion order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []NodeID { return g.adj[id] }

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Edges returns all edges sorted by (A, B).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < g.n }

// Connected reports whether every node is reachable from node 0.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// BFS returns hop distances from src to every node; unreachable nodes get
// -1.
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive of
// both), preferring lower node IDs at each step, and whether dst is
// reachable.
func (g *Graph) ShortestPath(src, dst NodeID) ([]NodeID, bool) {
	distToDst := g.BFS(dst)
	if distToDst[src] < 0 {
		return nil, false
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		next := NodeID(-1)
		for _, v := range g.adj[cur] {
			if distToDst[v] == distToDst[cur]-1 && (next < 0 || v < next) {
				next = v
			}
		}
		cur = next
		path = append(path, cur)
	}
	return path, true
}

// Diameter returns the longest shortest-path distance over all node pairs.
// It returns -1 for a disconnected or empty graph.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	max := 0
	for src := 0; src < g.n; src++ {
		for _, d := range g.BFS(NodeID(src)) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := 0; i < g.n; i++ {
		h[g.Degree(NodeID(i))]++
	}
	return h
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for e := range g.edges {
		c.AddEdge(e.A, e.B)
	}
	return c
}
