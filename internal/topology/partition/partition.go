// Package partition splits a topology graph into K balanced shards for
// parallel-in-one-trial simulation.
//
// The partitioner walks the graph in breadth-first order from a
// seed-derived start node (restarting at the lowest unvisited ID for
// disconnected graphs) and cuts the visitation order into K contiguous
// chunks. Chunk boundaries are chosen by degree-weighted load — a node's
// event cost scales with its degree, so hubs count for more than leaves —
// subject to a hard node-count cap of ⌈n/K⌉·1.1 per shard, which keeps
// memory and queue sizing predictable. BFS contiguity keeps most edges
// internal to a shard; the edge cut (cross-shard edges) is reported so
// callers can judge partition quality. The result is deterministic in
// (graph, K, seed).
package partition

import (
	"fmt"

	"routeconv/internal/topology"
)

// Result describes a K-way partition of a graph.
type Result struct {
	Assign   []int32 // Assign[u] = shard owning node u, in [0, K)
	K        int     // number of shards (some may be empty when K > n)
	Sizes    []int   // node count per shard
	CutEdges int     // undirected edges whose endpoints are in different shards
}

// MaxShardNodes returns the node-count cap the partitioner enforces per
// shard for an n-node graph split K ways: ⌈n/K⌉ plus 10% slack, never
// below ⌈n/K⌉ itself.
func MaxShardNodes(n, k int) int {
	if k < 1 {
		k = 1
	}
	ceil := (n + k - 1) / k
	cap := ceil + ceil/10
	if cap < ceil {
		cap = ceil
	}
	return cap
}

// Partition splits the graph into k shards. k < 1 is treated as 1. The
// same (graph, k, seed) always produces the same assignment.
func Partition(c *topology.CSR, k int, seed int64) Result {
	if k < 1 {
		k = 1
	}
	n := c.Len()
	r := Result{
		Assign: make([]int32, n),
		K:      k,
		Sizes:  make([]int, k),
	}
	if n == 0 {
		return r
	}
	if k == 1 {
		r.Sizes[0] = n
		return r
	}

	order := bfsOrder(c, seed)

	capNodes := MaxShardNodes(n, k)
	totalWeight := int64(n) // Σ (1 + deg(u))
	for u := 0; u < n; u++ {
		totalWeight += int64(c.Degree(topology.NodeID(u)))
	}

	cur := int32(0)
	var load int64
	target := targetLoad(totalWeight, k)
	remainingWeight := totalWeight
	for i, u := range order {
		r.Assign[u] = cur
		r.Sizes[cur]++
		w := int64(1 + c.Degree(u))
		load += w
		remainingWeight -= w
		remainingNodes := n - i - 1
		if int(cur) == k-1 || remainingNodes == 0 {
			continue
		}
		// Close the shard when it is full, or when its degree-weighted
		// load reaches the adaptive target and the remaining nodes still
		// fit under the caps of the remaining shards (so no later shard
		// can be forced over the cap).
		full := r.Sizes[cur] >= capNodes
		loaded := load >= target && remainingNodes <= (k-1-int(cur))*capNodes
		if full || loaded {
			cur++
			load = 0
			target = targetLoad(remainingWeight, k-int(cur))
		}
	}

	for u := 0; u < n; u++ {
		au := r.Assign[u]
		for _, v := range c.Neighbors(topology.NodeID(u)) {
			if v > topology.NodeID(u) && r.Assign[v] != au {
				r.CutEdges++
			}
		}
	}
	return r
}

// targetLoad is the degree-weighted load one of the remaining shards
// should absorb before closing.
func targetLoad(remaining int64, shards int) int64 {
	if shards < 1 {
		shards = 1
	}
	t := remaining / int64(shards)
	if t < 1 {
		t = 1
	}
	return t
}

// bfsOrder returns all nodes in breadth-first visitation order starting
// from a seed-derived node, restarting at the lowest unvisited ID for each
// further connected component.
func bfsOrder(c *topology.CSR, seed int64) []topology.NodeID {
	n := c.Len()
	order := make([]topology.NodeID, 0, n)
	seen := make([]bool, n)
	start := topology.NodeID(mix64(uint64(seed)) % uint64(n))

	enqueue := func(u topology.NodeID) {
		seen[u] = true
		order = append(order, u)
	}
	enqueue(start)
	for head := 0; head < len(order); head++ {
		for _, v := range c.Neighbors(order[head]) {
			if !seen[v] {
				enqueue(v)
			}
		}
		if head == len(order)-1 && len(order) < n {
			// Component exhausted: restart at the lowest unvisited ID.
			for u := 0; u < n; u++ {
				if !seen[u] {
					enqueue(topology.NodeID(u))
					break
				}
			}
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("partition: visited %d of %d nodes", len(order), n))
	}
	return order
}

// mix64 is a splitmix64 finalizer used to derive the BFS start node.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
