package partition

import (
	"reflect"
	"testing"

	"routeconv/internal/topology"
)

// testGraphs are the topologies the partitioner contract is checked
// against: a hub-heavy power-law graph, a uniform random mesh, and a line
// (the worst case for balance, since BFS order is the node order).
func testGraphs() map[string]*topology.CSR {
	return map[string]*topology.CSR{
		"ba-1000":     topology.NewCSR(topology.BarabasiAlbert(1000, 2, 7)),
		"random-300":  topology.NewCSR(topology.Random(300, 4, 11)),
		"line-100":    topology.NewCSR(topology.Line(100)),
		"smallworld":  topology.NewCSR(topology.SmallWorld(500, 4, 0.1, 3)),
		"torus-20x20": topology.NewCSR(topology.Torus(20, 20)),
	}
}

// TestPartitionBalance checks the node-count cap: no shard may exceed
// ⌈n/K⌉ plus 10% slack, every node is assigned to a valid shard, and the
// shard sizes sum to n.
func TestPartitionBalance(t *testing.T) {
	for name, c := range testGraphs() {
		for _, k := range []int{2, 3, 4, 8} {
			r := Partition(c, k, 1)
			if len(r.Assign) != c.Len() || r.K != k || len(r.Sizes) != k {
				t.Fatalf("%s k=%d: malformed result: %d assigns, K=%d, %d sizes",
					name, k, len(r.Assign), r.K, len(r.Sizes))
			}
			cap := MaxShardNodes(c.Len(), k)
			total := 0
			for s, sz := range r.Sizes {
				total += sz
				if sz > cap {
					t.Errorf("%s k=%d: shard %d holds %d nodes, cap %d", name, k, s, sz, cap)
				}
			}
			if total != c.Len() {
				t.Errorf("%s k=%d: sizes sum to %d, want %d", name, k, total, c.Len())
			}
			counted := make([]int, k)
			for u, s := range r.Assign {
				if s < 0 || int(s) >= k {
					t.Fatalf("%s k=%d: node %d assigned to shard %d", name, k, u, s)
				}
				counted[s]++
			}
			if !reflect.DeepEqual(counted, r.Sizes) {
				t.Errorf("%s k=%d: Sizes %v does not match Assign counts %v", name, k, r.Sizes, counted)
			}
		}
	}
}

// TestPartitionCutEdges recounts the cross-shard edges independently and
// compares with the reported cut.
func TestPartitionCutEdges(t *testing.T) {
	for name, c := range testGraphs() {
		for _, k := range []int{2, 4} {
			r := Partition(c, k, 42)
			cut := 0
			for _, e := range c.Edges() {
				if r.Assign[e.A] != r.Assign[e.B] {
					cut++
				}
			}
			if cut != r.CutEdges {
				t.Errorf("%s k=%d: CutEdges = %d, recount = %d", name, k, r.CutEdges, cut)
			}
			if cut == c.NumEdges() {
				t.Errorf("%s k=%d: every edge is cut — BFS contiguity is broken", name, k)
			}
		}
	}
}

// TestPartitionDeterministic pins that (graph, K, seed) fully determines
// the assignment, and that the seed actually moves the BFS start.
func TestPartitionDeterministic(t *testing.T) {
	c := topology.NewCSR(topology.BarabasiAlbert(500, 2, 9))
	a := Partition(c, 4, 5)
	b := Partition(c, 4, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical (graph, K, seed) produced different partitions")
	}
	seen := false
	for seed := int64(0); seed < 8; seed++ {
		if !reflect.DeepEqual(a.Assign, Partition(c, 4, seed).Assign) {
			seen = true
			break
		}
	}
	if !seen {
		t.Error("assignment identical across 8 seeds — the seed is ignored")
	}
}

// TestPartitionSingleShard: K=1 assigns everything to shard 0 with no cut.
func TestPartitionSingleShard(t *testing.T) {
	c := topology.NewCSR(topology.Random(100, 4, 2))
	for _, k := range []int{1, 0, -3} { // k < 1 is treated as 1
		r := Partition(c, k, 1)
		if r.K != 1 || r.CutEdges != 0 || r.Sizes[0] != 100 {
			t.Errorf("k=%d: got K=%d cut=%d sizes=%v", k, r.K, r.CutEdges, r.Sizes)
		}
		for u, s := range r.Assign {
			if s != 0 {
				t.Fatalf("k=%d: node %d on shard %d", k, u, s)
			}
		}
	}
}

// TestPartitionMoreShardsThanNodes: K > n leaves trailing shards empty but
// stays well-formed.
func TestPartitionMoreShardsThanNodes(t *testing.T) {
	c := topology.NewCSR(topology.Line(5))
	r := Partition(c, 8, 1)
	if r.K != 8 || len(r.Sizes) != 8 {
		t.Fatalf("K=%d sizes=%v", r.K, r.Sizes)
	}
	total := 0
	for _, sz := range r.Sizes {
		total += sz
	}
	if total != 5 {
		t.Errorf("sizes sum to %d, want 5", total)
	}
	for u, s := range r.Assign {
		if s < 0 || s >= 8 {
			t.Errorf("node %d on shard %d", u, s)
		}
	}
}

// TestPartitionEmptyGraph: a zero-node graph partitions to empty shards.
func TestPartitionEmptyGraph(t *testing.T) {
	r := Partition(topology.NewCSR(topology.NewGraph(0)), 4, 1)
	if len(r.Assign) != 0 || r.CutEdges != 0 {
		t.Errorf("empty graph: %+v", r)
	}
}
