// Package scenario is the composable failure/churn event-script layer: a
// declarative, time-ordered list of typed disturbance events that replaces
// the harness's original hard-coded FailAt/RestoreAfter/ExtraFailAts trio.
//
// A Script is built either programmatically (Builder) or from the compact
// text grammar (Parse; full reference in SCENARIOS.md at the repository
// root), e.g.
//
//	fail link 3-7 @400s; loss link 1-2 p=0.01 @410s; churn links rate=0.1/s @450s..600s
//
// The package is a pure description layer — it imports only the topology
// vocabulary and never touches the simulator — so scripts canonicalize
// cleanly into sweep cache keys and validate without running anything.
// Execution lives in internal/core, which schedules each event on the trial
// simulator; the two legacy kinds (KindFailPath, KindFailRandom) reproduce
// the original harness behaviour bit-for-bit, which is how legacy configs
// compile to equivalent scripts without disturbing the golden fixtures.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"routeconv/internal/topology"
)

// Kind identifies one event type in a script.
type Kind int

// The event kinds. Zero is invalid so an uninitialized Event fails loudly.
const (
	// KindFailLink takes every link in Links down at At.
	KindFailLink Kind = iota + 1
	// KindRestoreLink brings every link in Links back up at At.
	KindRestoreLink
	// KindFailNode fails Node at At: every incident link that is up goes
	// down (a shared-fate group of the node's ports).
	KindFailNode
	// KindRecoverNode recovers Node at At: the links its failure took down
	// come back up, except those still held down by another failed node.
	KindRecoverNode
	// KindFailGroup takes the correlated group Links down at At (a
	// shared-risk link group failing as one).
	KindFailGroup
	// KindRestoreGroup restores the group Links at At.
	KindRestoreGroup
	// KindFlapLink flaps Links[0] for Cycles cycles of length Period
	// starting at At: cycle i fails at At+i·Period and restores half a
	// period later, so the link ends the storm up.
	KindFlapLink
	// KindSetLoss sets the random packet-loss probability of Links[0] to
	// Rate at At (both directions, control and data traffic alike).
	// Rate 0 clears a previous setting.
	KindSetLoss
	// KindCostOut gracefully costs Links[0] out of service at At: the
	// endpoints' protocols are notified immediately (no detection delay)
	// while the link keeps carrying in-flight and queued packets.
	KindCostOut
	// KindCostIn returns a costed-out Links[0] to service at At.
	KindCostIn
	// KindChurn runs seeded continuous churn from At to Until over Links
	// (all router links when empty): link failures arrive as a Poisson
	// process of Rate failures/second, each victim drawn uniformly from
	// the currently-up candidates and repaired after an exponential
	// downtime of mean MeanDown.
	KindChurn
	// KindFailPath is the paper's original event: at At, fail one random
	// recoverable link on the measured flow's forwarding path, with the
	// optional Restore/Flaps repair-and-flap schedule. Legacy configs
	// compile to exactly this event.
	KindFailPath
	// KindFailRandom fails one random currently-up router link at At (the
	// legacy ExtraFailAts extension).
	KindFailRandom
)

// kindNames are the grammar keywords, indexed by Kind.
var kindNames = map[Kind]string{
	KindFailLink:     "fail link",
	KindRestoreLink:  "restore link",
	KindFailNode:     "fail node",
	KindRecoverNode:  "recover node",
	KindFailGroup:    "fail group",
	KindRestoreGroup: "restore group",
	KindFlapLink:     "flap link",
	KindSetLoss:      "loss link",
	KindCostOut:      "costout link",
	KindCostIn:       "costin link",
	KindChurn:        "churn links",
	KindFailPath:     "failpath",
	KindFailRandom:   "failrandom",
}

// String returns the event kind's grammar keyword.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scripted disturbance. Which fields are meaningful depends on
// Kind (see the Kind constants); unused fields are zero.
type Event struct {
	// At is when the event fires (simulation time).
	At time.Duration
	// Kind selects the event type.
	Kind Kind
	// Links are the target links (one entry for single-link kinds; the
	// candidate set for KindChurn, where empty means all router links).
	Links []topology.Edge
	// Node is the target of the node kinds; -1 otherwise.
	Node topology.NodeID
	// Rate is the loss probability (KindSetLoss, in [0,1]) or the churn
	// failure arrival rate (KindChurn, failures per second).
	Rate float64
	// Period is the flap cycle length (KindFlapLink).
	Period time.Duration
	// Cycles is the flap cycle count (KindFlapLink).
	Cycles int
	// MeanDown is the churn mean link downtime (KindChurn); zero defaults
	// to one second at build time.
	MeanDown time.Duration
	// Until ends the churn window (KindChurn).
	Until time.Duration
	// Restore and Flaps carry the legacy repair schedule (KindFailPath).
	Restore time.Duration
	Flaps   int
}

// String renders the event in the text grammar.
func (e Event) String() string {
	var sb strings.Builder
	switch e.Kind {
	case KindFailLink, KindRestoreLink, KindCostOut, KindCostIn:
		fmt.Fprintf(&sb, "%s %s @%v", e.Kind, edgeList(e.Links), e.At)
	case KindFailNode, KindRecoverNode:
		fmt.Fprintf(&sb, "%s %d @%v", e.Kind, e.Node, e.At)
	case KindFailGroup, KindRestoreGroup:
		fmt.Fprintf(&sb, "%s %s @%v", e.Kind, edgeList(e.Links), e.At)
	case KindFlapLink:
		fmt.Fprintf(&sb, "%s %s every %v x%d @%v", e.Kind, edgeList(e.Links), e.Period, e.Cycles, e.At)
	case KindSetLoss:
		fmt.Fprintf(&sb, "%s %s p=%g @%v", e.Kind, edgeList(e.Links), e.Rate, e.At)
	case KindChurn:
		sb.WriteString(e.Kind.String())
		if len(e.Links) > 0 {
			sb.WriteByte(' ')
			sb.WriteString(edgeList(e.Links))
		}
		fmt.Fprintf(&sb, " rate=%g/s down=%v @%v..%v", e.Rate, e.MeanDown, e.At, e.Until)
	case KindFailPath:
		fmt.Fprintf(&sb, "%s @%v", e.Kind, e.At)
		if e.Restore > 0 {
			fmt.Fprintf(&sb, " restore=%v", e.Restore)
		}
		if e.Flaps > 1 {
			fmt.Fprintf(&sb, " flaps=%d", e.Flaps)
		}
	case KindFailRandom:
		fmt.Fprintf(&sb, "%s @%v", e.Kind, e.At)
	default:
		fmt.Fprintf(&sb, "%s @%v", e.Kind, e.At)
	}
	return sb.String()
}

func edgeList(links []topology.Edge) string {
	parts := make([]string, len(links))
	for i, e := range links {
		parts[i] = fmt.Sprintf("%d-%d", e.A, e.B)
	}
	return strings.Join(parts, ",")
}

// Script is a time-ordered list of events — one trial's complete
// disturbance schedule. Build one with a Builder or Parse; both emit events
// stably sorted by At (equal-time events keep insertion order, which the
// executor preserves as scheduling order).
type Script struct {
	Events []Event
}

// String renders the script in the text grammar, statements joined by "; ".
// Parse(s.String()) reproduces the script.
func (s *Script) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Validate reports the first problem with the script, or nil: events must
// be time-ordered, fire inside [0, horizon), reference existing links and
// nodes (checked only when g is non-nil — callers with an unresolved
// topology spec defer reference checks until the graph is built), and
// respect state ordering (no restore before a fail, no cost-in before a
// cost-out). Error messages name the offending event by index and text.
func (s *Script) Validate(horizon time.Duration, g *topology.Graph) error {
	failed := make(map[topology.Edge]bool)
	failedNodes := make(map[topology.NodeID]bool)
	costed := make(map[topology.Edge]bool)
	var prev time.Duration
	for i, e := range s.Events {
		bad := func(format string, args ...any) error {
			return fmt.Errorf("scenario: event %d (%s): %s", i, e, fmt.Sprintf(format, args...))
		}
		if e.At < 0 {
			return bad("fires before the start of the run")
		}
		if e.At >= horizon {
			return bad("fires at %v, not before the %v horizon", e.At, horizon)
		}
		if e.At < prev {
			return bad("out of time order (previous event at %v); sort the script or use a Builder", prev)
		}
		prev = e.At
		if err := validateRefs(g, e, bad); err != nil {
			return err
		}
		switch e.Kind {
		case KindFailLink, KindFailGroup:
			if len(e.Links) == 0 {
				return bad("no target links")
			}
			for _, l := range e.Links {
				failed[l] = true
			}
		case KindRestoreLink, KindRestoreGroup:
			if len(e.Links) == 0 {
				return bad("no target links")
			}
			for _, l := range e.Links {
				if !failed[l] {
					return bad("restores link %d-%d before any event fails it", l.A, l.B)
				}
				delete(failed, l)
			}
		case KindFailNode:
			failedNodes[e.Node] = true
		case KindRecoverNode:
			if !failedNodes[e.Node] {
				return bad("recovers node %d before any event fails it", e.Node)
			}
			delete(failedNodes, e.Node)
		case KindFlapLink:
			switch {
			case len(e.Links) != 1:
				return bad("flap needs exactly one link")
			case e.Period <= 0:
				return bad("flap period must be positive")
			case e.Cycles < 1:
				return bad("flap needs at least one cycle")
			}
		case KindSetLoss:
			if len(e.Links) != 1 {
				return bad("loss needs exactly one link")
			}
			if e.Rate < 0 || e.Rate > 1 {
				return bad("loss probability %g outside [0, 1]", e.Rate)
			}
		case KindCostOut:
			if len(e.Links) != 1 {
				return bad("costout needs exactly one link")
			}
			costed[e.Links[0]] = true
		case KindCostIn:
			if len(e.Links) != 1 {
				return bad("costin needs exactly one link")
			}
			if !costed[e.Links[0]] {
				return bad("costs link %d-%d in before any event costs it out", e.Links[0].A, e.Links[0].B)
			}
			delete(costed, e.Links[0])
		case KindChurn:
			switch {
			case e.Rate <= 0:
				return bad("churn rate must be positive")
			case e.MeanDown < 0:
				return bad("churn mean downtime must not be negative")
			case e.Until <= e.At:
				return bad("churn window @%v..%v is empty", e.At, e.Until)
			case e.Until > horizon:
				return bad("churn window ends at %v, after the %v horizon", e.Until, horizon)
			}
		case KindFailPath:
			if e.Restore < 0 {
				return bad("restore must not be negative")
			}
			if e.Flaps > 1 && e.Restore <= 0 {
				return bad("flaps=%d requires restore > 0", e.Flaps)
			}
		case KindFailRandom:
			// No parameters beyond At.
		default:
			return bad("unknown event kind")
		}
	}
	return nil
}

// validateRefs checks the event's link and node references against the
// graph; it is a no-op when g is nil.
func validateRefs(g *topology.Graph, e Event, bad func(string, ...any) error) error {
	if g == nil {
		return nil
	}
	for _, l := range e.Links {
		if !g.HasEdge(l.A, l.B) {
			return bad("no link %d-%d in the topology", l.A, l.B)
		}
	}
	switch e.Kind {
	case KindFailNode, KindRecoverNode:
		if int(e.Node) < 0 || int(e.Node) >= g.Len() {
			return bad("node %d outside the topology (%d nodes)", e.Node, g.Len())
		}
	}
	return nil
}

// Builder accumulates events and emits a Script sorted by time. The
// zero value is ready to use; every method returns the receiver so calls
// chain.
type Builder struct {
	events []Event
}

// NewBuilder returns an empty script builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) add(e Event) *Builder {
	b.events = append(b.events, e)
	return b
}

// FailLink fails the x–y link at the given time.
func (b *Builder) FailLink(at time.Duration, x, y topology.NodeID) *Builder {
	return b.add(Event{At: at, Kind: KindFailLink, Links: []topology.Edge{topology.NewEdge(x, y)}, Node: -1})
}

// RestoreLink restores the x–y link at the given time.
func (b *Builder) RestoreLink(at time.Duration, x, y topology.NodeID) *Builder {
	return b.add(Event{At: at, Kind: KindRestoreLink, Links: []topology.Edge{topology.NewEdge(x, y)}, Node: -1})
}

// FailNode fails node n (all its up links go down) at the given time.
func (b *Builder) FailNode(at time.Duration, n topology.NodeID) *Builder {
	return b.add(Event{At: at, Kind: KindFailNode, Node: n})
}

// RecoverNode recovers node n at the given time.
func (b *Builder) RecoverNode(at time.Duration, n topology.NodeID) *Builder {
	return b.add(Event{At: at, Kind: KindRecoverNode, Node: n})
}

// FailGroup fails the correlated link group at the given time.
func (b *Builder) FailGroup(at time.Duration, links ...topology.Edge) *Builder {
	return b.add(Event{At: at, Kind: KindFailGroup, Links: canonEdges(links), Node: -1})
}

// RestoreGroup restores the link group at the given time.
func (b *Builder) RestoreGroup(at time.Duration, links ...topology.Edge) *Builder {
	return b.add(Event{At: at, Kind: KindRestoreGroup, Links: canonEdges(links), Node: -1})
}

// FlapLink flaps the x–y link every period for cycles cycles starting at
// the given time (down at cycle start, up half a period later).
func (b *Builder) FlapLink(at time.Duration, x, y topology.NodeID, period time.Duration, cycles int) *Builder {
	return b.add(Event{At: at, Kind: KindFlapLink, Links: []topology.Edge{topology.NewEdge(x, y)},
		Node: -1, Period: period, Cycles: cycles})
}

// Loss sets the x–y link's random packet-loss probability to p at the given
// time; p = 0 clears it.
func (b *Builder) Loss(at time.Duration, x, y topology.NodeID, p float64) *Builder {
	return b.add(Event{At: at, Kind: KindSetLoss, Links: []topology.Edge{topology.NewEdge(x, y)},
		Node: -1, Rate: p})
}

// CostOut gracefully costs the x–y link out of service at the given time.
func (b *Builder) CostOut(at time.Duration, x, y topology.NodeID) *Builder {
	return b.add(Event{At: at, Kind: KindCostOut, Links: []topology.Edge{topology.NewEdge(x, y)}, Node: -1})
}

// CostIn returns the costed-out x–y link to service at the given time.
func (b *Builder) CostIn(at time.Duration, x, y topology.NodeID) *Builder {
	return b.add(Event{At: at, Kind: KindCostIn, Links: []topology.Edge{topology.NewEdge(x, y)}, Node: -1})
}

// Churn runs continuous churn from from to until: rate link failures per
// second over the candidate links (all router links when empty), each
// repaired after an exponential downtime of mean meanDown (zero defaults to
// one second).
func (b *Builder) Churn(from, until time.Duration, rate float64, meanDown time.Duration, links ...topology.Edge) *Builder {
	if meanDown == 0 {
		meanDown = time.Second
	}
	return b.add(Event{At: from, Kind: KindChurn, Links: canonEdges(links), Node: -1,
		Rate: rate, MeanDown: meanDown, Until: until})
}

// FailPath schedules the paper's original event: fail one random
// recoverable link on the measured flow's path at the given time, restoring
// it restore later (0 = permanent) and flapping flaps times.
func (b *Builder) FailPath(at, restore time.Duration, flaps int) *Builder {
	return b.add(Event{At: at, Kind: KindFailPath, Node: -1, Restore: restore, Flaps: flaps})
}

// FailRandom fails one random currently-up router link at the given time.
func (b *Builder) FailRandom(at time.Duration) *Builder {
	return b.add(Event{At: at, Kind: KindFailRandom, Node: -1})
}

// Script returns the accumulated events as a Script, stably sorted by time.
func (b *Builder) Script() *Script {
	events := make([]Event, len(b.events))
	copy(events, b.events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Script{Events: events}
}

// canonEdges normalizes every edge to canonical A ≤ B order (NewEdge's
// invariant) without touching the caller's slice.
func canonEdges(links []topology.Edge) []topology.Edge {
	out := make([]topology.Edge, len(links))
	for i, e := range links {
		out[i] = topology.NewEdge(e.A, e.B)
	}
	return out
}
