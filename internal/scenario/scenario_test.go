package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"routeconv/internal/topology"
)

func edge(a, b topology.NodeID) topology.Edge { return topology.NewEdge(a, b) }

func TestParseFullGrammar(t *testing.T) {
	script, err := Parse(`
		# every statement form once
		fail link 3-7 @400s
		restore link 3-7 @410s
		fail node 12 @400s; recover node 12 @430s
		fail group 3-7,4-8 @400s
		restore group 3-7,4-8 @410s
		flap link 3-7 every 6s x5 @400s
		loss link 1-2 p=0.01 @410s
		costout link 3-7 @400s
		costin link 3-7 @500s
		churn links rate=0.1/s down=2s @450s..600s
		churn links 3-7,4-8 rate=0.5/s @450s..600s
		failpath @400s restore=3s flaps=5
		failrandom @430s
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Events) != 14 {
		t.Fatalf("parsed %d events, want 14", len(script.Events))
	}
	// The script comes out time-sorted with same-instant statements in
	// input order.
	var prev time.Duration
	for i, e := range script.Events {
		if e.At < prev {
			t.Errorf("event %d (%s) out of order", i, e)
		}
		prev = e.At
	}
	first := script.Events[0]
	if first.Kind != KindFailLink || first.Links[0] != edge(3, 7) || first.At != 400*time.Second {
		t.Errorf("first event = %+v", first)
	}
	// Churn defaults: mean downtime 1s when down= is absent.
	for _, e := range script.Events {
		if e.Kind == KindChurn && e.Rate == 0.5 {
			if e.MeanDown != time.Second {
				t.Errorf("churn default MeanDown = %v, want 1s", e.MeanDown)
			}
			if len(e.Links) != 2 {
				t.Errorf("churn candidate set = %v", e.Links)
			}
		}
	}
}

// TestParseDiagnostics pins the malformed-input errors: each names the line
// and the offending token, so a user can fix a long script without
// guesswork (the same contract topoio's spec parser keeps).
func TestParseDiagnostics(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring of the error
	}{
		{"explode link 3-7 @400s", `line 1: unknown keyword "explode"`},
		{"fail link 3-7 @400s\nfail widget 3 @9s", `line 2: unknown target "widget"`},
		{"fail link 3-7", "usage: fail link"},
		{"fail link 3x7 @400s", `bad link "3x7"`},
		{"fail link 3-7,4-8 @400s", "fail link takes one link (use fail group for several)"},
		{"fail link 3-7 400s", `expected a time @T, got "400s"`},
		{"fail link 3-7 @fourhundred", `bad time "@fourhundred"`},
		{"restore node 12 @400s", `use "recover node" to bring a node back`},
		{"fail node twelve @400s", `bad node "twelve"`},
		{"flap link 3-7 every 6s @400s", "usage: flap link A-B every D xN @T"},
		{"flap link 3-7 every 6s five @400s", `bad cycle count "five"`},
		{"loss link 1-2 0.01 @410s", `bad loss probability "0.01" (expected p=P)`},
		{"loss link 1-2 p=lots @410s", `bad loss probability "p=lots"`},
		{"churn links down=2s @450s..600s", "churn needs rate=R/s"},
		{"churn links rate=0.1/s", "churn needs a window @T1..T2"},
		{"churn links rate=0.1/s @450s", `bad churn window "@450s"`},
		{"churn links rate=0.1/s speed=9 @450s..600s", `unknown churn parameter "speed=9"`},
		{"failpath restore=3s", "failpath needs a time @T"},
		{"failpath @400s knobs=3", `unknown failpath parameter "knobs=3"`},
		{"failrandom @430s now", "usage: failrandom @T"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", c.in, err, c.want)
		}
		if !strings.HasPrefix(err.Error(), "scenario: line ") {
			t.Errorf("Parse(%q) error %q does not lead with the line number", c.in, err)
		}
	}
}

// TestParseLineNumbers checks that multi-line scripts with comments and
// blank lines report errors on the right line.
func TestParseLineNumbers(t *testing.T) {
	_, err := Parse("# comment\n\nfail link 3-7 @400s\nbogus statement\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error = %v, want line 4", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	orig := NewBuilder().
		FailLink(400*time.Second, 3, 7).
		RestoreLink(410*time.Second, 7, 3). // reversed endpoints canonicalize
		FailNode(400*time.Second, 12).
		RecoverNode(430*time.Second, 12).
		FailGroup(400*time.Second, edge(3, 7), edge(8, 4)).
		RestoreGroup(410*time.Second, edge(3, 7), edge(4, 8)).
		FlapLink(400*time.Second, 3, 7, 6*time.Second, 5).
		Loss(410*time.Second, 1, 2, 0.01).
		CostOut(400*time.Second, 3, 7).
		CostIn(500*time.Second, 3, 7).
		Churn(450*time.Second, 600*time.Second, 0.1, 2*time.Second).
		FailPath(400*time.Second, 3*time.Second, 5).
		FailRandom(430 * time.Second).
		Script()
	reparsed, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", orig.String(), err)
	}
	if !reflect.DeepEqual(orig, reparsed) {
		t.Errorf("round trip changed the script:\n orig %s\n back %s", orig, reparsed)
	}
}

func TestBuilderSortsStable(t *testing.T) {
	s := NewBuilder().
		FailRandom(430*time.Second).
		FailLink(400*time.Second, 3, 7).
		Loss(400*time.Second, 1, 2, 0.5). // same instant: must stay after the fail
		Script()
	if s.Events[0].Kind != KindFailLink || s.Events[1].Kind != KindSetLoss || s.Events[2].Kind != KindFailRandom {
		t.Errorf("sorted order = %s", s)
	}
}

func TestValidate(t *testing.T) {
	g := topology.Torus(4, 4) // nodes 0..15, edge 0-1 exists
	horizon := 800 * time.Second
	ok := func(b *Builder) *Script { return b.Script() }
	cases := []struct {
		name   string
		script *Script
		want   string // "" = valid
	}{
		{"valid", ok(NewBuilder().FailLink(400*time.Second, 0, 1).RestoreLink(410*time.Second, 0, 1)), ""},
		{"negative time", ok(NewBuilder().FailLink(-time.Second, 0, 1)), "before the start"},
		{"past horizon", ok(NewBuilder().FailLink(900*time.Second, 0, 1)), "not before the 13m20s horizon"},
		{"unknown link", ok(NewBuilder().FailLink(400*time.Second, 0, 9)), "no link 0-9 in the topology"},
		{"unknown node", ok(NewBuilder().FailNode(400*time.Second, 99)), "node 99 outside the topology"},
		{"restore before fail", ok(NewBuilder().RestoreLink(410*time.Second, 0, 1)), "before any event fails it"},
		{"recover before fail", ok(NewBuilder().RecoverNode(410*time.Second, 3)), "before any event fails it"},
		{"costin before costout", ok(NewBuilder().CostIn(410*time.Second, 0, 1)), "before any event costs it out"},
		{"loss out of range", ok(NewBuilder().Loss(400*time.Second, 0, 1, 1.5)), "outside [0, 1]"},
		{"flap zero period", ok(NewBuilder().FlapLink(400*time.Second, 0, 1, 0, 5)), "period must be positive"},
		{"flap zero cycles", ok(NewBuilder().FlapLink(400*time.Second, 0, 1, time.Second, 0)), "at least one cycle"},
		{"churn empty window", ok(NewBuilder().Churn(450*time.Second, 450*time.Second, 0.1, 0)), "window @7m30s..7m30s is empty"},
		{"churn past horizon", ok(NewBuilder().Churn(450*time.Second, 900*time.Second, 0.1, 0)), "after the 13m20s horizon"},
		{"churn zero rate", ok(NewBuilder().Churn(450*time.Second, 600*time.Second, 0, 0)), "rate must be positive"},
		{"failpath flaps need restore", ok(NewBuilder().FailPath(400*time.Second, 0, 5)), "requires restore > 0"},
		{"out of order", &Script{Events: []Event{
			{At: 410 * time.Second, Kind: KindFailLink, Links: []topology.Edge{edge(0, 1)}},
			{At: 400 * time.Second, Kind: KindFailRandom},
		}}, "out of time order"},
		{"zero kind", &Script{Events: []Event{{At: time.Second}}}, "unknown event kind"},
	}
	for _, c := range cases {
		err := c.script.Validate(horizon, g)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate succeeded, want %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
		}
		if !strings.Contains(err.Error(), "event ") {
			t.Errorf("%s: error %q does not name the event", c.name, err)
		}
	}
	// Reference checks are deferred when the graph is unknown.
	deferred := NewBuilder().FailLink(400*time.Second, 0, 9).Script()
	if err := deferred.Validate(horizon, nil); err != nil {
		t.Errorf("nil-graph Validate rejected link refs: %v", err)
	}
}
