package scenario_test

import (
	"fmt"
	"time"

	"routeconv/internal/scenario"
	"routeconv/internal/topology"
)

// ExampleParse shows the compact text grammar: statements separated by ";"
// (or newlines), each ending in its firing time. Parsing sorts by time and
// renders durations in Go's canonical form.
func ExampleParse() {
	script, err := scenario.Parse(
		"loss link 1-2 p=0.01 @410s; fail link 3-7 @400s")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(script)
	// Output: fail link 3-7 @6m40s; loss link 1-2 p=0.01 @6m50s
}

// ExampleBuilder composes the same kind of script programmatically; Script()
// returns the events stably sorted by time.
func ExampleBuilder() {
	script := scenario.NewBuilder().
		FailNode(400*time.Second, 12).
		Churn(450*time.Second, 600*time.Second, 0.1, 2*time.Second).
		RecoverNode(430*time.Second, 12).
		Script()
	for _, e := range script.Events {
		fmt.Println(e)
	}
	// Output:
	// fail node 12 @6m40s
	// recover node 12 @7m10s
	// churn links rate=0.1/s down=2s @7m30s..10m0s
}

// ExampleScript_Validate rejects scripts that reference links the topology
// does not have, naming the event.
func ExampleScript_Validate() {
	g := topology.Torus(4, 4)
	script := scenario.NewBuilder().FailLink(400*time.Second, 0, 9).Script()
	fmt.Println(script.Validate(800*time.Second, g))
	// Output: scenario: event 0 (fail link 0-9 @6m40s): no link 0-9 in the topology
}
