package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"routeconv/internal/topology"
)

// Parse builds a Script from the compact text grammar (full reference:
// SCENARIOS.md). Statements are separated by ";" or newlines; "#" starts a
// comment running to the end of the line. Each statement is an event:
//
//	fail link 3-7 @400s
//	restore link 3-7 @410s
//	fail node 12 @400s
//	recover node 12 @430s
//	fail group 3-7,4-8 @400s
//	restore group 3-7,4-8 @410s
//	flap link 3-7 every 6s x5 @400s
//	loss link 1-2 p=0.01 @410s
//	costout link 3-7 @400s
//	costin link 3-7 @500s
//	churn links rate=0.1/s down=2s @450s..600s
//	churn links 3-7,4-8 rate=0.5/s @450s..600s
//	failpath @400s restore=3s flaps=5
//	failrandom @430s
//
// Errors name the line and the offending token. The resulting script is
// sorted by event time (stable, like Builder.Script); Parse does not
// validate cross-event ordering or link existence — that is Script.Validate,
// which needs the horizon and topology.
func Parse(text string) (*Script, error) {
	b := NewBuilder()
	line := 1
	for _, raw := range splitStatements(text) {
		stmtLine := line
		line += strings.Count(raw, "\n")
		stmt := raw
		if i := strings.IndexByte(stmt, '#'); i >= 0 {
			stmt = stmt[:i]
		}
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		if err := parseStatement(b, fields); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", stmtLine, err)
		}
	}
	return b.Script(), nil
}

// splitStatements cuts the text at ";" and newlines, keeping the newlines
// inside each piece's prefix so the caller can track line numbers. A
// statement never spans lines, so cutting at both is safe.
func splitStatements(text string) []string {
	return strings.FieldsFunc(splitKeepNewlines(text), func(r rune) bool { return r == ';' })
}

// splitKeepNewlines normalizes separators: a newline both separates
// statements and advances the line counter, so it is turned into ";\n"
// (the "\n" staying attached to the *previous* piece keeps the count
// simple: Parse counts newlines per piece before parsing it).
func splitKeepNewlines(text string) string {
	return strings.ReplaceAll(text, "\n", "\n;")
}

// parseStatement dispatches one statement's whitespace-split fields.
func parseStatement(b *Builder, f []string) error {
	switch f[0] {
	case "fail":
		return parseFail(b, f, false)
	case "restore":
		return parseFail(b, f, true)
	case "recover":
		if len(f) < 2 || f[1] != "node" {
			return fmt.Errorf("expected %q after %q", "node", "recover")
		}
		node, at, err := nodeAndAt(f[2:])
		if err != nil {
			return err
		}
		b.RecoverNode(at, node)
		return nil
	case "flap":
		return parseFlap(b, f)
	case "loss":
		return parseLoss(b, f)
	case "costout", "costin":
		if len(f) != 4 || f[1] != "link" {
			return fmt.Errorf("usage: %s link A-B @T", f[0])
		}
		links, err := parseEdges(f[2])
		if err != nil || len(links) != 1 {
			return fmt.Errorf("bad link %q", f[2])
		}
		at, err := parseAt(f[3])
		if err != nil {
			return err
		}
		if f[0] == "costout" {
			b.CostOut(at, links[0].A, links[0].B)
		} else {
			b.CostIn(at, links[0].A, links[0].B)
		}
		return nil
	case "churn":
		return parseChurn(b, f)
	case "failpath":
		return parseFailPath(b, f)
	case "failrandom":
		if len(f) != 2 {
			return fmt.Errorf("usage: failrandom @T")
		}
		at, err := parseAt(f[1])
		if err != nil {
			return err
		}
		b.FailRandom(at)
		return nil
	default:
		return fmt.Errorf("unknown keyword %q", f[0])
	}
}

// parseFail handles "fail|restore link|group|node ... @T".
func parseFail(b *Builder, f []string, restore bool) error {
	verb := f[0]
	if len(f) < 2 {
		return fmt.Errorf("%s what? expected link, group, or node", verb)
	}
	switch f[1] {
	case "link", "group":
		if len(f) != 4 {
			return fmt.Errorf("usage: %s %s A-B[,C-D] @T", verb, f[1])
		}
		links, err := parseEdges(f[2])
		if err != nil {
			return err
		}
		if f[1] == "link" && len(links) != 1 {
			return fmt.Errorf("%s link takes one link (use %s group for several)", verb, verb)
		}
		at, err := parseAt(f[3])
		if err != nil {
			return err
		}
		switch {
		case restore && f[1] == "link":
			b.RestoreLink(at, links[0].A, links[0].B)
		case restore:
			b.RestoreGroup(at, links...)
		case f[1] == "link":
			b.FailLink(at, links[0].A, links[0].B)
		default:
			b.FailGroup(at, links...)
		}
		return nil
	case "node":
		if restore {
			return fmt.Errorf("use %q to bring a node back", "recover node")
		}
		node, at, err := nodeAndAt(f[2:])
		if err != nil {
			return err
		}
		b.FailNode(at, node)
		return nil
	default:
		return fmt.Errorf("unknown target %q after %q (expected link, group, or node)", f[1], verb)
	}
}

// parseFlap handles "flap link A-B every D xN @T".
func parseFlap(b *Builder, f []string) error {
	if len(f) != 7 || f[1] != "link" {
		return fmt.Errorf("usage: flap link A-B every D xN @T")
	}
	links, err := parseEdges(f[2])
	if err != nil || len(links) != 1 {
		return fmt.Errorf("bad link %q", f[2])
	}
	if f[3] != "every" {
		return fmt.Errorf("expected %q, got %q", "every", f[3])
	}
	period, err := time.ParseDuration(f[4])
	if err != nil {
		return fmt.Errorf("bad flap period %q", f[4])
	}
	if !strings.HasPrefix(f[5], "x") {
		return fmt.Errorf("bad cycle count %q (expected xN)", f[5])
	}
	cycles, err := strconv.Atoi(f[5][1:])
	if err != nil {
		return fmt.Errorf("bad cycle count %q (expected xN)", f[5])
	}
	at, err := parseAt(f[6])
	if err != nil {
		return err
	}
	b.FlapLink(at, links[0].A, links[0].B, period, cycles)
	return nil
}

// parseLoss handles "loss link A-B p=0.01 @T".
func parseLoss(b *Builder, f []string) error {
	if len(f) != 5 || f[1] != "link" {
		return fmt.Errorf("usage: loss link A-B p=P @T")
	}
	links, err := parseEdges(f[2])
	if err != nil || len(links) != 1 {
		return fmt.Errorf("bad link %q", f[2])
	}
	val, ok := strings.CutPrefix(f[3], "p=")
	if !ok {
		return fmt.Errorf("bad loss probability %q (expected p=P)", f[3])
	}
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad loss probability %q", f[3])
	}
	at, err := parseAt(f[4])
	if err != nil {
		return err
	}
	b.Loss(at, links[0].A, links[0].B, p)
	return nil
}

// parseChurn handles "churn links [A-B,C-D] rate=R/s [down=D] @T1..T2".
func parseChurn(b *Builder, f []string) error {
	if len(f) < 3 || f[1] != "links" {
		return fmt.Errorf("usage: churn links [A-B,C-D] rate=R/s [down=D] @T1..T2")
	}
	rest := f[2:]
	var links []topology.Edge
	if !strings.ContainsRune(rest[0], '=') && !strings.HasPrefix(rest[0], "@") {
		var err error
		if links, err = parseEdges(rest[0]); err != nil {
			return err
		}
		rest = rest[1:]
	}
	var (
		rate     float64
		haveRate bool
		meanDown time.Duration
		from, to time.Duration
		haveAt   bool
	)
	for _, tok := range rest {
		switch {
		case strings.HasPrefix(tok, "rate="):
			val := strings.TrimSuffix(strings.TrimPrefix(tok, "rate="), "/s")
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad churn rate %q (expected rate=R/s)", tok)
			}
			rate, haveRate = r, true
		case strings.HasPrefix(tok, "down="):
			d, err := time.ParseDuration(strings.TrimPrefix(tok, "down="))
			if err != nil {
				return fmt.Errorf("bad churn downtime %q (expected down=D)", tok)
			}
			meanDown = d
		case strings.HasPrefix(tok, "@"):
			lo, hi, ok := strings.Cut(tok[1:], "..")
			if !ok {
				return fmt.Errorf("bad churn window %q (expected @T1..T2)", tok)
			}
			var err1, err2 error
			from, err1 = time.ParseDuration(lo)
			to, err2 = time.ParseDuration(hi)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad churn window %q (expected @T1..T2)", tok)
			}
			haveAt = true
		default:
			return fmt.Errorf("unknown churn parameter %q", tok)
		}
	}
	if !haveRate {
		return fmt.Errorf("churn needs rate=R/s")
	}
	if !haveAt {
		return fmt.Errorf("churn needs a window @T1..T2")
	}
	b.Churn(from, to, rate, meanDown, links...)
	return nil
}

// parseFailPath handles "failpath @T [restore=D] [flaps=N]".
func parseFailPath(b *Builder, f []string) error {
	var (
		at      time.Duration
		haveAt  bool
		restore time.Duration
		flaps   int
	)
	for _, tok := range f[1:] {
		switch {
		case strings.HasPrefix(tok, "@"):
			v, err := parseAt(tok)
			if err != nil {
				return err
			}
			at, haveAt = v, true
		case strings.HasPrefix(tok, "restore="):
			d, err := time.ParseDuration(strings.TrimPrefix(tok, "restore="))
			if err != nil {
				return fmt.Errorf("bad restore %q (expected restore=D)", tok)
			}
			restore = d
		case strings.HasPrefix(tok, "flaps="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "flaps="))
			if err != nil {
				return fmt.Errorf("bad flaps %q (expected flaps=N)", tok)
			}
			flaps = n
		default:
			return fmt.Errorf("unknown failpath parameter %q", tok)
		}
	}
	if !haveAt {
		return fmt.Errorf("failpath needs a time @T")
	}
	b.FailPath(at, restore, flaps)
	return nil
}

// parseAt parses a "@400s"-style event time.
func parseAt(tok string) (time.Duration, error) {
	val, ok := strings.CutPrefix(tok, "@")
	if !ok {
		return 0, fmt.Errorf("expected a time @T, got %q", tok)
	}
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", tok)
	}
	return d, nil
}

// nodeAndAt parses the "N @T" tail of the node statements.
func nodeAndAt(f []string) (topology.NodeID, time.Duration, error) {
	if len(f) != 2 {
		return 0, 0, fmt.Errorf("usage: fail|recover node N @T")
	}
	n, err := strconv.Atoi(f[0])
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("bad node %q", f[0])
	}
	at, err := parseAt(f[1])
	if err != nil {
		return 0, 0, err
	}
	return topology.NodeID(n), at, nil
}

// parseEdges parses a comma-separated "A-B,C-D" link list.
func parseEdges(tok string) ([]topology.Edge, error) {
	parts := strings.Split(tok, ",")
	out := make([]topology.Edge, 0, len(parts))
	for _, part := range parts {
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("bad link %q (expected A-B)", part)
		}
		a, err1 := strconv.Atoi(lo)
		bb, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a < 0 || bb < 0 {
			return nil, fmt.Errorf("bad link %q (expected A-B)", part)
		}
		out = append(out, topology.NewEdge(topology.NodeID(a), topology.NodeID(bb)))
	}
	return out, nil
}
