package obs_test

import (
	"fmt"
	"os"
	"time"

	"routeconv/internal/obs"
)

// ExampleMetrics records a few data-plane events and prints the resulting
// snapshot — the same named form that lands in TrialResult.Metrics and in
// sweep manifests.
func ExampleMetrics() {
	m := obs.NewMetrics()
	for i := 0; i < 5; i++ {
		m.Inc(obs.PacketsSent)
		m.PacketIn()
	}
	for i := 0; i < 4; i++ {
		m.Inc(obs.PacketsDelivered)
		m.PacketOut()
	}
	m.Inc(obs.DropNoRoute)
	m.PacketOut()

	snap := m.Snapshot()
	for _, k := range snap.Keys() {
		fmt.Printf("%s %d\n", k, snap[k])
	}
	// Output:
	// drops.no_route 1
	// packets.delivered 4
	// packets.sent 5
}

// ExampleTimeline logs a miniature convergence episode and renders it as
// NDJSON — the format cmd/convsim -timeline and cmd/tracer -timeline write.
func ExampleTimeline() {
	tl := obs.NewTimeline()
	failAt := 10 * time.Second
	tl.TrialStart(0, 1)
	tl.Link(failAt, obs.KindLinkDown, 24, 25)
	tl.FIBChange(failAt+52*time.Millisecond, 24, 48, 17)
	tl.Finish(failAt)
	tl.WriteNDJSON(os.Stdout)
	// Output:
	// {"t_ns":0,"event":"trial_start","seed":1}
	// {"t_ns":10000000000,"event":"link_down","node":24,"peer":25}
	// {"t_ns":10052000000,"event":"fib_change","node":24,"dst":48,"next_hop":17}
	// {"t_ns":10052000000,"event":"fib_first_change","node":24}
	// {"t_ns":10052000000,"event":"fib_last_change","node":24}
	// {"t_ns":10052000000,"event":"convergence_complete"}
}
