// Package obs is the observability layer: typed zero-allocation metrics and
// an optional structured convergence timeline, threaded through the engine,
// the network substrate, every routing protocol, and the sweep orchestrator.
//
// The package follows the measurement-first spirit of the paper — its whole
// contribution is counting delivered, dropped, and looped packets during
// convergence — and extends that accounting to the simulator's internals:
// message load, queue occupancy, FIB churn, and per-protocol decision
// activity, uniformly named so sweep cells are comparable across runs.
//
// Both halves are strictly read-only with respect to the simulation: no
// method schedules an event or consumes randomness, so enabling them cannot
// perturb event order (the golden determinism fixtures pin this). The nil
// *Metrics and nil *Timeline are fully functional no-ops — every method has
// a nil-receiver fast path — so uninstrumented runs pay one pointer test
// per hook and allocate nothing (guarded by AllocsPerRun tests).
//
// Every metric name and timeline record schema is documented field-by-field
// in OBSERVABILITY.md at the repository root.
package obs

import "sort"

// Counter indexes one named monotonic counter in a Metrics set. The
// constants below are the complete universe; Snapshot maps them to their
// dotted names.
type Counter uint8

// The counter universe. Data-plane counters are maintained by
// internal/netsim; Proto* counters by the routing protocols; EventsFired by
// the harness from sim.Simulator.Fired at trial end.
const (
	// PacketsSent counts data packets injected by traffic sources.
	PacketsSent Counter = iota
	// PacketsForwarded counts forwarding decisions that queued a data
	// packet on an output port (including the injection hop).
	PacketsForwarded
	// PacketsDelivered counts data packets that reached their destination.
	PacketsDelivered
	// DropNoRoute counts data packets dropped for lack of a forwarding
	// entry (the paper's Figure 3 quantity).
	DropNoRoute
	// DropTTLExpired counts data packets that ran out of hops — in this
	// study always transient forwarding loops (Figure 4).
	DropTTLExpired
	// DropQueueOverflow counts data packets rejected by a full output
	// queue.
	DropQueueOverflow
	// DropLinkFailure counts data packets lost on a failed link before
	// detection.
	DropLinkFailure
	// DropRandomLoss counts data packets lost to a scenario-scripted lossy
	// link's per-packet random drop (netsim.SetLinkLoss).
	DropRandomLoss
	// ControlSent and ControlBytes count routing messages (and their
	// on-wire bytes) transmitted.
	ControlSent
	ControlBytes
	// ControlReceived counts routing messages delivered to a protocol.
	ControlReceived
	// ControlDropped counts routing messages lost (failed links only;
	// control traffic is exempt from queue overflow).
	ControlDropped
	// FIBChanges counts forwarding entries installed or replaced;
	// FIBRemovals counts entries deleted.
	FIBChanges
	FIBRemovals
	// EventsFired is the total number of simulator events executed.
	EventsFired
	// ProtoUpdatesSent and ProtoUpdatesReceived count protocol update
	// messages (RIP/DBF vector updates, BGP announcements).
	ProtoUpdatesSent
	ProtoUpdatesReceived
	// ProtoWithdrawalsSent counts BGP withdrawn routes sent (a batched
	// withdrawal message counts once per destination).
	ProtoWithdrawalsSent
	// ProtoDecisionRuns counts decision-process executions: RIP per-entry
	// evaluations, DBF/BGP best-path recomputations, LS SPF runs.
	ProtoDecisionRuns
	// ProtoFloodsSent and ProtoFloodsReceived count link-state flood
	// messages.
	ProtoFloodsSent
	ProtoFloodsReceived
	// ProtoSPFIncremental counts LS recomputes served by the incremental
	// SPF patch (including exact no-ops) instead of a full epoch SPF.
	ProtoSPFIncremental
	// ProtoAdvSkipped counts received distance-vector entries skipped by
	// the change-versioned fast path: the sender marked them unchanged
	// since the last exchange and the receiver's own state for them is
	// unchanged too, so reprocessing them would be a no-op.
	ProtoAdvSkipped
	// FluidSettles counts fluid-engine settlements that accounted at
	// least one packet tick analytically (netsim.FlowSet).
	FluidSettles
	// FluidDemotions and FluidReabsorptions count hybrid-mode flow state
	// transitions: fluid → packet at a forwarding change on the flow's
	// path, and packet → fluid when the guard window expires.
	FluidDemotions
	FluidReabsorptions
	// FluidDeliveredBytes and FluidDroppedBytes are the byte totals the
	// fluid evaluator accounted (packet-engine bytes are not included).
	FluidDeliveredBytes
	FluidDroppedBytes
	// ShardBarrierWaits counts lockstep window barriers in a sharded run
	// (netsim.RunSharded); zero in sequential runs.
	ShardBarrierWaits
	// ShardCrossMsgs counts packets that crossed a shard boundary through
	// the barrier inbox exchange.
	ShardCrossMsgs
	// ScenarioEvents counts scripted scenario events executed (one per
	// event, including the compiled legacy failure events).
	ScenarioEvents
	// ScenarioLinkFails counts link failures injected by scenario events
	// (explicit, group, node-incident, flap-down, and churn failures).
	ScenarioLinkFails
	// ScenarioNodeFails counts node failures injected by scenario events.
	ScenarioNodeFails
	// ScenarioChurnCycles counts churn fail/repair cycles started.
	ScenarioChurnCycles

	numCounters
)

// counterNames are the dotted metric names, indexed by Counter. They are
// the contract documented in OBSERVABILITY.md.
var counterNames = [numCounters]string{
	PacketsSent:          "packets.sent",
	PacketsForwarded:     "packets.forwarded",
	PacketsDelivered:     "packets.delivered",
	DropNoRoute:          "drops.no_route",
	DropTTLExpired:       "drops.ttl_expired",
	DropQueueOverflow:    "drops.queue_overflow",
	DropLinkFailure:      "drops.link_failure",
	DropRandomLoss:       "drops.random_loss",
	ControlSent:          "control.sent",
	ControlBytes:         "control.bytes",
	ControlReceived:      "control.received",
	ControlDropped:       "control.dropped",
	FIBChanges:           "fib.changes",
	FIBRemovals:          "fib.removals",
	EventsFired:          "events.fired",
	ProtoUpdatesSent:     "proto.updates.sent",
	ProtoUpdatesReceived: "proto.updates.received",
	ProtoWithdrawalsSent: "proto.withdrawals.sent",
	ProtoDecisionRuns:    "proto.decision_runs",
	ProtoFloodsSent:      "proto.floods.sent",
	ProtoFloodsReceived:  "proto.floods.received",
	ProtoSPFIncremental:  "proto.spf_incremental",
	ProtoAdvSkipped:      "proto.adv_skipped",
	FluidSettles:         "fluid.settles",
	FluidDemotions:       "fluid.demotions",
	FluidReabsorptions:   "fluid.reabsorptions",
	FluidDeliveredBytes:  "fluid.delivered_bytes",
	FluidDroppedBytes:    "fluid.dropped_bytes",
	ShardBarrierWaits:    "shard.barrier_waits",
	ShardCrossMsgs:       "shard.cross_msgs",
	ScenarioEvents:       "scenario.events",
	ScenarioLinkFails:    "scenario.link_fails",
	ScenarioNodeFails:    "scenario.node_fails",
	ScenarioChurnCycles:  "scenario.churn_cycles",
}

// Name returns the counter's dotted metric name.
func (c Counter) Name() string { return counterNames[c] }

// queueBuckets are the upper bounds of the queue-depth histogram buckets;
// depths above the last bound land in the overflow bucket. The paper's
// default data-queue limit is 20 packets, so the overflow bucket covers
// depths 17–20.
var queueBuckets = [...]int{1, 2, 4, 8, 16}

// queueBucketNames name the histogram buckets, including the overflow one.
var queueBucketNames = [len(queueBuckets) + 1]string{
	"queue.depth.le1", "queue.depth.le2", "queue.depth.le4",
	"queue.depth.le8", "queue.depth.le16", "queue.depth.gt16",
}

// Metrics is one trial's counter set. All state is fixed-size, so every
// recording method is allocation-free; Snapshot (called once, at trial end)
// is the only method that allocates. Methods are nil-safe: a nil *Metrics
// records nothing, which is how uninstrumented runs stay zero-overhead.
//
// Metrics is not safe for concurrent use; one instance belongs to one
// simulation, which is single-threaded by construction.
type Metrics struct {
	counters [numCounters]uint64
	// inFlight is the signed balance of data packets injected minus data
	// packets that reached a terminal event (delivery or drop). At trial
	// end it is the number of packets still queued or on the wire.
	inFlight int64
	// queuePeak is the maximum data-queue depth observed on any port.
	queuePeak int64
	// queueHist counts data enqueues by resulting queue depth.
	queueHist [len(queueBuckets) + 1]uint64
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// Inc adds one to the counter.
func (m *Metrics) Inc(c Counter) {
	if m != nil {
		m.counters[c]++
	}
}

// Add adds n to the counter.
func (m *Metrics) Add(c Counter, n uint64) {
	if m != nil {
		m.counters[c] += n
	}
}

// Set overwrites the counter (used for totals read once at trial end, such
// as EventsFired).
func (m *Metrics) Set(c Counter, v uint64) {
	if m != nil {
		m.counters[c] = v
	}
}

// Get returns the counter's current value.
func (m *Metrics) Get(c Counter) uint64 {
	if m == nil {
		return 0
	}
	return m.counters[c]
}

// PacketIn records a data packet entering the network.
func (m *Metrics) PacketIn() {
	if m != nil {
		m.inFlight++
	}
}

// PacketOut records a data packet reaching a terminal event (delivered or
// dropped).
func (m *Metrics) PacketOut() {
	if m != nil {
		m.inFlight--
	}
}

// PacketInN records n data packets entering the network at once — the
// fluid engine's bulk settlement path.
func (m *Metrics) PacketInN(n uint64) {
	if m != nil {
		m.inFlight += int64(n)
	}
}

// PacketOutN records n data packets reaching terminal events at once.
func (m *Metrics) PacketOutN(n uint64) {
	if m != nil {
		m.inFlight -= int64(n)
	}
}

// InFlight returns the current in-flight data-packet balance.
func (m *Metrics) InFlight() int64 {
	if m == nil {
		return 0
	}
	return m.inFlight
}

// ObserveQueueDepth records one data enqueue whose resulting port queue
// depth (packets waiting, excluding the one in transmission) is depth.
func (m *Metrics) ObserveQueueDepth(depth int) {
	if m == nil {
		return
	}
	if int64(depth) > m.queuePeak {
		m.queuePeak = int64(depth)
	}
	for i, bound := range queueBuckets {
		if depth <= bound {
			m.queueHist[i]++
			return
		}
	}
	m.queueHist[len(queueBuckets)]++
}

// Absorb adds every counter, the in-flight balance, and the queue
// histogram of other into m, and keeps the larger queue peak. It is how a
// sharded run folds per-shard counter sets into the trial's root set at
// the end. Either receiver or argument may be nil.
func (m *Metrics) Absorb(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	for c := Counter(0); c < numCounters; c++ {
		m.counters[c] += other.counters[c]
	}
	m.inFlight += other.inFlight
	if other.queuePeak > m.queuePeak {
		m.queuePeak = other.queuePeak
	}
	for i := range m.queueHist {
		m.queueHist[i] += other.queueHist[i]
	}
}

// Snapshot is a Metrics set frozen into named values — the form that lands
// in TrialResult, sweep cell caches, and manifest.json. Zero-valued metrics
// are omitted; a missing key reads as zero.
type Snapshot map[string]uint64

// Snapshot freezes the counter set. The in-flight balance is emitted as
// packets.in_flight_end (clamped at zero: a negative balance is a packet-
// accounting bug that the conservation test reports explicitly) and the
// queue statistics as queue.peak and queue.depth.*. A nil *Metrics yields a
// nil Snapshot.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return nil
	}
	s := make(Snapshot)
	for c := Counter(0); c < numCounters; c++ {
		if v := m.counters[c]; v != 0 {
			s[counterNames[c]] = v
		}
	}
	if m.inFlight > 0 {
		s["packets.in_flight_end"] = uint64(m.inFlight)
	}
	if m.queuePeak > 0 {
		s["queue.peak"] = uint64(m.queuePeak)
	}
	for i, v := range m.queueHist {
		if v != 0 {
			s[queueBucketNames[i]] = v
		}
	}
	return s
}

// Merge adds every value of other into s (summing shared keys), growing s
// as needed. It is how multi-trial results and sweep cells aggregate
// per-trial snapshots.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	if len(other) == 0 {
		return s
	}
	if s == nil {
		s = make(Snapshot, len(other))
	}
	for k, v := range other {
		s[k] += v
	}
	return s
}

// Keys returns the snapshot's metric names in sorted order, for
// deterministic rendering.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
