package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// Kind identifies one timeline record type. The string forms (see
// kindNames) are the `event` field of the NDJSON schema documented in
// OBSERVABILITY.md.
type Kind uint8

const (
	// KindTrialStart opens a timeline: one record carrying the trial seed.
	KindTrialStart Kind = iota
	// KindLinkDown and KindLinkUp mark the physical state change of the
	// link Node–Peer; KindLinkDownDetected / KindLinkUpDetected mark the
	// (later) moment the endpoints' protocols are notified.
	KindLinkDown
	KindLinkUp
	KindLinkDownDetected
	KindLinkUpDetected
	// KindFIBChange records node Node (re)pointing its forwarding entry
	// for Dst at next hop Peer; KindFIBRemove records the entry's
	// deletion (Peer is -1).
	KindFIBChange
	KindFIBRemove
	// KindWithdrawal records a BGP speaker (Node) sending neighbor Peer a
	// withdrawal for Dst.
	KindWithdrawal
	// KindRouteFlap records flap damping suppressing the route to Dst
	// learned from neighbor Peer at node Node; KindRouteReuse records the
	// suppression timer releasing it.
	KindRouteFlap
	KindRouteReuse
	// KindFirstFIBChange / KindLastFIBChange are synthesized by Finish:
	// per node, the first and last FIB event at or after the failure.
	KindFirstFIBChange
	KindLastFIBChange
	// KindConvergenceComplete is synthesized by Finish: the time of the
	// last FIB event anywhere at or after the failure.
	KindConvergenceComplete
	// KindFluidDemote records the hybrid traffic engine demoting the
	// Node→Dst flow class to packet-level simulation after a forwarding
	// change on its path; KindFluidAbsorb records its return to the
	// fluid once the guard window expires.
	KindFluidDemote
	KindFluidAbsorb
	// KindNodeDown and KindNodeUp mark a scenario-scripted node failure
	// and recovery of Node (its incident link events are logged
	// separately as link_down/link_up records).
	KindNodeDown
	KindNodeUp
	// KindLinkLoss records the Node–Peer link's random packet-loss
	// probability being set to Rate (0 clears it).
	KindLinkLoss
	// KindCostOut and KindCostIn mark the graceful maintenance events on
	// the Node–Peer link: protocols are notified immediately while the
	// link keeps carrying packets.
	KindCostOut
	KindCostIn
	// KindChurnStart and KindChurnEnd bracket a scripted churn window;
	// the start record carries the failure arrival Rate.
	KindChurnStart
	KindChurnEnd

	numKinds
)

var kindNames = [numKinds]string{
	KindTrialStart:          "trial_start",
	KindLinkDown:            "link_down",
	KindLinkUp:              "link_up",
	KindLinkDownDetected:    "link_down_detected",
	KindLinkUpDetected:      "link_up_detected",
	KindFIBChange:           "fib_change",
	KindFIBRemove:           "fib_remove",
	KindWithdrawal:          "withdrawal",
	KindRouteFlap:           "route_flap",
	KindRouteReuse:          "route_reuse",
	KindFirstFIBChange:      "fib_first_change",
	KindLastFIBChange:       "fib_last_change",
	KindConvergenceComplete: "convergence_complete",
	KindFluidDemote:         "fluid_demote",
	KindFluidAbsorb:         "fluid_absorb",
	KindNodeDown:            "node_down",
	KindNodeUp:              "node_up",
	KindLinkLoss:            "link_loss",
	KindCostOut:             "cost_out",
	KindCostIn:              "cost_in",
	KindChurnStart:          "churn_start",
	KindChurnEnd:            "churn_end",
}

// String returns the record type's NDJSON `event` value.
func (k Kind) String() string { return kindNames[k] }

// Record is one timeline event. Node/Peer/Dst are topology node IDs whose
// meaning depends on Kind (see the Kind constants); -1 marks a field the
// kind does not use. Seed is set only on KindTrialStart.
type Record struct {
	At   time.Duration
	Kind Kind
	Node int
	Peer int
	Dst  int
	Seed int64
	// Rate is set only on KindLinkLoss (the loss probability) and
	// KindChurnStart (failures per second).
	Rate float64
}

// Timeline is one trial's append-only convergence event log. Recording
// appends to a slice (amortized-allocation only, no I/O, no formatting);
// WriteNDJSON renders it once at the end. Like Metrics, a nil *Timeline is
// a no-op recorder, and no method touches the simulator: recording cannot
// change event order or consume randomness.
type Timeline struct {
	recs     []Record
	finished bool
}

// NewTimeline returns an empty timeline with room for a typical trial.
func NewTimeline() *Timeline {
	return &Timeline{recs: make([]Record, 0, 256)}
}

func (t *Timeline) add(r Record) {
	if t != nil {
		t.recs = append(t.recs, r)
	}
}

// TrialStart records the trial's opening, carrying its RNG seed.
func (t *Timeline) TrialStart(at time.Duration, seed int64) {
	t.add(Record{At: at, Kind: KindTrialStart, Node: -1, Peer: -1, Dst: -1, Seed: seed})
}

// Link records a physical link event between a and b: down/up, and later
// the detected variants when the endpoints learn of it.
func (t *Timeline) Link(at time.Duration, kind Kind, a, b int) {
	t.add(Record{At: at, Kind: kind, Node: a, Peer: b, Dst: -1})
}

// FIBChange records node installing nextHop as its forwarding entry for dst.
func (t *Timeline) FIBChange(at time.Duration, node, dst, nextHop int) {
	t.add(Record{At: at, Kind: KindFIBChange, Node: node, Peer: nextHop, Dst: dst})
}

// FIBRemove records node deleting its forwarding entry for dst.
func (t *Timeline) FIBRemove(at time.Duration, node, dst int) {
	t.add(Record{At: at, Kind: KindFIBRemove, Node: node, Peer: -1, Dst: dst})
}

// Withdrawal records node sending neighbor a BGP withdrawal for dst.
func (t *Timeline) Withdrawal(at time.Duration, node, neighbor, dst int) {
	t.add(Record{At: at, Kind: KindWithdrawal, Node: node, Peer: neighbor, Dst: dst})
}

// RouteFlap records flap damping suppressing (KindRouteFlap) or releasing
// (KindRouteReuse) the route to dst learned from neighbor at node.
func (t *Timeline) RouteFlap(at time.Duration, kind Kind, node, neighbor, dst int) {
	t.add(Record{At: at, Kind: kind, Node: node, Peer: neighbor, Dst: dst})
}

// FluidFlow records the hybrid engine demoting (KindFluidDemote) or
// re-absorbing (KindFluidAbsorb) the node→dst flow class.
func (t *Timeline) FluidFlow(at time.Duration, kind Kind, node, dst int) {
	t.add(Record{At: at, Kind: kind, Node: node, Peer: -1, Dst: dst})
}

// Node records a scenario node event: node down (KindNodeDown) or back up
// (KindNodeUp).
func (t *Timeline) Node(at time.Duration, kind Kind, node int) {
	t.add(Record{At: at, Kind: kind, Node: node, Peer: -1, Dst: -1})
}

// LinkLoss records the a–b link's random loss probability being set to p.
func (t *Timeline) LinkLoss(at time.Duration, a, b int, p float64) {
	t.add(Record{At: at, Kind: KindLinkLoss, Node: a, Peer: b, Dst: -1, Rate: p})
}

// Churn records a scripted churn window opening (KindChurnStart, with the
// failure arrival rate) or closing (KindChurnEnd).
func (t *Timeline) Churn(at time.Duration, kind Kind, rate float64) {
	t.add(Record{At: at, Kind: kind, Node: -1, Peer: -1, Dst: -1, Rate: rate})
}

// Len returns the number of records logged so far.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// Records returns the underlying record slice (not a copy).
func (t *Timeline) Records() []Record {
	if t == nil {
		return nil
	}
	return t.recs
}

// AbsorbSorted merges the records of the given timelines into t, keeping
// the combined log ordered by time. Every input log must already be
// time-nondecreasing (append-only logs are). Ties are stable: t's own
// records come first, then the others in argument order — the rule a
// sharded run uses to fold per-shard logs into the trial timeline. Nil
// entries are skipped. Call before Finish.
func (t *Timeline) AbsorbSorted(others ...*Timeline) {
	if t == nil {
		return
	}
	srcs := make([][]Record, 0, len(others)+1)
	total := len(t.recs)
	srcs = append(srcs, t.recs)
	for _, o := range others {
		if o == nil || len(o.recs) == 0 {
			continue
		}
		srcs = append(srcs, o.recs)
		total += len(o.recs)
	}
	if len(srcs) == 1 {
		return
	}
	merged := make([]Record, 0, total)
	idx := make([]int, len(srcs))
	for {
		best := -1
		var bestAt time.Duration
		for si, src := range srcs {
			i := idx[si]
			if i >= len(src) {
				continue
			}
			if at := src[i].At; best < 0 || at < bestAt {
				best, bestAt = si, at
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, srcs[best][idx[best]])
		idx[best]++
	}
	t.recs = merged
}

// Finish synthesizes the summary records from the raw log: per node that
// changed its FIB at or after failAt, a fib_first_change and fib_last_change
// record (appended in ascending node order), and one convergence_complete
// record at the time of the last such change anywhere. Finish is
// idempotent; calling it on a nil or empty timeline is a no-op.
func (t *Timeline) Finish(failAt time.Duration) {
	if t == nil || t.finished || len(t.recs) == 0 {
		return
	}
	t.finished = true
	first := make(map[int]time.Duration)
	last := make(map[int]time.Duration)
	var complete time.Duration
	any := false
	for _, r := range t.recs {
		if (r.Kind != KindFIBChange && r.Kind != KindFIBRemove) || r.At < failAt {
			continue
		}
		if _, ok := first[r.Node]; !ok {
			first[r.Node] = r.At
		}
		last[r.Node] = r.At
		if r.At > complete {
			complete = r.At
		}
		any = true
	}
	nodes := make([]int, 0, len(first))
	for n := range first {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		t.add(Record{At: first[n], Kind: KindFirstFIBChange, Node: n, Peer: -1, Dst: -1})
		t.add(Record{At: last[n], Kind: KindLastFIBChange, Node: n, Peer: -1, Dst: -1})
	}
	if any {
		t.add(Record{At: complete, Kind: KindConvergenceComplete, Node: -1, Peer: -1, Dst: -1})
	}
}

// WriteNDJSON renders the timeline as newline-delimited JSON, one record
// per line in log order, per the schema in OBSERVABILITY.md. Field names
// depend on the record kind; unused fields are omitted rather than emitted
// as -1. Writing happens only here — never during the simulation.
func (t *Timeline) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, r := range t.recs {
		var err error
		switch r.Kind {
		case KindTrialStart:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"seed":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Seed)
		case KindLinkDown, KindLinkUp, KindLinkDownDetected, KindLinkUpDetected, KindCostOut, KindCostIn:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"peer":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Peer)
		case KindFIBChange:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"dst":%d,"next_hop":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Dst, r.Peer)
		case KindFIBRemove:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"dst":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Dst)
		case KindWithdrawal:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"neighbor":%d,"dst":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Peer, r.Dst)
		case KindRouteFlap, KindRouteReuse:
			state := "suppressed"
			if r.Kind == KindRouteReuse {
				state = "reused"
			}
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"neighbor":%d,"dst":%d,"state":%q}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Peer, r.Dst, state)
		case KindFirstFIBChange, KindLastFIBChange:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node)
		case KindConvergenceComplete:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind])
		case KindFluidDemote, KindFluidAbsorb:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"dst":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Dst)
		case KindNodeDown, KindNodeUp:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node)
		case KindLinkLoss:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"peer":%d,"rate":%g}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Peer, r.Rate)
		case KindChurnStart:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"rate":%g}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Rate)
		case KindChurnEnd:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind])
		default:
			_, err = fmt.Fprintf(bw, `{"t_ns":%d,"event":%q,"node":%d,"peer":%d,"dst":%d}`+"\n",
				r.At.Nanoseconds(), kindNames[r.Kind], r.Node, r.Peer, r.Dst)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
