package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if counterNames[c] == "" {
			t.Errorf("counter %d has no name", c)
		}
	}
	seen := map[string]Counter{}
	for c := Counter(0); c < numCounters; c++ {
		if prev, dup := seen[counterNames[c]]; dup {
			t.Errorf("counters %d and %d share name %q", prev, c, counterNames[c])
		}
		seen[counterNames[c]] = c
	}
}

func TestMetricsBasics(t *testing.T) {
	m := NewMetrics()
	m.Inc(PacketsSent)
	m.Inc(PacketsSent)
	m.Add(ControlBytes, 120)
	m.Set(EventsFired, 42)
	if got := m.Get(PacketsSent); got != 2 {
		t.Errorf("PacketsSent = %d, want 2", got)
	}
	m.PacketIn()
	m.PacketIn()
	m.PacketOut()
	if got := m.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1", got)
	}
	m.ObserveQueueDepth(1)
	m.ObserveQueueDepth(3)
	m.ObserveQueueDepth(19)

	s := m.Snapshot()
	want := map[string]uint64{
		"packets.sent":          2,
		"control.bytes":         120,
		"events.fired":          42,
		"packets.in_flight_end": 1,
		"queue.peak":            19,
		"queue.depth.le1":       1,
		"queue.depth.le4":       1,
		"queue.depth.gt16":      1,
	}
	if len(s) != len(want) {
		t.Errorf("snapshot has %d keys, want %d: %v", len(s), len(want), s)
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, s[k], v)
		}
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Inc(PacketsSent)
	m.Add(ControlBytes, 7)
	m.Set(EventsFired, 7)
	m.PacketIn()
	m.PacketOut()
	m.ObserveQueueDepth(5)
	if m.Get(PacketsSent) != 0 || m.InFlight() != 0 {
		t.Error("nil Metrics returned non-zero reads")
	}
	if s := m.Snapshot(); s != nil {
		t.Errorf("nil Metrics snapshot = %v, want nil", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var total Snapshot
	total = total.Merge(Snapshot{"packets.sent": 3, "drops.no_route": 1})
	total = total.Merge(Snapshot{"packets.sent": 2})
	total = total.Merge(nil)
	if total["packets.sent"] != 5 || total["drops.no_route"] != 1 {
		t.Errorf("merged snapshot = %v", total)
	}
	if got := total.Keys(); len(got) != 2 || got[0] != "drops.no_route" || got[1] != "packets.sent" {
		t.Errorf("Keys() = %v", got)
	}
}

func TestTimelineFinish(t *testing.T) {
	tl := NewTimeline()
	tl.TrialStart(0, 1)
	failAt := 10 * time.Second
	// Pre-failure FIB churn must not count toward convergence.
	tl.FIBChange(1*time.Second, 3, 48, 4)
	tl.Link(failAt, KindLinkDown, 24, 25)
	tl.FIBChange(failAt+50*time.Millisecond, 24, 48, 17)
	tl.FIBRemove(failAt+60*time.Millisecond, 25, 48)
	tl.FIBChange(failAt+2*time.Second, 24, 48, 31)
	tl.Finish(failAt)
	tl.Finish(failAt) // idempotent

	byKind := map[Kind][]Record{}
	for _, r := range tl.Records() {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	firsts := byKind[KindFirstFIBChange]
	lasts := byKind[KindLastFIBChange]
	if len(firsts) != 2 || len(lasts) != 2 {
		t.Fatalf("got %d first / %d last records, want 2/2", len(firsts), len(lasts))
	}
	// Ascending node order: 24 then 25.
	if firsts[0].Node != 24 || firsts[0].At != failAt+50*time.Millisecond {
		t.Errorf("first[0] = %+v", firsts[0])
	}
	if lasts[0].Node != 24 || lasts[0].At != failAt+2*time.Second {
		t.Errorf("last[0] = %+v", lasts[0])
	}
	if firsts[1].Node != 25 || firsts[1].At != failAt+60*time.Millisecond {
		t.Errorf("first[1] = %+v", firsts[1])
	}
	cc := byKind[KindConvergenceComplete]
	if len(cc) != 1 || cc[0].At != failAt+2*time.Second {
		t.Errorf("convergence_complete = %+v", cc)
	}
}

func TestTimelineNDJSON(t *testing.T) {
	tl := NewTimeline()
	tl.TrialStart(0, 7)
	tl.Link(10*time.Second, KindLinkDown, 24, 25)
	tl.FIBChange(10*time.Second+52*time.Millisecond, 24, 48, 17)
	tl.Withdrawal(10*time.Second+100*time.Millisecond, 25, 24, 48)
	tl.RouteFlap(11*time.Second, KindRouteFlap, 5, 9, 48)
	tl.Finish(10 * time.Second)

	var sb strings.Builder
	if err := tl.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`{"t_ns":0,"event":"trial_start","seed":7}`,
		`{"t_ns":10000000000,"event":"link_down","node":24,"peer":25}`,
		`{"t_ns":10052000000,"event":"fib_change","node":24,"dst":48,"next_hop":17}`,
		`{"t_ns":10100000000,"event":"withdrawal","node":25,"neighbor":24,"dst":48}`,
		`{"t_ns":11000000000,"event":"route_flap","node":5,"neighbor":9,"dst":48,"state":"suppressed"}`,
		`{"t_ns":10052000000,"event":"fib_first_change","node":24}`,
		`{"t_ns":10052000000,"event":"convergence_complete"}`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("NDJSON output missing line %s\ngot:\n%s", want, got)
		}
	}
}

func TestNilTimelineSafe(t *testing.T) {
	var tl *Timeline
	tl.TrialStart(0, 1)
	tl.Link(0, KindLinkDown, 1, 2)
	tl.FIBChange(0, 1, 2, 3)
	tl.FIBRemove(0, 1, 2)
	tl.Withdrawal(0, 1, 2, 3)
	tl.RouteFlap(0, KindRouteFlap, 1, 2, 3)
	tl.Finish(0)
	if tl.Len() != 0 || tl.Records() != nil {
		t.Error("nil Timeline accumulated records")
	}
	if err := tl.WriteNDJSON(nil); err != nil {
		t.Errorf("nil Timeline WriteNDJSON: %v", err)
	}
}

// TestMetricsOpsAllocFree pins every hot-path recording method — enabled
// and disabled — at zero allocations; the data plane calls these per
// packet.
func TestMetricsOpsAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *Metrics
	}{
		{"enabled", NewMetrics()},
		{"nil", nil},
	} {
		allocs := testing.AllocsPerRun(1000, func() {
			tc.m.Inc(PacketsForwarded)
			tc.m.Add(ControlBytes, 64)
			tc.m.PacketIn()
			tc.m.ObserveQueueDepth(3)
			tc.m.PacketOut()
			_ = tc.m.Get(PacketsForwarded)
		})
		if allocs != 0 {
			t.Errorf("%s metrics ops: %v allocs/run, want 0", tc.name, allocs)
		}
	}
}

// TestNilTimelineAllocFree pins the disabled timeline recorder at zero
// allocations (the enabled one appends, which amortizes but may grow).
func TestNilTimelineAllocFree(t *testing.T) {
	var tl *Timeline
	allocs := testing.AllocsPerRun(1000, func() {
		tl.FIBChange(0, 1, 2, 3)
		tl.Link(0, KindLinkDown, 1, 2)
		tl.Withdrawal(0, 1, 2, 3)
	})
	if allocs != 0 {
		t.Errorf("nil timeline ops: %v allocs/run, want 0", allocs)
	}
}
