package netsim

import (
	"testing"
	"time"

	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func trafficNet(t *testing.T) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(5)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	n.Node(0).SetRoute(1, 1)
	return s, n
}

func TestPoissonRate(t *testing.T) {
	s, n := trafficNet(t)
	// Mean 10 ms over 100 s → about 10k packets.
	StartPoisson(n.Node(0), 1, 10*time.Millisecond, 100, 64, 0, 100*time.Second)
	s.Run()
	sent := float64(n.Stats().DataSent)
	if sent < 8_000 || sent > 12_000 {
		t.Errorf("Poisson sent %v packets over 100 s at 100 pps mean, want ≈ 10000", sent)
	}
}

func TestPoissonStopsAtDeadline(t *testing.T) {
	s, n := trafficNet(t)
	StartPoisson(n.Node(0), 1, 10*time.Millisecond, 100, 64, time.Second, 2*time.Second)
	s.Run()
	if s.Now() > 3*time.Second {
		t.Errorf("events continued until %v after the source deadline", s.Now())
	}
	if n.Stats().DataSent == 0 {
		t.Error("Poisson sent nothing")
	}
}

func TestPoissonStop(t *testing.T) {
	s, n := trafficNet(t)
	src := StartPoisson(n.Node(0), 1, 10*time.Millisecond, 100, 64, 0, time.Hour)
	s.Schedule(time.Second, func() { src.Stop(); src.Stop() })
	s.RunUntil(2 * time.Second)
	sent := n.Stats().DataSent
	s.RunUntil(10 * time.Second)
	if n.Stats().DataSent != sent {
		t.Error("packets sent after Stop")
	}
}

func TestOnOffBursts(t *testing.T) {
	s, n := trafficNet(t)
	// 1 s ON / 1 s OFF at 100 pps → roughly half of 100 s × 100 pps.
	StartOnOff(n.Node(0), 1, 10*time.Millisecond, time.Second, time.Second, 100, 64, 0, 100*time.Second)
	s.Run()
	sent := float64(n.Stats().DataSent)
	if sent < 3_000 || sent > 7_000 {
		t.Errorf("on/off sent %v packets, want ≈ 5000 (half duty cycle)", sent)
	}
}

func TestOnOffStop(t *testing.T) {
	s, n := trafficNet(t)
	src := StartOnOff(n.Node(0), 1, 10*time.Millisecond, time.Second, time.Second, 100, 64, 0, time.Hour)
	s.Schedule(500*time.Millisecond, func() { src.Stop() })
	s.RunUntil(time.Second)
	sent := n.Stats().DataSent
	s.RunUntil(5 * time.Second)
	if n.Stats().DataSent != sent {
		t.Error("packets sent after Stop")
	}
}

func TestTrafficValidation(t *testing.T) {
	_, n := trafficNet(t)
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Poisson zero interval", func() {
		StartPoisson(n.Node(0), 1, 0, 100, 64, 0, time.Second)
	})
	assertPanics("OnOff zero interval", func() {
		StartOnOff(n.Node(0), 1, 0, time.Second, time.Second, 100, 64, 0, time.Second)
	})
	assertPanics("OnOff zero on-mean", func() {
		StartOnOff(n.Node(0), 1, time.Millisecond, 0, time.Second, 100, 64, 0, time.Second)
	})
	assertPanics("CBR zero interval", func() {
		StartCBR(n.Node(0), 1, 0, 100, 64, 0, time.Second)
	})
}

func TestTrafficStopNilSafe(t *testing.T) {
	// Stop must be callable on zero and nil sources, any number of times.
	(*poisson)(nil).Stop()
	(*onOff)(nil).Stop()
	var p poisson
	p.Stop()
	p.Stop()
	var o onOff
	o.Stop()
	o.Stop()
}

// TestTrafficNoEventPastDeadline pins the stopAt boundary fix: sources
// must not leave a dead event scheduled at or beyond their deadline, so
// the simulator drains exactly when traffic ends.
func TestTrafficNoEventPastDeadline(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s := sim.New(seed)
		n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
		n.Node(0).SetRoute(1, 1)
		const stop = 2 * time.Second
		StartPoisson(n.Node(0), 1, 10*time.Millisecond, 100, 64, time.Second, stop)
		StartOnOff(n.Node(0), 1, 10*time.Millisecond, 100*time.Millisecond, 100*time.Millisecond, 100, 64, time.Second, stop)
		s.Run()
		// Deliveries of packets sent just before the deadline trail it by
		// one hop's latency; anything later is a source tick that the
		// boundary clamp should have suppressed.
		if slack := 2 * time.Millisecond; s.Now() >= stop+slack {
			t.Fatalf("seed %d: an event fired at %v, past the %v source deadline", seed, s.Now(), stop)
		}
		if got := s.Pending(); got != 0 {
			t.Fatalf("seed %d: %d events still pending after Run", seed, got)
		}
	}
}

func TestTrafficDeterministic(t *testing.T) {
	run := func() uint64 {
		s := sim.New(9)
		n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
		n.Node(0).SetRoute(1, 1)
		StartPoisson(n.Node(0), 1, 5*time.Millisecond, 100, 64, 0, 10*time.Second)
		StartOnOff(n.Node(1), 0, 7*time.Millisecond, time.Second, 500*time.Millisecond, 100, 64, 0, 10*time.Second)
		s.Run()
		return n.Stats().DataSent
	}
	if run() != run() {
		t.Error("traffic sources not deterministic under a fixed seed")
	}
}
