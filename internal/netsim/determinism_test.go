package netsim

import (
	"testing"
	"time"
)

// goldenScenario drives a fixed fail/restore scenario on a 4-node line with
// a CBR flow crossing the failed link, and returns the aggregate stats plus
// the total event count.
func goldenScenario() (Stats, uint64) {
	s, net := benchLine(4)
	StartCBR(net.Node(0), 3, 10*time.Millisecond, 1000, 64, 0, 8*time.Second)
	s.Schedule(2*time.Second, func() { net.FailLink(1, 2) })
	s.Schedule(4*time.Second, func() { net.RestoreLink(1, 2) })
	s.RunUntil(10 * time.Second)
	return net.Stats(), s.Fired()
}

// TestNetsimGolden pins the exact packet accounting and event count of the
// reference scenario. The values were captured from the pre-rewrite engine:
// 800 packets sent, the 200 sent during the 2 s outage all lost on the dead
// link (static routes — no reconvergence), and 5005 events fired in total.
// A change in event ordering or port scheduling shows up here immediately.
func TestNetsimGolden(t *testing.T) {
	want := Stats{
		DataSent:      800,
		DataDelivered: 600,
	}
	want.DataDrops[DropLinkFailure] = 200
	st, fired := goldenScenario()
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if fired != 5005 {
		t.Errorf("fired = %d events, want 5005", fired)
	}
}

// TestNetsimRepeatable runs the scenario twice and requires byte-identical
// stats and event counts.
func TestNetsimRepeatable(t *testing.T) {
	st1, f1 := goldenScenario()
	st2, f2 := goldenScenario()
	if st1 != st2 {
		t.Errorf("stats differ between identical runs: %+v vs %+v", st1, st2)
	}
	if f1 != f2 {
		t.Errorf("event counts differ between identical runs: %d vs %d", f1, f2)
	}
}
