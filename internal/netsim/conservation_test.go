package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// TestPropertyPacketConservation checks the fundamental accounting
// invariant: once the event queue drains, every data packet ever sent was
// either delivered or dropped for exactly one reason.
func TestPropertyPacketConservation(t *testing.T) {
	f := func(seed int64, nSends uint8, failLink bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(12, 3, seed)
		s := sim.New(seed)
		cfg := Config{
			LinkRateBps: 1_000_000,
			LinkDelay:   time.Millisecond,
			DetectDelay: 10 * time.Millisecond,
			QueueLimit:  3,
		}
		n := FromGraph(s, g, cfg, nil)
		// Random static routes: some valid, some looping, some missing.
		for i := 0; i < n.Len(); i++ {
			node := n.Node(NodeID(i))
			for dst := 0; dst < n.Len(); dst++ {
				if dst == i || rng.Intn(4) == 0 {
					continue // leave some destinations unrouted
				}
				nbrs := node.Neighbors()
				node.SetRoute(NodeID(dst), nbrs[rng.Intn(len(nbrs))])
			}
		}
		for i := 0; i < int(nSends); i++ {
			src := NodeID(rng.Intn(n.Len()))
			dst := NodeID(rng.Intn(n.Len()))
			if src == dst {
				continue
			}
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			s.ScheduleAt(at, func() { n.Node(src).SendData(dst, 500, 8) })
		}
		if failLink {
			edges := g.Edges()
			e := edges[rng.Intn(len(edges))]
			s.ScheduleAt(500*time.Millisecond, func() { n.FailLink(e.A, e.B) })
		}
		s.Run()
		st := n.Stats()
		return st.DataSent == st.DataDelivered+st.DataDropped()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTTLBoundsHops: a delivered packet never takes more hops than
// its initial TTL allows.
func TestPropertyTTLBoundsHops(t *testing.T) {
	f := func(seed int64, ttl uint8) bool {
		if ttl == 0 {
			ttl = 1
		}
		g := topology.Ring(8)
		s := sim.New(seed)
		rec := &recorder{}
		n := FromGraph(s, g, DefaultConfig(), rec)
		// Route the long way around: 0→1→2→...→5.
		for i := 0; i < 5; i++ {
			n.Node(NodeID(i)).SetRoute(5, NodeID(i+1))
		}
		n.Node(0).SendData(5, 100, int(ttl))
		s.Run()
		for _, p := range rec.delivered {
			if p.HopCount > int(ttl) {
				return false
			}
		}
		st := n.Stats()
		return st.DataSent == st.DataDelivered+st.DataDropped()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConservationUnderChurn drives traffic through a network whose links
// flap while routes are rewritten, and checks conservation still holds.
func TestConservationUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Random(10, 3, seed)
		s := sim.New(seed)
		n := FromGraph(s, g, DefaultConfig(), nil)
		for i := 0; i < n.Len(); i++ {
			node := n.Node(NodeID(i))
			for dst := 0; dst < n.Len(); dst++ {
				if dst != i {
					nbrs := node.Neighbors()
					node.SetRoute(NodeID(dst), nbrs[rng.Intn(len(nbrs))])
				}
			}
		}
		edges := g.Edges()
		for i := 0; i < 30; i++ {
			at := time.Duration(rng.Intn(3000)) * time.Millisecond
			e := edges[rng.Intn(len(edges))]
			if rng.Intn(2) == 0 {
				s.ScheduleAt(at, func() { n.FailLink(e.A, e.B) })
			} else {
				s.ScheduleAt(at, func() { n.RestoreLink(e.A, e.B) })
			}
		}
		for i := 0; i < 200; i++ {
			src := NodeID(rng.Intn(n.Len()))
			dst := NodeID(rng.Intn(n.Len()))
			if src == dst {
				continue
			}
			at := time.Duration(rng.Intn(3000)) * time.Millisecond
			s.ScheduleAt(at, func() { n.Node(src).SendData(dst, 800, 16) })
		}
		s.Run()
		st := n.Stats()
		if st.DataSent != st.DataDelivered+st.DataDropped() {
			t.Errorf("seed %d: sent %d ≠ delivered %d + dropped %d",
				seed, st.DataSent, st.DataDelivered, st.DataDropped())
		}
	}
}
