package netsim

import (
	"fmt"
	"sort"
	"time"

	"routeconv/internal/obs"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// Config sets the physical parameters of every link in the network,
// matching the paper's §5 simulation setup.
type Config struct {
	// LinkRateBps is the transmission rate in bits per second.
	LinkRateBps int64
	// LinkDelay is the propagation delay.
	LinkDelay time.Duration
	// DetectDelay is how long after a link fails (or recovers) the attached
	// nodes' routing protocols are notified.
	DetectDelay time.Duration
	// QueueLimit is the maximum number of data packets queued per output
	// port, excluding the one in transmission. Control packets are exempt
	// (see DESIGN.md).
	QueueLimit int
	// RecordHops makes every packet record the nodes it visits, for loop
	// analysis. It costs memory; leave it off for bulk trials.
	RecordHops bool
}

// DefaultConfig returns the paper's link parameters: 10 Mbps, 1 ms
// propagation delay, 50 ms failure detection, 20-packet queues.
func DefaultConfig() Config {
	return Config{
		LinkRateBps: 10_000_000,
		LinkDelay:   time.Millisecond,
		DetectDelay: 50 * time.Millisecond,
		QueueLimit:  20,
	}
}

// Stats are the network-wide packet counters for one simulation.
type Stats struct {
	// DataSent counts data packets injected by traffic sources.
	DataSent uint64
	// DataDelivered counts data packets that reached their destination.
	DataDelivered uint64
	// ControlSent counts routing messages sent.
	ControlSent uint64
	// ControlBytes counts routing message bytes sent.
	ControlBytes uint64
	// DataDrops and ControlDrops count lost packets by cause.
	DataDrops    [numDropReasons]uint64
	ControlDrops [numDropReasons]uint64
}

// Dropped returns the number of data packets lost for the given reason.
func (s Stats) Dropped(r DropReason) uint64 { return s.DataDrops[r] }

// DataDropped returns the total data packets lost for any reason.
func (s Stats) DataDropped() uint64 {
	var total uint64
	for _, n := range s.DataDrops {
		total += n
	}
	return total
}

// serCacheMax bounds the memoized serialization table; packets larger than
// this (none in the study — jumbo frames end at 9 KB) compute directly.
const serCacheMax = 1 << 16

// Network is a set of nodes and links driven by a Simulator. Build one
// with New or FromGraph, attach protocols, then Start it.
type Network struct {
	sim      *sim.Simulator
	cfg      Config
	nodes    []*Node
	links    map[topology.Edge]*Link
	linkList []*Link // sorted by edge; nil when invalidated by Connect
	observer Observer
	stats    Stats
	// met and tl are the optional obs instrumentation; both are nil-safe
	// no-ops when the network is not Instrumented.
	met     *obs.Metrics
	tl      *obs.Timeline
	started bool
	// walkSeen/walkEpoch are WalkPath's loop-detection scratch; the epoch
	// makes reuse O(1) instead of clearing per walk.
	walkSeen  []uint32
	walkEpoch uint32
	// flows is the optional fluid/hybrid traffic engine (see fluid.go);
	// nil when every flow is packet-simulated.
	flows *FlowSet
	// nodeDown maps a failed node to the links its failure took down, so
	// RecoverNode restores exactly those (and only those) that no other
	// failed node still holds down. Nil until the first FailNode.
	nodeDown map[NodeID][]topology.Edge
	// root is the sequential/coordinator execution context; it aliases
	// the fields above, so non-sharded runs behave exactly as before.
	root *exec
	// Sharded-mode state (see shard.go); all nil/false in sequential runs.
	shards       []*exec
	assign       []int32
	coord        *sim.Coordinator
	windowActive bool
	obsIdx       []int    // scratch for the observer replay k-way merge
	obsSeq       []obsRef // scratch for the merged replay order (rewind + step)
	drainIdx     []int    // scratch for the outbox drain k-way merge
}

// New returns an empty network using the given engine and link parameters.
// A nil observer is replaced with NopObserver.
func New(s *sim.Simulator, cfg Config, o Observer) *Network {
	if cfg.LinkRateBps <= 0 {
		panic("netsim: LinkRateBps must be positive")
	}
	if o == nil {
		o = NopObserver{}
	}
	n := &Network{sim: s, cfg: cfg, links: make(map[topology.Edge]*Link), observer: o}
	n.root = &exec{id: -1, net: n, sim: s, stats: &n.stats}
	return n
}

// FromGraph returns a network with one node per graph node and one link per
// graph edge. Node port tables, neighbor lists, and the link map are
// presized from the graph's degrees, so building a 100k-node network does
// not pay for repeated regrowth.
func FromGraph(s *sim.Simulator, g *topology.Graph, cfg Config, o Observer) *Network {
	n := New(s, cfg, o)
	edges := g.Edges()
	n.nodes = make([]*Node, 0, g.Len())
	n.links = make(map[topology.Edge]*Link, len(edges))
	for i := 0; i < g.Len(); i++ {
		node := n.AddNode()
		nbrs := g.Neighbors(topology.NodeID(i))
		if len(nbrs) == 0 {
			continue
		}
		maxNbr := nbrs[0]
		for _, v := range nbrs[1:] {
			if v > maxNbr {
				maxNbr = v
			}
		}
		node.ports = make([]*port, int(maxNbr)+1)
		node.neighbors = make([]NodeID, 0, len(nbrs))
	}
	for _, e := range edges {
		n.Connect(e.A, e.B)
	}
	return n
}

// Sim returns the driving simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Instrument attaches an obs metrics set and/or convergence timeline to the
// network. Either may be nil; instrumentation is strictly passive (no
// events scheduled, no randomness consumed), so attaching it never changes
// simulation outcomes. Call before Start.
func (n *Network) Instrument(m *obs.Metrics, tl *obs.Timeline) {
	n.met = m
	n.tl = tl
	n.root.met = m
	n.root.tl = tl
}

// Metrics returns the attached obs counter set (nil when uninstrumented).
func (n *Network) Metrics() *obs.Metrics { return n.met }

// Timeline returns the attached convergence timeline (nil when
// uninstrumented).
func (n *Network) Timeline() *obs.Timeline { return n.tl }

// Stats returns the network-wide counters accumulated so far. In a
// sharded run the per-shard counters are folded in; call only between
// windows (or after the run), never from a window event.
func (n *Network) Stats() Stats {
	s := n.stats
	for _, ex := range n.shards {
		s.add(ex.stats)
	}
	return s
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.nodes) }

// AddNode creates a new node and returns it.
func (n *Network) AddNode() *Node {
	node := &Node{
		id:   NodeID(len(n.nodes)),
		net:  n,
		exec: n.root,
	}
	node.rng = sim.NewStream(n.sim.Seed(), uint64(node.id))
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Connect creates a duplex link between a and b with the network's link
// parameters. Connecting an existing pair panics (a model bug).
func (n *Network) Connect(a, b NodeID) *Link {
	e := topology.NewEdge(a, b)
	if _, dup := n.links[e]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %d-%d", a, b))
	}
	na, nb := n.nodes[a], n.nodes[b]
	l := &Link{net: n, edge: e}
	l.dir[0] = &port{owner: na, peer: nb, link: l}
	l.dir[1] = &port{owner: nb, peer: na, link: l}
	na.setPort(b, l.dir[0])
	nb.setPort(a, l.dir[1])
	na.neighbors = insertSorted(na.neighbors, b)
	nb.neighbors = insertSorted(nb.neighbors, a)
	n.links[e] = l
	n.linkList = nil
	return l
}

// Link returns the link between a and b, or nil when none exists.
func (n *Network) Link(a, b NodeID) *Link { return n.links[topology.NewEdge(a, b)] }

// Links returns all links sorted by edge. The result is cached between
// topology changes; callers must not modify it.
func (n *Network) Links() []*Link {
	if n.linkList != nil {
		return n.linkList
	}
	edges := make([]topology.Edge, 0, len(n.links))
	for e := range n.links {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	out := make([]*Link, len(edges))
	for i, e := range edges {
		out[i] = n.links[e]
	}
	n.linkList = out
	return out
}

// Start invokes every attached protocol's Start in node-ID order. It must
// be called exactly once, after all nodes, links, and protocols are in
// place.
func (n *Network) Start() {
	if n.started {
		panic("netsim: Start called twice")
	}
	n.started = true
	for _, node := range n.nodes {
		if node.proto != nil {
			node.proto.Start()
		}
	}
}

// FailLink takes the a-b link down immediately. Packets in flight or
// subsequently transmitted onto it are lost; after DetectDelay both ends'
// protocols receive LinkDown.
func (n *Network) FailLink(a, b NodeID) {
	l := n.links[topology.NewEdge(a, b)]
	if l == nil {
		panic(fmt.Sprintf("netsim: FailLink(%d,%d): no such link", a, b))
	}
	if l.down {
		return
	}
	if n.flows != nil {
		// Settle fluid traffic against the graph that carried it before
		// the link state flips (and demote crossing flows in hybrid mode).
		n.flows.linkChanged(a, b)
	}
	l.down = true
	n.tl.Link(n.sim.Now(), obs.KindLinkDown, int(a), int(b))
	n.sim.Schedule(n.cfg.DetectDelay, func() {
		if !l.down || l.detectedDown {
			return // recovered before detection, or already detected
		}
		l.detectedDown = true
		n.tl.Link(n.sim.Now(), obs.KindLinkDownDetected, int(a), int(b))
		n.notifyLink(l, false)
	})
}

// RestoreLink brings the a-b link back up; after DetectDelay both ends'
// protocols receive LinkUp.
func (n *Network) RestoreLink(a, b NodeID) {
	l := n.links[topology.NewEdge(a, b)]
	if l == nil {
		panic(fmt.Sprintf("netsim: RestoreLink(%d,%d): no such link", a, b))
	}
	if !l.down {
		return
	}
	if n.flows != nil {
		n.flows.linkChanged(a, b)
	}
	l.down = false
	n.tl.Link(n.sim.Now(), obs.KindLinkUp, int(a), int(b))
	n.sim.Schedule(n.cfg.DetectDelay, func() {
		if l.down || !l.detectedDown {
			return // failed again before detection, or failure never detected
		}
		l.detectedDown = false
		n.tl.Link(n.sim.Now(), obs.KindLinkUpDetected, int(a), int(b))
		n.notifyLink(l, true)
	})
}

// FailNode fails the node: every incident link that is currently up goes
// down (with the usual detection delay at both ends). The node's protocol
// keeps running but is isolated — a simplification documented in
// SCENARIOS.md. FailNode on an already-failed node is a no-op. It returns
// the number of links the failure took down.
func (n *Network) FailNode(id NodeID) int {
	if n.nodeDown == nil {
		n.nodeDown = make(map[NodeID][]topology.Edge)
	}
	if _, dup := n.nodeDown[id]; dup {
		return 0
	}
	node := n.nodes[id]
	var took []topology.Edge
	for _, nb := range node.neighbors {
		if l := node.portTo(nb).link; !l.down {
			n.FailLink(id, nb)
			took = append(took, topology.NewEdge(id, nb))
		}
	}
	n.nodeDown[id] = took
	n.tl.Node(n.sim.Now(), obs.KindNodeDown, int(id))
	return len(took)
}

// RecoverNode recovers a failed node: the links its failure took down come
// back up, except links whose other endpoint is itself still failed (those
// return when that node recovers). A no-op for nodes not failed by
// FailNode.
func (n *Network) RecoverNode(id NodeID) {
	took, ok := n.nodeDown[id]
	if !ok {
		return
	}
	delete(n.nodeDown, id)
	for _, e := range took {
		other := e.A
		if other == id {
			other = e.B
		}
		if _, stillDown := n.nodeDown[other]; stillDown {
			continue
		}
		if l := n.links[e]; l != nil && l.down {
			n.RestoreLink(e.A, e.B)
		}
	}
	n.tl.Node(n.sim.Now(), obs.KindNodeUp, int(id))
}

// lossSalt decorrelates the per-port packet-loss streams from the per-node
// jitter and per-source traffic streams sharing the simulator seed.
const lossSalt = 0x6c6f7373796c6e6b // "lossylnk"

// SetLinkLoss sets the a-b link's random packet-loss probability: every
// packet completing serialization in either direction is dropped with
// probability p, control and data traffic alike. p = 0 clears the setting.
// Each direction draws from its own per-port sim.Stream (seeded by the
// simulator seed and the directed port identity), so loss decisions depend
// only on that port's own transmission order — sharded runs stay
// bit-for-bit identical to sequential ones.
func (n *Network) SetLinkLoss(a, b NodeID, p float64) {
	l := n.links[topology.NewEdge(a, b)]
	if l == nil {
		panic(fmt.Sprintf("netsim: SetLinkLoss(%d,%d): no such link", a, b))
	}
	for _, pt := range l.dir {
		pt.lossP = p
		if p > 0 && !pt.lossSeeded {
			pt.lossSeeded = true
			pt.lossRng = sim.NewStream(n.sim.Seed()^lossSalt,
				uint64(uint32(pt.owner.id))<<32|uint64(uint32(pt.peer.id)))
		}
	}
	n.tl.LinkLoss(n.sim.Now(), int(a), int(b), p)
}

// CostOutLink gracefully removes the a-b link from service: both ends'
// protocols are notified immediately (maintenance is announced, so there is
// no detection delay) while the link stays physically up — in-flight and
// queued packets still deliver. A no-op if the link is already down or
// costed out.
func (n *Network) CostOutLink(a, b NodeID) {
	l := n.links[topology.NewEdge(a, b)]
	if l == nil {
		panic(fmt.Sprintf("netsim: CostOutLink(%d,%d): no such link", a, b))
	}
	if l.down || l.detectedDown {
		return
	}
	l.detectedDown = true
	n.tl.Link(n.sim.Now(), obs.KindCostOut, int(a), int(b))
	n.notifyLink(l, false)
}

// CostInLink returns a costed-out a-b link to service, notifying both ends'
// protocols immediately. A no-op unless the link is up but costed out.
// (A physical failure and repair cycle clears a cost-out: the repair's
// detection restores the protocols' view.)
func (n *Network) CostInLink(a, b NodeID) {
	l := n.links[topology.NewEdge(a, b)]
	if l == nil {
		panic(fmt.Sprintf("netsim: CostInLink(%d,%d): no such link", a, b))
	}
	if l.down || !l.detectedDown {
		return
	}
	l.detectedDown = false
	n.tl.Link(n.sim.Now(), obs.KindCostIn, int(a), int(b))
	n.notifyLink(l, true)
}

func (n *Network) notifyLink(l *Link, up bool) {
	for _, p := range l.dir {
		if proto := p.owner.proto; proto != nil {
			if up {
				proto.LinkUp(p.peer.id)
			} else {
				proto.LinkDown(p.peer.id)
			}
		}
	}
}

// WalkPath follows forwarding tables from src toward dst and returns the
// nodes visited, starting with src. ok is true only when the walk reaches
// dst without encountering a missing route, a loop, or a down link.
func (n *Network) WalkPath(src, dst NodeID) (path []NodeID, ok bool) {
	if len(n.walkSeen) < len(n.nodes) {
		n.walkSeen = make([]uint32, len(n.nodes))
		n.walkEpoch = 0
	}
	n.walkEpoch++
	if n.walkEpoch == 0 { // epoch wrapped: restart from a clean slate
		clear(n.walkSeen)
		n.walkEpoch = 1
	}
	epoch := n.walkEpoch
	cur := src
	for {
		path = append(path, cur)
		if cur == dst {
			return path, true
		}
		if n.walkSeen[cur] == epoch {
			return path, false // loop
		}
		n.walkSeen[cur] = epoch
		node := n.nodes[cur]
		nh := node.fibGet(dst)
		if nh == noRoute {
			return path, false
		}
		p := node.portTo(nh)
		if p == nil || p.link.down {
			return path, false
		}
		cur = nh
	}
}

// serialization returns the time to clock size bytes onto a link,
// memoized per size (in the root execution context's cache; shard
// contexts carry their own, see exec.serialization).
func (n *Network) serialization(size int) time.Duration {
	return n.root.serialization(size)
}

// dropCounter maps a DropReason to its obs data-drop counter (reasons
// start at 1; index 0 is unused).
var dropCounter = [numDropReasons]obs.Counter{
	DropNoRoute:       obs.DropNoRoute,
	DropTTLExpired:    obs.DropTTLExpired,
	DropQueueOverflow: obs.DropQueueOverflow,
	DropLinkFailure:   obs.DropLinkFailure,
	DropRandomLoss:    obs.DropRandomLoss,
}

// drop accounts a lost packet in the executing shard's context ex — the
// context whose event loop is running the losing event, which for
// propagation-phase losses can differ from the shard owning `where`.
func (n *Network) drop(ex *exec, where NodeID, pkt *Packet, reason DropReason) {
	if pkt.Control() {
		ex.stats.ControlDrops[reason]++
		ex.met.Inc(obs.ControlDropped)
	} else {
		ex.stats.DataDrops[reason]++
		ex.met.Inc(dropCounter[reason])
		ex.met.PacketOut()
	}
	ex.packetDropped(ex.sim.Now(), where, pkt, reason)
	ex.releasePooled(pkt)
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Link is a duplex link between two nodes: two independent directional
// transmitters sharing one up/down state.
type Link struct {
	net  *Network
	edge topology.Edge
	dir  [2]*port
	down bool
	// detectedDown tracks whether the attached protocols currently believe
	// the link is down, so that flaps shorter than the detection window
	// produce no notifications at all.
	detectedDown bool
}

// Edge returns the canonical node pair the link connects.
func (l *Link) Edge() topology.Edge { return l.edge }

// Up reports whether the link is currently up.
func (l *Link) Up() bool { return !l.down }

// PortCounters are per-direction link transmission counters.
type PortCounters struct {
	// TxPackets and TxBytes count everything clocked onto the wire,
	// including packets later lost to the link failing mid-flight.
	TxPackets, TxBytes uint64
	// QueueDrops counts data packets rejected by the full output queue.
	QueueDrops uint64
}

// Counters returns the transmission counters for the direction from the
// given node. It returns the zero value if from is not an endpoint.
func (l *Link) Counters(from NodeID) PortCounters {
	for _, p := range l.dir {
		if p.owner.id == from {
			return p.counters
		}
	}
	return PortCounters{}
}

// Typed port event kinds: the wire is modeled with two pooled events per
// transmission instead of two heap-allocated closures.
const (
	// portSerDone: the last bit left the transmitter.
	portSerDone int32 = iota
	// portPropDone: the last bit arrived at the far end.
	portPropDone
)

// port is one direction of a link: the transmitter owned by owner sending
// toward peer. Its output queue is a power-of-two ring buffer.
type port struct {
	owner    *Node
	peer     *Node
	link     *Link
	queue    []*Packet // ring; len is 0 or a power of two
	head     int       // index of the oldest queued packet
	count    int       // packets in the ring
	inQ      int       // data packets in the ring
	busy     bool
	counters PortCounters
	// lossP, when positive, drops each packet completing serialization
	// with that probability (scenario lossy links, SetLinkLoss). lossRng
	// is this direction's private stream, seeded on first use so
	// loss-free runs never pay for it.
	lossP      float64
	lossRng    sim.Stream
	lossSeeded bool
}

var _ sim.Handler = (*port)(nil)

// send enqueues a packet for transmission, dropping data packets when the
// data queue is full. Control packets are exempt from the cap (reliable
// transport stand-in, see DESIGN.md). ex is the caller's execution
// context (the owner's shard during windows, the root at barriers).
func (p *port) send(ex *exec, pkt *Packet) {
	if p.busy {
		if !pkt.Control() && p.inQ >= p.owner.net.cfg.QueueLimit {
			p.counters.QueueDrops++
			p.owner.net.drop(ex, p.owner.id, pkt, DropQueueOverflow)
			return
		}
		p.push(pkt)
		if !pkt.Control() {
			p.inQ++
			ex.met.ObserveQueueDepth(p.inQ)
		}
		return
	}
	p.transmit(pkt)
}

// transmit clocks the packet onto the wire. If the link is (or goes) down
// before the packet would arrive, the packet is lost. The serialization
// event always runs on the owning node's shard, whoever initiated the
// transmission.
func (p *port) transmit(pkt *Packet) {
	p.busy = true
	p.counters.TxPackets++
	p.counters.TxBytes += uint64(pkt.Size)
	ex := p.owner.exec
	ex.sim.ScheduleHandler(ex.serialization(pkt.Size), p, portSerDone, pkt)
}

// HandleEvent implements sim.Handler: the serialization-done and
// propagation-done phases of one packet's flight. Serialization events
// run on the transmitting node's shard; propagation events on the
// receiving node's shard — when those differ, the packet crosses through
// the barrier inbox exchange with the link delay as lookahead.
func (p *port) HandleEvent(kind int32, data any) {
	pkt := data.(*Packet)
	net := p.owner.net
	switch kind {
	case portSerDone:
		ex := p.owner.exec
		p.busy = false
		if p.count > 0 {
			next := p.pop()
			if !next.Control() {
				p.inQ--
			}
			p.transmit(next)
		}
		if p.link.down {
			net.drop(ex, p.owner.id, pkt, DropLinkFailure)
			return
		}
		if p.lossP > 0 && p.lossRng.Float64() < p.lossP {
			net.drop(ex, p.owner.id, pkt, DropRandomLoss)
			return
		}
		if peer := p.peer.exec; peer != ex {
			ex.outbox[peer.id] = append(ex.outbox[peer.id],
				crossMsg{at: ex.sim.Now() + net.cfg.LinkDelay, p: p, pkt: pkt})
			return
		}
		ex.sim.ScheduleHandler(net.cfg.LinkDelay, p, portPropDone, pkt)
	case portPropDone:
		if p.link.down {
			net.drop(p.peer.exec, p.owner.id, pkt, DropLinkFailure)
			return
		}
		p.peer.receive(p.owner.id, pkt)
	}
}

// push appends to the ring, growing it when full.
func (p *port) push(pkt *Packet) {
	if p.count == len(p.queue) {
		size := 2 * len(p.queue)
		if size == 0 {
			size = 8
		}
		grown := make([]*Packet, size)
		for i := 0; i < p.count; i++ {
			grown[i] = p.queue[(p.head+i)&(len(p.queue)-1)]
		}
		p.queue = grown
		p.head = 0
	}
	p.queue[(p.head+p.count)&(len(p.queue)-1)] = pkt
	p.count++
}

// pop removes and returns the oldest queued packet.
func (p *port) pop() *Packet {
	pkt := p.queue[p.head]
	p.queue[p.head] = nil
	p.head = (p.head + 1) & (len(p.queue) - 1)
	p.count--
	return pkt
}
