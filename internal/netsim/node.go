package netsim

import (
	"fmt"
	"time"

	"routeconv/internal/obs"
	"routeconv/internal/sim"
)

// Protocol is a routing protocol instance attached to one node. All methods
// run synchronously inside the event loop.
type Protocol interface {
	// Start begins protocol operation (initial announcements, periodic
	// timers). Called once by Network.Start.
	Start()
	// HandleMessage delivers a routing message received from a directly
	// connected neighbor.
	HandleMessage(from NodeID, msg Message)
	// LinkDown reports that the link to neighbor has been detected failed.
	LinkDown(neighbor NodeID)
	// LinkUp reports that the link to neighbor has been detected restored.
	LinkUp(neighbor NodeID)
}

// noRoute marks an empty FIB slot. Node IDs are contiguous from 0, so the
// FIB and port table are dense slices indexed by NodeID rather than maps.
const noRoute NodeID = -1

// Node is a router: it owns a forwarding table (FIB), output ports, and
// optionally a routing protocol that maintains the FIB.
type Node struct {
	id  NodeID
	net *Network
	// exec is the execution context the node's events run against: the
	// network's root context, or the node's shard in a sharded run.
	exec *exec
	// rng is the node's private random stream. Protocol jitter draws from
	// it instead of the shared simulator RNG so the sequence each node
	// sees depends only on its own event order — which sharded execution
	// preserves — rather than on the global interleaving.
	rng sim.Stream
	// ports is indexed by neighbor ID; nil entries are non-neighbors.
	ports     []*port
	neighbors []NodeID // sorted; gives protocols a deterministic iteration order
	// fib is indexed by destination ID; noRoute entries are empty.
	fib []NodeID
	// backup holds precomputed protection next hops (fast reroute), in
	// preference order: used the instant the primary is unusable, without
	// waiting for protocol convergence.
	backup map[NodeID][]NodeID
	// multi holds equal-cost multipath sets installed by ECMP-capable
	// protocols; flows hash across them.
	multi map[NodeID][]NodeID
	proto Protocol
}

// ID returns the node's identifier.
func (nd *Node) ID() NodeID { return nd.id }

// Sim returns the simulator driving this node's events, for protocol
// timers: the network's simulator, or the shard's in a sharded run.
func (nd *Node) Sim() *sim.Simulator { return nd.exec.sim }

// Jitter returns a duration uniform on [lo, hi] from the node's private
// random stream. Protocols must draw their timer jitter here rather than
// from Sim().Rand(): the shared RNG's sequence depends on global event
// interleaving, which sharded execution does not reproduce.
func (nd *Node) Jitter(lo, hi time.Duration) time.Duration { return nd.rng.Jitter(lo, hi) }

// Metrics returns the obs counter set this node's events record into, for
// protocol-level counters. It reads through the execution context at call
// time, so attach order relative to Network.Instrument does not matter;
// nil (a no-op recorder) when the network is uninstrumented.
func (nd *Node) Metrics() *obs.Metrics { return nd.exec.met }

// Timeline returns the convergence timeline this node's events record
// into, for protocol-level records (withdrawals, flap damping). Nil when
// uninstrumented.
func (nd *Node) Timeline() *obs.Timeline { return nd.exec.tl }

// NetworkSize returns the number of nodes in the network. Node IDs are
// contiguous from 0, so protocols use it to size dense per-destination
// tables up front.
func (nd *Node) NetworkSize() int { return len(nd.net.nodes) }

// Neighbors returns the node's directly connected neighbors in ascending ID
// order. The slice is owned by the node; callers must not modify it.
func (nd *Node) Neighbors() []NodeID { return nd.neighbors }

// portTo returns the output port toward the given node, or nil when it is
// not a neighbor.
func (nd *Node) portTo(id NodeID) *port {
	if int(id) < len(nd.ports) && id >= 0 {
		return nd.ports[id]
	}
	return nil
}

// setPort installs the output port toward a new neighbor, doubling the
// table so repeated growth stays amortized.
func (nd *Node) setPort(id NodeID, p *port) {
	if int(id) >= len(nd.ports) {
		n := int(id) + 1
		if n < 2*len(nd.ports) {
			n = 2 * len(nd.ports)
		}
		grown := make([]*port, n)
		copy(grown, nd.ports)
		nd.ports = grown
	}
	nd.ports[id] = p
}

// fibGet returns the FIB entry for dst, or noRoute.
func (nd *Node) fibGet(dst NodeID) NodeID {
	if int(dst) < len(nd.fib) && dst >= 0 {
		return nd.fib[dst]
	}
	return noRoute
}

// fibSet writes the FIB entry for dst, growing the table on first sight of
// a high destination ID. The first route on any node sizes the FIB to the
// whole network (every destination gets an entry eventually), and growth
// past that doubles, so convergence on a large graph never pays a
// per-destination grow-and-copy.
func (nd *Node) fibSet(dst, nextHop NodeID) {
	if int(dst) >= len(nd.fib) {
		n := int(dst) + 1
		if n < 2*len(nd.fib) {
			n = 2 * len(nd.fib)
		}
		if full := len(nd.net.nodes); n < full {
			n = full
		}
		grown := make([]NodeID, n)
		copy(grown, nd.fib)
		for i := len(nd.fib); i < len(grown); i++ {
			grown[i] = noRoute
		}
		nd.fib = grown
	}
	nd.fib[dst] = nextHop
}

// LinkUpTo reports whether the link to the neighbor is currently up.
// It returns false for nodes that are not neighbors.
func (nd *Node) LinkUpTo(neighbor NodeID) bool {
	p := nd.portTo(neighbor)
	return p != nil && !p.link.down
}

// AttachProtocol binds a protocol instance to the node. It must be called
// before Network.Start.
func (nd *Node) AttachProtocol(p Protocol) {
	if nd.net.started {
		panic("netsim: AttachProtocol after Start")
	}
	nd.proto = p
}

// Protocol returns the attached protocol, or nil.
func (nd *Node) Protocol() Protocol { return nd.proto }

// SetRoute installs nextHop as the forwarding entry for dst. nextHop must
// be a directly connected neighbor.
func (nd *Node) SetRoute(dst, nextHop NodeID) {
	if nd.portTo(nextHop) == nil {
		panic(fmt.Sprintf("netsim: node %d: next hop %d is not a neighbor", nd.id, nextHop))
	}
	prev := nd.fibGet(dst)
	if prev == nextHop {
		return
	}
	ex := nd.ctx()
	nd.fluidDirty(ex, dst)
	nd.fibSet(dst, nextHop)
	ex.met.Inc(obs.FIBChanges)
	ex.tl.FIBChange(ex.sim.Now(), int(nd.id), int(dst), int(nextHop))
	ex.routeChanged(ex.sim.Now(), nd.id, dst, nextHop, prev, false)
}

// fluidDirty settles fluid traffic for dst against the entry in force
// while it accrued, before the forwarding graph changes underneath it —
// immediately in sequential/coordinator contexts, or deferred to the next
// barrier from a shard window (the FlowSet runs only on the coordinator).
func (nd *Node) fluidDirty(ex *exec, dst NodeID) {
	if nd.net.flows == nil {
		return
	}
	if ex.id >= 0 {
		ex.dirty = append(ex.dirty, dirtyRoute{node: nd.id, dst: dst})
		return
	}
	nd.net.flows.fibChanged(nd.id, dst)
}

// ClearRoute removes the forwarding entry for dst, if any.
func (nd *Node) ClearRoute(dst NodeID) {
	prev := nd.fibGet(dst)
	if prev == noRoute {
		return
	}
	ex := nd.ctx()
	nd.fluidDirty(ex, dst)
	nd.fib[dst] = noRoute
	ex.met.Inc(obs.FIBRemovals)
	ex.tl.FIBRemove(ex.sim.Now(), int(nd.id), int(dst))
	ex.routeChanged(ex.sim.Now(), nd.id, dst, 0, prev, true)
}

// NextHop returns the current forwarding entry for dst.
func (nd *Node) NextHop(dst NodeID) (NodeID, bool) {
	nh := nd.fibGet(dst)
	return nh, nh != noRoute
}

// SetBackupRoutes installs precomputed protection next hops for dst, in
// preference order — the "alternate path always ready at the line card" of
// the paper's related work ([1] IGP fast reroute, [27] emergency exits).
// They are consulted only when the primary next hop is unusable (link
// physically down, or route withdrawn) and are not touched by routing
// protocols. The first backup whose link is up wins.
func (nd *Node) SetBackupRoutes(dst NodeID, nextHops []NodeID) {
	for _, nh := range nextHops {
		if nd.portTo(nh) == nil {
			panic(fmt.Sprintf("netsim: node %d: backup next hop %d is not a neighbor", nd.id, nh))
		}
	}
	if nd.backup == nil {
		nd.backup = make(map[NodeID][]NodeID)
	}
	nd.backup[dst] = nextHops
}

// ClearBackupRoutes removes the protection entries for dst, if any.
func (nd *Node) ClearBackupRoutes(dst NodeID) { delete(nd.backup, dst) }

// SetMultipath installs an equal-cost multipath set for dst. Flows are
// hashed across the set (per source/destination pair, so a flow's packets
// stay ordered); next hops with down links are skipped. SetRoute still
// controls the canonical single next hop used by WalkPath and convergence
// metrics. An empty or single-entry set clears multipath forwarding.
func (nd *Node) SetMultipath(dst NodeID, nextHops []NodeID) {
	for _, nh := range nextHops {
		if nd.portTo(nh) == nil {
			panic(fmt.Sprintf("netsim: node %d: multipath next hop %d is not a neighbor", nd.id, nh))
		}
	}
	if len(nextHops) >= 2 || nd.multi[dst] != nil {
		nd.fluidDirty(nd.ctx(), dst)
	}
	if len(nextHops) < 2 {
		delete(nd.multi, dst)
		return
	}
	if nd.multi == nil {
		nd.multi = make(map[NodeID][]NodeID)
	}
	nd.multi[dst] = nextHops
}

// Multipath returns the equal-cost set for dst (nil when single-path).
// The slice is owned by the node; callers must not modify it.
func (nd *Node) Multipath(dst NodeID) []NodeID { return nd.multi[dst] }

// flowHash gives a stable per-flow starting index into an ECMP set, using
// a splitmix64-style finalizer for good avalanche in the low bits.
func flowHash(src, dst NodeID, n int) int {
	h := uint64(src)<<32 ^ uint64(uint32(dst))
	h ^= h >> 30
	h *= 0xBF58_476D_1CE4_E5B9
	h ^= h >> 27
	h *= 0x94D0_49BB_1331_11EB
	h ^= h >> 31
	return int(h % uint64(n))
}

// BackupRoutes returns the protection next hops for dst in preference
// order. The slice is owned by the node; callers must not modify it.
func (nd *Node) BackupRoutes(dst NodeID) []NodeID { return nd.backup[dst] }

// SendControl transmits a routing message to a directly connected neighbor.
// The message rides the link like any packet (serialization, propagation,
// loss on a failed link) but is exempt from the data queue cap.
func (nd *Node) SendControl(to NodeID, msg Message) {
	p := nd.portTo(to)
	if p == nil {
		panic(fmt.Sprintf("netsim: node %d: SendControl to non-neighbor %d", nd.id, to))
	}
	ex := nd.ctx()
	pkt := &Packet{
		ID:      ex.nextID,
		Src:     nd.id,
		Dst:     to,
		Size:    msg.SizeBytes(),
		Payload: msg,
		Created: ex.sim.Now(),
	}
	ex.nextID++
	ex.stats.ControlSent++
	ex.stats.ControlBytes += uint64(pkt.Size)
	ex.met.Inc(obs.ControlSent)
	ex.met.Add(obs.ControlBytes, uint64(pkt.Size))
	p.send(ex, pkt)
}

// SendData injects a new data packet addressed to dst and forwards it
// according to the node's FIB.
func (nd *Node) SendData(dst NodeID, size, ttl int) {
	ex := nd.ctx()
	pkt := &Packet{
		ID:      ex.nextID,
		Src:     nd.id,
		Dst:     dst,
		TTL:     ttl,
		Size:    size,
		Created: ex.sim.Now(),
	}
	ex.nextID++
	ex.stats.DataSent++
	ex.met.Inc(obs.PacketsSent)
	ex.met.PacketIn()
	if nd.net.cfg.RecordHops {
		pkt.Trace = append(pkt.Trace, nd.id)
	}
	nd.forward(ex, pkt)
}

// receive handles a packet arriving from a neighbor. It always executes
// on the node's own shard (propagation events run on the receiving side).
func (nd *Node) receive(from NodeID, pkt *Packet) {
	ex := nd.exec
	if pkt.Control() {
		ex.met.Inc(obs.ControlReceived)
		if nd.proto != nil {
			nd.proto.HandleMessage(from, pkt.Payload)
		}
		ex.releasePooled(pkt)
		return
	}
	pkt.HopCount++
	if nd.net.cfg.RecordHops {
		pkt.Trace = append(pkt.Trace, nd.id)
	}
	if pkt.Dst == nd.id {
		ex.stats.DataDelivered++
		ex.met.Inc(obs.PacketsDelivered)
		ex.met.PacketOut()
		ex.packetDelivered(ex.sim.Now(), pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		nd.net.drop(ex, nd.id, pkt, DropTTLExpired)
		return
	}
	nd.forward(ex, pkt)
}

// forward looks up the FIB and queues the packet on the corresponding
// output port. When the primary is unusable — its link is physically down,
// or the control plane has withdrawn the route entirely — and a protection
// entry exists, the packet deflects to the backup immediately (fast
// reroute: the backup lives below the routing table, like a line-card
// protection entry).
func (nd *Node) forward(ex *exec, pkt *Packet) {
	var p *port
	if nd.multi != nil {
		if set := nd.multi[pkt.Dst]; len(set) > 1 {
			// ECMP: start at the flow's hash slot and take the first next hop
			// whose link is up.
			start := flowHash(pkt.Src, pkt.Dst, len(set))
			for i := range set {
				if mp := nd.portTo(set[(start+i)%len(set)]); mp != nil && !mp.link.down {
					p = mp
					break
				}
			}
		}
	}
	if p == nil {
		if nh := nd.fibGet(pkt.Dst); nh != noRoute {
			p = nd.ports[nh]
		}
	}
	if p == nil || p.link.down {
		if nd.backup != nil {
			for _, alt := range nd.backup[pkt.Dst] {
				if ap := nd.portTo(alt); ap != nil && !ap.link.down {
					p = ap
					break
				}
			}
		}
	}
	if p == nil {
		nd.net.drop(ex, nd.id, pkt, DropNoRoute)
		return
	}
	ex.met.Inc(obs.PacketsForwarded)
	p.send(ex, pkt)
}

// CBR generates constant-bit-rate data traffic from one node to a fixed
// destination: the paper's single sender workload (§5).
type CBR struct {
	node     *Node
	dst      NodeID
	interval time.Duration
	size     int
	ttl      int
	stopAt   time.Duration
	event    sim.Event
}

var _ sim.Handler = (*CBR)(nil)

// StartCBR begins sending size-byte packets with the given TTL from node to
// dst every interval, from virtual time start until stop (exclusive).
func StartCBR(node *Node, dst NodeID, interval time.Duration, size, ttl int, start, stop time.Duration) *CBR {
	if interval <= 0 {
		panic("netsim: CBR interval must be positive")
	}
	c := &CBR{node: node, dst: dst, interval: interval, size: size, ttl: ttl, stopAt: stop}
	c.event = node.Sim().ScheduleHandlerAt(start, c, 0, nil)
	return c
}

// Stop halts the source.
func (c *CBR) Stop() {
	c.event.Cancel()
	c.event = sim.Event{}
}

// HandleEvent implements sim.Handler: one tick sends one packet and
// schedules the next, allocation-free.
func (c *CBR) HandleEvent(int32, any) {
	now := c.node.Sim().Now()
	if now >= c.stopAt {
		c.event = sim.Event{}
		return
	}
	c.node.SendData(c.dst, c.size, c.ttl)
	c.event = c.node.Sim().ScheduleHandler(c.interval, c, 0, nil)
}
