package netsim

import (
	"testing"

	"routeconv/internal/obs"
)

// One-hop data forwarding must allocate exactly one object per packet: the
// Packet itself. Port events, queue slots, and FIB lookups all reuse pooled
// or dense storage.
func TestForwardingOneHopAllocs(t *testing.T) {
	s, net := benchLine(2)
	src := net.Node(0)
	// Warm up the event arena, the port ring, and the serialization cache.
	for i := 0; i < 16; i++ {
		src.SendData(1, 1000, 64)
		s.Run()
	}
	before := net.Stats().DataDelivered
	const runs = 1000
	avg := testing.AllocsPerRun(runs, func() {
		src.SendData(1, 1000, 64)
		s.Run()
	})
	if avg > 1 {
		t.Errorf("one-hop forwarding allocates %.1f objects per packet, want 1 (the Packet)", avg)
	}
	if got := net.Stats().DataDelivered - before; got < runs {
		t.Fatalf("delivered %d packets during the guard, want ≥ %d", got, runs)
	}
}

// Enabling the obs counters must not add a single allocation to the
// forwarding path: counting is fixed-array arithmetic on a pre-allocated
// Metrics. (The timeline is deliberately absent here — it records only
// control-plane events, so the data path never touches it.)
func TestForwardingInstrumentedAllocs(t *testing.T) {
	s, net := benchLine(2)
	met := obs.NewMetrics()
	net.Instrument(met, nil)
	src := net.Node(0)
	for i := 0; i < 16; i++ {
		src.SendData(1, 1000, 64)
		s.Run()
	}
	const runs = 1000
	avg := testing.AllocsPerRun(runs, func() {
		src.SendData(1, 1000, 64)
		s.Run()
	})
	if avg > 1 {
		t.Errorf("instrumented one-hop forwarding allocates %.1f objects per packet, want 1 (the Packet)", avg)
	}
	if got := met.Get(obs.PacketsDelivered); got < runs {
		t.Fatalf("metrics counted %d delivered packets, want ≥ %d", got, runs)
	}
}
