package netsim

import (
	"testing"
	"time"

	"routeconv/internal/sim"
)

// shardedLine builds a 4-node line 0-1-2-3 split across two shards
// (0,1 | 2,3) with static routes toward node 3 and no protocols, so the
// cut between nodes 1 and 2 exercises the cross-shard outbox path.
func shardedLine() *Network {
	s := sim.New(1)
	net := New(s, DefaultConfig(), nil)
	for i := 0; i < 4; i++ {
		net.AddNode()
	}
	for i := 0; i < 3; i++ {
		net.Connect(NodeID(i), NodeID(i+1))
	}
	net.EnableSharding([]int32{0, 0, 1, 1}, 2)
	for i := 0; i < 3; i++ {
		net.Node(NodeID(i)).SetRoute(3, NodeID(i+1))
	}
	net.Start()
	return net
}

// A quiet network must advance sharded windows without allocating: the
// coordinator barrier, the observer replay merge, the release flush, and
// the outbox drain all run on reused scratch, so idle window churn costs
// zero garbage no matter how many barriers a trial crosses.
func TestShardedQuietWindowAllocs(t *testing.T) {
	net := shardedLine()
	defer net.FinishSharding()
	cur := time.Duration(0)
	advance := func() {
		cur += time.Millisecond
		net.RunSharded(cur)
	}
	for i := 0; i < 16; i++ {
		advance()
	}
	if avg := testing.AllocsPerRun(1000, advance); avg != 0 {
		t.Errorf("quiet sharded window advance allocates %.1f objects, want 0", avg)
	}
}

// Steady-state cross-shard forwarding must cost exactly what sequential
// forwarding costs: one object per packet, the Packet itself. The
// per-pair outboxes, the barrier hand-off into the destination shard,
// and the buffered observer events all reuse warmed storage.
func TestShardedCrossTrafficAllocs(t *testing.T) {
	net := shardedLine()
	StartCBR(net.Node(0), 3, time.Millisecond, 1000, 64, 0, time.Hour)
	cur := time.Duration(0)
	advance := func() {
		cur += time.Millisecond
		net.RunSharded(cur)
	}
	// Warm the event arenas, outbox buffers, and observer event slices on
	// both shards: the pipeline is full once deliveries keep pace with
	// sends.
	for i := 0; i < 64; i++ {
		advance()
	}
	const runs = 1000
	avg := testing.AllocsPerRun(runs, advance)
	if avg > 1 {
		t.Errorf("sharded cross-shard forwarding allocates %.1f objects per packet, want 1 (the Packet)", avg)
	}
	net.FinishSharding()
	if got := net.Stats().DataDelivered; got < runs {
		t.Fatalf("delivered %d packets across the shard cut, want ≥ %d", got, runs)
	}
}
