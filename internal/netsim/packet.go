// Package netsim is the packet-level network substrate: nodes with
// forwarding tables, duplex links with serialization and propagation delay
// and finite FIFO queues, hop-by-hop forwarding with TTL, failure
// injection, and per-cause drop accounting. It replaces the IRLSim
// simulator used by the paper.
package netsim

import (
	"fmt"
	"time"

	"routeconv/internal/topology"
)

// NodeID identifies a node in the network. It is shared with the topology
// package so graphs map directly onto networks.
type NodeID = topology.NodeID

// DropReason classifies why a packet was lost. The paper's figures depend
// on distinguishing no-route drops (Figure 3) from TTL expirations caused
// by transient loops (Figure 4).
type DropReason int

// Drop reasons, in the order the forwarding path checks them.
const (
	// DropNoRoute: the node had no forwarding entry for the destination —
	// the path switch-over period of §4.1.
	DropNoRoute DropReason = iota + 1
	// DropTTLExpired: the packet ran out of hops, in this study always due
	// to a transient forwarding loop (§5.2).
	DropTTLExpired
	// DropQueueOverflow: the output port's finite data queue was full.
	DropQueueOverflow
	// DropLinkFailure: the packet was transmitted onto a failed link before
	// the failure was detected.
	DropLinkFailure
	// DropRandomLoss: the packet lost a per-packet Bernoulli draw on a
	// scenario-scripted lossy link (SetLinkLoss). Unlike the other causes
	// it hits control traffic too — lossy links break the reliable
	// control-channel assumption on purpose.
	DropRandomLoss
	// numDropReasons sizes arrays indexed by DropReason (reasons start at 1).
	numDropReasons = iota + 1
)

// String returns a short human-readable name for the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropNoRoute:
		return "no-route"
	case DropTTLExpired:
		return "ttl-expired"
	case DropQueueOverflow:
		return "queue-overflow"
	case DropLinkFailure:
		return "link-failure"
	case DropRandomLoss:
		return "random-loss"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Message is a routing-protocol payload carried in a control packet. Its
// size determines the packet's serialization delay.
type Message interface {
	// SizeBytes returns the on-wire size of the message, including
	// transport overhead.
	SizeBytes() int
}

// PooledMessage is a Message drawn from a sender-owned free list. The
// network hands the message back (Release) exactly once, as soon as its
// flight ends: after the receiving protocol's HandleMessage returns, or
// when the carrying packet is lost on a failed link. Protocols and
// observers must therefore not retain a received message — or any storage
// it owns — beyond the delivery call; anything worth keeping must be
// copied out (BGP interns received paths, LS copies the LSA value).
type PooledMessage interface {
	Message
	// Release returns the message to its owner's free list.
	Release()
}

// Packet is a unit of transmission, either a data packet or a link-local
// control packet carrying a routing Message.
type Packet struct {
	// ID is unique per network, in send order.
	ID uint64
	// Src and Dst are the originating and destination nodes. For control
	// packets Dst is the neighbor the message is addressed to.
	Src, Dst NodeID
	// TTL is the remaining hop budget; decremented at each forwarding hop.
	TTL int
	// Size is the on-wire size in bytes.
	Size int
	// Payload is non-nil for control packets.
	Payload Message
	// Created is the virtual time the packet entered the network.
	Created time.Duration
	// HopCount is the number of forwarding hops taken so far.
	HopCount int
	// Trace records the nodes visited, when Config.RecordHops is set.
	Trace []NodeID
}

// Control reports whether the packet carries a routing message.
func (p *Packet) Control() bool { return p.Payload != nil }

// Observer receives simulation events. All methods are called synchronously
// from the event loop; implementations must not retain the packet.
type Observer interface {
	// RouteChanged fires when a node's forwarding entry for dst changes.
	// removed means the entry was deleted; otherwise nextHop is the new
	// next hop.
	RouteChanged(at time.Duration, node, dst, nextHop NodeID, removed bool)
	// PacketDelivered fires when a data packet reaches its destination.
	PacketDelivered(at time.Duration, pkt *Packet)
	// PacketDropped fires when any packet is lost, with the node that lost
	// it and the cause.
	PacketDropped(at time.Duration, where NodeID, pkt *Packet, reason DropReason)
}

// NopObserver is an Observer that ignores every event. Embed it to
// implement only the events of interest.
type NopObserver struct{}

// RouteChanged implements Observer.
func (NopObserver) RouteChanged(time.Duration, NodeID, NodeID, NodeID, bool) {}

// PacketDelivered implements Observer.
func (NopObserver) PacketDelivered(time.Duration, *Packet) {}

// PacketDropped implements Observer.
func (NopObserver) PacketDropped(time.Duration, NodeID, *Packet, DropReason) {}

var _ Observer = NopObserver{}
