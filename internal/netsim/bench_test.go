package netsim

import (
	"fmt"
	"testing"

	"routeconv/internal/sim"
)

// benchLine builds an n-node line 0-1-…-(n-1) with static routes toward
// node n-1 and no protocols attached.
func benchLine(n int) (*sim.Simulator, *Network) {
	s := sim.New(1)
	net := New(s, DefaultConfig(), nil)
	for i := 0; i < n; i++ {
		net.AddNode()
	}
	for i := 0; i < n-1; i++ {
		net.Connect(NodeID(i), NodeID(i+1))
	}
	dst := NodeID(n - 1)
	for i := 0; i < n-1; i++ {
		net.Node(NodeID(i)).SetRoute(dst, NodeID(i+1))
	}
	net.Start()
	return s, net
}

// BenchmarkForwardingOneHop measures injecting a data packet and carrying
// it across a single link: serialization event, propagation event, receive.
func BenchmarkForwardingOneHop(b *testing.B) {
	s, net := benchLine(2)
	src := net.Node(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.SendData(1, 1000, 64)
		s.Run()
	}
	if got := net.Stats().DataDelivered; got != uint64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkForwardingChain measures a packet crossing a 16-hop path, the
// meso-scale cost dominating high-degree sweep cells.
func BenchmarkForwardingChain(b *testing.B) {
	const hops = 16
	s, net := benchLine(hops + 1)
	src := net.Node(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.SendData(NodeID(hops), 1000, 64)
		s.Run()
	}
	if got := net.Stats().DataDelivered; got != uint64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkForwardingQueued measures a saturated port: a burst larger than
// the link can drain, exercising the output queue and overflow path.
func BenchmarkForwardingQueued(b *testing.B) {
	for _, burst := range []int{8, 64} {
		b.Run(fmt.Sprintf("burst%d", burst), func(b *testing.B) {
			s, net := benchLine(2)
			src := net.Node(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < burst; j++ {
					src.SendData(1, 1000, 64)
				}
				s.Run()
			}
		})
	}
}
