package netsim

import (
	"testing"
	"time"

	"routeconv/internal/obs"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// fluidLine builds an n-node line with static routes toward the last
// node and a FlowSet attached.
func fluidLine(t *testing.T, n int, fcfg FlowSetConfig) (*sim.Simulator, *Network, *FlowSet) {
	t.Helper()
	s := sim.New(1)
	net := FromGraph(s, topology.Line(n), DefaultConfig(), nil)
	last := NodeID(n - 1)
	for i := 0; i < n-1; i++ {
		net.Node(NodeID(i)).SetRoute(last, NodeID(i+1))
	}
	fs := net.AttachFlows(fcfg)
	return s, net, fs
}

// TestFluidMatchesPacketQuiescent pins the tentpole's exactness claim: on
// a quiescent network the fluid evaluator's sent/delivered/in-flight
// accounting is identical to running the same CBR flow packet-by-packet —
// including the end-of-run in-flight tail.
func TestFluidMatchesPacketQuiescent(t *testing.T) {
	const (
		interval = 50 * time.Millisecond
		start    = time.Second
		// The horizon cuts the last tick's flight short: 20 ticks are
		// emitted, the 1.95 s one is still on the wire at 1.952 s.
		stop = 1952 * time.Millisecond
		size = 1000
		ttl  = 64
	)

	// Packet reference run.
	ps := sim.New(1)
	pnet := FromGraph(ps, topology.Line(4), DefaultConfig(), nil)
	pmet := obs.NewMetrics()
	pnet.Instrument(pmet, nil)
	for i := 0; i < 3; i++ {
		pnet.Node(NodeID(i)).SetRoute(3, NodeID(i+1))
	}
	StartCBR(pnet.Node(0), 3, interval, size, ttl, start, stop)
	ps.RunUntil(stop)

	// Fluid run of the same flow class.
	fs, fnet, flows := fluidLine(t, 4, FlowSetConfig{Start: start, Stop: stop})
	fmet := obs.NewMetrics()
	fnet.Instrument(fmet, nil)
	flows.Add(0, 3, interval, size, ttl)
	fs.RunUntil(stop)
	flows.Finish()

	p, f := pnet.Stats(), fnet.Stats()
	if p.DataSent != f.DataSent {
		t.Errorf("sent: packet %d, fluid %d", p.DataSent, f.DataSent)
	}
	if p.DataDelivered != f.DataDelivered {
		t.Errorf("delivered: packet %d, fluid %d", p.DataDelivered, f.DataDelivered)
	}
	if p.DataDropped() != 0 || f.DataDropped() != 0 {
		t.Errorf("drops: packet %d, fluid %d, want 0", p.DataDropped(), f.DataDropped())
	}
	if pmet.InFlight() != fmet.InFlight() {
		t.Errorf("in-flight: packet %d, fluid %d", pmet.InFlight(), fmet.InFlight())
	}
	if p.DataSent != 20 || p.DataDelivered != 19 || pmet.InFlight() != 1 {
		t.Errorf("packet reference = sent %d delivered %d inflight %d, want 20/19/1",
			p.DataSent, p.DataDelivered, pmet.InFlight())
	}
	if got := flows.Totals().InFlightEnd; got != 1 {
		t.Errorf("fluid InFlightEnd = %d, want 1", got)
	}
}

// TestFluidFates classifies blackholed, looping, dead-link and
// TTL-exhausted flows into the same drop causes the packet engine uses.
func TestFluidFates(t *testing.T) {
	run := func(t *testing.T, build func(*Network, *FlowSet)) Stats {
		t.Helper()
		s := sim.New(1)
		net := FromGraph(s, topology.Line(3), DefaultConfig(), nil)
		fs := net.AttachFlows(FlowSetConfig{Start: time.Second, Stop: 2 * time.Second})
		build(net, fs)
		s.RunUntil(2 * time.Second)
		fs.Finish()
		return net.Stats()
	}

	t.Run("blackhole", func(t *testing.T) {
		st := run(t, func(net *Network, fs *FlowSet) {
			net.Node(0).SetRoute(2, 1) // node 1 has no route: blackhole
			fs.Add(0, 2, 100*time.Millisecond, 1000, 64)
		})
		if st.Dropped(DropNoRoute) != 10 || st.DataDelivered != 0 {
			t.Errorf("noroute=%d delivered=%d, want 10/0", st.Dropped(DropNoRoute), st.DataDelivered)
		}
	})
	t.Run("loop", func(t *testing.T) {
		st := run(t, func(net *Network, fs *FlowSet) {
			net.Node(0).SetRoute(2, 1)
			net.Node(1).SetRoute(2, 0) // 0↔1 micro-loop
			fs.Add(0, 2, 100*time.Millisecond, 1000, 64)
		})
		if st.Dropped(DropTTLExpired) != 10 {
			t.Errorf("ttl drops = %d, want 10", st.Dropped(DropTTLExpired))
		}
	})
	t.Run("deadlink", func(t *testing.T) {
		st := run(t, func(net *Network, fs *FlowSet) {
			net.Node(0).SetRoute(2, 1)
			net.Node(1).SetRoute(2, 2)
			net.FailLink(1, 2)
			fs.Add(0, 2, 100*time.Millisecond, 1000, 64)
		})
		if st.Dropped(DropLinkFailure) != 10 {
			t.Errorf("link drops = %d, want 10", st.Dropped(DropLinkFailure))
		}
	})
	t.Run("ttlbudget", func(t *testing.T) {
		st := run(t, func(net *Network, fs *FlowSet) {
			net.Node(0).SetRoute(2, 1)
			net.Node(1).SetRoute(2, 2)
			fs.Add(0, 2, 100*time.Millisecond, 1000, 1) // 2 hops > TTL 1
		})
		if st.Dropped(DropTTLExpired) != 10 {
			t.Errorf("ttl drops = %d, want 10", st.Dropped(DropTTLExpired))
		}
	})
}

// TestFluidConservation checks the obs identity delivered + drops +
// in-flight == sent across a mixed set of fluid fates.
func TestFluidConservation(t *testing.T) {
	s := sim.New(1)
	net := FromGraph(s, topology.Line(4), DefaultConfig(), nil)
	met := obs.NewMetrics()
	net.Instrument(met, nil)
	for i := 0; i < 3; i++ {
		net.Node(NodeID(i)).SetRoute(3, NodeID(i+1))
	}
	net.Node(2).SetRoute(0, 1) // partial reverse path: node 1 blackholes 0
	fs := net.AttachFlows(FlowSetConfig{Start: time.Second, Stop: 2 * time.Second})
	fs.Add(0, 3, 50*time.Millisecond, 1000, 64)
	fs.Add(2, 0, 70*time.Millisecond, 500, 64)
	s.RunUntil(2 * time.Second)
	fs.Finish()

	sent := met.Get(obs.PacketsSent)
	terminal := met.Get(obs.PacketsDelivered) + met.Get(obs.DropNoRoute) +
		met.Get(obs.DropTTLExpired) + met.Get(obs.DropQueueOverflow) + met.Get(obs.DropLinkFailure)
	if sent != terminal+uint64(met.InFlight()) {
		t.Errorf("conservation: sent %d != delivered+drops %d + inflight %d",
			sent, terminal, met.InFlight())
	}
	if sent == 0 {
		t.Fatal("no fluid traffic accounted")
	}
}

// TestHybridDemotion drives a route change through a hybrid FlowSet: the
// affected flow demotes to real packets for the guard window, re-absorbs,
// and total accounting stays exact.
func TestHybridDemotion(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	net := FromGraph(s, g, DefaultConfig(), nil)
	met := obs.NewMetrics()
	tl := obs.NewTimeline()
	net.Instrument(met, tl)
	net.Node(0).SetRoute(3, 1)
	net.Node(1).SetRoute(3, 3)
	net.Node(2).SetRoute(3, 3)

	fs := net.AttachFlows(FlowSetConfig{
		Start: time.Second, Stop: 3 * time.Second,
		GuardWindow: 100 * time.Millisecond, Hybrid: true,
	})
	fs.Add(0, 3, 50*time.Millisecond, 1000, 64)

	// Reroute 0→3 onto the lower path mid-run: the hook settles the old
	// path's accrual first, then demotes the flow.
	s.ScheduleAt(1500*time.Millisecond, func() { net.Node(0).SetRoute(3, 2) })
	s.RunUntil(3 * time.Second)
	fs.Finish()

	tot := fs.Totals()
	if tot.Demotions != 1 || tot.Reabsorptions != 1 {
		t.Errorf("demotions=%d reabsorptions=%d, want 1/1", tot.Demotions, tot.Reabsorptions)
	}
	st := net.Stats()
	if st.DataSent != 40 { // ticks at 1.00, 1.05, ..., 2.95
		t.Errorf("sent = %d, want 40", st.DataSent)
	}
	if st.DataDelivered != st.DataSent {
		t.Errorf("delivered = %d of %d; drops: %+v", st.DataDelivered, st.DataSent, st.DataDrops)
	}
	// The demoted window emitted real packets: the packet engine saw them.
	if tot.Sent >= st.DataSent {
		t.Errorf("fluid accounted all %d packets; expected a packet-simulated demotion window", tot.Sent)
	}
	if met.InFlight() != 0 {
		t.Errorf("in-flight at end = %d, want 0", met.InFlight())
	}
	demotes, absorbs := 0, 0
	for _, r := range tl.Records() {
		switch r.Kind {
		case obs.KindFluidDemote:
			demotes++
		case obs.KindFluidAbsorb:
			absorbs++
		}
	}
	if demotes != 1 || absorbs != 1 {
		t.Errorf("timeline demotes=%d absorbs=%d, want 1/1", demotes, absorbs)
	}
}

// TestHybridLinkFailureDemotes pins the link-event path: failing a link
// under a hybrid FlowSet demotes exactly the flows crossing it.
func TestHybridLinkFailureDemotes(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	net := FromGraph(s, g, DefaultConfig(), nil)
	net.Node(0).SetRoute(3, 1)
	net.Node(1).SetRoute(3, 3)
	net.Node(2).SetRoute(3, 3)
	net.Node(1).SetRoute(2, 0) // unrelated destination group
	net.Node(0).SetRoute(2, 2)

	fs := net.AttachFlows(FlowSetConfig{
		Start: time.Second, Stop: 3 * time.Second,
		GuardWindow: 200 * time.Millisecond, Hybrid: true,
	})
	fs.Add(0, 3, 50*time.Millisecond, 1000, 64) // crosses 1-3
	fs.Add(1, 2, 50*time.Millisecond, 1000, 64) // does not
	s.ScheduleAt(1500*time.Millisecond, func() { net.FailLink(1, 3) })
	s.RunUntil(3 * time.Second)
	fs.Finish()

	if got := fs.Totals().Demotions; got != 1 {
		t.Errorf("demotions = %d, want 1 (only the flow crossing the failed link)", got)
	}
}

// TestFluidSettleZeroAlloc is the satellite guard: once the per-epoch
// scratch (presized to NetworkSize) is warm, a settlement recompute
// allocates nothing.
func TestFluidSettleZeroAlloc(t *testing.T) {
	s := sim.New(1)
	net := FromGraph(s, topology.Line(8), DefaultConfig(), nil)
	for i := 0; i < 7; i++ {
		net.Node(NodeID(i)).SetRoute(7, NodeID(i+1))
	}
	fs := net.AttachFlows(FlowSetConfig{Start: 0, Stop: time.Hour})
	for i := 0; i < 4; i++ {
		fs.Add(NodeID(i), 7, 10*time.Millisecond, 1000, 64)
	}
	now := time.Duration(0)
	step := func() {
		now += 10 * time.Millisecond
		s.RunUntil(now)
		fs.Finish() // settles every group at now, full fate recompute
	}
	step() // warm the scratch
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("settle recompute allocates %.1f times per epoch, want 0", allocs)
	}
	if st := net.Stats(); st.DataDelivered == 0 {
		t.Fatalf("no traffic settled: %+v", st)
	}
}
