package netsim

import (
	"fmt"
	"time"

	"routeconv/internal/obs"
	"routeconv/internal/sim"
)

// This file is the fluid half of the hybrid packet/fluid traffic engine.
//
// Between FIB changes the forwarding graph is static, so the fate of a
// constant-rate flow — delivered, caught in a loop, blackholed, dropped
// onto a dead link, or queue-limited — is fully determined analytically.
// A FlowSet registers flow classes in dense slices keyed by node ID and
// accounts for their packets in bulk at each FIB or link change (lazy
// settlement): no per-packet events exist for a fluid flow. In hybrid
// mode, flows whose forwarding path traverses a changed node or failed
// link are demoted to real packet sources for a guard window around the
// change, so loops, TTL expiry and queue contention during convergence
// are still simulated packet-by-packet where the paper measures them.

// Flow fate classes assigned by the fluid evaluator.
const (
	fateDelivered uint8 = iota + 1
	fateNoRoute
	fateLoop
	fateLinkDown
)

// loopHops marks a hop count that always exceeds any TTL.
const loopHops int32 = 1 << 30

// Flow states.
const (
	flowFluid uint8 = iota
	// flowDemoted flows emit real packets via scheduled ticks until the
	// guard window expires or the trial ends.
	flowDemoted
)

// FlowSetConfig parameterizes a FlowSet.
type FlowSetConfig struct {
	// Start and Stop bound the emission window: every flow emits ticks at
	// Start, Start+interval, ... strictly before Stop.
	Start, Stop time.Duration
	// GuardWindow is how long a flow stays demoted to packet-level
	// simulation after a FIB or link change on its path (hybrid mode).
	// Zero defaults to one second.
	GuardWindow time.Duration
	// Hybrid enables demotion. When false the set is purely fluid: every
	// epoch is evaluated analytically, including the transient.
	Hybrid bool
}

// FluidTotals are the aggregate counters a FlowSet maintains. All packet
// counts also flow into Network.Stats and the obs counters, so the
// conservation identity (delivered + drops + in-flight == sent) holds
// across the packet and fluid engines combined.
type FluidTotals struct {
	// Flows is the number of registered flow classes.
	Flows int
	// Sent..InFlightEnd count fluid-accounted packets (demoted flows'
	// packets are real and counted by the packet engine instead).
	Sent, Delivered uint64
	Drops           [numDropReasons]uint64
	// InFlightEnd counts packets emitted close enough to Stop that they
	// were still on the wire at the final settlement.
	InFlightEnd uint64
	// DeliveredBytes and DroppedBytes are byte totals of the above.
	DeliveredBytes, DroppedBytes uint64
	// Settles counts group settlements that accounted at least one tick;
	// Demotions and Reabsorptions count hybrid state transitions.
	Settles, Demotions, Reabsorptions uint64
}

// flowGroup indexes the flows sharing one destination: settlement walks
// the destination's forwarding tree once per epoch, not once per flow.
type flowGroup struct {
	dst        NodeID
	flows      []int32
	lastSettle time.Duration
}

// FlowSet is a dense registry of (src, dst, rate, size) flow classes and
// their fluid evaluator. Attach one to a Network with AttachFlows, Add
// flows before the traffic window opens, and call Finish at the end of
// the run to settle the tail.
type FlowSet struct {
	net   *Network
	cfg   FlowSetConfig
	guard time.Duration

	// Per-flow state, parallel slices indexed by flow.
	src, dst     []NodeID
	intervalNs   []int64
	size         []int32
	ttl          []int32
	nextTick     []uint32 // ticks already accounted (fluidly or as packets)
	maxTicks     []uint32
	state        []uint8
	demotedUntil []time.Duration
	qCarry       []float64 // fractional queue-drop remainder

	// Destination groups. groupOf is dense by destination node ID.
	groupOf []int32
	groups  []flowGroup

	// Per-epoch evaluator scratch, presized to NetworkSize: fate/hops are
	// the per-node memo (valid when memoEpoch matches epoch), visitTag is
	// the walk's on-stack marker, load/surv the queue-limit passes.
	epoch     uint32
	memoEpoch []uint32
	fate      []uint8
	hops      []int32
	visitTag  []uint32
	visitGen  uint32
	loadTag   []uint32
	load      []float64
	stack     []NodeID

	totals FluidTotals
}

var _ sim.Handler = (*FlowSet)(nil)

// AttachFlows creates a FlowSet bound to the network and hooks it into
// the network's FIB- and link-change paths. At most one FlowSet may be
// attached; call before Start.
func (n *Network) AttachFlows(cfg FlowSetConfig) *FlowSet {
	if n.flows != nil {
		panic("netsim: AttachFlows called twice")
	}
	if n.started {
		panic("netsim: AttachFlows after Start")
	}
	if cfg.Stop <= cfg.Start {
		panic("netsim: FlowSet Stop must be after Start")
	}
	fs := &FlowSet{net: n, cfg: cfg, guard: cfg.GuardWindow}
	if fs.guard <= 0 {
		fs.guard = time.Second
	}
	size := len(n.nodes)
	fs.groupOf = make([]int32, size)
	for i := range fs.groupOf {
		fs.groupOf[i] = -1
	}
	fs.memoEpoch = make([]uint32, size)
	fs.fate = make([]uint8, size)
	fs.hops = make([]int32, size)
	fs.visitTag = make([]uint32, size)
	fs.loadTag = make([]uint32, size)
	fs.load = make([]float64, size)
	fs.stack = make([]NodeID, 0, 64)
	n.flows = fs
	return fs
}

// Flows returns the attached FlowSet, or nil.
func (n *Network) Flows() *FlowSet { return n.flows }

// Add registers one flow class emitting size-byte packets with the given
// TTL from src to dst every interval, over the set's [Start, Stop)
// window. Flows must be registered before the window opens.
func (fs *FlowSet) Add(src, dst NodeID, interval time.Duration, size, ttl int) {
	if interval <= 0 {
		panic("netsim: flow interval must be positive")
	}
	if src == dst {
		panic("netsim: flow src == dst")
	}
	if int(src) >= len(fs.groupOf) || int(dst) >= len(fs.groupOf) || src < 0 || dst < 0 {
		panic(fmt.Sprintf("netsim: flow %d->%d outside the network", src, dst))
	}
	i := int32(len(fs.src))
	fs.src = append(fs.src, src)
	fs.dst = append(fs.dst, dst)
	fs.intervalNs = append(fs.intervalNs, interval.Nanoseconds())
	fs.size = append(fs.size, int32(size))
	fs.ttl = append(fs.ttl, int32(ttl))
	fs.nextTick = append(fs.nextTick, 0)
	window := (fs.cfg.Stop - fs.cfg.Start).Nanoseconds()
	fs.maxTicks = append(fs.maxTicks, uint32((window+interval.Nanoseconds()-1)/interval.Nanoseconds()))
	fs.state = append(fs.state, flowFluid)
	fs.demotedUntil = append(fs.demotedUntil, 0)
	fs.qCarry = append(fs.qCarry, 0)
	gi := fs.groupOf[dst]
	if gi < 0 {
		gi = int32(len(fs.groups))
		fs.groupOf[dst] = gi
		fs.groups = append(fs.groups, flowGroup{dst: dst})
	}
	fs.groups[gi].flows = append(fs.groups[gi].flows, i)
	fs.totals.Flows++
}

// Len returns the number of registered flow classes.
func (fs *FlowSet) Len() int { return len(fs.src) }

// Totals returns the set's aggregate counters.
func (fs *FlowSet) Totals() FluidTotals { return fs.totals }

// tickTime returns the emission time of flow i's k-th tick.
func (fs *FlowSet) tickTime(i int32, k uint32) time.Duration {
	return fs.cfg.Start + time.Duration(int64(k)*fs.intervalNs[i])
}

// ticksBefore returns how many of flow i's ticks fall strictly before t,
// clamped to the emission window.
func (fs *FlowSet) ticksBefore(i int32, t time.Duration) uint32 {
	if t <= fs.cfg.Start {
		return 0
	}
	if t >= fs.cfg.Stop {
		return fs.maxTicks[i]
	}
	n := (t.Nanoseconds() - fs.cfg.Start.Nanoseconds() + fs.intervalNs[i] - 1) / fs.intervalNs[i]
	if m := int64(fs.maxTicks[i]); n > m {
		n = m
	}
	return uint32(n)
}

// fibChanged is invoked by Node.SetRoute/ClearRoute/SetMultipath before
// the mutation lands: traffic accrued since the last settlement is
// accounted against the forwarding graph that actually carried it.
func (fs *FlowSet) fibChanged(node, dst NodeID) {
	if int(dst) >= len(fs.groupOf) || dst < 0 {
		return // host stub added after attach; never a fluid destination
	}
	gi := fs.groupOf[dst]
	if gi < 0 {
		return
	}
	now := fs.net.sim.Now()
	g := &fs.groups[gi]
	fs.settleGroup(g, now)
	if fs.cfg.Hybrid && now >= fs.cfg.Start-fs.guard && now < fs.cfg.Stop {
		fs.demoteThrough(g, now, node, -1)
	}
}

// linkChanged is invoked by Network.FailLink/RestoreLink before the
// link's state flips. A link event can reroute any destination, so every
// group settles; in hybrid mode flows whose path crosses the link demote.
func (fs *FlowSet) linkChanged(a, b NodeID) {
	now := fs.net.sim.Now()
	demote := fs.cfg.Hybrid && now >= fs.cfg.Start-fs.guard && now < fs.cfg.Stop
	for gi := range fs.groups {
		g := &fs.groups[gi]
		fs.settleGroup(g, now)
		if demote {
			fs.demoteThrough(g, now, a, b)
		}
	}
}

// settleGroup accounts every tick the group's fluid flows emitted in
// [lastSettle, now) against the current forwarding graph. The walk memo
// makes the group cost O(flows + nodes visited), and the scratch is
// preallocated, so steady-state settlement allocates nothing.
func (fs *FlowSet) settleGroup(g *flowGroup, now time.Duration) {
	if g.lastSettle >= now {
		return
	}
	g.lastSettle = now
	if now <= fs.cfg.Start || len(g.flows) == 0 {
		return
	}
	final := now >= fs.cfg.Stop
	fs.beginEpoch()

	// Queue-limit pass: only when the group alone can oversubscribe a
	// link does the delivered fraction drop below 1. Cross-group
	// contention surfaces through the packet layer during demotion
	// windows; see DESIGN.md.
	var totalBps float64
	for _, i := range g.flows {
		totalBps += float64(fs.size[i]) * 8e9 / float64(fs.intervalNs[i])
	}
	limited := totalBps > float64(fs.net.cfg.LinkRateBps)
	if limited {
		fs.visitGen++
		for _, i := range g.flows {
			if fs.state[i] != flowFluid || fs.nextTick[i] >= fs.maxTicks[i] {
				continue
			}
			if f, _ := fs.resolve(fs.src[i], g.dst); f == fateDelivered {
				fs.addLoad(fs.src[i], g.dst, float64(fs.size[i])*8e9/float64(fs.intervalNs[i]))
			}
		}
	}

	worked := false
	for _, i := range g.flows {
		if fs.state[i] != flowFluid {
			continue // demoted: its ticks are real packets
		}
		n := fs.ticksBefore(i, now)
		if n <= fs.nextTick[i] {
			continue
		}
		ticks := uint64(n - fs.nextTick[i])
		fs.nextTick[i] = n
		worked = true
		fate, hops := fs.resolve(fs.src[i], g.dst)
		if fate == fateDelivered && hops > fs.ttl[i] {
			fate = fateLoop // path longer than the hop budget
		}
		if fate == fateDelivered {
			delivered := ticks
			var inflight uint64
			if final {
				// Ticks emitted within one path latency of the horizon
				// were still on the wire at Stop, exactly as the packet
				// engine would leave them.
				lat := time.Duration(int64(hops) * fs.net.serialization(int(fs.size[i])).Nanoseconds())
				lat += time.Duration(hops) * fs.net.cfg.LinkDelay
				cut := fs.cfg.Stop - lat
				arrived := fs.ticksBefore(i, cut+1)
				if arrived < n {
					inflight = uint64(n - arrived)
					if inflight > delivered {
						inflight = delivered
					}
					delivered -= inflight
				}
			}
			var qdrops uint64
			if limited && delivered > 0 {
				surv := fs.survival(fs.src[i], g.dst)
				if surv < 1 {
					exact := float64(delivered)*(1-surv) + fs.qCarry[i]
					qdrops = uint64(exact)
					if qdrops > delivered {
						qdrops = delivered
					}
					fs.qCarry[i] = exact - float64(qdrops)
					delivered -= qdrops
				}
			}
			fs.account(i, ticks, delivered, qdrops, DropQueueOverflow, inflight)
		} else {
			var reason DropReason
			switch fate {
			case fateNoRoute:
				reason = DropNoRoute
			case fateLoop:
				reason = DropTTLExpired
			default:
				reason = DropLinkFailure
			}
			fs.account(i, ticks, 0, ticks, reason, 0)
		}
	}
	if worked {
		fs.totals.Settles++
		fs.net.met.Inc(obs.FluidSettles)
	}
}

// account books one flow's settled ticks into the network counters: sent
// = delivered + dropped + inflight, keeping the conservation identity
// exact.
func (fs *FlowSet) account(i int32, sent, delivered, dropped uint64, reason DropReason, inflight uint64) {
	net := fs.net
	size := uint64(fs.size[i])
	net.stats.DataSent += sent
	net.met.Add(obs.PacketsSent, sent)
	net.met.PacketInN(sent)
	fs.totals.Sent += sent
	if delivered > 0 {
		net.stats.DataDelivered += delivered
		net.met.Add(obs.PacketsDelivered, delivered)
		fs.totals.Delivered += delivered
		fs.totals.DeliveredBytes += delivered * size
		net.met.Add(obs.FluidDeliveredBytes, delivered*size)
	}
	if dropped > 0 {
		net.stats.DataDrops[reason] += dropped
		net.met.Add(dropCounter[reason], dropped)
		fs.totals.Drops[reason] += dropped
		fs.totals.DroppedBytes += dropped * size
		net.met.Add(obs.FluidDroppedBytes, dropped*size)
	}
	net.met.PacketOutN(delivered + dropped)
	fs.totals.InFlightEnd += inflight
}

// beginEpoch invalidates the per-node fate memo.
func (fs *FlowSet) beginEpoch() {
	fs.epoch++
	if fs.epoch == 0 {
		clear(fs.memoEpoch)
		fs.epoch = 1
	}
}

// egress mirrors Node.forward's next-hop selection for a packet from
// flowSrc to dst: ECMP set (hashed by flow), then the FIB entry, then
// the backup chain when the primary is unusable. pure reports whether
// the choice is flow-independent, and thus memoizable.
func (fs *FlowSet) egress(nd *Node, flowSrc, dst NodeID) (next NodeID, linkUp bool, pure bool) {
	pure = true
	if nd.multi != nil {
		if set := nd.multi[dst]; len(set) > 1 {
			pure = false
			start := flowHash(flowSrc, dst, len(set))
			for i := range set {
				nh := set[(start+i)%len(set)]
				if mp := nd.portTo(nh); mp != nil && !mp.link.down {
					return nh, true, false
				}
			}
		}
	}
	var p *port
	next = nd.fibGet(dst)
	if next != noRoute {
		p = nd.portTo(next)
	}
	if p == nil || p.link.down {
		if nd.backup != nil {
			for _, alt := range nd.backup[dst] {
				if ap := nd.portTo(alt); ap != nil && !ap.link.down {
					return alt, true, pure
				}
			}
		}
	}
	if p == nil {
		return noRoute, false, pure
	}
	return next, !p.link.down, pure
}

// resolve walks the forwarding graph from `from` toward dst and returns
// the flow's fate plus the hop count to the destination (meaningful only
// for fateDelivered). Results for flow-independent nodes are memoized
// for the current epoch.
func (fs *FlowSet) resolve(from, dst NodeID) (uint8, int32) {
	e := fs.epoch
	fs.visitGen++
	if fs.visitGen == 0 {
		clear(fs.visitTag)
		fs.visitGen = 1
	}
	gen := fs.visitGen
	stack := fs.stack[:0]
	lastImpure := -1
	var tFate uint8
	var tHops int32
	cur := from
	for {
		if cur == dst {
			tFate, tHops = fateDelivered, 0
			break
		}
		if fs.memoEpoch[cur] == e {
			tFate, tHops = fs.fate[cur], fs.hops[cur]
			break
		}
		if fs.visitTag[cur] == gen {
			tFate, tHops = fateLoop, loopHops
			break
		}
		nd := fs.net.nodes[cur]
		next, up, pure := fs.egress(nd, from, dst)
		if !pure {
			lastImpure = len(stack)
		}
		fs.visitTag[cur] = gen
		stack = append(stack, cur)
		if next == noRoute {
			tFate, tHops = fateNoRoute, 0
			break
		}
		if !up {
			tFate, tHops = fateLinkDown, 0
			break
		}
		cur = next
	}
	fs.stack = stack // keep any ring growth
	h := tHops
	for j := len(stack) - 1; j >= 0; j-- {
		if tFate == fateDelivered && h < loopHops {
			h++
		}
		if j > lastImpure {
			u := stack[j]
			fs.memoEpoch[u] = e
			fs.fate[u] = tFate
			fs.hops[u] = h
		}
	}
	if tFate == fateDelivered {
		return tFate, tHops + int32(len(stack))
	}
	return tFate, h
}

// addLoad walks a delivered flow's path adding its bit rate to every
// transmitting node (queue-limit pass one). Callers bump visitGen first.
func (fs *FlowSet) addLoad(from, dst NodeID, bps float64) {
	cur := from
	for cur != dst {
		if fs.loadTag[cur] != fs.epoch {
			fs.loadTag[cur] = fs.epoch
			fs.load[cur] = 0
		}
		fs.load[cur] += bps
		next, up, _ := fs.egress(fs.net.nodes[cur], from, dst)
		if next == noRoute || !up {
			return
		}
		cur = next
	}
}

// survival walks a delivered flow's path and returns the product of
// per-link acceptance ratios min(1, capacity/offered) — the fluid
// analogue of tail-drop queue overflow (queue-limit pass two).
func (fs *FlowSet) survival(from, dst NodeID) float64 {
	capacity := float64(fs.net.cfg.LinkRateBps)
	s := 1.0
	cur := from
	for cur != dst {
		if fs.loadTag[cur] == fs.epoch && fs.load[cur] > capacity {
			s *= capacity / fs.load[cur]
		}
		next, up, _ := fs.egress(fs.net.nodes[cur], from, dst)
		if next == noRoute || !up {
			break
		}
		cur = next
	}
	return s
}

// demoteThrough demotes the group's fluid flows whose current forwarding
// walk crosses the changed region: node a (FIB change, b < 0), or the
// a-b link in either direction (link change).
func (fs *FlowSet) demoteThrough(g *flowGroup, now time.Duration, a, b NodeID) {
	for _, i := range g.flows {
		if fs.state[i] != flowFluid || fs.nextTick[i] >= fs.maxTicks[i] {
			continue
		}
		if fs.pathTouches(fs.src[i], g.dst, a, b) {
			fs.demote(i, now)
		}
	}
}

// pathTouches reports whether the walk from `from` to dst visits node a
// (b < 0) or traverses the a-b link in either direction.
func (fs *FlowSet) pathTouches(from, dst NodeID, a, b NodeID) bool {
	fs.visitGen++
	if fs.visitGen == 0 {
		clear(fs.visitTag)
		fs.visitGen = 1
	}
	gen := fs.visitGen
	cur := from
	for cur != dst {
		if fs.visitTag[cur] == gen {
			return false // loop not involving the changed region
		}
		fs.visitTag[cur] = gen
		next, up, _ := fs.egress(fs.net.nodes[cur], from, dst)
		if b < 0 {
			if cur == a {
				return true
			}
		} else if (cur == a && next == b) || (cur == b && next == a) {
			return true
		}
		if next == noRoute || !up {
			return false
		}
		cur = next
	}
	return false
}

// demote switches a flow to packet emission until now+guard. A flow
// already demoted has its window extended; otherwise its next tick is
// scheduled as a real send.
func (fs *FlowSet) demote(i int32, now time.Duration) {
	until := now + fs.guard
	if fs.state[i] == flowDemoted {
		if until > fs.demotedUntil[i] {
			fs.demotedUntil[i] = until
		}
		return
	}
	fs.state[i] = flowDemoted
	fs.demotedUntil[i] = until
	fs.totals.Demotions++
	fs.net.met.Inc(obs.FluidDemotions)
	fs.net.tl.FluidFlow(now, obs.KindFluidDemote, int(fs.src[i]), int(fs.dst[i]))
	at := fs.tickTime(i, fs.nextTick[i])
	if at < now {
		at = now // settlement ran to now, so only a same-instant tick remains
	}
	fs.net.sim.ScheduleHandlerAt(at, fs, i, nil)
}

// absorb returns a demoted flow to the fluid: subsequent ticks are
// settled analytically again.
func (fs *FlowSet) absorb(i int32, now time.Duration) {
	fs.state[i] = flowFluid
	fs.totals.Reabsorptions++
	fs.net.met.Inc(obs.FluidReabsorptions)
	fs.net.tl.FluidFlow(now, obs.KindFluidAbsorb, int(fs.src[i]), int(fs.dst[i]))
}

// HandleEvent implements sim.Handler: one demoted flow's packet tick.
// kind is the flow index. While demoted, exactly one event per flow is
// pending.
func (fs *FlowSet) HandleEvent(kind int32, _ any) {
	i := kind
	if fs.state[i] != flowDemoted {
		return
	}
	now := fs.net.sim.Now()
	if now >= fs.demotedUntil[i] || now >= fs.cfg.Stop {
		fs.absorb(i, now)
		return
	}
	nd := fs.net.nodes[fs.src[i]]
	nd.SendData(fs.dst[i], int(fs.size[i]), int(fs.ttl[i]))
	fs.nextTick[i]++
	if fs.nextTick[i] >= fs.maxTicks[i] {
		fs.absorb(i, now) // emission window exhausted
		return
	}
	fs.net.sim.ScheduleHandlerAt(fs.tickTime(i, fs.nextTick[i]), fs, i, nil)
}

// Finish settles every group's tail at the current instant — call it
// once after the simulator reaches the end of the run, before reading
// Stats or Totals. Ticks still within one path latency of the horizon
// are booked as in-flight, matching the packet engine's end-of-run
// balance.
func (fs *FlowSet) Finish() {
	now := fs.net.sim.Now()
	for gi := range fs.groups {
		fs.settleGroup(&fs.groups[gi], now)
	}
}
