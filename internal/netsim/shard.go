package netsim

import (
	"fmt"
	"time"

	"routeconv/internal/obs"
	"routeconv/internal/sim"
)

// This file implements sharded (parallel-in-one-trial) execution with
// conservative time synchronization. The topology is partitioned into K
// shards; each shard's nodes run their events on a private simulator
// driven by its own goroutine, while the original simulator (the "control
// sim") keeps the harness events — failure injection, detection timers,
// fluid-engine ticks. The link propagation delay is the lookahead: a
// packet finishing serialization at time t cannot affect another shard
// before t+LinkDelay, so all shards can safely run the window
// [T, T') in parallel whenever T' ≤ min(next pending event) + LinkDelay.
// At each window barrier the coordinator replays buffered observer
// events, releases cross-shard pooled messages, drains cross-shard
// packet inboxes in deterministic (timestamp, shard, FIFO) order, and
// runs the control events due at the barrier instant. See DESIGN.md
// ("Sharded execution") for the full protocol and ordering argument.

// exec is the execution context one node's events run against: the event
// loop, packet counters, instrumentation sinks, and cross-shard buffers
// of the shard that owns the node. In sequential mode there is a single
// root exec (id -1) aliasing the Network's own simulator, stats, and
// instrumentation, so the default path is bit-for-bit the pre-sharding
// behavior.
type exec struct {
	id  int32
	net *Network
	sim *sim.Simulator
	// stats aliases Network.stats on the root exec; shard execs own a
	// private set merged by Network.Stats.
	stats *Stats
	// met and tl are per-shard instrumentation (nil-safe), absorbed into
	// the root set at FinishSharding.
	met *obs.Metrics
	tl  *obs.Timeline
	// nextID is the packet ID sequence. Per-shard spaces overlap; nothing
	// semantic reads Packet.ID.
	nextID uint64
	// serCache memoizes serialization delay per shard so shards never
	// write shared memory mid-window.
	serCache []time.Duration
	// events buffers observer callbacks raised during a window, replayed
	// by the coordinator at the barrier in merged (at, shard, idx) order.
	// Root exec calls the observer directly instead.
	events []obsEvent
	// outbox[d] holds packets that finished serialization here but arrive
	// on shard d; the coordinator drains them at the barrier.
	outbox [][]crossMsg
	// releases holds pooled messages whose owner lives on another shard;
	// released at the barrier while all shards are parked.
	releases []PooledMessage
	// dirty holds FIB changes awaiting a fluid-engine settle at the
	// barrier (the FlowSet only ever runs on the coordinator).
	dirty []dirtyRoute
}

// dirtyRoute is one deferred fluid-engine settle: node's entry for dst
// changed during a window.
type dirtyRoute struct {
	node, dst NodeID
}

// crossMsg is one packet crossing a shard boundary: it arrives on port
// p's peer (in another shard) at time at.
type crossMsg struct {
	at  time.Duration
	p   *port
	pkt *Packet
}

// Buffered observer event kinds.
const (
	obsRoute uint8 = iota
	obsDelivered
	obsDropped
)

// obsEvent is one buffered observer callback. Packets are snapshotted by
// value: a dropped control packet's pooled payload may be recycled before
// the replay, but the scalar fields observers read stay intact. Route
// events additionally carry the entry's previous next hop (prev), which
// lets the barrier replay rewind the FIBs to their start-of-window state
// and step them forward change by change — observers that walk forwarding
// tables (path sampling) then see exactly the intermediate states a
// sequential run would have.
type obsEvent struct {
	kind    uint8
	removed bool
	reason  DropReason
	node    NodeID // route: node; dropped: losing node
	dst     NodeID
	nh      NodeID
	prev    NodeID // route: the entry's value before the change
	at      time.Duration
	pkt     Packet
}

// obsRef locates one buffered observer event: shard index and position in
// that shard's buffer. The barrier replay materializes the k-way merge as
// a slice of refs so it can walk the window's events in both directions.
type obsRef struct {
	shard, idx int32
}

// ctx returns the execution context for an action on the node right now:
// the node's shard while a window is running, the root context while the
// coordinator (or a sequential run) is executing. windowActive is only
// flipped by the coordinator while all workers are parked, so the read is
// ordered by the barrier channels.
func (nd *Node) ctx() *exec {
	if nd.net.windowActive {
		return nd.exec
	}
	return nd.net.root
}

// serialization returns the time to clock size bytes onto a link,
// memoized per size in this exec's private cache.
func (ex *exec) serialization(size int) time.Duration {
	if size >= 0 && size < len(ex.serCache) {
		if d := ex.serCache[size]; d != 0 {
			return d
		}
	}
	d := time.Duration(int64(size) * 8 * int64(time.Second) / ex.net.cfg.LinkRateBps)
	if size >= 0 && size < serCacheMax {
		if size >= len(ex.serCache) {
			grown := make([]time.Duration, size+1)
			copy(grown, ex.serCache)
			ex.serCache = grown
		}
		ex.serCache[size] = d
	}
	return d
}

// routeChanged raises or buffers the RouteChanged observer callback. prev
// is the FIB entry's value before the change (noRoute if absent), recorded
// for the barrier replay's rewind; the root context ignores it.
func (ex *exec) routeChanged(at time.Duration, node, dst, nextHop, prev NodeID, removed bool) {
	if ex.id < 0 {
		ex.net.observer.RouteChanged(at, node, dst, nextHop, removed)
		return
	}
	ex.events = append(ex.events, obsEvent{kind: obsRoute, at: at, node: node, dst: dst, nh: nextHop, prev: prev, removed: removed})
}

// packetDelivered raises or buffers the PacketDelivered observer callback.
func (ex *exec) packetDelivered(at time.Duration, pkt *Packet) {
	if ex.id < 0 {
		ex.net.observer.PacketDelivered(at, pkt)
		return
	}
	ex.events = append(ex.events, obsEvent{kind: obsDelivered, at: at, pkt: *pkt})
}

// packetDropped raises or buffers the PacketDropped observer callback.
func (ex *exec) packetDropped(at time.Duration, where NodeID, pkt *Packet, reason DropReason) {
	if ex.id < 0 {
		ex.net.observer.PacketDropped(at, where, pkt, reason)
		return
	}
	ex.events = append(ex.events, obsEvent{kind: obsDropped, at: at, node: where, reason: reason, pkt: *pkt})
}

// releasePooled returns a packet's pooled payload to its owner's free
// list — immediately when the owner's shard is the executing one (or in
// any coordinator/sequential context), otherwise at the next barrier.
func (ex *exec) releasePooled(pkt *Packet) {
	pm, ok := pkt.Payload.(PooledMessage)
	if !ok {
		return
	}
	if ex.id >= 0 && ex.net.assign[pkt.Src] != ex.id {
		ex.releases = append(ex.releases, pm)
		return
	}
	pm.Release()
}

// EnableSharding switches the network to sharded execution: assign maps
// every node to a shard in [0, k), each shard gets a private simulator
// (seeded identically to the control sim, so per-node random streams
// derive the same sequences), and a coordinator goroutine pool is
// started. Call after Instrument and before protocols are attached —
// protocols capture their node's simulator at construction.
func (n *Network) EnableSharding(assign []int32, k int) {
	if n.started {
		panic("netsim: EnableSharding after Start")
	}
	if len(assign) != len(n.nodes) {
		panic(fmt.Sprintf("netsim: EnableSharding: %d assignments for %d nodes", len(assign), len(n.nodes)))
	}
	if k < 1 {
		panic("netsim: EnableSharding with no shards")
	}
	n.assign = assign
	n.shards = make([]*exec, k)
	sims := make([]*sim.Simulator, k)
	for i := 0; i < k; i++ {
		sims[i] = sim.New(n.sim.Seed())
		ex := &exec{
			id:     int32(i),
			net:    n,
			sim:    sims[i],
			stats:  &Stats{},
			outbox: make([][]crossMsg, k),
		}
		if n.met != nil {
			ex.met = obs.NewMetrics()
		}
		if n.tl != nil {
			ex.tl = obs.NewTimeline()
		}
		n.shards[i] = ex
	}
	for _, nd := range n.nodes {
		s := assign[nd.id]
		if s < 0 || int(s) >= k {
			panic(fmt.Sprintf("netsim: node %d assigned to shard %d of %d", nd.id, s, k))
		}
		nd.exec = n.shards[s]
	}
	n.obsIdx = make([]int, k)
	n.drainIdx = make([]int, k)
	n.Links() // prebuild the cached link list before goroutines exist
	n.coord = sim.NewCoordinator(sims)
}

// Sharded reports whether the network runs in sharded mode.
func (n *Network) Sharded() bool { return n.coord != nil }

// FiredEvents returns the number of events executed across the control
// simulator and all shard simulators.
func (n *Network) FiredEvents() uint64 {
	total := n.sim.Fired()
	for _, ex := range n.shards {
		total += ex.sim.Fired()
	}
	return total
}

// RunSharded drives the simulation from the current time to end using
// lockstep windows; it replaces the sequential sim.RunUntil(end). The
// window bound is adaptive: T' = min(earliest pending shard event +
// LinkDelay, earliest control event, end), so idle stretches cost one
// barrier instead of one barrier per lookahead.
func (n *Network) RunSharded(end time.Duration) {
	if n.coord == nil {
		panic("netsim: RunSharded without EnableSharding")
	}
	s := n.sim
	la := n.cfg.LinkDelay
	for {
		next := end
		if t, ok := n.coord.MinNextEvent(); ok && t+la < next {
			next = t + la
		}
		if t, ok := s.NextEventTime(); ok && t < next {
			next = t
		}
		if now := s.Now(); next < now {
			next = now
		}
		final := next >= end
		if final {
			next = end
		}
		n.windowActive = true
		if final {
			// Inclusive: shard events at exactly end fire, matching the
			// sequential RunUntil(end).
			n.coord.RunWindowUntil(end)
		} else {
			n.coord.RunWindow(next)
		}
		n.windowActive = false
		n.met.Inc(obs.ShardBarrierWaits)
		n.flushWindow(next)
		// Control events at exactly the barrier instant run after the
		// window flush: in the sequential schedule, harness closures,
		// detection timers, and fluid ticks always carry earlier sequence
		// numbers than same-instant node events.
		s.RunUntil(next)
		if final {
			// Control events at end may have raised observer events or
			// deferred work through shard contexts; flush once more.
			n.flushWindow(end)
			return
		}
	}
}

// flushWindow performs the barrier bookkeeping at time t: replay buffered
// observer events in deterministic merged order, release cross-shard
// pooled messages, settle deferred fluid-engine changes, and deliver
// cross-shard packets into their destination shards.
func (n *Network) flushWindow(t time.Duration) {
	n.flushObs()
	n.flushReleases()
	// Advance the control clock (no control events exist strictly below
	// t) so fluid settles timestamp at the barrier instant.
	n.sim.RunBefore(t)
	n.flushDirty()
	n.drainOutboxes()
}

// flushObs replays every buffered observer event, k-way merged across
// shards by (time, shard). Within one shard the buffer is already in
// execution order.
//
// Replay is rewind-then-step: the merged sequence is first walked
// backwards restoring each changed FIB entry to its pre-change value, then
// forwards re-applying every change just before its observer callback
// fires. Observers that walk forwarding tables (the trace collector's
// path sampler) therefore see the exact intermediate FIB state at each
// event's timestamp — not the end-of-window state the shards left behind —
// and the walk matches a sequential run's, because link up/down state only
// changes at barriers and is constant within the window. The forward pass
// ends with every entry back at its end-of-window value.
func (n *Network) flushObs() {
	for i := range n.obsIdx {
		n.obsIdx[i] = 0
	}
	n.obsSeq = n.obsSeq[:0]
	for {
		best := -1
		var bestAt time.Duration
		for si, ex := range n.shards {
			i := n.obsIdx[si]
			if i >= len(ex.events) {
				continue
			}
			if at := ex.events[i].at; best < 0 || at < bestAt {
				best, bestAt = si, at
			}
		}
		if best < 0 {
			break
		}
		n.obsSeq = append(n.obsSeq, obsRef{shard: int32(best), idx: int32(n.obsIdx[best])})
		n.obsIdx[best]++
	}
	for i := len(n.obsSeq) - 1; i >= 0; i-- {
		r := n.obsSeq[i]
		e := &n.shards[r.shard].events[r.idx]
		if e.kind == obsRoute {
			n.nodes[e.node].fibSet(e.dst, e.prev)
		}
	}
	for _, r := range n.obsSeq {
		e := &n.shards[r.shard].events[r.idx]
		switch e.kind {
		case obsRoute:
			nh := e.nh
			if e.removed {
				nh = noRoute
			}
			n.nodes[e.node].fibSet(e.dst, nh)
			n.observer.RouteChanged(e.at, e.node, e.dst, e.nh, e.removed)
		case obsDelivered:
			n.observer.PacketDelivered(e.at, &e.pkt)
		case obsDropped:
			n.observer.PacketDropped(e.at, e.node, &e.pkt, e.reason)
		}
	}
	for _, ex := range n.shards {
		clearObsEvents(ex.events)
		ex.events = ex.events[:0]
	}
}

// clearObsEvents zeroes replayed events so buffered packet snapshots do
// not pin payloads or hop traces past the barrier.
func clearObsEvents(evs []obsEvent) {
	for i := range evs {
		evs[i] = obsEvent{}
	}
}

// flushReleases returns deferred pooled messages to their owners' free
// lists; safe because every shard is parked.
func (n *Network) flushReleases() {
	for _, ex := range n.shards {
		for i, pm := range ex.releases {
			pm.Release()
			ex.releases[i] = nil
		}
		ex.releases = ex.releases[:0]
	}
}

// flushDirty applies deferred fluid-engine settles. The settle runs one
// window after the FIB mutation (attribution error bounded by the
// lookahead); conservation stays exact because the FlowSet accounts
// elapsed time against whatever graph is current.
func (n *Network) flushDirty() {
	if n.flows == nil {
		return
	}
	for _, ex := range n.shards {
		for _, d := range ex.dirty {
			n.flows.fibChanged(d.node, d.dst)
		}
		ex.dirty = ex.dirty[:0]
	}
}

// drainOutboxes schedules every cross-shard packet into its destination
// shard's simulator. For one destination, sources are merged by
// (timestamp, source shard); each source buffer is FIFO and timestamp-
// nondecreasing (fixed LinkDelay on top of time-ordered execution), so
// the merged order — and therefore the destination's event sequence — is
// deterministic regardless of how windows interleaved.
func (n *Network) drainOutboxes() {
	var total uint64
	for d, dst := range n.shards {
		for i := range n.drainIdx {
			n.drainIdx[i] = 0
		}
		for {
			best := -1
			var bestAt time.Duration
			for si, src := range n.shards {
				box := src.outbox[d]
				i := n.drainIdx[si]
				if i >= len(box) {
					continue
				}
				if at := box[i].at; best < 0 || at < bestAt {
					best, bestAt = si, at
				}
			}
			if best < 0 {
				break
			}
			m := &n.shards[best].outbox[d][n.drainIdx[best]]
			n.drainIdx[best]++
			dst.sim.ScheduleHandlerAt(m.at, m.p, portPropDone, m.pkt)
			total++
		}
		for _, src := range n.shards {
			box := src.outbox[d]
			for i := range box {
				box[i] = crossMsg{}
			}
			src.outbox[d] = box[:0]
		}
	}
	n.met.Add(obs.ShardCrossMsgs, total)
}

// FinishSharding stops the coordinator goroutines and folds per-shard
// statistics, metrics, and timelines into the root set. Call once after
// RunSharded; the network must not run further afterwards.
func (n *Network) FinishSharding() {
	if n.coord == nil {
		return
	}
	n.coord.Stop()
	n.coord = nil
	for _, ex := range n.shards {
		n.stats.add(ex.stats)
		n.met.Absorb(ex.met)
	}
	if n.tl != nil {
		tls := make([]*obs.Timeline, len(n.shards))
		for i, ex := range n.shards {
			tls[i] = ex.tl
		}
		n.tl.AbsorbSorted(tls...)
	}
	n.shards = nil
	n.assign = nil
	for _, nd := range n.nodes {
		nd.exec = n.root
	}
}

// add accumulates other's counters into s.
func (s *Stats) add(other *Stats) {
	s.DataSent += other.DataSent
	s.DataDelivered += other.DataDelivered
	s.ControlSent += other.ControlSent
	s.ControlBytes += other.ControlBytes
	for i := range s.DataDrops {
		s.DataDrops[i] += other.DataDrops[i]
		s.ControlDrops[i] += other.ControlDrops[i]
	}
}
