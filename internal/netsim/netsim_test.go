package netsim

import (
	"testing"
	"time"

	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// testProto records protocol callbacks for assertions.
type testProto struct {
	started   int
	messages  []Message
	senders   []NodeID
	downFrom  []NodeID
	upFrom    []NodeID
	onMessage func(from NodeID, msg Message)
}

func (p *testProto) Start() { p.started++ }
func (p *testProto) HandleMessage(from NodeID, msg Message) {
	p.senders = append(p.senders, from)
	p.messages = append(p.messages, msg)
	if p.onMessage != nil {
		p.onMessage(from, msg)
	}
}
func (p *testProto) LinkDown(n NodeID) { p.downFrom = append(p.downFrom, n) }
func (p *testProto) LinkUp(n NodeID)   { p.upFrom = append(p.upFrom, n) }

type testMsg struct{ size int }

func (m testMsg) SizeBytes() int { return m.size }

// recorder captures observer events.
type recorder struct {
	NopObserver
	delivered []*Packet
	deliverAt []time.Duration
	drops     []DropReason
	dropAt    []NodeID
	routes    int
}

func (r *recorder) PacketDelivered(at time.Duration, pkt *Packet) {
	r.delivered = append(r.delivered, pkt)
	r.deliverAt = append(r.deliverAt, at)
}

func (r *recorder) PacketDropped(_ time.Duration, where NodeID, _ *Packet, reason DropReason) {
	r.drops = append(r.drops, reason)
	r.dropAt = append(r.dropAt, where)
}

func (r *recorder) RouteChanged(time.Duration, NodeID, NodeID, NodeID, bool) { r.routes++ }

// lineNet builds a 3-node line 0-1-2 with static routes toward node 2.
func lineNet(t *testing.T, cfg Config, obs Observer) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(1)
	n := FromGraph(s, topology.Line(3), cfg, obs)
	n.Node(0).SetRoute(2, 1)
	n.Node(1).SetRoute(2, 2)
	return s, n
}

func TestDataDeliveryTiming(t *testing.T) {
	cfg := Config{LinkRateBps: 8_000_000, LinkDelay: time.Millisecond, DetectDelay: time.Millisecond, QueueLimit: 10}
	rec := &recorder{}
	s, n := lineNet(t, cfg, rec)
	n.Node(0).SendData(2, 1000, 64)
	s.Run()
	if len(rec.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(rec.delivered))
	}
	// Two hops, each 1000B*8/8Mbps = 1ms serialization + 1ms propagation.
	want := 4 * time.Millisecond
	if rec.deliverAt[0] != want {
		t.Errorf("delivery at %v, want %v", rec.deliverAt[0], want)
	}
	if rec.delivered[0].HopCount != 2 {
		t.Errorf("HopCount = %d, want 2", rec.delivered[0].HopCount)
	}
	if got := n.Stats().DataDelivered; got != 1 {
		t.Errorf("Stats().DataDelivered = %d, want 1", got)
	}
}

func TestNoRouteDrop(t *testing.T) {
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), rec)
	n.Node(0).SendData(1, 100, 64) // no route installed
	s.Run()
	if len(rec.drops) != 1 || rec.drops[0] != DropNoRoute {
		t.Fatalf("drops = %v, want [no-route]", rec.drops)
	}
	if n.Stats().Dropped(DropNoRoute) != 1 {
		t.Error("stats no-route counter not incremented")
	}
}

func TestTTLExpiredInLoop(t *testing.T) {
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(3), DefaultConfig(), rec)
	// 0 and 1 point at each other for destination 2: a two-hop loop.
	n.Node(0).SetRoute(2, 1)
	n.Node(1).SetRoute(2, 0)
	n.Node(0).SendData(2, 100, 10)
	s.Run()
	if len(rec.drops) != 1 || rec.drops[0] != DropTTLExpired {
		t.Fatalf("drops = %v, want [ttl-expired]", rec.drops)
	}
}

func TestHopTraceRecording(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordHops = true
	rec := &recorder{}
	s, n := lineNet(t, cfg, rec)
	n.Node(0).SendData(2, 100, 64)
	s.Run()
	if len(rec.delivered) != 1 {
		t.Fatal("packet not delivered")
	}
	trace := rec.delivered[0].Trace
	want := []NodeID{0, 1, 2}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestQueueOverflow(t *testing.T) {
	cfg := Config{LinkRateBps: 8_000, LinkDelay: time.Millisecond, DetectDelay: time.Millisecond, QueueLimit: 2}
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), cfg, rec)
	n.Node(0).SetRoute(1, 1)
	// Serialization is 1s per 1000-byte packet at 8 kbps; five back-to-back
	// sends leave 1 transmitting, 2 queued, 2 dropped.
	for i := 0; i < 5; i++ {
		n.Node(0).SendData(1, 1000, 64)
	}
	s.Run()
	if got := n.Stats().Dropped(DropQueueOverflow); got != 2 {
		t.Errorf("queue overflow drops = %d, want 2", got)
	}
	if got := n.Stats().DataDelivered; got != 3 {
		t.Errorf("delivered = %d, want 3", got)
	}
}

func TestControlExemptFromQueueCap(t *testing.T) {
	cfg := Config{LinkRateBps: 8_000, LinkDelay: time.Millisecond, DetectDelay: time.Millisecond, QueueLimit: 1}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), cfg, nil)
	proto := &testProto{}
	n.Node(1).AttachProtocol(proto)
	for i := 0; i < 5; i++ {
		n.Node(0).SendControl(1, testMsg{size: 1000})
	}
	s.Run()
	if len(proto.messages) != 5 {
		t.Errorf("delivered %d control messages, want 5", len(proto.messages))
	}
}

func TestControlDelivery(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	proto := &testProto{}
	n.Node(1).AttachProtocol(proto)
	n.Node(0).SendControl(1, testMsg{size: 64})
	s.Run()
	if len(proto.messages) != 1 {
		t.Fatalf("got %d messages, want 1", len(proto.messages))
	}
	if proto.senders[0] != 0 {
		t.Errorf("sender = %d, want 0", proto.senders[0])
	}
	if got := proto.messages[0].(testMsg).size; got != 64 {
		t.Errorf("message size = %d, want 64", got)
	}
	st := n.Stats()
	if st.ControlSent != 1 || st.ControlBytes != 64 {
		t.Errorf("control stats = %d msgs / %d bytes, want 1 / 64", st.ControlSent, st.ControlBytes)
	}
}

func TestLinkFailureDropsAndNotifies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetectDelay = 50 * time.Millisecond
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), cfg, rec)
	n.Node(0).SetRoute(1, 1)
	pa, pb := &testProto{}, &testProto{}
	n.Node(0).AttachProtocol(pa)
	n.Node(1).AttachProtocol(pb)
	n.Start()

	var notified time.Duration
	s.Schedule(time.Second, func() { n.FailLink(0, 1) })
	s.Schedule(time.Second+time.Millisecond, func() { n.Node(0).SendData(1, 100, 64) })
	s.Schedule(2*time.Second, func() { notified = s.Now() })
	s.Run()
	_ = notified

	if len(rec.drops) != 1 || rec.drops[0] != DropLinkFailure {
		t.Fatalf("drops = %v, want [link-failure]", rec.drops)
	}
	if len(pa.downFrom) != 1 || pa.downFrom[0] != 1 {
		t.Errorf("node 0 LinkDown calls = %v, want [1]", pa.downFrom)
	}
	if len(pb.downFrom) != 1 || pb.downFrom[0] != 0 {
		t.Errorf("node 1 LinkDown calls = %v, want [0]", pb.downFrom)
	}
	if n.Link(0, 1).Up() {
		t.Error("link still up after FailLink")
	}
}

func TestLinkFailureLosesInFlight(t *testing.T) {
	cfg := Config{LinkRateBps: 8_000_000, LinkDelay: 10 * time.Millisecond, DetectDelay: time.Millisecond, QueueLimit: 10}
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), cfg, rec)
	n.Node(0).SetRoute(1, 1)
	n.Node(0).SendData(1, 1000, 64) // arrives at 1ms ser + 10ms prop = 11ms
	s.Schedule(5*time.Millisecond, func() { n.FailLink(0, 1) })
	s.Run()
	if len(rec.delivered) != 0 {
		t.Fatal("packet delivered despite mid-flight link failure")
	}
	if len(rec.drops) != 1 || rec.drops[0] != DropLinkFailure {
		t.Fatalf("drops = %v, want [link-failure]", rec.drops)
	}
}

func TestRestoreLink(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	pa := &testProto{}
	n.Node(0).AttachProtocol(pa)
	n.Start()
	n.FailLink(0, 1)
	s.Schedule(time.Second, func() { n.RestoreLink(0, 1) })
	s.Run()
	if len(pa.downFrom) != 1 || len(pa.upFrom) != 1 {
		t.Errorf("down=%v up=%v, want one each", pa.downFrom, pa.upFrom)
	}
	if !n.Link(0, 1).Up() {
		t.Error("link down after RestoreLink")
	}
	if !n.Node(0).LinkUpTo(1) {
		t.Error("LinkUpTo(1) = false after restore")
	}
}

func TestFailBeforeDetectSuppressed(t *testing.T) {
	// A link that fails and recovers within the detection window produces
	// no protocol notification at all.
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.DetectDelay = 100 * time.Millisecond
	n := FromGraph(s, topology.Line(2), cfg, nil)
	pa := &testProto{}
	n.Node(0).AttachProtocol(pa)
	n.Start()
	n.FailLink(0, 1)
	s.Schedule(10*time.Millisecond, func() { n.RestoreLink(0, 1) })
	s.Run()
	if len(pa.downFrom) != 0 || len(pa.upFrom) != 0 {
		t.Errorf("flap within detection window notified: down=%v up=%v", pa.downFrom, pa.upFrom)
	}
}

func TestWalkPath(t *testing.T) {
	s, n := lineNet(t, DefaultConfig(), nil)
	_ = s
	path, ok := n.WalkPath(0, 2)
	if !ok || len(path) != 3 {
		t.Fatalf("WalkPath = %v, %v; want 0-1-2", path, ok)
	}

	// Loop case.
	n.Node(1).SetRoute(2, 0)
	if _, ok := n.WalkPath(0, 2); ok {
		t.Error("WalkPath reported ok through a loop")
	}

	// Missing route case.
	n.Node(1).ClearRoute(2)
	if _, ok := n.WalkPath(0, 2); ok {
		t.Error("WalkPath reported ok with missing route")
	}

	// Down-link case.
	n.Node(1).SetRoute(2, 2)
	n.FailLink(1, 2)
	if _, ok := n.WalkPath(0, 2); ok {
		t.Error("WalkPath reported ok across a failed link")
	}
}

func TestRouteChangeObserver(t *testing.T) {
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(3), DefaultConfig(), rec)
	n.Node(0).SetRoute(2, 1)
	n.Node(0).SetRoute(2, 1) // no-op: same next hop
	n.Node(0).ClearRoute(2)
	n.Node(0).ClearRoute(2) // no-op: already gone
	if rec.routes != 2 {
		t.Errorf("route change events = %d, want 2", rec.routes)
	}
}

func TestNextHop(t *testing.T) {
	_, n := lineNet(t, DefaultConfig(), nil)
	nh, ok := n.Node(0).NextHop(2)
	if !ok || nh != 1 {
		t.Errorf("NextHop = %d, %v; want 1, true", nh, ok)
	}
	if _, ok := n.Node(2).NextHop(0); ok {
		t.Error("NextHop on empty FIB reported ok")
	}
}

func TestCBR(t *testing.T) {
	rec := &recorder{}
	s, n := lineNet(t, DefaultConfig(), rec)
	StartCBR(n.Node(0), 2, 50*time.Millisecond, 1000, 64, time.Second, 2*time.Second)
	s.Run()
	// Sends at 1.00, 1.05, ..., 1.95 = 20 packets.
	if got := n.Stats().DataSent; got != 20 {
		t.Errorf("CBR sent %d packets, want 20", got)
	}
	if got := len(rec.delivered); got != 20 {
		t.Errorf("delivered %d packets, want 20", got)
	}
}

func TestCBRStop(t *testing.T) {
	s, n := lineNet(t, DefaultConfig(), nil)
	c := StartCBR(n.Node(0), 2, 50*time.Millisecond, 1000, 64, time.Second, 10*time.Second)
	s.Schedule(1500*time.Millisecond, func() { c.Stop() })
	s.Run()
	if got := n.Stats().DataSent; got != 10 {
		t.Errorf("CBR sent %d packets, want 10 (stopped early)", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultConfig(), nil)
	for i := 0; i < 5; i++ {
		n.AddNode()
	}
	n.Connect(2, 4)
	n.Connect(2, 0)
	n.Connect(2, 3)
	n.Connect(2, 1)
	got := n.Node(2).Neighbors()
	want := []NodeID{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
}

func TestProtocolStartOrder(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(3), DefaultConfig(), nil)
	protos := make([]*testProto, 3)
	for i := range protos {
		protos[i] = &testProto{}
		n.Node(NodeID(i)).AttachProtocol(protos[i])
	}
	n.Start()
	for i, p := range protos {
		if p.started != 1 {
			t.Errorf("protocol %d started %d times, want 1", i, p.started)
		}
	}
}

func TestDuplicateConnectPanics(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Connect did not panic")
		}
	}()
	n.Connect(1, 0)
}

func TestLinksSorted(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Ring(4), DefaultConfig(), nil)
	links := n.Links()
	if len(links) != 4 {
		t.Fatalf("got %d links, want 4", len(links))
	}
	for i := 1; i < len(links); i++ {
		a, b := links[i-1].Edge(), links[i].Edge()
		if a.A > b.A || (a.A == b.A && a.B >= b.B) {
			t.Fatal("Links() not sorted")
		}
	}
}

func TestFastRerouteDeflectsOnDownLink(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: primary 0→1, backup 0→2. Fail 0-1 and send
	// immediately (before any detection): the packet must deflect via 2.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	rec := &recorder{}
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.RecordHops = true
	n := FromGraph(s, g, cfg, rec)
	n.Node(0).SetRoute(3, 1)
	n.Node(0).SetBackupRoutes(3, []NodeID{2})
	n.Node(1).SetRoute(3, 3)
	n.Node(2).SetRoute(3, 3)

	n.FailLink(0, 1)
	n.Node(0).SendData(3, 100, 64)
	s.Run()
	if len(rec.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (fast reroute)", len(rec.delivered))
	}
	trace := rec.delivered[0].Trace
	if len(trace) != 3 || trace[1] != 2 {
		t.Errorf("packet path = %v, want detour via 2", trace)
	}
	if nhs := n.Node(0).BackupRoutes(3); len(nhs) != 1 || nhs[0] != 2 {
		t.Errorf("BackupRoutes = %v, want [2]", nhs)
	}
}

func TestFastRerouteIgnoredWhilePrimaryUp(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	rec := &recorder{}
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.RecordHops = true
	n := FromGraph(s, g, cfg, rec)
	n.Node(0).SetRoute(3, 1)
	n.Node(0).SetBackupRoutes(3, []NodeID{2})
	n.Node(1).SetRoute(3, 3)
	n.Node(2).SetRoute(3, 3)
	n.Node(0).SendData(3, 100, 64)
	s.Run()
	if len(rec.delivered) != 1 || rec.delivered[0].Trace[1] != 1 {
		t.Errorf("packet should use the primary while it is up; trace = %v", rec.delivered[0].Trace)
	}
}

func TestFastRerouteBackupDownToo(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, g, DefaultConfig(), rec)
	n.Node(0).SetRoute(3, 1)
	n.Node(0).SetBackupRoutes(3, []NodeID{2})
	n.FailLink(0, 1)
	n.FailLink(0, 2)
	n.Node(0).SendData(3, 100, 64)
	s.Run()
	// Both down: the packet dies on the primary (link-failure drop).
	if len(rec.drops) != 1 || rec.drops[0] != DropLinkFailure {
		t.Errorf("drops = %v, want [link-failure]", rec.drops)
	}
}

func TestClearBackupRoute(t *testing.T) {
	g := topology.Line(3)
	s := sim.New(1)
	n := FromGraph(s, g, DefaultConfig(), nil)
	n.Node(1).SetBackupRoutes(0, []NodeID{0})
	n.Node(1).ClearBackupRoutes(0)
	if nhs := n.Node(1).BackupRoutes(0); nhs != nil {
		t.Error("backup survived ClearBackupRoutes")
	}
	n.Node(1).ClearBackupRoutes(99) // no-op
}

func TestSetBackupRouteNonNeighborPanics(t *testing.T) {
	g := topology.Line(3)
	s := sim.New(1)
	n := FromGraph(s, g, DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Error("backup to non-neighbor did not panic")
		}
	}()
	n.Node(0).SetBackupRoutes(2, []NodeID{2})
}

func TestLinkCounters(t *testing.T) {
	cfg := Config{LinkRateBps: 8_000_000, LinkDelay: time.Millisecond, DetectDelay: time.Millisecond, QueueLimit: 1}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), cfg, nil)
	n.Node(0).SetRoute(1, 1)
	for i := 0; i < 4; i++ {
		n.Node(0).SendData(1, 1000, 64) // 1 transmitting, 1 queued, 2 dropped
	}
	s.Run()
	c := n.Link(0, 1).Counters(0)
	if c.TxPackets != 2 || c.TxBytes != 2000 {
		t.Errorf("tx counters = %+v, want 2 packets / 2000 bytes", c)
	}
	if c.QueueDrops != 2 {
		t.Errorf("queue drops = %d, want 2", c.QueueDrops)
	}
	if rev := n.Link(0, 1).Counters(1); rev.TxPackets != 0 {
		t.Errorf("reverse direction counters = %+v, want zero", rev)
	}
	if zero := n.Link(0, 1).Counters(99); zero != (PortCounters{}) {
		t.Errorf("non-endpoint counters = %+v, want zero value", zero)
	}
}

func TestFIFOQueueOrder(t *testing.T) {
	// Packets queued behind a busy transmitter must arrive in send order.
	cfg := Config{LinkRateBps: 8_000_000, LinkDelay: time.Millisecond, DetectDelay: time.Millisecond, QueueLimit: 100}
	rec := &recorder{}
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), cfg, rec)
	n.Node(0).SetRoute(1, 1)
	for i := 0; i < 10; i++ {
		n.Node(0).SendData(1, 1000, 64)
	}
	s.Run()
	if len(rec.delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(rec.delivered))
	}
	for i := 1; i < 10; i++ {
		if rec.delivered[i].ID <= rec.delivered[i-1].ID {
			t.Fatal("packets delivered out of order")
		}
	}
}

func TestNewPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero link rate did not panic")
		}
	}()
	New(sim.New(1), Config{}, nil)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LinkRateBps != 10_000_000 || cfg.LinkDelay != time.Millisecond ||
		cfg.DetectDelay != 50*time.Millisecond || cfg.QueueLimit != 20 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestDropReasonStrings(t *testing.T) {
	cases := map[DropReason]string{
		DropNoRoute:       "no-route",
		DropTTLExpired:    "ttl-expired",
		DropQueueOverflow: "queue-overflow",
		DropLinkFailure:   "link-failure",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if DropReason(99).String() == "" {
		t.Error("unknown reason renders empty")
	}
}

func TestAttachAfterStartPanics(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	n.Start()
	defer func() {
		if recover() == nil {
			t.Error("AttachProtocol after Start did not panic")
		}
	}()
	n.Node(0).AttachProtocol(&testProto{})
}

func TestDoubleStartPanics(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	n.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	n.Start()
}

func TestFailUnknownLinkPanics(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Error("FailLink on missing link did not panic")
		}
	}()
	n.FailLink(0, 5)
}

func TestFailAndRestoreIdempotent(t *testing.T) {
	s := sim.New(1)
	n := FromGraph(s, topology.Line(2), DefaultConfig(), nil)
	pa := &testProto{}
	n.Node(0).AttachProtocol(pa)
	n.Start()
	n.FailLink(0, 1)
	n.FailLink(0, 1) // no-op
	s.RunUntil(time.Second)
	n.RestoreLink(0, 1)
	n.RestoreLink(0, 1) // no-op
	s.RunUntil(2 * time.Second)
	if len(pa.downFrom) != 1 || len(pa.upFrom) != 1 {
		t.Errorf("down=%v up=%v, want exactly one each", pa.downFrom, pa.upFrom)
	}
}
