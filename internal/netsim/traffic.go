package netsim

import (
	"math"
	"time"

	"routeconv/internal/sim"
)

// Source generates data traffic from one node to a fixed destination.
// CBR (in node.go) is the paper's workload; Poisson and on/off sources
// support workload-sensitivity extensions.
type Source interface {
	// Stop halts the source; safe to call more than once.
	Stop()
}

// trafficSalt decorrelates per-source random streams from the per-node
// jitter streams that share the simulator seed.
const trafficSalt = 0x7472616666696373 // "traffics"

// sourceStream derives the private random stream for the node→dst traffic
// source. Per-source streams keep inter-arrival sequences identical
// across shard counts: they depend only on the source's own draw order.
func sourceStream(node *Node, dst NodeID) sim.Stream {
	return sim.NewStream(node.Sim().Seed()^trafficSalt,
		uint64(uint32(node.ID()))<<32|uint64(uint32(dst)))
}

// poisson sends packets with exponentially distributed inter-arrival
// times.
type poisson struct {
	node         *Node
	dst          NodeID
	meanInterval time.Duration
	size, ttl    int
	stopAt       time.Duration
	rng          sim.Stream
	event        sim.Event
}

var _ sim.Handler = (*poisson)(nil)

// StartPoisson begins a Poisson process of mean rate 1/meanInterval from
// node to dst, running from start until stop.
func StartPoisson(node *Node, dst NodeID, meanInterval time.Duration, size, ttl int, start, stop time.Duration) Source {
	if meanInterval <= 0 {
		panic("netsim: Poisson mean interval must be positive")
	}
	p := &poisson{node: node, dst: dst, meanInterval: meanInterval, size: size, ttl: ttl, stopAt: stop, rng: sourceStream(node, dst)}
	p.event = node.Sim().ScheduleHandlerAt(start, p, 0, nil)
	return p
}

func (p *poisson) Stop() {
	if p == nil {
		return
	}
	p.event.Cancel()
	p.event = sim.Event{}
}

// HandleEvent implements sim.Handler: one tick sends one packet and draws
// the next inter-arrival gap. A gap that lands at or past the deadline is
// not scheduled at all: the source finishes with no dead event pending.
func (p *poisson) HandleEvent(int32, any) {
	now := p.node.Sim().Now()
	if now >= p.stopAt {
		p.event = sim.Event{}
		return
	}
	p.node.SendData(p.dst, p.size, p.ttl)
	gap := exp(&p.rng, p.meanInterval)
	if now+gap >= p.stopAt {
		p.event = sim.Event{}
		return
	}
	p.event = p.node.Sim().ScheduleHandler(gap, p, 0, nil)
}

// onOff event kinds.
const (
	onOffBegin int32 = iota
	onOffTick
)

// onOff alternates exponentially distributed ON and OFF periods, sending
// at a constant rate while ON (the classic bursty-traffic model).
type onOff struct {
	node            *Node
	dst             NodeID
	interval        time.Duration
	onMean, offMean time.Duration
	size, ttl       int
	stopAt          time.Duration
	on              bool
	until           time.Duration // end of the current period
	rng             sim.Stream
	event           sim.Event
}

var _ sim.Handler = (*onOff)(nil)

// StartOnOff begins a bursty source: ON periods (mean onMean) during which
// packets flow every interval, separated by silent OFF periods (mean
// offMean). It starts ON at start and runs until stop.
func StartOnOff(node *Node, dst NodeID, interval, onMean, offMean time.Duration, size, ttl int, start, stop time.Duration) Source {
	if interval <= 0 || onMean <= 0 || offMean <= 0 {
		panic("netsim: on/off parameters must be positive")
	}
	o := &onOff{
		node: node, dst: dst, interval: interval,
		onMean: onMean, offMean: offMean,
		size: size, ttl: ttl, stopAt: stop,
		rng: sourceStream(node, dst),
	}
	o.event = node.Sim().ScheduleHandlerAt(start, o, onOffBegin, nil)
	return o
}

func (o *onOff) Stop() {
	if o == nil {
		return
	}
	o.event.Cancel()
	o.event = sim.Event{}
}

// HandleEvent implements sim.Handler, dispatching on the event kind.
func (o *onOff) HandleEvent(kind int32, _ any) {
	if kind == onOffBegin {
		o.begin()
	} else {
		o.tick()
	}
}

// begin opens an ON period.
func (o *onOff) begin() {
	now := o.node.Sim().Now()
	if now >= o.stopAt {
		o.event = sim.Event{}
		return
	}
	o.on = true
	o.until = now + exp(&o.rng, o.onMean)
	o.tick()
}

func (o *onOff) tick() {
	now := o.node.Sim().Now()
	if now >= o.stopAt {
		o.event = sim.Event{}
		return
	}
	if now >= o.until {
		// Go silent, then begin the next burst — unless the burst would
		// open at or past the deadline.
		o.on = false
		gap := exp(&o.rng, o.offMean)
		if now+gap >= o.stopAt {
			o.event = sim.Event{}
			return
		}
		o.event = o.node.Sim().ScheduleHandler(gap, o, onOffBegin, nil)
		return
	}
	o.node.SendData(o.dst, o.size, o.ttl)
	if now+o.interval >= o.stopAt {
		// The final tick lands exactly on (or past) the boundary: finish
		// without scheduling a dead event.
		o.event = sim.Event{}
		return
	}
	o.event = o.node.Sim().ScheduleHandler(o.interval, o, onOffTick, nil)
}

// exp draws an exponentially distributed duration with the given mean from
// the source's private random stream.
func exp(st *sim.Stream, mean time.Duration) time.Duration {
	d := time.Duration(-math.Log(1-st.Float64()) * float64(mean))
	if d <= 0 {
		d = 1 // never schedule at zero to keep the event loop finite
	}
	return d
}
