package netsim

import (
	"testing"

	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// diamond builds 0-(1|2)-3 with primary 0→1 plus an ECMP set {1, 2}.
func diamond(t *testing.T) (*sim.Simulator, *Network, *recorder) {
	t.Helper()
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	rec := &recorder{}
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.RecordHops = true
	n := FromGraph(s, g, cfg, rec)
	n.Node(0).SetRoute(3, 1)
	n.Node(0).SetMultipath(3, []NodeID{1, 2})
	n.Node(1).SetRoute(3, 3)
	n.Node(2).SetRoute(3, 3)
	return s, n, rec
}

func TestECMPFlowStaysOnOnePath(t *testing.T) {
	s, n, rec := diamond(t)
	for i := 0; i < 10; i++ {
		n.Node(0).SendData(3, 100, 64)
	}
	s.Run()
	if len(rec.delivered) != 10 {
		t.Fatalf("delivered %d, want 10", len(rec.delivered))
	}
	first := rec.delivered[0].Trace[1]
	for _, pkt := range rec.delivered {
		if pkt.Trace[1] != first {
			t.Fatalf("one flow used two paths: %v vs %v", first, pkt.Trace[1])
		}
	}
}

func TestECMPSpreadsDistinctFlows(t *testing.T) {
	// Many destinations on node 3's side is not possible in this diamond;
	// instead vary the source: flows (src, dst) hash differently.
	g := topology.NewGraph(8)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	for i := NodeID(4); i <= 7; i++ {
		g.AddEdge(i, 0)
	}
	rec := &recorder{}
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.RecordHops = true
	n := FromGraph(s, g, cfg, rec)
	n.Node(0).SetRoute(3, 1)
	n.Node(0).SetMultipath(3, []NodeID{1, 2})
	n.Node(1).SetRoute(3, 3)
	n.Node(2).SetRoute(3, 3)
	for i := NodeID(4); i <= 7; i++ {
		n.Node(i).SetRoute(3, 0)
	}
	for i := NodeID(4); i <= 7; i++ {
		n.Node(i).SendData(3, 100, 64)
	}
	s.Run()
	used := map[NodeID]bool{}
	for _, pkt := range rec.delivered {
		used[pkt.Trace[2]] = true // hop after node 0
	}
	if len(used) < 2 {
		t.Errorf("four flows all hashed onto one path; ECMP not spreading (used %v)", used)
	}
}

func TestECMPSkipsDownLink(t *testing.T) {
	s, n, rec := diamond(t)
	n.FailLink(0, 1)
	for i := 0; i < 5; i++ {
		n.Node(0).SendData(3, 100, 64)
	}
	s.Run()
	if len(rec.delivered) != 5 {
		t.Fatalf("delivered %d, want 5 (all via the surviving path)", len(rec.delivered))
	}
	for _, pkt := range rec.delivered {
		if pkt.Trace[1] != 2 {
			t.Errorf("packet used dead path: %v", pkt.Trace)
		}
	}
}

func TestECMPClearedBySmallSet(t *testing.T) {
	_, n, _ := diamond(t)
	n.Node(0).SetMultipath(3, []NodeID{1})
	if n.Node(0).Multipath(3) != nil {
		t.Error("single-entry multipath set not cleared")
	}
	n.Node(0).SetMultipath(3, nil)
	if n.Node(0).Multipath(3) != nil {
		t.Error("nil multipath set not cleared")
	}
}

func TestECMPNonNeighborPanics(t *testing.T) {
	_, n, _ := diamond(t)
	defer func() {
		if recover() == nil {
			t.Error("multipath to non-neighbor did not panic")
		}
	}()
	n.Node(0).SetMultipath(3, []NodeID{1, 3})
}
