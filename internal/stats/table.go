package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows of cells and renders them as aligned ASCII text or
// CSV — the harness's way of printing the paper's tables and figure series.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v, and float64 values
// are rendered compactly (NaN as "-").
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) {
				row[i] = "-"
			} else {
				row[i] = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
				if row[i] == "" || row[i] == "-0" {
					row[i] = "0"
				}
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as simple CSV (cells contain no commas or
// quotes in this harness).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
