// Package stats provides the small statistics toolkit the experiment
// harness uses: summary statistics, per-second time-series binning for the
// instantaneous throughput and delay figures, and table rendering.
package stats

import (
	"math"
	"sort"
	"time"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation. It returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sample is one timestamped observation.
type Sample struct {
	At    time.Duration
	Value float64
}

// BinCounts buckets samples into consecutive width-wide bins starting at
// origin and returns the number of samples per bin, producing nBins bins.
// Samples outside [origin, origin+nBins*width) are ignored. This yields the
// paper's instantaneous throughput (packets per second with width = 1 s).
func BinCounts(samples []Sample, origin time.Duration, width time.Duration, nBins int) []float64 {
	out := make([]float64, nBins)
	for _, s := range samples {
		i := binIndex(s.At, origin, width, nBins)
		if i >= 0 {
			out[i]++
		}
	}
	return out
}

// BinMeans buckets samples as BinCounts does and returns the mean Value per
// bin; empty bins are NaN so that averaging across trials can skip them.
// This yields the paper's instantaneous packet delay.
func BinMeans(samples []Sample, origin time.Duration, width time.Duration, nBins int) []float64 {
	sums := make([]float64, nBins)
	counts := make([]int, nBins)
	for _, s := range samples {
		i := binIndex(s.At, origin, width, nBins)
		if i >= 0 {
			sums[i] += s.Value
			counts[i]++
		}
	}
	out := make([]float64, nBins)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

func binIndex(at, origin, width time.Duration, nBins int) int {
	if at < origin || width <= 0 {
		return -1
	}
	i := int((at - origin) / width)
	if i >= nBins {
		return -1
	}
	return i
}

// AverageSeries averages several equal-length series elementwise, skipping
// NaN entries; a position that is NaN in every series stays NaN. It panics
// if the series lengths differ (a harness bug).
func AverageSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) != n {
			panic("stats: AverageSeries length mismatch")
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum, cnt := 0.0, 0
		for _, s := range series {
			if !math.IsNaN(s[i]) {
				sum += s[i]
				cnt++
			}
		}
		if cnt == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(cnt)
		}
	}
	return out
}
