package stats

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Plot renders one or more equal-length series as an ASCII chart, one
// column of glyphs per series — enough to eyeball the paper's Figure 5/7
// shapes in a terminal or a markdown report. NaN values are gaps.
type Plot struct {
	title  string
	xLabel string
	series []plotSeries
	height int
}

type plotSeries struct {
	name   string
	glyph  byte
	values []float64
}

// NewPlot returns a plot with the given title and x-axis label.
func NewPlot(title, xLabel string) *Plot {
	return &Plot{title: title, xLabel: xLabel, height: 12}
}

// SetHeight overrides the default 12-row plot body.
func (p *Plot) SetHeight(rows int) {
	if rows > 0 {
		p.height = rows
	}
}

// plotGlyphs assigns series marks in Add order.
const plotGlyphs = "*o+x#@%&"

// Add appends a named series. All series must have equal length; Add
// panics otherwise (a harness bug).
func (p *Plot) Add(name string, values []float64) {
	if len(p.series) > 0 && len(values) != len(p.series[0].values) {
		panic("stats: Plot series length mismatch")
	}
	glyph := plotGlyphs[len(p.series)%len(plotGlyphs)]
	p.series = append(p.series, plotSeries{name: name, glyph: glyph, values: values})
}

// Write renders the chart.
func (p *Plot) Write(w io.Writer) error {
	if len(p.series) == 0 || len(p.series[0].values) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", p.title)
		return err
	}
	width := len(p.series[0].values)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for _, v := range s.values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) { // all NaN
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		for x, v := range s.values {
			if math.IsNaN(v) {
				continue
			}
			row := int(math.Round((v - lo) / (hi - lo) * float64(p.height-1)))
			y := p.height - 1 - row
			grid[y][x] = s.glyph
		}
	}

	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.glyph, s.name))
	}
	if _, err := fmt.Fprintf(w, "%s  [%s]\n", p.title, strings.Join(legend, " ")); err != nil {
		return err
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = formatTick(hi)
		case p.height - 1:
			label = formatTick(lo)
		}
		if _, err := fmt.Fprintf(w, "%8s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%8s  %s\n", "", p.xLabel)
	return err
}

func formatTick(v float64) string {
	s := strconv.FormatFloat(v, 'g', 3, 64)
	if len(s) > 8 {
		s = strconv.FormatFloat(v, 'g', 2, 64)
	}
	return s
}
