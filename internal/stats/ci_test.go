package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCI95Small(t *testing.T) {
	if CI95(nil) != 0 || CI95([]float64{5}) != 0 {
		t.Error("CI95 of degenerate samples should be 0")
	}
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, values 1..5: mean 3, s = sqrt(2.5), t(4 df) = 2.776.
	xs := []float64{1, 2, 3, 4, 5}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestCI95LargeSampleUsesNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	s := Summarize(xs)
	want := 1.96 * s.Std / 10
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want normal-approx %v", got, want)
	}
}

func TestMeanCI95(t *testing.T) {
	mean, hw := MeanCI95([]float64{2, 4, 6})
	if mean != 4 {
		t.Errorf("mean = %v, want 4", mean)
	}
	if hw <= 0 {
		t.Errorf("half-width = %v, want positive", hw)
	}
}

// TestCI95Coverage: across many synthetic samples from a known
// distribution, the 95% CI should contain the true mean roughly 95% of the
// time (loosely bounded to keep the test stable).
func TestCI95Coverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 2000
	const trueMean = 10.0
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 12)
		for j := range xs {
			xs[j] = trueMean + rng.NormFloat64()*3
		}
		mean, hw := MeanCI95(xs)
		if math.Abs(mean-trueMean) <= hw {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("CI coverage = %.3f, want ≈ 0.95", rate)
	}
}
