package stats

import "math"

// tCritical95 holds two-sided 95% Student-t critical values for 1–30
// degrees of freedom; beyond that the normal approximation (1.96) is used.
var tCritical95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval for
// the mean of xs (Student's t). It returns 0 for samples of fewer than two
// values.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	s := Summarize(xs)
	df := n - 1
	t := 1.96
	if df <= len(tCritical95) {
		t = tCritical95[df-1]
	}
	return t * s.Std / math.Sqrt(float64(n))
}

// MeanCI95 returns the sample mean together with its 95% confidence
// half-width.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	return Mean(xs), CI95(xs)
}
