package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEqual(s.Mean, 3) || !almostEqual(s.Min, 1) || !almostEqual(s.Max, 5) || !almostEqual(s.Median, 3) {
		t.Errorf("Summarize = %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5)) {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("Summarize([7]) = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{2, 4}), 3) {
		t.Error("Mean([2 4]) != 3")
	}
}

func TestBinCounts(t *testing.T) {
	samples := []Sample{
		{At: 0, Value: 1},
		{At: 500 * time.Millisecond},
		{At: time.Second},
		{At: 2500 * time.Millisecond},
		{At: 10 * time.Second}, // outside
	}
	bins := BinCounts(samples, 0, time.Second, 3)
	want := []float64{2, 1, 1}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
}

func TestBinCountsOrigin(t *testing.T) {
	samples := []Sample{{At: 5 * time.Second}, {At: 4 * time.Second}}
	bins := BinCounts(samples, 5*time.Second, time.Second, 2)
	if bins[0] != 1 || bins[1] != 0 {
		t.Errorf("bins = %v; samples before origin must be ignored", bins)
	}
}

func TestBinMeans(t *testing.T) {
	samples := []Sample{
		{At: 100 * time.Millisecond, Value: 2},
		{At: 200 * time.Millisecond, Value: 4},
		{At: 1500 * time.Millisecond, Value: 10},
	}
	bins := BinMeans(samples, 0, time.Second, 3)
	if !almostEqual(bins[0], 3) || !almostEqual(bins[1], 10) || !math.IsNaN(bins[2]) {
		t.Errorf("bins = %v, want [3 10 NaN]", bins)
	}
}

func TestAverageSeries(t *testing.T) {
	nan := math.NaN()
	avg := AverageSeries([][]float64{
		{1, 2, nan, nan},
		{3, nan, 4, nan},
	})
	if !almostEqual(avg[0], 2) || !almostEqual(avg[1], 2) || !almostEqual(avg[2], 4) || !math.IsNaN(avg[3]) {
		t.Errorf("AverageSeries = %v", avg)
	}
}

func TestAverageSeriesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	AverageSeries([][]float64{{1}, {1, 2}})
}

func TestAverageSeriesEmpty(t *testing.T) {
	if AverageSeries(nil) != nil {
		t.Error("AverageSeries(nil) != nil")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return v1 <= v2 && v1 >= sorted[0] && v2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: total bin counts equal the number of in-range samples.
func TestPropertyBinCountsTotal(t *testing.T) {
	f := func(offsets []uint16) bool {
		samples := make([]Sample, len(offsets))
		inRange := 0
		for i, o := range offsets {
			at := time.Duration(o) * time.Millisecond * 10
			samples[i] = Sample{At: at}
			if at < 100*time.Second {
				inRange++
			}
		}
		bins := BinCounts(samples, 0, time.Second, 100)
		total := 0.0
		for _, b := range bins {
			total += b
		}
		return int(total) == inRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("degree", "rip", "dbf")
	tb.AddRow(3, 251.5, math.NaN())
	tb.AddRow(4, 10.0, 0.25)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"degree", "rip", "dbf", "251.5", "-", "0.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\n1,2.5\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow(3.0)
	tb.AddRow(0.0)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "x\n3\n0\n" {
		t.Errorf("CSV = %q, want trailing zeros trimmed", got)
	}
}
