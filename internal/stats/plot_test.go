package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	p := NewPlot("throughput", "seconds")
	p.Add("dbf", []float64{0, 5, 10, 20})
	p.Add("rip", []float64{0, 0, 0, 20})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"throughput", "*=dbf", "o=rip", "seconds", "20", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+12+2 {
		t.Errorf("plot has %d lines, want 15 (title + 12 rows + axis + label)", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "x")
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty plot output = %q", sb.String())
	}
}

func TestPlotNaNGaps(t *testing.T) {
	p := NewPlot("gaps", "x")
	p.Add("s", []float64{1, math.NaN(), 3})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	glyphs := strings.Count(sb.String(), "*")
	if glyphs != 3 { // legend + two data points
		t.Errorf("glyph count = %d, want 3 (legend star + 2 points)", glyphs)
	}
}

func TestPlotAllNaN(t *testing.T) {
	p := NewPlot("nan", "x")
	p.Add("s", []float64{math.NaN(), math.NaN()})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("flat", "x")
	p.Add("s", []float64{5, 5, 5})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "***") {
		t.Errorf("flat series not rendered:\n%s", sb.String())
	}
}

func TestPlotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	p := NewPlot("bad", "x")
	p.Add("a", []float64{1, 2})
	p.Add("b", []float64{1})
}

func TestPlotHeight(t *testing.T) {
	p := NewPlot("tall", "x")
	p.SetHeight(4)
	p.Add("s", []float64{1, 2, 3})
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+4+2 {
		t.Errorf("plot has %d lines, want 7", len(lines))
	}
}
