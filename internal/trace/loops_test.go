package trace

import (
	"testing"
	"testing/quick"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func TestFirstLoop(t *testing.T) {
	cases := []struct {
		name     string
		hops     []netsim.NodeID
		wantNode netsim.NodeID
		wantLen  int
		wantOK   bool
	}{
		{"empty", nil, 0, 0, false},
		{"straight", []netsim.NodeID{1, 2, 3, 4}, 0, 0, false},
		{"two-hop loop", []netsim.NodeID{1, 2, 1, 2, 3}, 1, 2, true},
		{"three-hop loop", []netsim.NodeID{5, 1, 2, 3, 1, 9}, 1, 3, true},
		{"immediate bounce", []netsim.NodeID{7, 8, 7}, 7, 2, true},
		{"loop at end", []netsim.NodeID{1, 2, 3, 2}, 2, 2, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			node, length, ok := FirstLoop(c.hops)
			if ok != c.wantOK || node != c.wantNode || length != c.wantLen {
				t.Errorf("FirstLoop(%v) = %d, %d, %v; want %d, %d, %v",
					c.hops, node, length, ok, c.wantNode, c.wantLen, c.wantOK)
			}
		})
	}
}

// Property: FirstLoop finds a loop exactly when the trace has a duplicate.
func TestPropertyFirstLoopIffDuplicate(t *testing.T) {
	f := func(raw []uint8) bool {
		hops := make([]netsim.NodeID, len(raw))
		seen := make(map[netsim.NodeID]bool)
		hasDup := false
		for i, r := range raw {
			id := netsim.NodeID(r % 16)
			hops[i] = id
			if seen[id] {
				hasDup = true
			}
			seen[id] = true
		}
		_, _, ok := FirstLoop(hops)
		return ok == hasDup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoopEscapesEndToEnd(t *testing.T) {
	// Ring 0-1-2-3: route 0→1→2→1... then repair mid-flight so the packet
	// escapes the loop and reaches 3.
	s := sim.New(1)
	c := NewCollector(0, 3)
	cfg := netsim.DefaultConfig()
	cfg.RecordHops = true
	n := netsim.FromGraph(s, topology.Line(4), cfg, c)
	c.SetNetwork(n)
	n.Node(0).SetRoute(3, 1)
	n.Node(1).SetRoute(3, 2)
	n.Node(2).SetRoute(3, 1) // loop 1↔2
	n.Node(0).SendData(3, 1000, 64)
	// Repair the loop after a few bounces.
	s.Schedule(20*time.Millisecond, func() { n.Node(2).SetRoute(3, 3) })
	s.Run()
	if len(c.Deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1 (packet should escape the loop)", len(c.Deliveries))
	}
	if !c.Deliveries[0].Looped {
		t.Error("delivery not marked as loop escape")
	}
	if got := c.LoopEscapes(0); got != 1 {
		t.Errorf("LoopEscapes = %d, want 1", got)
	}
	if c.Deliveries[0].Hops <= 3 {
		t.Errorf("escaped packet took %d hops, want > 3", c.Deliveries[0].Hops)
	}
}

func TestLoopEscapesWithoutRecordHops(t *testing.T) {
	// Without hop recording, traces are empty and nothing is flagged.
	s := sim.New(1)
	c := NewCollector(0, 2)
	n := netsim.FromGraph(s, topology.Line(3), netsim.DefaultConfig(), c)
	c.SetNetwork(n)
	n.Node(0).SetRoute(2, 1)
	n.Node(1).SetRoute(2, 2)
	n.Node(0).SendData(2, 100, 64)
	s.Run()
	if c.LoopEscapes(0) != 0 {
		t.Error("loop escape flagged without hop recording")
	}
}
