// Package trace collects routing and forwarding events during a simulation
// and derives the paper's convergence metrics: the network routing
// convergence time (last routing table change anywhere, §5.4) and the
// forwarding path convergence delay (last change of the sender→receiver
// forwarding walk), plus the transient-path and delivery/drop records that
// Figures 3–7 are computed from.
package trace

import (
	"time"

	"routeconv/internal/netsim"
)

// RouteChange is one forwarding-table modification.
type RouteChange struct {
	At      time.Duration
	Node    netsim.NodeID
	Dst     netsim.NodeID
	NextHop netsim.NodeID
	Removed bool
}

// PathSample is the sender→receiver forwarding walk observed at one
// instant. Path holds the nodes visited; OK is false when the walk hit a
// missing route, a loop, or a down link.
type PathSample struct {
	At   time.Duration
	Path []netsim.NodeID
	OK   bool
}

// Delivery records one data packet arriving at its destination.
type Delivery struct {
	At    time.Duration
	Delay time.Duration
	Hops  int
	// Looped reports whether the packet's trace revisited a node before
	// delivery (an escaped transient loop, §5.5). Only meaningful when the
	// network records hops.
	Looped bool
}

// Drop records one lost packet.
type Drop struct {
	At     time.Duration
	Where  netsim.NodeID
	Reason netsim.DropReason
	// Control marks routing messages (excluded from data-loss metrics).
	Control bool
}

// Collector is a netsim.Observer that records everything needed to compute
// the study's metrics for one (sender, receiver) flow. Create it, pass it
// to netsim as the observer, then call SetNetwork before the simulation
// starts.
type Collector struct {
	net      *netsim.Network
	src, dst netsim.NodeID

	// compact drops the per-event RouteChanges record, keeping only the
	// count and the time of the last change (see SetCompact).
	compact         bool
	routeChangeN    int
	lastRouteChange time.Duration

	RouteChanges []RouteChange
	PathHistory  []PathSample
	Deliveries   []Delivery
	Drops        []Drop
}

var _ netsim.Observer = (*Collector)(nil)

// NewCollector returns a collector for the flow src→dst.
func NewCollector(src, dst netsim.NodeID) *Collector {
	return &Collector{src: src, dst: dst}
}

// SetCompact, called before the simulation starts, stops the collector from
// recording individual RouteChanges; only their count and the time of the
// last one are kept, which is all RoutingConvergence needs. A converging
// 10k-node network generates ~10⁸ route changes — gigabytes of records —
// so bulk trial runs (core.Run) use compact mode, while tracing keeps the
// full record. Path sampling, deliveries and drops are unaffected.
func (c *Collector) SetCompact(on bool) { c.compact = on }

// NumRouteChanges returns the number of route changes observed, in either
// mode.
func (c *Collector) NumRouteChanges() int { return c.routeChangeN }

// SetNetwork binds the collector to the network it observes. Required
// before any event fires, because path sampling walks the network's
// forwarding tables.
func (c *Collector) SetNetwork(n *netsim.Network) { c.net = n }

// Flow returns the observed sender and receiver.
func (c *Collector) Flow() (src, dst netsim.NodeID) { return c.src, c.dst }

// RouteChanged implements netsim.Observer.
func (c *Collector) RouteChanged(at time.Duration, node, dst, nextHop netsim.NodeID, removed bool) {
	c.routeChangeN++
	c.lastRouteChange = at
	if !c.compact {
		c.RouteChanges = append(c.RouteChanges, RouteChange{At: at, Node: node, Dst: dst, NextHop: nextHop, Removed: removed})
	}
	if dst == c.dst {
		c.SamplePath()
	}
}

// PacketDelivered implements netsim.Observer.
func (c *Collector) PacketDelivered(at time.Duration, pkt *netsim.Packet) {
	if pkt.Dst != c.dst {
		return
	}
	c.Deliveries = append(c.Deliveries, Delivery{
		At:     at,
		Delay:  at - pkt.Created,
		Hops:   pkt.HopCount,
		Looped: Looped(pkt),
	})
}

// LoopEscapes counts deliveries at or after t whose packets had crossed a
// forwarding loop. It requires the network to record hops.
func (c *Collector) LoopEscapes(t time.Duration) int {
	n := 0
	for _, d := range c.Deliveries {
		if d.At >= t && d.Looped {
			n++
		}
	}
	return n
}

// PacketDropped implements netsim.Observer. Data drops are recorded only
// for this collector's flow, so that multi-flow runs with one collector per
// flow do not double-count; control drops are always recorded.
func (c *Collector) PacketDropped(at time.Duration, where netsim.NodeID, pkt *netsim.Packet, reason netsim.DropReason) {
	if !pkt.Control() && pkt.Dst != c.dst {
		return
	}
	c.Drops = append(c.Drops, Drop{At: at, Where: where, Reason: reason, Control: pkt.Control()})
}

// SamplePath records the current sender→receiver forwarding walk if it
// differs from the last recorded one. Call it manually at moments the walk
// can change without a route-change event (e.g. at failure injection).
func (c *Collector) SamplePath() {
	if c.net == nil {
		return
	}
	path, ok := c.net.WalkPath(c.src, c.dst)
	if last := c.lastSample(); last != nil && last.OK == ok && pathEqual(last.Path, path) {
		return
	}
	cp := make([]netsim.NodeID, len(path))
	copy(cp, path)
	c.PathHistory = append(c.PathHistory, PathSample{At: c.net.Sim().Now(), Path: cp, OK: ok})
}

func (c *Collector) lastSample() *PathSample {
	if len(c.PathHistory) == 0 {
		return nil
	}
	return &c.PathHistory[len(c.PathHistory)-1]
}

// RoutingConvergence returns the network routing convergence time after a
// failure at failAt: the time from failAt to the last routing table change
// anywhere in the network. It returns 0 when nothing changed after failAt.
func (c *Collector) RoutingConvergence(failAt time.Duration) time.Duration {
	if c.compact {
		// Simulation time is monotone, so the overall last change is after
		// failAt exactly when it is the last change ≥ failAt.
		if c.lastRouteChange >= failAt && c.lastRouteChange > 0 {
			return c.lastRouteChange - failAt
		}
		return 0
	}
	var last time.Duration
	for _, rc := range c.RouteChanges {
		if rc.At >= failAt && rc.At > last {
			last = rc.At
		}
	}
	if last == 0 {
		return 0
	}
	return last - failAt
}

// ForwardingConvergence returns the forwarding path convergence delay after
// a failure at failAt: the time from failAt until the sender→receiver walk
// last changed. It returns 0 when the walk never changed after failAt.
func (c *Collector) ForwardingConvergence(failAt time.Duration) time.Duration {
	var last time.Duration
	for _, ps := range c.PathHistory {
		if ps.At >= failAt && ps.At > last {
			last = ps.At
		}
	}
	if last == 0 {
		return 0
	}
	return last - failAt
}

// TransientPaths returns the number of distinct forwarding walks observed
// in (failAt, ∞), i.e. how many intermediate paths the flow crossed before
// settling (§2: "number of transient forwarding paths").
func (c *Collector) TransientPaths(failAt time.Duration) int {
	n := 0
	for _, ps := range c.PathHistory {
		if ps.At > failAt {
			n++
		}
	}
	return n
}

// DataDropsAfter counts non-control drops with the given reason at or
// after t.
func (c *Collector) DataDropsAfter(t time.Duration, reason netsim.DropReason) int {
	n := 0
	for _, d := range c.Drops {
		if !d.Control && d.At >= t && d.Reason == reason {
			n++
		}
	}
	return n
}

// DeliveredIn counts deliveries in the half-open interval [from, to).
func (c *Collector) DeliveredIn(from, to time.Duration) int {
	n := 0
	for _, d := range c.Deliveries {
		if d.At >= from && d.At < to {
			n++
		}
	}
	return n
}

func pathEqual(a, b []netsim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
