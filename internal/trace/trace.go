// Package trace collects routing and forwarding events during a simulation
// and derives the paper's convergence metrics: the network routing
// convergence time (last routing table change anywhere, §5.4) and the
// forwarding path convergence delay (last change of the sender→receiver
// forwarding walk), plus the transient-path and delivery/drop records that
// Figures 3–7 are computed from.
package trace

import (
	"time"

	"routeconv/internal/netsim"
)

// RouteChange is one forwarding-table modification.
type RouteChange struct {
	At      time.Duration
	Node    netsim.NodeID
	Dst     netsim.NodeID
	NextHop netsim.NodeID
	Removed bool
}

// PathSample is the sender→receiver forwarding walk observed at one
// instant. Path holds the nodes visited; OK is false when the walk hit a
// missing route, a loop, or a down link.
type PathSample struct {
	At   time.Duration
	Path []netsim.NodeID
	OK   bool
}

// Delivery records one data packet arriving at its destination.
type Delivery struct {
	At    time.Duration
	Delay time.Duration
	Hops  int
	// Looped reports whether the packet's trace revisited a node before
	// delivery (an escaped transient loop, §5.5). Only meaningful when the
	// network records hops.
	Looped bool
}

// Drop records one lost packet.
type Drop struct {
	At     time.Duration
	Where  netsim.NodeID
	Reason netsim.DropReason
	// Control marks routing messages (excluded from data-loss metrics).
	Control bool
}

// Collector is a netsim.Observer that records everything needed to compute
// the study's metrics for one (sender, receiver) flow. Create it, pass it
// to netsim as the observer, then call SetNetwork before the simulation
// starts.
//
// Recording is instant-granular: records raised at one simulation instant
// are buffered until the instant ends, then committed in a canonical
// order (and the forwarding walk sampled once, at the instant's final
// state). Same-instant events carry no defined order — a sequential run
// orders them by scheduling accident, a sharded run by shard interleaving
// — so canonical commit order is what makes trial output identical across
// engine configurations. Call Flush after the run to commit the tail.
type Collector struct {
	net      *netsim.Network
	src, dst netsim.NodeID

	// compact drops the per-event RouteChanges record, keeping only the
	// count and the time of the last change (see SetCompact).
	compact         bool
	routeChangeN    int
	lastRouteChange time.Duration

	// Pending-instant state: route changes (and the walk they imply) at
	// rcAt, drops at dropAt, committed when a later instant begins.
	rcAt     time.Duration
	rcOpen   bool
	pendRC   []RouteChange
	pendPath []netsim.NodeID
	pendOK   bool
	pendWalk bool
	dropAt   time.Duration
	dropOpen bool
	pendDrop []Drop
	// shadow mirrors every forwarding entry as of the last committed
	// instant ((node, dst) → next hop, absent = no route), so commits can
	// reduce an instant's churn to its net effect. lastIdx is flush
	// scratch. Full-record mode only.
	shadow  map[uint64]netsim.NodeID
	lastIdx map[uint64]int

	RouteChanges []RouteChange
	PathHistory  []PathSample
	Deliveries   []Delivery
	Drops        []Drop
}

var _ netsim.Observer = (*Collector)(nil)

// NewCollector returns a collector for the flow src→dst.
func NewCollector(src, dst netsim.NodeID) *Collector {
	return &Collector{src: src, dst: dst}
}

// SetCompact, called before the simulation starts, stops the collector from
// recording individual RouteChanges; only their count and the time of the
// last one are kept, which is all RoutingConvergence needs. A converging
// 10k-node network generates ~10⁸ route changes — gigabytes of records —
// so bulk trial runs (core.Run) use compact mode, while tracing keeps the
// full record. Path sampling, deliveries and drops are unaffected.
func (c *Collector) SetCompact(on bool) { c.compact = on }

// NumRouteChanges returns the number of route changes observed, in either
// mode.
func (c *Collector) NumRouteChanges() int { return c.routeChangeN }

// SetNetwork binds the collector to the network it observes. Required
// before any event fires, because path sampling walks the network's
// forwarding tables.
func (c *Collector) SetNetwork(n *netsim.Network) { c.net = n }

// Flow returns the observed sender and receiver.
func (c *Collector) Flow() (src, dst netsim.NodeID) { return c.src, c.dst }

// RouteChanged implements netsim.Observer.
func (c *Collector) RouteChanged(at time.Duration, node, dst, nextHop netsim.NodeID, removed bool) {
	if c.rcOpen && at != c.rcAt {
		c.flushRouteInstant()
	}
	c.rcOpen = true
	c.rcAt = at
	c.routeChangeN++
	c.lastRouteChange = at
	if !c.compact {
		c.pendRC = append(c.pendRC, RouteChange{At: at, Node: node, Dst: dst, NextHop: nextHop, Removed: removed})
	}
	if dst == c.dst && c.net != nil {
		// Walk now — the forwarding tables hold this instant's state — but
		// commit only the instant's last walk. The walk reads nothing but
		// each node's entry for c.dst, and same-instant writes to one
		// (node, dst) entry keep their order, so the instant's final walk
		// is independent of how same-instant changes interleaved.
		path, ok := c.net.WalkPath(c.src, c.dst)
		c.pendPath = append(c.pendPath[:0], path...)
		c.pendOK = ok
		c.pendWalk = true
	}
}

// flushRouteInstant commits the pending route-change instant: the
// instant's net effect per forwarding entry is appended in canonical
// order, and the instant's final forwarding walk becomes a path sample
// (if it differs from the last one recorded).
//
// Net-effect reduction — keeping only entries whose end-of-instant value
// differs from their start-of-instant value — is what makes the record
// engine-invariant: same-instant protocol work (e.g. a link-state node
// recomputing once per simultaneous LSA arrival) passes through
// order-dependent intermediate states, but its final state depends only
// on what arrived, not the arrival order.
func (c *Collector) flushRouteInstant() {
	c.rcOpen = false
	if len(c.pendRC) > 0 {
		c.commitRouteInstant()
	}
	if c.pendWalk {
		c.pendWalk = false
		c.commitSample(c.rcAt, c.pendPath, c.pendOK)
	}
}

// noEntry is the shadow-table sentinel for "no route" (forwarding entries
// are never negative).
const noEntry netsim.NodeID = -1

func (c *Collector) commitRouteInstant() {
	if c.shadow == nil {
		c.shadow = make(map[uint64]netsim.NodeID)
		c.lastIdx = make(map[uint64]int)
	}
	for i, rc := range c.pendRC {
		c.lastIdx[uint64(uint32(rc.Node))<<32|uint64(uint32(rc.Dst))] = i
	}
	start := len(c.RouteChanges)
	for i, rc := range c.pendRC {
		key := uint64(uint32(rc.Node))<<32 | uint64(uint32(rc.Dst))
		if c.lastIdx[key] != i {
			continue // a later same-instant write to this entry wins
		}
		delete(c.lastIdx, key)
		val := rc.NextHop
		if rc.Removed {
			val = noEntry
		}
		old, ok := c.shadow[key]
		if !ok {
			old = noEntry
		}
		if val == old {
			continue // net-zero churn within the instant
		}
		c.shadow[key] = val
		c.RouteChanges = append(c.RouteChanges, rc)
	}
	sortRouteChanges(c.RouteChanges[start:])
	c.pendRC = c.pendRC[:0]
}

// sortRouteChanges orders one instant's records by content (node, then
// destination, next hop, removal flag) with an insertion sort — groups are
// tiny and the hot path must not allocate.
func sortRouteChanges(rcs []RouteChange) {
	for i := 1; i < len(rcs); i++ {
		for j := i; j > 0 && routeChangeLess(&rcs[j], &rcs[j-1]); j-- {
			rcs[j], rcs[j-1] = rcs[j-1], rcs[j]
		}
	}
}

func routeChangeLess(a, b *RouteChange) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.NextHop != b.NextHop {
		return a.NextHop < b.NextHop
	}
	return !a.Removed && b.Removed
}

// PacketDelivered implements netsim.Observer.
func (c *Collector) PacketDelivered(at time.Duration, pkt *netsim.Packet) {
	if pkt.Dst != c.dst {
		return
	}
	c.Deliveries = append(c.Deliveries, Delivery{
		At:     at,
		Delay:  at - pkt.Created,
		Hops:   pkt.HopCount,
		Looped: Looped(pkt),
	})
}

// LoopEscapes counts deliveries at or after t whose packets had crossed a
// forwarding loop. It requires the network to record hops.
func (c *Collector) LoopEscapes(t time.Duration) int {
	n := 0
	for _, d := range c.Deliveries {
		if d.At >= t && d.Looped {
			n++
		}
	}
	return n
}

// PacketDropped implements netsim.Observer. Data drops are recorded only
// for this collector's flow, so that multi-flow runs with one collector per
// flow do not double-count; control drops are always recorded.
func (c *Collector) PacketDropped(at time.Duration, where netsim.NodeID, pkt *netsim.Packet, reason netsim.DropReason) {
	if !pkt.Control() && pkt.Dst != c.dst {
		return
	}
	if c.dropOpen && at != c.dropAt {
		c.flushDropInstant()
	}
	c.dropOpen = true
	c.dropAt = at
	c.pendDrop = append(c.pendDrop, Drop{At: at, Where: where, Reason: reason, Control: pkt.Control()})
}

// flushDropInstant commits the pending drop instant in canonical order.
func (c *Collector) flushDropInstant() {
	c.dropOpen = false
	for i := 1; i < len(c.pendDrop); i++ {
		for j := i; j > 0 && dropLess(&c.pendDrop[j], &c.pendDrop[j-1]); j-- {
			c.pendDrop[j], c.pendDrop[j-1] = c.pendDrop[j-1], c.pendDrop[j]
		}
	}
	c.Drops = append(c.Drops, c.pendDrop...)
	c.pendDrop = c.pendDrop[:0]
}

func dropLess(a, b *Drop) bool {
	if a.Where != b.Where {
		return a.Where < b.Where
	}
	if a.Reason != b.Reason {
		return a.Reason < b.Reason
	}
	return !a.Control && b.Control
}

// Flush commits any pending instant's records. Call once after the
// simulation ends, before reading the record slices or derived metrics.
func (c *Collector) Flush() {
	if c.rcOpen {
		c.flushRouteInstant()
	}
	if c.dropOpen {
		c.flushDropInstant()
	}
}

// SamplePath records the current sender→receiver forwarding walk if it
// differs from the last recorded one. Call it manually at moments the walk
// can change without a route-change event (e.g. at failure injection).
// Pending instants are flushed first so the record stays in time order.
func (c *Collector) SamplePath() {
	if c.net == nil {
		return
	}
	c.Flush()
	path, ok := c.net.WalkPath(c.src, c.dst)
	c.commitSample(c.net.Sim().Now(), path, ok)
}

// commitSample appends the walk as a path sample at time at, unless it
// matches the last recorded sample.
func (c *Collector) commitSample(at time.Duration, path []netsim.NodeID, ok bool) {
	if last := c.lastSample(); last != nil && last.OK == ok && pathEqual(last.Path, path) {
		return
	}
	cp := make([]netsim.NodeID, len(path))
	copy(cp, path)
	c.PathHistory = append(c.PathHistory, PathSample{At: at, Path: cp, OK: ok})
}

func (c *Collector) lastSample() *PathSample {
	if len(c.PathHistory) == 0 {
		return nil
	}
	return &c.PathHistory[len(c.PathHistory)-1]
}

// RoutingConvergence returns the network routing convergence time after a
// failure at failAt: the time from failAt to the last routing table change
// anywhere in the network. It returns 0 when nothing changed after failAt.
func (c *Collector) RoutingConvergence(failAt time.Duration) time.Duration {
	// Simulation time is monotone, so the overall last change is after
	// failAt exactly when it is the last change ≥ failAt. The raw counter
	// is used in full-record mode too: the RouteChanges slice holds each
	// instant's net effect, which may omit the final (net-zero) churn.
	if c.lastRouteChange >= failAt && c.lastRouteChange > 0 {
		return c.lastRouteChange - failAt
	}
	return 0
}

// ForwardingConvergence returns the forwarding path convergence delay after
// a failure at failAt: the time from failAt until the sender→receiver walk
// last changed. It returns 0 when the walk never changed after failAt.
func (c *Collector) ForwardingConvergence(failAt time.Duration) time.Duration {
	var last time.Duration
	for _, ps := range c.PathHistory {
		if ps.At >= failAt && ps.At > last {
			last = ps.At
		}
	}
	if last == 0 {
		return 0
	}
	return last - failAt
}

// TransientPaths returns the number of distinct forwarding walks observed
// in (failAt, ∞), i.e. how many intermediate paths the flow crossed before
// settling (§2: "number of transient forwarding paths").
func (c *Collector) TransientPaths(failAt time.Duration) int {
	n := 0
	for _, ps := range c.PathHistory {
		if ps.At > failAt {
			n++
		}
	}
	return n
}

// DataDropsAfter counts non-control drops with the given reason at or
// after t.
func (c *Collector) DataDropsAfter(t time.Duration, reason netsim.DropReason) int {
	n := 0
	for _, d := range c.Drops {
		if !d.Control && d.At >= t && d.Reason == reason {
			n++
		}
	}
	return n
}

// DeliveredIn counts deliveries in the half-open interval [from, to).
func (c *Collector) DeliveredIn(from, to time.Duration) int {
	n := 0
	for _, d := range c.Deliveries {
		if d.At >= from && d.At < to {
			n++
		}
	}
	return n
}

func pathEqual(a, b []netsim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
