package trace

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// buildLine creates a 0-1-2 line with static routes 0→2 and the collector
// attached, returning everything needed by the tests.
func buildLine(t *testing.T) (*sim.Simulator, *netsim.Network, *Collector) {
	t.Helper()
	s := sim.New(1)
	c := NewCollector(0, 2)
	n := netsim.FromGraph(s, topology.Line(3), netsim.DefaultConfig(), c)
	c.SetNetwork(n)
	n.Node(0).SetRoute(2, 1)
	n.Node(1).SetRoute(2, 2)
	return s, n, c
}

func TestRouteChangesRecorded(t *testing.T) {
	_, _, c := buildLine(t)
	c.Flush()
	if len(c.RouteChanges) != 2 {
		t.Fatalf("recorded %d route changes, want 2", len(c.RouteChanges))
	}
	if c.RouteChanges[0].Node != 0 || c.RouteChanges[0].Dst != 2 || c.RouteChanges[0].NextHop != 1 {
		t.Errorf("first change = %+v", c.RouteChanges[0])
	}
}

func TestPathSampledOnRelevantChange(t *testing.T) {
	_, n, c := buildLine(t)
	c.Flush()
	// Both route changes happen at the same instant, so exactly one sample
	// is committed: the instant's final (complete) walk.
	if len(c.PathHistory) != 1 {
		t.Fatalf("path history = %d entries, want 1 (one per instant)", len(c.PathHistory))
	}
	last := c.PathHistory[len(c.PathHistory)-1]
	if !last.OK || len(last.Path) != 3 {
		t.Errorf("final sample = %+v, want complete 3-node path", last)
	}
	// A route change for an unrelated destination must not add samples.
	n.Node(1).SetRoute(0, 0)
	c.Flush()
	if len(c.PathHistory) != 1 {
		t.Error("unrelated route change added a path sample")
	}
}

func TestSamplePathDedup(t *testing.T) {
	_, _, c := buildLine(t)
	c.Flush()
	before := len(c.PathHistory)
	c.SamplePath()
	c.SamplePath()
	if len(c.PathHistory) != before {
		t.Error("identical consecutive samples were not deduplicated")
	}
}

func TestDeliveriesAndDrops(t *testing.T) {
	s, n, c := buildLine(t)
	n.Node(0).SendData(2, 1000, 64)
	s.Run()
	c.Flush()
	if len(c.Deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(c.Deliveries))
	}
	d := c.Deliveries[0]
	if d.Hops != 2 || d.Delay <= 0 {
		t.Errorf("delivery = %+v", d)
	}
	// Break the flow's path and send again: a no-route drop on the flow.
	n.Node(1).ClearRoute(2)
	n.Node(0).SendData(2, 1000, 64)
	s.Run()
	c.Flush()
	if got := c.DataDropsAfter(0, netsim.DropNoRoute); got != 1 {
		t.Errorf("no-route drops = %d, want 1", got)
	}
}

func TestDropsForOtherFlowIgnored(t *testing.T) {
	s, n, c := buildLine(t)
	n.Node(2).SendData(0, 1000, 64) // reverse direction: not the observed flow
	s.Run()
	c.Flush()
	if got := c.DataDropsAfter(0, netsim.DropNoRoute); got != 0 {
		t.Errorf("drop of another flow counted: %d", got)
	}
}

func TestDeliveryForOtherFlowIgnored(t *testing.T) {
	s := sim.New(1)
	c := NewCollector(0, 2)
	n := netsim.FromGraph(s, topology.Line(3), netsim.DefaultConfig(), c)
	c.SetNetwork(n)
	n.Node(0).SetRoute(1, 1)
	n.Node(0).SendData(1, 100, 64) // destination 1, not the observed flow
	s.Run()
	if len(c.Deliveries) != 0 {
		t.Error("delivery to a different destination was recorded")
	}
}

func TestConvergenceMetrics(t *testing.T) {
	s, n, c := buildLine(t)
	failAt := 10 * time.Second
	s.Schedule(failAt, func() {
		n.FailLink(1, 2)
		c.SamplePath() // the walk breaks with no route-change event
	})
	// The "protocol" repairs routing 3 s later by removing the route.
	s.Schedule(13*time.Second, func() { n.Node(1).ClearRoute(2) })
	// And 5 s after that finds a new path (restore for simplicity).
	s.Schedule(18*time.Second, func() {
		n.RestoreLink(1, 2)
		n.Node(1).SetRoute(2, 2)
	})
	s.Run()
	c.Flush()

	if got := c.RoutingConvergence(failAt); got != 8*time.Second {
		t.Errorf("RoutingConvergence = %v, want 8s", got)
	}
	if got := c.ForwardingConvergence(failAt); got != 8*time.Second {
		t.Errorf("ForwardingConvergence = %v, want 8s", got)
	}
	// Transient walks after the failure instant: only the restored path at
	// 18 s — the 13 s walk ([0 1], broken) dedups against the sample taken
	// at the failure itself, and the failure-instant sample is excluded.
	if got := c.TransientPaths(failAt); got != 1 {
		t.Errorf("TransientPaths = %v, want 1", got)
	}
}

func TestConvergenceZeroWhenQuiet(t *testing.T) {
	_, _, c := buildLine(t)
	if got := c.RoutingConvergence(time.Hour); got != 0 {
		t.Errorf("RoutingConvergence with no later changes = %v, want 0", got)
	}
	if got := c.ForwardingConvergence(time.Hour); got != 0 {
		t.Errorf("ForwardingConvergence with no later changes = %v, want 0", got)
	}
}

func TestDeliveredIn(t *testing.T) {
	s, n, c := buildLine(t)
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Duration(i)*time.Second, func() { n.Node(0).SendData(2, 100, 64) })
	}
	s.Run()
	if got := c.DeliveredIn(0, 2*time.Second); got != 2 {
		t.Errorf("DeliveredIn[0,2s) = %d, want 2", got)
	}
	if got := c.DeliveredIn(0, time.Hour); got != 5 {
		t.Errorf("DeliveredIn all = %d, want 5", got)
	}
}

func TestControlDropsExcluded(t *testing.T) {
	s := sim.New(1)
	c := NewCollector(0, 1)
	n := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), c)
	c.SetNetwork(n)
	n.FailLink(0, 1)
	n.Node(0).SendControl(1, sizeMsg{})
	s.Run()
	c.Flush()
	if got := c.DataDropsAfter(0, netsim.DropLinkFailure); got != 0 {
		t.Errorf("control drop counted as data drop: %d", got)
	}
	if len(c.Drops) != 1 || !c.Drops[0].Control {
		t.Errorf("drops = %+v, want one control drop", c.Drops)
	}
}

type sizeMsg struct{}

func (sizeMsg) SizeBytes() int { return 100 }
