package trace

import "routeconv/internal/netsim"

// FirstLoop scans a packet's hop trace for the first revisited node and
// returns that node and the loop length (number of hops between the two
// visits). ok is false when the trace never revisits a node.
//
// The paper's §5.5 observes that packets which escape a transient loop are
// delivered with far larger delays than packets that merely took a
// sub-optimal path; this is the primitive behind that analysis.
func FirstLoop(hops []netsim.NodeID) (node netsim.NodeID, length int, ok bool) {
	seenAt := make(map[netsim.NodeID]int, len(hops))
	for i, n := range hops {
		if j, seen := seenAt[n]; seen {
			return n, i - j, true
		}
		seenAt[n] = i
	}
	return 0, 0, false
}

// Looped reports whether the packet's recorded trace revisits any node.
// It requires the network to run with Config.RecordHops enabled.
func Looped(pkt *netsim.Packet) bool {
	_, _, ok := FirstLoop(pkt.Trace)
	return ok
}
