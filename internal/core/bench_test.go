package core

import (
	"fmt"
	"runtime/debug"
	"testing"
)

// BenchmarkConvergence measures one full 10k-node BA RIP convergence
// trial end to end — build, warm-up, failure, measurement — at each shard
// count. shards-1 is the sequential engine (the sharded path is never
// entered); the others split the topology over that many simulators with
// conservative windows. On a multi-core host the sharded variants show
// the parallel speedup; on one core they show the barrier overhead.
// Run with -bench Convergence -benchtime 1x; each iteration is a whole
// trial, tens of seconds of virtual time.
func BenchmarkConvergence(b *testing.B) {
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rip-10k-shards%d", shards), func(b *testing.B) {
			cfg := scaleSmokeConfig()
			if shards > 1 {
				cfg.Shards = shards
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.WarmedUpTrials != 1 {
					b.Fatalf("trial did not warm up: %d/1", res.WarmedUpTrials)
				}
			}
		})
	}
}
