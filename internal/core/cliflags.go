package core

import "flag"

// MeshFlags bundles the topology command-line flags shared by the repo's
// CLIs (convsim, tracer, topoview): the mesh geometry plus the -topo spec
// that overrides it. Set the fields to the desired defaults, then call
// Register before parsing.
type MeshFlags struct {
	Rows, Cols, Degree int
	// Topo is a topology spec string ("ba:n=10000,m=2", "file:as.edges",
	// ...); when non-empty it replaces the mesh geometry entirely.
	Topo string
}

// DefaultMeshFlags returns the paper's mesh geometry (7×7, degree 4).
func DefaultMeshFlags() MeshFlags { return MeshFlags{Rows: 7, Cols: 7, Degree: 4} }

// Register declares -rows, -cols, -degree and -topo on fs, using the
// current field values as defaults.
func (m *MeshFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&m.Rows, "rows", m.Rows, "mesh rows")
	fs.IntVar(&m.Cols, "cols", m.Cols, "mesh columns")
	fs.IntVar(&m.Degree, "degree", m.Degree, "target interior node degree (3-16)")
	fs.StringVar(&m.Topo, "topo", m.Topo,
		"topology spec overriding the mesh, e.g. ba:n=10000,m=2 | fattree:k=8 | file:as.edges")
}

// ExperimentFlags bundles the experiment-selection flags shared by convsim
// and tracer: mesh geometry plus protocol, seed, and traffic mode.
type ExperimentFlags struct {
	MeshFlags
	Protocol string
	Seed     int64
	// Mode is the background-flow traffic engine; empty means packet.
	Mode string
	// Shards is the number of parallel simulation shards; ≤1 is sequential.
	Shards int
	// Scenario is a disturbance script in the text grammar (SCENARIOS.md);
	// empty keeps the default single-link failure schedule.
	Scenario string
}

// Register declares the mesh flags plus -protocol, -seed and -mode on fs,
// using the current field values as defaults.
func (e *ExperimentFlags) Register(fs *flag.FlagSet) {
	e.MeshFlags.Register(fs)
	fs.StringVar(&e.Protocol, "protocol", e.Protocol, "routing protocol: rip, dbf, bgp, bgp3, ls")
	fs.Int64Var(&e.Seed, "seed", e.Seed, "base random seed")
	fs.StringVar(&e.Mode, "mode", e.Mode,
		"background-flow traffic engine: packet, fluid, hybrid (flow 0 is always packet-simulated)")
	fs.IntVar(&e.Shards, "shards", e.Shards,
		"parallel simulation shards per trial (conservative sync; ≤1 = sequential, results identical)")
	fs.StringVar(&e.Scenario, "scenario", e.Scenario,
		`disturbance script, e.g. "fail link 3-7 @400s; loss link 1-2 p=0.01 @410s" (see SCENARIOS.md)`)
}

// Config resolves the parsed flags into an experiment configuration:
// DefaultConfig overlaid with the flag values.
func (e *ExperimentFlags) Config() (Config, error) {
	proto, err := ParseProtocol(e.Protocol)
	if err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Rows, cfg.Cols, cfg.Degree = e.Rows, e.Cols, e.Degree
	cfg.Topo = e.Topo
	cfg.Seed = e.Seed
	if e.Mode != "" {
		mode, err := ParseTrafficMode(e.Mode)
		if err != nil {
			return Config{}, err
		}
		cfg.Mode = mode
	}
	cfg.Shards = e.Shards
	if e.Scenario != "" {
		cfg.Scenario = e.Scenario
		// A script replaces the default failure schedule wholesale; clear
		// the legacy knobs so Validate doesn't reject the combination.
		cfg.RestoreAfter = 0
		cfg.Flaps = 0
		cfg.ExtraFailAts = nil
	}
	return cfg, nil
}
