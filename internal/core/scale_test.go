package core

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"testing"
	"time"

	"routeconv/internal/scenario"
)

// scaleSmokeConfig is the shared internet-scale trial: one full RIP
// convergence trial — warm-up, probe flow, on-path link failure,
// measurement — on a 10,000-node power-law graph.
//
// The configuration scales the paper's §5 parameters to 10k nodes rather
// than copying them: periodic full-table floods are pushed past the
// horizon (a 10k-node full table is ~667 packets per link — triggered
// updates carry convergence), triggered-update damping is tightened so
// convergence completes within the short horizon, and MaxEntries is raised
// so a full table is hundreds rather than thousands of packets.
func scaleSmokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Protocol = ProtoRIP
	cfg.Topo = "ba:n=10000,m=2,seed=1"
	cfg.Trials = 1
	cfg.SenderStart = 12 * time.Second
	cfg.FailAt = 15 * time.Second
	cfg.End = 25 * time.Second
	cfg.Vector.PeriodicInterval = 600 * time.Second // beyond the horizon
	cfg.Vector.PeriodicJitter = time.Second
	cfg.Vector.DampMin = 500 * time.Millisecond
	cfg.Vector.DampMax = time.Second
	cfg.Vector.MaxEntries = 5000
	cfg.Vector.Infinity = 24 // BA diameter ~10; default 16 is too tight a margin, 64 drags out count-to-infinity
	return cfg
}

// smokeBudget reads the wall-clock budget for the scale smokes, overridable
// with SCALE_SMOKE_BUDGET_SECONDS.
func smokeBudget(t *testing.T) time.Duration {
	budget := 60 * time.Second
	if s := os.Getenv("SCALE_SMOKE_BUDGET_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad SCALE_SMOKE_BUDGET_SECONDS %q", s)
		}
		budget = time.Duration(secs) * time.Second
	}
	return budget
}

// TestScaleSmoke10kBA runs the internet-scale trial sequentially under a
// wall-clock budget. It is gated behind SCALE_SMOKE=1 (CI runs it in a
// dedicated job) so the ordinary test run stays fast.
func TestScaleSmoke10kBA(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the 10k-node smoke")
	}
	budget := smokeBudget(t)
	cfg := scaleSmokeConfig()

	// The trial allocates update bursts at a high rate but retains little;
	// default GC pacing would run thousands of cycles over the trial.
	defer debug.SetGCPercent(debug.SetGCPercent(400))

	start := time.Now()
	res, err := Run(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-node BA RIP trial: wall=%.2fs warmed=%d delivery=%.4f fwdconv=%.2fs drops(noroute=%.0f ttl=%.0f link=%.0f)",
		wall.Seconds(), res.WarmedUpTrials, res.DeliveryRatio,
		res.MeanFwdConv, res.MeanNoRouteDrops, res.MeanTTLDrops, res.MeanLinkDrops)
	if res.WarmedUpTrials != 1 {
		t.Errorf("trial did not warm up: %d/1", res.WarmedUpTrials)
	}
	if res.DeliveryRatio <= 0 {
		t.Errorf("delivery ratio = %v, want > 0", res.DeliveryRatio)
	}
	if wall > budget {
		t.Errorf("trial took %.1fs, over the %.0fs budget — a scale regression", wall.Seconds(), budget.Seconds())
	}
}

// TestHybridSmoke1M is the hybrid traffic engine's scale smoke: the same
// 10k-node BA convergence trial as TestScaleSmoke10kBA, but carrying one
// million background flows through the fluid evaluator (the probe stays
// packet-simulated). The point of the tentpole is that flow count no
// longer multiplies event count, so this must finish in the same order of
// wall time as the single-flow smoke. Gated behind SCALE_SMOKE=1; budget
// override and BENCH_OUT (write a BENCH-style JSON fragment) as in CI.
func TestHybridSmoke1M(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the 1M-flow hybrid smoke")
	}
	budget := smokeBudget(t)

	cfg := scaleSmokeConfig()
	cfg.Flows = 1_000_000
	cfg.Mode = ModeHybrid
	// A wide guard would re-emit hundreds of thousands of flows as packet
	// sources on every convergence wave; half a second bounds the burst
	// while still covering the micro-loop window the paper measures.
	cfg.GuardWindow = 500 * time.Millisecond
	// Per-flow rate is scaled down so a million classes model a realistic
	// aggregate instead of 20M pps: one packet per 2 s each.
	cfg.PacketInterval = 2 * time.Second
	cfg.Metrics = true

	defer debug.SetGCPercent(debug.SetGCPercent(400))

	start := time.Now()
	res, err := Run(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Trials[0].Metrics
	t.Logf("1M-flow hybrid 10k-node BA RIP trial: wall=%.2fs delivery=%.4f sent=%d settles=%d demotions=%d reabsorptions=%d",
		wall.Seconds(), res.DeliveryRatio, res.Trials[0].Sent,
		m["fluid.settles"], m["fluid.demotions"], m["fluid.reabsorptions"])
	if res.WarmedUpTrials != 1 {
		t.Errorf("trial did not warm up: %d/1", res.WarmedUpTrials)
	}
	if res.Trials[0].Sent < 4_000_000 {
		t.Errorf("sent = %d, want ≥ 4M (a million flows × ≥ 4 ticks each)", res.Trials[0].Sent)
	}
	if m["fluid.settles"] == 0 {
		t.Error("fluid.settles = 0 — the fluid engine never engaged")
	}
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["drops.random_loss"] +
		m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated at scale: accounted %d, sent %d", accounted, m["packets.sent"])
	}
	if wall > budget {
		t.Errorf("trial took %.1fs, over the %.0fs budget — a hybrid-engine scale regression", wall.Seconds(), budget.Seconds())
	}
	if out := os.Getenv("BENCH_OUT"); out != "" {
		fragment := fmt.Sprintf(`{"hybrid_smoke_1m_flows_10k_ba": {"wall_seconds": %.2f, "flows": %d, "sent": %d, "delivery": %.4f, "settles": %d, "demotions": %d}}`+"\n",
			wall.Seconds(), cfg.Flows, res.Trials[0].Sent, res.DeliveryRatio,
			m["fluid.settles"], m["fluid.demotions"])
		if err := os.WriteFile(out, []byte(fragment), 0o644); err != nil {
			t.Errorf("BENCH_OUT: %v", err)
		}
	}
}

// TestShardSmoke10kBA is the sharded-execution scale smoke: the same
// 10k-node trial run sequentially and then with SCALE_SMOKE_SHARDS shards
// (default 8). Both runs must produce identical headline results — the
// determinism contract checked exhaustively on the 26-node goldens holds
// at internet scale too — and the sharded run's wall clock is reported
// next to the sequential one. The speedup assertion is left to CI, which
// runs on a multi-core host; on GOMAXPROCS=1 the shard goroutines
// time-slice one core and the barrier overhead makes the parallel run
// slightly slower, which is expected and recorded, not failed.
func TestShardSmoke10kBA(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the sharded 10k-node smoke")
	}
	budget := smokeBudget(t)
	shards := 8
	if s := os.Getenv("SCALE_SMOKE_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SCALE_SMOKE_SHARDS %q", s)
		}
		shards = n
	}

	defer debug.SetGCPercent(debug.SetGCPercent(400))

	cfg := scaleSmokeConfig()
	start := time.Now()
	seq, err := Run(cfg)
	seqWall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	cfg = scaleSmokeConfig()
	cfg.Shards = shards
	cfg.Metrics = true
	start = time.Now()
	par, err := Run(cfg)
	parWall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	speedup := seqWall.Seconds() / parWall.Seconds()
	m := par.Trials[0].Metrics
	t.Logf("10k-node BA RIP trial: sequential=%.2fs shards=%d sharded=%.2fs speedup=%.2fx gomaxprocs=%d barriers=%d cross_msgs=%d",
		seqWall.Seconds(), shards, parWall.Seconds(), speedup, runtime.GOMAXPROCS(0),
		m["shard.barrier_waits"], m["shard.cross_msgs"])

	a, b := seq.Trials[0], par.Trials[0]
	if a.Sent != b.Sent || a.Delivered != b.Delivered ||
		a.NoRouteDrops != b.NoRouteDrops || a.TTLDrops != b.TTLDrops ||
		a.LinkFailureDrops != b.LinkFailureDrops || a.QueueDrops != b.QueueDrops ||
		a.RoutingConvergence != b.RoutingConvergence || a.ForwardingConvergence != b.ForwardingConvergence {
		t.Errorf("sharded trial diverged from sequential at 10k nodes:\n seq:    sent=%d delivered=%d drops=%d/%d/%d/%d conv=%v/%v\n shards: sent=%d delivered=%d drops=%d/%d/%d/%d conv=%v/%v",
			a.Sent, a.Delivered, a.NoRouteDrops, a.TTLDrops, a.LinkFailureDrops, a.QueueDrops, a.RoutingConvergence, a.ForwardingConvergence,
			b.Sent, b.Delivered, b.NoRouteDrops, b.TTLDrops, b.LinkFailureDrops, b.QueueDrops, b.RoutingConvergence, b.ForwardingConvergence)
	}
	if m["shard.barrier_waits"] == 0 {
		t.Error("shard.barrier_waits = 0 — the sharded path never engaged")
	}
	if parWall > budget {
		t.Errorf("sharded trial took %.1fs, over the %.0fs budget", parWall.Seconds(), budget.Seconds())
	}
	if out := os.Getenv("BENCH_OUT"); out != "" {
		fragment := fmt.Sprintf(`{"shard_smoke_10k_ba": {"sequential_wall_seconds": %.2f, "shards": %d, "sharded_wall_seconds": %.2f, "speedup": %.2f, "gomaxprocs": %d, "barrier_waits": %d, "cross_msgs": %d}}`+"\n",
			seqWall.Seconds(), shards, parWall.Seconds(), speedup, runtime.GOMAXPROCS(0),
			m["shard.barrier_waits"], m["shard.cross_msgs"])
		if err := os.WriteFile(out, []byte(fragment), 0o644); err != nil {
			t.Errorf("BENCH_OUT: %v", err)
		}
	}
}

// TestScenarioSmoke10kChurnLoss is the scenario engine's scale smoke: the
// 10k-node BA convergence trial disturbed by a scripted schedule — the
// paper's on-path failure, then continuous link churn with random loss on a
// slice of links — with the packet-conservation identity as pass/fail.
// Gated behind SCALE_SMOKE=1; budget override and BENCH_OUT as in CI.
func TestScenarioSmoke10kChurnLoss(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the 10k-node scenario smoke")
	}
	budget := smokeBudget(t)
	cfg := scaleSmokeConfig()
	cfg.Metrics = true
	// Resolve the BA graph up front so the script can name real links.
	if err := cfg.ResolveTopology(); err != nil {
		t.Fatal(err)
	}
	b := scenario.NewBuilder()
	b.FailPath(cfg.FailAt, 0, 0) // keep the paper's measured failure
	b.Churn(16*time.Second, 22*time.Second, 2, 500*time.Millisecond)
	// A tenth of the links (the low-id end of the sorted edge list, which
	// includes the hubs) get 5% random loss just before the failure.
	for _, e := range cfg.Topology.Edges()[:2000] {
		b.Loss(14*time.Second, e.A, e.B, 0.05)
	}
	cfg.Script = b.Script()

	defer debug.SetGCPercent(debug.SetGCPercent(400))

	start := time.Now()
	res, err := Run(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Trials[0].Metrics
	t.Logf("10k-node BA churn+loss trial: wall=%.2fs delivery=%.4f events=%d churn_cycles=%d link_fails=%d random_loss=%d",
		wall.Seconds(), res.DeliveryRatio, m["scenario.events"],
		m["scenario.churn_cycles"], m["scenario.link_fails"], m["drops.random_loss"])
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["drops.random_loss"] +
		m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated under churn+loss at scale: accounted %d, sent %d", accounted, m["packets.sent"])
	}
	if m["scenario.churn_cycles"] == 0 {
		t.Error("scenario.churn_cycles = 0 — the churn window never fired")
	}
	if wall > budget {
		t.Errorf("trial took %.1fs, over the %.0fs budget — a scenario-engine scale regression", wall.Seconds(), budget.Seconds())
	}
	if out := os.Getenv("BENCH_OUT"); out != "" {
		fragment := fmt.Sprintf(`{"scenario_smoke_10k_churn_loss": {"wall_seconds": %.2f, "delivery": %.4f, "events": %d, "churn_cycles": %d, "random_loss": %d}}`+"\n",
			wall.Seconds(), res.DeliveryRatio, m["scenario.events"],
			m["scenario.churn_cycles"], m["drops.random_loss"])
		if err := os.WriteFile(out, []byte(fragment), 0o644); err != nil {
			t.Errorf("BENCH_OUT: %v", err)
		}
	}
}
