package core

import (
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"testing"
	"time"
)

// TestScaleSmoke10kBA is the internet-scale smoke: one full convergence
// trial — warm-up, probe flow, on-path link failure, measurement — on a
// 10,000-node power-law graph, under a wall-clock budget. It is gated
// behind SCALE_SMOKE=1 (CI runs it in a dedicated job) so the ordinary
// test run stays fast. Override the budget with SCALE_SMOKE_BUDGET_SECONDS.
//
// The configuration scales the paper's §5 parameters to 10k nodes rather
// than copying them: periodic full-table floods are pushed past the
// horizon (a 10k-node full table is ~667 packets per link — triggered
// updates carry convergence), triggered-update damping is tightened so
// convergence completes within the short horizon, and MaxEntries is raised
// so a full table is hundreds rather than thousands of packets.
func TestScaleSmoke10kBA(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the 10k-node smoke")
	}
	budget := 60 * time.Second
	if s := os.Getenv("SCALE_SMOKE_BUDGET_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad SCALE_SMOKE_BUDGET_SECONDS %q", s)
		}
		budget = time.Duration(secs) * time.Second
	}

	cfg := DefaultConfig()
	cfg.Protocol = ProtoRIP
	cfg.Topo = "ba:n=10000,m=2,seed=1"
	cfg.Trials = 1
	cfg.SenderStart = 12 * time.Second
	cfg.FailAt = 15 * time.Second
	cfg.End = 25 * time.Second
	cfg.Vector.PeriodicInterval = 600 * time.Second // beyond the horizon
	cfg.Vector.PeriodicJitter = time.Second
	cfg.Vector.DampMin = 500 * time.Millisecond
	cfg.Vector.DampMax = time.Second
	cfg.Vector.MaxEntries = 5000
	cfg.Vector.Infinity = 24 // BA diameter ~10; default 16 is too tight a margin, 64 drags out count-to-infinity

	// The trial allocates update bursts at a high rate but retains little;
	// default GC pacing would run thousands of cycles over the trial.
	defer debug.SetGCPercent(debug.SetGCPercent(400))

	start := time.Now()
	res, err := Run(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-node BA RIP trial: wall=%.2fs warmed=%d delivery=%.4f fwdconv=%.2fs drops(noroute=%.0f ttl=%.0f link=%.0f)",
		wall.Seconds(), res.WarmedUpTrials, res.DeliveryRatio,
		res.MeanFwdConv, res.MeanNoRouteDrops, res.MeanTTLDrops, res.MeanLinkDrops)
	if res.WarmedUpTrials != 1 {
		t.Errorf("trial did not warm up: %d/1", res.WarmedUpTrials)
	}
	if res.DeliveryRatio <= 0 {
		t.Errorf("delivery ratio = %v, want > 0", res.DeliveryRatio)
	}
	if wall > budget {
		t.Errorf("trial took %.1fs, over the %.0fs budget — a scale regression", wall.Seconds(), budget.Seconds())
	}
}

// TestHybridSmoke1M is the hybrid traffic engine's scale smoke: the same
// 10k-node BA convergence trial as TestScaleSmoke10kBA, but carrying one
// million background flows through the fluid evaluator (the probe stays
// packet-simulated). The point of the tentpole is that flow count no
// longer multiplies event count, so this must finish in the same order of
// wall time as the single-flow smoke. Gated behind SCALE_SMOKE=1; budget
// override and BENCH_OUT (write a BENCH-style JSON fragment) as in CI.
func TestHybridSmoke1M(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") != "1" {
		t.Skip("set SCALE_SMOKE=1 to run the 1M-flow hybrid smoke")
	}
	budget := 60 * time.Second
	if s := os.Getenv("SCALE_SMOKE_BUDGET_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad SCALE_SMOKE_BUDGET_SECONDS %q", s)
		}
		budget = time.Duration(secs) * time.Second
	}

	cfg := DefaultConfig()
	cfg.Protocol = ProtoRIP
	cfg.Topo = "ba:n=10000,m=2,seed=1"
	cfg.Trials = 1
	cfg.Flows = 1_000_000
	cfg.Mode = ModeHybrid
	// A wide guard would re-emit hundreds of thousands of flows as packet
	// sources on every convergence wave; half a second bounds the burst
	// while still covering the micro-loop window the paper measures.
	cfg.GuardWindow = 500 * time.Millisecond
	// Per-flow rate is scaled down so a million classes model a realistic
	// aggregate instead of 20M pps: one packet per 2 s each.
	cfg.PacketInterval = 2 * time.Second
	cfg.SenderStart = 12 * time.Second
	cfg.FailAt = 15 * time.Second
	cfg.End = 25 * time.Second
	cfg.Metrics = true
	cfg.Vector.PeriodicInterval = 600 * time.Second
	cfg.Vector.PeriodicJitter = time.Second
	cfg.Vector.DampMin = 500 * time.Millisecond
	cfg.Vector.DampMax = time.Second
	cfg.Vector.MaxEntries = 5000
	cfg.Vector.Infinity = 24

	defer debug.SetGCPercent(debug.SetGCPercent(400))

	start := time.Now()
	res, err := Run(cfg)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Trials[0].Metrics
	t.Logf("1M-flow hybrid 10k-node BA RIP trial: wall=%.2fs delivery=%.4f sent=%d settles=%d demotions=%d reabsorptions=%d",
		wall.Seconds(), res.DeliveryRatio, res.Trials[0].Sent,
		m["fluid.settles"], m["fluid.demotions"], m["fluid.reabsorptions"])
	if res.WarmedUpTrials != 1 {
		t.Errorf("trial did not warm up: %d/1", res.WarmedUpTrials)
	}
	if res.Trials[0].Sent < 4_000_000 {
		t.Errorf("sent = %d, want ≥ 4M (a million flows × ≥ 4 ticks each)", res.Trials[0].Sent)
	}
	if m["fluid.settles"] == 0 {
		t.Error("fluid.settles = 0 — the fluid engine never engaged")
	}
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated at scale: accounted %d, sent %d", accounted, m["packets.sent"])
	}
	if wall > budget {
		t.Errorf("trial took %.1fs, over the %.0fs budget — a hybrid-engine scale regression", wall.Seconds(), budget.Seconds())
	}
	if out := os.Getenv("BENCH_OUT"); out != "" {
		fragment := fmt.Sprintf(`{"hybrid_smoke_1m_flows_10k_ba": {"wall_seconds": %.2f, "flows": %d, "sent": %d, "delivery": %.4f, "settles": %d, "demotions": %d}}`+"\n",
			wall.Seconds(), cfg.Flows, res.Trials[0].Sent, res.DeliveryRatio,
			m["fluid.settles"], m["fluid.demotions"])
		if err := os.WriteFile(out, []byte(fragment), 0o644); err != nil {
			t.Errorf("BENCH_OUT: %v", err)
		}
	}
}
