package core

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"routeconv/internal/topology"
)

// canonVersion tags the canonical encoding itself. Bump it when the encoding
// scheme (not the Config schema — field changes show up on their own) is
// altered, so cached sweep results keyed on the old form are invalidated.
const canonVersion = "core.Config/v1"

// CanonicalString renders the fully-resolved configuration as one
// deterministic, human-readable line: every field in declaration order,
// recursively, with a custom Topology reduced to its sorted edge list. Two
// configs produce the same string exactly when they describe the same
// experiment, so the string (hashed) keys the sweep subsystem's result
// cache.
//
// Configurations with a Factory override cannot be canonicalized — a
// function pointer has no stable content — and return an error; such
// experiments are simply uncacheable.
//
// A Topo spec is resolved (on a copy) before encoding, so a config carrying
// "ba:n=100,m=2" and one carrying the identical pre-built graph
// canonicalize — and therefore cache — the same.
func (c *Config) CanonicalString() (string, error) {
	r := *c
	if err := r.ResolveTopology(); err != nil {
		return "", fmt.Errorf("core: canonicalize config: %w", err)
	}
	if err := r.ResolveScenario(); err != nil {
		return "", fmt.Errorf("core: canonicalize config: %w", err)
	}
	var sb strings.Builder
	sb.WriteString(canonVersion)
	sb.WriteByte(';')
	if err := writeCanonical(&sb, reflect.ValueOf(r)); err != nil {
		return "", fmt.Errorf("core: canonicalize config: %w", err)
	}
	return sb.String(), nil
}

// graphType is special-cased: Graph's fields are unexported, and its
// identity for an experiment is exactly its node count and edge set.
var graphType = reflect.TypeOf((*topology.Graph)(nil))

// configType identifies the top-level Config struct, whose Shards field is
// excluded from the canonical form: sharding is an execution strategy with
// bit-for-bit identical results, so cache keys must not depend on it.
var configType = reflect.TypeOf(Config{})

// writeCanonical appends v's canonical form to sb. It handles exactly the
// kinds that appear in Config (and errors on anything else, so a future
// field of an unsupported kind fails loudly instead of silently aliasing
// distinct configs).
func writeCanonical(sb *strings.Builder, v reflect.Value) error {
	if v.Type() == graphType {
		if v.IsNil() {
			sb.WriteString("nil")
			return nil
		}
		g := v.Interface().(*topology.Graph)
		fmt.Fprintf(sb, "graph(n=%d,edges=[", g.Len())
		for i, e := range g.Edges() { // Edges() is sorted
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(sb, "%d-%d", e.A, e.B)
		}
		sb.WriteString("])")
		return nil
	}
	switch v.Kind() {
	case reflect.Bool:
		sb.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		sb.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		sb.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		sb.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		sb.WriteString(strconv.Quote(v.String()))
	case reflect.Slice:
		if v.IsNil() {
			sb.WriteString("nil")
			return nil
		}
		sb.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			if err := writeCanonical(sb, v.Index(i)); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	case reflect.Ptr:
		if v.IsNil() {
			sb.WriteString("nil")
			return nil
		}
		return writeCanonical(sb, v.Elem())
	case reflect.Struct:
		t := v.Type()
		sb.WriteString(t.Name())
		sb.WriteByte('{')
		wrote := 0
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				return fmt.Errorf("unexported field %s.%s", t.Name(), f.Name)
			}
			if t == configType && f.Name == "Shards" {
				continue
			}
			if wrote > 0 {
				sb.WriteByte(' ')
			}
			wrote++
			sb.WriteString(f.Name)
			sb.WriteByte(':')
			if err := writeCanonical(sb, v.Field(i)); err != nil {
				return err
			}
		}
		sb.WriteByte('}')
	case reflect.Func:
		if !v.IsNil() {
			return fmt.Errorf("function field (Factory override) is not canonicalizable")
		}
		sb.WriteString("nil")
	default:
		return fmt.Errorf("unsupported kind %s", v.Kind())
	}
	return nil
}
