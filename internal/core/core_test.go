package core

import (
	"strings"
	"testing"
	"time"

	"routeconv/internal/netsim"
)

// shortConfig compresses the schedule for tests that do not involve the
// slow-MRAI BGP variant: protocols converge well within 200 s.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.SenderStart = 190 * time.Second
	cfg.FailAt = 200 * time.Second
	cfg.End = 400 * time.Second
	cfg.Trials = 2
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Trials = 0 },
		func(c *Config) { c.Flows = 0 },
		func(c *Config) { c.Rows = 1 },
		func(c *Config) { c.SenderStart = c.FailAt + time.Second },
		func(c *Config) { c.End = c.FailAt },
		func(c *Config) { c.PacketInterval = 0 },
		func(c *Config) { c.TTL = 0 },
		func(c *Config) { c.Protocol = ProtocolKind(99) },
		func(c *Config) { c.Degree = 1 },
		func(c *Config) { c.ExtraFailAts = []time.Duration{c.End + time.Second} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDegreeValidationSurfacesTopologyError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Degree = 99
	if err := cfg.Validate(); err == nil {
		// Degree errors surface from the mesh builder inside Run.
		if _, err := Run(cfg); err == nil {
			t.Error("degree 99 accepted")
		}
	}
}

func TestProtocolKindStrings(t *testing.T) {
	for _, k := range []ProtocolKind{ProtoRIP, ProtoDBF, ProtoBGP, ProtoBGP3, ProtoLS} {
		parsed, err := ParseProtocol(k.String())
		if err != nil || parsed != k {
			t.Errorf("round trip %v → %q → %v, %v", k, k.String(), parsed, err)
		}
	}
	if _, err := ParseProtocol("nonesuch"); err == nil {
		t.Error("ParseProtocol accepted garbage")
	}
	if s := ProtocolKind(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown kind String() = %q", s)
	}
}

func TestRunDBFBasics(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmedUpTrials != cfg.Trials {
		t.Errorf("warmed up %d/%d trials", res.WarmedUpTrials, cfg.Trials)
	}
	wantSent := int((cfg.End - cfg.SenderStart) / cfg.PacketInterval)
	for _, tr := range res.Trials {
		if tr.Sent != wantSent {
			t.Errorf("sent %d packets, want %d", tr.Sent, wantSent)
		}
		if tr.Delivered == 0 {
			t.Error("no packets delivered")
		}
		if tr.FailedLink.A == tr.FailedLink.B {
			t.Error("no link was failed")
		}
		if tr.RoutingConvergence <= 0 {
			t.Error("routing convergence not measured")
		}
	}
	if res.DeliveryRatio <= 0.9 {
		t.Errorf("delivery ratio = %.3f, want > 0.9 for DBF", res.DeliveryRatio)
	}
	if len(res.MeanThroughput) != int((cfg.End-cfg.SenderStart)/time.Second) {
		t.Errorf("throughput series length = %d", len(res.MeanThroughput))
	}
}

func TestThroughputDropsAtFailure(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoRIP
	cfg.Trials = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failBin := int((cfg.FailAt - cfg.SenderStart) / time.Second)
	before := res.MeanThroughput[failBin-2]
	after := res.MeanThroughput[failBin+1]
	if before < 19 {
		t.Errorf("pre-failure throughput = %.1f pps, want ≈ 20", before)
	}
	if after > before/2 {
		t.Errorf("RIP throughput right after failure = %.1f pps, want a sharp drop from %.1f", after, before)
	}
	// Figure 5's RIP shape: recovery by roughly the periodic interval.
	late := res.MeanThroughput[failBin+45]
	if late < 15 {
		t.Errorf("RIP throughput 45 s after failure = %.1f pps, want recovered", late)
	}
}

// TestFigure1Scenario recreates the paper's §4 example: after a failure on
// the shortest path, packets still flow over a non-shortest path while the
// protocol converges (DBF's cached alternate).
func TestFigure1Scenario(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	// A 2×4 lattice, like the paper's Figure 1 topology: every link sits
	// on a cycle, so one failure never disconnects the flow.
	cfg.Rows, cfg.Cols, cfg.Degree = 2, 4, 4
	cfg.Trials = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Packets must keep flowing: the blackhole is at most the detection
	// window plus the damped triggered-update cascade.
	if res.DeliveryRatio < 0.95 {
		t.Errorf("delivery ratio = %.3f, want ≥ 0.95 (packets delivered during convergence)", res.DeliveryRatio)
	}
	// At least one trial must show a transient (non-final) forwarding path.
	transients := 0
	for _, tr := range res.Trials {
		transients += tr.TransientPaths
	}
	if transients == 0 {
		t.Error("no transient forwarding paths observed across trials")
	}
}

// TestHeadlineClaim checks the paper's §1 headline: with the same topology
// and packet rate, RIP drops hundreds of packets where BGP3 drops fewer
// than ~50.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol experiment")
	}
	base := DefaultConfig()
	base.Degree = 4
	base.Trials = 5

	rip := base
	rip.Protocol = ProtoRIP
	ripRes, err := Run(rip)
	if err != nil {
		t.Fatal(err)
	}
	bgp3 := base
	bgp3.Protocol = ProtoBGP3
	bgp3Res, err := Run(bgp3)
	if err != nil {
		t.Fatal(err)
	}
	if ripRes.MeanNoRouteDrops < 100 {
		t.Errorf("RIP mean drops = %.1f, want ≥ 100 (paper: ≈ 250)", ripRes.MeanNoRouteDrops)
	}
	if bgp3Res.MeanNoRouteDrops >= 50 {
		t.Errorf("BGP3 mean drops = %.1f, want < 50", bgp3Res.MeanNoRouteDrops)
	}
	if bgp3Res.MeanNoRouteDrops*3 > ripRes.MeanNoRouteDrops {
		t.Errorf("RIP (%.1f) should drop several times more than BGP3 (%.1f)",
			ripRes.MeanNoRouteDrops, bgp3Res.MeanNoRouteDrops)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.NoRouteDrops != tb.NoRouteDrops || ta.Delivered != tb.Delivered ||
			ta.RoutingConvergence != tb.RoutingConvergence || ta.FailedLink != tb.FailedLink {
			t.Fatalf("trial %d differs between identical runs:\n%+v\n%+v", i, ta, tb)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 999
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Trials {
		if a.Trials[i].FailedLink != b.Trials[i].FailedLink ||
			a.Trials[i].SenderRouter != b.Trials[i].SenderRouter {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical failure placements")
	}
}

func TestMultiFlow(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Flows = 3
	cfg.Trials = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSent := 3 * int((cfg.End-cfg.SenderStart)/cfg.PacketInterval)
	if res.Trials[0].Sent != wantSent {
		t.Errorf("sent %d packets with 3 flows, want %d", res.Trials[0].Sent, wantSent)
	}
	if res.DeliveryRatio < 0.9 {
		t.Errorf("multi-flow delivery ratio = %.3f", res.DeliveryRatio)
	}
}

func TestExtraFailures(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 1
	cfg.ExtraFailAts = []time.Duration{cfg.FailAt + 5*time.Second, cfg.FailAt + 10*time.Second}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials[0].Delivered == 0 {
		t.Error("nothing delivered under multiple failures")
	}
}

func TestLinkStateProtocol(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoLS
	cfg.Trials = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmedUpTrials != cfg.Trials {
		t.Errorf("LS warmed up %d/%d trials", res.WarmedUpTrials, cfg.Trials)
	}
	// Link-state recomputes from the map at detection time: near-lossless.
	if res.DeliveryRatio < 0.99 {
		t.Errorf("LS delivery ratio = %.3f, want ≥ 0.99", res.DeliveryRatio)
	}
}

func TestSweepAndTables(t *testing.T) {
	sc := SweepConfig{
		Base:      shortConfig(),
		Degrees:   []int{4, 6},
		Protocols: []ProtocolKind{ProtoDBF, ProtoBGP3},
	}
	sc.Base.Trials = 1
	var progress []string
	sr, err := RunSweep(sc, func(s string) { progress = append(progress, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 4 {
		t.Errorf("progress lines = %d, want 4", len(progress))
	}
	for _, tab := range []interface {
		WriteText(w interface{ Write([]byte) (int, error) }) error
	}{} {
		_ = tab // (tables are exercised below)
	}
	var sb strings.Builder
	if err := sr.Figure3Table().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"degree", "dbf_drops", "bgp3_drops"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 3 table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "4") || !strings.Contains(out, "6") {
		t.Error("figure 3 table missing degree rows")
	}

	sb.Reset()
	if err := sr.Figure5Table(4).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	nBins, _ := sr.seriesWindow()
	if len(lines) != nBins+1 {
		t.Errorf("figure 5 CSV has %d lines, want %d", len(lines), nBins+1)
	}

	for _, tab := range []*struct {
		name string
		fn   func() error
	}{
		{"fig4", func() error { sb.Reset(); return sr.Figure4Table().WriteText(&sb) }},
		{"fig6a", func() error { sb.Reset(); return sr.Figure6aTable().WriteText(&sb) }},
		{"fig6b", func() error { sb.Reset(); return sr.Figure6bTable().WriteText(&sb) }},
		{"fig7", func() error { sb.Reset(); return sr.Figure7Table(6).WriteText(&sb) }},
		{"summary", func() error { sb.Reset(); return sr.SummaryTable().WriteText(&sb) }},
	} {
		if err := tab.fn(); err != nil {
			t.Errorf("%s: %v", tab.name, err)
		}
		if sb.Len() == 0 {
			t.Errorf("%s rendered empty", tab.name)
		}
	}
}

func TestCustomFactoryOverride(t *testing.T) {
	cfg := shortConfig()
	cfg.Trials = 1
	called := 0
	base := cfg
	base.Protocol = ProtoDBF
	factory, err := base.factory()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Factory = func(n *netsim.Node) netsim.Protocol { called++; return factory(n) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Error("custom factory never invoked")
	}
	if res.DeliveryRatio < 0.9 {
		t.Errorf("delivery ratio with custom factory = %.3f", res.DeliveryRatio)
	}
}
