package core

import (
	"math"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/scenario"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// churnSalt decorrelates per-churn-event random streams from the node,
// traffic, and loss streams sharing the simulator seed.
const churnSalt = 0x636875726e657674 // "churnevt"

// scenarioRunner schedules a trial's disturbance script on the root
// simulator. Scenario events always run on the root simulator — in a
// sharded run that means at window barriers, where the whole network state
// is globally consistent — so every event kind is shard-safe by
// construction; only per-packet loss draws happen inside windows, and those
// use per-port streams (netsim.SetLinkLoss).
type scenarioRunner struct {
	cfg       *Config
	s         *sim.Simulator
	net       *netsim.Network
	g         *topology.Graph
	meshEdges []topology.Edge
	flows     []*flow
	tl        *obs.Timeline
	met       *obs.Metrics
	// failedLink and warmedUp receive the failpath event's probe results
	// (they stay zero for scripts without one).
	failedLink *topology.Edge
	warmedUp   *bool
}

// samplePaths records every flow's current forwarding walk.
func (r *scenarioRunner) samplePaths() {
	for _, f := range r.flows {
		f.collector.SamplePath()
	}
}

// install schedules every event of the script. Events are scheduled in
// script order (time-sorted, ties in insertion order), which the simulator
// preserves for same-instant events — the property that keeps compiled
// legacy schedules bit-for-bit identical to the original hard-coded code.
func (r *scenarioRunner) install(sc *scenario.Script) {
	for i, ev := range sc.Events {
		ev := ev
		switch ev.Kind {
		case scenario.KindFailPath:
			r.installFailPath(ev)
		case scenario.KindFailRandom:
			r.installFailRandom(ev)
		case scenario.KindFailLink, scenario.KindFailGroup:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				for _, e := range ev.Links {
					r.failLink(e)
				}
				r.samplePaths()
			})
		case scenario.KindRestoreLink, scenario.KindRestoreGroup:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				for _, e := range ev.Links {
					r.net.RestoreLink(e.A, e.B)
				}
				r.samplePaths()
			})
		case scenario.KindFailNode:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				r.met.Inc(obs.ScenarioNodeFails)
				took := r.net.FailNode(ev.Node)
				r.met.Add(obs.ScenarioLinkFails, uint64(took))
				r.samplePaths()
			})
		case scenario.KindRecoverNode:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				r.net.RecoverNode(ev.Node)
				r.samplePaths()
			})
		case scenario.KindFlapLink:
			r.installFlap(ev)
		case scenario.KindSetLoss:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				e := ev.Links[0]
				r.net.SetLinkLoss(e.A, e.B, ev.Rate)
			})
		case scenario.KindCostOut:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				e := ev.Links[0]
				r.net.CostOutLink(e.A, e.B)
				r.samplePaths()
			})
		case scenario.KindCostIn:
			r.s.ScheduleAt(ev.At, func() {
				r.event()
				e := ev.Links[0]
				r.net.CostInLink(e.A, e.B)
				r.samplePaths()
			})
		case scenario.KindChurn:
			r.installChurn(ev, i)
		}
	}
}

// event accounts one executed scenario event.
func (r *scenarioRunner) event() { r.met.Inc(obs.ScenarioEvents) }

// failLink fails one link with scenario accounting.
func (r *scenarioRunner) failLink(e topology.Edge) {
	r.met.Inc(obs.ScenarioLinkFails)
	r.net.FailLink(e.A, e.B)
}

// installFailPath schedules the paper's original event: fail one random
// recoverable link on the measured flow's forwarding path, with the
// optional repair/flap cycle. The body is the harness's original failure
// code, verbatim — same probe, same randomness draws from the shared
// simulator RNG, same schedule structure — so legacy configs compiled to a
// failpath event reproduce the golden fixtures bit-for-bit.
func (r *scenarioRunner) installFailPath(ev scenario.Event) {
	primary := r.flows[0]
	net, s := r.net, r.s
	r.s.ScheduleAt(ev.At, func() {
		r.event()
		path, ok := net.WalkPath(primary.srcHost, primary.dstHost)
		*r.warmedUp = ok
		candidates := pathMeshLinks(path, ok)
		if len(candidates) == 0 {
			// Unconverged flow: fall back to the topological shortest path
			// between the attachment routers.
			sp, spOK := r.g.ShortestPath(primary.srcRouter, primary.dstRouter)
			candidates = pathLinks(sp, spOK)
		}
		// Only recoverable failures are studied (the paper's flows always
		// converge to a new path): links whose removal would disconnect
		// the flow are not candidates.
		candidates = recoverable(net, r.meshEdges, candidates, primary.srcRouter, primary.dstRouter)
		if len(candidates) == 0 {
			return // nothing to fail; the trial proceeds undisturbed
		}
		failedLink := candidates[s.Rand().Intn(len(candidates))]
		*r.failedLink = failedLink
		r.met.Inc(obs.ScenarioLinkFails)
		net.FailLink(failedLink.A, failedLink.B)
		r.samplePaths()
		if ev.Restore <= 0 {
			return
		}
		// Link repair, optionally cycled into flaps (route-flap-damping
		// experiments): cycle i fails at At + i·2·Restore.
		cycle := 2 * ev.Restore
		flaps := ev.Flaps
		if flaps < 1 {
			flaps = 1
		}
		for i := 0; i < flaps; i++ {
			downAt := ev.At + time.Duration(i)*cycle
			s.ScheduleAt(downAt+ev.Restore, func() {
				net.RestoreLink(failedLink.A, failedLink.B)
				r.samplePaths()
			})
			if i > 0 {
				s.ScheduleAt(downAt, func() {
					net.FailLink(failedLink.A, failedLink.B)
					r.samplePaths()
				})
			}
		}
	})
}

// installFailRandom schedules the legacy ExtraFailAts event: fail one
// random currently-up router link. The body is the original code verbatim
// (same shared-RNG draw).
func (r *scenarioRunner) installFailRandom(ev scenario.Event) {
	net, s := r.net, r.s
	r.s.ScheduleAt(ev.At, func() {
		r.event()
		var live []topology.Edge
		for _, e := range r.meshEdges {
			if l := net.Link(e.A, e.B); l != nil && l.Up() {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			return
		}
		e := live[s.Rand().Intn(len(live))]
		r.failLink(e)
		r.samplePaths()
	})
}

// installFlap schedules every cycle of a flap storm up front (the times
// are all known): cycle i fails at At + i·Period and restores half a
// period later, so the link ends the storm up.
func (r *scenarioRunner) installFlap(ev scenario.Event) {
	e := ev.Links[0]
	for i := 0; i < ev.Cycles; i++ {
		downAt := ev.At + time.Duration(i)*ev.Period
		first := i == 0
		r.s.ScheduleAt(downAt, func() {
			if first {
				r.event()
			}
			r.failLink(e)
			r.samplePaths()
		})
		r.s.ScheduleAt(downAt+ev.Period/2, func() {
			r.net.RestoreLink(e.A, e.B)
			r.samplePaths()
		})
	}
}

// installChurn schedules a continuous-churn window: failures arrive as a
// Poisson process of ev.Rate per second over the candidate set, each victim
// drawn uniformly from the currently-up candidates and repaired after an
// exponential downtime of mean ev.MeanDown. All draws come from the churn
// event's private stream (seeded by the simulator seed and the event's
// script index), so the schedule is deterministic and — because churn runs
// on the root simulator — identical across shard counts.
func (r *scenarioRunner) installChurn(ev scenario.Event, idx int) {
	st := sim.NewStream(r.s.Seed()^churnSalt, uint64(idx))
	candidates := ev.Links
	if len(candidates) == 0 {
		candidates = r.meshEdges
	}
	meanGap := time.Duration(float64(time.Second) / ev.Rate)
	var live []topology.Edge // reused scratch for the up-candidate set
	var tick func()
	tick = func() {
		if r.s.Now() >= ev.Until {
			return
		}
		live = live[:0]
		for _, e := range candidates {
			if l := r.net.Link(e.A, e.B); l != nil && l.Up() {
				live = append(live, e)
			}
		}
		if len(live) > 0 {
			victim := live[st.Int63n(int64(len(live)))]
			r.met.Inc(obs.ScenarioChurnCycles)
			r.failLink(victim)
			r.s.Schedule(expDur(&st, ev.MeanDown), func() {
				r.net.RestoreLink(victim.A, victim.B)
				r.samplePaths()
			})
			r.samplePaths()
		}
		r.s.Schedule(expDur(&st, meanGap), tick)
	}
	r.s.ScheduleAt(ev.At, func() {
		r.event()
		r.tl.Churn(r.s.Now(), obs.KindChurnStart, ev.Rate)
		tick()
	})
	r.s.ScheduleAt(ev.Until, func() {
		r.tl.Churn(r.s.Now(), obs.KindChurnEnd, ev.Rate)
	})
}

// expDur draws an exponential duration of the given mean from the stream.
func expDur(st *sim.Stream, mean time.Duration) time.Duration {
	u := st.Float64()
	d := time.Duration(-math.Log(1-u) * float64(mean))
	if d < time.Nanosecond {
		d = time.Nanosecond // keep the process strictly advancing
	}
	return d
}
