package core

import (
	"path/filepath"
	"testing"

	"routeconv/internal/netsim"
	"routeconv/internal/topology"
	"routeconv/internal/topology/topoio"
)

func TestResolveTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = "ba:n=64,m=2,seed=3"
	if err := cfg.ResolveTopology(); err != nil {
		t.Fatal(err)
	}
	if cfg.Topo != "" {
		t.Error("Topo not cleared after resolution")
	}
	if cfg.Topology == nil || cfg.Topology.Len() != 64 {
		t.Fatalf("Topology not built: %v", cfg.Topology)
	}
	if len(cfg.SenderRouters) == 0 || len(cfg.ReceiverRouters) == 0 {
		t.Fatal("attach lists not filled")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("resolved config invalid: %v", err)
	}
	// Resolution is idempotent on an already-resolved config.
	if err := cfg.ResolveTopology(); err != nil {
		t.Fatal(err)
	}
}

func TestResolveTopologyExplicitAttachWins(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = "ring:n=10"
	cfg.SenderRouters = []netsim.NodeID{1}
	cfg.ReceiverRouters = []netsim.NodeID{6}
	if err := cfg.ResolveTopology(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.SenderRouters) != 1 || cfg.SenderRouters[0] != 1 {
		t.Errorf("explicit senders overwritten: %v", cfg.SenderRouters)
	}
	if len(cfg.ReceiverRouters) != 1 || cfg.ReceiverRouters[0] != 6 {
		t.Errorf("explicit receivers overwritten: %v", cfg.ReceiverRouters)
	}
}

func TestValidateRejectsTopoPlusTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = "ring:n=10"
	cfg.Topology = topology.Ring(10)
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted both Topo and Topology")
	}
	if err := cfg.ResolveTopology(); err == nil {
		t.Error("ResolveTopology accepted both Topo and Topology")
	}
}

func TestValidateRejectsBadTopoSpec(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topo = "nonesuch:n=4"
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted an unknown topology family")
	}
}

// TestRunTopoSpecFatTree runs the full experiment on a fat-tree stated as
// a -topo spec: resolution, host attachment to the edge layer, failure
// injection and measurement all flow through the normal Run path. DBF with
// ECMP exploits the fabric's (k/2)² equal-cost paths, so delivery stays
// near-perfect across the failure.
func TestRunTopoSpecFatTree(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Vector.ECMP = true
	cfg.Trials = 2
	cfg.Topo = "fattree:k=4"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmedUpTrials != cfg.Trials {
		t.Errorf("warmed up %d/%d on the fat-tree", res.WarmedUpTrials, cfg.Trials)
	}
	if res.DeliveryRatio < 0.99 {
		t.Errorf("fat-tree ECMP delivery ratio = %.3f", res.DeliveryRatio)
	}
}

// TestRunTopoSpecBA runs a link-state trial on a small power-law graph.
func TestRunTopoSpecBA(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoLS
	cfg.Trials = 2
	cfg.Topo = "ba:n=64,m=2,seed=1"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmedUpTrials != cfg.Trials {
		t.Errorf("warmed up %d/%d on the BA graph", res.WarmedUpTrials, cfg.Trials)
	}
}

// TestTopoCanonicalEquivalence pins the cache-key contract: a config
// carrying a -topo spec and a config carrying the equivalent pre-built
// graph plus attach lists canonicalize identically, so sweep cells hit the
// same cache entry however the topology was stated.
func TestTopoCanonicalEquivalence(t *testing.T) {
	spec, err := topoio.ParseSpec("ba:n=50,m=2,seed=4")
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := DefaultConfig()
	a.Topo = "ba:n=50,m=2,seed=4"
	b := DefaultConfig()
	b.Topology = built.Graph
	b.SenderRouters = built.Senders
	b.ReceiverRouters = built.Receivers
	ca, err := a.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Error("spec config and pre-built config canonicalize differently")
	}
	// CanonicalString must not mutate the caller's config.
	if a.Topo == "" || a.Topology != nil {
		t.Error("CanonicalString mutated the config")
	}
	// Different seeds diverge.
	c := DefaultConfig()
	c.Topo = "ba:n=50,m=2,seed=5"
	cc, err := c.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if cc == ca {
		t.Error("different topo seeds canonicalize identically")
	}
}

// TestTopoExportImportRoundTrip is the subsystem's losslessness criterion:
// for every generator family, exporting the graph to an edge list and
// importing it back yields a config with the identical canonical hash.
func TestTopoExportImportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specs := []string{
		"mesh:rows=4,cols=5,degree=4",
		"torus:rows=4,cols=4",
		"hypercube:dim=4",
		"line:n=12",
		"ring:n=12",
		"full:n=6",
		"random:n=40,deg=4,seed=2",
		"sw:n=40,k=2,seed=2",
		"ba:n=60,m=2,seed=2",
		"glp:n=60,m=2,seed=2",
		"fattree:k=4",
		"clos:spines=3,leaves=6",
	}
	for i, specText := range specs {
		spec, err := topoio.ParseSpec(specText)
		if err != nil {
			t.Fatal(err)
		}
		built, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, filepath.Base(spec.Family())+"-"+string(rune('a'+i))+".edges")
		if err := topoio.WriteFile(path, built.Graph); err != nil {
			t.Fatal(err)
		}

		gen := DefaultConfig()
		gen.Topo = specText
		imp := DefaultConfig()
		imp.Topo = "file:" + path
		if spec.Family() == "mesh" {
			// Mesh attach rows (first/last lattice row) are not derivable
			// from the bare graph, so a mesh round-trip states them
			// explicitly on both sides.
			gen.SenderRouters = built.Senders
			gen.ReceiverRouters = built.Receivers
			imp.SenderRouters = built.Senders
			imp.ReceiverRouters = built.Receivers
		}
		cg, err := gen.CanonicalString()
		if err != nil {
			t.Fatalf("%s: %v", specText, err)
		}
		ci, err := imp.CanonicalString()
		if err != nil {
			t.Fatalf("%s: %v", specText, err)
		}
		if cg != ci {
			t.Errorf("%s: canonical hash changed across export/import round trip", specText)
		}
	}
}
