package core

import (
	"testing"
	"time"
)

// These tests check the paper's numbered observations end to end at
// reduced trial counts. They are statistical claims, so thresholds are
// generous; the full-figure reproduction lives in cmd/figures.

// Observation 2 (§5.2): BGP has the largest number of TTL expirations at
// degree 5; RIP is loop-free by blackholing; BGP expires roughly an order
// of magnitude more than BGP3 (the MRAI ratio).
func TestObservation2TransientLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol experiment")
	}
	run := func(p ProtocolKind) *Result {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.Degree = 5
		cfg.Trials = 6
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bgp := run(ProtoBGP)
	bgp3 := run(ProtoBGP3)
	if bgp.MeanTTLDrops < 2*bgp3.MeanTTLDrops {
		t.Errorf("BGP TTL expirations (%.1f) should far exceed BGP3's (%.1f)",
			bgp.MeanTTLDrops, bgp3.MeanTTLDrops)
	}
	if bgp.MeanTTLDrops < 10 {
		t.Errorf("BGP TTL expirations at degree 5 = %.1f, expected substantial looping", bgp.MeanTTLDrops)
	}
}

// Observation 2's degree-6 clause: no TTL expirations at degree ≥ 6 for
// the alternate-path protocols.
func TestObservation2NoLoopsAtDegreeSix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol experiment")
	}
	for _, p := range []ProtocolKind{ProtoDBF, ProtoBGP3} {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.Degree = 6
		cfg.Trials = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanTTLDrops > 1 {
			t.Errorf("%v TTL expirations at degree 6 = %.1f, want ≈ 0", p, res.MeanTTLDrops)
		}
	}
}

// Observation 3 (§5.3): DBF's throughput recovery completes within the
// triggered-update damping bound, far faster than RIP's periodic cycle.
func TestObservation3RecoveryTimescales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol experiment")
	}
	recovery := func(p ProtocolKind) int {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.Degree = 4
		cfg.Trials = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		failBin := int((cfg.FailAt - cfg.SenderStart) / time.Second)
		for bin := failBin + 1; bin < len(res.MeanThroughput); bin++ {
			if res.MeanThroughput[bin] >= 18 {
				return bin - failBin
			}
		}
		return len(res.MeanThroughput) - failBin
	}
	dbf := recovery(ProtoDBF)
	rip := recovery(ProtoRIP)
	if dbf > 15 {
		t.Errorf("DBF recovery = %d s, want within the damped cascade (≈ ≤ 15 s)", dbf)
	}
	if rip <= dbf {
		t.Errorf("RIP recovery (%d s) should be slower than DBF's (%d s)", rip, dbf)
	}
	if rip < 10 || rip > 60 {
		t.Errorf("RIP recovery = %d s, want on the order of the 30 s periodic cycle", rip)
	}
}

// Observation 4 (§5.4): BGP3 converges much faster than BGP even where
// both deliver essentially everything (degree 6).
func TestObservation4ConvergenceVsDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol experiment")
	}
	run := func(p ProtocolKind) *Result {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.Degree = 6
		cfg.Trials = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bgp := run(ProtoBGP)
	bgp3 := run(ProtoBGP3)
	if bgp3.MeanRoutingConv >= bgp.MeanRoutingConv {
		t.Errorf("BGP3 routing convergence (%.1fs) should beat BGP's (%.1fs)",
			bgp3.MeanRoutingConv, bgp.MeanRoutingConv)
	}
	// ... yet the drop difference is negligible: both lose almost nothing.
	if bgp.MeanNoRouteDrops > 5 || bgp3.MeanNoRouteDrops > 5 {
		t.Errorf("degree-6 drops should be negligible: bgp=%.1f bgp3=%.1f",
			bgp.MeanNoRouteDrops, bgp3.MeanNoRouteDrops)
	}
}

// Observation 5 (§5.5): packets delivered during convergence experience
// extra delay; with hop recording on, loop-escaping packets are observed
// where looping occurs.
func TestObservation5LoopEscapeDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length experiment")
	}
	cfg := DefaultConfig()
	cfg.Protocol = ProtoBGP3
	cfg.Degree = 5
	cfg.Trials = 6
	cfg.Net.RecordHops = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLoopEscapes == 0 && res.MeanTTLDrops == 0 {
		t.Skip("no looping occurred at these seeds; nothing to assert")
	}
	// Escaped packets inflate the delay tail well beyond the steady ≈20 ms.
	if res.MeanLoopEscapes > 0 && res.MeanDelayMax < 0.03 {
		t.Errorf("loop escapes observed (%.1f) but max delay %.4fs barely above steady state",
			res.MeanLoopEscapes, res.MeanDelayMax)
	}
}
