// Package core is the study harness — the paper's primary contribution. It
// assembles a mesh topology with stub sender/receiver routers, attaches one
// of the routing protocols to every node, injects a link failure on the
// flow's forwarding path, and measures packet delivery and convergence:
// the quantities behind Figures 3–7 of the paper.
package core

import (
	"fmt"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing"
	"routeconv/internal/routing/bgp"
	"routeconv/internal/routing/dbf"
	"routeconv/internal/routing/ls"
	"routeconv/internal/routing/rip"
	"routeconv/internal/scenario"
	"routeconv/internal/topology"
	"routeconv/internal/topology/topoio"
)

// TrafficPattern selects the flow's packet arrival process.
type TrafficPattern int

// Traffic patterns. The paper uses constant bit rate only; the others are
// workload-sensitivity extensions.
const (
	// TrafficCBR sends a packet every PacketInterval (the paper's §5
	// workload). It is the zero value's meaning.
	TrafficCBR TrafficPattern = iota
	// TrafficPoisson sends with exponential inter-arrival times of mean
	// PacketInterval.
	TrafficPoisson
	// TrafficOnOff alternates exponential ON bursts (packets every
	// PacketInterval) with exponential OFF silences.
	TrafficOnOff
)

// String implements fmt.Stringer.
func (p TrafficPattern) String() string {
	switch p {
	case TrafficCBR:
		return "cbr"
	case TrafficPoisson:
		return "poisson"
	case TrafficOnOff:
		return "onoff"
	default:
		return fmt.Sprintf("TrafficPattern(%d)", int(p))
	}
}

// TrafficMode selects the engine that simulates background flows (every
// flow after the first; the first flow — the paper's measured probe — is
// always packet-simulated end to end).
type TrafficMode int

// Traffic engine modes.
const (
	// ModePacket simulates every flow packet-by-packet (the zero value:
	// the paper's setup and the only mode prior to the hybrid engine).
	ModePacket TrafficMode = iota
	// ModeFluid accounts background flows analytically at every epoch,
	// including the convergence transient (fastest, least faithful).
	ModeFluid
	// ModeHybrid accounts background flows analytically on quiescent
	// epochs but demotes flows whose path crosses a FIB or link change to
	// real packet sources for a guard window (see GuardWindow).
	ModeHybrid
)

// String implements fmt.Stringer.
func (m TrafficMode) String() string {
	switch m {
	case ModePacket:
		return "packet"
	case ModeFluid:
		return "fluid"
	case ModeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("TrafficMode(%d)", int(m))
	}
}

// ParseTrafficMode converts a mode name as printed by String back to its
// value.
func ParseTrafficMode(s string) (TrafficMode, error) {
	for _, m := range []TrafficMode{ModePacket, ModeFluid, ModeHybrid} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown traffic mode %q", s)
}

// ProtocolKind selects the routing protocol under study.
type ProtocolKind int

// The protocols of the paper's §3 (plus the link-state extension of §6's
// future work).
const (
	// ProtoRIP is RIP (RFC 2453-style distance vector).
	ProtoRIP ProtocolKind = iota + 1
	// ProtoDBF is the Distributed Bellman-Ford variant with per-neighbor
	// vector caches.
	ProtoDBF
	// ProtoBGP is path-vector BGP with the standard 30 s MRAI.
	ProtoBGP
	// ProtoBGP3 is the paper's specially parameterized BGP with a 3 s MRAI.
	ProtoBGP3
	// ProtoLS is a link-state (SPF) protocol — the paper's stated future
	// work, included as an extension.
	ProtoLS
)

// Protocols lists the paper's four protocols in presentation order.
func Protocols() []ProtocolKind { return []ProtocolKind{ProtoRIP, ProtoDBF, ProtoBGP, ProtoBGP3} }

// String implements fmt.Stringer.
func (k ProtocolKind) String() string {
	switch k {
	case ProtoRIP:
		return "rip"
	case ProtoDBF:
		return "dbf"
	case ProtoBGP:
		return "bgp"
	case ProtoBGP3:
		return "bgp3"
	case ProtoLS:
		return "ls"
	default:
		return fmt.Sprintf("ProtocolKind(%d)", int(k))
	}
}

// ParseProtocol converts a protocol name as printed by String back to its
// kind.
func ParseProtocol(s string) (ProtocolKind, error) {
	for _, k := range []ProtocolKind{ProtoRIP, ProtoDBF, ProtoBGP, ProtoBGP3, ProtoLS} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown protocol %q", s)
}

// Config describes one experiment: a protocol on a mesh of a given degree,
// with a traffic flow and a failure schedule, repeated over independent
// trials.
type Config struct {
	// Protocol is the routing protocol attached to every router.
	Protocol ProtocolKind
	// Rows, Cols, Degree describe the mesh (§5: 7×7, interior degree
	// 3–16).
	Rows, Cols, Degree int
	// Topo, when non-empty, selects the topology by spec string — a
	// generator family with parameters ("ba:n=10000,m=2", "fattree:k=8")
	// or an edge-list file ("file:as.edges"); see topoio.ParseSpec for the
	// full grammar. ResolveTopology expands it into Topology plus default
	// SenderRouters/ReceiverRouters (explicitly set lists win), so the
	// canonical config — and thus sweep cache keys — depends only on the
	// resulting graph, never on the spec text. Mutually exclusive with a
	// non-nil Topology.
	Topo string
	// Topology, when non-nil, replaces the mesh entirely: the experiment
	// runs on this graph (e.g. a torus, hypercube, or small-world network)
	// and Rows/Cols/Degree are ignored. SenderRouters and ReceiverRouters
	// must then list the routers the stub hosts may attach to.
	Topology                       *topology.Graph
	SenderRouters, ReceiverRouters []netsim.NodeID
	// Trials is the number of independent runs to aggregate (paper: 100).
	Trials int
	// Seed makes the whole experiment reproducible; trial i uses a seed
	// derived from Seed and i.
	Seed int64
	// SenderStart is when the constant-rate flow begins (paper: 390 s).
	SenderStart time.Duration
	// FailAt is when one link on the flow's forwarding path fails
	// (paper: 400 s).
	FailAt time.Duration
	// End is the end of the simulation (paper: 800 s).
	End time.Duration
	// PacketInterval spaces the flow's packets (paper: 20 pkt/s → 50 ms).
	// For TrafficPoisson it is the mean inter-arrival time; for TrafficOnOff
	// it is the in-burst spacing.
	PacketInterval time.Duration
	// Traffic selects the flow's arrival process. The zero value means
	// TrafficCBR (the paper's constant-rate workload).
	Traffic TrafficPattern
	// OnMean and OffMean set TrafficOnOff's mean burst and silence
	// durations; zero values default to one second each.
	OnMean, OffMean time.Duration
	// PacketSize is the data packet size in bytes.
	PacketSize int
	// TTL is the data packets' initial hop budget (paper: 127).
	TTL int
	// Flows is the number of sender/receiver pairs (paper: 1; >1 is the
	// §6 future-work extension).
	Flows int
	// Mode selects the background-flow traffic engine. The first flow is
	// always a packet-simulated probe with stub hosts and a collector; in
	// ModeFluid/ModeHybrid the remaining Flows-1 classes run
	// router-to-router through the fluid evaluator, which is what makes
	// millions of flows per trial tractable.
	Mode TrafficMode
	// GuardWindow is how long a hybrid-mode flow stays demoted to
	// packet-level simulation after a forwarding change on its path.
	// Zero defaults to one second.
	GuardWindow time.Duration
	// ExtraFailAts schedules additional failures of random live mesh links
	// (the §6 multiple-failure extension). Empty for the paper's setup.
	ExtraFailAts []time.Duration
	// FastReroute precomputes loop-free-alternate protection next hops at
	// every router (the paper's related work [1], [27]): packets deflect
	// to the backup the instant the primary's link is down, before any
	// protocol reaction. An extension; off in the paper's setup.
	FastReroute bool
	// RestoreAfter, when positive, restores the primary failed link this
	// long after each failure (link repair / flap experiments).
	RestoreAfter time.Duration
	// Flaps is how many times the primary link fails. 0 or 1 is the
	// paper's single permanent failure; with RestoreAfter set, cycle i
	// fails at FailAt + i·2·RestoreAfter. Used by the route-flap-damping
	// experiments.
	Flaps int
	// Scenario, when non-empty, is a disturbance script in the scenario
	// text grammar ("fail link 3-7 @400s; loss link 1-2 p=0.01 @410s";
	// full reference in SCENARIOS.md) that replaces the default failure
	// schedule. ResolveScenario parses it into Script and clears it, so
	// the canonical config — and thus sweep cache keys — depends only on
	// the event list, never on the script text. Mutually exclusive with a
	// non-nil Script and with the legacy RestoreAfter/Flaps/ExtraFailAts
	// knobs. FailAt remains the measurement anchor (post-failure drop
	// windows, convergence times, timeline summaries) for scripted runs.
	Scenario string
	// Script, when non-nil, is the parsed disturbance schedule executed
	// by the trial (built with scenario.NewBuilder or scenario.Parse).
	// When both Scenario and Script are empty, the legacy
	// FailAt/RestoreAfter/Flaps/ExtraFailAts fields compile to an
	// equivalent script — bit-for-bit, the golden fixtures pin it.
	Script *scenario.Script
	// Metrics enables the obs counter layer: each trial carries a
	// TrialResult.Metrics snapshot (and the Result sums them). Counting is
	// passive — it never changes simulation outcomes — but the flag is part
	// of the canonical config, so sweep cache keys differ between metered
	// and unmetered runs.
	Metrics bool
	// Shards partitions the router topology into this many shards, each
	// running its nodes' events on a private simulator goroutine under
	// conservative lockstep windows (the link propagation delay is the
	// lookahead). 0 or 1 selects the sequential engine. Trial results are
	// bit-for-bit identical across shard counts — per-node and per-source
	// random streams make the schedule shard-invariant — so Shards is an
	// execution knob, not part of the experiment: it is excluded from the
	// canonical config and thus from sweep cache keys.
	Shards int
	// Net holds the physical link parameters.
	Net netsim.Config
	// Vector parameterizes RIP and DBF.
	Vector routing.VectorConfig
	// BGP parameterizes ProtoBGP; BGP3 parameterizes ProtoBGP3.
	BGP, BGP3 bgp.Config
	// LS parameterizes ProtoLS.
	LS ls.Config
	// Factory overrides the protocol constructor entirely when non-nil
	// (for ablations and custom protocols); Protocol is then only a label.
	Factory func(*netsim.Node) netsim.Protocol
}

// DefaultConfig returns the paper's §5 experiment parameters with the DBF
// protocol selected.
func DefaultConfig() Config {
	return Config{
		Protocol:       ProtoDBF,
		Rows:           7,
		Cols:           7,
		Degree:         4,
		Trials:         10,
		Seed:           1,
		SenderStart:    390 * time.Second,
		FailAt:         400 * time.Second,
		End:            800 * time.Second,
		PacketInterval: 50 * time.Millisecond,
		PacketSize:     1000,
		TTL:            127,
		Flows:          1,
		Net:            netsim.DefaultConfig(),
		Vector:         routing.DefaultVectorConfig(),
		BGP:            bgp.DefaultConfig(),
		BGP3:           bgp.BGP3Config(),
		LS:             ls.DefaultConfig(),
	}
}

// ResolveTopology expands a Topo spec string into the Topology graph plus
// its default SenderRouters/ReceiverRouters (fields that are already set
// are kept), then clears Topo: the resolved config — and everything
// derived from it, canonical hash included — depends only on the resulting
// graph. It is a no-op when Topo is empty, and an error when both Topo and
// Topology are set.
func (c *Config) ResolveTopology() error {
	if c.Topo == "" {
		return nil
	}
	if c.Topology != nil {
		return fmt.Errorf("core: Topo %q and Topology are mutually exclusive", c.Topo)
	}
	spec, err := topoio.ParseSpec(c.Topo)
	if err != nil {
		return err
	}
	built, err := spec.Build()
	if err != nil {
		return err
	}
	c.Topology = built.Graph
	if len(c.SenderRouters) == 0 {
		c.SenderRouters = built.Senders
	}
	if len(c.ReceiverRouters) == 0 {
		c.ReceiverRouters = built.Receivers
	}
	c.Topo = ""
	return nil
}

// ResolveScenario parses a Scenario script string into Script, then clears
// Scenario: the resolved config — canonical hash included — depends only on
// the parsed event list. It is a no-op when Scenario is empty, and an error
// when both Scenario and Script are set.
func (c *Config) ResolveScenario() error {
	if c.Scenario == "" {
		return nil
	}
	if c.Script != nil {
		return fmt.Errorf("core: Scenario %q and Script are mutually exclusive", c.Scenario)
	}
	sc, err := scenario.Parse(c.Scenario)
	if err != nil {
		return err
	}
	c.Script = sc
	c.Scenario = ""
	return nil
}

// effectiveScript returns the trial's disturbance schedule: the explicit
// Script when set, otherwise the legacy FailAt/RestoreAfter/Flaps/
// ExtraFailAts fields compiled to their equivalent script (one failpath
// event plus one failrandom per extra failure). The compiled script's
// executor reproduces the original hard-coded schedule bit-for-bit: same
// closures, same randomness draws, same scheduling order.
func (c *Config) effectiveScript() *scenario.Script {
	if c.Script != nil {
		return c.Script
	}
	b := scenario.NewBuilder()
	b.FailPath(c.FailAt, c.RestoreAfter, c.Flaps)
	for _, at := range c.ExtraFailAts {
		b.FailRandom(at)
	}
	return b.Script()
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	if c.Topo != "" {
		if c.Topology != nil {
			return fmt.Errorf("core: Topo %q and Topology are mutually exclusive", c.Topo)
		}
		// Cheap spec check; graph-level checks run after ResolveTopology.
		if _, err := topoio.ParseSpec(c.Topo); err != nil {
			return err
		}
	}
	switch {
	case c.Trials < 1:
		return fmt.Errorf("core: Trials = %d, need ≥ 1", c.Trials)
	case c.Flows < 1:
		return fmt.Errorf("core: Flows = %d, need ≥ 1", c.Flows)
	case c.Topology == nil && c.Topo == "" && (c.Rows < 2 || c.Cols < 2):
		return fmt.Errorf("core: mesh %d×%d too small", c.Rows, c.Cols)
	case c.SenderStart > c.FailAt:
		return fmt.Errorf("core: SenderStart %v after FailAt %v", c.SenderStart, c.FailAt)
	case c.FailAt >= c.End:
		return fmt.Errorf("core: FailAt %v not before End %v", c.FailAt, c.End)
	case c.PacketInterval <= 0:
		return fmt.Errorf("core: PacketInterval must be positive")
	case c.Traffic < TrafficCBR || c.Traffic > TrafficOnOff:
		return fmt.Errorf("core: unknown traffic pattern %d", int(c.Traffic))
	case c.OnMean < 0 || c.OffMean < 0:
		return fmt.Errorf("core: OnMean/OffMean must not be negative")
	case c.TTL < 1:
		return fmt.Errorf("core: TTL must be ≥ 1")
	case c.Mode < ModePacket || c.Mode > ModeHybrid:
		return fmt.Errorf("core: unknown traffic mode %d", int(c.Mode))
	case c.GuardWindow < 0:
		return fmt.Errorf("core: GuardWindow must not be negative")
	case c.Shards < 0:
		return fmt.Errorf("core: Shards must not be negative")
	}
	if c.Factory == nil {
		if _, err := c.factory(); err != nil {
			return err
		}
	}
	for _, at := range c.ExtraFailAts {
		if at >= c.End {
			return fmt.Errorf("core: extra failure at %v not before End %v", at, c.End)
		}
	}
	if c.Topology != nil {
		if len(c.SenderRouters) == 0 || len(c.ReceiverRouters) == 0 {
			return fmt.Errorf("core: custom Topology requires SenderRouters and ReceiverRouters")
		}
		for _, id := range append(append([]netsim.NodeID{}, c.SenderRouters...), c.ReceiverRouters...) {
			if int(id) < 0 || int(id) >= c.Topology.Len() {
				return fmt.Errorf("core: attachment router %d outside topology (%d nodes)", id, c.Topology.Len())
			}
		}
		if !c.Topology.Connected() {
			return fmt.Errorf("core: custom Topology is disconnected")
		}
	}
	if c.Flaps > 1 && c.RestoreAfter <= 0 {
		return fmt.Errorf("core: Flaps = %d requires RestoreAfter > 0", c.Flaps)
	}
	if c.RestoreAfter < 0 {
		return fmt.Errorf("core: RestoreAfter must not be negative")
	}
	if err := c.validateScenario(); err != nil {
		return err
	}
	return nil
}

// validateScenario checks the scripted disturbance schedule: the
// Scenario/Script exclusivity rules, and every scripted event against the
// horizon and — when the topology is known — the actual link and node set,
// plus cross-event ordering (no restore before a fail). See the bug the
// original Validate had: it cross-checked only FailAt against
// SenderStart/End, so a script could silently reference links that never
// existed or fire after the run ended.
func (c *Config) validateScenario() error {
	script := c.Script
	if c.Scenario != "" {
		if script != nil {
			return fmt.Errorf("core: Scenario %q and Script are mutually exclusive", c.Scenario)
		}
		parsed, err := scenario.Parse(c.Scenario)
		if err != nil {
			return err
		}
		script = parsed
	}
	if script == nil {
		return nil
	}
	if c.RestoreAfter != 0 || c.Flaps != 0 || len(c.ExtraFailAts) > 0 {
		return fmt.Errorf("core: a scenario script and the legacy RestoreAfter/Flaps/ExtraFailAts knobs are mutually exclusive; script the schedule instead (see SCENARIOS.md)")
	}
	// Reference checks need the graph. A resolved Topology has it; the
	// default mesh is cheap to build; an unresolved Topo spec defers
	// reference checks to the post-ResolveTopology Validate in
	// RunContext/TraceObserved (building the spec here could read files).
	g := c.Topology
	if g == nil && c.Topo == "" {
		if mesh, err := topology.NewMesh(c.Rows, c.Cols, c.Degree); err == nil {
			g = mesh.Graph
		}
	}
	return script.Validate(c.End, g)
}

// factory resolves the protocol constructor for this configuration.
func (c *Config) factory() (func(*netsim.Node) netsim.Protocol, error) {
	if c.Factory != nil {
		return c.Factory, nil
	}
	switch c.Protocol {
	case ProtoRIP:
		return rip.Factory(c.Vector), nil
	case ProtoDBF:
		return dbf.Factory(c.Vector), nil
	case ProtoBGP:
		return bgp.Factory(c.BGP), nil
	case ProtoBGP3:
		return bgp.Factory(c.BGP3), nil
	case ProtoLS:
		return ls.Factory(c.LS), nil
	default:
		return nil, fmt.Errorf("core: unknown protocol kind %d", int(c.Protocol))
	}
}
