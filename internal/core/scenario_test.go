package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/scenario"
	"routeconv/internal/topology"
)

// TestLegacyScriptEquivalence is the scenario engine's compatibility
// contract: a legacy config (FailAt/RestoreAfter/Flaps) and the explicit
// script it compiles to must produce bit-for-bit identical trials — same
// TrialResult, same drop, route-change, and path-sample streams — on every
// golden scenario. This is what lets the engine replace the hard-coded
// failure schedule without regenerating a single golden fixture.
func TestLegacyScriptEquivalence(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			legacy := sc.config()
			ref, refC, err := Trace(legacy, 0)
			if err != nil {
				t.Fatal(err)
			}

			scripted := sc.config()
			b := scenario.NewBuilder()
			b.FailPath(scripted.FailAt, scripted.RestoreAfter, scripted.Flaps)
			for _, at := range scripted.ExtraFailAts {
				b.FailRandom(at)
			}
			scripted.Script = b.Script()
			scripted.RestoreAfter = 0
			scripted.Flaps = 0
			scripted.ExtraFailAts = nil

			tr, c, err := Trace(scripted, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprintf("%+v", tr), fmt.Sprintf("%+v", ref); got != want {
				t.Errorf("scripted trial differs from legacy:\n legacy:   %s\n scripted: %s", want, got)
			}
			if !reflect.DeepEqual(refC.Drops, c.Drops) {
				t.Error("drop vectors differ")
			}
			if !reflect.DeepEqual(refC.RouteChanges, c.RouteChanges) {
				t.Error("route-change streams differ")
			}
			if !reflect.DeepEqual(refC.PathHistory, c.PathHistory) {
				t.Error("path-sample streams differ")
			}
		})
	}
}

// TestScenarioTextEquivalence checks the text grammar against the builder:
// the damping golden's schedule written as a script string produces the
// same trial as the legacy config.
func TestScenarioTextEquivalence(t *testing.T) {
	legacy := goldenDampingConfig()
	ref, refC, err := Trace(legacy, 0)
	if err != nil {
		t.Fatal(err)
	}
	scripted := goldenDampingConfig()
	scripted.Scenario = "failpath @400s restore=3s flaps=5"
	scripted.RestoreAfter = 0
	scripted.Flaps = 0
	tr, c, err := Trace(scripted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", tr), fmt.Sprintf("%+v", ref); got != want {
		t.Errorf("text-scripted trial differs from legacy:\n legacy: %s\n script: %s", want, got)
	}
	if !reflect.DeepEqual(refC.Drops, c.Drops) {
		t.Error("drop vectors differ")
	}
}

// TestScenarioNodeFailureConservation checks the packet-conservation
// identity under a scripted node failure and recovery: every sent packet is
// delivered, dropped for exactly one cause, or in flight at the end.
func TestScenarioNodeFailureConservation(t *testing.T) {
	cfg := goldenConfig(ProtoRIP)
	cfg.Metrics = true
	cfg.Script = scenario.NewBuilder().
		FailNode(400*time.Second, 24).
		RecoverNode(420*time.Second, 24).
		Script()
	tr, _, err := TraceObserved(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["drops.random_loss"] +
		m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated: accounted %d, sent %d\nsnapshot: %v", accounted, m["packets.sent"], m)
	}
	if m["scenario.events"] != 2 {
		t.Errorf("scenario.events = %d, want 2", m["scenario.events"])
	}
	if m["scenario.node_fails"] != 1 {
		t.Errorf("scenario.node_fails = %d, want 1", m["scenario.node_fails"])
	}
	if m["scenario.link_fails"] == 0 {
		t.Error("scenario.link_fails = 0 — the node failure took no links down")
	}
}

// TestScenarioLossConservation puts random loss on every mesh link and
// checks that lost data packets are accounted exactly once, in
// drops.random_loss, and that the identity still balances. Control packets
// are hit too (the obs counter control.dropped) but stay out of the data
// identity.
func TestScenarioLossConservation(t *testing.T) {
	cfg := goldenConfig(ProtoRIP)
	cfg.Metrics = true
	mesh, err := topology.NewMesh(cfg.Rows, cfg.Cols, cfg.Degree)
	if err != nil {
		t.Fatal(err)
	}
	b := scenario.NewBuilder()
	for _, e := range mesh.Graph.Edges() {
		b.Loss(time.Second, e.A, e.B, 0.05)
	}
	cfg.Script = b.Script()
	tr, _, err := TraceObserved(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics
	if m["drops.random_loss"] == 0 {
		t.Error("drops.random_loss = 0 — 5% loss on every link dropped no data packet")
	}
	if uint64(tr.RandomLossDrops) > m["drops.random_loss"] {
		t.Errorf("TrialResult.RandomLossDrops = %d > counter %d", tr.RandomLossDrops, m["drops.random_loss"])
	}
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["drops.random_loss"] +
		m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated: accounted %d, sent %d\nsnapshot: %v", accounted, m["packets.sent"], m)
	}
}

// TestScenarioShardedChurn extends the sharding determinism contract to the
// scenario engine's stochastic events: a continuous-churn script must
// reproduce the sequential trial bit-for-bit under Shards ∈ {2, 4}, because
// churn draws come from a private per-event stream and fire on the root
// simulator (at window barriers in sharded mode).
func TestScenarioShardedChurn(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoRIP, ProtoDBF} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			config := func() Config {
				cfg := goldenConfig(proto)
				cfg.Script = scenario.NewBuilder().
					Churn(400*time.Second, 440*time.Second, 0.2, 2*time.Second).
					Script()
				return cfg
			}
			ref, refC, err := Trace(config(), 0)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("%+v", ref)
			for _, shards := range []int{2, 4} {
				cfg := config()
				cfg.Shards = shards
				tr, c, err := Trace(cfg, 0)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := fmt.Sprintf("%+v", tr); got != want {
					t.Errorf("shards=%d churn trial differs from sequential:\n seq:    %s\n shards: %s",
						shards, want, got)
				}
				// Same drop tolerance as TestShardedGoldenEquivalence: loop
				// races may shift a drop by a few link delays.
				if len(refC.Drops) != len(c.Drops) {
					t.Errorf("shards=%d: drop vectors differ (%d vs %d records)",
						shards, len(refC.Drops), len(c.Drops))
				} else {
					tol := 4 * netsim.DefaultConfig().LinkDelay
					for i := range refC.Drops {
						a, b := refC.Drops[i], c.Drops[i]
						dt := a.At - b.At
						if dt < 0 {
							dt = -dt
						}
						if a.Where != b.Where || a.Reason != b.Reason || a.Control != b.Control || dt > tol {
							t.Errorf("shards=%d: drop %d differs: seq %+v, sharded %+v", shards, i, a, b)
							break
						}
					}
				}
				if !reflect.DeepEqual(refC.PathHistory, c.PathHistory) {
					t.Errorf("shards=%d: path-sample streams differ", shards)
				}
			}
		})
	}
}

// TestValidateScenario pins the config-level script validation added with
// the engine (the original Validate cross-checked only FailAt, so a script
// could reference absent links or fire after the horizon without complaint).
func TestValidateScenario(t *testing.T) {
	base := func() Config { return goldenConfig(ProtoRIP) }
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"bad grammar", func(c *Config) { c.Scenario = "explode link 3-7 @400s" }, `unknown keyword "explode"`},
		{"text and script", func(c *Config) {
			c.Scenario = "failrandom @400s"
			c.Script = scenario.NewBuilder().FailRandom(400 * time.Second).Script()
		}, "mutually exclusive"},
		{"script with legacy knobs", func(c *Config) {
			c.Script = scenario.NewBuilder().FailRandom(400 * time.Second).Script()
			c.RestoreAfter = 3 * time.Second
		}, "legacy RestoreAfter/Flaps/ExtraFailAts"},
		{"past horizon", func(c *Config) {
			c.Script = scenario.NewBuilder().FailRandom(c.End + time.Second).Script()
		}, "not before"},
		{"absent link", func(c *Config) {
			// The 7×7 mesh has no 0–48 link (opposite corners).
			c.Script = scenario.NewBuilder().FailLink(400*time.Second, 0, 48).Script()
		}, "no link 0-48 in the topology"},
		{"restore before fail", func(c *Config) {
			c.Scenario = "restore link 0-1 @400s"
		}, "before any event fails it"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q, want substring %q", err, tc.want)
			}
		})
	}
	// A valid script passes, and ResolveScenario moves text into Script.
	cfg := base()
	cfg.Scenario = "fail link 0-1 @400s; restore link 0-1 @410s"
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid script rejected: %v", err)
	}
	if err := cfg.ResolveScenario(); err != nil {
		t.Fatal(err)
	}
	if cfg.Scenario != "" || cfg.Script == nil || len(cfg.Script.Events) != 2 {
		t.Errorf("ResolveScenario left %q / %+v", cfg.Scenario, cfg.Script)
	}
}
