package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/trace"
)

// TestShardedGoldenEquivalence is the sharding correctness contract: every
// golden scenario, run with Shards ∈ {2, 4}, must reproduce the sequential
// trial bit-for-bit — the same TrialResult (compared textually so NaN delay
// bins compare equal) and the same drop, route-change, and path-sample
// streams. Conservative windows with the link delay as lookahead never
// reorder anything observable; per-node and per-source random streams make
// the schedule independent of how nodes are distributed over simulators.
func TestShardedGoldenEquivalence(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			ref, refC, err := Trace(sc.config(), 0)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("%+v", ref)
			for _, shards := range []int{2, 4} {
				cfg := sc.config()
				cfg.Shards = shards
				tr, c, err := Trace(cfg, 0)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if got := fmt.Sprintf("%+v", tr); got != want {
					t.Errorf("shards=%d trial differs from sequential:\n seq:    %s\n shards: %s",
						shards, want, got)
				}
				// Drops must agree record for record in place, reason and
				// kind. Timestamps get a small tolerance: a data packet
				// caught in a transient loop can race a same-instant route
				// update at a node, and which one the engine processes
				// first is a scheduling accident that sharding is allowed
				// to resolve differently — the packet then exits the loop
				// one traversal earlier or later, shifting its drop time
				// by a few link delays.
				if len(refC.Drops) != len(c.Drops) {
					t.Errorf("shards=%d: drop vectors differ (%d vs %d records)",
						shards, len(refC.Drops), len(c.Drops))
				} else {
					for i := range refC.Drops {
						a, b := refC.Drops[i], c.Drops[i]
						dt := a.At - b.At
						if dt < 0 {
							dt = -dt
						}
						if a.Where != b.Where || a.Reason != b.Reason ||
							a.Control != b.Control || dt > 4*netsim.DefaultConfig().LinkDelay {
							t.Errorf("shards=%d: drop %d differs: seq %+v, sharded %+v",
								shards, i, a, b)
							break
						}
					}
				}
				// The link-state scenario gets a weaker route-change check.
				// When one LSA arrives at a node from two neighbors at the
				// same instant, whichever arrival is processed first decides
				// the reflood's "all but the sender" set; the loser's link
				// carries one extra duplicate whose serialization displaces
				// later messages by microseconds. Every forwarding entry
				// still passes through the identical sequence of states, so
				// that trajectory — values in order, timestamps within a few
				// link delays — is what is pinned. The vector protocols have
				// no such race and must match exactly.
				if sc.name == "ls" {
					compareTrajectories(t, shards, refC.RouteChanges, c.RouteChanges)
				} else if !reflect.DeepEqual(refC.RouteChanges, c.RouteChanges) {
					t.Errorf("shards=%d: route-change streams differ (%d vs %d records)",
						shards, len(refC.RouteChanges), len(c.RouteChanges))
				}
				if !reflect.DeepEqual(refC.PathHistory, c.PathHistory) {
					t.Errorf("shards=%d: path-sample streams differ (%d vs %d records)",
						shards, len(refC.PathHistory), len(c.PathHistory))
				}
			}
		})
	}
}

// compareTrajectories checks that every forwarding entry passes through
// the same sequence of states in both route-change streams, with
// timestamps matching to within a few link delays (see the call site for
// why link-state floods jitter).
func compareTrajectories(t *testing.T, shards int, ref, got []trace.RouteChange) {
	t.Helper()
	if len(ref) != len(got) {
		t.Errorf("shards=%d: route-change streams differ (%d vs %d records)", shards, len(ref), len(got))
		return
	}
	type state struct {
		nh      netsim.NodeID
		removed bool
		at      time.Duration
	}
	collect := func(rcs []trace.RouteChange) map[[2]netsim.NodeID][]state {
		m := make(map[[2]netsim.NodeID][]state)
		for _, rc := range rcs {
			k := [2]netsim.NodeID{rc.Node, rc.Dst}
			m[k] = append(m[k], state{nh: rc.NextHop, removed: rc.Removed, at: rc.At})
		}
		return m
	}
	a, b := collect(ref), collect(got)
	tol := 4 * netsim.DefaultConfig().LinkDelay
	for k, sa := range a {
		sb := b[k]
		if len(sa) != len(sb) {
			t.Errorf("shards=%d: entry (%d,%d) has %d changes sequentially, %d sharded",
				shards, k[0], k[1], len(sa), len(sb))
			continue
		}
		for i := range sa {
			dt := sa[i].at - sb[i].at
			if dt < 0 {
				dt = -dt
			}
			if sa[i].nh != sb[i].nh || sa[i].removed != sb[i].removed || dt > tol {
				t.Errorf("shards=%d: entry (%d,%d) change %d differs: seq %+v, sharded %+v",
					shards, k[0], k[1], i, sa[i], sb[i])
				break
			}
		}
	}
}

// TestShardedHybridConservation re-runs the hybrid conservation check under
// sharded execution: the combined packet+fluid accounting identity must
// hold with per-shard counters folded at the end, and the sharding metrics
// must show the machinery actually engaged.
func TestShardedHybridConservation(t *testing.T) {
	cfg := goldenConfig(ProtoRIP)
	cfg.Flows = 32
	cfg.Mode = ModeHybrid
	cfg.Metrics = true
	cfg.Shards = 4
	tr, _, err := TraceObserved(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics
	if m == nil {
		t.Fatal("Metrics enabled but TrialResult.Metrics is nil")
	}
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated under sharding: delivered+drops+in_flight = %d, sent = %d\nsnapshot: %v",
			accounted, m["packets.sent"], m)
	}
	if m["fluid.settles"] == 0 {
		t.Error("fluid.settles = 0, want > 0 — the fluid engine never ran")
	}
	if m["shard.barrier_waits"] == 0 {
		t.Error("shard.barrier_waits = 0, want > 0 — the run never synchronized")
	}
	if m["shard.cross_msgs"] == 0 {
		t.Error("shard.cross_msgs = 0, want > 0 — no packet ever crossed a shard boundary")
	}
}
