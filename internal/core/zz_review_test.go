package core

import (
	"testing"
	"time"

	"routeconv/internal/scenario"
)

// Overlapping adjacent node failures: fail A, fail B (A-B already down so
// not in B's took), recover A (skipped: B still down), recover B (not in
// B's took). Expectation: after both recoveries every link is back up.
func TestReviewOverlappingNodeRecovery(t *testing.T) {
	cfg := goldenConfig(ProtoRIP)
	cfg.Metrics = true
	// Nodes 24 and 25 are adjacent in the 7x7 degree-4 mesh (row-major).
	cfg.Script = scenario.NewBuilder().
		FailNode(400*time.Second, 24).
		FailNode(405*time.Second, 25).
		RecoverNode(410*time.Second, 24).
		RecoverNode(415*time.Second, 25).
		Script()
	_, tr, err := TraceObserved(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	net := tr.net
	l := net.Link(24, 25)
	if l == nil {
		t.Skip("24-25 not adjacent in this mesh")
	}
	if !l.Up() {
		t.Errorf("link 24-25 still down after both endpoints recovered")
	}
}
