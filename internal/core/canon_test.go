package core

import (
	"strings"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/topology"
)

func TestCanonicalStringDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := cfg.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("canonical string not deterministic:\n%s\n%s", a, b)
	}
	if !strings.HasPrefix(a, "core.Config/v1;") {
		t.Errorf("missing version prefix: %s", a[:40])
	}
	// Every field name should be present, so a silently-skipped field
	// can't alias two distinct configs.
	for _, field := range []string{"Protocol:", "Degree:", "Trials:", "Seed:", "FailAt:", "Net:", "Vector:", "BGP:", "LS:", "Factory:nil"} {
		if !strings.Contains(a, field) {
			t.Errorf("canonical string missing %q", field)
		}
	}
}

func TestCanonicalStringSeparatesConfigs(t *testing.T) {
	base := DefaultConfig()
	mutations := []func(*Config){
		func(c *Config) { c.Protocol = ProtoBGP },
		func(c *Config) { c.Degree = 5 },
		func(c *Config) { c.Trials = 99 },
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.End += time.Second },
		func(c *Config) { c.Net.QueueLimit = 21 },
		func(c *Config) { c.Vector.PoisonReverse = !c.Vector.PoisonReverse },
		func(c *Config) { c.BGP.MRAI = time.Second },
		func(c *Config) { c.ExtraFailAts = []time.Duration{500 * time.Second} },
		func(c *Config) { c.RestoreAfter = time.Second },
	}
	want, err := base.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		got, err := cfg.CanonicalString()
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if got == want {
			t.Errorf("mutation %d did not change the canonical string", i)
		}
	}
}

func TestCanonicalStringTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = topology.Torus(4, 4)
	cfg.SenderRouters = []netsim.NodeID{0}
	cfg.ReceiverRouters = []netsim.NodeID{15}
	a, err := cfg.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a, "graph(n=16") {
		t.Errorf("topology not canonicalized: %s", a)
	}
	// A structurally identical graph canonicalizes identically.
	cfg2 := cfg
	cfg2.Topology = topology.Torus(4, 4)
	b, err := cfg2.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical topologies canonicalize differently")
	}
	cfg2.Topology = topology.Torus(4, 5)
	c, err := cfg2.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different topologies canonicalize identically")
	}
}

func TestCanonicalStringRejectsFactory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factory = func(n *netsim.Node) netsim.Protocol { return nil }
	if _, err := cfg.CanonicalString(); err == nil {
		t.Fatal("Factory override canonicalized; want error")
	}
}
