package core

import (
	"fmt"
	"io"

	"routeconv/internal/stats"
)

// WriteReport renders the whole sweep as a self-contained markdown report:
// every figure's table, ASCII charts for the time series, and the per-cell
// summary. cmd/figures writes it with -report; EXPERIMENTS.md is derived
// from it.
func (sr *SweepResult) WriteReport(w io.Writer) error {
	base := sr.Config.Base
	if _, err := fmt.Fprintf(w, "# Reproduction report\n\n"+
		"Protocols: %v. Node degrees: %v. %d trials per cell, base seed %d.\n"+
		"Mesh %d×%d; flow %v→ %d pkt intervals; failure at %v; horizon %v.\n\n",
		sr.Protocols, sr.Degrees, base.Trials, base.Seed,
		base.Rows, base.Cols, base.PacketInterval, base.PacketSize, base.FailAt, base.End); err != nil {
		return err
	}

	sections := []struct {
		title string
		table *stats.Table
	}{
		{"Figure 3 — packet drops due to no route vs node degree", sr.Figure3Table()},
		{"Figure 4 — TTL expirations (transient loops) vs node degree", sr.Figure4Table()},
		{"Figure 6(a) — forwarding path convergence time (s)", sr.Figure6aTable()},
		{"Figure 6(b) — network routing convergence time (s)", sr.Figure6bTable()},
	}
	for _, s := range sections {
		if err := writeTableSection(w, s.title, s.table); err != nil {
			return err
		}
	}

	for _, d := range sr.Degrees {
		if !sr.hasSeriesInterest(d) {
			continue
		}
		if _, err := fmt.Fprintf(w, "## Figures 5 and 7 — degree %d\n\n```\n", d); err != nil {
			return err
		}
		if err := sr.Figure5Plot(d).Write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := sr.Figure7Plot(d).Write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprint(w, "```\n\n"); err != nil {
			return err
		}
	}

	return writeTableSection(w, "Per-cell summary", sr.SummaryTable())
}

// hasSeriesInterest limits the report's charts to the degrees the paper
// plots (3–6) that are present in the sweep.
func (sr *SweepResult) hasSeriesInterest(degree int) bool {
	if degree > 6 {
		return false
	}
	for _, p := range sr.Protocols {
		if sr.cell(p, degree) != nil {
			return true
		}
	}
	return false
}

func writeTableSection(w io.Writer, title string, t *stats.Table) error {
	if _, err := fmt.Fprintf(w, "## %s\n\n```\n", title); err != nil {
		return err
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	_, err := fmt.Fprint(w, "```\n\n")
	return err
}
