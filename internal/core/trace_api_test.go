package core

import (
	"strings"
	"testing"

	"routeconv/internal/netsim"
)

func TestTraceMatchesRun(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 2
	runRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		tr, col, err := Trace(cfg, trial)
		if err != nil {
			t.Fatal(err)
		}
		if col == nil {
			t.Fatal("Trace returned nil collector")
		}
		want := runRes.Trials[trial]
		if tr.Seed != want.Seed || tr.NoRouteDrops != want.NoRouteDrops ||
			tr.Delivered != want.Delivered || tr.FailedLink != want.FailedLink ||
			tr.RoutingConvergence != want.RoutingConvergence {
			t.Errorf("Trace(trial %d) = %+v, differs from Run's %+v", trial, tr, want)
		}
		if len(col.Deliveries) != tr.Delivered {
			t.Errorf("collector deliveries = %d, trial says %d", len(col.Deliveries), tr.Delivered)
		}
		src, dst := col.Flow()
		if src == dst {
			t.Error("collector flow endpoints identical")
		}
	}
}

func TestTraceValidation(t *testing.T) {
	cfg := shortConfig()
	if _, _, err := Trace(cfg, -1); err == nil {
		t.Error("negative trial accepted")
	}
	if _, _, err := Trace(cfg, cfg.Trials); err == nil {
		t.Error("out-of-range trial accepted")
	}
	cfg.TTL = 0
	if _, _, err := Trace(cfg, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDefaultSweepShape(t *testing.T) {
	sc := DefaultSweep(7)
	if sc.Base.Trials != 7 {
		t.Errorf("Trials = %d, want 7", sc.Base.Trials)
	}
	if len(sc.Degrees) != 14 || sc.Degrees[0] != 3 || sc.Degrees[13] != 16 {
		t.Errorf("Degrees = %v", sc.Degrees)
	}
	if len(sc.Protocols) != 4 {
		t.Errorf("Protocols = %v", sc.Protocols)
	}
	if len(Protocols()) != 4 {
		t.Errorf("Protocols() = %v", Protocols())
	}
}

func TestWriteReportAndPlots(t *testing.T) {
	sc := SweepConfig{
		Base:      shortConfig(),
		Degrees:   []int{4},
		Protocols: []ProtocolKind{ProtoDBF, ProtoLS},
	}
	sc.Base.Trials = 1
	sr, err := RunSweep(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sr.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Reproduction report",
		"Figure 3", "Figure 4", "Figure 6(a)", "Figure 6(b)",
		"Figures 5 and 7 — degree 4",
		"Per-cell summary",
		"dbf", "ls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}

	// Plots render standalone too.
	sb.Reset()
	if err := sr.Figure5Plot(4).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "throughput") {
		t.Error("figure 5 plot missing title")
	}
	sb.Reset()
	if err := sr.Figure7Plot(4).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "delay") {
		t.Error("figure 7 plot missing title")
	}

	// Missing cells render as dashes, not panics.
	if tab := sr.Figure5Table(99); tab == nil {
		t.Error("Figure5Table(missing degree) returned nil")
	}
}

func TestPathLinksHelper(t *testing.T) {
	if links := pathLinks(nil, false); links != nil {
		t.Errorf("pathLinks(nil) = %v", links)
	}
	if links := pathLinks([]NodeIDAlias{1}, true); links != nil {
		t.Errorf("single-node path links = %v", links)
	}
	links := pathLinks([]NodeIDAlias{1, 2, 3}, true)
	if len(links) != 2 {
		t.Fatalf("pathLinks = %v, want 2 links", links)
	}
}

// NodeIDAlias keeps the test readable without importing topology directly.
type NodeIDAlias = topologyNodeID

func TestCI95OfMetric(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ci := res.CI95Of(func(tr TrialResult) float64 { return float64(tr.Delivered) })
	if ci < 0 {
		t.Errorf("CI95Of = %v, want ≥ 0", ci)
	}
}

func TestTrafficPatternString(t *testing.T) {
	if TrafficCBR.String() != "cbr" || TrafficPoisson.String() != "poisson" || TrafficOnOff.String() != "onoff" {
		t.Error("traffic pattern names wrong")
	}
	if !strings.Contains(TrafficPattern(9).String(), "9") {
		t.Error("unknown pattern String()")
	}
}

// topologyNodeID mirrors the topology package's NodeID for the helper
// test above.
type topologyNodeID = netsim.NodeID
