package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/sim"
	"routeconv/internal/stats"
	"routeconv/internal/topology"
	"routeconv/internal/topology/partition"
	"routeconv/internal/trace"
)

// seedStride separates per-trial seeds; any large odd constant works.
const seedStride = 1_000_003

// TrialResult holds the measurements of one simulation run.
type TrialResult struct {
	// Seed is the simulator seed used for this trial.
	Seed int64
	// SenderRouter and ReceiverRouter are the mesh routers the stub hosts
	// of the first flow attached to.
	SenderRouter, ReceiverRouter netsim.NodeID
	// FailedLink is the on-path link failed at FailAt.
	FailedLink topology.Edge
	// WarmedUp reports whether the flow had a working forwarding path at
	// the failure instant (i.e. warm-up converged).
	WarmedUp bool
	// Sent and Delivered count the flow's data packets over the whole run.
	Sent, Delivered int
	// NoRouteDrops .. QueueDrops count the flow's data packets lost at or
	// after the failure, by cause (Figures 3 and 4).
	NoRouteDrops, TTLDrops, LinkFailureDrops, QueueDrops int
	// RandomLossDrops counts the flow's data packets lost at or after the
	// failure to scenario-scripted lossy links (zero without a loss
	// event).
	RandomLossDrops int
	// RoutingConvergence is the network routing convergence time (§5.4).
	RoutingConvergence time.Duration
	// ForwardingConvergence is the forwarding path convergence delay (§5.4).
	ForwardingConvergence time.Duration
	// TransientPaths counts distinct forwarding walks after the failure.
	TransientPaths int
	// LoopEscapes counts packets delivered after crossing a transient
	// forwarding loop (§5.5). Requires Config.Net.RecordHops.
	LoopEscapes int
	// Throughput is delivered packets per second, binned from SenderStart
	// (Figure 5).
	Throughput []float64
	// Delay is the mean delivery delay in seconds per bin, NaN where no
	// packets arrived (Figure 7).
	Delay []float64
	// DelayP50, DelayP95 and DelayMax summarize (in seconds) the delays of
	// packets delivered at or after the failure — Figure 7's loop-escape
	// spikes show up in the tail.
	DelayP50, DelayP95, DelayMax float64
	// ControlMessages and ControlBytes count all routing traffic.
	ControlMessages, ControlBytes uint64
	// Metrics is the trial's obs counter snapshot, populated only when
	// Config.Metrics is set (nil otherwise). Names are documented in
	// OBSERVABILITY.md.
	Metrics obs.Snapshot `json:",omitempty"`
}

// Result aggregates an experiment's trials.
type Result struct {
	Config Config
	Trials []TrialResult
	// Means over trials (Figures 3, 4 and 6).
	MeanNoRouteDrops  float64
	MeanTTLDrops      float64
	MeanLinkDrops     float64
	MeanQueueDrops    float64
	MeanRandomLoss    float64
	MeanRoutingConv   float64 // seconds
	MeanFwdConv       float64 // seconds
	MeanTransientPath float64
	// DeliveryRatio is total delivered over total sent.
	DeliveryRatio float64
	// MeanDelayP95 and MeanDelayMax average the trials' post-failure delay
	// tail statistics (seconds).
	MeanDelayP95, MeanDelayMax float64
	// MeanLoopEscapes averages packets delivered out of transient loops
	// (only populated when Config.Net.RecordHops is set).
	MeanLoopEscapes float64
	// MeanThroughput and MeanDelay are per-second series averaged across
	// trials (Figures 5 and 7).
	MeanThroughput []float64
	MeanDelay      []float64
	// WarmedUpTrials counts trials whose flow was converged at FailAt.
	WarmedUpTrials int
	// Metrics sums the trials' obs snapshots; nil unless Config.Metrics.
	Metrics obs.Snapshot `json:",omitempty"`
}

// Run executes the experiment: cfg.Trials independent simulations in
// parallel, aggregated into a Result.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: workers check ctx between trials, so
// a cancelled experiment stops promptly instead of finishing its whole trial
// batch. It returns ctx.Err() when cancelled.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	// Resolve any Topo spec and Scenario script once, up front: the workers
	// share cfg, and each trial then only clones the already-built graph
	// and installs the already-parsed script.
	if err := cfg.ResolveTopology(); err != nil {
		return nil, err
	}
	if err := cfg.ResolveScenario(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Trials: make([]TrialResult, cfg.Trials)}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	workers := runtime.GOMAXPROCS(0)
	if cfg.Shards > 1 {
		// Each sharded trial already keeps cfg.Shards goroutines busy;
		// running GOMAXPROCS trials at once would oversubscribe the cores.
		if workers = workers / cfg.Shards; workers < 1 {
			workers = 1
		}
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain; the error is reported once below
				}
				tr, _, err := runTrial(&cfg, i, nil, true)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("trial %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				res.Trials[i] = tr
			}
		}()
	}
dispatch:
	for i := 0; i < cfg.Trials; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res.aggregate()
	return res, nil
}

// NewResult assembles a Result from per-trial measurements, computing every
// aggregate field. Callers that persist trials — the sweep subsystem's
// result cache — use it to rehydrate a Result without re-simulating.
func NewResult(cfg Config, trials []TrialResult) *Result {
	res := &Result{Config: cfg, Trials: trials}
	res.aggregate()
	return res
}

// flow is one sender/receiver pair within a trial.
type flow struct {
	srcHost, dstHost     netsim.NodeID
	srcRouter, dstRouter netsim.NodeID
	collector            *trace.Collector
}

// Trace runs a single trial of the experiment and returns both its
// measurements and the raw event collector (route changes, path history,
// every delivery and drop) — the paper's §5.2 "analysis of the routing and
// forwarding trace files". trial selects which of the experiment's seeds
// to replay; Trace(cfg, i) reproduces trial i of Run(cfg) exactly.
func Trace(cfg Config, trial int) (TrialResult, *trace.Collector, error) {
	return TraceObserved(cfg, trial, nil)
}

// TraceObserved is Trace with an optional convergence timeline: when tl is
// non-nil, the trial's link, FIB, withdrawal, and flap-damping events are
// recorded into it and the summary records synthesized (obs.Timeline.Finish
// runs against the configured failure time). Recording is passive — the
// trial's results are bit-for-bit those of Trace.
func TraceObserved(cfg Config, trial int, tl *obs.Timeline) (TrialResult, *trace.Collector, error) {
	if err := cfg.ResolveTopology(); err != nil {
		return TrialResult{}, nil, err
	}
	if err := cfg.ResolveScenario(); err != nil {
		return TrialResult{}, nil, err
	}
	if err := cfg.Validate(); err != nil {
		return TrialResult{}, nil, err
	}
	if trial < 0 || trial >= cfg.Trials {
		return TrialResult{}, nil, fmt.Errorf("core: trial %d out of range [0, %d)", trial, cfg.Trials)
	}
	return runTrial(&cfg, trial, tl, false)
}

// runTrial builds and runs one simulation. tl, when non-nil, receives the
// trial's convergence timeline. compact makes the collectors drop
// individual route-change records (bulk runs never read them; on large
// graphs they are the dominant memory cost).
func runTrial(cfg *Config, trial int, tl *obs.Timeline, compact bool) (TrialResult, *trace.Collector, error) {
	factory, err := cfg.factory()
	if err != nil {
		return TrialResult{}, nil, err
	}
	seed := cfg.Seed + int64(trial)*seedStride
	s := sim.New(seed)
	var met *obs.Metrics
	if cfg.Metrics {
		met = obs.NewMetrics()
	}
	tl.TrialStart(0, seed)

	// The router topology: the paper's mesh by default, or a caller-
	// supplied graph (cloned, because each trial adds its own host nodes).
	var g *topology.Graph
	var senderRouters, receiverRouters []netsim.NodeID
	if cfg.Topology != nil {
		g = cfg.Topology.Clone()
		senderRouters, receiverRouters = cfg.SenderRouters, cfg.ReceiverRouters
	} else {
		mesh, err := topology.NewMesh(cfg.Rows, cfg.Cols, cfg.Degree)
		if err != nil {
			return TrialResult{}, nil, err
		}
		g = mesh.Graph
		senderRouters, receiverRouters = mesh.FirstRow(), mesh.LastRow()
	}
	meshEdges := g.Edges() // router links only; host links are added below

	// Attach one stub host pair per packet flow to random attachment
	// routers. In fluid/hybrid mode only the first flow (the measured
	// probe) gets hosts and a collector; the other Flows-1 classes run
	// router-to-router through the fluid evaluator — no stub nodes, no
	// per-packet events — which is what makes millions of flows viable.
	// The attachment draws are identical across modes so the probe, the
	// failure choice, and the warm-up are mode-independent.
	nPacket := cfg.Flows
	if cfg.Mode != ModePacket && nPacket > 1 {
		nPacket = 1
	}
	flows := make([]*flow, nPacket)
	type fluidPair struct{ src, dst netsim.NodeID }
	fluidPairs := make([]fluidPair, 0, cfg.Flows-nPacket)
	var observers multiObserver
	for i := 0; i < cfg.Flows; i++ {
		srcRouter := senderRouters[s.Rand().Intn(len(senderRouters))]
		dstRouter := receiverRouters[s.Rand().Intn(len(receiverRouters))]
		if i >= nPacket {
			if srcRouter != dstRouter {
				fluidPairs = append(fluidPairs, fluidPair{srcRouter, dstRouter})
			}
			continue
		}
		f := &flow{srcRouter: srcRouter, dstRouter: dstRouter}
		f.srcHost = g.AddNode()
		f.dstHost = g.AddNode()
		g.AddEdge(f.srcHost, f.srcRouter)
		g.AddEdge(f.dstHost, f.dstRouter)
		f.collector = trace.NewCollector(f.srcHost, f.dstHost)
		f.collector.SetCompact(compact)
		observers = append(observers, f.collector)
		flows[i] = f
	}

	net := netsim.FromGraph(s, g, cfg.Net, observers)
	net.Instrument(met, tl)
	var flowSet *netsim.FlowSet
	if len(fluidPairs) > 0 {
		flowSet = net.AttachFlows(netsim.FlowSetConfig{
			Start:       cfg.SenderStart,
			Stop:        cfg.End,
			GuardWindow: cfg.GuardWindow,
			Hybrid:      cfg.Mode == ModeHybrid,
		})
		interval := cfg.PacketInterval
		if cfg.Traffic == TrafficOnOff {
			// The fluid evaluator models an on/off class as CBR at its
			// long-run mean rate: interval scaled by the duty cycle.
			on, off := cfg.OnMean, cfg.OffMean
			if on <= 0 {
				on = time.Second
			}
			if off <= 0 {
				off = time.Second
			}
			interval = time.Duration(int64(interval) * int64(on+off) / int64(on))
		}
		for _, p := range fluidPairs {
			flowSet.Add(p.src, p.dst, interval, cfg.PacketSize, cfg.TTL)
		}
	}
	for _, f := range flows {
		f.collector.SetNetwork(net)
	}
	if cfg.Shards > 1 {
		// Partition before protocols attach: each protocol captures its
		// node's (shard) simulator at construction.
		part := partition.Partition(topology.NewCSR(g), cfg.Shards, seed)
		net.EnableSharding(part.Assign, part.K)
	}
	for i := 0; i < net.Len(); i++ {
		node := net.Node(netsim.NodeID(i))
		node.AttachProtocol(factory(node))
	}
	if cfg.FastReroute {
		installLoopFreeAlternates(net, g)
	}
	net.Start()

	for _, f := range flows {
		src := net.Node(f.srcHost)
		switch cfg.Traffic {
		case TrafficPoisson:
			netsim.StartPoisson(src, f.dstHost, cfg.PacketInterval, cfg.PacketSize, cfg.TTL, cfg.SenderStart, cfg.End)
		case TrafficOnOff:
			on, off := cfg.OnMean, cfg.OffMean
			if on <= 0 {
				on = time.Second
			}
			if off <= 0 {
				off = time.Second
			}
			netsim.StartOnOff(src, f.dstHost, cfg.PacketInterval, on, off, cfg.PacketSize, cfg.TTL, cfg.SenderStart, cfg.End)
		default:
			netsim.StartCBR(src, f.dstHost, cfg.PacketInterval, cfg.PacketSize, cfg.TTL, cfg.SenderStart, cfg.End)
		}
	}

	// The disturbance schedule: the explicit scenario script when set,
	// otherwise the legacy fields compiled to their equivalent script —
	// whose failpath event is the paper's §5 random on-path failure.
	primary := flows[0]
	var failedLink topology.Edge
	warmedUp := false
	runner := &scenarioRunner{
		cfg: cfg, s: s, net: net, g: g, meshEdges: meshEdges,
		flows: flows, tl: tl, met: met,
		failedLink: &failedLink, warmedUp: &warmedUp,
	}
	runner.install(cfg.effectiveScript())

	if net.Sharded() {
		net.RunSharded(cfg.End)
	} else {
		s.RunUntil(cfg.End)
	}
	if flowSet != nil {
		flowSet.Finish() // settle the fluid tail before reading stats
	}
	fired := s.Fired()
	if net.Sharded() {
		fired = net.FiredEvents() // control plus all shard simulators
		net.FinishSharding()
	}
	met.Set(obs.EventsFired, fired)
	tl.Finish(cfg.FailAt)
	for _, f := range flows {
		f.collector.Flush() // commit the final instant's buffered records
	}

	c := primary.collector
	nBins := int((cfg.End - cfg.SenderStart) / time.Second)
	throughputSamples := make([]stats.Sample, len(c.Deliveries))
	delaySamples := make([]stats.Sample, len(c.Deliveries))
	var postFailDelays []float64
	for i, d := range c.Deliveries {
		throughputSamples[i] = stats.Sample{At: d.At}
		delaySamples[i] = stats.Sample{At: d.At, Value: d.Delay.Seconds()}
		if d.At >= cfg.FailAt {
			postFailDelays = append(postFailDelays, d.Delay.Seconds())
		}
	}
	delaySummary := stats.Summarize(postFailDelays)
	st := net.Stats()
	return TrialResult{
		Seed:                  seed,
		SenderRouter:          primary.srcRouter,
		ReceiverRouter:        primary.dstRouter,
		FailedLink:            failedLink,
		WarmedUp:              warmedUp,
		Sent:                  int(st.DataSent),
		Delivered:             int(st.DataDelivered),
		NoRouteDrops:          sumFlows(flows, cfg.FailAt, netsim.DropNoRoute),
		TTLDrops:              sumFlows(flows, cfg.FailAt, netsim.DropTTLExpired),
		LinkFailureDrops:      sumFlows(flows, cfg.FailAt, netsim.DropLinkFailure),
		QueueDrops:            sumFlows(flows, cfg.FailAt, netsim.DropQueueOverflow),
		RandomLossDrops:       sumFlows(flows, cfg.FailAt, netsim.DropRandomLoss),
		RoutingConvergence:    c.RoutingConvergence(cfg.FailAt),
		ForwardingConvergence: c.ForwardingConvergence(cfg.FailAt),
		TransientPaths:        c.TransientPaths(cfg.FailAt),
		LoopEscapes:           c.LoopEscapes(cfg.FailAt),
		Throughput:            stats.BinCounts(throughputSamples, cfg.SenderStart, time.Second, nBins),
		Delay:                 stats.BinMeans(delaySamples, cfg.SenderStart, time.Second, nBins),
		DelayP50:              delaySummary.Median,
		DelayP95:              stats.Percentile(postFailDelays, 95),
		DelayMax:              delaySummary.Max,
		ControlMessages:       st.ControlSent,
		ControlBytes:          st.ControlBytes,
		Metrics:               met.Snapshot(),
	}, c, nil
}

// installLoopFreeAlternates precomputes protection next hops: for every
// (router, destination), if at least two neighbors are strictly closer to
// the destination than the router itself, the highest-ID one becomes the
// backup (the lowest is conventionally the primary). Strict downhill
// alternates can never loop, even chained.
func installLoopFreeAlternates(net *netsim.Network, g *topology.Graph) {
	for dsti := 0; dsti < g.Len(); dsti++ {
		dst := topology.NodeID(dsti)
		dist := g.BFS(dst)
		for vi := 0; vi < g.Len(); vi++ {
			v := topology.NodeID(vi)
			if v == dst || dist[v] < 0 {
				continue
			}
			var downhill []netsim.NodeID
			for _, n := range g.Neighbors(v) {
				if dist[n] >= 0 && dist[n] < dist[v] {
					downhill = append(downhill, n)
				}
			}
			if len(downhill) == 0 {
				continue
			}
			// Deflection chains along strictly-downhill backups always
			// terminate at the destination, so every downhill neighbor is a
			// valid protection entry. Prefer high IDs (protocol tie-breaks
			// favor low IDs for primaries, so those are likely the dead
			// ones) and let the forwarder skip entries with down links.
			sort.Slice(downhill, func(i, j int) bool { return downhill[i] > downhill[j] })
			net.Node(v).SetBackupRoutes(dst, downhill)
		}
	}
}

// recoverable filters failure candidates down to links whose removal
// leaves src and dst connected over the currently-up mesh links.
func recoverable(net *netsim.Network, meshEdges []topology.Edge, candidates []topology.Edge, src, dst netsim.NodeID) []topology.Edge {
	// Nodes are numbered 0..N-1 with hosts at the top; sizing by the
	// largest endpoint covers the mesh.
	maxNode := topology.NodeID(0)
	for _, e := range meshEdges {
		if e.B > maxNode {
			maxNode = e.B
		}
	}
	live := topology.NewGraph(int(maxNode) + 1)
	for _, e := range meshEdges {
		if l := net.Link(e.A, e.B); l != nil && l.Up() {
			live.AddEdge(e.A, e.B)
		}
	}
	liveEdges := live.Edges()
	out := candidates[:0]
	for _, cand := range candidates {
		trial := topology.NewGraph(live.Len())
		for _, e := range liveEdges {
			if e != cand {
				trial.AddEdge(e.A, e.B)
			}
		}
		if trial.BFS(src)[dst] >= 0 {
			out = append(out, cand)
		}
	}
	return out
}

// pathMeshLinks returns the failable links of a host-to-host walk: all its
// edges except the first and last (the host access links).
func pathMeshLinks(path []netsim.NodeID, ok bool) []topology.Edge {
	if !ok || len(path) < 4 {
		return nil
	}
	links := make([]topology.Edge, 0, len(path)-3)
	for i := 1; i+2 < len(path); i++ {
		links = append(links, topology.NewEdge(path[i], path[i+1]))
	}
	return links
}

// pathLinks returns every edge of a router-to-router path.
func pathLinks(path []topology.NodeID, ok bool) []topology.Edge {
	if !ok || len(path) < 2 {
		return nil
	}
	links := make([]topology.Edge, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		links = append(links, topology.NewEdge(path[i], path[i+1]))
	}
	return links
}

func sumFlows(flows []*flow, after time.Duration, reason netsim.DropReason) int {
	n := 0
	for _, f := range flows {
		n += f.collector.DataDropsAfter(after, reason)
	}
	return n
}

// CI95Of returns the 95% confidence half-width of any per-trial metric's
// mean, e.g. r.CI95Of(func(t TrialResult) float64 { return float64(t.NoRouteDrops) }).
func (r *Result) CI95Of(metric func(TrialResult) float64) float64 {
	xs := make([]float64, len(r.Trials))
	for i, t := range r.Trials {
		xs[i] = metric(t)
	}
	return stats.CI95(xs)
}

// aggregate fills the Result's mean fields from its trials.
func (r *Result) aggregate() {
	n := len(r.Trials)
	if n == 0 {
		return
	}
	var sent, delivered int
	var throughputs, delays [][]float64
	for _, t := range r.Trials {
		r.MeanNoRouteDrops += float64(t.NoRouteDrops)
		r.MeanTTLDrops += float64(t.TTLDrops)
		r.MeanLinkDrops += float64(t.LinkFailureDrops)
		r.MeanQueueDrops += float64(t.QueueDrops)
		r.MeanRandomLoss += float64(t.RandomLossDrops)
		r.MeanRoutingConv += t.RoutingConvergence.Seconds()
		r.MeanFwdConv += t.ForwardingConvergence.Seconds()
		r.MeanTransientPath += float64(t.TransientPaths)
		r.MeanDelayP95 += t.DelayP95
		r.MeanDelayMax += t.DelayMax
		r.MeanLoopEscapes += float64(t.LoopEscapes)
		sent += t.Sent
		delivered += t.Delivered
		if t.WarmedUp {
			r.WarmedUpTrials++
		}
		throughputs = append(throughputs, t.Throughput)
		delays = append(delays, t.Delay)
		r.Metrics = r.Metrics.Merge(t.Metrics)
	}
	fn := float64(n)
	r.MeanNoRouteDrops /= fn
	r.MeanTTLDrops /= fn
	r.MeanLinkDrops /= fn
	r.MeanQueueDrops /= fn
	r.MeanRandomLoss /= fn
	r.MeanRoutingConv /= fn
	r.MeanFwdConv /= fn
	r.MeanTransientPath /= fn
	r.MeanDelayP95 /= fn
	r.MeanDelayMax /= fn
	r.MeanLoopEscapes /= fn
	if sent > 0 {
		r.DeliveryRatio = float64(delivered) / float64(sent)
	} else {
		r.DeliveryRatio = math.NaN()
	}
	r.MeanThroughput = stats.AverageSeries(throughputs)
	r.MeanDelay = stats.AverageSeries(delays)
}

// multiObserver fans events out to several observers.
type multiObserver []netsim.Observer

var _ netsim.Observer = multiObserver(nil)

// RouteChanged implements netsim.Observer.
func (m multiObserver) RouteChanged(at time.Duration, node, dst, nextHop netsim.NodeID, removed bool) {
	for _, o := range m {
		o.RouteChanged(at, node, dst, nextHop, removed)
	}
}

// PacketDelivered implements netsim.Observer.
func (m multiObserver) PacketDelivered(at time.Duration, pkt *netsim.Packet) {
	for _, o := range m {
		o.PacketDelivered(at, pkt)
	}
}

// PacketDropped implements netsim.Observer.
func (m multiObserver) PacketDropped(at time.Duration, where netsim.NodeID, pkt *netsim.Packet, reason netsim.DropReason) {
	for _, o := range m {
		o.PacketDropped(at, where, pkt, reason)
	}
}
