package core

import (
	"testing"
	"time"

	"routeconv/internal/routing/bgp"
)

func TestRestoreAfterRepairsPath(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 2
	cfg.RestoreAfter = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With the link repaired, the flow should end essentially lossless
	// late in the run.
	failBin := int((cfg.FailAt - cfg.SenderStart) / time.Second)
	late := res.MeanThroughput[failBin+60]
	if late < 19 {
		t.Errorf("throughput 60 s after a repaired failure = %.1f pps, want ≈ 20", late)
	}
	if res.DeliveryRatio < 0.98 {
		t.Errorf("delivery ratio with repair = %.3f", res.DeliveryRatio)
	}
}

func TestFlapsValidation(t *testing.T) {
	cfg := shortConfig()
	cfg.Flaps = 3 // no RestoreAfter
	if _, err := Run(cfg); err == nil {
		t.Error("Flaps without RestoreAfter accepted")
	}
	cfg = shortConfig()
	cfg.RestoreAfter = -time.Second
	if _, err := Run(cfg); err == nil {
		t.Error("negative RestoreAfter accepted")
	}
}

func TestFlappingLinkRuns(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoBGP3
	cfg.Trials = 2
	cfg.RestoreAfter = 5 * time.Second
	cfg.Flaps = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio < 0.5 {
		t.Errorf("delivery ratio under flapping = %.3f, implausibly low", res.DeliveryRatio)
	}
	// Flapping must produce more transient paths than a single failure.
	single := cfg
	single.Flaps = 0
	single.RestoreAfter = 0
	sres, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTransientPath <= sres.MeanTransientPath {
		t.Errorf("flapping transient paths (%.1f) not above single failure (%.1f)",
			res.MeanTransientPath, sres.MeanTransientPath)
	}
}

// TestFlapDampingHurtsDelivery reproduces the Mao et al. [15] effect the
// paper's introduction cites: with route flap damping enabled, a flapping
// link gets its routes suppressed, and packet delivery during and after
// the flaps is worse than without damping.
func TestFlapDampingHurtsDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiments")
	}
	base := shortConfig()
	base.Protocol = ProtoBGP3
	base.Trials = 3
	base.RestoreAfter = 3 * time.Second
	base.Flaps = 5

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	damped := base
	dcfg := bgp.DefaultDampingConfig()
	dcfg.HalfLife = 60 * time.Second // scaled to the experiment length
	damped.BGP3.Damping = &dcfg
	dres, err := Run(damped)
	if err != nil {
		t.Fatal(err)
	}

	if dres.DeliveryRatio >= plain.DeliveryRatio {
		t.Errorf("damping should hurt delivery under flaps: damped %.4f vs plain %.4f",
			dres.DeliveryRatio, plain.DeliveryRatio)
	}
}

// TestFailureAlwaysRecoverable: even on the sparsest topology, the failed
// link never disconnects the flow — the experiment studies convergence to
// an existing alternate, not partition.
func TestFailureAlwaysRecoverable(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoLS // converges fastest; isolates the topology question
	cfg.Degree = 3
	cfg.Trials = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trials {
		// Link-state reconverges within seconds, so near-total delivery
		// proves the post-failure topology still connected the flow.
		ratio := float64(tr.Delivered) / float64(tr.Sent)
		if ratio < 0.95 {
			t.Errorf("trial %d: delivery %.3f after failing %v — flow disconnected?",
				i, ratio, tr.FailedLink)
		}
	}
}

// TestFastRerouteEliminatesBlackhole: with loop-free alternates installed,
// even RIP — which blackholes for tens of seconds — loses almost nothing,
// because the data plane deflects before the control plane reacts.
func TestFastRerouteEliminatesBlackhole(t *testing.T) {
	base := shortConfig()
	base.Protocol = ProtoRIP
	base.Degree = 6 // dense enough that downhill alternates exist everywhere
	base.Trials = 3

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	frr := base
	frr.FastReroute = true
	frrRes, err := Run(frr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanNoRouteDrops < 20 {
		t.Skipf("baseline RIP dropped only %.1f; nothing to protect", plain.MeanNoRouteDrops)
	}
	if frrRes.MeanNoRouteDrops+frrRes.MeanLinkDrops > plain.MeanNoRouteDrops/4 {
		t.Errorf("fast reroute drops = %.1f+%.1f, want far below plain RIP's %.1f",
			frrRes.MeanNoRouteDrops, frrRes.MeanLinkDrops, plain.MeanNoRouteDrops)
	}
}

func TestTrafficPatterns(t *testing.T) {
	for _, pattern := range []TrafficPattern{TrafficCBR, TrafficPoisson, TrafficOnOff} {
		pattern := pattern
		t.Run(pattern.String(), func(t *testing.T) {
			cfg := shortConfig()
			cfg.Protocol = ProtoDBF
			cfg.Trials = 1
			cfg.Traffic = pattern
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Trials[0]
			if tr.Sent == 0 || tr.Delivered == 0 {
				t.Fatalf("pattern %v: sent=%d delivered=%d", pattern, tr.Sent, tr.Delivered)
			}
			want := int((cfg.End - cfg.SenderStart) / cfg.PacketInterval)
			switch pattern {
			case TrafficCBR:
				if tr.Sent != want {
					t.Errorf("CBR sent %d, want exactly %d", tr.Sent, want)
				}
			case TrafficPoisson:
				if tr.Sent < want/2 || tr.Sent > want*2 {
					t.Errorf("Poisson sent %d, want ≈ %d", tr.Sent, want)
				}
			case TrafficOnOff:
				if tr.Sent < want/5 || tr.Sent > want {
					t.Errorf("on/off sent %d, want ≈ %d (half duty cycle)", tr.Sent, want/2)
				}
			}
		})
	}
}

func TestTrafficValidation(t *testing.T) {
	cfg := shortConfig()
	cfg.Traffic = TrafficPattern(9)
	if _, err := Run(cfg); err == nil {
		t.Error("unknown traffic pattern accepted")
	}
	cfg = shortConfig()
	cfg.OnMean = -time.Second
	if _, err := Run(cfg); err == nil {
		t.Error("negative OnMean accepted")
	}
}

func TestDelayTailMeasured(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Trials {
		if tr.DelayP50 <= 0 || tr.DelayMax <= 0 {
			t.Errorf("delay tail not measured: %+v", tr.DelayP50)
		}
		if tr.DelayP50 > tr.DelayP95 || tr.DelayP95 > tr.DelayMax {
			t.Errorf("delay percentiles out of order: p50=%v p95=%v max=%v",
				tr.DelayP50, tr.DelayP95, tr.DelayMax)
		}
	}
	if res.MeanDelayP95 <= 0 || res.MeanDelayMax < res.MeanDelayP95 {
		t.Errorf("aggregated delay tail wrong: p95=%v max=%v", res.MeanDelayP95, res.MeanDelayMax)
	}
}
