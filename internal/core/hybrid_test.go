package core

import (
	"fmt"
	"testing"
)

// goldenScenarios are the six pinned reference configurations shared with
// determinism_test.go and obs_test.go.
func goldenScenarios() []struct {
	name   string
	config func() Config
} {
	return []struct {
		name   string
		config func() Config
	}{
		{"rip", func() Config { return goldenConfig(ProtoRIP) }},
		{"dbf", func() Config { return goldenConfig(ProtoDBF) }},
		{"bgp", func() Config { return goldenConfig(ProtoBGP) }},
		{"bgp3", func() Config { return goldenConfig(ProtoBGP3) }},
		{"ls", func() Config { return goldenConfig(ProtoLS) }},
		{"bgp3-damping", goldenDampingConfig},
	}
}

// TestTrafficModesExactSingleFlow pins the mode-equivalence contract at
// its strongest point: with a single flow the probe is packet-simulated in
// every mode, no FlowSet is attached, and fluid/hybrid results are
// bit-for-bit the packet-mode results on all six golden scenarios.
func TestTrafficModesExactSingleFlow(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			ref, _, err := Trace(sc.config(), 0)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("%+v", ref)
			for _, mode := range []TrafficMode{ModeFluid, ModeHybrid} {
				cfg := sc.config()
				cfg.Mode = mode
				tr, _, err := Trace(cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got := fmt.Sprintf("%+v", tr); got != want {
					t.Errorf("%v single-flow trial differs from packet mode:\n packet: %s\n %v: %s",
						mode, want, mode, got)
				}
			}
		})
	}
}

// TestHybridToleranceBackgroundFlows compares hybrid against pure-packet
// simulation with background flows on the six golden scenarios. Sent
// counts must agree exactly (same CBR ticks either way); delivery may
// differ because the fluid evaluator classifies whole inter-change
// intervals while the packet engine times every loss individually — the
// tolerance states how far the engines may drift on each scenario.
func TestHybridToleranceBackgroundFlows(t *testing.T) {
	// Allowed |delivered_packet − delivered_hybrid| as a fraction of sent.
	tolerance := map[string]float64{
		"rip":          0.05,
		"dbf":          0.05,
		"bgp":          0.05,
		"bgp3":         0.05,
		"ls":           0.05,
		"bgp3-damping": 0.20, // long suppression epochs amplify classification drift
	}
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			run := func(mode TrafficMode) TrialResult {
				cfg := sc.config()
				cfg.Flows = 4
				cfg.Mode = mode
				tr, _, err := Trace(cfg, 0)
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}
			packet := run(ModePacket)
			hybrid := run(ModeHybrid)
			if packet.Sent != hybrid.Sent {
				t.Errorf("sent: packet %d, hybrid %d — CBR tick counts must agree exactly",
					packet.Sent, hybrid.Sent)
			}
			diff := packet.Delivered - hybrid.Delivered
			if diff < 0 {
				diff = -diff
			}
			tol := tolerance[sc.name]
			if float64(diff) > tol*float64(packet.Sent) {
				t.Errorf("delivered: packet %d, hybrid %d — |Δ| = %d exceeds %.0f%% of %d sent",
					packet.Delivered, hybrid.Delivered, diff, tol*100, packet.Sent)
			}
			t.Logf("sent %d/%d delivered %d/%d (Δ %d, %.2f%% of sent)",
				packet.Sent, hybrid.Sent, packet.Delivered, hybrid.Delivered,
				diff, 100*float64(diff)/float64(packet.Sent))
		})
	}
}

// TestHybridConservation runs a hybrid trial with many background flows
// and checks the packet-conservation identity over the combined
// packet+fluid accounting, plus that the fluid engine actually engaged
// (settles and demotions both non-zero).
func TestHybridConservation(t *testing.T) {
	cfg := goldenConfig(ProtoRIP)
	// 31 background flows: with seed 1 enough of them route through the
	// failure's reconvergence region to exercise the demotion machinery.
	cfg.Flows = 32
	cfg.Mode = ModeHybrid
	cfg.Metrics = true
	tr, _, err := TraceObserved(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics
	if m == nil {
		t.Fatal("Metrics enabled but TrialResult.Metrics is nil")
	}
	accounted := m["packets.delivered"] + m["drops.no_route"] +
		m["drops.ttl_expired"] + m["drops.queue_overflow"] +
		m["drops.link_failure"] + m["packets.in_flight_end"]
	if accounted != m["packets.sent"] {
		t.Errorf("conservation violated: delivered+drops+in_flight = %d, sent = %d\nsnapshot: %v",
			accounted, m["packets.sent"], m)
	}
	if m["fluid.settles"] == 0 {
		t.Error("fluid.settles = 0, want > 0 — the fluid engine never ran")
	}
	if m["fluid.demotions"] == 0 || m["fluid.reabsorptions"] == 0 {
		t.Errorf("fluid.demotions = %d, fluid.reabsorptions = %d, want both > 0 — "+
			"the failure should push flows through the hybrid guard window",
			m["fluid.demotions"], m["fluid.reabsorptions"])
	}
	if m["fluid.delivered_bytes"] == 0 {
		t.Error("fluid.delivered_bytes = 0, want > 0")
	}
}
