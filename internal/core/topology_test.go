package core

import (
	"testing"

	"routeconv/internal/netsim"
	"routeconv/internal/topology"
)

func TestCustomTopologyTorus(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoLS
	cfg.Trials = 2
	cfg.Topology = topology.Torus(5, 5)
	cfg.SenderRouters = []netsim.NodeID{0, 1, 2, 3, 4}
	cfg.ReceiverRouters = []netsim.NodeID{12, 17, 22}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmedUpTrials != cfg.Trials {
		t.Errorf("warmed up %d/%d on the torus", res.WarmedUpTrials, cfg.Trials)
	}
	if res.DeliveryRatio < 0.99 {
		t.Errorf("torus delivery ratio = %.3f", res.DeliveryRatio)
	}
	for _, tr := range res.Trials {
		found := false
		for _, r := range cfg.SenderRouters {
			if tr.SenderRouter == r {
				found = true
			}
		}
		if !found {
			t.Errorf("sender attached to %d, not in SenderRouters", tr.SenderRouter)
		}
	}
}

func TestCustomTopologyHypercube(t *testing.T) {
	cfg := shortConfig()
	cfg.Protocol = ProtoDBF
	cfg.Trials = 2
	cfg.Topology = topology.Hypercube(4) // 16 nodes, degree 4
	cfg.SenderRouters = []netsim.NodeID{0}
	cfg.ReceiverRouters = []netsim.NodeID{15}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hypercube: 4 disjoint shortest paths between antipodes; DBF has a
	// cached alternate at every hop.
	if res.DeliveryRatio < 0.99 {
		t.Errorf("hypercube delivery ratio = %.3f", res.DeliveryRatio)
	}
}

func TestCustomTopologySharedAcrossTrials(t *testing.T) {
	// The caller's graph must not accumulate host nodes across trials.
	g := topology.Ring(8)
	before := g.Len()
	cfg := shortConfig()
	cfg.Protocol = ProtoLS
	cfg.Trials = 3
	cfg.Topology = g
	cfg.SenderRouters = []netsim.NodeID{0}
	cfg.ReceiverRouters = []netsim.NodeID{4}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if g.Len() != before {
		t.Errorf("caller topology mutated: %d → %d nodes", before, g.Len())
	}
}

func TestCustomTopologyValidation(t *testing.T) {
	cfg := shortConfig()
	cfg.Topology = topology.Ring(5)
	if _, err := Run(cfg); err == nil {
		t.Error("custom topology without attachment routers accepted")
	}
	cfg.SenderRouters = []netsim.NodeID{0}
	cfg.ReceiverRouters = []netsim.NodeID{99}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range receiver router accepted")
	}
	disconnected := topology.NewGraph(4)
	disconnected.AddEdge(0, 1)
	cfg.Topology = disconnected
	cfg.ReceiverRouters = []netsim.NodeID{1}
	if _, err := Run(cfg); err == nil {
		t.Error("disconnected topology accepted")
	}
}
