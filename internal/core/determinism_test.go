package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"routeconv/internal/routing/bgp"
)

// goldenConfig is the reference scenario pinned by TestGoldenTrialResults:
// one trial of the paper's default degree-4 setup, seed 1, truncated to 60 s
// past the failure so the whole table runs in seconds.
func goldenConfig(k ProtocolKind) Config {
	cfg := DefaultConfig()
	cfg.Protocol = k
	cfg.Trials = 1
	cfg.End = cfg.FailAt + 60*time.Second
	cfg.Seed = 1
	return cfg
}

// goldenDampingConfig is the flap-damping reference scenario: BGP3 with
// RFC 2439 damping on a link that flaps five times. It exercises the
// damper's penalty/suppression state machine and its reuse timers, so the
// path-interning and dense-RIB rewrite is pinned on this configuration
// too.
func goldenDampingConfig() Config {
	cfg := goldenConfig(ProtoBGP3)
	cfg.RestoreAfter = 3 * time.Second
	cfg.Flaps = 5
	dcfg := bgp.DefaultDampingConfig()
	dcfg.HalfLife = 60 * time.Second
	cfg.BGP3.Damping = &dcfg
	return cfg
}

// TestGoldenTrialResults pins the exact outcome of one reference trial per
// protocol configuration. The values were regenerated when jitter and
// traffic randomness moved from the shared simulator RNG to per-node and
// per-source splitmix64 streams and trace recording became
// instant-granular (the changes that make trial results
// shard-count-invariant); any engine or forwarding-path change that shifts
// event ordering, random-number consumption, or drop accounting shows up
// here as a diff, not as a silent behaviour change.
func TestGoldenTrialResults(t *testing.T) {
	type golden struct {
		name                          string
		config                        func() Config
		sent, delivered               int
		noRoute, ttl, linkFail, queue int
		routingConv, fwdConv          time.Duration
		drops, routeChanges, paths    int
	}
	configFor := func(k ProtocolKind) func() Config {
		return func() Config { return goldenConfig(k) }
	}
	goldens := []golden{
		{name: "rip", config: configFor(ProtoRIP), sent: 1400, delivered: 1241, noRoute: 158, ttl: 0, linkFail: 1, queue: 0, routingConv: 23121801600, fwdConv: 17023124526, drops: 159, routeChanges: 3335, paths: 9},
		{name: "dbf", config: configFor(ProtoDBF), sent: 1400, delivered: 1326, noRoute: 73, ttl: 0, linkFail: 1, queue: 0, routingConv: 11147311771, fwdConv: 8077917168, drops: 74, routeChanges: 2817, paths: 6},
		{name: "bgp", config: configFor(ProtoBGP), sent: 1400, delivered: 1399, noRoute: 0, ttl: 0, linkFail: 1, queue: 0, routingConv: 55608000, fwdConv: 54265600, drops: 1, routeChanges: 3866, paths: 10},
		{name: "bgp3", config: configFor(ProtoBGP3), sent: 1400, delivered: 1399, noRoute: 0, ttl: 0, linkFail: 1, queue: 0, routingConv: 55608000, fwdConv: 54265600, drops: 1, routeChanges: 3914, paths: 8},
		{name: "ls", config: configFor(ProtoLS), sent: 1400, delivered: 1399, noRoute: 0, ttl: 0, linkFail: 1, queue: 0, routingConv: 54179200, fwdConv: 54179200, drops: 1, routeChanges: 2627, paths: 8},
		{name: "bgp3-damping", config: goldenDampingConfig, sent: 1400, delivered: 1360, noRoute: 0, ttl: 38, linkFail: 2, queue: 0, routingConv: 27054951200, fwdConv: 8180116800, drops: 40, routeChanges: 4298, paths: 12},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			tr, c, err := Trace(g.config(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Sent != g.sent || tr.Delivered != g.delivered {
				t.Errorf("sent/delivered = %d/%d, want %d/%d", tr.Sent, tr.Delivered, g.sent, g.delivered)
			}
			if tr.NoRouteDrops != g.noRoute || tr.TTLDrops != g.ttl ||
				tr.LinkFailureDrops != g.linkFail || tr.QueueDrops != g.queue {
				t.Errorf("drops (noRoute/ttl/linkFail/queue) = %d/%d/%d/%d, want %d/%d/%d/%d",
					tr.NoRouteDrops, tr.TTLDrops, tr.LinkFailureDrops, tr.QueueDrops,
					g.noRoute, g.ttl, g.linkFail, g.queue)
			}
			if tr.RoutingConvergence != g.routingConv {
				t.Errorf("RoutingConvergence = %d, want %d", tr.RoutingConvergence, g.routingConv)
			}
			if tr.ForwardingConvergence != g.fwdConv {
				t.Errorf("ForwardingConvergence = %d, want %d", tr.ForwardingConvergence, g.fwdConv)
			}
			if len(c.Drops) != g.drops {
				t.Errorf("len(Drops) = %d, want %d", len(c.Drops), g.drops)
			}
			if len(c.RouteChanges) != g.routeChanges {
				t.Errorf("len(RouteChanges) = %d, want %d", len(c.RouteChanges), g.routeChanges)
			}
			if len(c.PathHistory) != g.paths {
				t.Errorf("len(PathHistory) = %d, want %d", len(c.PathHistory), g.paths)
			}
		})
	}
}

// TestTraceRepeatable runs the same seeded trial twice and requires the
// results to be identical down to every recorded event: same TrialResult
// (compared textually so NaN delay bins compare equal), same drop vector,
// same route-change and path-sample streams.
func TestTraceRepeatable(t *testing.T) {
	for _, k := range []ProtocolKind{ProtoRIP, ProtoBGP} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig(k)
			tr1, c1, err := Trace(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			tr2, c2, err := Trace(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if s1, s2 := fmt.Sprintf("%+v", tr1), fmt.Sprintf("%+v", tr2); s1 != s2 {
				t.Errorf("TrialResult differs between identical runs:\n run1: %s\n run2: %s", s1, s2)
			}
			if !reflect.DeepEqual(c1.Drops, c2.Drops) {
				t.Error("drop vectors differ between identical runs")
			}
			if !reflect.DeepEqual(c1.RouteChanges, c2.RouteChanges) {
				t.Error("route-change streams differ between identical runs")
			}
			if !reflect.DeepEqual(c1.PathHistory, c2.PathHistory) {
				t.Error("path-sample streams differ between identical runs")
			}
		})
	}
}
