package core

import "testing"

// TestMetricsConservation checks, per golden protocol scenario, that the
// obs counters account for every injected packet exactly once:
//
//	delivered + drops (all four causes) + in-flight-at-end == sent
//
// and that the counters mirror the independently-measured TrialResult
// fields. A failure means a forwarding path increments the wrong counter
// (or none) for some packet fate.
func TestMetricsConservation(t *testing.T) {
	cases := []struct {
		name   string
		config func() Config
	}{
		{"rip", func() Config { return goldenConfig(ProtoRIP) }},
		{"dbf", func() Config { return goldenConfig(ProtoDBF) }},
		{"bgp", func() Config { return goldenConfig(ProtoBGP) }},
		{"bgp3", func() Config { return goldenConfig(ProtoBGP3) }},
		{"ls", func() Config { return goldenConfig(ProtoLS) }},
		{"bgp3-damping", goldenDampingConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.config()
			cfg.Metrics = true
			tr, _, err := TraceObserved(cfg, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			m := tr.Metrics
			if m == nil {
				t.Fatal("Metrics enabled but TrialResult.Metrics is nil")
			}

			// Counters must mirror the harness's own accounting.
			mirror := []struct {
				key  string
				want int
			}{
				{"packets.sent", tr.Sent},
				{"packets.delivered", tr.Delivered},
				{"drops.no_route", tr.NoRouteDrops},
				{"drops.ttl_expired", tr.TTLDrops},
				{"drops.link_failure", tr.LinkFailureDrops},
				{"drops.queue_overflow", tr.QueueDrops},
				{"drops.random_loss", tr.RandomLossDrops},
			}
			for _, mm := range mirror {
				if got := m[mm.key]; got != uint64(mm.want) {
					t.Errorf("%s = %d, want %d (TrialResult)", mm.key, got, mm.want)
				}
			}

			// Conservation: every sent packet has exactly one fate.
			accounted := m["packets.delivered"] + m["drops.no_route"] +
				m["drops.ttl_expired"] + m["drops.queue_overflow"] +
				m["drops.link_failure"] + m["drops.random_loss"] +
				m["packets.in_flight_end"]
			if accounted != m["packets.sent"] {
				t.Errorf("conservation violated: delivered+drops+in_flight = %d, sent = %d\nsnapshot: %v",
					accounted, m["packets.sent"], m)
			}

			// Sanity: a convergence experiment exercises the control plane.
			for _, key := range []string{"control.sent", "control.received", "fib.changes", "events.fired"} {
				if m[key] == 0 {
					t.Errorf("%s = 0, want > 0", key)
				}
			}
		})
	}
}

// TestMetricsOffByDefault checks that with Config.Metrics unset no snapshot
// is attached — the obs layer must be pay-for-what-you-use.
func TestMetricsOffByDefault(t *testing.T) {
	tr, _, err := Trace(goldenConfig(ProtoDBF), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Metrics != nil {
		t.Fatalf("Metrics disabled but TrialResult.Metrics = %v", tr.Metrics)
	}
}
