package core

import (
	"fmt"
	"time"

	"routeconv/internal/stats"
)

// SweepConfig describes the paper's full evaluation grid: every protocol at
// every node degree, Trials runs each. One sweep yields the data behind
// Figures 3–7.
type SweepConfig struct {
	// Base is the per-experiment template; its Protocol and Degree fields
	// are overwritten by the sweep.
	Base Config
	// Degrees lists the mesh degrees to sweep (paper: 3–16).
	Degrees []int
	// Protocols lists the protocols to sweep (paper: RIP, DBF, BGP, BGP3).
	Protocols []ProtocolKind
}

// DefaultSweep returns the paper's §5 evaluation grid at a configurable
// trial count.
func DefaultSweep(trials int) SweepConfig {
	base := DefaultConfig()
	base.Trials = trials
	degrees := make([]int, 0, 14)
	for d := 3; d <= 16; d++ {
		degrees = append(degrees, d)
	}
	return SweepConfig{Base: base, Degrees: degrees, Protocols: Protocols()}
}

// SweepResult holds one Result per (protocol, degree) cell.
type SweepResult struct {
	Config    SweepConfig
	Degrees   []int
	Protocols []ProtocolKind
	// Cells is indexed by protocol, then degree.
	Cells map[ProtocolKind]map[int]*Result
}

// RunSweep executes every cell of the grid. progress, when non-nil, is
// called with a human-readable line as each cell completes.
func RunSweep(sc SweepConfig, progress func(string)) (*SweepResult, error) {
	sr := &SweepResult{
		Config:    sc,
		Degrees:   sc.Degrees,
		Protocols: sc.Protocols,
		Cells:     make(map[ProtocolKind]map[int]*Result),
	}
	for _, p := range sc.Protocols {
		sr.Cells[p] = make(map[int]*Result)
		for _, d := range sc.Degrees {
			cfg := sc.Base
			cfg.Protocol = p
			cfg.Degree = d
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("sweep %v degree %d: %w", p, d, err)
			}
			sr.Cells[p][d] = res
			if progress != nil {
				progress(fmt.Sprintf("%-5s degree %-2d  no-route %.1f  ttl %.1f  fwd-conv %.1fs  routing-conv %.1fs",
					p, d, res.MeanNoRouteDrops, res.MeanTTLDrops, res.MeanFwdConv, res.MeanRoutingConv))
			}
		}
	}
	return sr, nil
}

// cell returns the result for (p, degree), or nil.
func (sr *SweepResult) cell(p ProtocolKind, degree int) *Result {
	if m, ok := sr.Cells[p]; ok {
		return m[degree]
	}
	return nil
}

// degreeTable builds a degree-by-protocol table from a per-cell metric.
func (sr *SweepResult) degreeTable(metricName string, metric func(*Result) float64) *stats.Table {
	header := []string{"degree"}
	for _, p := range sr.Protocols {
		header = append(header, fmt.Sprintf("%s_%s", p, metricName))
	}
	t := stats.NewTable(header...)
	for _, d := range sr.Degrees {
		row := []any{d}
		for _, p := range sr.Protocols {
			if c := sr.cell(p, d); c != nil {
				row = append(row, metric(c))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Figure3Table is the paper's Figure 3: mean packet drops due to no route
// versus node degree, per protocol.
func (sr *SweepResult) Figure3Table() *stats.Table {
	return sr.degreeTable("drops", func(r *Result) float64 { return r.MeanNoRouteDrops })
}

// Figure4Table is the paper's Figure 4: mean TTL expirations during
// convergence versus node degree, per protocol.
func (sr *SweepResult) Figure4Table() *stats.Table {
	return sr.degreeTable("ttl", func(r *Result) float64 { return r.MeanTTLDrops })
}

// Figure6aTable is the paper's Figure 6(a): mean forwarding path
// convergence time (seconds) versus node degree.
func (sr *SweepResult) Figure6aTable() *stats.Table {
	return sr.degreeTable("fwdconv_s", func(r *Result) float64 { return r.MeanFwdConv })
}

// Figure6bTable is the paper's Figure 6(b): mean network routing
// convergence time (seconds) versus node degree.
func (sr *SweepResult) Figure6bTable() *stats.Table {
	return sr.degreeTable("routconv_s", func(r *Result) float64 { return r.MeanRoutingConv })
}

// seriesWindow bounds the Figure 5/7 time series: the paper plots from the
// sender start through one minute past the failure.
func (sr *SweepResult) seriesWindow() (nBins int, failBin int) {
	base := sr.Config.Base
	failBin = int((base.FailAt - base.SenderStart) / time.Second)
	nBins = failBin + 60
	max := int((base.End - base.SenderStart) / time.Second)
	if nBins > max {
		nBins = max
	}
	return nBins, failBin
}

// Figure5Table is the paper's Figure 5 for one node degree: instantaneous
// throughput (delivered packets per second) versus time, per protocol.
// Time is in seconds since the sender started (the failure lands at the
// FailAt−SenderStart mark, 10 s with the paper's parameters).
func (sr *SweepResult) Figure5Table(degree int) *stats.Table {
	return sr.seriesTable(degree, "pps", func(r *Result) []float64 { return r.MeanThroughput })
}

// Figure7Table is the paper's Figure 7 for one node degree: mean delay of
// the packets delivered in each second, per protocol.
func (sr *SweepResult) Figure7Table(degree int) *stats.Table {
	return sr.seriesTable(degree, "delay_s", func(r *Result) []float64 { return r.MeanDelay })
}

func (sr *SweepResult) seriesTable(degree int, unit string, series func(*Result) []float64) *stats.Table {
	header := []string{"t_s"}
	for _, p := range sr.Protocols {
		header = append(header, fmt.Sprintf("%s_%s", p, unit))
	}
	t := stats.NewTable(header...)
	nBins, _ := sr.seriesWindow()
	for bin := 0; bin < nBins; bin++ {
		row := []any{bin}
		for _, p := range sr.Protocols {
			c := sr.cell(p, degree)
			if c == nil || bin >= len(series(c)) {
				row = append(row, "-")
			} else {
				row = append(row, series(c)[bin])
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Figure5Plot renders the instantaneous-throughput series for one degree
// as an ASCII chart.
func (sr *SweepResult) Figure5Plot(degree int) *stats.Plot {
	return sr.seriesPlot(degree, fmt.Sprintf("Figure 5 — instantaneous throughput (pps), degree %d", degree),
		func(r *Result) []float64 { return r.MeanThroughput })
}

// Figure7Plot renders the instantaneous-delay series for one degree as an
// ASCII chart.
func (sr *SweepResult) Figure7Plot(degree int) *stats.Plot {
	return sr.seriesPlot(degree, fmt.Sprintf("Figure 7 — instantaneous packet delay (s), degree %d", degree),
		func(r *Result) []float64 { return r.MeanDelay })
}

func (sr *SweepResult) seriesPlot(degree int, title string, series func(*Result) []float64) *stats.Plot {
	p := stats.NewPlot(title, "seconds since sender start (failure at 10)")
	nBins, _ := sr.seriesWindow()
	for _, proto := range sr.Protocols {
		c := sr.cell(proto, degree)
		if c == nil {
			continue
		}
		vals := series(c)
		if len(vals) > nBins {
			vals = vals[:nBins]
		}
		p.Add(proto.String(), vals)
	}
	return p
}

// SummaryTable reports, per (protocol, degree), the headline quantities of
// the study in one table: drops by cause, convergence times, delivery
// ratio, and control-plane cost.
func (sr *SweepResult) SummaryTable() *stats.Table {
	t := stats.NewTable("protocol", "degree", "noroute", "noroute_ci95", "ttl", "linkfail", "queue",
		"fwdconv_s", "routconv_s", "transient_paths", "delivery_ratio", "ctrl_msgs")
	for _, p := range sr.Protocols {
		for _, d := range sr.Degrees {
			c := sr.cell(p, d)
			if c == nil {
				continue
			}
			var msgs float64
			for _, tr := range c.Trials {
				msgs += float64(tr.ControlMessages)
			}
			msgs /= float64(len(c.Trials))
			ci := c.CI95Of(func(tr TrialResult) float64 { return float64(tr.NoRouteDrops) })
			t.AddRow(p.String(), d, c.MeanNoRouteDrops, ci, c.MeanTTLDrops, c.MeanLinkDrops,
				c.MeanQueueDrops, c.MeanFwdConv, c.MeanRoutingConv, c.MeanTransientPath,
				c.DeliveryRatio, msgs)
		}
	}
	return t
}
