package routing

import (
	"testing"
	"testing/quick"
)

func TestVectorUpdateRoundTrip(t *testing.T) {
	cfg := DefaultVectorConfig()
	u := cfg.PackEntries([]VectorEntry{
		{Dst: 0, Metric: 0},
		{Dst: 7, Metric: 3},
		{Dst: 48, Metric: 16},
	})[0]
	got, err := DecodeVectorUpdate(u.Encode(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(u.Entries) {
		t.Fatalf("round trip: %d entries, want %d", len(got.Entries), len(u.Entries))
	}
	for i := range u.Entries {
		if got.Entries[i] != u.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], u.Entries[i])
		}
	}
	if got.SizeBytes() != u.SizeBytes() {
		t.Errorf("round trip changed SizeBytes: %d → %d", u.SizeBytes(), got.SizeBytes())
	}
}

func TestVectorUpdateEmpty(t *testing.T) {
	cfg := DefaultVectorConfig()
	u := &VectorUpdate{header: cfg.HeaderBytes, entry: cfg.EntryBytes}
	got, err := DecodeVectorUpdate(u.Encode(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 {
		t.Errorf("empty update decoded to %d entries", len(got.Entries))
	}
}

// TestWireSizeModel pins the analytic size model to the actual encoding:
// SizeBytes = len(Encode()) + UDP/IP overhead.
func TestWireSizeModel(t *testing.T) {
	cfg := DefaultVectorConfig()
	for _, n := range []int{0, 1, 10, 25} {
		entries := make([]VectorEntry, n)
		for i := range entries {
			entries[i] = VectorEntry{Dst: NodeID(i), Metric: int32(i % 17)}
		}
		u := &VectorUpdate{Entries: entries, header: cfg.HeaderBytes, entry: cfg.EntryBytes}
		if got, want := u.SizeBytes(), len(u.Encode())+UDPIPOverhead; got != want {
			t.Errorf("%d entries: SizeBytes = %d, encoded+overhead = %d", n, got, want)
		}
	}
}

func TestDecodeVectorUpdateErrors(t *testing.T) {
	cfg := DefaultVectorConfig()
	good := (&VectorUpdate{Entries: []VectorEntry{{Dst: 1, Metric: 2}}, header: 32, entry: 20}).Encode()

	cases := map[string][]byte{
		"too short":   good[:2],
		"bad command": append([]byte{9}, good[1:]...),
		"bad version": {ripCommandResponse, 9, 0, 0},
		"ragged body": good[:len(good)-3],
		"bad AFI":     concat(good[:4], []byte{0, 9}, good[6:]...),
		"over limit":  overLimitPayload(&cfg),
	}
	for name, buf := range cases {
		if _, err := DecodeVectorUpdate(buf, &cfg); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func concat(a, b []byte, rest ...byte) []byte {
	out := append([]byte{}, a...)
	out = append(out, b...)
	return append(out, rest...)
}

func overLimitPayload(cfg *VectorConfig) []byte {
	entries := make([]VectorEntry, cfg.MaxEntries+1)
	for i := range entries {
		entries[i] = VectorEntry{Dst: NodeID(i)}
	}
	return (&VectorUpdate{Entries: entries, header: 32, entry: 20}).Encode()
}

// Property: any update round-trips losslessly.
func TestPropertyVectorUpdateRoundTrip(t *testing.T) {
	cfg := DefaultVectorConfig()
	f := func(dsts []uint16, metrics []uint8) bool {
		n := len(dsts)
		if len(metrics) < n {
			n = len(metrics)
		}
		if n > cfg.MaxEntries {
			n = cfg.MaxEntries
		}
		entries := make([]VectorEntry, n)
		for i := 0; i < n; i++ {
			entries[i] = VectorEntry{Dst: NodeID(dsts[i]), Metric: int32(metrics[i]) % 17}
		}
		u := &VectorUpdate{Entries: entries, header: cfg.HeaderBytes, entry: cfg.EntryBytes}
		got, err := DecodeVectorUpdate(u.Encode(), &cfg)
		if err != nil {
			return false
		}
		if len(got.Entries) != n {
			return false
		}
		for i := range entries {
			if got.Entries[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
