package routing

import (
	"bytes"
	"testing"
)

// FuzzDecodeVectorUpdate checks that the RIP decoder never panics on
// arbitrary input and that anything it accepts re-encodes canonically.
func FuzzDecodeVectorUpdate(f *testing.F) {
	cfg := DefaultVectorConfig()
	f.Add([]byte{})
	f.Add((&VectorUpdate{header: cfg.HeaderBytes, entry: cfg.EntryBytes}).Encode())
	f.Add((&VectorUpdate{
		Entries: []VectorEntry{{Dst: 1, Metric: 2}, {Dst: 50, Metric: 16}},
		header:  cfg.HeaderBytes,
		entry:   cfg.EntryBytes,
	}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeVectorUpdate(data, &cfg)
		if err != nil {
			return
		}
		// Accepted input must round-trip to itself (the encoding writes
		// canonical values for the fields the decoder reads).
		again, err := DecodeVectorUpdate(u.Encode(), &cfg)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Entries) != len(u.Entries) {
			t.Fatalf("entries %d → %d across round trip", len(u.Entries), len(again.Entries))
		}
		for i := range u.Entries {
			if again.Entries[i] != u.Entries[i] {
				t.Fatalf("entry %d changed: %+v → %+v", i, u.Entries[i], again.Entries[i])
			}
		}
	})
}

// FuzzEncodeStability: encoding is a pure function.
func FuzzEncodeStability(f *testing.F) {
	f.Add(uint16(3), uint8(7))
	f.Fuzz(func(t *testing.T, dst uint16, metric uint8) {
		cfg := DefaultVectorConfig()
		u := &VectorUpdate{
			Entries: []VectorEntry{{Dst: NodeID(dst), Metric: int32(metric)}},
			header:  cfg.HeaderBytes,
			entry:   cfg.EntryBytes,
		}
		if !bytes.Equal(u.Encode(), u.Encode()) {
			t.Fatal("Encode is not deterministic")
		}
	})
}
