package ls

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routetest"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func build(t *testing.T, seed int64, g *topology.Graph) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	return routetest.Build(seed, g, netsim.DefaultConfig(), nil, Factory(DefaultConfig()))
}

func TestConvergesOnLine(t *testing.T) {
	g := topology.Line(5)
	s, net := build(t, 1, g)
	s.RunUntil(10 * time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestConvergesOnMesh(t *testing.T) {
	m, err := topology.NewMesh(5, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, net := build(t, 2, m.Graph)
	s.RunUntil(10 * time.Second)
	routetest.AssertShortestPaths(t, net, m.Graph)
}

func TestConvergesFast(t *testing.T) {
	// Link-state floods immediately: convergence is bounded by flooding
	// diameter, far under a second at these link speeds.
	g := topology.Ring(10)
	s, net := build(t, 3, g)
	s.RunUntil(time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestReroutesAfterFailure(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 4, g)
	s.RunUntil(5 * time.Second)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 5*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestRecoversAfterRestore(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 5, g)
	s.RunUntil(5 * time.Second)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 5*time.Second)
	net.RestoreLink(0, 1)
	s.RunUntil(s.Now() + 5*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestDetachedDestinationCleared(t *testing.T) {
	g := topology.Line(3)
	s, net := build(t, 6, g)
	s.RunUntil(5 * time.Second)
	net.FailLink(1, 2)
	s.RunUntil(s.Now() + 5*time.Second)
	if _, ok := net.Node(0).NextHop(2); ok {
		t.Error("node 0 still routes to detached node 2")
	}
}

func TestStaleLSAIgnored(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	p := New(net.Node(0), DefaultConfig())
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(New(net.Node(1), DefaultConfig()))
	net.Start()
	s.RunUntil(time.Second)
	// Inject a stale LSA claiming node 1 has no neighbors (seq 0 < current).
	net.Node(1).SendControl(0, &Flood{LSA: LSA{Origin: 1, Seq: 0, Neighbors: nil}})
	s.RunUntil(2 * time.Second)
	if _, ok := net.Node(0).NextHop(1); !ok {
		t.Error("stale LSA overwrote fresher state")
	}
}

func TestTwoWayCheck(t *testing.T) {
	// An LSA listing a neighbor that does not list it back must not create
	// a usable edge.
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	p := New(net.Node(0), DefaultConfig())
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(New(net.Node(1), DefaultConfig()))
	net.Start()
	s.RunUntil(time.Second)
	// Node 1 falsely claims adjacency to 2; 2 never speaks.
	net.Node(1).SendControl(0, &Flood{LSA: LSA{Origin: 1, Seq: 99, Neighbors: []netsim.NodeID{0, 2}}})
	s.RunUntil(2 * time.Second)
	if _, ok := net.Node(0).NextHop(2); ok {
		t.Error("one-way adjacency produced a route")
	}
}

func TestFloodSize(t *testing.T) {
	f := &Flood{LSA: LSA{Origin: 1, Seq: 1, Neighbors: []netsim.NodeID{2, 3}}}
	if got := f.SizeBytes(); got != headerBytes+2*neighborBytes {
		t.Errorf("SizeBytes = %d, want %d", got, headerBytes+2*neighborBytes)
	}
}

func TestIgnoresForeignMessages(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	net.Node(0).AttachProtocol(New(net.Node(0), DefaultConfig()))
	net.Node(1).AttachProtocol(New(net.Node(1), DefaultConfig()))
	net.Start()
	net.Node(1).SendControl(0, fakeMsg{})
	s.RunUntil(time.Second)
}

type fakeMsg struct{}

func (fakeMsg) SizeBytes() int { return 10 }

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		g := topology.Ring(8)
		s, net := build(t, 42, g)
		s.RunUntil(5 * time.Second)
		net.FailLink(0, 1)
		s.RunUntil(10 * time.Second)
		return net.Stats().ControlSent + net.Stats().ControlBytes
	}
	if run() != run() {
		t.Error("identical seeds produced different control traffic")
	}
}

func TestECMPInstallsAllFirstHops(t *testing.T) {
	// Diamond: 0 reaches 3 via 1 or 2 at equal cost.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cfg := DefaultConfig()
	cfg.ECMP = true
	s, net := routetest.Build(7, g, netsim.DefaultConfig(), nil, Factory(cfg))
	s.RunUntil(5 * time.Second)
	set := net.Node(0).Multipath(3)
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Errorf("Multipath(3) = %v, want [1 2]", set)
	}
	// Single-path destinations have no ECMP set.
	if mp := net.Node(0).Multipath(1); mp != nil {
		t.Errorf("Multipath(1) = %v, want nil", mp)
	}
	routetest.AssertShortestPaths(t, net, g)
}

func TestECMPShrinksAfterFailure(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cfg := DefaultConfig()
	cfg.ECMP = true
	s, net := routetest.Build(8, g, netsim.DefaultConfig(), nil, Factory(cfg))
	s.RunUntil(5 * time.Second)
	net.FailLink(1, 3)
	s.RunUntil(s.Now() + 5*time.Second)
	if mp := net.Node(0).Multipath(3); mp != nil {
		t.Errorf("Multipath(3) after failure = %v, want nil (single path left)", mp)
	}
	if nh, ok := net.Node(0).NextHop(3); !ok || nh != 2 {
		t.Errorf("NextHop(3) = %d, %v; want 2", nh, ok)
	}
}
