package ls_test

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing/conformance"
	"routeconv/internal/routing/ls"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Params{
		Name:    "ls",
		Factory: func(n *netsim.Node) netsim.Protocol { return ls.New(n, ls.DefaultConfig()) },
		// Link-state floods immediately; seconds suffice.
		Settle: 5 * time.Second,
	})
}

func TestConformanceECMP(t *testing.T) {
	cfg := ls.DefaultConfig()
	cfg.ECMP = true
	conformance.Run(t, conformance.Params{
		Name:    "ls-ecmp",
		Factory: func(n *netsim.Node) netsim.Protocol { return ls.New(n, cfg) },
		Settle:  5 * time.Second,
	})
}
