package ls

import (
	"testing"
	"testing/quick"

	"routeconv/internal/routing"
)

func TestFloodRoundTrip(t *testing.T) {
	f := &Flood{LSA: LSA{Origin: 12, Seq: 42, Neighbors: []routing.NodeID{1, 5, 48}}}
	got, err := DecodeFlood(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.LSA.Origin != 12 || got.LSA.Seq != 42 {
		t.Errorf("round trip header = %+v", got.LSA)
	}
	if len(got.LSA.Neighbors) != 3 {
		t.Fatalf("neighbors = %v", got.LSA.Neighbors)
	}
	for i, n := range f.LSA.Neighbors {
		if got.LSA.Neighbors[i] != n {
			t.Errorf("neighbor %d = %d, want %d", i, got.LSA.Neighbors[i], n)
		}
	}
}

func TestFloodRoundTripEmpty(t *testing.T) {
	f := &Flood{LSA: LSA{Origin: 3, Seq: 1}}
	got, err := DecodeFlood(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.LSA.Neighbors) != 0 {
		t.Errorf("neighbors = %v, want none", got.LSA.Neighbors)
	}
}

// TestWireSizeModel pins the size model to the encoding: SizeBytes =
// len(Encode()) + IP overhead.
func TestWireSizeModel(t *testing.T) {
	for _, n := range []int{0, 1, 4, 16} {
		lsa := LSA{Origin: 1, Seq: 7}
		for i := 0; i < n; i++ {
			lsa.Neighbors = append(lsa.Neighbors, routing.NodeID(i))
		}
		f := &Flood{LSA: lsa}
		if got, want := f.SizeBytes(), len(f.Encode())+IPOverhead; got != want {
			t.Errorf("%d neighbors: SizeBytes = %d, encoded+overhead = %d", n, got, want)
		}
	}
}

func TestDecodeFloodErrors(t *testing.T) {
	good := (&Flood{LSA: LSA{Origin: 1, Seq: 2, Neighbors: []routing.NodeID{3}}}).Encode()
	badType := append([]byte{}, good...)
	badType[0] = 9
	badCount := append([]byte{}, good...)
	badCount[3] = 7
	badSum := append([]byte{}, good...)
	badSum[17] ^= 0xFF

	for name, buf := range map[string][]byte{
		"too short":    good[:10],
		"bad type":     badType,
		"bad count":    badCount,
		"bad checksum": badSum,
	} {
		if _, err := DecodeFlood(buf); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// Property: LSAs round-trip losslessly.
func TestPropertyFloodRoundTrip(t *testing.T) {
	f := func(origin uint8, seq uint64, neighbors []uint16) bool {
		lsa := LSA{Origin: routing.NodeID(origin), Seq: seq}
		for _, n := range neighbors {
			lsa.Neighbors = append(lsa.Neighbors, routing.NodeID(n))
		}
		fl := &Flood{LSA: lsa}
		got, err := DecodeFlood(fl.Encode())
		if err != nil {
			return false
		}
		if got.LSA.Origin != lsa.Origin || got.LSA.Seq != lsa.Seq || len(got.LSA.Neighbors) != len(lsa.Neighbors) {
			return false
		}
		for i := range lsa.Neighbors {
			if got.LSA.Neighbors[i] != lsa.Neighbors[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
