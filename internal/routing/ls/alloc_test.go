package ls

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// A steady-state SPF recompute must not allocate: the CSR adjacency,
// distance arrays, counting-sort buckets, and first-hop rows all live in
// the protocol's persistent epoch-versioned scratch, and unchanged routes
// cause no FIB churn.
func TestRecomputeAllocs(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Ring(6), netsim.DefaultConfig(), nil)
	var protos []*Protocol
	for i := 0; i < 6; i++ {
		p := New(net.Node(netsim.NodeID(i)), DefaultConfig())
		net.Node(netsim.NodeID(i)).AttachProtocol(p)
		protos = append(protos, p)
	}
	net.Start()
	s.RunUntil(time.Second) // full database everywhere
	p := protos[0]
	for i := 0; i < 4; i++ {
		p.recompute() // size the scratch
	}
	avg := testing.AllocsPerRun(100, func() { p.recompute() })
	if avg != 0 {
		t.Errorf("steady-state recompute allocates %.1f objects, want 0", avg)
	}
}

// An incremental SPF patch must not allocate either: the worklists, mark
// arrays, and candidate distances live in the persistent incrScratch, and
// first-hop rows are rebuilt in place. The toggled edge detaches and
// reattaches the end of a line, exercising both the orphan cascade (with
// re-relaxation to unreachable) and the decrease cascade.
func TestIncrementalPatchAllocs(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(6), netsim.DefaultConfig(), nil)
	var protos []*Protocol
	for i := 0; i < 6; i++ {
		p := New(net.Node(netsim.NodeID(i)), DefaultConfig())
		net.Node(netsim.NodeID(i)).AttachProtocol(p)
		protos = append(protos, p)
	}
	net.Start()
	s.RunUntil(time.Second) // full database everywhere
	p := protos[0]
	nbFull := []netsim.NodeID{3, 5}
	nbCut := []netsim.NodeID{3}
	// toggle rewrites node 4's LSA the way HandleMessage stores a flood,
	// alternately cutting and restoring the edge to node 5, and requires
	// the patch to handle it without falling back.
	toggle := func() {
		old := p.db[4]
		nb := nbFull
		if len(old.Neighbors) == 2 {
			nb = nbCut
		}
		p.db[4] = LSA{Origin: 4, Seq: old.Seq + 1, Neighbors: nb}
		if !p.tryIncremental(4, old, true) {
			t.Fatal("incremental patch unexpectedly fell back to full SPF")
		}
	}
	for i := 0; i < 8; i++ {
		toggle() // size the scratch
	}
	avg := testing.AllocsPerRun(100, toggle)
	if avg != 0 {
		t.Errorf("incremental SPF patch allocates %.1f objects, want 0", avg)
	}
}
