package ls

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// A steady-state SPF recompute must not allocate: the CSR adjacency,
// distance arrays, counting-sort buckets, and first-hop rows all live in
// the protocol's persistent epoch-versioned scratch, and unchanged routes
// cause no FIB churn.
func TestRecomputeAllocs(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Ring(6), netsim.DefaultConfig(), nil)
	var protos []*Protocol
	for i := 0; i < 6; i++ {
		p := New(net.Node(netsim.NodeID(i)), DefaultConfig())
		net.Node(netsim.NodeID(i)).AttachProtocol(p)
		protos = append(protos, p)
	}
	net.Start()
	s.RunUntil(time.Second) // full database everywhere
	p := protos[0]
	for i := 0; i < 4; i++ {
		p.recompute() // size the scratch
	}
	avg := testing.AllocsPerRun(100, func() { p.recompute() })
	if avg != 0 {
		t.Errorf("steady-state recompute allocates %.1f objects, want 0", avg)
	}
}
