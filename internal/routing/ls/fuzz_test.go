package ls

import (
	"testing"

	"routeconv/internal/routing"
)

// FuzzDecodeFlood checks that the LSA decoder never panics on arbitrary
// input and that accepted messages round-trip.
func FuzzDecodeFlood(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Flood{LSA: LSA{Origin: 1, Seq: 1}}).Encode())
	f.Add((&Flood{LSA: LSA{Origin: 3, Seq: 9, Neighbors: []routing.NodeID{1, 2}}}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := DecodeFlood(data)
		if err != nil {
			return
		}
		again, err := DecodeFlood(fl.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.LSA.Origin != fl.LSA.Origin || again.LSA.Seq != fl.LSA.Seq ||
			len(again.LSA.Neighbors) != len(fl.LSA.Neighbors) {
			t.Fatalf("round trip changed: %+v → %+v", fl.LSA, again.LSA)
		}
	})
}
