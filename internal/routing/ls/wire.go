package ls

import (
	"encoding/binary"
	"fmt"

	"routeconv/internal/routing"
)

// Wire format (an OSPF-flavoured router LSA):
//
//	type     1 byte (1 = router LSA)
//	flags    1 byte
//	count    2 bytes — number of listed neighbors
//	origin   4 bytes
//	seq      8 bytes
//	checksum 4 bytes
//	options  4 bytes
//	then 4 bytes per neighbor
//
// 24 bytes of LSA header plus 20 bytes of IP framing equals the package's
// headerBytes size model; TestWireSizeModel pins that.
const (
	lsaTypeRouter = 1
	lsaHeaderLen  = 24
	// IPOverhead is the network framing a flooded LSA rides in.
	IPOverhead = 20
)

// Encode renders the flood's LSA as a router-LSA payload.
func (f *Flood) Encode() []byte {
	l := f.LSA
	buf := make([]byte, lsaHeaderLen+neighborBytes*len(l.Neighbors))
	buf[0] = lsaTypeRouter
	binary.BigEndian.PutUint16(buf[2:], uint16(len(l.Neighbors)))
	binary.BigEndian.PutUint32(buf[4:], uint32(l.Origin))
	binary.BigEndian.PutUint64(buf[8:], l.Seq)
	binary.BigEndian.PutUint32(buf[16:], checksum(buf[:16]))
	for i, n := range l.Neighbors {
		binary.BigEndian.PutUint32(buf[lsaHeaderLen+4*i:], uint32(n))
	}
	return buf
}

// DecodeFlood parses a payload produced by Encode.
func DecodeFlood(buf []byte) (*Flood, error) {
	if len(buf) < lsaHeaderLen {
		return nil, fmt.Errorf("ls: LSA too short (%d bytes)", len(buf))
	}
	if buf[0] != lsaTypeRouter {
		return nil, fmt.Errorf("ls: unsupported LSA type %d", buf[0])
	}
	count := int(binary.BigEndian.Uint16(buf[2:]))
	if want := lsaHeaderLen + neighborBytes*count; len(buf) != want {
		return nil, fmt.Errorf("ls: LSA length %d, want %d for %d neighbors", len(buf), want, count)
	}
	if got := binary.BigEndian.Uint32(buf[16:]); got != checksum(buf[:16]) {
		return nil, fmt.Errorf("ls: LSA checksum mismatch")
	}
	f := &Flood{LSA: LSA{
		Origin: routing.NodeID(binary.BigEndian.Uint32(buf[4:])),
		Seq:    binary.BigEndian.Uint64(buf[8:]),
	}}
	if count > 0 {
		f.LSA.Neighbors = make([]routing.NodeID, count)
		for i := range f.LSA.Neighbors {
			f.LSA.Neighbors[i] = routing.NodeID(binary.BigEndian.Uint32(buf[lsaHeaderLen+4*i:]))
		}
	}
	return f, nil
}

// checksum is a simple 32-bit additive checksum over the header fields.
func checksum(b []byte) uint32 {
	var sum uint32
	for _, x := range b {
		sum = sum*31 + uint32(x)
	}
	return sum
}
