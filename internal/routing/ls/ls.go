// Package ls implements a simple link-state (SPF) routing protocol, the
// comparison the paper's §6 names as future work: each router floods
// link-state advertisements describing its adjacencies and computes
// shortest paths over the resulting map with Dijkstra (BFS, since all links
// have unit cost).
//
// A router keeps the entire topology, so after a detected failure it
// recomputes immediately — like DBF it has a near-zero path switch-over
// period, but unlike the vector protocols its alternate is always loop-free
// with respect to its own map.
package ls

import (
	"sort"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing"
)

// Message size model: flooded in IP (20 bytes), a 24-byte LSA header plus
// 4 bytes per listed neighbor — matching the encoding in wire.go.
const (
	headerBytes   = IPOverhead + lsaHeaderLen
	neighborBytes = 4
)

// Config parameterizes the link-state protocol.
type Config struct {
	// RefreshInterval re-floods each router's LSA periodically. The study
	// only needs event-driven flooding; the refresh is a safety net.
	RefreshInterval time.Duration
	// ECMP installs every equal-cost first hop instead of a single next
	// hop; flows are hashed across them (an extension, off by default).
	ECMP bool
}

// DefaultConfig returns a 30-minute refresh, effectively event-driven for
// the paper's 800 s runs.
func DefaultConfig() Config { return Config{RefreshInterval: 30 * time.Minute} }

// LSA is one router's link-state advertisement.
type LSA struct {
	Origin    routing.NodeID
	Seq       uint64
	Neighbors []routing.NodeID
}

// Flood is the message carrying one LSA hop by hop.
type Flood struct {
	LSA LSA
}

// SizeBytes implements netsim.Message.
func (f *Flood) SizeBytes() int { return headerBytes + neighborBytes*len(f.LSA.Neighbors) }

// Protocol is a link-state speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  Config
	db   map[routing.NodeID]LSA
	up   map[routing.NodeID]bool
	seq  uint64
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a link-state instance for the node.
func New(node *netsim.Node, cfg Config) *Protocol {
	return &Protocol{
		node: node,
		cfg:  cfg,
		db:   make(map[routing.NodeID]LSA),
		up:   make(map[routing.NodeID]bool),
	}
}

// Factory returns a constructor suitable for attaching the protocol to
// every node.
func Factory(cfg Config) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
	}
	p.originate()
	p.scheduleRefresh()
}

func (p *Protocol) scheduleRefresh() {
	if p.cfg.RefreshInterval <= 0 {
		return
	}
	p.node.Sim().Schedule(p.cfg.RefreshInterval, func() {
		p.originate()
		p.scheduleRefresh()
	})
}

// originate builds this router's LSA from its detected-up adjacencies and
// floods it.
func (p *Protocol) originate() {
	p.seq++
	var neighbors []routing.NodeID
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			neighbors = append(neighbors, n)
		}
	}
	lsa := LSA{Origin: p.node.ID(), Seq: p.seq, Neighbors: neighbors}
	p.db[p.node.ID()] = lsa
	p.flood(lsa, -1)
	p.recompute()
}

// flood forwards an LSA to every up neighbor except the one it came from.
func (p *Protocol) flood(lsa LSA, except routing.NodeID) {
	for _, n := range p.node.Neighbors() {
		if n == except || !p.up[n] {
			continue
		}
		p.node.SendControl(n, &Flood{LSA: lsa})
	}
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	f, ok := msg.(*Flood)
	if !ok {
		return
	}
	cur, have := p.db[f.LSA.Origin]
	if have && cur.Seq >= f.LSA.Seq {
		return // stale or duplicate: stop the flood
	}
	p.db[f.LSA.Origin] = f.LSA
	p.flood(f.LSA, from)
	p.recompute()
}

// LinkDown implements netsim.Protocol.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	p.originate()
}

// LinkUp implements netsim.Protocol: the adjacency re-forms and the
// database is synchronized to the neighbor.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	for _, origin := range p.sortedOrigins() {
		p.node.SendControl(neighbor, &Flood{LSA: p.db[origin]})
	}
	p.originate()
}

// recompute runs shortest-path first over the link-state database and
// installs next hops. An edge is used only when both endpoints advertise
// it (the two-way check).
func (p *Protocol) recompute() {
	self := p.node.ID()
	adj := make(map[routing.NodeID][]routing.NodeID, len(p.db))
	for _, origin := range p.sortedOrigins() {
		lsa := p.db[origin]
		for _, n := range lsa.Neighbors {
			if other, ok := p.db[n]; ok && containsID(other.Neighbors, origin) {
				adj[origin] = append(adj[origin], n)
			}
		}
	}
	// BFS from self; unit costs make this Dijkstra.
	dist := map[routing.NodeID]int{self: 0}
	order := []routing.NodeID{self}
	queue := []routing.NodeID{self}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, seen := dist[v]; seen {
				continue
			}
			dist[v] = dist[u] + 1
			order = append(order, v)
			queue = append(queue, v)
		}
	}
	// Resolve every equal-cost first hop in (distance, ID) order so each
	// node's set is complete before its children consult it.
	sort.Slice(order, func(i, j int) bool {
		if dist[order[i]] != dist[order[j]] {
			return dist[order[i]] < dist[order[j]]
		}
		return order[i] < order[j]
	})
	firstHops := make(map[routing.NodeID][]routing.NodeID, len(order))
	for _, v := range order {
		if v == self {
			continue
		}
		set := make(map[routing.NodeID]bool)
		for _, u := range adj[v] { // adj is symmetric (two-way check)
			if dist2, ok := dist[u]; !ok || dist2 != dist[v]-1 {
				continue
			}
			if u == self {
				set[v] = true
				continue
			}
			for _, h := range firstHops[u] {
				set[h] = true
			}
		}
		hops := make([]routing.NodeID, 0, len(set))
		for h := range set {
			hops = append(hops, h)
		}
		sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
		firstHops[v] = hops
		p.node.SetRoute(v, hops[0])
		if p.cfg.ECMP {
			p.node.SetMultipath(v, hops)
		}
	}
	// Destinations in the database but unreachable lose their routes.
	for _, origin := range p.sortedOrigins() {
		if _, ok := dist[origin]; !ok {
			p.node.ClearRoute(origin)
			p.node.SetMultipath(origin, nil)
		}
	}
}

func (p *Protocol) sortedOrigins() []routing.NodeID {
	out := make([]routing.NodeID, 0, len(p.db))
	for o := range p.db {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func containsID(list []routing.NodeID, id routing.NodeID) bool {
	for _, n := range list {
		if n == id {
			return true
		}
	}
	return false
}
