// Package ls implements a simple link-state (SPF) routing protocol, the
// comparison the paper's §6 names as future work: each router floods
// link-state advertisements describing its adjacencies and computes
// shortest paths over the resulting map with Dijkstra (BFS, since all links
// have unit cost).
//
// A router keeps the entire topology, so after a detected failure it
// recomputes immediately — like DBF it has a near-zero path switch-over
// period, but unlike the vector protocols its alternate is always loop-free
// with respect to its own map.
//
// Performance: the LSA database is a dense slice indexed by origin and the
// SPF run works entirely in persistent, epoch-versioned scratch (CSR
// adjacency, distance array, counting sort), so a steady-state recompute
// performs no allocations. Ascending-index iteration reproduces the
// (distance, ID) order the previous map+sort implementation produced, so
// trial results are bit-for-bit identical.
package ls

import (
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
)

// Message size model: flooded in IP (20 bytes), a 24-byte LSA header plus
// 4 bytes per listed neighbor — matching the encoding in wire.go.
const (
	headerBytes   = IPOverhead + lsaHeaderLen
	neighborBytes = 4
)

// Config parameterizes the link-state protocol.
type Config struct {
	// RefreshInterval re-floods each router's LSA periodically. The study
	// only needs event-driven flooding; the refresh is a safety net.
	RefreshInterval time.Duration
	// ECMP installs every equal-cost first hop instead of a single next
	// hop; flows are hashed across them (an extension, off by default).
	ECMP bool
}

// DefaultConfig returns a 30-minute refresh, effectively event-driven for
// the paper's 800 s runs.
func DefaultConfig() Config { return Config{RefreshInterval: 30 * time.Minute} }

// LSA is one router's link-state advertisement. The Neighbors slice is
// built once by the originator and is immutable from then on: floods,
// every receiver's database, and re-floods all share it.
type LSA struct {
	Origin    routing.NodeID
	Seq       uint64
	Neighbors []routing.NodeID
}

// Flood is the message carrying one LSA hop by hop. Floods sent by a
// Protocol are drawn from a per-speaker free list and recycled by the
// network after delivery (netsim.PooledMessage); receivers keep the LSA
// value (and its immutable Neighbors slice), never the Flood itself.
// Hand-built floods (tests, DecodeFlood) are not pooled.
type Flood struct {
	LSA LSA
	// pool is the free list the flood returns to on Release; nil for
	// hand-built floods.
	pool *floodPool
}

// SizeBytes implements netsim.Message.
func (f *Flood) SizeBytes() int { return headerBytes + neighborBytes*len(f.LSA.Neighbors) }

// floodPool recycles Flood messages through a free list.
type floodPool struct{ free []*Flood }

// get returns a zeroed flood, reusing a released one when available.
func (fp *floodPool) get() *Flood {
	if n := len(fp.free); n > 0 {
		f := fp.free[n-1]
		fp.free = fp.free[:n-1]
		return f
	}
	return &Flood{pool: fp}
}

// Release implements netsim.PooledMessage. Only the reference to the LSA
// (and its shared Neighbors slice) is dropped; the slice itself is owned
// by its originator and is never reused.
func (f *Flood) Release() {
	if f.pool == nil {
		return
	}
	f.LSA = LSA{}
	f.pool.free = append(f.pool.free, f)
}

// distInf marks an unreachable node in the persistent distance array.
const distInf = int32(1<<31 - 1)

// spfScratch is the persistent workspace for recompute. Distance and
// first-hop-dedup arrays are epoch-versioned: bumping the epoch invalidates
// every entry at once, so nothing is cleared between runs.
type spfScratch struct {
	// adjOff/adjList form a CSR adjacency over the database: node o's
	// two-way-checked neighbors are adjList[adjOff[o]:adjOff[o+1]].
	adjOff  []int32
	adjList []routing.NodeID
	// dist[v] is valid iff distEpoch[v] == epoch.
	dist      []int32
	distEpoch []uint32
	epoch     uint32
	// order is the BFS queue and visit order (nondecreasing distance).
	order []routing.NodeID
	// sorted is order rearranged to (distance, ID) ascending.
	sorted []routing.NodeID
	// bucket holds per-distance placement offsets for the counting sort.
	bucket []int32
	// firstHops[v] is the sorted set of equal-cost first hops toward v;
	// rows are reused across runs. hopSeen/hopEpoch dedup hop candidates.
	firstHops [][]routing.NodeID
	hopSeen   []uint32
	hopEpoch  uint32
	// pdist is the persistent distance array maintained across runs
	// (distInf = unreachable). Together with firstHops it is the
	// shortest-path tree the incremental patch (incremental.go) edits in
	// place; a full recompute rewrites it from the epoch-versioned dist.
	pdist []int32
}

// next invalidates all epoch-versioned entries, clearing on wraparound.
func (s *spfScratch) next() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.distEpoch {
			s.distEpoch[i] = 0
		}
		s.epoch = 1
	}
}

// nextHopEpoch invalidates the hop dedup marks, clearing on wraparound.
func (s *spfScratch) nextHopEpoch() uint32 {
	s.hopEpoch++
	if s.hopEpoch == 0 {
		for i := range s.hopSeen {
			s.hopSeen[i] = 0
		}
		s.hopEpoch = 1
	}
	return s.hopEpoch
}

// size ensures every array is long enough for n nodes.
func (s *spfScratch) size(n int) {
	if len(s.dist) >= n {
		return
	}
	s.adjOff = append(s.adjOff[:0], make([]int32, n+1)...)
	grownDist := make([]int32, n)
	copy(grownDist, s.dist)
	s.dist = grownDist
	grownEpoch := make([]uint32, n)
	copy(grownEpoch, s.distEpoch)
	s.distEpoch = grownEpoch
	grownSeen := make([]uint32, n)
	copy(grownSeen, s.hopSeen)
	s.hopSeen = grownSeen
	grownHops := make([][]routing.NodeID, n)
	copy(grownHops, s.firstHops)
	s.firstHops = grownHops
	grownPDist := make([]int32, n)
	copy(grownPDist, s.pdist)
	for i := len(s.pdist); i < n; i++ {
		grownPDist[i] = distInf
	}
	s.pdist = grownPDist
}

// Protocol is a link-state speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  Config
	// db is the dense LSA database indexed by origin; db[o] is valid iff
	// have[o]. An explicit validity bit (rather than Seq > 0) preserves the
	// old map semantics: a first-heard LSA with Seq 0 is stored.
	db   []LSA
	have []bool
	up   []bool
	seq  uint64
	pool floodPool
	spf  spfScratch
	// haveSPT reports that spf.pdist/spf.firstHops hold the exact result
	// of the last recompute, making them a valid base for incremental
	// patching. Cleared until the first full SPF completes.
	haveSPT bool
	incr    incrScratch
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a link-state instance for the node.
func New(node *netsim.Node, cfg Config) *Protocol {
	return &Protocol{node: node, cfg: cfg}
}

// Factory returns a constructor suitable for attaching the protocol to
// every node.
func Factory(cfg Config) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// ensureOrigin grows the database so origin is a valid index. The database
// is sized to the network at Start; this only triggers for unit tests that
// inject LSAs with out-of-range origins.
func (p *Protocol) ensureOrigin(origin routing.NodeID) {
	if int(origin) < len(p.db) {
		return
	}
	n := int(origin) + 1
	grownDB := make([]LSA, n)
	copy(grownDB, p.db)
	p.db = grownDB
	grownHave := make([]bool, n)
	copy(grownHave, p.have)
	p.have = grownHave
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	n := p.node.NetworkSize()
	if self := int(p.node.ID()); self >= n {
		n = self + 1
	}
	p.db = make([]LSA, n)
	p.have = make([]bool, n)
	p.up = make([]bool, n)
	for _, nb := range p.node.Neighbors() {
		p.up[nb] = true
	}
	p.originate()
	p.scheduleRefresh()
}

func (p *Protocol) scheduleRefresh() {
	if p.cfg.RefreshInterval <= 0 {
		return
	}
	p.node.Sim().Schedule(p.cfg.RefreshInterval, func() {
		p.originate()
		p.scheduleRefresh()
	})
}

// originate builds this router's LSA from its detected-up adjacencies and
// floods it. The neighbor list is freshly allocated each time because it
// outlives the call: floods in flight, every receiver's database, and this
// router's own database all share it.
func (p *Protocol) originate() {
	p.seq++
	var neighbors []routing.NodeID
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			neighbors = append(neighbors, n)
		}
	}
	self := p.node.ID()
	lsa := LSA{Origin: self, Seq: p.seq, Neighbors: neighbors}
	old, hadOld := p.db[self], p.have[self]
	p.db[self] = lsa
	p.have[self] = true
	p.flood(lsa, -1)
	p.applyDelta(self, old, hadOld)
}

// flood forwards an LSA to every up neighbor except the one it came from.
func (p *Protocol) flood(lsa LSA, except routing.NodeID) {
	for _, n := range p.node.Neighbors() {
		if n == except || !p.up[n] {
			continue
		}
		f := p.pool.get()
		f.LSA = lsa
		p.node.Metrics().Inc(obs.ProtoFloodsSent)
		p.node.SendControl(n, f)
	}
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	f, ok := msg.(*Flood)
	if !ok {
		return
	}
	p.node.Metrics().Inc(obs.ProtoFloodsReceived)
	origin := f.LSA.Origin
	p.ensureOrigin(origin)
	if p.have[origin] && p.db[origin].Seq >= f.LSA.Seq {
		return // stale or duplicate: stop the flood
	}
	old, hadOld := p.db[origin], p.have[origin]
	p.db[origin] = f.LSA
	p.have[origin] = true
	p.flood(f.LSA, from)
	p.applyDelta(origin, old, hadOld)
}

// applyDelta recomputes routes after the LSA for origin changed from old
// (hadOld reports whether one existed) to the stored one: incrementally
// when the change reduces to at most one effective edge and the affected
// region is small, otherwise via a full SPF. Both paths produce identical
// tables and identical observable effects; TestIncrementalMatchesFullSPF
// asserts the equivalence on randomized histories.
func (p *Protocol) applyDelta(origin routing.NodeID, old LSA, hadOld bool) {
	if p.tryIncremental(origin, old, hadOld) {
		return
	}
	p.recompute()
}

// LinkDown implements netsim.Protocol.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	p.originate()
}

// LinkUp implements netsim.Protocol: the adjacency re-forms and the
// database is synchronized to the neighbor.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	for o := range p.db {
		if !p.have[o] {
			continue
		}
		f := p.pool.get()
		f.LSA = p.db[o]
		p.node.Metrics().Inc(obs.ProtoFloodsSent)
		p.node.SendControl(neighbor, f)
	}
	p.originate()
}

// recompute runs shortest-path first over the link-state database and
// installs next hops. An edge is used only when both endpoints advertise
// it (the two-way check). All work happens in the persistent scratch.
func (p *Protocol) recompute() {
	p.node.Metrics().Inc(obs.ProtoDecisionRuns)
	self := p.node.ID()
	n := len(p.db)
	s := &p.spf
	s.size(n)

	// Build the CSR adjacency in ascending-origin order.
	s.adjList = s.adjList[:0]
	for o := 0; o < n; o++ {
		s.adjOff[o] = int32(len(s.adjList))
		if !p.have[o] {
			continue
		}
		for _, nb := range p.db[o].Neighbors {
			if int(nb) < n && p.have[nb] && containsID(p.db[nb].Neighbors, routing.NodeID(o)) {
				s.adjList = append(s.adjList, nb)
			}
		}
	}
	s.adjOff[n] = int32(len(s.adjList))

	// BFS from self; unit costs make this Dijkstra. order doubles as the
	// queue and ends up in nondecreasing-distance order.
	s.next()
	s.order = append(s.order[:0], self)
	s.dist[self] = 0
	s.distEpoch[self] = s.epoch
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		du := s.dist[u]
		for _, v := range s.adjList[s.adjOff[u]:s.adjOff[u+1]] {
			if s.distEpoch[v] == s.epoch {
				continue
			}
			s.distEpoch[v] = s.epoch
			s.dist[v] = du + 1
			s.order = append(s.order, v)
		}
	}

	// Counting sort into (distance, ID) ascending order: count each BFS
	// level, turn counts into level offsets, then place nodes by one
	// ascending-ID scan — so each level is filled in ID order. This is the
	// order the old sort.Slice produced (keys are unique, so it is exact),
	// and it guarantees each node's first-hop set is complete before its
	// children consult it.
	maxDist := int(s.dist[s.order[len(s.order)-1]])
	if len(s.bucket) < maxDist+1 {
		s.bucket = make([]int32, maxDist+1)
	}
	for d := 0; d <= maxDist; d++ {
		s.bucket[d] = 0
	}
	for _, v := range s.order {
		s.bucket[s.dist[v]]++
	}
	var off int32
	for d := 0; d <= maxDist; d++ {
		c := s.bucket[d]
		s.bucket[d] = off
		off += c
	}
	if cap(s.sorted) < len(s.order) {
		s.sorted = make([]routing.NodeID, len(s.order))
	}
	s.sorted = s.sorted[:len(s.order)]
	for v := 0; v < n; v++ {
		if s.distEpoch[v] == s.epoch {
			d := s.dist[v]
			s.sorted[s.bucket[d]] = routing.NodeID(v)
			s.bucket[d]++
		}
	}

	// Resolve every equal-cost first hop in (distance, ID) order.
	for _, v := range s.sorted {
		if v == self {
			continue
		}
		hops := s.firstHops[v][:0]
		mark := s.nextHopEpoch()
		dv := s.dist[v]
		for _, u := range s.adjList[s.adjOff[v]:s.adjOff[v+1]] { // adj is symmetric (two-way check)
			if s.distEpoch[u] != s.epoch || s.dist[u] != dv-1 {
				continue
			}
			if u == self {
				if s.hopSeen[v] != mark {
					s.hopSeen[v] = mark
					hops = append(hops, v)
				}
				continue
			}
			for _, h := range s.firstHops[u] {
				if s.hopSeen[h] != mark {
					s.hopSeen[h] = mark
					hops = append(hops, h)
				}
			}
		}
		// Insertion sort: hop sets are tiny (old code sorted a map's keys).
		for i := 1; i < len(hops); i++ {
			h := hops[i]
			j := i - 1
			for j >= 0 && hops[j] > h {
				hops[j+1] = hops[j]
				j--
			}
			hops[j+1] = h
		}
		s.firstHops[v] = hops
		p.node.SetRoute(v, hops[0])
		if p.cfg.ECMP {
			// SetMultipath retains the slice, so hand it a copy the scratch
			// won't overwrite next run.
			p.node.SetMultipath(v, append([]routing.NodeID(nil), hops...))
		}
	}

	// Destinations in the database but unreachable lose their routes.
	for o := 0; o < n; o++ {
		if p.have[o] && s.distEpoch[o] != s.epoch {
			p.node.ClearRoute(routing.NodeID(o))
			p.node.SetMultipath(routing.NodeID(o), nil)
		}
	}

	// Persist the tree for incremental patching: distances for every node
	// (distInf when unreachable) plus the first-hop rows written above.
	for v := 0; v < n; v++ {
		if s.distEpoch[v] == s.epoch {
			s.pdist[v] = s.dist[v]
		} else {
			s.pdist[v] = distInf
		}
	}
	p.haveSPT = true
}

func containsID(list []routing.NodeID, id routing.NodeID) bool {
	for _, n := range list {
		if n == id {
			return true
		}
	}
	return false
}
