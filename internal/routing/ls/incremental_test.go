package ls

import (
	"math/rand"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routetest"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// oracleSPT recomputes distances and first-hop sets for p's current
// database with an independent implementation (plain BFS plus parent-set
// union in (distance, ID) order), sharing no code with recompute or the
// incremental patch beyond containsID.
func oracleSPT(p *Protocol) ([]int32, [][]routing.NodeID) {
	n := len(p.db)
	eff := func(a, b routing.NodeID) bool {
		return int(a) < n && int(b) < n && p.have[a] && p.have[b] &&
			containsID(p.db[a].Neighbors, b) && containsID(p.db[b].Neighbors, a)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = distInf
	}
	self := p.node.ID()
	dist[self] = 0
	order := []routing.NodeID{self}
	for i := 0; i < len(order); i++ {
		u := order[i]
		for _, v := range p.db[u].Neighbors {
			if int(v) < n && dist[v] == distInf && eff(u, v) {
				dist[v] = dist[u] + 1
				order = append(order, v)
			}
		}
	}
	// Insertion sort the visit order by (distance, ID) so parents resolve
	// before children, as both production implementations guarantee.
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && (dist[order[j]] > dist[v] || (dist[order[j]] == dist[v] && order[j] > v)) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
	hops := make([][]routing.NodeID, n)
	for _, v := range order {
		if v == self {
			continue
		}
		seen := make(map[routing.NodeID]bool)
		var set []routing.NodeID
		for _, u := range p.db[v].Neighbors {
			if !eff(v, u) || dist[u] != dist[v]-1 {
				continue
			}
			if u == self {
				if !seen[v] {
					seen[v] = true
					set = append(set, v)
				}
				continue
			}
			for _, h := range hops[u] {
				if !seen[h] {
					seen[h] = true
					set = append(set, h)
				}
			}
		}
		for i := 1; i < len(set); i++ {
			h := set[i]
			j := i - 1
			for j >= 0 && set[j] > h {
				set[j+1] = set[j]
				j--
			}
			set[j+1] = h
		}
		hops[v] = set
	}
	return dist, hops
}

// checkSPT asserts that p's persistent tree matches the oracle for p's
// current database.
func checkSPT(t *testing.T, trial int, p *Protocol) {
	t.Helper()
	dist, hops := oracleSPT(p)
	for v := 0; v < len(p.db); v++ {
		if p.spf.pdist[v] != dist[v] {
			t.Fatalf("trial %d node %d: pdist[%d] = %d, oracle %d",
				trial, p.node.ID(), v, p.spf.pdist[v], dist[v])
		}
		if dist[v] == distInf || routing.NodeID(v) == p.node.ID() {
			continue // rows of unreachable nodes are never consulted
		}
		got := p.spf.firstHops[v]
		if len(got) != len(hops[v]) {
			t.Fatalf("trial %d node %d: firstHops[%d] = %v, oracle %v",
				trial, p.node.ID(), v, got, hops[v])
		}
		for i := range got {
			if got[i] != hops[v][i] {
				t.Fatalf("trial %d node %d: firstHops[%d] = %v, oracle %v",
					trial, p.node.ID(), v, got, hops[v])
			}
		}
	}
}

// TestIncrementalMatchesFullSPF drives 1000 randomized trials — a small
// random graph, then a random history of link failures and restores — and
// after every event checks each router's persistent shortest-path tree
// (maintained by the incremental patch whenever it applies) against the
// independent oracle, plus the end-to-end forwarding tables against the
// reference graph.
func TestIncrementalMatchesFullSPF(t *testing.T) {
	const trials = 1000
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(9)
		g := topology.Random(n, 2+rng.Intn(2), rng.Int63())
		s := sim.New(rng.Int63())
		net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
		protos := make([]*Protocol, n)
		for i := 0; i < n; i++ {
			node := net.Node(routing.NodeID(i))
			protos[i] = New(node, DefaultConfig())
			node.AttachProtocol(protos[i])
		}
		net.Start()
		s.RunUntil(2 * time.Second)
		for _, p := range protos {
			checkSPT(t, trial, p)
		}

		edges := g.Edges()
		if len(edges) == 0 {
			continue
		}
		events := 2 + rng.Intn(5)
		for e := 0; e < events; e++ {
			edge := edges[rng.Intn(len(edges))]
			l := net.Link(edge.A, edge.B)
			if l == nil {
				continue
			}
			if l.Up() {
				net.FailLink(edge.A, edge.B)
			} else {
				net.RestoreLink(edge.A, edge.B)
			}
			s.RunUntil(s.Now() + 2*time.Second)
			for _, p := range protos {
				checkSPT(t, trial, p)
			}
		}
		routetest.AssertShortestPaths(t, net, g)
	}
}

// TestIncrementalFastPathTaken pins that the fast path actually serves
// recomputes in a failure/restore cycle — otherwise the differential test
// would vacuously compare full SPF against the oracle.
func TestIncrementalFastPathTaken(t *testing.T) {
	g := topology.Ring(8)
	s := sim.New(11)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	met := obs.NewMetrics()
	net.Instrument(met, nil)
	for i := 0; i < net.Len(); i++ {
		node := net.Node(routing.NodeID(i))
		node.AttachProtocol(New(node, DefaultConfig()))
	}
	net.Start()
	s.RunUntil(2 * time.Second)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 2*time.Second)
	net.RestoreLink(0, 1)
	s.RunUntil(s.Now() + 2*time.Second)
	if met.Get(obs.ProtoSPFIncremental) == 0 {
		t.Fatal("no recompute was served incrementally")
	}
	if met.Get(obs.ProtoSPFIncremental) >= met.Get(obs.ProtoDecisionRuns) {
		t.Fatal("incremental count should be a strict subset of decision runs (full SPFs still happen)")
	}
	routetest.AssertShortestPaths(t, net, g)
}
