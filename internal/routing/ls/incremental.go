package ls

import (
	"routeconv/internal/obs"
	"routeconv/internal/routing"
)

// Incremental SPF: when an LSA change reduces to at most one effective
// edge (after the two-way check), the persistent shortest-path tree in
// spfScratch (pdist + firstHops) is patched in place instead of rerun
// from scratch — affected-subtree detection for a removed edge, a bounded
// decrease cascade for an inserted one, and first-hop "cone" propagation
// to descendants of any node whose hop set changed.
//
// Equivalence contract: the patch leaves pdist/firstHops exactly as a
// full recompute would, and emits the identical observable effects —
// SetRoute calls in ascending (distance, ID) order followed by ClearRoute
// calls in ascending ID order, both relying on the FIB's idempotence so
// untouched destinations stay silent. Any situation the patch cannot
// handle exactly (first run, ECMP, multi-edge deltas, out-of-range IDs,
// affected regions past maxAffected) falls back to the full SPF, which
// rewrites the persistent tree wholesale; a partially patched tree is
// therefore never observed. TestIncrementalMatchesFullSPF checks the
// equivalence against an independent oracle on randomized histories.

const (
	// maxDeltaScan bounds the quadratic old-vs-new neighbor-list diff; a
	// hub re-originating a huge LSA goes straight to the full SPF.
	maxDeltaScan = 128
	// maxAffected bounds the patched region (orphan set plus hop cone);
	// past it a full recompute is assumed cheaper and certainly simpler.
	maxAffected = 256
)

// incrScratch is the persistent workspace of the incremental patch. Mark
// arrays are epoch-versioned like spfScratch's, so a patch clears nothing.
type incrScratch struct {
	epoch  uint32
	orph   []uint32 // orph[v]==epoch: v is orphaned (distance increasing)
	fixed  []uint32 // fixed[v]==epoch: orphan v re-relaxed to its final distance
	inAff  []uint32 // inAff[v]==epoch: v is on the affected worklist
	cand   []int32  // candidate distance for orphans (valid while orphaned)
	queue  []routing.NodeID
	aff    []routing.NodeID // affected worklist, sorted by (pdist, ID) in the hop phase
	oldRow []routing.NodeID // copy of a first-hop row for change detection
	addBuf []routing.NodeID
	delBuf []routing.NodeID
}

// next starts a patch: bump the epoch, clearing marks on wraparound, and
// make sure the dense arrays cover n nodes.
func (ic *incrScratch) next(n int) {
	if len(ic.orph) < n {
		grow := func(a []uint32) []uint32 {
			g := make([]uint32, n)
			copy(g, a)
			return g
		}
		ic.orph = grow(ic.orph)
		ic.fixed = grow(ic.fixed)
		ic.inAff = grow(ic.inAff)
		g := make([]int32, n)
		copy(g, ic.cand)
		ic.cand = g
	}
	ic.epoch++
	if ic.epoch == 0 {
		for i := range ic.orph {
			ic.orph[i] = 0
			ic.fixed[i] = 0
			ic.inAff[i] = 0
		}
		ic.epoch = 1
	}
	ic.queue = ic.queue[:0]
	ic.aff = ic.aff[:0]
}

// tryIncremental patches the SPT for the LSA change at origin (old is the
// previous LSA; hadOld reports whether one existed) and reports whether it
// fully handled the recompute. false means the caller must run the full
// SPF — either because the fast path does not apply or because a partial
// patch hit a bound; the full run rewrites all persistent state either way.
func (p *Protocol) tryIncremental(origin routing.NodeID, old LSA, hadOld bool) bool {
	if !p.haveSPT || p.cfg.ECMP {
		return false
	}
	n := len(p.db)
	if len(p.spf.pdist) < n || len(p.spf.firstHops) < n {
		return false // database grew past the persisted tree
	}
	var oldN []routing.NodeID
	if hadOld {
		oldN = old.Neighbors
	}
	newN := p.db[origin].Neighbors
	if len(oldN)+len(newN) > maxDeltaScan {
		return false
	}

	// Effective-edge delta: a listed neighbor only forms an edge when it
	// is in range, has an LSA, and lists origin back (the two-way check) —
	// the same conditions the full CSR build applies. The other side's LSA
	// is unchanged by this event, so one check covers before and after.
	ic := &p.incr
	add, del := ic.addBuf[:0], ic.delBuf[:0]
	for _, v := range newN {
		if int(v) >= n {
			continue
		}
		if !containsID(oldN, v) && p.have[v] && containsID(p.db[v].Neighbors, origin) {
			add = append(add, v)
			if len(add) > 1 {
				ic.addBuf = add[:0]
				return false // multi-edge delta: bail before scanning more
			}
		}
	}
	for _, v := range oldN {
		if int(v) >= n {
			continue
		}
		if !containsID(newN, v) && p.have[v] && containsID(p.db[v].Neighbors, origin) {
			del = append(del, v)
			if len(add)+len(del) > 1 {
				ic.addBuf, ic.delBuf = add[:0], del[:0]
				return false
			}
		}
	}
	ic.addBuf, ic.delBuf = add, del

	met := p.node.Metrics()
	switch {
	case len(add)+len(del) == 0:
		// Pure refresh (same adjacency, new sequence number) or a change
		// invisible through the two-way check: the graph is unchanged, so
		// the full SPF would re-derive the identical tree and every
		// SetRoute/ClearRoute it issued would be silently idempotent.
		met.Inc(obs.ProtoDecisionRuns)
		met.Inc(obs.ProtoSPFIncremental)
		return true
	case len(add) == 1 && len(del) == 0:
		if !p.patchInsert(origin, add[0]) {
			return false
		}
	case len(del) == 1 && len(add) == 0:
		if !p.patchRemove(origin, del[0]) {
			return false
		}
	default:
		return false // multi-edge delta: full SPF
	}
	met.Inc(obs.ProtoDecisionRuns)
	met.Inc(obs.ProtoSPFIncremental)
	p.emitAffected()
	return true
}

// effParent reports whether u currently parents v in the SPT: effective
// edge plus distance exactly one less.
func (p *Protocol) effParent(v, u routing.NodeID, n int) bool {
	return int(u) < n && p.have[u] && p.spf.pdist[u] != distInf &&
		p.spf.pdist[u] == p.spf.pdist[v]-1 && containsID(p.db[u].Neighbors, v)
}

// hasNonOrphanParent reports whether v keeps at least one parent outside
// the current orphan set.
func (p *Protocol) hasNonOrphanParent(v routing.NodeID, n int) bool {
	for _, u := range p.db[v].Neighbors {
		if p.effParent(v, u, n) && p.incr.orph[u] != p.incr.epoch {
			return true
		}
	}
	return false
}

// addAffected puts v on the worklist once.
func (p *Protocol) addAffected(v routing.NodeID) {
	ic := &p.incr
	if ic.inAff[v] != ic.epoch {
		ic.inAff[v] = ic.epoch
		ic.aff = append(ic.aff, v)
	}
}

// patchRemove handles the removal of the single effective edge (a, b).
// It updates pdist and the first-hop rows of every affected node and
// leaves the worklist ready for emitAffected; false means a bound was hit
// and the caller must fall back (partially patched state is overwritten
// wholesale by the full SPF).
func (p *Protocol) patchRemove(a, b routing.NodeID) bool {
	s, ic := &p.spf, &p.incr
	n := len(p.db)
	da, db := s.pdist[a], s.pdist[b]
	if da == db {
		// Same level (or both unreachable): the edge was on no shortest
		// path and contributed no first hops.
		ic.next(n)
		return true
	}
	if da > db {
		a, b = b, a
		da, db = db, da
	}
	if da == distInf || db != da+1 {
		return false // inconsistent with an old effective edge; play safe
	}
	ic.next(n)

	if p.hasParentAt(b, db-1, n) {
		// b keeps its distance; only its first-hop set can shrink.
		p.addAffected(b)
		return p.hopPhase()
	}

	// Affected-subtree detection: breadth-first over the orphaned region.
	// Processing is level by level, so when a node at distance d is
	// examined every orphan at distance d is already marked and the
	// "keeps a non-orphan parent" verdict for its children is final.
	ic.orph[b] = ic.epoch
	ic.queue = append(ic.queue, b)
	p.addAffected(b)
	for i := 0; i < len(ic.queue); i++ {
		x := ic.queue[i]
		dx := s.pdist[x]
		for _, u := range p.db[x].Neighbors {
			if int(u) >= n || !p.have[u] || s.pdist[u] != dx+1 || !containsID(p.db[u].Neighbors, x) {
				continue
			}
			if ic.orph[u] == ic.epoch {
				continue
			}
			if p.hasNonOrphanParent(u, n) {
				// u survives at its distance but loses parent x.
				p.addAffected(u)
				continue
			}
			ic.orph[u] = ic.epoch
			ic.queue = append(ic.queue, u)
			p.addAffected(u)
		}
		if len(ic.aff) > maxAffected {
			return false
		}
	}

	// Bounded re-relaxation from the cut frontier: Dijkstra over the
	// orphan set by linear scan (the set is small by the bound above).
	// Candidate seeds come from non-orphan neighbors, whose distances are
	// final.
	orphans := ic.queue
	for _, x := range orphans {
		best := distInf
		for _, u := range p.db[x].Neighbors {
			if int(u) >= n || !p.have[u] || ic.orph[u] == ic.epoch || s.pdist[u] == distInf {
				continue
			}
			if d := s.pdist[u] + 1; d < best && containsID(p.db[u].Neighbors, x) {
				best = d
			}
		}
		ic.cand[x] = best
	}
	for remaining := len(orphans); remaining > 0; {
		pick := routing.NodeID(-1)
		bestC := distInf
		for _, x := range orphans {
			if ic.fixed[x] != ic.epoch && ic.cand[x] < bestC {
				pick, bestC = x, ic.cand[x]
			}
		}
		if pick < 0 {
			// Everything left is cut off entirely.
			for _, x := range orphans {
				if ic.fixed[x] != ic.epoch {
					ic.fixed[x] = ic.epoch
					s.pdist[x] = distInf
				}
			}
			break
		}
		ic.fixed[pick] = ic.epoch
		s.pdist[pick] = bestC
		remaining--
		for _, u := range p.db[pick].Neighbors {
			if int(u) >= n || !p.have[u] || ic.orph[u] != ic.epoch || ic.fixed[u] == ic.epoch {
				continue
			}
			if bestC+1 < ic.cand[u] && containsID(p.db[u].Neighbors, pick) {
				ic.cand[u] = bestC + 1
			}
		}
	}

	// A re-fixed orphan lands at a strictly greater distance, so it can
	// become a brand-new parent of nodes one level past it whose own
	// distance never moved. Their hop sets gain the orphan's hops even
	// when the orphan's own row is unchanged, which the cone cannot see —
	// dirty them explicitly.
	for _, x := range orphans {
		dx := s.pdist[x]
		if dx == distInf {
			continue
		}
		for _, u := range p.db[x].Neighbors {
			if int(u) < n && p.have[u] && s.pdist[u] == dx+1 && containsID(p.db[u].Neighbors, x) {
				p.addAffected(u)
			}
		}
		if len(ic.aff) > maxAffected {
			return false
		}
	}
	return p.hopPhase()
}

// hasParentAt reports whether v has an effective neighbor at exactly
// distance d.
func (p *Protocol) hasParentAt(v routing.NodeID, d int32, n int) bool {
	for _, u := range p.db[v].Neighbors {
		if int(u) < n && p.have[u] && p.spf.pdist[u] == d && containsID(p.db[u].Neighbors, v) {
			return true
		}
	}
	return false
}

// patchInsert handles the insertion of the single effective edge (a, b).
func (p *Protocol) patchInsert(a, b routing.NodeID) bool {
	s, ic := &p.spf, &p.incr
	n := len(p.db)
	da, db := s.pdist[a], s.pdist[b]
	if da == db {
		// Same level or both unreachable: no shortest path uses the edge.
		ic.next(n)
		return true
	}
	if da > db {
		a, b = b, a
		da, db = db, da
	}
	ic.next(n)
	if db == da+1 {
		// b gains a parent; only first-hop sets can change.
		p.addAffected(b)
		return p.hopPhase()
	}

	// Decrease cascade: b drops to da+1 and the improvement spreads
	// breadth-first. A neighbor exactly one past a relaxed node gains it
	// as a parent, so its hop set is dirtied without a distance change.
	s.pdist[b] = da + 1
	p.addAffected(b)
	ic.queue = append(ic.queue, b)
	for i := 0; i < len(ic.queue); i++ {
		x := ic.queue[i]
		dx := s.pdist[x]
		for _, u := range p.db[x].Neighbors {
			if int(u) >= n || !p.have[u] || !containsID(p.db[u].Neighbors, x) {
				continue
			}
			if s.pdist[u] > dx+1 {
				s.pdist[u] = dx + 1
				p.addAffected(u)
				ic.queue = append(ic.queue, u)
				if len(ic.queue) > maxAffected {
					return false
				}
			} else if s.pdist[u] == dx+1 {
				p.addAffected(u)
			}
		}
		if len(ic.aff) > maxAffected {
			return false
		}
	}
	return p.hopPhase()
}

// hopPhase rebuilds first-hop rows for the worklist in ascending
// (distance, ID) order — so parents are final before children consult
// them, the order the full SPF resolves in — and spreads to the children
// of any node whose set actually changed (the cone). Distances are final
// when it runs.
func (p *Protocol) hopPhase() bool {
	s, ic := &p.spf, &p.incr
	n := len(p.db)

	// Insertion sort by (pdist, ID); unreachable (distInf) entries sort
	// last, in ascending ID order — exactly the emission order needed.
	aff := ic.aff
	for i := 1; i < len(aff); i++ {
		v := aff[i]
		j := i - 1
		for j >= 0 && affLess(s, v, aff[j]) {
			aff[j+1] = aff[j]
			j--
		}
		aff[j+1] = v
	}

	self := p.node.ID()
	for i := 0; i < len(aff); i++ {
		v := aff[i]
		if v == self {
			continue
		}
		if !p.rebuildHops(v, n, self) {
			continue
		}
		// The set changed: children must re-derive theirs. Insertions keep
		// the list sorted; a child's key (pdist[v]+1, u) is strictly after
		// position i, so the iteration visits it.
		dv := s.pdist[v]
		if dv == distInf {
			continue
		}
		for _, u := range p.db[v].Neighbors {
			if int(u) >= n || !p.have[u] || s.pdist[u] != dv+1 || !containsID(p.db[u].Neighbors, v) {
				continue
			}
			if ic.inAff[u] == ic.epoch {
				continue
			}
			ic.inAff[u] = ic.epoch
			at := len(aff)
			aff = append(aff, u)
			for at > 0 && affLess(s, u, aff[at-1]) {
				aff[at] = aff[at-1]
				at--
			}
			aff[at] = u
			if len(aff) > maxAffected {
				ic.aff = aff
				return false
			}
		}
	}
	ic.aff = aff
	return true
}

// affLess orders the worklist by (distance, ID).
func affLess(s *spfScratch, a, b routing.NodeID) bool {
	da, db := s.pdist[a], s.pdist[b]
	return da < db || (da == db && a < b)
}

// rebuildHops recomputes the first-hop set for v from its current parents
// — identical union/dedup/sort logic to the full SPF's resolution step —
// and reports whether the set changed.
func (p *Protocol) rebuildHops(v routing.NodeID, n int, self routing.NodeID) bool {
	s, ic := &p.spf, &p.incr
	old := s.firstHops[v]
	ic.oldRow = append(ic.oldRow[:0], old...)
	hops := old[:0]
	if dv := s.pdist[v]; dv != distInf {
		mark := s.nextHopEpoch()
		for _, u := range p.db[v].Neighbors {
			if int(u) >= n || !p.have[u] || s.pdist[u] != dv-1 || !containsID(p.db[u].Neighbors, v) {
				continue
			}
			if u == self {
				if s.hopSeen[v] != mark {
					s.hopSeen[v] = mark
					hops = append(hops, v)
				}
				continue
			}
			for _, h := range s.firstHops[u] {
				if s.hopSeen[h] != mark {
					s.hopSeen[h] = mark
					hops = append(hops, h)
				}
			}
		}
		for i := 1; i < len(hops); i++ {
			h := hops[i]
			j := i - 1
			for j >= 0 && hops[j] > h {
				hops[j+1] = hops[j]
				j--
			}
			hops[j+1] = h
		}
	}
	s.firstHops[v] = hops
	if len(hops) != len(ic.oldRow) {
		return true
	}
	for i := range hops {
		if hops[i] != ic.oldRow[i] {
			return true
		}
	}
	return false
}

// emitAffected installs the patched results: SetRoute for reachable
// destinations in ascending (distance, ID) order, then ClearRoute (and the
// multipath clear the full SPF issues) in ascending ID order for
// unreachable ones — the same order and the same calls the full SPF makes,
// restricted to the affected set; the FIB's idempotence keeps genuinely
// unchanged destinations silent, exactly as they are under the full run.
func (p *Protocol) emitAffected() {
	s, ic := &p.spf, &p.incr
	self := p.node.ID()
	for _, v := range ic.aff {
		if v != self && s.pdist[v] != distInf {
			p.node.SetRoute(v, s.firstHops[v][0])
		}
	}
	for _, v := range ic.aff {
		if v != self && s.pdist[v] == distInf && p.have[v] {
			p.node.ClearRoute(v)
			p.node.SetMultipath(v, nil)
		}
	}
}
