// Package bgp implements the path-vector protocol of the paper's §3: BGP-4
// restricted to shortest-path routing policy with one router per AS.
//
// Each router keeps the latest path heard from every neighbor (Adj-RIB-In),
// so path switch-over is instant when an alternate exists. A received path
// containing the receiver is a routing loop and is treated as a withdrawal,
// which plays the role of split horizon with poisoned reverse. Updates are
// sent only on change, spaced per neighbor by the Minimum Route
// Advertisement Interval (MRAI); withdrawals are exempt from MRAI. The
// paper's "BGP3" variant is this protocol with a 3 s MRAI instead of 30 s,
// and §5.2 notes results would differ with a per-(neighbor, destination)
// MRAI — both are supported.
package bgp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// Message size model, matching the RFC 4271-shaped encoding in wire.go
// plus 40 bytes of TCP/IP framing: a 19-byte BGP header and the two
// section-length fields; 5 bytes per withdrawn route; 14 bytes of
// attribute/NLRI overhead plus 4 bytes per path element for an
// announcement. TestWireSizeModel pins SizeBytes to len(Encode()).
const (
	headerBytes   = TCPIPOverhead + bgpHeaderLen + 4
	withdrawBytes = 5
	announceBytes = 14
	pathElemBytes = 4
)

// Config parameterizes a BGP speaker.
type Config struct {
	// MRAI is the mean minimum interval between successive advertisements
	// to the same neighbor. The paper's BGP uses 30 s; BGP3 uses 3 s.
	MRAI time.Duration
	// MRAIJitter spreads each drawn interval uniformly over MRAI ± jitter.
	MRAIJitter time.Duration
	// PerDestMRAI switches the timer from per-neighbor (vendor default,
	// used in the paper) to per-(neighbor, destination) — the §5.2 ablation.
	PerDestMRAI bool
	// DampWithdrawals subjects withdrawals to MRAI too (an ablation; the
	// paper's BGP sends withdrawals immediately).
	DampWithdrawals bool
	// Damping enables RFC 2439 route flap damping when non-nil — the
	// mechanism whose interaction with convergence the paper's
	// introduction highlights ([4], [15]).
	Damping *DampingConfig
}

// DefaultConfig returns the paper's standard BGP parameters: a 30 s
// per-neighbor MRAI.
func DefaultConfig() Config {
	return Config{MRAI: 30 * time.Second, MRAIJitter: 7500 * time.Millisecond}
}

// BGP3Config returns the paper's specially parameterized BGP3: a 3 s MRAI,
// making its damping delay comparable to RIP/DBF's triggered-update timer.
func BGP3Config() Config {
	return Config{MRAI: 3 * time.Second, MRAIJitter: 750 * time.Millisecond}
}

// Update is a BGP update message. Because every destination originates its
// own prefix, no two destinations share a path, so an update announces at
// most one destination (as §5.2 observes) while withdrawals batch freely.
type Update struct {
	// Withdrawn lists destinations the sender can no longer reach.
	Withdrawn []routing.NodeID
	// Dst is the announced destination; valid only when Path is non-nil.
	Dst routing.NodeID
	// Path is the sender's path to Dst, starting with the sender itself
	// and ending with Dst.
	Path []routing.NodeID
}

// SizeBytes implements netsim.Message.
func (u *Update) SizeBytes() int {
	size := headerBytes + withdrawBytes*len(u.Withdrawn)
	if u.Path != nil {
		size += announceBytes + pathElemBytes*len(u.Path)
	}
	return size
}

// Protocol is a BGP speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  Config
	// adjIn holds, per neighbor, the latest valid path heard per
	// destination. Paths that contain this node are never stored (loop =
	// withdrawal).
	adjIn map[routing.NodeID]map[routing.NodeID][]routing.NodeID
	// best holds the selected path per destination, starting with this
	// node.
	best map[routing.NodeID][]routing.NodeID
	// ribOut holds, per neighbor, the path last advertised (nil after a
	// withdrawal).
	ribOut map[routing.NodeID]map[routing.NodeID][]routing.NodeID
	// pending holds, per neighbor, destinations whose state changed since
	// the last flush.
	pending map[routing.NodeID]map[routing.NodeID]bool
	// deadline holds, in per-destination MRAI mode, the earliest time each
	// (neighbor, destination) may next be advertised.
	deadline map[routing.NodeID]map[routing.NodeID]time.Duration
	mrai     map[routing.NodeID]*sim.Timer
	up       map[routing.NodeID]bool
	// dirty accumulates destinations changed while processing one event.
	dirty map[routing.NodeID]bool
	// damper is non-nil when route flap damping is enabled.
	damper *damper
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a BGP instance for the node.
func New(node *netsim.Node, cfg Config) *Protocol {
	p := &Protocol{
		node:     node,
		cfg:      cfg,
		adjIn:    make(map[routing.NodeID]map[routing.NodeID][]routing.NodeID),
		best:     make(map[routing.NodeID][]routing.NodeID),
		ribOut:   make(map[routing.NodeID]map[routing.NodeID][]routing.NodeID),
		pending:  make(map[routing.NodeID]map[routing.NodeID]bool),
		deadline: make(map[routing.NodeID]map[routing.NodeID]time.Duration),
		mrai:     make(map[routing.NodeID]*sim.Timer),
		up:       make(map[routing.NodeID]bool),
		dirty:    make(map[routing.NodeID]bool),
	}
	if cfg.Damping != nil {
		p.damper = newDamper(*cfg.Damping, node.Sim(), func(_, dst routing.NodeID) {
			p.recompute(dst)
			p.flushAll()
		})
	}
	return p
}

// Factory returns a constructor suitable for attaching BGP to every node.
func Factory(cfg Config) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// BestPath returns the selected path to dst (starting with this node), or
// nil when the destination is unreachable. Exposed for tests and tools.
func (p *Protocol) BestPath(dst routing.NodeID) []routing.NodeID { return p.best[dst] }

// DebugState renders the speaker's complete state for one destination —
// Adj-RIB-In paths, Adj-RIB-Out, pending flags, and MRAI timers — for
// tests and troubleshooting tools.
func (p *Protocol) DebugState(dst routing.NodeID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %d dst %d best=%v\n", p.node.ID(), dst, p.best[dst])
	for _, n := range p.node.Neighbors() {
		fmt.Fprintf(&sb, "  nbr %d up=%v in=%v out=%v pending=%v mrai=%v",
			n, p.up[n], p.adjIn[n][dst], p.ribOut[n][dst], p.pending[n][dst], p.mrai[n].Pending())
		if p.damper != nil && p.damper.Suppressed(n, dst) {
			sb.WriteString(" SUPPRESSED")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	self := p.node.ID()
	p.best[self] = []routing.NodeID{self}
	for _, n := range p.node.Neighbors() {
		p.sessionUp(n)
		p.pending[n][self] = true
	}
	p.flushAll()
}

// sessionUp initializes per-neighbor state.
func (p *Protocol) sessionUp(n routing.NodeID) {
	p.up[n] = true
	p.adjIn[n] = make(map[routing.NodeID][]routing.NodeID)
	p.ribOut[n] = make(map[routing.NodeID][]routing.NodeID)
	p.pending[n] = make(map[routing.NodeID]bool)
	p.deadline[n] = make(map[routing.NodeID]time.Duration)
	if p.mrai[n] == nil {
		n := n
		p.mrai[n] = sim.NewTimer(p.node.Sim(), func() { p.flush(n) })
	}
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*Update)
	if !ok {
		return
	}
	in := p.adjIn[from]
	if in == nil {
		return // no session (e.g. message raced a link-down detection)
	}
	for _, dst := range u.Withdrawn {
		if _, had := in[dst]; had {
			delete(in, dst)
			if p.damper != nil {
				p.damper.OnWithdraw(from, dst)
			}
			p.recompute(dst)
		}
	}
	if u.Path != nil {
		_, had := in[u.Dst]
		if contains(u.Path, p.node.ID()) {
			// Loop detected: treat as withdrawal (§3).
			if had {
				delete(in, u.Dst)
				if p.damper != nil {
					p.damper.OnWithdraw(from, u.Dst)
				}
				p.recompute(u.Dst)
			}
		} else {
			in[u.Dst] = u.Path
			if had && p.damper != nil {
				p.damper.OnReannounce(from, u.Dst)
			}
			p.recompute(u.Dst)
		}
	}
	p.flushAll()
}

// LinkDown implements netsim.Protocol: the session resets, discarding
// everything heard from and advertised to the neighbor.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	lost := p.adjIn[neighbor]
	p.adjIn[neighbor] = nil
	p.ribOut[neighbor] = nil
	p.pending[neighbor] = nil
	p.deadline[neighbor] = nil
	if t := p.mrai[neighbor]; t != nil {
		t.Stop()
	}
	if p.damper != nil {
		p.damper.SessionReset(neighbor)
	}
	for _, dst := range sortedKeys(lost) {
		p.recompute(dst)
	}
	p.flushAll()
}

// LinkUp implements netsim.Protocol: a fresh session; the full table is
// advertised to the neighbor.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.sessionUp(neighbor)
	for dst, path := range p.best {
		if path != nil {
			p.pending[neighbor][dst] = true
		}
	}
	p.flushAll()
}

// recompute reruns best-path selection for dst: shortest valid path over
// all neighbors, ties to the lowest neighbor ID.
func (p *Protocol) recompute(dst routing.NodeID) {
	if dst == p.node.ID() {
		return
	}
	var chosen []routing.NodeID
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		path, ok := p.adjIn[n][dst]
		if !ok {
			continue
		}
		if p.damper != nil && p.damper.Suppressed(n, dst) {
			continue
		}
		if chosen == nil || len(path) < len(chosen) {
			chosen = path
		}
	}
	var newBest []routing.NodeID
	if chosen != nil {
		newBest = make([]routing.NodeID, 0, len(chosen)+1)
		newBest = append(newBest, p.node.ID())
		newBest = append(newBest, chosen...)
	}
	old := p.best[dst]
	if pathEqual(old, newBest) {
		return
	}
	if newBest == nil {
		delete(p.best, dst)
		p.node.ClearRoute(dst)
	} else {
		p.best[dst] = newBest
		p.node.SetRoute(dst, newBest[1])
	}
	p.dirty[dst] = true
}

// flushAll propagates all destinations dirtied by the current event to
// every up neighbor, then attempts a flush per neighbor.
func (p *Protocol) flushAll() {
	if len(p.dirty) > 0 {
		for _, dst := range sortedSet(p.dirty) {
			for _, n := range p.node.Neighbors() {
				if p.up[n] {
					p.pending[n][dst] = true
				}
			}
		}
		p.dirty = make(map[routing.NodeID]bool)
	}
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.flush(n)
		}
	}
}

// flush sends what MRAI currently permits to one neighbor: withdrawals
// immediately (unless damped), announcements when the per-neighbor timer is
// idle (or, in per-destination mode, when each destination's deadline has
// passed).
func (p *Protocol) flush(n routing.NodeID) {
	pend := p.pending[n]
	if len(pend) == 0 {
		return
	}
	now := p.node.Sim().Now()
	out := p.ribOut[n]

	var withdrawals, announcements []routing.NodeID
	for _, dst := range sortedSet(pend) {
		best := p.best[dst]
		switch {
		case best == nil && out[dst] == nil:
			delete(pend, dst) // nothing ever advertised; nothing to say
		case best == nil:
			withdrawals = append(withdrawals, dst)
		case pathEqual(out[dst], best):
			delete(pend, dst) // already current
		default:
			announcements = append(announcements, dst)
		}
	}

	if !p.cfg.DampWithdrawals && len(withdrawals) > 0 {
		p.node.SendControl(n, &Update{Withdrawn: withdrawals})
		for _, dst := range withdrawals {
			delete(out, dst)
			delete(pend, dst)
		}
	} else if p.cfg.DampWithdrawals {
		// Withdrawals queue behind MRAI like announcements.
		announcements = append(announcements, withdrawals...)
		sort.Slice(announcements, func(i, j int) bool { return announcements[i] < announcements[j] })
	}

	if p.cfg.PerDestMRAI {
		p.flushPerDest(n, announcements, now)
		return
	}
	if p.mrai[n].Pending() || len(announcements) == 0 {
		return
	}
	for _, dst := range announcements {
		p.advertise(n, dst)
	}
	p.mrai[n].Reset(p.mraiInterval())
}

// flushPerDest sends each announcement whose (neighbor, destination)
// deadline has passed and re-arms the neighbor timer for the earliest
// remaining one.
func (p *Protocol) flushPerDest(n routing.NodeID, announcements []routing.NodeID, now time.Duration) {
	var earliest time.Duration = -1
	for _, dst := range announcements {
		dl := p.deadline[n][dst]
		if now >= dl {
			p.advertise(n, dst)
			p.deadline[n][dst] = now + p.mraiInterval()
			continue
		}
		if earliest < 0 || dl < earliest {
			earliest = dl
		}
	}
	if earliest >= 0 {
		t := p.mrai[n]
		if !t.Pending() || t.Deadline() > earliest {
			t.Reset(earliest - now)
		}
	}
}

// advertise sends the current state of dst to n and records it in ribOut.
func (p *Protocol) advertise(n, dst routing.NodeID) {
	best := p.best[dst]
	out := p.ribOut[n]
	if best == nil {
		p.node.SendControl(n, &Update{Withdrawn: []routing.NodeID{dst}})
		delete(out, dst)
	} else {
		p.node.SendControl(n, &Update{Dst: dst, Path: best})
		out[dst] = best
	}
	delete(p.pending[n], dst)
}

// mraiInterval draws one jittered MRAI value.
func (p *Protocol) mraiInterval() time.Duration {
	lo := p.cfg.MRAI - p.cfg.MRAIJitter
	if lo < 0 {
		lo = 0
	}
	return p.node.Sim().Jitter(lo, p.cfg.MRAI+p.cfg.MRAIJitter)
}

func contains(path []routing.NodeID, id routing.NodeID) bool {
	for _, n := range path {
		if n == id {
			return true
		}
	}
	return false
}

func pathEqual(a, b []routing.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[routing.NodeID][]routing.NodeID) []routing.NodeID {
	out := make([]routing.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSet(m map[routing.NodeID]bool) []routing.NodeID {
	out := make([]routing.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
