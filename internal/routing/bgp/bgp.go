// Package bgp implements the path-vector protocol of the paper's §3: BGP-4
// restricted to shortest-path routing policy with one router per AS.
//
// Each router keeps the latest path heard from every neighbor (Adj-RIB-In),
// so path switch-over is instant when an alternate exists. A received path
// containing the receiver is a routing loop and is treated as a withdrawal,
// which plays the role of split horizon with poisoned reverse. Updates are
// sent only on change, spaced per neighbor by the Minimum Route
// Advertisement Interval (MRAI); withdrawals are exempt from MRAI. The
// paper's "BGP3" variant is this protocol with a 3 s MRAI instead of 30 s,
// and §5.2 notes results would differ with a per-(neighbor, destination)
// MRAI — both are supported.
//
// Performance: all per-neighbor RIBs are dense slices outer-indexed by
// neighbor ID and inner-indexed by contiguous destination ID, and every
// stored path is a 32-bit ID into a per-speaker intern table (intern.go).
// Ascending-index iteration over the dense tables produces exactly the
// order the previous map+sort implementation produced, so trial results
// are bit-for-bit identical; see DESIGN.md's Performance section.
package bgp

import (
	"fmt"
	"strings"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// Message size model, matching the RFC 4271-shaped encoding in wire.go
// plus 40 bytes of TCP/IP framing: a 19-byte BGP header and the two
// section-length fields; 5 bytes per withdrawn route; 14 bytes of
// attribute/NLRI overhead plus 4 bytes per path element for an
// announcement. TestWireSizeModel pins SizeBytes to len(Encode()).
const (
	headerBytes   = TCPIPOverhead + bgpHeaderLen + 4
	withdrawBytes = 5
	announceBytes = 14
	pathElemBytes = 4
)

// Config parameterizes a BGP speaker.
type Config struct {
	// MRAI is the mean minimum interval between successive advertisements
	// to the same neighbor. The paper's BGP uses 30 s; BGP3 uses 3 s.
	MRAI time.Duration
	// MRAIJitter spreads each drawn interval uniformly over MRAI ± jitter.
	MRAIJitter time.Duration
	// PerDestMRAI switches the timer from per-neighbor (vendor default,
	// used in the paper) to per-(neighbor, destination) — the §5.2 ablation.
	PerDestMRAI bool
	// DampWithdrawals subjects withdrawals to MRAI too (an ablation; the
	// paper's BGP sends withdrawals immediately).
	DampWithdrawals bool
	// Damping enables RFC 2439 route flap damping when non-nil — the
	// mechanism whose interaction with convergence the paper's
	// introduction highlights ([4], [15]).
	Damping *DampingConfig
}

// DefaultConfig returns the paper's standard BGP parameters: a 30 s
// per-neighbor MRAI.
func DefaultConfig() Config {
	return Config{MRAI: 30 * time.Second, MRAIJitter: 7500 * time.Millisecond}
}

// BGP3Config returns the paper's specially parameterized BGP3: a 3 s MRAI,
// making its damping delay comparable to RIP/DBF's triggered-update timer.
func BGP3Config() Config {
	return Config{MRAI: 3 * time.Second, MRAIJitter: 750 * time.Millisecond}
}

// Update is a BGP update message. Because every destination originates its
// own prefix, no two destinations share a path, so an update announces at
// most one destination (as §5.2 observes) while withdrawals batch freely.
//
// An Update is immutable once built. Updates sent by a Protocol are drawn
// from a per-speaker free list and recycled by the network after delivery
// (netsim.PooledMessage), so receivers must copy anything they keep;
// hand-built updates (tests, DecodeUpdate) are not pooled and Release is a
// no-op for them.
type Update struct {
	// Withdrawn lists destinations the sender can no longer reach.
	Withdrawn []routing.NodeID
	// Dst is the announced destination; valid only when Path is non-nil.
	Dst routing.NodeID
	// Path is the sender's path to Dst, starting with the sender itself
	// and ending with Dst. For pooled updates it aliases the sender's
	// intern table and must not be modified.
	Path []routing.NodeID
	// size memoizes SizeBytes (0 = not yet computed; a real size is never
	// 0 because headerBytes > 0).
	size int32
	// pool is the free list the update returns to on Release; nil for
	// hand-built updates.
	pool *updatePool
}

// SizeBytes implements netsim.Message. The update is immutable after
// construction, so the size is computed once and memoized.
func (u *Update) SizeBytes() int {
	if u.size == 0 {
		s := headerBytes + withdrawBytes*len(u.Withdrawn)
		if u.Path != nil {
			s += announceBytes + pathElemBytes*len(u.Path)
		}
		u.size = int32(s)
	}
	return int(u.size)
}

// updatePool recycles Update messages through a free list: the network
// releases each pooled update once its flight ends, so steady-state update
// traffic allocates neither messages nor withdrawal batches.
type updatePool struct{ free []*Update }

// get returns a zeroed update, reusing a released one when available.
func (up *updatePool) get() *Update {
	if n := len(up.free); n > 0 {
		u := up.free[n-1]
		up.free = up.free[:n-1]
		return u
	}
	return &Update{pool: up}
}

// Release implements netsim.PooledMessage: the update (and the capacity of
// its withdrawal batch) returns to its owner's free list. Hand-built
// updates are not pooled; for them Release does nothing.
func (u *Update) Release() {
	if u.pool == nil {
		return
	}
	u.Withdrawn = u.Withdrawn[:0]
	u.Dst = 0
	u.Path = nil
	u.size = 0
	u.pool.free = append(u.pool.free, u)
}

// Protocol is a BGP speaker bound to one node.
//
// All per-neighbor state lives in dense slices outer-indexed by neighbor
// ID (rows exist only for live sessions) and inner-indexed by destination
// ID; destinations are contiguous from 0, so ascending-index iteration
// visits them in exactly the sorted order the previous map-based
// implementation produced.
type Protocol struct {
	node *netsim.Node
	cfg  Config
	// intern hash-conses every path this speaker stores or originates.
	intern *internTable
	// adjIn holds, per neighbor, the latest valid path heard per
	// destination (noPath = none). Paths that contain this node are never
	// stored (loop = withdrawal). A nil row means no session.
	adjIn [][]pathID
	// best holds the selected path per destination, starting with this
	// node (noPath = unreachable).
	best []pathID
	// ribOut holds, per neighbor, the path last advertised (noPath after a
	// withdrawal).
	ribOut [][]pathID
	// pending flags, per neighbor, destinations whose state changed since
	// the last flush; pendingCount tracks how many flags are set per
	// neighbor so an idle flush is O(1). pendList mirrors the flagged set
	// as an explicit list so a flush touches only pending destinations:
	// outside flush flags are only ever set (setPending appends on each
	// false→true flip, so the list holds no duplicates), and every flush
	// ends by rebuilding the list from what stayed flagged, restoring
	// sorted order.
	pending      [][]bool
	pendingCount []int
	pendList     [][]routing.NodeID
	// deadline holds, in per-destination MRAI mode, the earliest time each
	// (neighbor, destination) may next be advertised.
	deadline [][]time.Duration
	mrai     []*sim.Timer
	up       []bool
	// dirty flags destinations changed while processing one event;
	// dirtyList holds the same set explicitly so propagating them to the
	// neighbors' pending sets walks only what changed.
	dirty     []bool
	dirtyList []routing.NodeID
	// wdScratch/annScratch are flush's reusable classification buffers.
	wdScratch, annScratch []routing.NodeID
	// pool recycles outgoing Update messages.
	pool updatePool
	// damper is non-nil when route flap damping is enabled.
	damper *damper
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a BGP instance for the node.
func New(node *netsim.Node, cfg Config) *Protocol {
	p := &Protocol{
		node:   node,
		cfg:    cfg,
		intern: newInternTable(),
	}
	if cfg.Damping != nil {
		p.damper = newDamper(*cfg.Damping, node.Sim(), func(_, dst routing.NodeID) {
			p.recompute(dst)
			p.flushAll()
		})
		p.damper.node = node
	}
	return p
}

// Factory returns a constructor suitable for attaching BGP to every node.
func Factory(cfg Config) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// newPathRow returns a row of n empty path slots.
func newPathRow(n int) []pathID {
	row := make([]pathID, n)
	for i := range row {
		row[i] = noPath
	}
	return row
}

// ids returns the current destination-universe size.
func (p *Protocol) ids() int { return len(p.best) }

// ensureDst grows every dense table so dst is a valid index. The universe
// is sized to the network at Start, so this only triggers for unit tests
// that inject out-of-range destinations.
func (p *Protocol) ensureDst(dst routing.NodeID) {
	if int(dst) < p.ids() {
		return
	}
	n := int(dst) + 1
	grow := func(row []pathID) []pathID {
		grown := newPathRow(n)
		copy(grown, row)
		return grown
	}
	p.best = grow(p.best)
	grownDirty := make([]bool, n)
	copy(grownDirty, p.dirty)
	p.dirty = grownDirty
	for i := range p.adjIn {
		if p.adjIn[i] != nil {
			p.adjIn[i] = grow(p.adjIn[i])
		}
		if p.ribOut[i] != nil {
			p.ribOut[i] = grow(p.ribOut[i])
		}
		if p.pending[i] != nil {
			grown := make([]bool, n)
			copy(grown, p.pending[i])
			p.pending[i] = grown
		}
		if p.deadline[i] != nil {
			grown := make([]time.Duration, n)
			copy(grown, p.deadline[i])
			p.deadline[i] = grown
		}
	}
}

// bestID returns the selected path ID for dst (noPath when unreachable or
// unknown).
func (p *Protocol) bestID(dst routing.NodeID) pathID {
	if dst >= 0 && int(dst) < len(p.best) {
		return p.best[dst]
	}
	return noPath
}

// adjInGet returns the Adj-RIB-In entry for (neighbor, dst), or noPath.
func (p *Protocol) adjInGet(n, dst routing.NodeID) pathID {
	if int(n) >= len(p.adjIn) {
		return noPath
	}
	row := p.adjIn[n]
	if row == nil || dst < 0 || int(dst) >= len(row) {
		return noPath
	}
	return row[dst]
}

// upTo reports whether the session to neighbor n is up.
func (p *Protocol) upTo(n routing.NodeID) bool {
	return int(n) < len(p.up) && p.up[n]
}

// BestPath returns the selected path to dst (starting with this node), or
// nil when the destination is unreachable. The slice aliases the intern
// table and must not be modified. Exposed for tests and tools.
func (p *Protocol) BestPath(dst routing.NodeID) []routing.NodeID {
	return p.intern.path(p.bestID(dst))
}

// DebugState renders the speaker's complete state for one destination —
// Adj-RIB-In paths, Adj-RIB-Out, pending flags, and MRAI timers — for
// tests and troubleshooting tools.
func (p *Protocol) DebugState(dst routing.NodeID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "node %d dst %d best=%v\n", p.node.ID(), dst, p.BestPath(dst))
	for _, n := range p.node.Neighbors() {
		var out pathID = noPath
		if int(n) < len(p.ribOut) && p.ribOut[n] != nil && int(dst) < len(p.ribOut[n]) {
			out = p.ribOut[n][dst]
		}
		pend := int(n) < len(p.pending) && p.pending[n] != nil && int(dst) < len(p.pending[n]) && p.pending[n][dst]
		fmt.Fprintf(&sb, "  nbr %d up=%v in=%v out=%v pending=%v mrai=%v",
			n, p.upTo(n), p.intern.path(p.adjInGet(n, dst)), p.intern.path(out), pend, p.mrai[n].Pending())
		if p.damper != nil && p.damper.Suppressed(n, dst) {
			sb.WriteString(" SUPPRESSED")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	self := p.node.ID()
	n := p.node.NetworkSize()
	if int(self) >= n {
		n = int(self) + 1
	}
	p.best = newPathRow(n)
	p.dirty = make([]bool, n)
	p.adjIn = make([][]pathID, n)
	p.ribOut = make([][]pathID, n)
	p.pending = make([][]bool, n)
	p.pendingCount = make([]int, n)
	p.pendList = make([][]routing.NodeID, n)
	p.deadline = make([][]time.Duration, n)
	p.mrai = make([]*sim.Timer, n)
	p.up = make([]bool, n)
	p.best[self] = p.intern.intern([]routing.NodeID{self})
	for _, nb := range p.node.Neighbors() {
		p.sessionUp(nb)
		p.setPending(nb, self)
	}
	p.flushAll()
}

// sessionUp initializes per-neighbor state.
func (p *Protocol) sessionUp(n routing.NodeID) {
	size := p.ids()
	p.up[n] = true
	p.adjIn[n] = newPathRow(size)
	p.ribOut[n] = newPathRow(size)
	p.pending[n] = make([]bool, size)
	p.pendingCount[n] = 0
	p.pendList[n] = p.pendList[n][:0]
	if p.cfg.PerDestMRAI {
		p.deadline[n] = make([]time.Duration, size)
	}
	if p.mrai[n] == nil {
		n := n
		p.mrai[n] = sim.NewTimer(p.node.Sim(), func() { p.flush(n) })
	}
}

// setPending flags dst toward neighbor n.
func (p *Protocol) setPending(n, dst routing.NodeID) {
	if !p.pending[n][dst] {
		p.pending[n][dst] = true
		p.pendingCount[n]++
		p.pendList[n] = append(p.pendList[n], dst)
	}
}

// clearPending unflags dst toward neighbor n.
func (p *Protocol) clearPending(n, dst routing.NodeID) {
	if p.pending[n][dst] {
		p.pending[n][dst] = false
		p.pendingCount[n]--
	}
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*Update)
	if !ok {
		return
	}
	p.node.Metrics().Inc(obs.ProtoUpdatesReceived)
	if int(from) >= len(p.adjIn) || p.adjIn[from] == nil {
		return // no session (e.g. message raced a link-down detection)
	}
	for _, dst := range u.Withdrawn {
		if p.adjInGet(from, dst) != noPath {
			p.adjIn[from][dst] = noPath
			if p.damper != nil {
				p.damper.OnWithdraw(from, dst)
			}
			p.recompute(dst)
		}
	}
	if u.Path != nil {
		had := p.adjInGet(from, u.Dst) != noPath
		if contains(u.Path, p.node.ID()) {
			// Loop detected: treat as withdrawal (§3).
			if had {
				p.adjIn[from][u.Dst] = noPath
				if p.damper != nil {
					p.damper.OnWithdraw(from, u.Dst)
				}
				p.recompute(u.Dst)
			}
		} else {
			p.ensureDst(u.Dst)
			p.adjIn[from][u.Dst] = p.intern.intern(u.Path)
			if had && p.damper != nil {
				p.damper.OnReannounce(from, u.Dst)
			}
			p.recompute(u.Dst)
		}
	}
	p.flushAll()
}

// LinkDown implements netsim.Protocol: the session resets, discarding
// everything heard from and advertised to the neighbor.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	lost := p.adjIn[neighbor]
	p.adjIn[neighbor] = nil
	p.ribOut[neighbor] = nil
	p.pending[neighbor] = nil
	p.pendingCount[neighbor] = 0
	p.pendList[neighbor] = nil
	p.deadline[neighbor] = nil
	if t := p.mrai[neighbor]; t != nil {
		t.Stop()
	}
	if p.damper != nil {
		p.damper.SessionReset(neighbor)
	}
	for dst, id := range lost {
		if id != noPath {
			p.recompute(routing.NodeID(dst))
		}
	}
	p.flushAll()
}

// LinkUp implements netsim.Protocol: a fresh session; the full table is
// advertised to the neighbor.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.sessionUp(neighbor)
	for dst, id := range p.best {
		if id != noPath {
			p.setPending(neighbor, routing.NodeID(dst))
		}
	}
	p.flushAll()
}

// recompute reruns best-path selection for dst: shortest valid path over
// all neighbors, ties to the lowest neighbor ID. Paths compare by intern
// ID, so "unchanged" is a single integer comparison.
func (p *Protocol) recompute(dst routing.NodeID) {
	if dst == p.node.ID() {
		return
	}
	p.node.Metrics().Inc(obs.ProtoDecisionRuns)
	chosen, chosenLen := noPath, 0
	for _, n := range p.node.Neighbors() {
		if !p.upTo(n) {
			continue
		}
		id := p.adjInGet(n, dst)
		if id == noPath {
			continue
		}
		if p.damper != nil && p.damper.Suppressed(n, dst) {
			continue
		}
		if l := p.intern.pathLen(id); chosen == noPath || l < chosenLen {
			chosen, chosenLen = id, l
		}
	}
	newBest := noPath
	if chosen != noPath {
		newBest = p.intern.prepend(p.node.ID(), chosen)
	}
	if p.bestID(dst) == newBest {
		return
	}
	p.ensureDst(dst)
	p.best[dst] = newBest
	if newBest == noPath {
		p.node.ClearRoute(dst)
	} else {
		p.node.SetRoute(dst, p.intern.path(newBest)[1])
	}
	if !p.dirty[dst] {
		p.dirty[dst] = true
		p.dirtyList = append(p.dirtyList, dst)
	}
}

// flushAll propagates all destinations dirtied by the current event to
// every up neighbor, then attempts a flush per neighbor. Only the dirty
// set is walked; its order is irrelevant because setPending just raises
// flags — everything order-sensitive (the wire) happens in flush, which
// visits pending destinations in ascending order.
func (p *Protocol) flushAll() {
	if len(p.dirtyList) > 0 {
		for _, dst := range p.dirtyList {
			p.dirty[dst] = false
			for _, n := range p.node.Neighbors() {
				if p.upTo(n) {
					p.setPending(n, dst)
				}
			}
		}
		p.dirtyList = p.dirtyList[:0]
	}
	for _, n := range p.node.Neighbors() {
		if p.upTo(n) {
			p.flush(n)
		}
	}
}

// flush sends what MRAI currently permits to one neighbor: withdrawals
// immediately (unless damped), announcements when the per-neighbor timer is
// idle (or, in per-destination mode, when each destination's deadline has
// passed).
func (p *Protocol) flush(n routing.NodeID) {
	if p.pendingCount[n] == 0 {
		return
	}
	now := p.node.Sim().Now()
	pend := p.pending[n]
	out := p.ribOut[n]

	// Classify pending destinations in ascending order. In damped-
	// withdrawal mode withdrawals queue behind MRAI like announcements, so
	// they classify straight into the announcement list (which keeps it
	// sorted — the same order the old append+sort produced).
	//
	// The walk uses the explicit pending list when it is small: the list is
	// a sorted run from the last flush plus the flips appended since, so the
	// insertion sort is nearly linear, and the visit order — ascending over
	// exactly the flagged destinations — is identical to the dense scan's.
	// A list within a factor of the table keeps the dense scan, bounding
	// the sort at the dense walk's own cost.
	withdrawals := p.wdScratch[:0]
	announcements := p.annScratch[:0]
	if pl := p.pendList[n]; len(pl)*4 <= p.ids() {
		for i := 1; i < len(pl); i++ {
			d := pl[i]
			j := i - 1
			for j >= 0 && pl[j] > d {
				pl[j+1] = pl[j]
				j--
			}
			pl[j+1] = d
		}
		for _, d := range pl {
			if pend[d] {
				withdrawals, announcements = p.classifyDst(n, d, out, withdrawals, announcements)
			}
		}
	} else {
		for dst := range pend {
			if pend[dst] {
				withdrawals, announcements = p.classifyDst(n, routing.NodeID(dst), out, withdrawals, announcements)
			}
		}
	}
	p.wdScratch, p.annScratch = withdrawals, announcements

	if len(withdrawals) > 0 {
		u := p.pool.get()
		u.Withdrawn = append(u.Withdrawn, withdrawals...)
		p.node.Metrics().Add(obs.ProtoWithdrawalsSent, uint64(len(withdrawals)))
		if tl := p.node.Timeline(); tl != nil {
			for _, dst := range withdrawals {
				tl.Withdrawal(now, int(p.node.ID()), int(n), int(dst))
			}
		}
		p.node.SendControl(n, u)
		for _, dst := range withdrawals {
			out[dst] = noPath
			p.clearPending(n, dst)
		}
	}

	if p.cfg.PerDestMRAI {
		p.flushPerDest(n, announcements, now)
	} else if !p.mrai[n].Pending() && len(announcements) > 0 {
		for _, dst := range announcements {
			p.advertise(n, dst)
		}
		p.mrai[n].Reset(p.mraiInterval())
	}

	// Rebuild the pending list. After classification, everything still
	// flagged is an announcement MRAI held back, so filtering the (sorted)
	// announcement list restores the invariant: pendList = flagged set,
	// ascending, duplicate-free.
	pl := p.pendList[n][:0]
	for _, d := range announcements {
		if pend[d] {
			pl = append(pl, d)
		}
	}
	p.pendList[n] = pl
}

// classifyDst routes one pending destination into the withdrawal or
// announcement list, or clears its flag when there is nothing to say.
func (p *Protocol) classifyDst(n, d routing.NodeID, out []pathID, withdrawals, announcements []routing.NodeID) ([]routing.NodeID, []routing.NodeID) {
	best := p.best[d]
	switch {
	case best == noPath && out[d] == noPath:
		p.clearPending(n, d) // nothing ever advertised; nothing to say
	case best == noPath:
		if p.cfg.DampWithdrawals {
			announcements = append(announcements, d)
		} else {
			withdrawals = append(withdrawals, d)
		}
	case out[d] == best:
		p.clearPending(n, d) // already current
	default:
		announcements = append(announcements, d)
	}
	return withdrawals, announcements
}

// flushPerDest sends each announcement whose (neighbor, destination)
// deadline has passed and re-arms the neighbor timer for the earliest
// remaining one.
func (p *Protocol) flushPerDest(n routing.NodeID, announcements []routing.NodeID, now time.Duration) {
	dl := p.deadline[n]
	var earliest time.Duration = -1
	for _, dst := range announcements {
		d := dl[dst]
		if now >= d {
			p.advertise(n, dst)
			dl[dst] = now + p.mraiInterval()
			continue
		}
		if earliest < 0 || d < earliest {
			earliest = d
		}
	}
	if earliest >= 0 {
		t := p.mrai[n]
		if !t.Pending() || t.Deadline() > earliest {
			t.Reset(earliest - now)
		}
	}
}

// advertise sends the current state of dst to n and records it in ribOut.
func (p *Protocol) advertise(n, dst routing.NodeID) {
	best := p.bestID(dst)
	u := p.pool.get()
	if best == noPath {
		u.Withdrawn = append(u.Withdrawn, dst)
		p.ribOut[n][dst] = noPath
		p.node.Metrics().Inc(obs.ProtoWithdrawalsSent)
		p.node.Timeline().Withdrawal(p.node.Sim().Now(), int(p.node.ID()), int(n), int(dst))
	} else {
		u.Dst = dst
		u.Path = p.intern.path(best)
		p.ribOut[n][dst] = best
		p.node.Metrics().Inc(obs.ProtoUpdatesSent)
	}
	p.node.SendControl(n, u)
	p.clearPending(n, dst)
}

// mraiInterval draws one jittered MRAI value.
func (p *Protocol) mraiInterval() time.Duration {
	lo := p.cfg.MRAI - p.cfg.MRAIJitter
	if lo < 0 {
		lo = 0
	}
	return p.node.Jitter(lo, p.cfg.MRAI+p.cfg.MRAIJitter)
}

func contains(path []routing.NodeID, id routing.NodeID) bool {
	for _, n := range path {
		if n == id {
			return true
		}
	}
	return false
}
