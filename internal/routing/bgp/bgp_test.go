package bgp

import (
	"strings"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routetest"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func build(t *testing.T, seed int64, g *topology.Graph, cfg Config) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	return routetest.Build(seed, g, netsim.DefaultConfig(), nil, Factory(cfg))
}

func TestConvergesOnLineBGP3(t *testing.T) {
	g := topology.Line(5)
	s, net := build(t, 1, g, BGP3Config())
	s.RunUntil(60 * time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestConvergesOnMeshBGP3(t *testing.T) {
	m, err := topology.NewMesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, net := build(t, 2, m.Graph, BGP3Config())
	s.RunUntil(120 * time.Second)
	routetest.AssertShortestPaths(t, net, m.Graph)
}

func TestConvergesOnMeshSlowMRAI(t *testing.T) {
	m, err := topology.NewMesh(3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, net := build(t, 3, m.Graph, DefaultConfig())
	s.RunUntil(390 * time.Second)
	routetest.AssertShortestPaths(t, net, m.Graph)
}

func TestReroutesAfterFailure(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 4, g, BGP3Config())
	s.RunUntil(120 * time.Second)
	routetest.AssertShortestPaths(t, net, g)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestRecoversAfterRestore(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 5, g, BGP3Config())
	s.RunUntil(120 * time.Second)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	net.RestoreLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestInstantSwitchover(t *testing.T) {
	// Like DBF, BGP keeps per-neighbor alternates: on a diamond, losing
	// the best next hop switches instantly to the cached one.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cfg := netsim.DefaultConfig()
	s, net := routetest.Build(6, g, cfg, nil, Factory(BGP3Config()))
	s.RunUntil(120 * time.Second)
	nh, ok := net.Node(0).NextHop(3)
	if !ok {
		t.Fatal("no route 0→3 after warm-up")
	}
	net.FailLink(0, nh)
	s.RunUntil(s.Now() + cfg.DetectDelay)
	got, ok := net.Node(0).NextHop(3)
	if !ok {
		t.Fatal("BGP lost the route instead of switching to the Adj-RIB-In alternate")
	}
	if got == nh {
		t.Errorf("next hop still %d after its link failed", got)
	}
}

func TestBestPath(t *testing.T) {
	g := topology.Line(4)
	s, net := build(t, 7, g, BGP3Config())
	s.RunUntil(60 * time.Second)
	p := net.Node(0).Protocol().(*Protocol)
	path := p.BestPath(3)
	want := []netsim.NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("BestPath(3) = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("BestPath(3) = %v, want %v", path, want)
		}
	}
	if p.BestPath(99) != nil {
		t.Error("BestPath of unknown destination is non-nil")
	}
}

func TestLoopedPathTreatedAsWithdrawal(t *testing.T) {
	// Feed node 0 a path that contains node 0 itself: it must not install
	// it, and an existing entry from that neighbor must be dropped.
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	p := New(net.Node(0), BGP3Config())
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(&capture{})
	net.Start()
	// First a legitimate path to destination 5.
	net.Node(1).SendControl(0, &Update{Dst: 5, Path: []netsim.NodeID{1, 3, 5}})
	s.RunUntil(time.Second)
	if nh, ok := net.Node(0).NextHop(5); !ok || nh != 1 {
		t.Fatalf("route to 5 = %d, %v; want via 1", nh, ok)
	}
	// Now a looped path: node 0 appears inside it.
	net.Node(1).SendControl(0, &Update{Dst: 5, Path: []netsim.NodeID{1, 0, 5}})
	s.RunUntil(2 * time.Second)
	if _, ok := net.Node(0).NextHop(5); ok {
		t.Error("looped path was not treated as a withdrawal")
	}
	if p.BestPath(5) != nil {
		t.Error("best path survived the looped announcement")
	}
}

// capture records updates received by a node. Received updates are pooled
// (the network recycles them after HandleMessage returns), so capture
// keeps deep copies.
type capture struct {
	updates []*Update
	at      []time.Duration
	sim     *sim.Simulator
}

func (c *capture) Start() {}
func (c *capture) HandleMessage(_ netsim.NodeID, msg netsim.Message) {
	if u, ok := msg.(*Update); ok {
		clone := &Update{Dst: u.Dst}
		if u.Withdrawn != nil {
			clone.Withdrawn = append([]netsim.NodeID(nil), u.Withdrawn...)
		}
		if u.Path != nil {
			clone.Path = append([]netsim.NodeID(nil), u.Path...)
		}
		c.updates = append(c.updates, clone)
		if c.sim != nil {
			c.at = append(c.at, c.sim.Now())
		}
	}
}
func (c *capture) LinkDown(netsim.NodeID) {}
func (c *capture) LinkUp(netsim.NodeID)   {}

func TestMRAISpacesAnnouncements(t *testing.T) {
	// Node 0 speaks BGP to a capturing neighbor. Feeding node 0 a stream
	// of path changes from a second neighbor must produce announcements to
	// the capture spaced by at least the minimum MRAI.
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1) // capture
	g.AddEdge(0, 2) // feeder
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := Config{MRAI: 10 * time.Second, MRAIJitter: 0}
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	cap1 := &capture{sim: s}
	net.Node(1).AttachProtocol(cap1)
	net.Node(2).AttachProtocol(&capture{})
	net.Start()
	// Feed a new, ever-longer path for destination 9 every second.
	for i := 0; i < 20; i++ {
		i := i
		s.Schedule(time.Duration(i+1)*time.Second, func() {
			path := []netsim.NodeID{2}
			for j := 0; j < i%3; j++ {
				path = append(path, netsim.NodeID(20+j))
			}
			path = append(path, 9)
			net.Node(2).SendControl(0, &Update{Dst: 9, Path: path})
		})
	}
	s.RunUntil(60 * time.Second)

	var annAt []time.Duration
	for i, u := range cap1.updates {
		if u.Path != nil && u.Dst == 9 {
			annAt = append(annAt, cap1.at[i])
		}
	}
	if len(annAt) < 2 {
		t.Fatalf("got %d announcements for dst 9, want ≥ 2", len(annAt))
	}
	// Gaps are measured at the receiver, so allow a small tolerance for
	// queueing/serialization differences between messages.
	const tolerance = 10 * time.Millisecond
	for i := 1; i < len(annAt); i++ {
		if gap := annAt[i] - annAt[i-1]; gap < cfg.MRAI-tolerance {
			t.Errorf("announcements %v apart, want ≥ %v", gap, cfg.MRAI)
		}
	}
}

func TestWithdrawalsBypassMRAI(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := Config{MRAI: 30 * time.Second, MRAIJitter: 0}
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	cap1 := &capture{sim: s}
	net.Node(1).AttachProtocol(cap1)
	net.Node(2).AttachProtocol(&capture{})
	net.Start()
	// Feed the announcement after the session-startup MRAI window so it
	// egresses immediately, then withdraw: the withdrawal must reach node
	// 1 long before the (re-armed) MRAI timer would allow another
	// announcement.
	s.Schedule(35*time.Second, func() {
		net.Node(2).SendControl(0, &Update{Dst: 9, Path: []netsim.NodeID{2, 9}})
	})
	s.Schedule(36*time.Second, func() {
		net.Node(2).SendControl(0, &Update{Withdrawn: []netsim.NodeID{9}})
	})
	s.RunUntil(45 * time.Second)

	sawAnnounce, sawWithdraw := false, false
	var wdAt time.Duration
	for i, u := range cap1.updates {
		if u.Path != nil && u.Dst == 9 {
			sawAnnounce = true
		}
		for _, w := range u.Withdrawn {
			if w == 9 {
				sawWithdraw = true
				wdAt = cap1.at[i]
			}
		}
	}
	if !sawAnnounce {
		t.Fatal("announcement for dst 9 never reached node 1")
	}
	if !sawWithdraw {
		t.Fatal("withdrawal for dst 9 never reached node 1")
	}
	if wdAt > 40*time.Second {
		t.Errorf("withdrawal arrived at %v; should not wait for MRAI", wdAt)
	}
}

func TestDampedWithdrawalsWaitForMRAI(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := Config{MRAI: 30 * time.Second, MRAIJitter: 0, DampWithdrawals: true}
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	cap1 := &capture{sim: s}
	net.Node(1).AttachProtocol(cap1)
	net.Node(2).AttachProtocol(&capture{})
	net.Start()
	// The announcement at 35 s egresses immediately (startup MRAI has
	// expired) and re-arms the timer; the damped withdrawal at 36 s must
	// then wait for the full MRAI.
	s.Schedule(35*time.Second, func() {
		net.Node(2).SendControl(0, &Update{Dst: 9, Path: []netsim.NodeID{2, 9}})
	})
	s.Schedule(36*time.Second, func() {
		net.Node(2).SendControl(0, &Update{Withdrawn: []netsim.NodeID{9}})
	})
	s.RunUntil(120 * time.Second)
	var wdAt time.Duration = -1
	for i, u := range cap1.updates {
		for _, w := range u.Withdrawn {
			if w == 9 && wdAt < 0 {
				wdAt = cap1.at[i]
			}
		}
	}
	if wdAt < 0 {
		t.Fatal("withdrawal never sent")
	}
	if wdAt < 65*time.Second {
		t.Errorf("damped withdrawal at %v, want after the 30 s MRAI (≥ 65 s)", wdAt)
	}
}

func TestPerDestMRAIIndependentDestinations(t *testing.T) {
	// With a per-(neighbor, destination) timer, a change to destination B
	// right after an announcement of destination A goes out immediately.
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := Config{MRAI: 30 * time.Second, MRAIJitter: 0, PerDestMRAI: true}
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	cap1 := &capture{sim: s}
	net.Node(1).AttachProtocol(cap1)
	net.Node(2).AttachProtocol(&capture{})
	net.Start()
	s.Schedule(time.Second, func() {
		net.Node(2).SendControl(0, &Update{Dst: 8, Path: []netsim.NodeID{2, 8}})
	})
	s.Schedule(1100*time.Millisecond, func() {
		net.Node(2).SendControl(0, &Update{Dst: 9, Path: []netsim.NodeID{2, 9}})
	})
	s.RunUntil(10 * time.Second)
	saw8, saw9 := false, false
	for _, u := range cap1.updates {
		if u.Path != nil && u.Dst == 8 {
			saw8 = true
		}
		if u.Path != nil && u.Dst == 9 {
			saw9 = true
		}
	}
	if !saw8 || !saw9 {
		t.Errorf("per-destination MRAI blocked an independent destination: saw8=%v saw9=%v", saw8, saw9)
	}
}

func TestUpdateSizeBytes(t *testing.T) {
	u := &Update{Withdrawn: []netsim.NodeID{1, 2}}
	if got := u.SizeBytes(); got != headerBytes+2*withdrawBytes {
		t.Errorf("withdrawal size = %d, want %d", got, headerBytes+2*withdrawBytes)
	}
	u = &Update{Dst: 9, Path: []netsim.NodeID{1, 2, 9}}
	want := headerBytes + announceBytes + 3*pathElemBytes
	if got := u.SizeBytes(); got != want {
		t.Errorf("announcement size = %d, want %d", got, want)
	}
}

func TestSessionResetClearsState(t *testing.T) {
	g := topology.Line(3)
	s, net := build(t, 8, g, BGP3Config())
	s.RunUntil(60 * time.Second)
	// 0's route to 2 goes via 1; when the 0-1 link dies the session state
	// from 1 must be gone and the destination unreachable.
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 10*time.Second)
	if _, ok := net.Node(0).NextHop(2); ok {
		t.Error("node 0 kept a route via a reset session")
	}
	p := net.Node(0).Protocol().(*Protocol)
	if p.BestPath(1) != nil || p.BestPath(2) != nil {
		t.Error("best paths survived session reset")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		g := topology.Ring(8)
		s, net := build(t, 42, g, BGP3Config())
		s.RunUntil(60 * time.Second)
		net.FailLink(0, 1)
		s.RunUntil(120 * time.Second)
		return net.Stats().ControlSent + net.Stats().ControlBytes
	}
	if run() != run() {
		t.Error("identical seeds produced different control traffic")
	}
}

func TestIgnoresForeignMessages(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	net.Node(0).AttachProtocol(New(net.Node(0), BGP3Config()))
	net.Node(1).AttachProtocol(New(net.Node(1), BGP3Config()))
	net.Start()
	net.Node(1).SendControl(0, fakeMsg{})
	s.RunUntil(time.Second)
}

type fakeMsg struct{}

func (fakeMsg) SizeBytes() int { return 10 }

func TestDebugState(t *testing.T) {
	g := topology.Line(3)
	s, net := build(t, 9, g, BGP3Config())
	s.RunUntil(30 * time.Second)
	p := net.Node(1).Protocol().(*Protocol)
	out := p.DebugState(2)
	for _, want := range []string{"node 1 dst 2", "nbr 0", "nbr 2", "best=[1 2]"} {
		if !strings.Contains(out, want) {
			t.Errorf("DebugState missing %q:\n%s", want, out)
		}
	}
}

func TestDebugStateShowsSuppression(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(2)
	g.AddEdge(0, 1)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := BGP3Config()
	dcfg := DefaultDampingConfig()
	dcfg.HalfLife = time.Minute
	cfg.Damping = &dcfg
	p := New(net.Node(0), cfg)
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(&capture{})
	net.Start()
	for i := 0; i < 3; i++ {
		at := time.Duration(2*i+1) * time.Second
		s.ScheduleAt(at, func() {
			net.Node(1).SendControl(0, &Update{Dst: 9, Path: []netsim.NodeID{1, 9}})
		})
		s.ScheduleAt(at+time.Second, func() {
			net.Node(1).SendControl(0, &Update{Withdrawn: []netsim.NodeID{9}})
		})
	}
	s.RunUntil(10 * time.Second)
	if !strings.Contains(p.DebugState(9), "SUPPRESSED") {
		t.Errorf("DebugState does not show suppression:\n%s", p.DebugState(9))
	}
}
