package bgp_test

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing/bgp"
	"routeconv/internal/routing/conformance"
)

func TestConformanceBGP3(t *testing.T) {
	conformance.Run(t, conformance.Params{
		Name:    "bgp3",
		Factory: func(n *netsim.Node) netsim.Protocol { return bgp.New(n, bgp.BGP3Config()) },
		// A handful of 3 s MRAI rounds.
		Settle: 60 * time.Second,
	})
}

func TestConformanceBGPSlowMRAI(t *testing.T) {
	if testing.Short() {
		t.Skip("30 s MRAI needs long settling")
	}
	conformance.Run(t, conformance.Params{
		Name:    "bgp",
		Factory: func(n *netsim.Node) netsim.Protocol { return bgp.New(n, bgp.DefaultConfig()) },
		Settle:  400 * time.Second,
	})
}

func TestConformancePerDestMRAI(t *testing.T) {
	cfg := bgp.BGP3Config()
	cfg.PerDestMRAI = true
	conformance.Run(t, conformance.Params{
		Name:    "bgp3-perdest",
		Factory: func(n *netsim.Node) netsim.Protocol { return bgp.New(n, cfg) },
		Settle:  60 * time.Second,
	})
}
