package bgp

import (
	"testing"
	"testing/quick"

	"routeconv/internal/routing"
)

func pathsEq(a, b []routing.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUpdateRoundTripAnnouncement(t *testing.T) {
	u := &Update{Dst: 9, Path: []routing.NodeID{3, 5, 9}}
	got, err := DecodeUpdate(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != u.Dst || !pathsEq(got.Path, u.Path) || len(got.Withdrawn) != 0 {
		t.Errorf("round trip = %+v, want %+v", got, u)
	}
}

func TestUpdateRoundTripWithdrawal(t *testing.T) {
	u := &Update{Withdrawn: []routing.NodeID{1, 2, 40}}
	got, err := DecodeUpdate(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != nil || !pathsEq(got.Withdrawn, u.Withdrawn) {
		t.Errorf("round trip = %+v, want %+v", got, u)
	}
}

func TestUpdateRoundTripMixed(t *testing.T) {
	u := &Update{Withdrawn: []routing.NodeID{7}, Dst: 9, Path: []routing.NodeID{3, 9}}
	got, err := DecodeUpdate(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !pathsEq(got.Withdrawn, u.Withdrawn) || got.Dst != u.Dst || !pathsEq(got.Path, u.Path) {
		t.Errorf("round trip = %+v, want %+v", got, u)
	}
}

// TestWireSizeModel pins the analytic size model to the actual encoding:
// SizeBytes = len(Encode()) + TCP/IP overhead.
func TestWireSizeModel(t *testing.T) {
	cases := []*Update{
		{Withdrawn: []routing.NodeID{1}},
		{Withdrawn: []routing.NodeID{1, 2, 3, 4}},
		{Dst: 9, Path: []routing.NodeID{1, 9}},
		{Dst: 9, Path: []routing.NodeID{1, 2, 3, 4, 5, 6, 9}},
		{Withdrawn: []routing.NodeID{8}, Dst: 9, Path: []routing.NodeID{1, 9}},
	}
	for _, u := range cases {
		if got, want := u.SizeBytes(), len(u.Encode())+TCPIPOverhead; got != want {
			t.Errorf("%+v: SizeBytes = %d, encoded+overhead = %d", u, got, want)
		}
	}
}

func TestDecodeUpdateErrors(t *testing.T) {
	good := (&Update{Dst: 9, Path: []routing.NodeID{1, 9}}).Encode()

	short := good[:5]
	badLen := append([]byte{}, good...)
	badLen[16] = 0xFF
	badType := append([]byte{}, good...)
	badType[18] = 9
	truncated := good[:len(good)-3]

	for name, buf := range map[string][]byte{
		"too short":  short,
		"bad length": badLen,
		"bad type":   badType,
		"truncated":  truncated,
	} {
		if _, err := DecodeUpdate(buf); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

// Property: updates round-trip losslessly.
func TestPropertyUpdateRoundTrip(t *testing.T) {
	f := func(withdrawn []uint8, path []uint8, dst uint8, announce bool) bool {
		u := &Update{}
		for _, w := range withdrawn {
			u.Withdrawn = append(u.Withdrawn, routing.NodeID(w))
		}
		if announce {
			u.Dst = routing.NodeID(dst)
			u.Path = []routing.NodeID{routing.NodeID(dst) + 1} // non-empty
			for _, h := range path {
				u.Path = append(u.Path, routing.NodeID(h))
			}
		}
		got, err := DecodeUpdate(u.Encode())
		if err != nil {
			return false
		}
		if !pathsEq(got.Withdrawn, u.Withdrawn) || !pathsEq(got.Path, u.Path) {
			return false
		}
		if announce && got.Dst != u.Dst {
			return false
		}
		return got.SizeBytes() == u.SizeBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
