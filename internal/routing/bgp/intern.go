package bgp

import "routeconv/internal/routing"

// pathID names one interned AS path in a speaker's intern table. The RIBs
// (Adj-RIB-In, Loc-RIB, RIB-Out) store 32-bit path IDs instead of owned
// slices: interning hash-conses every path the speaker hears or selects,
// so equal paths share an ID and path equality is integer equality.
// noPath marks an empty RIB slot.
type pathID int32

// noPath is the empty RIB slot / "no path selected" sentinel.
const noPath pathID = -1

// internTable hash-conses AS paths for one Protocol instance. It is
// append-only: a path, once interned, keeps its ID and its backing slice
// for the lifetime of the speaker. That immutability is what makes
// zero-copy sharing safe — an interned slice may simultaneously back RIB
// slots, Update messages in flight, and (after the receiver interns it in
// turn) a neighbor's own table. The table's memory is bounded by the set
// of distinct paths actually explored, all of which the pre-interning
// code allocated anyway (and then copied per update).
type internTable struct {
	// paths maps a pathID to its elements; slot i belongs to pathID(i).
	paths [][]routing.NodeID
	// ids maps a path's byte key to its ID. Lookups convert the scratch
	// key with a non-allocating string conversion; only the first sight of
	// a path allocates (the owned copy and the map key).
	ids map[string]pathID
	// key and scratch are reusable build buffers.
	key     []byte
	scratch []routing.NodeID
}

func newInternTable() *internTable {
	return &internTable{ids: make(map[string]pathID)}
}

// keyFor serializes a path into the reusable key buffer.
func (t *internTable) keyFor(path []routing.NodeID) []byte {
	t.key = t.key[:0]
	for _, n := range path {
		u := uint32(n)
		t.key = append(t.key, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return t.key
}

// intern returns the ID for path, copying it into the table on first
// sight. path must be non-empty (empty paths are represented as noPath).
func (t *internTable) intern(path []routing.NodeID) pathID {
	key := t.keyFor(path)
	if id, ok := t.ids[string(key)]; ok {
		return id
	}
	id := pathID(len(t.paths))
	t.paths = append(t.paths, append([]routing.NodeID(nil), path...))
	t.ids[string(key)] = id
	return id
}

// prepend returns the ID of the path formed by head followed by the
// elements of id — the "self + neighbor's path" step of best-path
// selection, built in a reusable buffer.
func (t *internTable) prepend(head routing.NodeID, id pathID) pathID {
	t.scratch = append(t.scratch[:0], head)
	t.scratch = append(t.scratch, t.paths[id]...)
	return t.intern(t.scratch)
}

// path returns the interned elements (nil for noPath). The slice is owned
// by the table; callers must not modify it.
func (t *internTable) path(id pathID) []routing.NodeID {
	if id == noPath {
		return nil
	}
	return t.paths[id]
}

// pathLen returns the interned path's length (0 for noPath).
func (t *internTable) pathLen(id pathID) int {
	if id == noPath {
		return 0
	}
	return len(t.paths[id])
}
