package bgp

import (
	"math"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// DampingConfig parameterizes RFC 2439 route flap damping, the mechanism
// the paper's introduction discusses via Bush et al. [4] and Mao et al.
// [15]: repeated flaps accumulate a penalty per (neighbor, destination);
// once past the suppress threshold the route is ignored until the penalty
// decays below the reuse threshold.
type DampingConfig struct {
	// WithdrawPenalty is added when the neighbor withdraws the route
	// (RFC 2439 suggests 1000).
	WithdrawPenalty float64
	// ReannouncePenalty is added when the neighbor replaces an existing
	// announcement (attribute change, 500).
	ReannouncePenalty float64
	// SuppressThreshold starts suppression (2000).
	SuppressThreshold float64
	// ReuseThreshold ends suppression once the decayed penalty falls below
	// it (750).
	ReuseThreshold float64
	// HalfLife is the exponential decay half-life (RFC default 15 min;
	// experiments at the paper's 800 s scale use shorter values).
	HalfLife time.Duration
}

// DefaultDampingConfig returns the RFC 2439 suggested values.
func DefaultDampingConfig() DampingConfig {
	return DampingConfig{
		WithdrawPenalty:   1000,
		ReannouncePenalty: 500,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          15 * time.Minute,
	}
}

// flapState tracks one (neighbor, destination) flap history. The zero
// value means "no history", so damper rows are plain value slices.
type flapState struct {
	penalty    float64
	updatedAt  time.Duration
	suppressed bool
	reuse      sim.Event
}

// damper implements the flap-damping state machine for one BGP speaker.
type damper struct {
	cfg DampingConfig
	sim *sim.Simulator
	// onReuse is called when a suppressed (neighbor, destination) becomes
	// usable again so the owner can re-run best-path selection.
	onReuse func(neighbor, dst routing.NodeID)
	// state holds flap histories in dense rows outer-indexed by neighbor
	// and inner-indexed by destination, grown on demand. Rows may be
	// reallocated by growth, so nothing long-lived may hold a *flapState —
	// the reuse callback re-resolves its entry by (neighbor, dst).
	state [][]flapState
	// node, when set, routes suppression/reuse transitions to the
	// network's convergence timeline; nil in unit tests.
	node *netsim.Node
}

// record logs a suppression/reuse transition to the owning node's
// convergence timeline; a no-op for node-less dampers (unit tests) and
// uninstrumented networks.
func (d *damper) record(kind obs.Kind, neighbor, dst routing.NodeID) {
	if d.node != nil {
		d.node.Timeline().RouteFlap(d.sim.Now(), kind, int(d.node.ID()), int(neighbor), int(dst))
	}
}

func newDamper(cfg DampingConfig, s *sim.Simulator, onReuse func(neighbor, dst routing.NodeID)) *damper {
	return &damper{cfg: cfg, sim: s, onReuse: onReuse}
}

// decayed returns the penalty decayed to the current time.
func (d *damper) decayed(st *flapState) float64 {
	dt := d.sim.Now() - st.updatedAt
	if dt <= 0 || st.penalty == 0 {
		return st.penalty
	}
	return st.penalty * math.Exp2(-float64(dt)/float64(d.cfg.HalfLife))
}

// at returns the entry for (neighbor, dst), growing the dense tables as
// needed. The pointer is only valid until the next call to at.
func (d *damper) at(neighbor, dst routing.NodeID) *flapState {
	if int(neighbor) >= len(d.state) {
		grown := make([][]flapState, int(neighbor)+1)
		copy(grown, d.state)
		d.state = grown
	}
	if int(dst) >= len(d.state[neighbor]) {
		grown := make([]flapState, int(dst)+1)
		copy(grown, d.state[neighbor])
		d.state[neighbor] = grown
	}
	return &d.state[neighbor][dst]
}

// peek returns the entry for (neighbor, dst) without growing, or nil.
func (d *damper) peek(neighbor, dst routing.NodeID) *flapState {
	if neighbor < 0 || int(neighbor) >= len(d.state) {
		return nil
	}
	row := d.state[neighbor]
	if dst < 0 || int(dst) >= len(row) {
		return nil
	}
	return &row[dst]
}

// Suppressed reports whether the (neighbor, destination) route is
// currently suppressed.
func (d *damper) Suppressed(neighbor, dst routing.NodeID) bool {
	st := d.peek(neighbor, dst)
	return st != nil && st.suppressed
}

// Penalty returns the current (decayed) penalty; exposed for tests.
func (d *damper) Penalty(neighbor, dst routing.NodeID) float64 {
	st := d.peek(neighbor, dst)
	if st == nil {
		return 0
	}
	return d.decayed(st)
}

// OnWithdraw charges the withdrawal penalty. It returns true if the route
// is suppressed afterwards.
func (d *damper) OnWithdraw(neighbor, dst routing.NodeID) bool {
	return d.charge(neighbor, dst, d.cfg.WithdrawPenalty)
}

// OnReannounce charges the re-announcement penalty (the caller only
// invokes it when an existing path was replaced).
func (d *damper) OnReannounce(neighbor, dst routing.NodeID) bool {
	return d.charge(neighbor, dst, d.cfg.ReannouncePenalty)
}

func (d *damper) charge(neighbor, dst routing.NodeID, penalty float64) bool {
	st := d.at(neighbor, dst)
	st.penalty = d.decayed(st) + penalty
	st.updatedAt = d.sim.Now()
	if !st.suppressed && st.penalty >= d.cfg.SuppressThreshold {
		st.suppressed = true
		d.record(obs.KindRouteFlap, neighbor, dst)
		d.scheduleReuse(neighbor, dst, st)
	} else if st.suppressed {
		// Penalty grew: push the reuse check out.
		d.scheduleReuse(neighbor, dst, st)
	}
	return st.suppressed
}

// scheduleReuse (re)schedules the un-suppression check for the exact time
// the penalty will have decayed to the reuse threshold. The callback
// re-resolves the entry by coordinates: rows are value slices that may be
// reallocated by growth, so a captured pointer could go stale.
func (d *damper) scheduleReuse(neighbor, dst routing.NodeID, st *flapState) {
	st.reuse.Cancel()
	wait := d.timeToReuse(st.penalty)
	st.reuse = d.sim.Schedule(wait, func() {
		cur := d.at(neighbor, dst)
		cur.suppressed = false
		cur.reuse = sim.Event{}
		d.record(obs.KindRouteReuse, neighbor, dst)
		d.onReuse(neighbor, dst)
	})
}

// timeToReuse returns how long a fresh penalty takes to decay to the reuse
// threshold: halfLife * log2(penalty / reuse).
func (d *damper) timeToReuse(penalty float64) time.Duration {
	if penalty <= d.cfg.ReuseThreshold {
		return 0
	}
	ratio := penalty / d.cfg.ReuseThreshold
	return time.Duration(float64(d.cfg.HalfLife) * math.Log2(ratio))
}

// SessionReset drops all flap history for the neighbor (the session — and
// with it the damping context — is gone).
func (d *damper) SessionReset(neighbor routing.NodeID) {
	if int(neighbor) >= len(d.state) {
		return
	}
	row := d.state[neighbor]
	for i := range row {
		row[i].reuse.Cancel()
	}
	d.state[neighbor] = nil
}
