package bgp

import (
	"math"
	"time"

	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// DampingConfig parameterizes RFC 2439 route flap damping, the mechanism
// the paper's introduction discusses via Bush et al. [4] and Mao et al.
// [15]: repeated flaps accumulate a penalty per (neighbor, destination);
// once past the suppress threshold the route is ignored until the penalty
// decays below the reuse threshold.
type DampingConfig struct {
	// WithdrawPenalty is added when the neighbor withdraws the route
	// (RFC 2439 suggests 1000).
	WithdrawPenalty float64
	// ReannouncePenalty is added when the neighbor replaces an existing
	// announcement (attribute change, 500).
	ReannouncePenalty float64
	// SuppressThreshold starts suppression (2000).
	SuppressThreshold float64
	// ReuseThreshold ends suppression once the decayed penalty falls below
	// it (750).
	ReuseThreshold float64
	// HalfLife is the exponential decay half-life (RFC default 15 min;
	// experiments at the paper's 800 s scale use shorter values).
	HalfLife time.Duration
}

// DefaultDampingConfig returns the RFC 2439 suggested values.
func DefaultDampingConfig() DampingConfig {
	return DampingConfig{
		WithdrawPenalty:   1000,
		ReannouncePenalty: 500,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          15 * time.Minute,
	}
}

// flapState tracks one (neighbor, destination) flap history.
type flapState struct {
	penalty    float64
	updatedAt  time.Duration
	suppressed bool
	reuse      sim.Event
}

// damper implements the flap-damping state machine for one BGP speaker.
type damper struct {
	cfg DampingConfig
	sim *sim.Simulator
	// onReuse is called when a suppressed (neighbor, destination) becomes
	// usable again so the owner can re-run best-path selection.
	onReuse func(neighbor, dst routing.NodeID)
	state   map[routing.NodeID]map[routing.NodeID]*flapState
}

func newDamper(cfg DampingConfig, s *sim.Simulator, onReuse func(neighbor, dst routing.NodeID)) *damper {
	return &damper{
		cfg:     cfg,
		sim:     s,
		onReuse: onReuse,
		state:   make(map[routing.NodeID]map[routing.NodeID]*flapState),
	}
}

// decayed returns the penalty decayed to the current time.
func (d *damper) decayed(st *flapState) float64 {
	dt := d.sim.Now() - st.updatedAt
	if dt <= 0 || st.penalty == 0 {
		return st.penalty
	}
	return st.penalty * math.Exp2(-float64(dt)/float64(d.cfg.HalfLife))
}

func (d *damper) get(neighbor, dst routing.NodeID) *flapState {
	m := d.state[neighbor]
	if m == nil {
		m = make(map[routing.NodeID]*flapState)
		d.state[neighbor] = m
	}
	st := m[dst]
	if st == nil {
		st = &flapState{}
		m[dst] = st
	}
	return st
}

// Suppressed reports whether the (neighbor, destination) route is
// currently suppressed.
func (d *damper) Suppressed(neighbor, dst routing.NodeID) bool {
	m := d.state[neighbor]
	if m == nil {
		return false
	}
	st := m[dst]
	return st != nil && st.suppressed
}

// Penalty returns the current (decayed) penalty; exposed for tests.
func (d *damper) Penalty(neighbor, dst routing.NodeID) float64 {
	m := d.state[neighbor]
	if m == nil {
		return 0
	}
	st := m[dst]
	if st == nil {
		return 0
	}
	return d.decayed(st)
}

// OnWithdraw charges the withdrawal penalty. It returns true if the route
// is suppressed afterwards.
func (d *damper) OnWithdraw(neighbor, dst routing.NodeID) bool {
	return d.charge(neighbor, dst, d.cfg.WithdrawPenalty)
}

// OnReannounce charges the re-announcement penalty (the caller only
// invokes it when an existing path was replaced).
func (d *damper) OnReannounce(neighbor, dst routing.NodeID) bool {
	return d.charge(neighbor, dst, d.cfg.ReannouncePenalty)
}

func (d *damper) charge(neighbor, dst routing.NodeID, penalty float64) bool {
	st := d.get(neighbor, dst)
	st.penalty = d.decayed(st) + penalty
	st.updatedAt = d.sim.Now()
	if !st.suppressed && st.penalty >= d.cfg.SuppressThreshold {
		st.suppressed = true
		d.scheduleReuse(neighbor, dst, st)
	} else if st.suppressed {
		// Penalty grew: push the reuse check out.
		d.scheduleReuse(neighbor, dst, st)
	}
	return st.suppressed
}

// scheduleReuse (re)schedules the un-suppression check for the exact time
// the penalty will have decayed to the reuse threshold.
func (d *damper) scheduleReuse(neighbor, dst routing.NodeID, st *flapState) {
	st.reuse.Cancel()
	wait := d.timeToReuse(st.penalty)
	st.reuse = d.sim.Schedule(wait, func() {
		st.suppressed = false
		st.reuse = sim.Event{}
		d.onReuse(neighbor, dst)
	})
}

// timeToReuse returns how long a fresh penalty takes to decay to the reuse
// threshold: halfLife * log2(penalty / reuse).
func (d *damper) timeToReuse(penalty float64) time.Duration {
	if penalty <= d.cfg.ReuseThreshold {
		return 0
	}
	ratio := penalty / d.cfg.ReuseThreshold
	return time.Duration(float64(d.cfg.HalfLife) * math.Log2(ratio))
}

// SessionReset drops all flap history for the neighbor (the session — and
// with it the damping context — is gone).
func (d *damper) SessionReset(neighbor routing.NodeID) {
	for _, st := range d.state[neighbor] {
		st.reuse.Cancel()
	}
	delete(d.state, neighbor)
}
