package bgp

import (
	"encoding/binary"
	"fmt"

	"routeconv/internal/routing"
)

// Wire format (RFC 4271 shape, with 4-byte AS numbers and /32 NLRI):
//
//	header:    16-byte marker, 2-byte length, 1-byte type (UPDATE = 2)
//	withdrawn: 2-byte length, then per route 1-byte prefix length + 4 bytes
//	attrs:     2-byte length, then ORIGIN (4 bytes) and AS_PATH
//	           (3-byte attribute header, 1-byte segment type, 1-byte count,
//	           4 bytes per AS) when a route is announced
//	nlri:      1-byte prefix length + 4 bytes
//
// The Update size model (headerBytes etc.) matches this encoding plus
// 40 bytes of TCP/IP framing; TestWireSizeModel pins that.
const (
	bgpMarkerLen  = 16
	bgpHeaderLen  = bgpMarkerLen + 2 + 1
	bgpTypeUpdate = 2

	attrOrigin = 1
	attrASPath = 2

	asPathSegSequence = 2

	// TCPIPOverhead is the transport framing a BGP message rides in.
	TCPIPOverhead = 40
)

func addrForNode(id routing.NodeID) uint32 { return 0x0A00_0000 | uint32(id)&0x00FF_FFFF }
func nodeForAddr(addr uint32) routing.NodeID {
	return routing.NodeID(addr & 0x00FF_FFFF)
}

// Encode renders the update as a BGP UPDATE message.
func (u *Update) Encode() []byte {
	withdrawn := make([]byte, 0, 5*len(u.Withdrawn))
	for _, dst := range u.Withdrawn {
		var route [5]byte
		route[0] = 32
		binary.BigEndian.PutUint32(route[1:], addrForNode(dst))
		withdrawn = append(withdrawn, route[:]...)
	}

	var attrs, nlri []byte
	if u.Path != nil {
		attrs = make([]byte, 0, 9+4*len(u.Path))
		// ORIGIN: flags(transitive), type, length, value(IGP).
		attrs = append(attrs, 0x40, attrOrigin, 1, 0)
		// AS_PATH: flags, type, length, then one AS_SEQUENCE segment.
		segLen := 2 + 4*len(u.Path)
		attrs = append(attrs, 0x40, attrASPath, byte(segLen))
		attrs = append(attrs, asPathSegSequence, byte(len(u.Path)))
		for _, as := range u.Path {
			var n [4]byte
			binary.BigEndian.PutUint32(n[:], uint32(as))
			attrs = append(attrs, n[:]...)
		}
		nlri = make([]byte, 5)
		nlri[0] = 32
		binary.BigEndian.PutUint32(nlri[1:], addrForNode(u.Dst))
	}

	total := bgpHeaderLen + 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	buf := make([]byte, 0, total)
	var header [bgpHeaderLen]byte
	for i := 0; i < bgpMarkerLen; i++ {
		header[i] = 0xFF
	}
	binary.BigEndian.PutUint16(header[bgpMarkerLen:], uint16(total))
	header[bgpMarkerLen+2] = bgpTypeUpdate
	buf = append(buf, header[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(withdrawn)))
	buf = append(buf, withdrawn...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(attrs)))
	buf = append(buf, attrs...)
	buf = append(buf, nlri...)
	return buf
}

// DecodeUpdate parses a BGP UPDATE message produced by Encode.
func DecodeUpdate(buf []byte) (*Update, error) {
	if len(buf) < bgpHeaderLen+4 {
		return nil, fmt.Errorf("bgp: message too short (%d bytes)", len(buf))
	}
	if got := binary.BigEndian.Uint16(buf[bgpMarkerLen:]); int(got) != len(buf) {
		return nil, fmt.Errorf("bgp: length field %d ≠ buffer length %d", got, len(buf))
	}
	if buf[bgpMarkerLen+2] != bgpTypeUpdate {
		return nil, fmt.Errorf("bgp: unsupported message type %d", buf[bgpMarkerLen+2])
	}
	rest := buf[bgpHeaderLen:]

	wdLen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if wdLen > len(rest) || wdLen%5 != 0 {
		return nil, fmt.Errorf("bgp: bad withdrawn length %d", wdLen)
	}
	u := &Update{}
	for off := 0; off < wdLen; off += 5 {
		if rest[off] != 32 {
			return nil, fmt.Errorf("bgp: unsupported prefix length %d", rest[off])
		}
		u.Withdrawn = append(u.Withdrawn, nodeForAddr(binary.BigEndian.Uint32(rest[off+1:])))
	}
	rest = rest[wdLen:]

	if len(rest) < 2 {
		return nil, fmt.Errorf("bgp: truncated attribute length")
	}
	attrLen := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if attrLen > len(rest) {
		return nil, fmt.Errorf("bgp: attribute length %d exceeds remainder %d", attrLen, len(rest))
	}
	attrs, nlri := rest[:attrLen], rest[attrLen:]

	var path []routing.NodeID
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, fmt.Errorf("bgp: truncated attribute header")
		}
		typ, alen := attrs[1], int(attrs[2])
		body := attrs[3:]
		if alen > len(body) {
			return nil, fmt.Errorf("bgp: attribute %d length %d exceeds remainder", typ, alen)
		}
		if typ == attrASPath {
			if alen < 2 || body[0] != asPathSegSequence {
				return nil, fmt.Errorf("bgp: malformed AS_PATH")
			}
			count := int(body[1])
			if alen != 2+4*count {
				return nil, fmt.Errorf("bgp: AS_PATH length mismatch")
			}
			for i := 0; i < count; i++ {
				path = append(path, routing.NodeID(binary.BigEndian.Uint32(body[2+4*i:])))
			}
		}
		attrs = body[alen:]
	}

	switch {
	case len(nlri) == 0 && path == nil:
		// Pure withdrawal.
	case len(nlri) == 5 && path != nil:
		if nlri[0] != 32 {
			return nil, fmt.Errorf("bgp: unsupported NLRI prefix length %d", nlri[0])
		}
		u.Dst = nodeForAddr(binary.BigEndian.Uint32(nlri[1:]))
		u.Path = path
	default:
		return nil, fmt.Errorf("bgp: inconsistent NLRI (%d bytes) and AS_PATH (%d hops)", len(nlri), len(path))
	}
	return u, nil
}
