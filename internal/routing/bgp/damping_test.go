package bgp

import (
	"math"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func testDampingConfig() DampingConfig {
	return DampingConfig{
		WithdrawPenalty:   1000,
		ReannouncePenalty: 500,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          60 * time.Second,
	}
}

func TestDamperPenaltyAccumulatesAndDecays(t *testing.T) {
	s := sim.New(1)
	d := newDamper(testDampingConfig(), s, func(n, dst netsim.NodeID) {})
	d.OnWithdraw(1, 9)
	if got := d.Penalty(1, 9); got != 1000 {
		t.Fatalf("penalty after one withdrawal = %v, want 1000", got)
	}
	// One half-life later the penalty halves.
	s.Schedule(60*time.Second, func() {})
	s.Run()
	if got := d.Penalty(1, 9); math.Abs(got-500) > 1 {
		t.Errorf("penalty after one half-life = %v, want ≈ 500", got)
	}
	if d.Suppressed(1, 9) {
		t.Error("route suppressed below threshold")
	}
}

func TestDamperSuppressesAtThreshold(t *testing.T) {
	s := sim.New(1)
	d := newDamper(testDampingConfig(), s, func(n, dst netsim.NodeID) {})
	d.OnWithdraw(1, 9)
	if d.Suppressed(1, 9) {
		t.Fatal("suppressed after a single withdrawal")
	}
	if !d.OnWithdraw(1, 9) {
		t.Fatal("not suppressed after two quick withdrawals (penalty ≈ 2000)")
	}
	if !d.Suppressed(1, 9) {
		t.Fatal("Suppressed() disagrees with OnWithdraw return")
	}
}

func TestDamperReuseCallback(t *testing.T) {
	s := sim.New(1)
	var reusedAt time.Duration = -1
	d := newDamper(testDampingConfig(), s, func(n, dst netsim.NodeID) {
		if n == 1 && dst == 9 {
			reusedAt = s.Now()
		}
	})
	d.OnWithdraw(1, 9)
	d.OnWithdraw(1, 9) // penalty 2000 → suppressed
	s.Run()
	if reusedAt < 0 {
		t.Fatal("reuse callback never fired")
	}
	// 2000 → 750 takes halfLife * log2(2000/750) ≈ 60s * 1.415 ≈ 84.9s.
	want := time.Duration(float64(60*time.Second) * math.Log2(2000.0/750.0))
	if diff := reusedAt - want; diff < -time.Second || diff > time.Second {
		t.Errorf("reuse at %v, want ≈ %v", reusedAt, want)
	}
	if d.Suppressed(1, 9) {
		t.Error("still suppressed after reuse")
	}
}

func TestDamperReannouncePenaltyLighter(t *testing.T) {
	s := sim.New(1)
	d := newDamper(testDampingConfig(), s, func(n, dst netsim.NodeID) {})
	d.OnReannounce(1, 9)
	d.OnReannounce(1, 9)
	d.OnReannounce(1, 9)
	if d.Suppressed(1, 9) {
		t.Error("suppressed at penalty 1500, threshold 2000")
	}
	d.OnReannounce(1, 9)
	if !d.Suppressed(1, 9) {
		t.Error("not suppressed at penalty 2000")
	}
}

func TestDamperSessionReset(t *testing.T) {
	s := sim.New(1)
	fired := false
	d := newDamper(testDampingConfig(), s, func(n, dst netsim.NodeID) { fired = true })
	d.OnWithdraw(1, 9)
	d.OnWithdraw(1, 9)
	d.SessionReset(1)
	if d.Suppressed(1, 9) {
		t.Error("suppression survived session reset")
	}
	s.Run()
	if fired {
		t.Error("reuse timer survived session reset")
	}
}

func TestDamperIndependentPerNeighborAndDest(t *testing.T) {
	s := sim.New(1)
	d := newDamper(testDampingConfig(), s, func(n, dst netsim.NodeID) {})
	d.OnWithdraw(1, 9)
	d.OnWithdraw(1, 9)
	if d.Suppressed(2, 9) || d.Suppressed(1, 8) {
		t.Error("suppression leaked across neighbors or destinations")
	}
}

// TestFlapDampingEndToEnd drives a flapping route into a BGP speaker and
// checks the full cycle: usable → suppressed (despite being announced) →
// reusable after decay.
func TestFlapDampingEndToEnd(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(2)
	g.AddEdge(0, 1)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := BGP3Config()
	dcfg := testDampingConfig()
	cfg.Damping = &dcfg
	p := New(net.Node(0), cfg)
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(&capture{})
	net.Start()

	announce := func(at time.Duration) {
		s.ScheduleAt(at, func() {
			net.Node(1).SendControl(0, &Update{Dst: 9, Path: []netsim.NodeID{1, 9}})
		})
	}
	withdraw := func(at time.Duration) {
		s.ScheduleAt(at, func() {
			net.Node(1).SendControl(0, &Update{Withdrawn: []netsim.NodeID{9}})
		})
	}
	// Three fast withdrawal flaps: the penalty passes the 2000 threshold
	// on the third (decay makes two withdrawals land just short).
	announce(1 * time.Second)
	withdraw(2 * time.Second)
	announce(3 * time.Second)
	withdraw(4 * time.Second)
	announce(5 * time.Second)
	withdraw(6 * time.Second)
	announce(7 * time.Second)

	s.RunUntil(8 * time.Second)
	if _, ok := net.Node(0).NextHop(9); ok {
		t.Fatal("flapping route still usable; damping did not suppress it")
	}
	// The reuse timer un-suppresses it eventually; the stored announcement
	// becomes usable without any new message.
	s.RunUntil(10 * time.Minute)
	if nh, ok := net.Node(0).NextHop(9); !ok || nh != 1 {
		t.Fatalf("suppressed route never reused: nh=%d ok=%v", nh, ok)
	}
}

func TestDampingDisabledByDefault(t *testing.T) {
	if DefaultConfig().Damping != nil || BGP3Config().Damping != nil {
		t.Error("damping should be opt-in")
	}
	d := DefaultDampingConfig()
	if d.WithdrawPenalty != 1000 || d.SuppressThreshold != 2000 || d.ReuseThreshold != 750 {
		t.Errorf("RFC 2439 defaults wrong: %+v", d)
	}
}
