package bgp

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// discard is a protocol that ignores everything it receives, so alloc
// guards measure only the speaker under test (capture would allocate
// clones of every update).
type discard struct{}

func (discard) Start()                                      {}
func (discard) HandleMessage(netsim.NodeID, netsim.Message) {}
func (discard) LinkDown(netsim.NodeID)                      {}
func (discard) LinkUp(netsim.NodeID)                        {}

// A converged speaker's MRAI flush with nothing pending must not allocate:
// the dirty/pending scans are dense-array reads and the early-out is a
// counter check.
func TestIdleFlushAllocs(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Ring(4), netsim.DefaultConfig(), nil)
	var protos []*Protocol
	for i := 0; i < 4; i++ {
		p := New(net.Node(netsim.NodeID(i)), BGP3Config())
		net.Node(netsim.NodeID(i)).AttachProtocol(p)
		protos = append(protos, p)
	}
	net.Start()
	s.RunUntil(2 * time.Minute) // long past convergence and all MRAI timers
	p := protos[0]
	avg := testing.AllocsPerRun(100, func() { p.flushAll() })
	if avg != 0 {
		t.Errorf("idle flushAll allocates %.1f objects, want 0", avg)
	}
}

// A flush with announcements held back by a pending MRAI timer must not
// allocate either: classification walks the per-neighbor pending list in
// the reusable scratch buffers, and the list rebuild reuses its capacity.
func TestHeldFlushAllocs(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	net.Node(0).AttachProtocol(New(net.Node(0), DefaultConfig())) // 30 s MRAI
	net.Node(1).AttachProtocol(discard{})
	net.Node(2).AttachProtocol(discard{})
	net.Start()
	s.RunUntil(time.Second) // initial advertisements consumed the MRAI budget
	p := protoAt(net, 0)
	for i := 0; i < 40; i += 2 {
		net.Node(2).SendControl(0, &Update{Dst: netsim.NodeID(100 + i), Path: []netsim.NodeID{2, netsim.NodeID(100 + i)}})
	}
	s.RunUntil(s.Now() + 100*time.Millisecond) // deliveries leave announcements pending behind the MRAI timer
	if p.pendingCount[1] == 0 || !p.mrai[1].Pending() {
		t.Fatal("test setup: expected announcements held by a pending MRAI timer")
	}
	for i := 0; i < 8; i++ {
		p.flushAll() // warm the scratch buffers
	}
	avg := testing.AllocsPerRun(100, func() { p.flushAll() })
	if avg != 0 {
		t.Errorf("held flushAll allocates %.1f objects, want 0", avg)
	}
}

func protoAt(net *netsim.Network, id netsim.NodeID) *Protocol {
	return net.Node(id).Protocol().(*Protocol)
}

// Steady-state update processing runs through pooled messages, interned
// paths, and dense RIB rows, so one full announce+withdraw cycle (receive,
// recompute, flush to both neighbors) stays within a small pinned packet
// budget: the only per-message allocation left is the netsim Packet per
// control send (two injected by the test, up to three emitted by the
// speaker per half-cycle).
func TestUpdateCycleAllocBudget(t *testing.T) {
	s := sim.New(1)
	g := topology.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := Config{MRAI: time.Millisecond, MRAIJitter: 0}
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	net.Node(1).AttachProtocol(discard{})
	net.Node(2).AttachProtocol(discard{})
	net.Start()
	s.RunUntil(time.Second)

	ann := &Update{Dst: 9, Path: []netsim.NodeID{2, 9}}
	wd := &Update{Withdrawn: []netsim.NodeID{9}}
	cycle := func() {
		net.Node(2).SendControl(0, ann)
		s.Run()
		net.Node(2).SendControl(0, wd)
		s.Run()
	}
	for i := 0; i < 16; i++ {
		cycle() // warm the intern table, pools, and event arena
	}
	const budget = 8
	avg := testing.AllocsPerRun(200, cycle)
	if avg > budget {
		t.Errorf("announce+withdraw cycle allocates %.1f objects, want ≤ %d", avg, budget)
	}
}
