package bgp

import (
	"testing"

	"routeconv/internal/routing"
)

// FuzzDecodeUpdate checks that the BGP decoder never panics on arbitrary
// input and that accepted messages round-trip.
func FuzzDecodeUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Update{Withdrawn: []routing.NodeID{1, 2}}).Encode())
	f.Add((&Update{Dst: 9, Path: []routing.NodeID{3, 5, 9}}).Encode())
	f.Add((&Update{Withdrawn: []routing.NodeID{7}, Dst: 9, Path: []routing.NodeID{3, 9}}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpdate(data)
		if err != nil {
			return
		}
		again, err := DecodeUpdate(u.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !pathsEq(again.Withdrawn, u.Withdrawn) || !pathsEq(again.Path, u.Path) {
			t.Fatalf("round trip changed: %+v → %+v", u, again)
		}
	})
}
