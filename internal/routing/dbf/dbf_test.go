package dbf

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routetest"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func build(t *testing.T, seed int64, g *topology.Graph) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	return routetest.Build(seed, g, netsim.DefaultConfig(), nil, Factory(routing.DefaultVectorConfig()))
}

func TestConvergesOnLine(t *testing.T) {
	g := topology.Line(5)
	s, net := build(t, 1, g)
	s.RunUntil(60 * time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestConvergesOnMesh(t *testing.T) {
	m, err := topology.NewMesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, net := build(t, 2, m.Graph)
	s.RunUntil(120 * time.Second)
	routetest.AssertShortestPaths(t, net, m.Graph)
}

func TestReroutesAfterFailure(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 3, g)
	s.RunUntil(120 * time.Second)
	routetest.AssertShortestPaths(t, net, g)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestRecoversAfterRestore(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 4, g)
	s.RunUntil(120 * time.Second)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	net.RestoreLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

// TestInstantSwitchover is the paper's §4.1 claim: with a cached alternate
// available, DBF repairs the forwarding table the instant the failure is
// detected, without waiting for any update exchange.
func TestInstantSwitchover(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. Node 0 reaches 3 via 1 or 2 at equal
	// cost; when the 0-1 link dies, 0 must switch to 2 immediately.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cfg := netsim.DefaultConfig()
	s, net := routetest.Build(5, g, cfg, nil, Factory(routing.DefaultVectorConfig()))
	s.RunUntil(120 * time.Second)

	nh, ok := net.Node(0).NextHop(3)
	if !ok {
		t.Fatal("no route 0→3 after warm-up")
	}
	failed := nh
	alternate := netsim.NodeID(3) - failed // the other of {1, 2}

	net.FailLink(0, failed)
	// Advance exactly to the detection instant plus one event.
	s.RunUntil(s.Now() + cfg.DetectDelay)
	nh, ok = net.Node(0).NextHop(3)
	if !ok {
		t.Fatal("DBF lost the route instead of switching to the cached alternate")
	}
	if nh != alternate {
		t.Errorf("next hop after failure = %d, want %d", nh, alternate)
	}
}

// TestPoisonedCacheGivesNoAlternate reproduces the §5.1 degree-4 effect: if
// every neighbor routes through us, their poisoned-reverse entries leave no
// usable alternate in the cache, so a failure blackholes traffic until the
// triggered-update cascade finds a detour.
func TestPoisonedCacheGivesNoAlternate(t *testing.T) {
	// Line 0-1-2: node 1 reaches 2 via 2, and node 0's entries are
	// poisoned. When link 1-2 dies, node 1 must have no route at the
	// detection instant.
	g := topology.Line(3)
	cfg := netsim.DefaultConfig()
	s, net := routetest.Build(6, g, cfg, nil, Factory(routing.DefaultVectorConfig()))
	s.RunUntil(120 * time.Second)
	net.FailLink(1, 2)
	s.RunUntil(s.Now() + cfg.DetectDelay)
	if _, ok := net.Node(1).NextHop(2); ok {
		t.Error("node 1 kept a route to 2 despite all cached alternates being poisoned")
	}
}

func TestCountsToNextBestNotInfinity(t *testing.T) {
	// The paper's §6 observation: with redundancy, DBF counts to the
	// next-best path instead of counting to infinity. Ring of 6: after the
	// 0-1 failure, 0's metric to 1 must settle at 5 (the long way), not 16.
	g := topology.Ring(6)
	s, net := build(t, 7, g)
	s.RunUntil(120 * time.Second)
	p := net.Node(0).Protocol().(*Protocol)
	if m, _, ok := p.Table(1); !ok || m != 1 {
		t.Fatalf("pre-failure metric to 1 = %d, want 1", m)
	}
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 120*time.Second)
	m, nh, ok := p.Table(1)
	if !ok || m != 5 {
		t.Errorf("post-failure metric to 1 = %d (ok=%v), want 5", m, ok)
	}
	if nh != 5 {
		t.Errorf("post-failure next hop = %d, want 5 (the other ring direction)", nh)
	}
}

func TestDetachedDestinationWithdrawn(t *testing.T) {
	g := topology.Line(3)
	s, net := build(t, 8, g)
	s.RunUntil(60 * time.Second)
	net.FailLink(1, 2)
	s.RunUntil(s.Now() + 150*time.Second)
	if _, ok := net.Node(0).NextHop(2); ok {
		t.Error("node 0 still routes to detached node 2")
	}
}

func TestIgnoresForeignMessages(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	net.Node(0).AttachProtocol(New(net.Node(0), routing.DefaultVectorConfig()))
	net.Node(1).AttachProtocol(New(net.Node(1), routing.DefaultVectorConfig()))
	net.Start()
	net.Node(1).SendControl(0, fakeMsg{})
	s.RunUntil(time.Second)
}

type fakeMsg struct{}

func (fakeMsg) SizeBytes() int { return 10 }

func TestStableNextHopUnderEqualCost(t *testing.T) {
	// With two equal-cost next hops, the chosen one must not flap between
	// periodic updates.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	s, net := build(t, 9, g)
	s.RunUntil(60 * time.Second)
	nh1, ok := net.Node(0).NextHop(3)
	if !ok {
		t.Fatal("no route after warm-up")
	}
	s.RunUntil(300 * time.Second)
	nh2, ok := net.Node(0).NextHop(3)
	if !ok || nh1 != nh2 {
		t.Errorf("equal-cost next hop flapped: %d → %d", nh1, nh2)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		g := topology.Ring(8)
		s, net := build(t, 42, g)
		s.RunUntil(60 * time.Second)
		net.FailLink(0, 1)
		s.RunUntil(120 * time.Second)
		return net.Stats().ControlSent + net.Stats().ControlBytes
	}
	if run() != run() {
		t.Error("identical seeds produced different control traffic")
	}
}

func TestECMPInstallsEqualCostNeighbors(t *testing.T) {
	g := topology.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cfg := routing.DefaultVectorConfig()
	cfg.ECMP = true
	s, net := routetest.Build(10, g, netsim.DefaultConfig(), nil, Factory(cfg))
	s.RunUntil(120 * time.Second)
	set := net.Node(0).Multipath(3)
	if len(set) != 2 {
		t.Errorf("Multipath(3) = %v, want two equal-cost next hops", set)
	}
	routetest.AssertShortestPaths(t, net, g)

	net.FailLink(1, 3)
	s.RunUntil(s.Now() + 60*time.Second)
	if mp := net.Node(0).Multipath(3); mp != nil {
		t.Errorf("Multipath(3) after failure = %v, want nil", mp)
	}
}
