package dbf

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// A skipped re-advertisement must not allocate: the liveness refresh
// rewrites an existing map key, and the watermark comparison plus the
// skip counter touch only persistent state.
func TestSkippedAdvertisementAllocs(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	net.Instrument(obs.NewMetrics(), nil)
	cfg := routing.DefaultVectorConfig()
	p0 := New(net.Node(0), cfg)
	p1 := New(net.Node(1), cfg)
	net.Node(0).AttachProtocol(p0)
	net.Node(1).AttachProtocol(p1)
	net.Start()
	s.RunUntil(120 * time.Second)

	sv, ok := p0.seen[1]
	if !ok || sv != p1.ver {
		t.Fatalf("skip watermark not armed (ok=%v seen=%d sender ver=%d)", ok, sv, p1.ver)
	}

	// Re-send node 1's full table exactly as broadcastFull stages it.
	p1.stage(false)
	defer p1.snd.End()
	views := p1.snd.Views(nil, &p1.cfg, 0)
	if len(views) != 1 {
		t.Fatalf("staged full packed into %d chunks, want 1", len(views))
	}
	u := views[0]
	met := net.Node(0).Metrics()
	before := met.Get(obs.ProtoAdvSkipped)
	p0.HandleMessage(1, u)
	if met.Get(obs.ProtoAdvSkipped) <= before {
		t.Fatal("re-sent full was not skipped")
	}
	avg := testing.AllocsPerRun(100, func() { p0.HandleMessage(1, u) })
	if avg != 0 {
		t.Errorf("skipped advertisement allocates %.1f objects, want 0", avg)
	}
}
