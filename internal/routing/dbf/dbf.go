// Package dbf implements the Distributed Bellman-Ford protocol of the
// paper's §3 (Bertsekas & Gallager): identical to RIP on the wire, but each
// router additionally caches the latest distance vector heard from every
// neighbor. When the current next hop is lost, the router recomputes from
// the cache and switches to an alternate instantly — the zero-time path
// switch-over of §4.1. Poisoned-reverse entries live in the cache as
// infinity, so at low node degree the cached alternates may all be invalid,
// exactly as the paper's degree-4 example describes.
package dbf

import (
	"sort"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// housekeepInterval is how often neighbor liveness is scanned.
const housekeepInterval = time.Second

// best is the computed route for one destination.
type best struct {
	metric  int
	nextHop routing.NodeID
	changed bool // included in the next triggered update
}

// Protocol is a DBF speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  routing.VectorConfig
	// cache holds, per neighbor, the latest metric heard per destination
	// (after the neighbor's split-horizon processing).
	cache     map[routing.NodeID]map[routing.NodeID]int
	lastHeard map[routing.NodeID]time.Duration
	table     map[routing.NodeID]*best
	up        map[routing.NodeID]bool
	adv       *routing.Advertiser
	hk        *sim.Timer
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a DBF instance for the node.
func New(node *netsim.Node, cfg routing.VectorConfig) *Protocol {
	p := &Protocol{
		node:      node,
		cfg:       cfg,
		cache:     make(map[routing.NodeID]map[routing.NodeID]int),
		lastHeard: make(map[routing.NodeID]time.Duration),
		table:     make(map[routing.NodeID]*best),
		up:        make(map[routing.NodeID]bool),
	}
	p.adv = routing.NewAdvertiser(node.Sim(), &p.cfg, p.broadcastFull, p.broadcastChanged)
	p.hk = sim.NewTimer(node.Sim(), p.housekeep)
	return p
}

// Factory returns a constructor suitable for attaching DBF to every node.
func Factory(cfg routing.VectorConfig) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Table returns the computed metric and next hop for dst. Exposed for
// tests and tools.
func (p *Protocol) Table(dst routing.NodeID) (metric int, nextHop routing.NodeID, ok bool) {
	b, ok := p.table[dst]
	if !ok {
		return 0, 0, false
	}
	return b.metric, b.nextHop, true
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	self := p.node.ID()
	p.table[self] = &best{metric: 0, nextHop: self}
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
		p.cache[n] = make(map[routing.NodeID]int)
	}
	p.adv.Start()
	p.hk.Reset(housekeepInterval)
	p.broadcastFull()
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*routing.VectorUpdate)
	if !ok {
		return
	}
	c := p.cache[from]
	if c == nil {
		c = make(map[routing.NodeID]int)
		p.cache[from] = c
	}
	p.lastHeard[from] = p.node.Sim().Now()
	changedAny := false
	for _, e := range u.Entries {
		m := e.Metric
		if m > p.cfg.Infinity {
			m = p.cfg.Infinity
		}
		if old, seen := c[e.Dst]; seen && old == m {
			continue
		}
		c[e.Dst] = m
		if p.recompute(e.Dst) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// recompute re-runs the Bellman-Ford minimization for dst over all cached
// neighbor vectors and reports whether the advertised metric changed.
// The current next hop is preferred among ties so routes do not oscillate.
func (p *Protocol) recompute(dst routing.NodeID) bool {
	if dst == p.node.ID() {
		return false
	}
	cur := p.table[dst]
	bestMetric := p.cfg.Infinity
	bestNext := routing.NodeID(-1)
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		heard, ok := p.cache[n][dst]
		if !ok {
			continue
		}
		m := heard + 1 // unit link cost
		if m > p.cfg.Infinity {
			m = p.cfg.Infinity
		}
		if m < bestMetric || (m == bestMetric && cur != nil && n == cur.nextHop) {
			bestMetric = m
			bestNext = n
		}
	}
	if p.cfg.ECMP {
		p.installMultipath(dst, bestMetric)
	}
	switch {
	case bestMetric >= p.cfg.Infinity:
		if cur == nil || cur.metric >= p.cfg.Infinity {
			return false
		}
		cur.metric = p.cfg.Infinity
		cur.changed = true
		p.node.ClearRoute(dst)
		return true

	case cur == nil:
		p.table[dst] = &best{metric: bestMetric, nextHop: bestNext, changed: true}
		p.node.SetRoute(dst, bestNext)
		return true

	default:
		metricChanged := cur.metric != bestMetric
		if cur.nextHop != bestNext || cur.metric >= p.cfg.Infinity {
			p.node.SetRoute(dst, bestNext)
		}
		cur.metric = bestMetric
		cur.nextHop = bestNext
		if metricChanged {
			cur.changed = true
		}
		return metricChanged
	}
}

// installMultipath installs every up neighbor achieving the minimum metric
// as the ECMP set for dst (cleared when unreachable or single-path).
func (p *Protocol) installMultipath(dst routing.NodeID, bestMetric int) {
	if bestMetric >= p.cfg.Infinity {
		p.node.SetMultipath(dst, nil)
		return
	}
	var set []routing.NodeID
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		if heard, ok := p.cache[n][dst]; ok && heard+1 == bestMetric {
			set = append(set, n)
		}
	}
	p.node.SetMultipath(dst, set)
}

// LinkDown implements netsim.Protocol: the neighbor's cached vector is
// discarded and every destination is recomputed, switching instantly to
// alternates where the cache holds any.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	delete(p.cache, neighbor)
	p.recomputeAll()
}

// LinkUp implements netsim.Protocol.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	p.cache[neighbor] = make(map[routing.NodeID]int)
	p.sendTable(neighbor, false)
}

// recomputeAll re-minimizes every known destination.
func (p *Protocol) recomputeAll() {
	changedAny := false
	for _, dst := range p.knownDsts() {
		if p.recompute(dst) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// housekeep expires neighbors that have been silent past the timeout.
func (p *Protocol) housekeep() {
	now := p.node.Sim().Now()
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		heard, ok := p.lastHeard[n]
		if ok && now-heard > p.cfg.Timeout {
			p.cache[n] = make(map[routing.NodeID]int)
			delete(p.lastHeard, n)
			p.recomputeAll()
		}
	}
	p.hk.Reset(housekeepInterval)
}

func (p *Protocol) broadcastFull() {
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendTable(n, false)
		}
	}
	p.clearChanged()
}

func (p *Protocol) broadcastChanged() {
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendTable(n, true)
		}
	}
	p.clearChanged()
}

// sendTable composes and transmits update messages to one neighbor with
// split horizon (poisoned reverse when configured).
func (p *Protocol) sendTable(to routing.NodeID, changedOnly bool) {
	var entries []routing.VectorEntry
	for _, dst := range p.knownDsts() {
		b := p.table[dst]
		if b == nil || (changedOnly && !b.changed) {
			continue
		}
		metric := b.metric
		if b.nextHop == to && dst != p.node.ID() {
			if !p.cfg.PoisonReverse {
				continue
			}
			metric = p.cfg.Infinity
		}
		entries = append(entries, routing.VectorEntry{Dst: dst, Metric: metric})
	}
	for _, msg := range p.cfg.PackEntries(entries) {
		p.node.SendControl(to, msg)
	}
}

func (p *Protocol) clearChanged() {
	for _, b := range p.table {
		b.changed = false
	}
}

// knownDsts returns every destination present in the table or any cache,
// in ascending order for determinism.
func (p *Protocol) knownDsts() []routing.NodeID {
	set := make(map[routing.NodeID]bool, len(p.table))
	for d := range p.table {
		set[d] = true
	}
	for _, c := range p.cache {
		for d := range c {
			set[d] = true
		}
	}
	dsts := make([]routing.NodeID, 0, len(set))
	for d := range set {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	return dsts
}
