// Package dbf implements the Distributed Bellman-Ford protocol of the
// paper's §3 (Bertsekas & Gallager): identical to RIP on the wire, but each
// router additionally caches the latest distance vector heard from every
// neighbor. When the current next hop is lost, the router recomputes from
// the cache and switches to an alternate instantly — the zero-time path
// switch-over of §4.1. Poisoned-reverse entries live in the cache as
// infinity, so at low node degree the cached alternates may all be invalid,
// exactly as the paper's degree-4 example describes.
package dbf

import (
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// housekeepInterval is how often neighbor liveness is scanned.
const housekeepInterval = time.Second

// cacheAbsent marks a destination never heard from a neighbor.
const cacheAbsent = -1

// best is the computed route for one destination.
type best struct {
	metric  int
	nextHop routing.NodeID
	changed bool // included in the next triggered update
	valid   bool // slot holds a live entry
}

// Protocol is a DBF speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  routing.VectorConfig
	// cache holds, per neighbor, the latest metric heard per destination
	// (after the neighbor's split-horizon processing). Both dimensions are
	// dense, indexed by node ID, with cacheAbsent marking unheard entries.
	cache     [][]int32
	lastHeard map[routing.NodeID]time.Duration
	// table is dense, indexed by destination ID; invalid slots are absent.
	table []best
	// known records every destination ever present in the table or a
	// neighbor cache. It is monotone: entries are never unlearned, which is
	// behaviour-neutral because recompute and sendTable both no-op for a
	// destination with no table entry and no cached vector.
	known []bool
	up    map[routing.NodeID]bool
	adv   *routing.Advertiser
	hk    *sim.Timer
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a DBF instance for the node.
func New(node *netsim.Node, cfg routing.VectorConfig) *Protocol {
	p := &Protocol{
		node:      node,
		cfg:       cfg,
		lastHeard: make(map[routing.NodeID]time.Duration),
		up:        make(map[routing.NodeID]bool),
	}
	p.adv = routing.NewAdvertiser(node.Sim(), &p.cfg, p.broadcastFull, p.broadcastChanged)
	p.hk = sim.NewTimer(node.Sim(), p.housekeep)
	return p
}

// Factory returns a constructor suitable for attaching DBF to every node.
func Factory(cfg routing.VectorConfig) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Table returns the computed metric and next hop for dst. Exposed for
// tests and tools.
func (p *Protocol) Table(dst routing.NodeID) (metric int, nextHop routing.NodeID, ok bool) {
	b := p.entry(dst)
	if b == nil {
		return 0, 0, false
	}
	return b.metric, b.nextHop, true
}

// entry returns the live table entry for dst, or nil.
func (p *Protocol) entry(dst routing.NodeID) *best {
	if dst >= 0 && int(dst) < len(p.table) && p.table[dst].valid {
		return &p.table[dst]
	}
	return nil
}

// insert claims the table slot for dst, growing on demand, and returns it
// zeroed with valid set.
func (p *Protocol) insert(dst routing.NodeID) *best {
	if int(dst) >= len(p.table) {
		grown := make([]best, dst+1)
		copy(grown, p.table)
		p.table = grown
	}
	p.table[dst] = best{valid: true}
	p.markKnown(dst)
	return &p.table[dst]
}

// markKnown records dst in the known set.
func (p *Protocol) markKnown(dst routing.NodeID) {
	if int(dst) >= len(p.known) {
		grown := make([]bool, dst+1)
		copy(grown, p.known)
		p.known = grown
	}
	p.known[dst] = true
}

// cacheGet returns the metric last heard from neighbor n for dst.
func (p *Protocol) cacheGet(n, dst routing.NodeID) (int, bool) {
	if int(n) < len(p.cache) {
		c := p.cache[n]
		if int(dst) < len(c) && c[dst] != cacheAbsent {
			return int(c[dst]), true
		}
	}
	return 0, false
}

// cacheSet records the metric heard from neighbor n for dst, growing both
// cache dimensions on demand.
func (p *Protocol) cacheSet(n, dst routing.NodeID, m int) {
	if int(n) >= len(p.cache) {
		grown := make([][]int32, n+1)
		copy(grown, p.cache)
		p.cache = grown
	}
	c := p.cache[n]
	if int(dst) >= len(c) {
		grown := make([]int32, dst+1)
		for i := range grown {
			grown[i] = cacheAbsent
		}
		copy(grown, c)
		p.cache[n] = grown
		c = grown
	}
	c[dst] = int32(m)
	p.markKnown(dst)
}

// clearCache forgets everything heard from neighbor n, keeping the
// allocation for reuse.
func (p *Protocol) clearCache(n routing.NodeID) {
	if int(n) < len(p.cache) {
		c := p.cache[n]
		for i := range c {
			c[i] = cacheAbsent
		}
	}
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	self := p.node.ID()
	b := p.insert(self)
	b.metric, b.nextHop = 0, self
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
	}
	p.adv.Start()
	p.hk.Reset(housekeepInterval)
	p.broadcastFull()
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*routing.VectorUpdate)
	if !ok {
		return
	}
	p.node.Metrics().Inc(obs.ProtoUpdatesReceived)
	p.lastHeard[from] = p.node.Sim().Now()
	changedAny := false
	for _, e := range u.Entries {
		m := e.Metric
		if m > p.cfg.Infinity {
			m = p.cfg.Infinity
		}
		if old, seen := p.cacheGet(from, e.Dst); seen && old == m {
			continue
		}
		p.cacheSet(from, e.Dst, m)
		if p.recompute(e.Dst) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// recompute re-runs the Bellman-Ford minimization for dst over all cached
// neighbor vectors and reports whether the advertised metric changed.
// The current next hop is preferred among ties so routes do not oscillate.
func (p *Protocol) recompute(dst routing.NodeID) bool {
	if dst == p.node.ID() {
		return false
	}
	p.node.Metrics().Inc(obs.ProtoDecisionRuns)
	cur := p.entry(dst)
	bestMetric := p.cfg.Infinity
	bestNext := routing.NodeID(-1)
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		heard, ok := p.cacheGet(n, dst)
		if !ok {
			continue
		}
		m := heard + 1 // unit link cost
		if m > p.cfg.Infinity {
			m = p.cfg.Infinity
		}
		if m < bestMetric || (m == bestMetric && cur != nil && n == cur.nextHop) {
			bestMetric = m
			bestNext = n
		}
	}
	if p.cfg.ECMP {
		p.installMultipath(dst, bestMetric)
	}
	switch {
	case bestMetric >= p.cfg.Infinity:
		if cur == nil || cur.metric >= p.cfg.Infinity {
			return false
		}
		cur.metric = p.cfg.Infinity
		cur.changed = true
		p.node.ClearRoute(dst)
		return true

	case cur == nil:
		b := p.insert(dst)
		b.metric, b.nextHop, b.changed = bestMetric, bestNext, true
		p.node.SetRoute(dst, bestNext)
		return true

	default:
		metricChanged := cur.metric != bestMetric
		if cur.nextHop != bestNext || cur.metric >= p.cfg.Infinity {
			p.node.SetRoute(dst, bestNext)
		}
		cur.metric = bestMetric
		cur.nextHop = bestNext
		if metricChanged {
			cur.changed = true
		}
		return metricChanged
	}
}

// installMultipath installs every up neighbor achieving the minimum metric
// as the ECMP set for dst (cleared when unreachable or single-path).
func (p *Protocol) installMultipath(dst routing.NodeID, bestMetric int) {
	if bestMetric >= p.cfg.Infinity {
		p.node.SetMultipath(dst, nil)
		return
	}
	var set []routing.NodeID
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		if heard, ok := p.cacheGet(n, dst); ok && heard+1 == bestMetric {
			set = append(set, n)
		}
	}
	p.node.SetMultipath(dst, set)
}

// LinkDown implements netsim.Protocol: the neighbor's cached vector is
// discarded and every destination is recomputed, switching instantly to
// alternates where the cache holds any.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	p.clearCache(neighbor)
	p.recomputeAll()
}

// LinkUp implements netsim.Protocol.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	p.clearCache(neighbor)
	p.sendTable(neighbor, false)
}

// recomputeAll re-minimizes every known destination.
func (p *Protocol) recomputeAll() {
	changedAny := false
	for dst := routing.NodeID(0); int(dst) < len(p.known); dst++ {
		if p.known[dst] && p.recompute(dst) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// housekeep expires neighbors that have been silent past the timeout.
func (p *Protocol) housekeep() {
	now := p.node.Sim().Now()
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		heard, ok := p.lastHeard[n]
		if ok && now-heard > p.cfg.Timeout {
			p.clearCache(n)
			delete(p.lastHeard, n)
			p.recomputeAll()
		}
	}
	p.hk.Reset(housekeepInterval)
}

func (p *Protocol) broadcastFull() {
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendTable(n, false)
		}
	}
	p.clearChanged()
}

func (p *Protocol) broadcastChanged() {
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendTable(n, true)
		}
	}
	p.clearChanged()
}

// sendTable composes and transmits update messages to one neighbor with
// split horizon (poisoned reverse when configured).
func (p *Protocol) sendTable(to routing.NodeID, changedOnly bool) {
	var entries []routing.VectorEntry
	for dst := routing.NodeID(0); int(dst) < len(p.known); dst++ {
		if !p.known[dst] {
			continue
		}
		b := p.entry(dst)
		if b == nil || (changedOnly && !b.changed) {
			continue
		}
		metric := b.metric
		if b.nextHop == to && dst != p.node.ID() {
			if !p.cfg.PoisonReverse {
				continue
			}
			metric = p.cfg.Infinity
		}
		entries = append(entries, routing.VectorEntry{Dst: dst, Metric: metric})
	}
	for _, msg := range p.cfg.PackEntries(entries) {
		p.node.Metrics().Inc(obs.ProtoUpdatesSent)
		p.node.SendControl(to, msg)
	}
}

func (p *Protocol) clearChanged() {
	for i := range p.table {
		p.table[i].changed = false
	}
}
