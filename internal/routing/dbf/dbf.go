// Package dbf implements the Distributed Bellman-Ford protocol of the
// paper's §3 (Bertsekas & Gallager): identical to RIP on the wire, but each
// router additionally caches the latest distance vector heard from every
// neighbor. When the current next hop is lost, the router recomputes from
// the cache and switches to an alternate instantly — the zero-time path
// switch-over of §4.1. Poisoned-reverse entries live in the cache as
// infinity, so at low node degree the cached alternates may all be invalid,
// exactly as the paper's degree-4 example describes.
package dbf

import (
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// housekeepInterval is how often neighbor liveness is scanned.
const housekeepInterval = time.Second

// cacheAbsent marks a destination never heard from a neighbor.
const cacheAbsent = -1

// best is the computed route for one destination.
type best struct {
	metric  int
	nextHop routing.NodeID
	changed bool // included in the next triggered update
	valid   bool // slot holds a live entry
}

// Protocol is a DBF speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  routing.VectorConfig
	// cache holds, per neighbor, the latest metric heard per destination
	// (after the neighbor's split-horizon processing). Both dimensions are
	// dense, indexed by node ID, with cacheAbsent marking unheard entries.
	cache     [][]int32
	lastHeard map[routing.NodeID]time.Duration
	// table is dense, indexed by destination ID; invalid slots are absent.
	table []best
	// known records every destination ever present in the table or a
	// neighbor cache. It is monotone: entries are never unlearned, which is
	// behaviour-neutral because recompute and the update collector both
	// no-op for a destination with no table entry and no cached vector.
	known []bool
	up    map[routing.NodeID]bool
	adv   *routing.Advertiser
	hk    *sim.Timer
	// ver is the monotone change-version clock: it advances whenever the
	// advertised table state changes — metric, next hop (the poison
	// pattern of full updates depends on it), or entry liveness.
	ver uint64
	// seen holds, per neighbor, the version stamp of the last FULL
	// advertisement incorporated into the cache; map presence means the
	// cache mirrored the neighbor's table exactly at that stamp (torn
	// down whenever clearCache forgets the neighbor). Only fulls advance
	// it: triggered updates omit next-hop-only tie switches, which change
	// the poison pattern the stamp vouches for. A re-advertisement at or
	// below the stamp can only repeat cache-equal entries, so the
	// receiver skips the whole chunk.
	seen map[routing.NodeID]uint64
	// snd stages advertisement bursts once per broadcast into a shared
	// pooled snapshot; per-neighbor messages are index views with
	// read-time poisoned reverse (see routing.BurstSender).
	snd routing.BurstSender
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a DBF instance for the node.
func New(node *netsim.Node, cfg routing.VectorConfig) *Protocol {
	p := &Protocol{
		node:      node,
		cfg:       cfg,
		lastHeard: make(map[routing.NodeID]time.Duration),
		up:        make(map[routing.NodeID]bool),
		seen:      make(map[routing.NodeID]uint64),
	}
	p.adv = routing.NewAdvertiser(node, &p.cfg, p.broadcastFull, p.broadcastChanged)
	p.hk = sim.NewTimer(node.Sim(), p.housekeep)
	return p
}

// Factory returns a constructor suitable for attaching DBF to every node.
func Factory(cfg routing.VectorConfig) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Table returns the computed metric and next hop for dst. Exposed for
// tests and tools.
func (p *Protocol) Table(dst routing.NodeID) (metric int, nextHop routing.NodeID, ok bool) {
	b := p.entry(dst)
	if b == nil {
		return 0, 0, false
	}
	return b.metric, b.nextHop, true
}

// entry returns the live table entry for dst, or nil.
func (p *Protocol) entry(dst routing.NodeID) *best {
	if dst >= 0 && int(dst) < len(p.table) && p.table[dst].valid {
		return &p.table[dst]
	}
	return nil
}

// insert claims the table slot for dst, growing on demand, and returns it
// zeroed with valid set. Start presizes the table to the network, so growth
// here only triggers for unit tests that inject out-of-range IDs; it
// doubles anyway so repeated single-destination growth stays amortized.
func (p *Protocol) insert(dst routing.NodeID) *best {
	if int(dst) >= len(p.table) {
		n := int(dst) + 1
		if n < 2*len(p.table) {
			n = 2 * len(p.table)
		}
		grown := make([]best, n)
		copy(grown, p.table)
		p.table = grown
	}
	p.table[dst] = best{valid: true}
	p.markKnown(dst)
	return &p.table[dst]
}

// markKnown records dst in the known set.
func (p *Protocol) markKnown(dst routing.NodeID) {
	if int(dst) >= len(p.known) {
		n := int(dst) + 1
		if n < 2*len(p.known) {
			n = 2 * len(p.known)
		}
		grown := make([]bool, n)
		copy(grown, p.known)
		p.known = grown
	}
	p.known[dst] = true
}

// cacheGet returns the metric last heard from neighbor n for dst.
func (p *Protocol) cacheGet(n, dst routing.NodeID) (int, bool) {
	if int(n) < len(p.cache) {
		c := p.cache[n]
		if int(dst) < len(c) && c[dst] != cacheAbsent {
			return int(c[dst]), true
		}
	}
	return 0, false
}

// cacheSet records the metric heard from neighbor n for dst, growing both
// cache dimensions on demand.
func (p *Protocol) cacheSet(n, dst routing.NodeID, m int) {
	if int(n) >= len(p.cache) {
		sz := int(n) + 1
		if sz < 2*len(p.cache) {
			sz = 2 * len(p.cache)
		}
		grown := make([][]int32, sz)
		copy(grown, p.cache)
		p.cache = grown
	}
	c := p.cache[n]
	if int(dst) >= len(c) {
		// A neighbor that announces one destination will announce most of
		// them, so size new rows to the whole network immediately rather
		// than growing per destination.
		sz := int(dst) + 1
		if sz < 2*len(c) {
			sz = 2 * len(c)
		}
		if full := p.node.NetworkSize(); sz < full {
			sz = full
		}
		grown := make([]int32, sz)
		for i := len(c); i < len(grown); i++ {
			grown[i] = cacheAbsent
		}
		copy(grown, c)
		p.cache[n] = grown
		c = grown
	}
	c[dst] = int32(m)
	p.markKnown(dst)
}

// clearCache forgets everything heard from neighbor n, keeping the
// allocation for reuse.
func (p *Protocol) clearCache(n routing.NodeID) {
	delete(p.seen, n)
	if int(n) < len(p.cache) {
		c := p.cache[n]
		for i := range c {
			c[i] = cacheAbsent
		}
	}
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	// Node IDs are contiguous from 0, so size the dense per-destination
	// state to the network up front; growing it one new maximum destination
	// at a time is quadratic memory traffic on a 10k-node graph (the same
	// idiom as ls and bgp).
	if n := p.node.NetworkSize(); n > len(p.table) {
		table := make([]best, n)
		copy(table, p.table)
		p.table = table
		known := make([]bool, n)
		copy(known, p.known)
		p.known = known
	}
	self := p.node.ID()
	b := p.insert(self)
	b.metric, b.nextHop = 0, self
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
	}
	p.adv.Start()
	p.hk.Reset(housekeepInterval)
	p.broadcastFull()
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*routing.VectorUpdate)
	if !ok {
		return
	}
	met := p.node.Metrics()
	met.Inc(obs.ProtoUpdatesReceived)
	p.lastHeard[from] = p.node.Sim().Now()
	n := u.Len()
	b := u.Burst()
	if b != nil {
		// Whole-chunk skip: the neighbor re-advertises a snapshot version
		// whose content the cache already mirrors, so every entry would
		// hit the cache-equality continue below. The liveness refresh
		// above is the only remaining effect and has already happened.
		if sv, ok := p.seen[from]; ok && b.Ver <= sv {
			met.Add(obs.ProtoAdvSkipped, uint64(n))
			return
		}
	}
	changedAny := false
	// View iteration keeps the hot loop free of per-entry call overhead;
	// the read-time poisoned reverse EntryAt applies is inlined here (nhs
	// is nil for explicit updates, which carry literal entries).
	ents, nhs, origin, binf := u.View()
	self := p.node.ID()
	for i, e := range ents {
		if nhs != nil && nhs[i] == self && e.Dst != origin {
			e.Metric = binf
		}
		m := int(e.Metric)
		if m > p.cfg.Infinity {
			m = p.cfg.Infinity
		}
		if old, seen := p.cacheGet(from, e.Dst); seen && old == m {
			continue
		}
		p.cacheSet(from, e.Dst, m)
		if p.recompute(e.Dst) {
			changedAny = true
		}
	}
	if b != nil && b.Full && u.LastChunk() {
		p.seen[from] = b.Ver
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// recompute re-runs the Bellman-Ford minimization for dst over all cached
// neighbor vectors and reports whether the advertised metric changed.
// The current next hop is preferred among ties so routes do not oscillate.
func (p *Protocol) recompute(dst routing.NodeID) bool {
	if dst == p.node.ID() {
		return false
	}
	p.node.Metrics().Inc(obs.ProtoDecisionRuns)
	cur := p.entry(dst)
	bestMetric := p.cfg.Infinity
	bestNext := routing.NodeID(-1)
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		heard, ok := p.cacheGet(n, dst)
		if !ok {
			continue
		}
		m := heard + 1 // unit link cost
		if m > p.cfg.Infinity {
			m = p.cfg.Infinity
		}
		if m < bestMetric || (m == bestMetric && cur != nil && n == cur.nextHop) {
			bestMetric = m
			bestNext = n
		}
	}
	if p.cfg.ECMP {
		p.installMultipath(dst, bestMetric)
	}
	switch {
	case bestMetric >= p.cfg.Infinity:
		if cur == nil || cur.metric >= p.cfg.Infinity {
			return false
		}
		cur.metric = p.cfg.Infinity
		cur.changed = true
		p.ver++
		p.node.ClearRoute(dst)
		return true

	case cur == nil:
		b := p.insert(dst)
		b.metric, b.nextHop, b.changed = bestMetric, bestNext, true
		p.ver++
		p.node.SetRoute(dst, bestNext)
		return true

	default:
		metricChanged := cur.metric != bestMetric
		if metricChanged || cur.nextHop != bestNext {
			// Next-hop-only tie switches change no advertised metric, but
			// they flip the poisoned-reverse pattern of the next full
			// update, so the version clock must advance for them too.
			p.ver++
		}
		if cur.nextHop != bestNext || cur.metric >= p.cfg.Infinity {
			p.node.SetRoute(dst, bestNext)
		}
		cur.metric = bestMetric
		cur.nextHop = bestNext
		if metricChanged {
			cur.changed = true
		}
		return metricChanged
	}
}

// installMultipath installs every up neighbor achieving the minimum metric
// as the ECMP set for dst (cleared when unreachable or single-path).
func (p *Protocol) installMultipath(dst routing.NodeID, bestMetric int) {
	if bestMetric >= p.cfg.Infinity {
		p.node.SetMultipath(dst, nil)
		return
	}
	var set []routing.NodeID
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		if heard, ok := p.cacheGet(n, dst); ok && heard+1 == bestMetric {
			set = append(set, n)
		}
	}
	p.node.SetMultipath(dst, set)
}

// LinkDown implements netsim.Protocol: the neighbor's cached vector is
// discarded and every destination is recomputed, switching instantly to
// alternates where the cache holds any.
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	p.clearCache(neighbor)
	p.recomputeAll()
}

// LinkUp implements netsim.Protocol.
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	p.clearCache(neighbor)
	p.stage(false)
	p.sendStaged(neighbor)
	p.snd.End()
}

// recomputeAll re-minimizes every known destination.
func (p *Protocol) recomputeAll() {
	changedAny := false
	for dst := routing.NodeID(0); int(dst) < len(p.known); dst++ {
		if p.known[dst] && p.recompute(dst) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// housekeep expires neighbors that have been silent past the timeout.
func (p *Protocol) housekeep() {
	now := p.node.Sim().Now()
	for _, n := range p.node.Neighbors() {
		if !p.up[n] {
			continue
		}
		heard, ok := p.lastHeard[n]
		if ok && now-heard > p.cfg.Timeout {
			p.clearCache(n)
			delete(p.lastHeard, n)
			p.recomputeAll()
		}
	}
	p.hk.Reset(housekeepInterval)
}

func (p *Protocol) broadcastFull() {
	p.stage(false)
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendStaged(n)
		}
	}
	p.snd.End()
	p.clearChanged()
}

func (p *Protocol) broadcastChanged() {
	p.stage(true)
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendStaged(n)
		}
	}
	p.snd.End()
	p.clearChanged()
}

// stage snapshots the live (optionally changed-only) routes for
// advertisement, in ascending destination order, into the shared pooled
// burst that all per-neighbor messages of this broadcast view.
func (p *Protocol) stage(changedOnly bool) {
	b := p.snd.Begin(p.node.ID(), int32(p.cfg.Infinity), p.ver, !changedOnly)
	for dst := routing.NodeID(0); int(dst) < len(p.known); dst++ {
		if !p.known[dst] {
			continue
		}
		e := p.entry(dst)
		if e == nil || (changedOnly && !e.changed) {
			continue
		}
		b.Entries = append(b.Entries, routing.VectorEntry{Dst: dst, Metric: int32(e.metric)})
		b.NextHop = append(b.NextHop, e.nextHop)
	}
}

// sendStaged transmits the staged burst to one neighbor. With poisoned
// reverse the per-neighbor wire images differ only in poisoned metric
// values, so the messages are zero-copy views of the shared snapshot;
// plain split horizon (§4.2 ablation) omits entries instead, changing
// per-neighbor lengths, so that path materializes an explicit list
// exactly as before.
func (p *Protocol) sendStaged(to routing.NodeID) {
	b := p.snd.Staged()
	if len(b.Entries) == 0 {
		return
	}
	if p.cfg.PoisonReverse {
		sent := p.snd.SendTo(p.node, &p.cfg, to)
		p.node.Metrics().Add(obs.ProtoUpdatesSent, uint64(sent))
		return
	}
	entries := make([]routing.VectorEntry, 0, len(b.Entries))
	self := p.node.ID()
	for i, e := range b.Entries {
		if b.NextHop[i] == to && e.Dst != self {
			continue // plain split horizon: stay silent
		}
		entries = append(entries, e)
	}
	for _, msg := range p.cfg.PackEntries(entries) {
		p.node.Metrics().Inc(obs.ProtoUpdatesSent)
		p.node.SendControl(to, msg)
	}
}

func (p *Protocol) clearChanged() {
	for i := range p.table {
		p.table[i].changed = false
	}
}
