package dbf_test

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing"
	"routeconv/internal/routing/conformance"
	"routeconv/internal/routing/dbf"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Params{
		Name:    "dbf",
		Factory: func(n *netsim.Node) netsim.Protocol { return dbf.New(n, routing.DefaultVectorConfig()) },
		Settle:  150 * time.Second,
	})
}

func TestConformanceECMP(t *testing.T) {
	cfg := routing.DefaultVectorConfig()
	cfg.ECMP = true
	conformance.Run(t, conformance.Params{
		Name:    "dbf-ecmp",
		Factory: func(n *netsim.Node) netsim.Protocol { return dbf.New(n, cfg) },
		Settle:  150 * time.Second,
	})
}
