package routing

import (
	"encoding/binary"
	"fmt"
)

// Wire format (RFC 2453): a 4-byte header (command, version, zero) followed
// by 20-byte route entries (AFI, route tag, address, mask, next hop,
// metric). Node IDs map onto 10.0.0.0/8 host addresses. The VectorConfig
// size model (HeaderBytes = 4 + 28 bytes of UDP/IP, EntryBytes = 20)
// matches this encoding exactly; TestWireSizeModel pins that.
const (
	ripCommandResponse = 2
	ripVersion         = 2
	ripHeaderLen       = 4
	ripEntryLen        = 20
	ripAFIInet         = 2
	// UDPIPOverhead is the transport framing a RIP payload rides in.
	UDPIPOverhead = 28
)

// addrForNode maps a node ID into 10.0.0.0/8.
func addrForNode(id NodeID) uint32 { return 0x0A00_0000 | uint32(id)&0x00FF_FFFF }

// nodeForAddr inverts addrForNode.
func nodeForAddr(addr uint32) NodeID { return NodeID(addr & 0x00FF_FFFF) }

// Encode renders the update as an RFC 2453 RIP response payload.
func (u *VectorUpdate) Encode() []byte {
	n := u.Len()
	buf := make([]byte, ripHeaderLen+ripEntryLen*n)
	buf[0] = ripCommandResponse
	buf[1] = ripVersion
	for i := 0; i < n; i++ {
		e := u.EntryAt(i)
		off := ripHeaderLen + i*ripEntryLen
		binary.BigEndian.PutUint16(buf[off:], ripAFIInet)
		// Route tag (2 bytes) stays zero.
		binary.BigEndian.PutUint32(buf[off+4:], addrForNode(e.Dst))
		binary.BigEndian.PutUint32(buf[off+8:], 0xFFFF_FFFF) // host mask
		// Next hop (4 bytes) stays zero: "use the sender".
		binary.BigEndian.PutUint32(buf[off+16:], uint32(e.Metric))
	}
	return buf
}

// DecodeVectorUpdate parses an RFC 2453 RIP response payload. The returned
// update carries the given size model so SizeBytes matches the original.
func DecodeVectorUpdate(buf []byte, cfg *VectorConfig) (*VectorUpdate, error) {
	if len(buf) < ripHeaderLen {
		return nil, fmt.Errorf("routing: RIP payload too short (%d bytes)", len(buf))
	}
	if buf[0] != ripCommandResponse {
		return nil, fmt.Errorf("routing: unsupported RIP command %d", buf[0])
	}
	if buf[1] != ripVersion {
		return nil, fmt.Errorf("routing: unsupported RIP version %d", buf[1])
	}
	body := buf[ripHeaderLen:]
	if len(body)%ripEntryLen != 0 {
		return nil, fmt.Errorf("routing: RIP body length %d not a multiple of %d", len(body), ripEntryLen)
	}
	n := len(body) / ripEntryLen
	if n > cfg.MaxEntries {
		return nil, fmt.Errorf("routing: %d entries exceeds the %d-entry limit", n, cfg.MaxEntries)
	}
	u := &VectorUpdate{
		Entries: make([]VectorEntry, n),
		header:  cfg.HeaderBytes,
		entry:   cfg.EntryBytes,
	}
	for i := 0; i < n; i++ {
		off := i * ripEntryLen
		if afi := binary.BigEndian.Uint16(body[off:]); afi != ripAFIInet {
			return nil, fmt.Errorf("routing: entry %d has AFI %d, want %d", i, afi, ripAFIInet)
		}
		u.Entries[i] = VectorEntry{
			Dst:    nodeForAddr(binary.BigEndian.Uint32(body[off+4:])),
			Metric: int32(binary.BigEndian.Uint32(body[off+16:])),
		}
	}
	return u, nil
}
