package routing

import (
	"testing"
	"testing/quick"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// advNode builds a one-node network on s: the Advertiser draws jitter from
// its node's private random stream.
func advNode(s *sim.Simulator) *netsim.Node {
	return netsim.FromGraph(s, topology.Line(1), netsim.DefaultConfig(), nil).Node(0)
}

func TestDefaultVectorConfig(t *testing.T) {
	cfg := DefaultVectorConfig()
	if cfg.PeriodicInterval != 30*time.Second {
		t.Errorf("PeriodicInterval = %v, want 30s", cfg.PeriodicInterval)
	}
	if cfg.Timeout != 180*time.Second {
		t.Errorf("Timeout = %v, want 180s", cfg.Timeout)
	}
	if cfg.Infinity != 16 {
		t.Errorf("Infinity = %d, want 16", cfg.Infinity)
	}
	if cfg.MaxEntries != 25 {
		t.Errorf("MaxEntries = %d, want 25", cfg.MaxEntries)
	}
	if !cfg.TriggeredUpdates || !cfg.PoisonReverse {
		t.Error("triggered updates and poison reverse should default on")
	}
}

func TestPackEntries(t *testing.T) {
	cfg := DefaultVectorConfig()
	entries := make([]VectorEntry, 60)
	for i := range entries {
		entries[i] = VectorEntry{Dst: NodeID(i), Metric: int32(i % 16)}
	}
	msgs := cfg.PackEntries(entries)
	if len(msgs) != 3 {
		t.Fatalf("60 entries packed into %d messages, want 3 (25+25+10)", len(msgs))
	}
	if len(msgs[0].Entries) != 25 || len(msgs[1].Entries) != 25 || len(msgs[2].Entries) != 10 {
		t.Errorf("message sizes = %d, %d, %d", len(msgs[0].Entries), len(msgs[1].Entries), len(msgs[2].Entries))
	}
	if got := msgs[0].SizeBytes(); got != 32+25*20 {
		t.Errorf("full message SizeBytes = %d, want %d", got, 32+25*20)
	}
	// Entries preserved in order across messages.
	i := 0
	for _, m := range msgs {
		for _, e := range m.Entries {
			if e.Dst != NodeID(i) {
				t.Fatalf("entry %d has dst %d", i, e.Dst)
			}
			i++
		}
	}
}

func TestPackEntriesEmpty(t *testing.T) {
	cfg := DefaultVectorConfig()
	if msgs := cfg.PackEntries(nil); msgs != nil {
		t.Errorf("PackEntries(nil) = %v, want nil", msgs)
	}
}

// Property: packing n entries yields ceil(n/25) messages and preserves
// every entry exactly once.
func TestPropertyPackEntries(t *testing.T) {
	cfg := DefaultVectorConfig()
	f := func(n uint8) bool {
		entries := make([]VectorEntry, n)
		for i := range entries {
			entries[i] = VectorEntry{Dst: NodeID(i)}
		}
		msgs := cfg.PackEntries(entries)
		wantMsgs := (int(n) + cfg.MaxEntries - 1) / cfg.MaxEntries
		if len(msgs) != wantMsgs {
			return false
		}
		total := 0
		for _, m := range msgs {
			if len(m.Entries) > cfg.MaxEntries {
				return false
			}
			total += len(m.Entries)
		}
		return total == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdvertiserTriggeredIsDamped(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultVectorConfig()
	var chgCalls []time.Duration
	a := NewAdvertiser(advNode(s), &cfg, func() {}, func() { chgCalls = append(chgCalls, s.Now()) })
	s.Schedule(10*time.Second, a.RouteChanged)
	s.RunUntil(30 * time.Second)
	if len(chgCalls) != 1 {
		t.Fatalf("got %d triggered updates, want 1", len(chgCalls))
	}
	delay := chgCalls[0] - 10*time.Second
	if delay < cfg.DampMin || delay > cfg.DampMax {
		t.Errorf("triggered update delayed %v, want within [%v, %v]", delay, cfg.DampMin, cfg.DampMax)
	}
}

func TestAdvertiserDampingCoalesces(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultVectorConfig()
	var chgCalls []time.Duration
	a := NewAdvertiser(advNode(s), &cfg, func() {}, func() { chgCalls = append(chgCalls, s.Now()) })
	// A burst of changes within the damping window yields one update.
	s.Schedule(0, a.RouteChanged)
	s.Schedule(10*time.Millisecond, a.RouteChanged)
	s.Schedule(20*time.Millisecond, a.RouteChanged)
	s.RunUntil(20 * time.Second)
	if len(chgCalls) != 1 {
		t.Fatalf("got %d triggered updates, want 1 (burst coalesces)", len(chgCalls))
	}
}

func TestAdvertiserConsecutiveUpdatesSpaced(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultVectorConfig()
	var chgCalls []time.Duration
	a := NewAdvertiser(advNode(s), &cfg, func() {}, func() { chgCalls = append(chgCalls, s.Now()) })
	// Changes 6 s apart (wider than the damping window) yield two updates
	// spaced at least DampMin apart.
	s.Schedule(0, a.RouteChanged)
	s.Schedule(6*time.Second, a.RouteChanged)
	s.RunUntil(30 * time.Second)
	if len(chgCalls) != 2 {
		t.Fatalf("got %d triggered updates, want 2", len(chgCalls))
	}
	if gap := chgCalls[1] - chgCalls[0]; gap < cfg.DampMin {
		t.Errorf("updates %v apart, want ≥ %v", gap, cfg.DampMin)
	}
}

func TestAdvertiserNoPendingNoSend(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultVectorConfig()
	count := 0
	a := NewAdvertiser(advNode(s), &cfg, func() {}, func() { count++ })
	a.RouteChanged()
	s.RunUntil(25 * time.Second)
	if count != 1 {
		t.Errorf("triggered updates = %d, want exactly 1", count)
	}
}

func TestAdvertiserTriggeredDisabled(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultVectorConfig()
	cfg.TriggeredUpdates = false
	count := 0
	a := NewAdvertiser(advNode(s), &cfg, func() {}, func() { count++ })
	a.RouteChanged()
	s.RunUntil(10 * time.Second)
	if count != 0 {
		t.Errorf("triggered updates = %d with TriggeredUpdates=false, want 0", count)
	}
}

func TestAdvertiserPeriodic(t *testing.T) {
	s := sim.New(7)
	cfg := DefaultVectorConfig()
	var fullCalls []time.Duration
	a := NewAdvertiser(advNode(s), &cfg, func() { fullCalls = append(fullCalls, s.Now()) }, func() {})
	a.Start()
	s.RunUntil(5 * time.Minute)
	if len(fullCalls) < 8 || len(fullCalls) > 12 {
		t.Fatalf("got %d periodic updates in 5 min, want ≈10", len(fullCalls))
	}
	if fullCalls[0] > cfg.PeriodicInterval {
		t.Errorf("first periodic at %v, want within one interval", fullCalls[0])
	}
	for i := 1; i < len(fullCalls); i++ {
		gap := fullCalls[i] - fullCalls[i-1]
		lo := cfg.PeriodicInterval - cfg.PeriodicJitter
		hi := cfg.PeriodicInterval + cfg.PeriodicJitter
		if gap < lo || gap > hi {
			t.Errorf("periodic gap %v outside [%v, %v]", gap, lo, hi)
		}
	}
}

func TestAdvertiserPeriodicCoversPending(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultVectorConfig()
	cfg.DampMin, cfg.DampMax = 40*time.Second, 50*time.Second // damp longer than a period
	full, chg := 0, 0
	a := NewAdvertiser(advNode(s), &cfg, func() { full++ }, func() { chg++ })
	a.Start()
	a.RouteChanged() // damping armed for 40-50 s
	a.RouteChanged() // coalesces
	s.RunUntil(60 * time.Second)
	// The periodic full update (≤31 s) covers the pending change, so the
	// damping expiry must not send a triggered update at all.
	if chg != 0 {
		t.Errorf("triggered updates = %d, want 0 (periodic covered the pending change)", chg)
	}
	if full < 1 {
		t.Error("no periodic update fired")
	}
}
