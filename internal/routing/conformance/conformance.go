// Package conformance is a black-box test battery that every routing
// protocol in the study must pass: convergence to shortest paths on a
// family of topologies, failover, repair, destination detachment, and
// determinism. Each protocol package runs the battery from its own tests,
// so a new protocol gets the full matrix with one call.
package conformance

import (
	"fmt"
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routetest"
	"routeconv/internal/topology"
)

// Params adapts the battery to a protocol's convergence timescales.
type Params struct {
	// Name labels subtests.
	Name string
	// Factory constructs the protocol under test.
	Factory routetest.Factory
	// Settle is how long the battery waits for the protocol to converge
	// after start or a topology event (covering periodic cycles, damping
	// and MRAI timers).
	Settle time.Duration
}

// topologies returns the named graph family the battery runs on.
func topologies(t *testing.T) map[string]*topology.Graph {
	t.Helper()
	mesh44, err := topology.NewMesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mesh55, err := topology.NewMesh(5, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*topology.Graph{
		"line5":     topology.Line(5),
		"ring6":     topology.Ring(6),
		"full5":     topology.Full(5),
		"mesh4x4d4": mesh44.Graph,
		"mesh5x5d6": mesh55.Graph,
		"random20":  topology.Random(20, 3, 7),
	}
}

// Run executes the whole battery.
func Run(t *testing.T, p Params) {
	t.Helper()
	t.Run("converges", func(t *testing.T) { convergesEverywhere(t, p) })
	t.Run("failover", func(t *testing.T) { failover(t, p) })
	t.Run("repair", func(t *testing.T) { repair(t, p) })
	t.Run("detach", func(t *testing.T) { detach(t, p) })
	t.Run("sequential-failures", func(t *testing.T) { sequentialFailures(t, p) })
	t.Run("deterministic", func(t *testing.T) { deterministic(t, p) })
	t.Run("delivery", func(t *testing.T) { delivery(t, p) })
}

// convergesEverywhere: from a cold start, all pairs route over shortest
// paths on every topology in the family.
func convergesEverywhere(t *testing.T, p Params) {
	for name, g := range topologies(t) {
		name, g := name, g
		t.Run(name, func(t *testing.T) {
			s, net := routetest.Build(1, g, netsim.DefaultConfig(), nil, p.Factory)
			s.RunUntil(p.Settle)
			routetest.AssertShortestPaths(t, net, g)
		})
	}
}

// failover: after any single ring link fails, all pairs reconverge to the
// shortest paths of the surviving topology.
func failover(t *testing.T, p Params) {
	g := topology.Ring(6)
	for _, e := range g.Edges() {
		e := e
		t.Run(fmt.Sprintf("fail%d-%d", e.A, e.B), func(t *testing.T) {
			s, net := routetest.Build(2, g, netsim.DefaultConfig(), nil, p.Factory)
			s.RunUntil(p.Settle)
			net.FailLink(e.A, e.B)
			s.RunUntil(s.Now() + p.Settle)
			routetest.AssertShortestPaths(t, net, g)
		})
	}
}

// repair: failing and restoring a link returns the network to the original
// shortest paths.
func repair(t *testing.T, p Params) {
	g := topology.Ring(6)
	s, net := routetest.Build(3, g, netsim.DefaultConfig(), nil, p.Factory)
	s.RunUntil(p.Settle)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + p.Settle)
	net.RestoreLink(0, 1)
	s.RunUntil(s.Now() + p.Settle)
	routetest.AssertShortestPaths(t, net, g)
}

// detach: when a stub node's only link dies, every router must eventually
// drop its route to it (no lingering blackhole entries).
func detach(t *testing.T, p Params) {
	g := topology.NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3) // triangle with stubs 3 and 4
	g.AddEdge(0, 4)
	s, net := routetest.Build(4, g, netsim.DefaultConfig(), nil, p.Factory)
	s.RunUntil(p.Settle)
	net.FailLink(2, 3)
	s.RunUntil(s.Now() + p.Settle)
	for _, n := range []netsim.NodeID{0, 1, 2, 4} {
		if _, ok := net.Node(n).NextHop(3); ok {
			t.Errorf("node %d still routes to detached node 3", n)
		}
	}
	// The rest of the network must still work.
	routetest.AssertShortestPaths(t, net, g)
}

// sequentialFailures: two failures separated in time, then full
// reconvergence on the remaining topology.
func sequentialFailures(t *testing.T, p Params) {
	m, err := topology.NewMesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Graph
	s, net := routetest.Build(5, g, netsim.DefaultConfig(), nil, p.Factory)
	s.RunUntil(p.Settle)
	net.FailLink(m.ID(1, 1), m.ID(1, 2))
	s.RunUntil(s.Now() + p.Settle)
	net.FailLink(m.ID(2, 1), m.ID(2, 2))
	s.RunUntil(s.Now() + p.Settle)
	routetest.AssertShortestPaths(t, net, g)
}

// deterministic: the same seed reproduces the same control-plane activity
// bit for bit.
func deterministic(t *testing.T, p Params) {
	run := func() (uint64, uint64) {
		g := topology.Ring(8)
		s, net := routetest.Build(42, g, netsim.DefaultConfig(), nil, p.Factory)
		s.RunUntil(p.Settle)
		net.FailLink(0, 1)
		s.RunUntil(s.Now() + p.Settle)
		st := net.Stats()
		return st.ControlSent, st.ControlBytes
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Errorf("runs diverged: %d/%d vs %d/%d control msgs/bytes", m1, b1, m2, b2)
	}
}

// delivery: a steady flow across a failover loses only a bounded window of
// packets and everything is conserved.
func delivery(t *testing.T, p Params) {
	g := topology.Ring(8)
	s, net := routetest.Build(6, g, netsim.DefaultConfig(), nil, p.Factory)
	s.RunUntil(p.Settle)
	stop := s.Now() + 2*p.Settle + 20*time.Second
	netsim.StartCBR(net.Node(0), 4, 100*time.Millisecond, 500, 64, s.Now(), stop)
	s.RunUntil(s.Now() + 10*time.Second)
	net.FailLink(1, 2) // may or may not be on the 0→4 path
	s.RunUntil(stop + p.Settle)
	st := net.Stats()
	if st.DataSent == 0 {
		t.Fatal("no packets sent")
	}
	if st.DataSent != st.DataDelivered+st.DataDropped() {
		t.Errorf("conservation violated: sent %d ≠ delivered %d + dropped %d",
			st.DataSent, st.DataDelivered, st.DataDropped())
	}
	ratio := float64(st.DataDelivered) / float64(st.DataSent)
	if ratio < 0.5 {
		t.Errorf("delivery ratio %.3f across one failover is implausibly low", ratio)
	}
}
