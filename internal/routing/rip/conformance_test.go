package rip_test

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routing"
	"routeconv/internal/routing/conformance"
	"routeconv/internal/routing/rip"
)

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Params{
		Name:    "rip",
		Factory: func(n *netsim.Node) netsim.Protocol { return rip.New(n, routing.DefaultVectorConfig()) },
		// RIP needs periodic cycles: several 30 s rounds plus damping.
		Settle: 150 * time.Second,
	})
}
