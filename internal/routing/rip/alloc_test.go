package rip

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// A skipped re-advertisement must not allocate: the watermark lookup, the
// via-list timeout refreshes, and the skip counter all operate on
// persistent state. This is what makes RIP's steady state proportional to
// the change rate — on a quiet network every periodic full is a skip.
func TestSkippedAdvertisementAllocs(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	net.Instrument(obs.NewMetrics(), nil)
	cfg := routing.DefaultVectorConfig()
	p0 := New(net.Node(0), cfg)
	p1 := New(net.Node(1), cfg)
	net.Node(0).AttachProtocol(p0)
	net.Node(1).AttachProtocol(p1)
	net.Start()
	// Converge and incorporate several periodic fulls; the route timeout
	// (180 s) stays ahead of the clock throughout.
	s.RunUntil(120 * time.Second)

	ns, ok := p0.seen[1]
	if !ok || ns.tv != p0.ver {
		t.Fatalf("skip watermark not armed (ok=%v tv=%d ver=%d)", ok, ns.tv, p0.ver)
	}

	// Re-send node 1's full table exactly as broadcastFull stages it.
	p1.stage(true)
	defer p1.snd.End()
	views := p1.snd.Views(nil, &p1.cfg, 0)
	if len(views) != 1 {
		t.Fatalf("staged full packed into %d chunks, want 1", len(views))
	}
	u := views[0]
	met := net.Node(0).Metrics()
	before := met.Get(obs.ProtoAdvSkipped)
	p0.HandleMessage(1, u) // first skip resolves the lazy via-list
	if met.Get(obs.ProtoAdvSkipped) <= before {
		t.Fatal("re-sent full was not skipped")
	}
	avg := testing.AllocsPerRun(100, func() { p0.HandleMessage(1, u) })
	if avg != 0 {
		t.Errorf("skipped advertisement allocates %.1f objects, want 0", avg)
	}
}
