// Package rip implements the RIP routing protocol of the paper's §3
// (RFC 2453 behaviour): periodic full-table updates every 30 s, a 180 s
// route timeout, split horizon with poisoned reverse, damped triggered
// updates, and an infinity metric of 16.
//
// RIP keeps only the best route per destination and discards reachability
// information heard from other neighbors, which is what gives it the long
// path switch-over period of §4.1: after a failure it must wait for a
// neighbor's next periodic update to learn an alternate path.
package rip

import (
	"math"
	"math/bits"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// housekeepInterval is how often expired routes are scanned for. The scan
// is an implementation detail; any value well under the timeout works.
const housekeepInterval = time.Second

// noDeadline marks a table with no pending expire/gc deadline at all.
const noDeadline = time.Duration(math.MaxInt64)

// route is one RIP table entry. The metric is 32 bits (infinity is 16) to
// keep the dense table compact on internet-scale graphs.
type route struct {
	metric  int32
	nextHop routing.NodeID
	expire  time.Duration // deadline after which the route times out
	gcAt    time.Duration // when an unreachable route is deleted
	changed bool          // included in the next triggered update
	valid   bool          // slot holds a live entry
}

// Protocol is a RIP speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  routing.VectorConfig
	inf  int32 // cfg.Infinity in the table's metric width
	// table is dense, indexed by destination ID (node IDs are contiguous
	// from 0); invalid slots are absent entries. Ascending index iteration
	// gives the same deterministic order a sorted key list would.
	table []route
	// changedBits mirrors the entries' changed flags, one bit per
	// destination, so a triggered update visits only the changed routes
	// instead of scanning the full table per neighbor — the dominant cost
	// of a converging large network, where each burst touches a handful of
	// the N table entries.
	changedBits []uint64
	// nextDeadline is a lower bound on the earliest expire/gc deadline in
	// the table (0 = unknown, scan to find out), letting housekeep skip its
	// full scan on the overwhelmingly common tick where nothing can expire.
	nextDeadline time.Duration
	up           map[routing.NodeID]bool
	adv          *routing.Advertiser
	hk           *sim.Timer
	// pend stages the routes of one update burst, collected once so the
	// per-neighbor pass walks a compact list instead of re-scanning the
	// table — on a power-law hub with a thousand neighbors the rescans are
	// the whole burst cost.
	pend []pending
}

// pending is one route staged for advertisement.
type pending struct {
	dst     routing.NodeID
	nextHop routing.NodeID
	metric  int32
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a RIP instance for the node. It must be attached with
// node.AttachProtocol before the network starts.
func New(node *netsim.Node, cfg routing.VectorConfig) *Protocol {
	p := &Protocol{
		node: node,
		cfg:  cfg,
		inf:  int32(cfg.Infinity),
		up:   make(map[routing.NodeID]bool),
	}
	p.adv = routing.NewAdvertiser(node, &p.cfg, p.broadcastFull, p.broadcastChanged)
	p.hk = sim.NewTimer(node.Sim(), p.housekeep)
	return p
}

// Factory returns a constructor suitable for attaching RIP to every node of
// a network.
func Factory(cfg routing.VectorConfig) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Table returns the current metric and next hop for dst, with ok reporting
// whether a route (reachable or not) exists. Exposed for tests and tools.
func (p *Protocol) Table(dst routing.NodeID) (metric int, nextHop routing.NodeID, ok bool) {
	rt := p.route(dst)
	if rt == nil {
		return 0, 0, false
	}
	return int(rt.metric), rt.nextHop, true
}

// route returns the live entry for dst, or nil.
func (p *Protocol) route(dst routing.NodeID) *route {
	if dst >= 0 && int(dst) < len(p.table) && p.table[dst].valid {
		return &p.table[dst]
	}
	return nil
}

// insert claims the slot for dst, growing the table on demand, and returns
// it zeroed with valid set. Start presizes the table to the network, so
// growth here only triggers for unit tests that inject out-of-range IDs;
// it doubles anyway so repeated single-destination growth stays amortized.
func (p *Protocol) insert(dst routing.NodeID) *route {
	if int(dst) >= len(p.table) {
		n := int(dst) + 1
		if n < 2*len(p.table) {
			n = 2 * len(p.table)
		}
		grown := make([]route, n)
		copy(grown, p.table)
		p.table = grown
	}
	p.table[dst] = route{valid: true}
	return &p.table[dst]
}

// setChanged flags the entry for the next triggered update, in both the
// entry and the bitmap (the invariant the bitmap iteration relies on:
// changed entries always have their bit set).
func (p *Protocol) setChanged(dst routing.NodeID, rt *route) {
	rt.changed = true
	w := int(dst) >> 6
	if w >= len(p.changedBits) {
		n := w + 1
		if n < 2*len(p.changedBits) {
			n = 2 * len(p.changedBits)
		}
		grown := make([]uint64, n)
		copy(grown, p.changedBits)
		p.changedBits = grown
	}
	p.changedBits[w] |= 1 << (uint(dst) & 63)
}

// noteDeadline lowers the housekeeping deadline bound to d.
func (p *Protocol) noteDeadline(d time.Duration) {
	if p.nextDeadline == 0 || d < p.nextDeadline {
		p.nextDeadline = d
	}
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	// Node IDs are contiguous from 0, so size the dense table and its
	// changed bitmap to the network up front; growing them one new maximum
	// destination at a time is quadratic memory traffic on a 10k-node
	// graph (the same idiom as ls and bgp).
	if n := p.node.NetworkSize(); n > len(p.table) {
		grown := make([]route, n)
		copy(grown, p.table)
		p.table = grown
		bits := make([]uint64, (n+63)/64)
		copy(bits, p.changedBits)
		p.changedBits = bits
	}
	self := p.node.ID()
	rt := p.insert(self)
	rt.metric, rt.nextHop = 0, self
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
	}
	p.adv.Start()
	p.hk.Reset(housekeepInterval)
	// Announce ourselves right away so the network learns new attachments
	// without waiting a full period.
	p.broadcastFull()
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*routing.VectorUpdate)
	if !ok {
		return // not a RIP message; ignore
	}
	met := p.node.Metrics()
	met.Inc(obs.ProtoUpdatesReceived)
	now := p.node.Sim().Now()
	changedAny := false
	for _, e := range u.Entries {
		met.Inc(obs.ProtoDecisionRuns)
		// Fast no-op rejection: an entry that is not from the current next
		// hop and does not beat the current metric changes nothing (§3.9.2
		// leaves the route untouched). On a converging large network the
		// bulk of received entries land here, so skipping the full decision
		// is the dominant receive-side saving.
		if int(e.Dst) < len(p.table) && e.Dst >= 0 {
			rt := &p.table[e.Dst]
			if rt.valid && from != rt.nextHop {
				metric := e.Metric + 1
				if metric > p.inf {
					metric = p.inf
				}
				if metric >= rt.metric {
					continue
				}
			}
		}
		if p.processEntry(from, e, now) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// processEntry applies one received (dst, metric) pair per RFC 2453 §3.9.2
// and reports whether the route changed.
func (p *Protocol) processEntry(from routing.NodeID, e routing.VectorEntry, now time.Duration) bool {
	if e.Dst == p.node.ID() {
		return false
	}
	metric := e.Metric + 1 // link cost is 1 everywhere in the study
	if metric > p.inf {
		metric = p.inf
	}
	rt := p.route(e.Dst)
	switch {
	case rt == nil:
		if metric >= p.inf {
			return false
		}
		rt = p.insert(e.Dst)
		rt.metric, rt.nextHop, rt.expire = metric, from, now+p.cfg.Timeout
		p.setChanged(e.Dst, rt)
		p.noteDeadline(rt.expire)
		p.node.SetRoute(e.Dst, from)
		return true

	case from == rt.nextHop:
		// News from the current next hop is always believed, even if worse.
		if metric < p.inf {
			rt.expire = now + p.cfg.Timeout
			p.noteDeadline(rt.expire)
		}
		if metric == rt.metric {
			return false
		}
		wasReachable := rt.metric < p.inf
		rt.metric = metric
		p.setChanged(e.Dst, rt)
		if metric >= p.inf {
			if wasReachable {
				rt.gcAt = now + p.cfg.GCTime
				p.noteDeadline(rt.gcAt)
				p.node.ClearRoute(e.Dst)
			}
		} else {
			rt.gcAt = 0
			// The route may be coming back from unreachable via the same
			// next hop; (re)install the forwarding entry either way.
			p.node.SetRoute(e.Dst, from)
		}
		return true

	case metric < rt.metric:
		rt.metric = metric
		rt.nextHop = from
		rt.expire = now + p.cfg.Timeout
		rt.gcAt = 0
		p.setChanged(e.Dst, rt)
		p.noteDeadline(rt.expire)
		p.node.SetRoute(e.Dst, from)
		return true
	}
	return false
}

// LinkDown implements netsim.Protocol: every route through the lost
// neighbor becomes unreachable until some other neighbor advertises an
// alternative (RIP keeps no alternates — §4.1).
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	now := p.node.Sim().Now()
	changedAny := false
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || rt.nextHop != neighbor || rt.metric >= p.inf {
			continue
		}
		rt.metric = p.inf
		rt.gcAt = now + p.cfg.GCTime
		p.setChanged(dst, rt)
		p.noteDeadline(rt.gcAt)
		p.node.ClearRoute(dst)
		changedAny = true
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// LinkUp implements netsim.Protocol: the restored neighbor immediately
// receives our full table (standing in for RIP's request/response exchange).
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	p.collectFull()
	p.sendPending(neighbor)
}

// housekeep expires timed-out routes and garbage-collects dead ones. The
// full scan runs only when the earliest tracked deadline has passed;
// otherwise the tick is O(1) — on a quiet tick (the overwhelmingly common
// case) nothing could have expired, so skipping the scan changes nothing.
func (p *Protocol) housekeep() {
	now := p.node.Sim().Now()
	if p.nextDeadline != 0 && now < p.nextDeadline {
		p.hk.Reset(housekeepInterval)
		return
	}
	changedAny := false
	next := noDeadline
	self := p.node.ID()
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || dst == self {
			continue
		}
		if rt.metric < p.inf && now >= rt.expire {
			rt.metric = p.inf
			rt.gcAt = now + p.cfg.GCTime
			p.setChanged(dst, rt)
			p.node.ClearRoute(dst)
			changedAny = true
		}
		if rt.metric >= p.inf && rt.gcAt > 0 && now >= rt.gcAt {
			rt.valid = false
			continue
		}
		// Track the surviving entry's next deadline for the skip bound.
		if rt.metric < p.inf {
			if rt.expire < next {
				next = rt.expire
			}
		} else if rt.gcAt > 0 && rt.gcAt < next {
			next = rt.gcAt
		}
	}
	p.nextDeadline = next
	if changedAny {
		p.adv.RouteChanged()
	}
	p.hk.Reset(housekeepInterval)
}

// broadcastFull sends the whole table to every up neighbor.
func (p *Protocol) broadcastFull() {
	p.collectFull()
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendPending(n)
		}
	}
	p.clearChanged()
}

// broadcastChanged sends only routes with the changed flag (a triggered
// update) to every up neighbor.
func (p *Protocol) broadcastChanged() {
	p.collectChanged()
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendPending(n)
		}
	}
	p.clearChanged()
}

// collectFull stages every live route for advertisement, in ascending
// destination order.
func (p *Protocol) collectFull() {
	p.pend = p.pend[:0]
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid {
			continue
		}
		p.pend = append(p.pend, pending{dst: dst, nextHop: rt.nextHop, metric: rt.metric})
	}
}

// collectChanged stages only routes with the changed flag (a triggered
// update), iterating the changed bitmap — ascending destination order,
// exactly like the full scan — so the cost scales with the change burst,
// not the table.
func (p *Protocol) collectChanged() {
	p.pend = p.pend[:0]
	for w, word := range p.changedBits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			dst := routing.NodeID(w<<6 + b)
			if int(dst) >= len(p.table) {
				break
			}
			rt := &p.table[dst]
			if !rt.valid || !rt.changed {
				continue // stale bit (entry replaced or garbage-collected)
			}
			p.pend = append(p.pend, pending{dst: dst, nextHop: rt.nextHop, metric: rt.metric})
		}
	}
}

// sendPending composes and transmits the staged routes to one neighbor,
// applying split horizon (with poisoned reverse when configured). The
// entry slice is allocated at exact size and handed off to the packed
// messages, which alias it until delivery.
func (p *Protocol) sendPending(to routing.NodeID) {
	if len(p.pend) == 0 {
		return
	}
	entries := make([]routing.VectorEntry, 0, len(p.pend))
	self := p.node.ID()
	for i := range p.pend {
		e := &p.pend[i]
		metric := e.metric
		if e.nextHop == to && e.dst != self {
			if !p.cfg.PoisonReverse {
				continue // plain split horizon: stay silent
			}
			metric = p.inf
		}
		entries = append(entries, routing.VectorEntry{Dst: e.dst, Metric: metric})
	}
	for _, msg := range p.cfg.PackEntries(entries) {
		p.node.Metrics().Inc(obs.ProtoUpdatesSent)
		p.node.SendControl(to, msg)
	}
}

func (p *Protocol) clearChanged() {
	for w, word := range p.changedBits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			if dst := w<<6 + b; dst < len(p.table) {
				p.table[dst].changed = false
			}
		}
		p.changedBits[w] = 0
	}
}
