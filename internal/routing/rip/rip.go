// Package rip implements the RIP routing protocol of the paper's §3
// (RFC 2453 behaviour): periodic full-table updates every 30 s, a 180 s
// route timeout, split horizon with poisoned reverse, damped triggered
// updates, and an infinity metric of 16.
//
// RIP keeps only the best route per destination and discards reachability
// information heard from other neighbors, which is what gives it the long
// path switch-over period of §4.1: after a failure it must wait for a
// neighbor's next periodic update to learn an alternate path.
package rip

import (
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// housekeepInterval is how often expired routes are scanned for. The scan
// is an implementation detail; any value well under the timeout works.
const housekeepInterval = time.Second

// route is one RIP table entry.
type route struct {
	metric  int
	nextHop routing.NodeID
	expire  time.Duration // deadline after which the route times out
	gcAt    time.Duration // when an unreachable route is deleted
	changed bool          // included in the next triggered update
	valid   bool          // slot holds a live entry
}

// Protocol is a RIP speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  routing.VectorConfig
	// table is dense, indexed by destination ID (node IDs are contiguous
	// from 0); invalid slots are absent entries. Ascending index iteration
	// gives the same deterministic order a sorted key list would.
	table []route
	up    map[routing.NodeID]bool
	adv   *routing.Advertiser
	hk    *sim.Timer
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a RIP instance for the node. It must be attached with
// node.AttachProtocol before the network starts.
func New(node *netsim.Node, cfg routing.VectorConfig) *Protocol {
	p := &Protocol{
		node: node,
		cfg:  cfg,
		up:   make(map[routing.NodeID]bool),
	}
	p.adv = routing.NewAdvertiser(node.Sim(), &p.cfg, p.broadcastFull, p.broadcastChanged)
	p.hk = sim.NewTimer(node.Sim(), p.housekeep)
	return p
}

// Factory returns a constructor suitable for attaching RIP to every node of
// a network.
func Factory(cfg routing.VectorConfig) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Table returns the current metric and next hop for dst, with ok reporting
// whether a route (reachable or not) exists. Exposed for tests and tools.
func (p *Protocol) Table(dst routing.NodeID) (metric int, nextHop routing.NodeID, ok bool) {
	rt := p.route(dst)
	if rt == nil {
		return 0, 0, false
	}
	return rt.metric, rt.nextHop, true
}

// route returns the live entry for dst, or nil.
func (p *Protocol) route(dst routing.NodeID) *route {
	if dst >= 0 && int(dst) < len(p.table) && p.table[dst].valid {
		return &p.table[dst]
	}
	return nil
}

// insert claims the slot for dst, growing the table on demand, and returns
// it zeroed with valid set.
func (p *Protocol) insert(dst routing.NodeID) *route {
	if int(dst) >= len(p.table) {
		grown := make([]route, dst+1)
		copy(grown, p.table)
		p.table = grown
	}
	p.table[dst] = route{valid: true}
	return &p.table[dst]
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	self := p.node.ID()
	rt := p.insert(self)
	rt.metric, rt.nextHop = 0, self
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
	}
	p.adv.Start()
	p.hk.Reset(housekeepInterval)
	// Announce ourselves right away so the network learns new attachments
	// without waiting a full period.
	p.broadcastFull()
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*routing.VectorUpdate)
	if !ok {
		return // not a RIP message; ignore
	}
	met := p.node.Metrics()
	met.Inc(obs.ProtoUpdatesReceived)
	now := p.node.Sim().Now()
	changedAny := false
	for _, e := range u.Entries {
		met.Inc(obs.ProtoDecisionRuns)
		if p.processEntry(from, e, now) {
			changedAny = true
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// processEntry applies one received (dst, metric) pair per RFC 2453 §3.9.2
// and reports whether the route changed.
func (p *Protocol) processEntry(from routing.NodeID, e routing.VectorEntry, now time.Duration) bool {
	if e.Dst == p.node.ID() {
		return false
	}
	metric := e.Metric + 1 // link cost is 1 everywhere in the study
	if metric > p.cfg.Infinity {
		metric = p.cfg.Infinity
	}
	rt := p.route(e.Dst)
	switch {
	case rt == nil:
		if metric >= p.cfg.Infinity {
			return false
		}
		rt = p.insert(e.Dst)
		rt.metric, rt.nextHop, rt.expire, rt.changed = metric, from, now+p.cfg.Timeout, true
		p.node.SetRoute(e.Dst, from)
		return true

	case from == rt.nextHop:
		// News from the current next hop is always believed, even if worse.
		if metric < p.cfg.Infinity {
			rt.expire = now + p.cfg.Timeout
		}
		if metric == rt.metric {
			return false
		}
		wasReachable := rt.metric < p.cfg.Infinity
		rt.metric = metric
		rt.changed = true
		if metric >= p.cfg.Infinity {
			if wasReachable {
				rt.gcAt = now + p.cfg.GCTime
				p.node.ClearRoute(e.Dst)
			}
		} else {
			rt.gcAt = 0
			// The route may be coming back from unreachable via the same
			// next hop; (re)install the forwarding entry either way.
			p.node.SetRoute(e.Dst, from)
		}
		return true

	case metric < rt.metric:
		rt.metric = metric
		rt.nextHop = from
		rt.expire = now + p.cfg.Timeout
		rt.gcAt = 0
		rt.changed = true
		p.node.SetRoute(e.Dst, from)
		return true
	}
	return false
}

// LinkDown implements netsim.Protocol: every route through the lost
// neighbor becomes unreachable until some other neighbor advertises an
// alternative (RIP keeps no alternates — §4.1).
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	now := p.node.Sim().Now()
	changedAny := false
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || rt.nextHop != neighbor || rt.metric >= p.cfg.Infinity {
			continue
		}
		rt.metric = p.cfg.Infinity
		rt.gcAt = now + p.cfg.GCTime
		rt.changed = true
		p.node.ClearRoute(dst)
		changedAny = true
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// LinkUp implements netsim.Protocol: the restored neighbor immediately
// receives our full table (standing in for RIP's request/response exchange).
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	p.sendTable(neighbor, false)
}

// housekeep expires timed-out routes and garbage-collects dead ones.
func (p *Protocol) housekeep() {
	now := p.node.Sim().Now()
	changedAny := false
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || dst == p.node.ID() {
			continue
		}
		if rt.metric < p.cfg.Infinity && now >= rt.expire {
			rt.metric = p.cfg.Infinity
			rt.gcAt = now + p.cfg.GCTime
			rt.changed = true
			p.node.ClearRoute(dst)
			changedAny = true
		}
		if rt.metric >= p.cfg.Infinity && rt.gcAt > 0 && now >= rt.gcAt {
			rt.valid = false
		}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
	p.hk.Reset(housekeepInterval)
}

// broadcastFull sends the whole table to every up neighbor.
func (p *Protocol) broadcastFull() {
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendTable(n, false)
		}
	}
	p.clearChanged()
}

// broadcastChanged sends only routes with the changed flag (a triggered
// update) to every up neighbor.
func (p *Protocol) broadcastChanged() {
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendTable(n, true)
		}
	}
	p.clearChanged()
}

// sendTable composes and transmits update messages to one neighbor,
// applying split horizon (with poisoned reverse when configured).
func (p *Protocol) sendTable(to routing.NodeID, changedOnly bool) {
	var entries []routing.VectorEntry
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || (changedOnly && !rt.changed) {
			continue
		}
		metric := rt.metric
		if rt.nextHop == to && dst != p.node.ID() {
			if !p.cfg.PoisonReverse {
				continue // plain split horizon: stay silent
			}
			metric = p.cfg.Infinity
		}
		entries = append(entries, routing.VectorEntry{Dst: dst, Metric: metric})
	}
	for _, msg := range p.cfg.PackEntries(entries) {
		p.node.Metrics().Inc(obs.ProtoUpdatesSent)
		p.node.SendControl(to, msg)
	}
}

func (p *Protocol) clearChanged() {
	for i := range p.table {
		p.table[i].changed = false
	}
}
