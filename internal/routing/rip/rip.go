// Package rip implements the RIP routing protocol of the paper's §3
// (RFC 2453 behaviour): periodic full-table updates every 30 s, a 180 s
// route timeout, split horizon with poisoned reverse, damped triggered
// updates, and an infinity metric of 16.
//
// RIP keeps only the best route per destination and discards reachability
// information heard from other neighbors, which is what gives it the long
// path switch-over period of §4.1: after a failure it must wait for a
// neighbor's next periodic update to learn an alternate path.
package rip

import (
	"math"
	"math/bits"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/obs"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
)

// housekeepInterval is how often expired routes are scanned for. The scan
// is an implementation detail; any value well under the timeout works.
const housekeepInterval = time.Second

// noDeadline marks a table with no pending expire/gc deadline at all.
const noDeadline = time.Duration(math.MaxInt64)

// route is one RIP table entry, packed to 16 bytes so a dense 10k-node
// table fits in 160 kB and the receive loop's sequential row scans stay
// bandwidth-friendly. The metric is 16 bits (hop counts clamp at the
// configured infinity, 16 by default; New rejects an infinity that would
// not fit), and the timeout and garbage-collection deadlines share one
// field: a reachable route only ever awaits expiry, an unreachable one
// only deletion, so the two are never live at once.
type route struct {
	deadline time.Duration // expiry while reachable, deletion while not
	nextHop  routing.NodeID
	metric   int16
	changed  bool // included in the next triggered update
	valid    bool // slot holds a live entry
}

// viaCap bounds the cached per-neighbor list of destinations routed via
// that neighbor. The whole-chunk skip must keep refreshing exactly those
// routes' timeouts; past the cap the skip is disabled for the neighbor.
const viaCap = 4

const (
	viaUnknown = int8(-2) // list not yet resolved (deferred to first use)
	viaMany    = int8(-1) // more than viaCap routes via the neighbor
)

// nbrSeen records, per neighbor, the advertisement version whose full
// snapshot we last processed to quiescence, our own change clock at that
// moment, and the destinations then routed via the neighbor. Together they
// justify the receive-side fast path: if the neighbor re-advertises at the
// same version and our table has not changed since, re-processing every
// entry would repeat decisions that were no-ops — except the timeout
// refresh of the listed via-routes, which the skip applies directly.
type nbrSeen struct {
	ver  uint64 // sender's version clock of the last incorporated full
	tv   uint64 // our change clock when that incorporation finished
	nvia int8
	via  [viaCap]routing.NodeID // routed via the neighbor (excluding itself)
}

// Protocol is a RIP speaker bound to one node.
type Protocol struct {
	node *netsim.Node
	cfg  routing.VectorConfig
	inf  int32 // cfg.Infinity in the table's metric width
	// table is dense, indexed by destination ID (node IDs are contiguous
	// from 0); invalid slots are absent entries. Ascending index iteration
	// gives the same deterministic order a sorted key list would.
	table []route
	// changedBits mirrors the entries' changed flags, one bit per
	// destination, so a triggered update visits only the changed routes
	// instead of scanning the full table per neighbor — the dominant cost
	// of a converging large network, where each burst touches a handful of
	// the N table entries.
	changedBits []uint64
	// nlive counts valid table slots, giving full-table stagings their
	// exact burst size without a counting pass.
	nlive int
	// ver is the monotone change-version clock: it advances on every
	// decision-relevant table change (route inserted, metric or next hop
	// updated, entry deleted). Advertisement bursts are stamped with it,
	// and received stamps drive the whole-chunk skip below.
	ver uint64
	// seen holds the per-neighbor incorporation watermarks for the skip.
	seen map[routing.NodeID]nbrSeen
	// nextDeadline is a lower bound on the earliest expire/gc deadline in
	// the table (0 = unknown, scan to find out), letting housekeep skip its
	// full scan on the overwhelmingly common tick where nothing can expire.
	nextDeadline time.Duration
	up           map[routing.NodeID]bool
	adv          *routing.Advertiser
	hk           *sim.Timer
	// snd stages advertisement bursts once per broadcast into a shared
	// pooled snapshot; per-neighbor messages are index views with
	// read-time poisoned reverse, so a steady-state broadcast allocates
	// nothing and copies nothing per neighbor.
	snd routing.BurstSender
}

var _ netsim.Protocol = (*Protocol)(nil)

// New returns a RIP instance for the node. It must be attached with
// node.AttachProtocol before the network starts.
func New(node *netsim.Node, cfg routing.VectorConfig) *Protocol {
	if cfg.Infinity > math.MaxInt16 {
		panic("rip: Infinity exceeds the 16-bit table metric")
	}
	p := &Protocol{
		node: node,
		cfg:  cfg,
		inf:  int32(cfg.Infinity),
		up:   make(map[routing.NodeID]bool),
		seen: make(map[routing.NodeID]nbrSeen),
	}
	p.adv = routing.NewAdvertiser(node, &p.cfg, p.broadcastFull, p.broadcastChanged)
	p.hk = sim.NewTimer(node.Sim(), p.housekeep)
	return p
}

// Factory returns a constructor suitable for attaching RIP to every node of
// a network.
func Factory(cfg routing.VectorConfig) func(*netsim.Node) netsim.Protocol {
	return func(n *netsim.Node) netsim.Protocol { return New(n, cfg) }
}

// Table returns the current metric and next hop for dst, with ok reporting
// whether a route (reachable or not) exists. Exposed for tests and tools.
func (p *Protocol) Table(dst routing.NodeID) (metric int, nextHop routing.NodeID, ok bool) {
	rt := p.route(dst)
	if rt == nil {
		return 0, 0, false
	}
	return int(rt.metric), rt.nextHop, true
}

// route returns the live entry for dst, or nil.
func (p *Protocol) route(dst routing.NodeID) *route {
	if dst >= 0 && int(dst) < len(p.table) && p.table[dst].valid {
		return &p.table[dst]
	}
	return nil
}

// insert claims the slot for dst, growing the table on demand, and returns
// it zeroed with valid set. Start presizes the table to the network, so
// growth here only triggers for unit tests that inject out-of-range IDs;
// it doubles anyway so repeated single-destination growth stays amortized.
func (p *Protocol) insert(dst routing.NodeID) *route {
	if int(dst) >= len(p.table) {
		n := int(dst) + 1
		if n < 2*len(p.table) {
			n = 2 * len(p.table)
		}
		grown := make([]route, n)
		copy(grown, p.table)
		p.table = grown
	}
	p.table[dst] = route{valid: true}
	p.nlive++
	return &p.table[dst]
}

// setChanged flags the entry for the next triggered update, in both the
// entry and the bitmap (the invariant the bitmap iteration relies on:
// changed entries always have their bit set), and advances the version
// clock — every call site is a decision-relevant table change.
func (p *Protocol) setChanged(dst routing.NodeID, rt *route) {
	p.ver++
	rt.changed = true
	w := int(dst) >> 6
	if w >= len(p.changedBits) {
		n := w + 1
		if n < 2*len(p.changedBits) {
			n = 2 * len(p.changedBits)
		}
		grown := make([]uint64, n)
		copy(grown, p.changedBits)
		p.changedBits = grown
	}
	p.changedBits[w] |= 1 << (uint(dst) & 63)
}

// noteDeadline lowers the housekeeping deadline bound to d.
func (p *Protocol) noteDeadline(d time.Duration) {
	if p.nextDeadline == 0 || d < p.nextDeadline {
		p.nextDeadline = d
	}
}

// Start implements netsim.Protocol.
func (p *Protocol) Start() {
	// Node IDs are contiguous from 0, so size the dense table and its
	// changed bitmap to the network up front; growing them one new maximum
	// destination at a time is quadratic memory traffic on a 10k-node
	// graph (the same idiom as ls and bgp).
	if n := p.node.NetworkSize(); n > len(p.table) {
		grown := make([]route, n)
		copy(grown, p.table)
		p.table = grown
		bits := make([]uint64, (n+63)/64)
		copy(bits, p.changedBits)
		p.changedBits = bits
	}
	self := p.node.ID()
	rt := p.insert(self)
	rt.metric, rt.nextHop = 0, self
	for _, n := range p.node.Neighbors() {
		p.up[n] = true
	}
	p.adv.Start()
	p.hk.Reset(housekeepInterval)
	// Announce ourselves right away so the network learns new attachments
	// without waiting a full period.
	p.broadcastFull()
}

// HandleMessage implements netsim.Protocol.
func (p *Protocol) HandleMessage(from routing.NodeID, msg netsim.Message) {
	u, ok := msg.(*routing.VectorUpdate)
	if !ok {
		return // not a RIP message; ignore
	}
	met := p.node.Metrics()
	met.Inc(obs.ProtoUpdatesReceived)
	n := u.Len()
	met.Add(obs.ProtoDecisionRuns, uint64(n))
	now := p.node.Sim().Now()
	b := u.Burst()
	if b != nil {
		// Whole-chunk skip: the sender re-advertises a snapshot version we
		// already processed to quiescence, and our own table has not
		// changed since — every entry decision would repeat its earlier
		// no-op. The only live effect, the timeout refresh of routes via
		// the sender, is applied directly from the cached via-list.
		if ns, ok := p.seen[from]; ok && b.Ver <= ns.ver && p.ver == ns.tv {
			if ns.nvia == viaUnknown {
				// The table is bit-identical to when the watermark was
				// recorded (our clock has not moved), so resolving the
				// via-list lazily here is exact — and start-of-run fulls
				// that are never re-sent never pay the table scan.
				ns = p.resolveVia(from, ns)
				p.seen[from] = ns
			}
			if ns.nvia >= 0 {
				for i := int8(0); i < ns.nvia; i++ {
					p.refreshVia(u, from, ns.via[i], now)
				}
				p.refreshVia(u, from, from, now)
				met.Add(obs.ProtoAdvSkipped, uint64(n))
				return
			}
		}
	}
	changedAny := false
	// View iteration keeps the hot loop free of per-entry call overhead;
	// the read-time poisoned reverse EntryAt applies is inlined here (nhs
	// is nil for explicit updates, which carry literal entries).
	ents, nhs, origin, binf := u.View()
	self := p.node.ID()
	for i, e := range ents {
		if nhs != nil && nhs[i] == self && e.Dst != origin {
			e.Metric = binf
		}
		// Fast no-op rejection: an entry that is not from the current next
		// hop and does not beat the current metric changes nothing (§3.9.2
		// leaves the route untouched). On a converging large network the
		// bulk of received entries land here, so skipping the full decision
		// is the dominant receive-side saving.
		if int(e.Dst) < len(p.table) && e.Dst >= 0 {
			rt := &p.table[e.Dst]
			if rt.valid && from != rt.nextHop {
				metric := e.Metric + 1
				if metric > p.inf {
					metric = p.inf
				}
				if metric >= int32(rt.metric) {
					continue
				}
			}
		}
		if p.processEntry(from, e, now) {
			changedAny = true
		}
	}
	if b != nil && b.Full && u.LastChunk() {
		// The sender's whole table at b.Ver is now incorporated. The
		// via-list resolves lazily on the first skip attempt.
		p.seen[from] = nbrSeen{ver: b.Ver, tv: p.ver, nvia: viaUnknown}
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// resolveVia scans the table for destinations routed via the neighbor
// (excluding the neighbor itself), filling the watermark's via-list or
// marking it over-cap.
func (p *Protocol) resolveVia(from routing.NodeID, ns nbrSeen) nbrSeen {
	ns.nvia = 0
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || rt.nextHop != from || dst == from {
			continue
		}
		if ns.nvia == viaCap {
			ns.nvia = viaMany
			break
		}
		ns.via[ns.nvia] = dst
		ns.nvia++
	}
	return ns
}

// refreshVia re-arms the timeout of the route to dst (next hop: the
// sending neighbor) exactly as full processing of this chunk would: if the
// chunk carries dst at a finite metric, the deadline resets. Entries are
// sorted by destination, so a binary search finds the slot.
func (p *Protocol) refreshVia(u *routing.VectorUpdate, from, dst routing.NodeID, now time.Duration) {
	lo, hi := 0, u.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u.EntryAt(mid).Dst < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= u.Len() {
		return
	}
	e := u.EntryAt(lo)
	if e.Dst != dst {
		return
	}
	metric := e.Metric + 1
	if metric > p.inf {
		metric = p.inf
	}
	if metric >= p.inf {
		return // poisoned or unreachable: processing would not refresh
	}
	rt := p.route(dst)
	if rt == nil || rt.nextHop != from || int32(rt.metric) >= p.inf {
		return
	}
	rt.deadline = now + p.cfg.Timeout
	p.noteDeadline(rt.deadline)
}

// processEntry applies one received (dst, metric) pair per RFC 2453 §3.9.2
// and reports whether the route changed.
func (p *Protocol) processEntry(from routing.NodeID, e routing.VectorEntry, now time.Duration) bool {
	if e.Dst == p.node.ID() {
		return false
	}
	metric := e.Metric + 1 // link cost is 1 everywhere in the study
	if metric > p.inf {
		metric = p.inf
	}
	rt := p.route(e.Dst)
	switch {
	case rt == nil:
		if metric >= p.inf {
			return false
		}
		rt = p.insert(e.Dst)
		rt.metric, rt.nextHop, rt.deadline = int16(metric), from, now+p.cfg.Timeout
		p.setChanged(e.Dst, rt)
		p.noteDeadline(rt.deadline)
		p.node.SetRoute(e.Dst, from)
		return true

	case from == rt.nextHop:
		// News from the current next hop is always believed, even if worse.
		if metric < p.inf {
			rt.deadline = now + p.cfg.Timeout
			p.noteDeadline(rt.deadline)
		}
		if metric == int32(rt.metric) {
			return false
		}
		wasReachable := int32(rt.metric) < p.inf
		rt.metric = int16(metric)
		p.setChanged(e.Dst, rt)
		if metric >= p.inf {
			if wasReachable {
				rt.deadline = now + p.cfg.GCTime
				p.noteDeadline(rt.deadline)
				p.node.ClearRoute(e.Dst)
			}
		} else {
			// The route may be coming back from unreachable via the same
			// next hop; (re)install the forwarding entry either way.
			p.node.SetRoute(e.Dst, from)
		}
		return true

	case metric < int32(rt.metric):
		rt.metric = int16(metric)
		rt.nextHop = from
		rt.deadline = now + p.cfg.Timeout
		p.setChanged(e.Dst, rt)
		p.noteDeadline(rt.deadline)
		p.node.SetRoute(e.Dst, from)
		return true
	}
	return false
}

// LinkDown implements netsim.Protocol: every route through the lost
// neighbor becomes unreachable until some other neighbor advertises an
// alternative (RIP keeps no alternates — §4.1).
func (p *Protocol) LinkDown(neighbor routing.NodeID) {
	p.up[neighbor] = false
	now := p.node.Sim().Now()
	changedAny := false
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || rt.nextHop != neighbor || int32(rt.metric) >= p.inf {
			continue
		}
		rt.metric = int16(p.inf)
		rt.deadline = now + p.cfg.GCTime
		p.setChanged(dst, rt)
		p.noteDeadline(rt.deadline)
		p.node.ClearRoute(dst)
		changedAny = true
	}
	if changedAny {
		p.adv.RouteChanged()
	}
}

// LinkUp implements netsim.Protocol: the restored neighbor immediately
// receives our full table (standing in for RIP's request/response exchange).
func (p *Protocol) LinkUp(neighbor routing.NodeID) {
	p.up[neighbor] = true
	p.stage(true)
	p.sendStaged(neighbor)
	p.snd.End()
}

// housekeep expires timed-out routes and garbage-collects dead ones. The
// full scan runs only when the earliest tracked deadline has passed;
// otherwise the tick is O(1) — on a quiet tick (the overwhelmingly common
// case) nothing could have expired, so skipping the scan changes nothing.
func (p *Protocol) housekeep() {
	now := p.node.Sim().Now()
	if p.nextDeadline != 0 && now < p.nextDeadline {
		p.hk.Reset(housekeepInterval)
		return
	}
	changedAny := false
	next := noDeadline
	self := p.node.ID()
	for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
		rt := &p.table[dst]
		if !rt.valid || dst == self {
			continue
		}
		if int32(rt.metric) < p.inf && now >= rt.deadline {
			rt.metric = int16(p.inf)
			rt.deadline = now + p.cfg.GCTime
			p.setChanged(dst, rt)
			p.node.ClearRoute(dst)
			changedAny = true
		}
		if int32(rt.metric) >= p.inf && rt.deadline > 0 && now >= rt.deadline {
			rt.valid = false
			p.nlive--
			p.ver++ // deletions drop out of the advertised table too
			continue
		}
		// Track the surviving entry's next deadline for the skip bound.
		if rt.deadline > 0 && rt.deadline < next {
			next = rt.deadline
		}
	}
	p.nextDeadline = next
	if changedAny {
		p.adv.RouteChanged()
	}
	p.hk.Reset(housekeepInterval)
}

// broadcastFull sends the whole table to every up neighbor.
func (p *Protocol) broadcastFull() { p.broadcast(true) }

// broadcastChanged sends only routes with the changed flag (a triggered
// update) to every up neighbor.
func (p *Protocol) broadcastChanged() { p.broadcast(false) }

func (p *Protocol) broadcast(full bool) {
	p.stage(full)
	for _, n := range p.node.Neighbors() {
		if p.up[n] {
			p.sendStaged(n)
		}
	}
	p.snd.End()
	p.clearChanged()
}

// stage snapshots one advertisement burst — the whole table, or only
// routes with the changed flag (iterating the changed bitmap), in
// ascending destination order either way — into the shared pooled
// snapshot that all per-neighbor messages of this broadcast view.
func (p *Protocol) stage(full bool) {
	b := p.snd.Begin(p.node.ID(), p.inf, p.ver, full)
	if full {
		b.Grow(p.nlive)
		for dst := routing.NodeID(0); int(dst) < len(p.table); dst++ {
			rt := &p.table[dst]
			if !rt.valid {
				continue
			}
			b.Entries = append(b.Entries, routing.VectorEntry{Dst: dst, Metric: int32(rt.metric)})
			b.NextHop = append(b.NextHop, rt.nextHop)
		}
		return
	}
	need := 0
	for _, word := range p.changedBits {
		need += bits.OnesCount64(word)
	}
	b.Grow(need)
	for w, word := range p.changedBits {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << uint(bit)
			dst := routing.NodeID(w<<6 + bit)
			if int(dst) >= len(p.table) {
				break
			}
			rt := &p.table[dst]
			if !rt.valid || !rt.changed {
				continue // stale bit (entry replaced or garbage-collected)
			}
			b.Entries = append(b.Entries, routing.VectorEntry{Dst: dst, Metric: int32(rt.metric)})
			b.NextHop = append(b.NextHop, rt.nextHop)
		}
	}
}

// sendStaged transmits the staged burst to one neighbor. With poisoned
// reverse the per-neighbor wire images differ only in poisoned metric
// values, so the messages are zero-copy views of the shared snapshot;
// plain split horizon (§4.2 ablation) omits entries instead, changing
// per-neighbor lengths, so that path materializes an explicit list
// exactly as before.
func (p *Protocol) sendStaged(to routing.NodeID) {
	b := p.snd.Staged()
	if len(b.Entries) == 0 {
		return
	}
	if p.cfg.PoisonReverse {
		sent := p.snd.SendTo(p.node, &p.cfg, to)
		p.node.Metrics().Add(obs.ProtoUpdatesSent, uint64(sent))
		return
	}
	entries := make([]routing.VectorEntry, 0, len(b.Entries))
	self := p.node.ID()
	for i, e := range b.Entries {
		if b.NextHop[i] == to && e.Dst != self {
			continue // plain split horizon: stay silent
		}
		entries = append(entries, e)
	}
	for _, msg := range p.cfg.PackEntries(entries) {
		p.node.Metrics().Inc(obs.ProtoUpdatesSent)
		p.node.SendControl(to, msg)
	}
}

func (p *Protocol) clearChanged() {
	for w, word := range p.changedBits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			if dst := w<<6 + b; dst < len(p.table) {
				p.table[dst].changed = false
			}
		}
		p.changedBits[w] = 0
	}
}
