package rip

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/routetest"
	"routeconv/internal/routing"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

func build(t *testing.T, seed int64, g *topology.Graph) (*sim.Simulator, *netsim.Network) {
	t.Helper()
	return routetest.Build(seed, g, netsim.DefaultConfig(), nil, Factory(routing.DefaultVectorConfig()))
}

func TestConvergesOnLine(t *testing.T) {
	g := topology.Line(5)
	s, net := build(t, 1, g)
	s.RunUntil(60 * time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestConvergesOnMesh(t *testing.T) {
	m, err := topology.NewMesh(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, net := build(t, 2, m.Graph)
	s.RunUntil(120 * time.Second)
	routetest.AssertShortestPaths(t, net, m.Graph)
}

func TestReroutesAfterFailure(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 3, g)
	s.RunUntil(120 * time.Second)
	routetest.AssertShortestPaths(t, net, g)

	net.FailLink(0, 1)
	// RIP may need a full periodic cycle to find alternates.
	s.RunUntil(s.Now() + 200*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestRecoversAfterRestore(t *testing.T) {
	g := topology.Ring(6)
	s, net := build(t, 4, g)
	s.RunUntil(120 * time.Second)
	net.FailLink(0, 1)
	s.RunUntil(s.Now() + 200*time.Second)
	net.RestoreLink(0, 1)
	s.RunUntil(s.Now() + 200*time.Second)
	routetest.AssertShortestPaths(t, net, g)
}

func TestRecoveryViaSameNextHopReinstallsFIB(t *testing.T) {
	// Regression test: a stub node (single neighbor) whose route went to
	// infinity must get its forwarding entry back when the same next hop
	// re-advertises a finite metric.
	g := topology.Line(3) // 0-1-2; node 0 only ever routes via 1
	s, net := build(t, 11, g)
	s.RunUntil(60 * time.Second)
	net.FailLink(1, 2)
	s.RunUntil(s.Now() + 60*time.Second)
	if _, ok := net.Node(0).NextHop(2); ok {
		t.Fatal("route to 2 not poisoned")
	}
	net.RestoreLink(1, 2)
	s.RunUntil(s.Now() + 60*time.Second)
	nh, ok := net.Node(0).NextHop(2)
	if !ok || nh != 1 {
		t.Errorf("FIB entry after same-next-hop recovery = %d, %v; want via 1", nh, ok)
	}
}

func TestCountsToInfinityThenWithdraws(t *testing.T) {
	// Two nodes and a stub: when the stub's link fails, 0 and 1 must not
	// count to infinity (poison reverse prevents the two-hop loop) and the
	// route must disappear.
	g := topology.Line(3) // 0-1-2
	s, net := build(t, 5, g)
	s.RunUntil(60 * time.Second)
	net.FailLink(1, 2)
	s.RunUntil(s.Now() + 120*time.Second)
	if _, ok := net.Node(0).NextHop(2); ok {
		t.Error("node 0 still has a route to the detached node 2")
	}
	if _, ok := net.Node(1).NextHop(2); ok {
		t.Error("node 1 still has a route to the detached node 2")
	}
}

// sniffer records vector updates received by a node. Updates are pooled
// and reused after delivery, so the entries are snapshotted (via EntryAt,
// which also applies the sender's read-time poisoning) rather than
// retained.
type sniffer struct {
	updates [][]routing.VectorEntry
	froms   []routing.NodeID
}

func (s *sniffer) Start() {}
func (s *sniffer) HandleMessage(from netsim.NodeID, msg netsim.Message) {
	if u, ok := msg.(*routing.VectorUpdate); ok {
		entries := make([]routing.VectorEntry, u.Len())
		for i := range entries {
			entries[i] = u.EntryAt(i)
		}
		s.updates = append(s.updates, entries)
		s.froms = append(s.froms, from)
	}
}
func (s *sniffer) LinkDown(netsim.NodeID) {}
func (s *sniffer) LinkUp(netsim.NodeID)   {}

// entryFor returns the most recently received metric for dst.
func (s *sniffer) entryFor(dst routing.NodeID) (int, bool) {
	metric, found := 0, false
	for _, u := range s.updates {
		for _, e := range u {
			if e.Dst == dst {
				metric, found = int(e.Metric), true
			}
		}
	}
	return metric, found
}

func TestPoisonReverse(t *testing.T) {
	// Line 0-1-2 where node 2 is a sniffer. Node 1 routes to 2 via 2, so
	// its updates to 2 must advertise destination 2 at infinity.
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(3), netsim.DefaultConfig(), nil)
	cfg := routing.DefaultVectorConfig()
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	net.Node(1).AttachProtocol(New(net.Node(1), cfg))
	sn := &sniffer{}
	net.Node(2).AttachProtocol(sn)
	net.Start()
	// Teach node 1 a route to "2" by sending it an update from node 2.
	s.Schedule(time.Second, func() {
		net.Node(2).SendControl(1, cfg.PackEntries([]routing.VectorEntry{{Dst: 2, Metric: 0}})[0])
	})
	s.RunUntil(90 * time.Second)

	metric, found := sn.entryFor(2)
	if !found {
		t.Fatal("node 1 never advertised destination 2 back to node 2")
	}
	if metric != cfg.Infinity {
		t.Errorf("poisoned reverse metric = %d, want %d", metric, cfg.Infinity)
	}
	// Sanity: destination 0 must be advertised to 2 with a real metric.
	if metric, found := sn.entryFor(0); !found || metric != 1 {
		t.Errorf("metric for dst 0 advertised to node 2 = %d (found=%v), want 1", metric, found)
	}
}

func TestSplitHorizonWithoutPoison(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(3), netsim.DefaultConfig(), nil)
	cfg := routing.DefaultVectorConfig()
	cfg.PoisonReverse = false
	net.Node(0).AttachProtocol(New(net.Node(0), cfg))
	net.Node(1).AttachProtocol(New(net.Node(1), cfg))
	sn := &sniffer{}
	net.Node(2).AttachProtocol(sn)
	net.Start()
	s.Schedule(time.Second, func() {
		net.Node(2).SendControl(1, cfg.PackEntries([]routing.VectorEntry{{Dst: 2, Metric: 0}})[0])
	})
	s.RunUntil(90 * time.Second)
	if _, found := sn.entryFor(2); found {
		t.Error("plain split horizon still advertised destination 2 back to its next hop")
	}
}

func TestRouteTimeout(t *testing.T) {
	// Node 1 (a sniffer) announces destination 9 once, then goes silent:
	// node 0 must expire the route after the 180 s timeout.
	s := sim.New(1)
	g := topology.NewGraph(10)
	g.AddEdge(0, 1)
	net := netsim.FromGraph(s, g, netsim.DefaultConfig(), nil)
	cfg := routing.DefaultVectorConfig()
	p := New(net.Node(0), cfg)
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(&sniffer{})
	net.Start()
	net.Node(1).SendControl(0, cfg.PackEntries([]routing.VectorEntry{{Dst: 9, Metric: 3}})[0])
	s.RunUntil(10 * time.Second)
	if nh, ok := net.Node(0).NextHop(9); !ok || nh != 1 {
		t.Fatalf("route to 9 = %d, %v; want via 1", nh, ok)
	}
	if metric, _, ok := p.Table(9); !ok || metric != 4 {
		t.Fatalf("table metric for 9 = %d, want 4", metric)
	}
	s.RunUntil(10*time.Second + cfg.Timeout + 2*time.Second)
	if _, ok := net.Node(0).NextHop(9); ok {
		t.Error("route to 9 still installed after timeout")
	}
	if metric, _, ok := p.Table(9); ok && metric != cfg.Infinity {
		t.Errorf("table metric after timeout = %d, want %d", metric, cfg.Infinity)
	}
	// After the garbage-collection time the entry disappears entirely.
	s.RunUntil(10*time.Second + cfg.Timeout + cfg.GCTime + 5*time.Second)
	if _, _, ok := p.Table(9); ok {
		t.Error("table entry for 9 not garbage-collected")
	}
}

func TestTriggeredUpdatePropagatesFailureFast(t *testing.T) {
	// On a line, a link failure at one end must poison routes at the other
	// end within a few damping intervals — far faster than the periodic
	// 30 s cycle.
	g := topology.Line(5)
	s, net := build(t, 6, g)
	s.RunUntil(120 * time.Second)
	start := s.Now()
	net.FailLink(3, 4)
	for s.Now() < start+25*time.Second {
		if !s.Step() {
			break
		}
		if _, ok := net.Node(0).NextHop(4); !ok {
			break
		}
	}
	if _, ok := net.Node(0).NextHop(4); ok {
		t.Error("node 0 still routes to 4 25 s after failure; triggered updates not propagating")
	}
}

func TestIgnoresForeignMessages(t *testing.T) {
	s := sim.New(1)
	net := netsim.FromGraph(s, topology.Line(2), netsim.DefaultConfig(), nil)
	p := New(net.Node(0), routing.DefaultVectorConfig())
	net.Node(0).AttachProtocol(p)
	net.Node(1).AttachProtocol(&sniffer{})
	net.Start()
	net.Node(1).SendControl(0, fakeMsg{})
	s.RunUntil(time.Second) // must not panic
}

type fakeMsg struct{}

func (fakeMsg) SizeBytes() int { return 10 }

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		g := topology.Ring(8)
		s, net := build(t, 42, g)
		s.RunUntil(60 * time.Second)
		net.FailLink(0, 1)
		s.RunUntil(120 * time.Second)
		return net.Stats().ControlSent + net.Stats().ControlBytes
	}
	if run() != run() {
		t.Error("identical seeds produced different control traffic")
	}
}
