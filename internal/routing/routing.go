// Package routing holds the pieces shared by the study's routing protocols
// (RIP, DBF, BGP): distance-vector message formats, update packing, the
// periodic/triggered advertisement machinery with damping, and the
// configuration knobs the paper's §3 describes.
package routing

import (
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
)

// NodeID aliases the network node identifier.
type NodeID = netsim.NodeID

// VectorConfig parameterizes the distance-vector protocols (RIP and DBF).
// The defaults follow RFC 2453 and the paper's §3.
type VectorConfig struct {
	// PeriodicInterval is the full-table advertisement period (30 s).
	PeriodicInterval time.Duration
	// PeriodicJitter spreads consecutive periodic updates by ± this much to
	// avoid synchronization.
	PeriodicJitter time.Duration
	// Timeout expires a route (RIP) or a neighbor's cached vector (DBF)
	// that has not been refreshed (180 s).
	Timeout time.Duration
	// GCTime keeps an unreachable route advertised at infinity before it
	// is deleted (120 s).
	GCTime time.Duration
	// DampMin and DampMax bound the random triggered-update damping timer
	// (1–5 s).
	DampMin, DampMax time.Duration
	// Infinity is the unreachable metric (16).
	Infinity int
	// MaxEntries is the number of route entries per update message (25).
	MaxEntries int
	// HeaderBytes and EntryBytes set message sizes: a RIP packet is a
	// 4-byte header plus 20 bytes per entry, carried in UDP/IP.
	HeaderBytes, EntryBytes int
	// TriggeredUpdates enables immediate (damped) updates on route change.
	// Disabling it is an ablation (§4.3): only periodic updates remain.
	TriggeredUpdates bool
	// PoisonReverse enables split horizon with poisoned reverse.
	// Disabling it is an ablation (§4.2): plain split horizon is used.
	PoisonReverse bool
	// ECMP makes DBF install every neighbor achieving the minimum metric
	// as an equal-cost multipath set (an extension, off by default; RIP
	// ignores it — it keeps a single route by design).
	ECMP bool
}

// DefaultVectorConfig returns the RFC 2453 parameters used in the paper.
func DefaultVectorConfig() VectorConfig {
	return VectorConfig{
		PeriodicInterval: 30 * time.Second,
		PeriodicJitter:   time.Second,
		Timeout:          180 * time.Second,
		GCTime:           120 * time.Second,
		DampMin:          time.Second,
		DampMax:          5 * time.Second,
		Infinity:         16,
		MaxEntries:       25,
		HeaderBytes:      32,
		EntryBytes:       20,
		TriggeredUpdates: true,
		PoisonReverse:    true,
	}
}

// VectorEntry is one destination/metric pair in a distance-vector update.
// The metric is 32 bits (infinity is 16): at internet scale the entry
// slices of in-flight updates are the dominant transient allocation, and
// the narrow field halves them.
type VectorEntry struct {
	Dst    NodeID
	Metric int32
}

// VectorUpdate is a RIP/DBF update message: up to MaxEntries entries. It
// comes in two forms. An explicit update carries its own Entries slice
// (PackEntries, the wire decoder, and hand-built test messages). A
// burst-backed update instead views an index range of a shared Burst
// snapshot and applies split horizon with poisoned reverse at read time;
// receivers must therefore iterate with Len and EntryAt, which handle both
// forms. Burst-backed shells are pooled: the network releases each one
// exactly once when its flight ends (netsim.PooledMessage), so receivers
// must not retain them past HandleMessage.
type VectorUpdate struct {
	Entries []VectorEntry
	burst   *Burst
	start   int32
	end     int32
	to      NodeID // receiving neighbor, the poisoned-reverse target
	header  int
	entry   int
	pool    *BurstSender
}

var _ netsim.PooledMessage = (*VectorUpdate)(nil)

// Len returns the number of entries carried.
func (u *VectorUpdate) Len() int {
	if u.burst != nil {
		return int(u.end - u.start)
	}
	return len(u.Entries)
}

// EntryAt returns entry i as it appears on the wire for this update's
// receiver: burst-backed entries whose staged next hop is the receiver are
// poisoned to infinity (split horizon with poisoned reverse), except the
// sender's own self-route.
func (u *VectorUpdate) EntryAt(i int) VectorEntry {
	if b := u.burst; b != nil {
		j := int(u.start) + i
		e := b.Entries[j]
		if b.NextHop[j] == u.to && e.Dst != b.Origin {
			e.Metric = b.Inf
		}
		return e
	}
	return u.Entries[i]
}

// Burst returns the shared snapshot backing this update, or nil for an
// explicit update.
func (u *VectorUpdate) Burst() *Burst { return u.burst }

// View exposes the update for tight receive loops without per-entry call
// overhead: entries[i] pairs with nextHop[i], and the receiver must read
// an entry at metric inf when its staged next hop is the receiver itself
// and its destination is not origin (the poisoning EntryAt applies).
// Explicit updates return a nil nextHop: entries are already literal.
func (u *VectorUpdate) View() (entries []VectorEntry, nextHop []NodeID, origin NodeID, inf int32) {
	if b := u.burst; b != nil {
		return b.Entries[u.start:u.end], b.NextHop[u.start:u.end], b.Origin, b.Inf
	}
	return u.Entries, nil, 0, 0
}

// LastChunk reports whether this is the final chunk of its burst — the
// point at which a receiver has seen the whole snapshot (links deliver
// in order).
func (u *VectorUpdate) LastChunk() bool {
	return u.burst != nil && int(u.end) == len(u.burst.Entries)
}

// Release implements netsim.PooledMessage: burst-backed shells return to
// their sender's free list and drop their snapshot reference. Explicit
// updates (no pool, no burst) are unpooled and unaffected, so tests may
// hold them across deliveries.
func (u *VectorUpdate) Release() {
	b, pl := u.burst, u.pool
	if b == nil && pl == nil {
		return
	}
	*u = VectorUpdate{}
	if pl != nil {
		pl.shells = append(pl.shells, u)
	}
	if b != nil {
		b.Release()
	}
}

// SizeBytes implements netsim.Message.
func (u *VectorUpdate) SizeBytes() int { return u.header + u.entry*u.Len() }

// PackEntries splits entries into update messages holding at most
// cfg.MaxEntries each.
func (cfg *VectorConfig) PackEntries(entries []VectorEntry) []*VectorUpdate {
	var out []*VectorUpdate
	for len(entries) > 0 {
		n := cfg.MaxEntries
		if n > len(entries) {
			n = len(entries)
		}
		out = append(out, &VectorUpdate{
			Entries: entries[:n:n],
			header:  cfg.HeaderBytes,
			entry:   cfg.EntryBytes,
		})
		entries = entries[n:]
	}
	return out
}

// Advertiser drives the periodic full-table updates and the damped
// triggered updates shared by RIP and DBF (§3, §4.3). The owning protocol
// supplies the two broadcast callbacks.
type Advertiser struct {
	cfg  *VectorConfig
	node *netsim.Node
	full func() // send the full table to every up neighbor
	chg  func() // send only changed routes to every up neighbor

	periodic *sim.Timer
	damp     *sim.Timer
	pending  bool
}

// NewAdvertiser returns an Advertiser; full and changed must be non-nil.
// Jitter is drawn from the node's private random stream, so the advertiser's
// timing does not depend on the global draw order (a sharded-run invariant).
func NewAdvertiser(node *netsim.Node, cfg *VectorConfig, full, changed func()) *Advertiser {
	a := &Advertiser{cfg: cfg, node: node, full: full, chg: changed}
	a.periodic = sim.NewTimer(node.Sim(), a.onPeriodic)
	a.damp = sim.NewTimer(node.Sim(), a.onDampExpired)
	return a
}

// Start schedules the first periodic update at a uniformly random phase
// within one period, so that routers' periodic announcements are unaligned
// (as on a real network — this phase is what RIP's recovery time in
// Figure 3 hinges on).
func (a *Advertiser) Start() {
	a.periodic.Reset(a.node.Jitter(0, a.cfg.PeriodicInterval))
}

// RouteChanged notes that at least one route changed and schedules a
// triggered update after the random 1–5 s damping interval; changes
// arriving while the timer runs coalesce into that one update. This is the
// paper's damping semantics (§5.3: after a failure, DBF's throughput
// recovery begins about one second later and completes within the 5 s
// damping bound — one damped triggered-update hop).
func (a *Advertiser) RouteChanged() {
	if !a.cfg.TriggeredUpdates {
		return
	}
	a.pending = true
	a.damp.ResetIfStopped(a.node.Jitter(a.cfg.DampMin, a.cfg.DampMax))
}

func (a *Advertiser) onDampExpired() {
	if !a.pending {
		return
	}
	a.pending = false
	a.chg()
}

func (a *Advertiser) onPeriodic() {
	a.full()
	// A full update covers any pending triggered update.
	a.pending = false
	next := a.cfg.PeriodicInterval
	if j := a.cfg.PeriodicJitter; j > 0 {
		lo := next - j
		if lo < 0 {
			lo = 0
		}
		next = a.node.Jitter(lo, next+j)
	}
	a.periodic.Reset(next)
}
