package routing

import (
	"routeconv/internal/netsim"
)

// Burst is one staged advertisement snapshot, shared by every neighbor's
// update messages of a single broadcast. Under poisoned reverse the entry
// list sent to each neighbor differs only in metric values (poisoned
// entries keep their slot), so instead of materializing a per-neighbor
// copy the messages carry index ranges into this shared snapshot and apply
// the poison at read time. The refcount keeps the snapshot alive until the
// last in-flight message is released; in sharded runs every release is
// funneled through the owner's shard or the coordinator barrier (see
// netsim's releasePooled), so the plain int is race-free.
type Burst struct {
	Entries []VectorEntry // staged routes, ascending destination
	NextHop []NodeID      // parallel: next hop at staging (poison input)
	Origin  NodeID        // the advertising node
	Inf     int32         // poison metric
	Ver     uint64        // sender's change-version clock at staging
	Full    bool          // snapshot covers the sender's whole table
	refs    int
	pool    *BurstSender
}

// Retain adds one reference (one in-flight message view).
func (b *Burst) Retain() { b.refs++ }

// Grow ensures capacity for need staged entries in a single exact
// allocation. Stagers that know their entry count up front (a live-route
// counter for fulls, a changed-bit popcount for triggered updates) call it
// right after Begin, so a burst drawn fresh from an empty pool — the
// common case in a convergence storm, when every pooled burst is still in
// flight — pays one allocation instead of append-doubling copies.
func (b *Burst) Grow(need int) {
	if cap(b.Entries) < need {
		b.Entries = make([]VectorEntry, 0, need)
		b.NextHop = make([]NodeID, 0, need)
	}
}

// Release drops one reference; the last one returns the burst — with its
// entry storage, for reuse — to its owner's free list.
func (b *Burst) Release() {
	b.refs--
	if b.refs > 0 {
		return
	}
	b.Entries = b.Entries[:0]
	b.NextHop = b.NextHop[:0]
	b.Full = false
	if b.pool != nil {
		b.pool.bursts = append(b.pool.bursts, b)
	}
}

// BurstSender owns the free lists for burst-backed advertisement sends:
// snapshot buffers and VectorUpdate shells both cycle through it, so a
// steady-state broadcast allocates nothing. The zero value is ready to use.
type BurstSender struct {
	bursts []*Burst
	shells []*VectorUpdate
	cur    *Burst
}

// Begin starts staging a broadcast: it returns an empty burst (the caller
// appends to Entries and NextHop in ascending destination order) stamped
// with the sender's identity, poison metric, version clock, and whether
// the snapshot is a full table. The sender holds a guard reference until
// End.
func (s *BurstSender) Begin(origin NodeID, inf int32, ver uint64, full bool) *Burst {
	var b *Burst
	if n := len(s.bursts); n > 0 {
		b = s.bursts[n-1]
		s.bursts[n-1] = nil
		s.bursts = s.bursts[:n-1]
	} else {
		b = &Burst{pool: s}
	}
	b.Origin, b.Inf, b.Ver, b.Full = origin, inf, ver, full
	b.refs = 1
	s.cur = b
	return b
}

// Staged returns the burst currently being staged (between Begin and End).
func (s *BurstSender) Staged() *Burst { return s.cur }

// shell returns a zeroed VectorUpdate from the free list.
func (s *BurstSender) shell() *VectorUpdate {
	if n := len(s.shells); n > 0 {
		u := s.shells[n-1]
		s.shells[n-1] = nil
		s.shells = s.shells[:n-1]
		return u
	}
	return &VectorUpdate{}
}

// view builds one pooled chunk message over [start, end) addressed to a
// neighbor.
func (s *BurstSender) view(cfg *VectorConfig, to NodeID, start, end int) *VectorUpdate {
	u := s.shell()
	u.burst, u.to = s.cur, to
	u.start, u.end = int32(start), int32(end)
	u.header, u.entry = cfg.HeaderBytes, cfg.EntryBytes
	u.pool = s
	s.cur.Retain()
	return u
}

// SendTo transmits the staged burst to one neighbor as chunked view
// messages (at most cfg.MaxEntries entries each — the same packing as
// PackEntries) and returns the number of messages sent.
func (s *BurstSender) SendTo(node *netsim.Node, cfg *VectorConfig, to NodeID) int {
	total := len(s.cur.Entries)
	sent := 0
	for start := 0; start < total; start += cfg.MaxEntries {
		end := start + cfg.MaxEntries
		if end > total {
			end = total
		}
		node.SendControl(to, s.view(cfg, to, start, end))
		sent++
	}
	return sent
}

// Views appends the chunk messages for one neighbor to dst without
// sending them. Exposed for tests and tools that need to inspect or
// deliver burst-backed updates by hand.
func (s *BurstSender) Views(dst []*VectorUpdate, cfg *VectorConfig, to NodeID) []*VectorUpdate {
	total := len(s.cur.Entries)
	for start := 0; start < total; start += cfg.MaxEntries {
		end := start + cfg.MaxEntries
		if end > total {
			end = total
		}
		dst = append(dst, s.view(cfg, to, start, end))
	}
	return dst
}

// End releases the sender's guard reference taken by Begin. Messages still
// in flight keep the snapshot alive through their own references.
func (s *BurstSender) End() {
	s.cur.Release()
	s.cur = nil
}
