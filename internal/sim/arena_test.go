package sim

import (
	"testing"
	"time"
)

// Cancel must remove the event from the queue immediately, not lazily at
// pop time: heavy timer churn (BGP MRAI, damping reuse timers) would
// otherwise grow the queue with dead entries.
func TestCancelRemovesEagerly(t *testing.T) {
	s := New(1)
	events := make([]Event, 100)
	for i := range events {
		events[i] = s.Schedule(time.Second, func() {})
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending() = %d, want 100", s.Pending())
	}
	for i, e := range events {
		e.Cancel()
		if got, want := s.Pending(), 100-i-1; got != want {
			t.Fatalf("Pending() = %d after %d cancels, want %d (removal must be eager)", got, i+1, want)
		}
	}
}

// Cancelled slots must return to the free list so a cancel/schedule cycle
// never grows the arena.
func TestCancelRecyclesSlots(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		e := s.Schedule(time.Second, func() {})
		e.Cancel()
	}
	if len(s.slots) != 1 {
		t.Errorf("arena holds %d slots after 1000 cancel cycles, want 1 (slots must be recycled)", len(s.slots))
	}
	if len(s.heap) != 0 {
		t.Errorf("heap holds %d entries after cancelling everything", len(s.heap))
	}
}

// A handle whose slot has been recycled by a later event must be inert:
// its Cancel must not touch the new tenant.
func TestStaleHandleIsInert(t *testing.T) {
	s := New(1)
	stale := s.Schedule(time.Second, func() {})
	stale.Cancel()
	fired := false
	fresh := s.Schedule(2*time.Second, func() { fired = true })
	if fresh.Pending() != true {
		t.Fatal("fresh event not pending")
	}
	stale.Cancel() // must not cancel the slot's new tenant
	if stale.Cancelled() {
		t.Error("stale handle reports Cancelled after its slot was recycled")
	}
	if !fresh.Pending() {
		t.Fatal("stale Cancel removed the recycled slot's new event")
	}
	s.Run()
	if !fired {
		t.Error("recycled event did not fire")
	}
}

// Cancelling events out of order exercises heapRemove's interior-deletion
// path (swap with last, sift both ways); the survivors must still fire in
// time order.
func TestCancelInteriorKeepsOrder(t *testing.T) {
	s := New(1)
	const n = 64
	events := make([]Event, n)
	for i := range events {
		i := i
		events[i] = s.Schedule(time.Duration(n-i)*time.Millisecond, func() {})
		_ = i
	}
	// Cancel every third event, from the middle outwards.
	for i := n / 2; i < n; i += 3 {
		events[i].Cancel()
	}
	for i := n/2 - 1; i >= 0; i -= 3 {
		events[i].Cancel()
	}
	var last time.Duration
	for s.Step() {
		if s.Now() < last {
			t.Fatalf("event fired at %v after one at %v", s.Now(), last)
		}
		last = s.Now()
	}
}

// The scheduling hot path must be allocation-free in steady state: slots
// come from the free list and the heap reuses its backing array.
func TestScheduleStepZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm up the arena and heap capacity.
	for i := 0; i < 64; i++ {
		s.Schedule(time.Duration(i), fn)
	}
	s.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		s.Schedule(time.Millisecond, fn)
		s.Step()
	}); avg != 0 {
		t.Errorf("Schedule+Step allocates %.1f objects per op, want 0", avg)
	}
}

type nopHandler struct{}

func (nopHandler) HandleEvent(int32, any) {}

// Typed-event dispatch must also be allocation-free, including the data
// payload when it carries a pointer.
func TestScheduleHandlerZeroAlloc(t *testing.T) {
	s := New(1)
	h := nopHandler{}
	payload := &struct{ x int }{}
	s.ScheduleHandler(0, h, 0, payload)
	s.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		s.ScheduleHandler(time.Millisecond, h, 1, payload)
		s.Step()
	}); avg != 0 {
		t.Errorf("ScheduleHandler+Step allocates %.1f objects per op, want 0", avg)
	}
}

// Timer churn — the dominant control-plane pattern (MRAI, housekeeping,
// damping reuse) — must not allocate once the timer exists.
func TestTimerChurnZeroAlloc(t *testing.T) {
	s := New(1)
	timer := NewTimer(s, func() {})
	timer.Reset(time.Millisecond)
	s.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		timer.Reset(time.Millisecond)
		timer.Reset(2 * time.Millisecond) // cancel + rearm
		s.Run()
	}); avg != 0 {
		t.Errorf("Timer Reset/Reset/fire allocates %.1f objects per op, want 0", avg)
	}
}
