package sim

import (
	"testing"
	"time"
)

// TestStreamDeterministic pins that (seed, id) fully determines the
// sequence, and that distinct ids and seeds give distinct sequences.
func TestStreamDeterministic(t *testing.T) {
	a := NewStream(7, 3)
	b := NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d differs for identical (seed, id)", i)
		}
	}
	c, d := NewStream(7, 4), NewStream(8, 3)
	base := NewStream(7, 3)
	sameID, sameSeed := 0, 0
	for i := 0; i < 64; i++ {
		v := base.Uint64()
		if v == c.Uint64() {
			sameID++
		}
		if v == d.Uint64() {
			sameSeed++
		}
	}
	if sameID > 1 || sameSeed > 1 {
		t.Errorf("streams correlate: %d/64 collisions across ids, %d/64 across seeds", sameID, sameSeed)
	}
}

// TestStreamIndependence: drawing from one stream must not perturb
// another — the property sharding depends on.
func TestStreamIndependence(t *testing.T) {
	a := NewStream(1, 10)
	b := NewStream(1, 11)
	var want []uint64
	ref := NewStream(1, 10)
	for i := 0; i < 10; i++ {
		want = append(want, ref.Uint64())
	}
	for i := 0; i < 10; i++ {
		b.Uint64() // interleaved draws on another stream
		if got := a.Uint64(); got != want[i] {
			t.Fatalf("draw %d: got %d, want %d — streams are coupled", i, got, want[i])
		}
	}
}

// TestStreamJitterBounds: Jitter stays within [lo, hi] and degenerates to
// lo when the interval is empty or inverted.
func TestStreamJitterBounds(t *testing.T) {
	st := NewStream(3, 0)
	lo, hi := 10*time.Millisecond, 30*time.Millisecond
	seenLow, seenHigh := false, false
	for i := 0; i < 2000; i++ {
		j := st.Jitter(lo, hi)
		if j < lo || j > hi {
			t.Fatalf("Jitter = %v outside [%v, %v]", j, lo, hi)
		}
		if j < lo+5*time.Millisecond {
			seenLow = true
		}
		if j > hi-5*time.Millisecond {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Error("2000 draws never touched the interval's ends — not uniform")
	}
	if st.Jitter(hi, lo) != hi {
		t.Error("inverted interval should return lo")
	}
	if st.Jitter(lo, lo) != lo {
		t.Error("empty interval should return lo")
	}
}

// TestStreamFloat64Range: Float64 stays in [0, 1).
func TestStreamFloat64Range(t *testing.T) {
	st := NewStream(5, 1)
	for i := 0; i < 1000; i++ {
		f := st.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

// TestStreamInt63nPanics: non-positive n is a programming error.
func TestStreamInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	st := NewStream(1, 1)
	st.Int63n(0)
}

// TestCoordinatorWindows drives three simulators through exclusive
// windows and checks the barrier semantics: events strictly before the
// bound fire, events at the bound wait, and the final inclusive window
// matches sequential RunUntil.
func TestCoordinatorWindows(t *testing.T) {
	sims := []*Simulator{New(1), New(2), New(3)}
	fired := make([][]time.Duration, 3)
	for i, s := range sims {
		i := i
		for _, at := range []time.Duration{1 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
			at := at
			s.ScheduleAt(at, func() { fired[i] = append(fired[i], at) })
		}
	}
	c := NewCoordinator(sims)
	defer c.Stop()

	if min, ok := c.MinNextEvent(); !ok || min != time.Millisecond {
		t.Fatalf("MinNextEvent = %v, %v; want 1ms, true", min, ok)
	}
	c.RunWindow(5 * time.Millisecond)
	for i := range fired {
		if len(fired[i]) != 1 || fired[i][0] != time.Millisecond {
			t.Fatalf("sim %d after exclusive window to 5ms: fired %v, want [1ms]", i, fired[i])
		}
		if now := sims[i].Now(); now != 5*time.Millisecond {
			t.Errorf("sim %d clock = %v, want 5ms (parked at the bound)", i, now)
		}
	}
	if min, ok := c.MinNextEvent(); !ok || min != 5*time.Millisecond {
		t.Fatalf("MinNextEvent = %v, %v; want 5ms, true", min, ok)
	}
	c.RunWindowUntil(10 * time.Millisecond)
	for i := range fired {
		if len(fired[i]) != 3 {
			t.Errorf("sim %d after inclusive window to 10ms: fired %v, want all three", i, fired[i])
		}
	}
	if _, ok := c.MinNextEvent(); ok {
		t.Error("MinNextEvent reports pending events after everything fired")
	}
	if c.FiredTotal() != 9 {
		t.Errorf("FiredTotal = %d, want 9", c.FiredTotal())
	}
}

// TestCoordinatorStopIdlesWorkers: Stop returns with all workers joined,
// and the simulators remain usable sequentially afterwards.
func TestCoordinatorStopIdlesWorkers(t *testing.T) {
	sims := []*Simulator{New(1), New(2)}
	n := 0
	sims[0].ScheduleAt(time.Second, func() { n++ })
	c := NewCoordinator(sims)
	c.RunWindow(500 * time.Millisecond)
	c.Stop()
	sims[0].RunUntil(2 * time.Second)
	if n != 1 {
		t.Errorf("event did not fire after Stop: n = %d", n)
	}
}
