package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleStep measures the steady-state cost of one
// schedule + dispatch cycle: the queue stays at depth 1, so this is the
// floor below which no simulation can go.
func BenchmarkEngineScheduleStep(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, fn)
		s.Step()
	}
}

// BenchmarkEngineDepth measures schedule + dispatch with the queue held at
// a realistic depth, exercising the heap's sift paths.
func BenchmarkEngineDepth(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(depthName(depth), func(b *testing.B) {
			s := New(1)
			fn := func() {}
			for i := 0; i < depth; i++ {
				s.Schedule(time.Duration(s.Rand().Int63n(int64(time.Second))), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(time.Duration(s.Rand().Int63n(int64(time.Second))), fn)
				s.Step()
			}
		})
	}
}

func depthName(d int) string {
	switch d {
	case 16:
		return "depth16"
	case 256:
		return "depth256"
	default:
		return "depth4096"
	}
}

// BenchmarkEngineTimerChurn measures the RIP/BGP timer pattern: arm,
// re-arm (cancelling the pending firing), and eventually fire.
func BenchmarkEngineTimerChurn(b *testing.B) {
	s := New(1)
	t := NewTimer(s, func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Reset(time.Millisecond)
		t.Reset(2 * time.Millisecond)
		s.Step()
	}
}

// BenchmarkEngineCancel measures eager cancellation with a populated queue.
func BenchmarkEngineCancel(b *testing.B) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.Schedule(time.Duration(s.Rand().Int63n(int64(time.Hour))), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(time.Duration(s.Rand().Int63n(int64(time.Hour))), fn)
		e.Cancel()
	}
}
