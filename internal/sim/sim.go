// Package sim provides a deterministic discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation a pure function of its inputs and its random seed. All
// randomness used by model code should flow from the simulator's Rand so
// that trials are reproducible.
//
// The engine is allocation-free in steady state: events live in a pooled
// arena whose slots are recycled through a free list as events fire or are
// cancelled, ordered by an inlined 4-ary index heap. Hot-path model code
// should prefer ScheduleHandler over Schedule — a typed event carries its
// receiver and payload in the slot itself, where a closure would allocate.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Handler receives typed events scheduled with ScheduleHandler. It exists
// so hot-path model code can dispatch events without allocating a closure
// per event: the receiver and payload ride inside the pooled event slot.
type Handler interface {
	// HandleEvent runs the event with the kind and data values it was
	// scheduled with.
	HandleEvent(kind int32, data any)
}

// Event slot lifecycle states.
const (
	slotFree uint8 = iota
	slotPending
	slotCancelled
	slotFired
)

// eventSlot is one arena entry. Slots are recycled through the free list;
// gen distinguishes a slot's successive tenants so stale Event handles
// cannot affect a later event that happens to reuse their slot.
type eventSlot struct {
	at    time.Duration
	seq   uint64
	fn    func()
	h     Handler
	data  any
	kind  int32
	gen   uint32
	pos   int32 // index in the heap; -1 once removed
	state uint8
}

// Event is a handle to a scheduled callback, returned by the Schedule
// functions so callers can cancel the event before it fires. The zero value
// is an inert handle: Cancel is a no-op and Pending reports false.
type Event struct {
	s   *Simulator
	at  time.Duration
	idx int32
	gen uint32
}

// Time returns the virtual time at which the event will fire (or would
// have fired, if cancelled).
func (e Event) Time() time.Duration { return e.at }

// Cancel prevents the event from firing and releases its queue slot
// immediately, so heavy timer churn cannot grow the queue. Cancelling an
// event that already fired or was already cancelled is a no-op.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	sl := &e.s.slots[e.idx]
	if sl.gen != e.gen || sl.state != slotPending {
		return
	}
	e.s.heapRemove(sl.pos)
	sl.state = slotCancelled
	sl.fn, sl.h, sl.data = nil, nil, nil
	e.s.free = append(e.s.free, e.idx)
}

// Cancelled reports whether Cancel was called on the event. Once the
// event's slot has been recycled by a later event it reports false.
func (e Event) Cancelled() bool {
	if e.s == nil {
		return false
	}
	sl := &e.s.slots[e.idx]
	return sl.gen == e.gen && sl.state == slotCancelled
}

// Pending reports whether the event is scheduled and has neither fired nor
// been cancelled.
func (e Event) Pending() bool {
	if e.s == nil {
		return false
	}
	sl := &e.s.slots[e.idx]
	return sl.gen == e.gen && sl.state == slotPending
}

// Simulator is a discrete-event scheduler with a virtual clock.
// Create one with New; the zero value is not usable.
type Simulator struct {
	now   time.Duration
	slots []eventSlot // event arena; slots are recycled via free
	free  []int32     // indices of reusable slots
	heap  []int32     // 4-ary min-heap of slot indices, keyed by (at, seq)
	seq   uint64
	rng   *rand.Rand
	seed  int64
	fired uint64
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Seed returns the seed the simulator was created with. Model code uses it
// to derive per-entity random streams (see Stream) that stay reproducible
// regardless of how many event loops a trial is sharded across.
func (s *Simulator) Seed() int64 { return s.seed }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled. Cancelled
// events leave the queue immediately and are not counted.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule runs fn after delay of virtual time. A negative delay is an
// error in the model; it panics to surface the bug immediately.
func (s *Simulator) Schedule(delay time.Duration, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at, which must not be in the
// past.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	e, sl := s.alloc(at)
	sl.fn = fn
	return e
}

// ScheduleHandler runs h.HandleEvent(kind, data) after delay of virtual
// time. Unlike Schedule it needs no closure: in steady state it allocates
// nothing, provided data is nil or holds a pointer.
func (s *Simulator) ScheduleHandler(delay time.Duration, h Handler, kind int32, data any) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleHandlerAt(s.now+delay, h, kind, data)
}

// ScheduleHandlerAt is ScheduleHandler at an absolute virtual time, which
// must not be in the past.
func (s *Simulator) ScheduleHandlerAt(at time.Duration, h Handler, kind int32, data any) Event {
	if h == nil {
		panic("sim: nil event handler")
	}
	e, sl := s.alloc(at)
	sl.h = h
	sl.kind = kind
	sl.data = data
	return e
}

// alloc takes a slot from the free list (or grows the arena), queues it at
// time at, and returns the handle plus the slot for payload assignment.
func (s *Simulator) alloc(at time.Duration) (Event, *eventSlot) {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		s.slots[idx].gen++
	} else {
		s.slots = append(s.slots, eventSlot{})
		idx = int32(len(s.slots) - 1)
	}
	sl := &s.slots[idx]
	sl.at = at
	sl.seq = s.seq
	sl.state = slotPending
	s.seq++
	s.heapPush(idx)
	return Event{s: s, at: at, idx: idx, gen: sl.gen}, sl
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	idx := s.heap[0]
	s.heapRemove(0)
	sl := &s.slots[idx]
	s.now = sl.at
	s.fired++
	fn, h, kind, data := sl.fn, sl.h, sl.kind, sl.data
	sl.fn, sl.h, sl.data = nil, nil, nil
	sl.state = slotFired
	// Free before dispatch: an event that reschedules itself (timers, CBR
	// ticks) recycles its own slot.
	s.free = append(s.free, idx)
	if fn != nil {
		fn()
	} else {
		h.HandleEvent(kind, data)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled for exactly t do fire.
func (s *Simulator) RunUntil(t time.Duration) {
	for len(s.heap) > 0 && s.slots[s.heap[0]].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunBefore executes events with time strictly < t, then advances the clock
// to t. Sharded execution uses it to run a window [now, t): events at
// exactly t belong to the next window, but new events may still be
// scheduled at t once the window ends.
func (s *Simulator) RunBefore(t time.Duration) {
	for len(s.heap) > 0 && s.slots[s.heap[0]].at < t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// NextEventTime returns the time of the earliest pending event, and whether
// one exists. The barrier coordinator uses it to size the next lockstep
// window.
func (s *Simulator) NextEventTime() (time.Duration, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.slots[s.heap[0]].at, true
}

// eventLess orders slots by (time, sequence): the sequence tie-break makes
// same-instant events fire in scheduling order.
func (s *Simulator) eventLess(a, b int32) bool {
	sa, sb := &s.slots[a], &s.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// heapPush appends the slot to the 4-ary heap and sifts it up.
func (s *Simulator) heapPush(idx int32) {
	s.heap = append(s.heap, idx)
	pos := len(s.heap) - 1
	s.slots[idx].pos = int32(pos)
	s.heapUp(pos)
}

// heapRemove deletes the element at heap position pos, keeping the heap
// ordered. The removed slot's pos is set to -1.
func (s *Simulator) heapRemove(pos int32) {
	h := s.heap
	last := len(h) - 1
	i := int(pos)
	s.slots[h[i]].pos = -1
	if i < last {
		h[i] = h[last]
		s.slots[h[i]].pos = pos
		s.heap = h[:last]
		s.heapDown(i)
		s.heapUp(i)
	} else {
		s.heap = h[:last]
	}
}

func (s *Simulator) heapUp(j int) {
	h := s.heap
	for j > 0 {
		parent := (j - 1) >> 2
		if !s.eventLess(h[j], h[parent]) {
			break
		}
		h[j], h[parent] = h[parent], h[j]
		s.slots[h[j]].pos = int32(j)
		s.slots[h[parent]].pos = int32(parent)
		j = parent
	}
}

func (s *Simulator) heapDown(j int) {
	h := s.heap
	n := len(h)
	for {
		first := j<<2 + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for k := first + 1; k < end; k++ {
			if s.eventLess(h[k], h[best]) {
				best = k
			}
		}
		if !s.eventLess(h[best], h[j]) {
			return
		}
		h[j], h[best] = h[best], h[j]
		s.slots[h[j]].pos = int32(j)
		s.slots[h[best]].pos = int32(best)
		j = best
	}
}
