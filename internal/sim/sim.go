// Package sim provides a deterministic discrete-event simulation engine.
//
// A Simulator owns a virtual clock and an event queue. Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation a pure function of its inputs and its random seed. All
// randomness used by model code should flow from the simulator's Rand so
// that trials are reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It is returned by Schedule and ScheduleAt
// so callers can cancel it before it fires.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // position in the heap, -1 once removed
	cancel bool
}

// Time returns the virtual time at which the event will fire (or would have
// fired, if cancelled).
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancel = true
	}
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// Simulator is a discrete-event scheduler with a virtual clock.
// Create one with New; the zero value is not usable.
type Simulator struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	fired   uint64
	running bool
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule runs fn after delay of virtual time. A negative delay is an
// error in the model; it panics to surface the bug immediately.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at, which must not be in the
// past.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled for exactly t do fire.
func (s *Simulator) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
