package sim

import "time"

// Timer is a restartable one-shot timer bound to a Simulator, analogous to
// time.Timer but in virtual time. The zero value is not usable; create one
// with NewTimer.
type Timer struct {
	sim   *Simulator
	fn    func()
	event Event
}

// NewTimer returns a stopped timer that will run fn when it fires.
func NewTimer(s *Simulator, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer function")
	}
	return &Timer{sim: s, fn: fn}
}

var _ Handler = (*Timer)(nil)

// Reset (re)arms the timer to fire after d. Any previously pending firing is
// cancelled first.
func (t *Timer) Reset(d time.Duration) {
	t.Stop()
	t.event = t.sim.ScheduleHandler(d, t, 0, nil)
}

// ResetIfStopped arms the timer to fire after d only if it is not already
// pending. It reports whether the timer was armed by this call.
func (t *Timer) ResetIfStopped(d time.Duration) bool {
	if t.Pending() {
		return false
	}
	t.event = t.sim.ScheduleHandler(d, t, 0, nil)
	return true
}

// Stop cancels any pending firing. It is safe to call on a stopped timer.
func (t *Timer) Stop() {
	t.event.Cancel()
	t.event = Event{}
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.event.Pending() }

// Deadline returns the virtual time of the pending firing. It is only
// meaningful when Pending reports true.
func (t *Timer) Deadline() time.Duration { return t.event.Time() }

// HandleEvent implements Handler; scheduling the timer through a typed
// event rather than a closure keeps Reset allocation-free.
func (t *Timer) HandleEvent(int32, any) {
	t.event = Event{}
	t.fn()
}

// Jitter returns a duration drawn uniformly from [lo, hi] using the
// simulator's random source. It panics if hi < lo.
func (s *Simulator) Jitter(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic("sim: jitter interval inverted")
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(s.rng.Int63n(int64(hi-lo)+1))
}
