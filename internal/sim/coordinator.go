package sim

import "time"

// windowCmd tells one worker how far to advance its simulator.
type windowCmd struct {
	t         time.Duration
	inclusive bool
	stop      bool
}

// Coordinator drives K simulators in lockstep time windows, one persistent
// goroutine per simulator. Between windows all workers are parked at a
// barrier, so the owner may freely inspect and mutate every simulator
// (drain cross-shard inboxes, run control events, read NextEventTime);
// during a window each simulator is touched only by its own worker.
//
// Channel sends/receives of the small windowCmd value are the only
// synchronization; steady-state window advance performs no allocation.
type Coordinator struct {
	sims []*Simulator
	cmd  []chan windowCmd
	done chan struct{}
}

// NewCoordinator starts one worker goroutine per simulator and returns the
// coordinator with all workers parked. Call Stop to terminate the workers.
func NewCoordinator(sims []*Simulator) *Coordinator {
	c := &Coordinator{
		sims: sims,
		cmd:  make([]chan windowCmd, len(sims)),
		done: make(chan struct{}, len(sims)),
	}
	for i := range sims {
		c.cmd[i] = make(chan windowCmd)
		go c.worker(sims[i], c.cmd[i])
	}
	return c
}

// worker advances one simulator window by window until told to stop.
func (c *Coordinator) worker(s *Simulator, cmd chan windowCmd) {
	for w := range cmd {
		if w.stop {
			c.done <- struct{}{}
			return
		}
		if w.inclusive {
			s.RunUntil(w.t)
		} else {
			s.RunBefore(w.t)
		}
		c.done <- struct{}{}
	}
}

// RunWindow advances every simulator through the window ending at t:
// each executes its events strictly before t, then parks with its clock
// at t. Blocks until all workers reach the barrier.
func (c *Coordinator) RunWindow(t time.Duration) { c.run(t, false) }

// RunWindowUntil is RunWindow but inclusive of events at exactly t. Used
// for the final window so end-of-trial semantics match the sequential
// RunUntil(End).
func (c *Coordinator) RunWindowUntil(t time.Duration) { c.run(t, true) }

func (c *Coordinator) run(t time.Duration, inclusive bool) {
	for _, ch := range c.cmd {
		ch <- windowCmd{t: t, inclusive: inclusive}
	}
	for range c.cmd {
		<-c.done
	}
}

// MinNextEvent returns the earliest pending event time across all
// simulators, and whether any simulator has pending events. Only valid
// while workers are parked between windows.
func (c *Coordinator) MinNextEvent() (time.Duration, bool) {
	var best time.Duration
	ok := false
	for _, s := range c.sims {
		if t, has := s.NextEventTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// FiredTotal sums executed-event counts across all simulators.
func (c *Coordinator) FiredTotal() uint64 {
	var n uint64
	for _, s := range c.sims {
		n += s.Fired()
	}
	return n
}

// Stop terminates all worker goroutines and waits for them to exit.
func (c *Coordinator) Stop() {
	for _, ch := range c.cmd {
		ch <- windowCmd{stop: true}
	}
	for range c.cmd {
		<-c.done
	}
}
