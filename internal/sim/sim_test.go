package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	s := New(1)
	e := s.Schedule(time.Second, func() {})
	e.Cancel()
	e.Cancel()
	s.Run()
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.Schedule(time.Second, func() {
		times = append(times, s.Now())
		s.Schedule(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestScheduleZeroDelay(t *testing.T) {
	s := New(1)
	var order []string
	s.Schedule(0, func() {
		order = append(order, "outer")
		s.Schedule(0, func() { order = append(order, "inner") })
	})
	s.Run()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(-1) did not panic")
		}
	}()
	New(1).Schedule(-time.Second, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("ScheduleAt(past) did not panic")
		}
	}()
	s.ScheduleAt(time.Millisecond, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (boundary event must fire)", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now() = %v, want clock advanced to 10s", s.Now())
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() {})
	s.Schedule(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", s.Fired())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", s.Pending())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := New(seed)
		var fired []time.Duration
		var spawn func()
		spawn = func() {
			fired = append(fired, s.Now())
			if len(fired) < 50 {
				s.Schedule(time.Duration(s.Rand().Int63n(int64(time.Second))), spawn)
			}
		}
		s.Schedule(0, spawn)
		s.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) > 500 {
			delays = delays[:500]
		}
		s := New(7)
		var fired []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]time.Duration, len(delays))
		for i, d := range delays {
			want[i] = time.Duration(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := New(1)
		rng := rand.New(rand.NewSource(seed))
		fired := make(map[int]bool)
		events := make([]Event, n)
		cancelled := make(map[int]bool)
		for i := 0; i < int(n); i++ {
			i := i
			events[i] = s.Schedule(time.Duration(rng.Int63n(1000)), func() { fired[i] = true })
		}
		for i := 0; i < int(n); i++ {
			if rng.Intn(2) == 0 {
				events[i].Cancel()
				cancelled[i] = true
			}
		}
		s.Run()
		for i := 0; i < int(n); i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimerReset(t *testing.T) {
	s := New(1)
	count := 0
	timer := NewTimer(s, func() { count++ })
	timer.Reset(time.Second)
	timer.Reset(2 * time.Second) // supersedes the first arming
	s.Run()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("fired at %v, want 2s", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	count := 0
	timer := NewTimer(s, func() { count++ })
	timer.Reset(time.Second)
	timer.Stop()
	timer.Stop() // idempotent
	s.Run()
	if count != 0 {
		t.Errorf("stopped timer fired %d times", count)
	}
	if timer.Pending() {
		t.Error("Pending() = true after Stop")
	}
}

func TestTimerResetIfStopped(t *testing.T) {
	s := New(1)
	count := 0
	timer := NewTimer(s, func() { count++ })
	if !timer.ResetIfStopped(time.Second) {
		t.Fatal("first ResetIfStopped returned false")
	}
	if timer.ResetIfStopped(5 * time.Second) {
		t.Fatal("second ResetIfStopped armed a pending timer")
	}
	s.Run()
	if count != 1 || s.Now() != time.Second {
		t.Fatalf("count=%d now=%v, want 1 fire at 1s", count, s.Now())
	}
	// After firing, the timer can be armed again.
	if !timer.ResetIfStopped(time.Second) {
		t.Fatal("ResetIfStopped after fire returned false")
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count=%d, want 2", count)
	}
}

func TestTimerPendingAndDeadline(t *testing.T) {
	s := New(1)
	timer := NewTimer(s, func() {})
	if timer.Pending() {
		t.Error("new timer is pending")
	}
	timer.Reset(3 * time.Second)
	if !timer.Pending() {
		t.Error("armed timer not pending")
	}
	if timer.Deadline() != 3*time.Second {
		t.Errorf("Deadline() = %v, want 3s", timer.Deadline())
	}
	s.Run()
	if timer.Pending() {
		t.Error("fired timer still pending")
	}
}

func TestJitter(t *testing.T) {
	s := New(99)
	lo, hi := time.Second, 5*time.Second
	for i := 0; i < 1000; i++ {
		j := s.Jitter(lo, hi)
		if j < lo || j > hi {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	if s.Jitter(lo, lo) != lo {
		t.Error("degenerate jitter interval should return lo")
	}
}

func TestJitterInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Jitter(hi, lo) did not panic")
		}
	}()
	New(1).Jitter(2*time.Second, time.Second)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestNewTimerNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTimer(nil) did not panic")
		}
	}()
	NewTimer(New(1), nil)
}

func TestScheduleNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil fn) did not panic")
		}
	}()
	New(1).Schedule(time.Second, nil)
}

func TestEventTimeAccessor(t *testing.T) {
	s := New(1)
	e := s.Schedule(3*time.Second, func() {})
	if e.Time() != 3*time.Second {
		t.Errorf("Time() = %v, want 3s", e.Time())
	}
}
