package sim

import "time"

// Stream is a small independent deterministic random stream (splitmix64).
//
// The Simulator's shared Rand ties every random draw to global event
// execution order, which a sharded run cannot reproduce: shards interleave
// events differently than one sequential loop. Per-entity streams break
// that coupling — each node or traffic source draws from its own stream
// seeded by (simulator seed, entity ID), so the sequence it sees depends
// only on its own event order, which sharding preserves. The zero value is
// a valid (all-zeros-seeded) stream, but callers should use NewStream.
type Stream struct {
	state uint64
}

// NewStream derives an independent stream from a simulator seed and a
// stable per-entity identifier (node ID, flow index, ...). The same
// (seed, id) pair always yields the same sequence.
func NewStream(seed int64, id uint64) Stream {
	st := Stream{state: uint64(seed) ^ (id+1)*0x9e3779b97f4a7c15}
	// Burn two outputs so nearby (seed, id) pairs decorrelate.
	st.next()
	st.next()
	return st
}

// next advances the splitmix64 state and returns the next 64-bit output.
func (st *Stream) next() uint64 {
	st.state += 0x9e3779b97f4a7c15
	z := st.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64-bit value from the stream.
func (st *Stream) Uint64() uint64 { return st.next() }

// Int63n returns a value in [0, n). It panics if n <= 0. The modulo bias
// is negligible for the interval sizes used by the models (n ≪ 2⁶³).
func (st *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(st.next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (st *Stream) Float64() float64 {
	return float64(st.next()>>11) / (1 << 53)
}

// Jitter returns a duration uniform on [lo, hi], mirroring
// Simulator.Jitter but drawing from this stream.
func (st *Stream) Jitter(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(st.Int63n(int64(hi-lo)+1))
}
