// Package routetest provides shared helpers for exercising routing
// protocols end to end: building a network from a topology with a protocol
// attached to every node, running it, and asserting that every forwarding
// table realizes shortest paths.
package routetest

import (
	"testing"
	"time"

	"routeconv/internal/netsim"
	"routeconv/internal/sim"
	"routeconv/internal/topology"
)

// Factory constructs a protocol instance for a node.
type Factory func(*netsim.Node) netsim.Protocol

// Build creates a simulator and network over g with a protocol from f
// attached to every node, and starts it.
func Build(seed int64, g *topology.Graph, cfg netsim.Config, obs netsim.Observer, f Factory) (*sim.Simulator, *netsim.Network) {
	s := sim.New(seed)
	net := netsim.FromGraph(s, g, cfg, obs)
	for i := 0; i < net.Len(); i++ {
		node := net.Node(netsim.NodeID(i))
		node.AttachProtocol(f(node))
	}
	net.Start()
	return s, net
}

// AssertShortestPaths fails the test unless, for every ordered node pair,
// following forwarding tables from src reaches dst in exactly the
// shortest-path hop count of g. Links that are down in net are removed from
// the reference graph first.
func AssertShortestPaths(t *testing.T, net *netsim.Network, g *topology.Graph) {
	t.Helper()
	ref := liveGraph(net, g)
	for src := 0; src < g.Len(); src++ {
		dist := ref.BFS(topology.NodeID(src))
		for dst := 0; dst < g.Len(); dst++ {
			if src == dst {
				continue
			}
			path, ok := net.WalkPath(netsim.NodeID(src), netsim.NodeID(dst))
			if dist[dst] < 0 {
				if ok {
					t.Errorf("walk %d→%d succeeded (%v) but dst is unreachable", src, dst, path)
				}
				continue
			}
			if !ok {
				t.Errorf("walk %d→%d failed: %v", src, dst, path)
				continue
			}
			if got := len(path) - 1; got != dist[dst] {
				t.Errorf("walk %d→%d took %d hops, shortest is %d (path %v)", src, dst, got, dist[dst], path)
			}
		}
	}
}

// Converged reports whether every pair currently routes along a shortest
// path of the live topology.
func Converged(net *netsim.Network, g *topology.Graph) bool {
	ref := liveGraph(net, g)
	for src := 0; src < g.Len(); src++ {
		dist := ref.BFS(topology.NodeID(src))
		for dst := 0; dst < g.Len(); dst++ {
			if src == dst {
				continue
			}
			path, ok := net.WalkPath(netsim.NodeID(src), netsim.NodeID(dst))
			if dist[dst] < 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || len(path)-1 != dist[dst] {
				return false
			}
		}
	}
	return true
}

// liveGraph returns g minus the links that are currently down in net.
func liveGraph(net *netsim.Network, g *topology.Graph) *topology.Graph {
	live := topology.NewGraph(g.Len())
	for _, e := range g.Edges() {
		if l := net.Link(e.A, e.B); l != nil && l.Up() {
			live.AddEdge(e.A, e.B)
		}
	}
	return live
}

// RunFor advances the simulation by d.
func RunFor(s *sim.Simulator, d time.Duration) { s.RunUntil(s.Now() + d) }
