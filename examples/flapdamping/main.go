// Flapdamping explores the route-flap-damping tension the paper's
// introduction raises ([4] Bush et al., [15] Mao et al.): damping protects
// routers from flapping links, but it does so by suppressing routes — and
// a suppressed route blackholes packets even while the link is actually up.
//
// The experiment flaps one link on the flow's path five times, then lets
// it stay up, comparing BGP3 with and without RFC 2439 damping.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"routeconv"
)

func main() {
	base := routeconv.DefaultConfig()
	base.Protocol = routeconv.ProtoBGP3
	base.Trials = 10
	base.RestoreAfter = 3 * time.Second // up/down cycle of 6 s
	base.Flaps = 5                      // link is permanently up after ~30 s

	fmt.Fprintln(os.Stderr, "running BGP3 with a 5-flap link, 10 trials per variant...")

	plain, err := routeconv.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	damped := base
	dcfg := routeconv.DefaultDampingConfig()
	dcfg.HalfLife = 60 * time.Second // RFC's 15 min scaled to an 800 s run
	damped.BGP3.Damping = &dcfg
	dres, err := routeconv.Run(damped)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s %12s\n", "variant", "delivery", "no-route", "fwd-conv")
	print := func(name string, r *routeconv.Result) {
		fmt.Printf("%-22s %14.4f %14.1f %11.1fs\n",
			name, r.DeliveryRatio, r.MeanNoRouteDrops, r.MeanFwdConv)
	}
	print("bgp3", plain)
	print("bgp3 + flap damping", dres)

	fmt.Println("\nWhat to look for:")
	fmt.Println("  - Without damping, each flap costs a brief convergence transient but the")
	fmt.Println("    protocol keeps delivering between flaps.")
	fmt.Println("  - With damping, the flapping route crosses the suppress threshold and is")
	fmt.Println("    ignored until its penalty decays — so packets are dropped long after the")
	fmt.Println("    link has stabilized. Damping trades churn for reachability.")
}
