// Protocolcompare reproduces the paper's headline comparison (§1): with
// the same topology and the same packet rate, routing protocol design
// alone changes packet loss during convergence by an order of magnitude —
// RIP drops hundreds of packets where BGP3 drops fewer than fifty.
//
// The run compares all four protocols at two connectivity levels (degree 4
// and degree 6) and prints the drop counts, convergence times, and control
// overhead side by side.
package main

import (
	"fmt"
	"log"
	"os"

	"routeconv"
)

func main() {
	sc := routeconv.DefaultSweep(10)
	sc.Degrees = []int{4, 6}

	fmt.Fprintln(os.Stderr, "running 4 protocols × 2 degrees × 10 trials...")
	sr, err := routeconv.RunSweep(sc, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Packet drops due to no route (paper, Figure 3):")
	if err := sr.Figure3Table().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTTL expirations — transient loops (paper, Figure 4):")
	if err := sr.Figure4Table().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nForwarding path convergence time, seconds (paper, Figure 6a):")
	if err := sr.Figure6aTable().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWhat to look for:")
	fmt.Println("  - RIP keeps no alternate paths: it drops by far the most packets at both degrees.")
	fmt.Println("  - DBF and BGP3 lose almost nothing once the degree reaches 6 (Observation 1).")
	fmt.Println("  - BGP's 30 s MRAI stretches its convergence well beyond BGP3's (Observation 4).")
}
