// Transientloops reproduces the paper's most counterintuitive result
// (Observation 2 and §5.2): a path-vector protocol does not eliminate
// forwarding loops — transient loops form while routers hold inconsistent
// path information, and the MRAI timer stretches how long they live. BGP
// with a 30 s MRAI expires roughly ten times more packets in loops than
// BGP3 with a 3 s MRAI.
//
// The run uses the degree-5 mesh, where the paper found looping worst, and
// also prints the per-(neighbor, destination) MRAI ablation the paper
// speculates about in §5.2.
package main

import (
	"fmt"
	"log"
	"os"

	"routeconv"
)

func main() {
	const trials = 15

	run := func(label string, cfg routeconv.Config) *routeconv.Result {
		res, err := routeconv.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s ttl-expired %6.1f   no-route %6.1f   fwd-conv %5.1fs   transient paths %.1f\n",
			label, res.MeanTTLDrops, res.MeanNoRouteDrops, res.MeanFwdConv, res.MeanTransientPath)
		return res
	}

	fmt.Fprintln(os.Stderr, "running BGP variants at degree 5, 15 trials each...")

	base := routeconv.DefaultConfig()
	base.Degree = 5
	base.Trials = trials

	bgp := base
	bgp.Protocol = routeconv.ProtoBGP
	bgpRes := run("bgp (MRAI 30s)", bgp)

	bgp3 := base
	bgp3.Protocol = routeconv.ProtoBGP3
	bgp3Res := run("bgp3 (MRAI 3s)", bgp3)

	perDest := base
	perDest.Protocol = routeconv.ProtoBGP
	perDest.BGP.PerDestMRAI = true
	run("bgp (per-dest MRAI, §5.2)", perDest)

	dbf := base
	dbf.Protocol = routeconv.ProtoDBF
	run("dbf (for contrast)", dbf)

	rip := base
	rip.Protocol = routeconv.ProtoRIP
	ripRes := run("rip (never loops)", rip)

	fmt.Println("\nWhat to look for:")
	if ripRes.MeanTTLDrops == 0 {
		fmt.Println("  - RIP shows zero TTL expirations: with no alternate paths it blackholes")
		fmt.Println("    instead of looping (paper, Observation 2).")
	}
	if bgpRes.MeanTTLDrops > bgp3Res.MeanTTLDrops {
		fmt.Printf("  - BGP loops more than BGP3 (%.1f vs %.1f TTL expirations): the longer MRAI\n",
			bgpRes.MeanTTLDrops, bgp3Res.MeanTTLDrops)
		fmt.Println("    prolongs the window of inconsistent paths (paper §5.2).")
	}
	fmt.Println("  - The per-destination MRAI ablation shows the effect of the timer's")
	fmt.Println("    granularity that the paper conjectures about in §5.2.")
}
