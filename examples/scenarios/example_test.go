package main

import (
	"fmt"
	"time"

	"routeconv"
)

// ExampleParseScenario parses the text grammar from SCENARIOS.md; the
// script round-trips through String with durations in Go's canonical form.
func ExampleParseScenario() {
	script, err := routeconv.ParseScenario(
		"fail link 3-7 @400s; loss link 1-2 p=0.01 @410s; churn links rate=0.1/s @450s..600s")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, e := range script.Events {
		fmt.Println(e)
	}
	// Output:
	// fail link 3-7 @6m40s
	// loss link 1-2 p=0.01 @6m50s
	// churn links rate=0.1/s down=1s @7m30s..10m0s
}

// ExampleNewScenario builds the flap-damping schedule programmatically and
// validates it against a topology before any simulation runs.
func ExampleNewScenario() {
	script := routeconv.NewScenario().
		FailPath(400*time.Second, 3*time.Second, 5).
		Loss(395*time.Second, 21, 22, 0.01).
		Script()
	fmt.Println(script)

	cfg := routeconv.DefaultConfig()
	cfg.Script = script
	fmt.Println("valid:", cfg.Validate() == nil)
	// Output:
	// loss link 21-22 p=0.01 @6m35s; failpath @6m40s restore=3s flaps=5
	// valid: true
}
