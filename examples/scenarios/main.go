// Scenarios demonstrates the composable disturbance-script engine: instead
// of the paper's single hard-coded on-path failure, an experiment takes a
// declarative schedule of failures, repairs, flap storms, random loss, and
// continuous churn — written either with the builder API or in the compact
// text grammar (full reference: SCENARIOS.md).
//
// The demo runs BGP through two schedules on the default 7×7 mesh:
//
//  1. the paper's on-path failure, but with 2% random loss on every link
//     into the receiver's row — a cut each delivered packet must cross, and
//     one that hits control traffic too, breaking BGP's reliable-delivery
//     assumption — and
//  2. a five-cycle flap storm on the failed link (the damping scenario).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"routeconv"
)

func main() {
	// Schedule 1, text grammar: the measured on-path failure at 400 s plus
	// random loss on the seven vertical links into the mesh's last row
	// (nodes 42–48), where the receivers attach.
	lossy, err := routeconv.ParseScenario(`
		failpath @400s
		loss link 35-42 p=0.02 @395s; loss link 36-43 p=0.02 @395s
		loss link 37-44 p=0.02 @395s; loss link 38-45 p=0.02 @395s
		loss link 39-46 p=0.02 @395s; loss link 40-47 p=0.02 @395s
		loss link 41-48 p=0.02 @395s
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Schedule 2, builder API: the same failure cycled into a flap storm
	// (restore after 3 s, five cycles) — the damping experiment's schedule.
	storm := routeconv.NewScenario().
		FailPath(400*time.Second, 3*time.Second, 5).
		Script()

	for _, sc := range []struct {
		name   string
		script *routeconv.ScenarioScript
	}{
		{"lossy links", lossy},
		{"flap storm", storm},
	} {
		cfg := routeconv.DefaultConfig()
		cfg.Protocol = routeconv.ProtoBGP3
		cfg.Trials = 5
		cfg.End = cfg.FailAt + 120*time.Second
		cfg.Script = sc.script

		fmt.Fprintf(os.Stderr, "running %q: %s\n", sc.name, sc.script)
		res, err := routeconv.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sc.name)
		fmt.Printf("  delivery ratio:            %.4f\n", res.DeliveryRatio)
		fmt.Printf("  mean drops (no route):     %.1f\n", res.MeanNoRouteDrops)
		fmt.Printf("  mean drops (random loss):  %.1f\n", res.MeanRandomLoss)
		fmt.Printf("  mean drops (dead link):    %.1f\n", res.MeanLinkDrops)
		fmt.Printf("  forwarding convergence:    %.2f s\n", res.MeanFwdConv)
		fmt.Println()
	}

	fmt.Println("What to look for:")
	fmt.Println("  - Random loss drops appear only in the lossy schedule: the scenario")
	fmt.Println("    engine charges each lost packet to its own drop cause.")
	fmt.Println("  - The flap storm's repeated failures stretch forwarding convergence")
	fmt.Println("    past the single-failure case — each cycle restarts path exploration.")
}
