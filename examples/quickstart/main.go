// Quickstart: run one convergence experiment and print what happened.
//
// The experiment is the paper's basic setup: a 7×7 degree-4 mesh running
// Distributed Bellman-Ford, a 20 packets-per-second flow crossing it, and a
// failure of one link on the flow's path. Because DBF caches each
// neighbor's latest distance vector, it switches to an alternate path
// almost instantly and loses very few packets.
package main

import (
	"fmt"
	"log"

	"routeconv"
)

func main() {
	cfg := routeconv.DefaultConfig()
	cfg.Protocol = routeconv.ProtoDBF
	cfg.Degree = 4
	cfg.Trials = 5

	res, err := routeconv.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol:              %s on a %dx%d mesh of degree %d\n",
		cfg.Protocol, cfg.Rows, cfg.Cols, cfg.Degree)
	fmt.Printf("trials:                %d (all seeded from %d)\n", cfg.Trials, cfg.Seed)
	fmt.Printf("delivery ratio:        %.4f\n", res.DeliveryRatio)
	fmt.Printf("drops (no route):      %.1f per trial\n", res.MeanNoRouteDrops)
	fmt.Printf("drops (ttl expired):   %.1f per trial\n", res.MeanTTLDrops)
	fmt.Printf("forwarding converged:  %.2f s after the failure\n", res.MeanFwdConv)
	fmt.Printf("routing converged:     %.2f s after the failure\n", res.MeanRoutingConv)

	// Each trial also records where the failure landed.
	tr := res.Trials[0]
	fmt.Printf("\nfirst trial detail: sender at router %d, receiver at router %d, failed link %d-%d\n",
		tr.SenderRouter, tr.ReceiverRouter, tr.FailedLink.A, tr.FailedLink.B)
}
