// Degreesweep reproduces the paper's central topology result
// (Observation 1): as network connectivity grows, packet delivery during
// convergence improves for every protocol that keeps alternate-path state —
// while RIP, which keeps none, barely improves at all.
//
// It sweeps the mesh node degree from 3 to 8 for RIP and DBF and prints
// the mean no-route drop counts and delivery ratios.
package main

import (
	"fmt"
	"log"
	"os"

	"routeconv"
)

func main() {
	sc := routeconv.DefaultSweep(10)
	sc.Degrees = []int{3, 4, 5, 6, 7, 8}
	sc.Protocols = []routeconv.ProtocolKind{routeconv.ProtoRIP, routeconv.ProtoDBF}

	fmt.Fprintln(os.Stderr, "running 2 protocols × 6 degrees × 10 trials...")
	sr, err := routeconv.RunSweep(sc, func(line string) { fmt.Fprintln(os.Stderr, "  "+line) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Mean packet drops due to no route vs node degree (paper, Figure 3):")
	if err := sr.Figure3Table().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nPer-cell summary (drops by cause, convergence, control cost):")
	if err := sr.SummaryTable().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nWhat to look for:")
	fmt.Println("  - DBF's drops fall toward zero by degree 6: with enough redundancy some")
	fmt.Println("    neighbor always holds a valid cached alternate (paper §5.1).")
	fmt.Println("  - RIP improves only slightly: it must wait for a periodic update no matter")
	fmt.Println("    how well-connected the mesh is.")
}
